// Deduplication (Dirty ER) walkthrough: a single bibliographic table with
// duplicates in itself — built by pooling both sides of the DBLP/ACM replica,
// the standard construction of deduplication benchmarks.
//
// Shows the Dirty ER extension API: one entity collection, unordered
// candidate pairs, same filter families.
//
// Build & run: ./build/examples/deduplication
#include <cstdio>

#include "datagen/registry.hpp"
#include "dirty/dataset.hpp"
#include "dirty/filters.hpp"

int main() {
  using namespace erb;

  const dirty::DirtyDataset dataset =
      dirty::MergeToDirty(datagen::Generate(datagen::PaperSpec(4).Scaled(0.5)));
  std::printf("deduplicating %zu bibliographic records "
              "(%zu duplicate pairs hidden among %.2e possible pairs)\n\n",
              dataset.size(), dataset.NumDuplicates(),
              static_cast<double>(dataset.TotalPairs()));

  // 1. Token blocking with purging + filtering.
  {
    const auto run = dirty::DirtyBlockingWorkflow(
        dataset, core::SchemaMode::kAgnostic, blocking::BuilderConfig{},
        /*purge=*/true, /*filter_ratio=*/0.6);
    const auto eff = dirty::Evaluate(run.candidates, dataset);
    std::printf("blocking : PC=%.3f PQ=%.4f |C|=%zu RT=%.0fms\n", eff.pc,
                eff.pq, run.candidates.size(), run.timing.TotalMs());
  }

  // 2. Self kNN-join over character 3-grams.
  {
    sparsenn::SparseConfig config;
    config.clean = true;
    config.model = sparsenn::TokenModel::kC3G;
    const auto run =
        dirty::DirtyKnnJoin(dataset, core::SchemaMode::kAgnostic, config, 2);
    const auto eff = dirty::Evaluate(run.candidates, dataset);
    std::printf("kNN-join : PC=%.3f PQ=%.4f |C|=%zu RT=%.0fms\n", eff.pc,
                eff.pq, run.candidates.size(), run.timing.TotalMs());
  }

  // 3. Dense self kNN over subword embeddings.
  {
    const auto run =
        dirty::DirtyDenseKnn(dataset, core::SchemaMode::kAgnostic, true, 3);
    const auto eff = dirty::Evaluate(run.candidates, dataset);
    std::printf("dense kNN: PC=%.3f PQ=%.4f |C|=%zu RT=%.0fms\n", eff.pc,
                eff.pq, run.candidates.size(), run.timing.TotalMs());
  }
  return 0;
}
