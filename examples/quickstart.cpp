// Quickstart: generate a benchmark dataset, run one filter from each family,
// and evaluate recall (PC) / precision (PQ) / run-time.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "blocking/workflow.hpp"
#include "core/metrics.hpp"
#include "datagen/registry.hpp"
#include "densenn/methods.hpp"
#include "sparsenn/joins.hpp"

int main() {
  using namespace erb;

  // D2 is the Abt-Buy replica: 1076 x 1076 product descriptions, every E1
  // entity having exactly one match in E2.
  const core::Dataset dataset = datagen::Generate(datagen::PaperSpec(2));
  std::printf("dataset %s: |E1|=%zu |E2|=%zu duplicates=%zu\n",
              dataset.name().c_str(), dataset.e1().size(), dataset.e2().size(),
              dataset.NumDuplicates());

  const auto mode = core::SchemaMode::kAgnostic;

  // 1. A blocking workflow: Standard Blocking + Block Purging + Comparison
  //    Propagation (the parameter-free PBW baseline).
  {
    const auto run = blocking::RunWorkflow(dataset, mode,
                                           blocking::ParameterFreeWorkflow());
    const auto eff = core::Evaluate(run.candidates, dataset);
    std::printf("PBW  : PC=%.3f PQ=%.4f |C|=%zu RT=%.1fms\n", eff.pc, eff.pq,
                eff.candidates, run.timing.TotalMs());
  }

  // 2. A sparse NN method: kNN-Join with cosine similarity over character
  //    5-gram multisets, K=3.
  {
    sparsenn::SparseConfig config;
    config.clean = true;
    config.model = sparsenn::TokenModel::kC5GM;
    config.measure = sparsenn::SimilarityMeasure::kCosine;
    const auto run = sparsenn::KnnJoin(dataset, mode, config, /*k=*/3,
                                       /*reverse=*/false);
    const auto eff = core::Evaluate(run.candidates, dataset);
    std::printf("kNNJ : PC=%.3f PQ=%.4f |C|=%zu RT=%.1fms\n", eff.pc, eff.pq,
                eff.candidates, run.timing.TotalMs());
  }

  // 3. A dense NN method: exact kNN search over subword embeddings (the
  //    FAISS-flat configuration), K=10.
  {
    densenn::KnnSearchConfig config;
    config.clean = true;
    config.k = 10;
    const auto run = densenn::FaissKnn(dataset, mode, config);
    const auto eff = core::Evaluate(run.candidates, dataset);
    std::printf("FAISS: PC=%.3f PQ=%.4f |C|=%zu RT=%.1fms\n", eff.pc, eff.pq,
                eff.candidates, run.timing.TotalMs());
  }
  return 0;
}
