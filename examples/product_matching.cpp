// Product matching walkthrough: the scenario from the paper's introduction —
// two online retailers (the Abt/Buy replica) whose catalogues must be linked.
//
// Shows the full Problem 1 workflow a practitioner would run:
//   1. inspect the dataset,
//   2. fine-tune one filter per family for PC >= 0.9,
//   3. compare the tuned filters and pick one for production.
//
// Build & run: ./build/examples/product_matching
#include <cstdio>

#include "core/metrics.hpp"
#include "datagen/registry.hpp"
#include "tuning/suite.hpp"

int main() {
  using namespace erb;

  const core::Dataset dataset = datagen::Generate(datagen::PaperSpec(2));
  std::printf("Linking %zu Abt products against %zu Buy products "
              "(%zu true matches, %.2e possible pairs)\n\n",
              dataset.e1().size(), dataset.e2().size(), dataset.NumDuplicates(),
              static_cast<double>(dataset.CartesianSize()));

  tuning::GridOptions options;  // coarse grids; set ERBENCH_FULL_GRID=1 for Table III-V domains
  options.repetitions = 1;

  const tuning::MethodId contenders[] = {
      tuning::MethodId::kQbw,      // best blocking workflow on products
      tuning::MethodId::kKnnJoin,  // best sparse NN method
      tuning::MethodId::kFaiss,    // cardinality-based dense NN
  };

  std::printf("%-8s %-7s %-7s %-10s %-9s best configuration\n", "method", "PC",
              "PQ", "|C|", "RT(ms)");
  for (tuning::MethodId id : contenders) {
    const auto result =
        tuning::RunMethod(id, dataset, core::SchemaMode::kAgnostic, options);
    std::printf("%-8s %-7.3f %-7.3f %-10zu %-9.0f %s\n",
                std::string(tuning::MethodName(id)).c_str(), result.eff.pc,
                result.eff.pq, result.eff.candidates, result.runtime_ms,
                result.config.c_str());
  }

  std::printf(
      "\nReading the result: every tuned filter reaches the 0.9 recall target;\n"
      "the winner is whichever prunes the most non-matches (highest PQ). The\n"
      "surviving candidate pairs would now go to a matching (verification)\n"
      "step - ~%.0fx less work than comparing every pair.\n",
      static_cast<double>(dataset.CartesianSize()) /
          (5.0 * dataset.NumDuplicates()));
  return 0;
}
