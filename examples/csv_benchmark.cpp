// Benchmark your own Clean-Clean ER dataset from CSV files.
//
// Usage:
//   csv_benchmark <e1.csv> <e2.csv> <groundtruth.csv> [best_attribute]
//
// The CSVs need a header whose first column is the record id; the ground
// truth holds one "<id-from-e1>,<id-from-e2>" pair per line. Every filtering
// method of the benchmark is fine-tuned on the data and ranked by precision
// at the paper's 0.9 recall target.
#include <cstdio>
#include <string>

#include "datagen/csv_loader.hpp"
#include "tuning/suite.hpp"

int main(int argc, char** argv) {
  using namespace erb;
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <e1.csv> <e2.csv> <groundtruth.csv> [best_attr]\n",
                 argv[0]);
    return 1;
  }

  core::Dataset dataset;
  try {
    dataset = datagen::LoadCsvDataset("csv", argv[1], argv[2], argv[3],
                                      argc > 4 ? argv[4] : "");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to load dataset: %s\n", e.what());
    return 1;
  }
  std::printf("loaded |E1|=%zu |E2|=%zu duplicates=%zu best-attribute='%s'\n\n",
              dataset.e1().size(), dataset.e2().size(), dataset.NumDuplicates(),
              dataset.best_attribute().c_str());

  const tuning::GridOptions options = tuning::GridOptions::FromEnv();
  std::printf("%-12s %-7s %-7s %-10s %-9s configuration\n", "method", "PC", "PQ",
              "|C|", "RT(ms)");
  for (tuning::MethodId id : tuning::AllMethods()) {
    try {
      const auto result =
          tuning::RunMethod(id, dataset, core::SchemaMode::kAgnostic, options);
      std::printf("%-12s %-7.3f %-7.3f %-10zu %-9.0f %s%s\n",
                  std::string(tuning::MethodName(id)).c_str(), result.eff.pc,
                  result.eff.pq, result.eff.candidates, result.runtime_ms,
                  result.config.c_str(),
                  result.reached_target ? "" : "   [missed recall target]");
    } catch (const std::exception& e) {
      std::printf("%-12s failed: %s\n",
                  std::string(tuning::MethodName(id)).c_str(), e.what());
    }
  }
  return 0;
}
