// Dataset report: prints the Table VI-style characteristics of every
// benchmark dataset replica plus quick baseline filtering numbers, a fast way
// to sanity-check a dataset (synthetic or loaded from CSV) before running
// the full benchmark harness.
//
// Usage:
//   dataset_report                 # all synthetic replicas at bench scale
//   dataset_report 2               # only D2
#include <cstdio>
#include <cstdlib>

#include "blocking/workflow.hpp"
#include "core/metrics.hpp"
#include "core/schema.hpp"
#include "datagen/registry.hpp"
#include "sparsenn/joins.hpp"

namespace {

void Report(int index) {
  using namespace erb;
  const core::Dataset dataset = datagen::MakeBenchDataset(index);

  std::printf("%-4s %-38s |E1|=%-6zu |E2|=%-6zu dups=%-6zu cart=%.2e\n",
              dataset.name().c_str(),
              datagen::PaperSpec(index).description.c_str(), dataset.e1().size(),
              dataset.e2().size(), dataset.NumDuplicates(),
              static_cast<double>(dataset.CartesianSize()));

  // Best-attribute coverage (Figure 3a).
  for (const auto& stats : core::ComputeAttributeStats(dataset)) {
    if (stats.name != dataset.best_attribute()) continue;
    std::printf("  best attr '%s': coverage=%.2f gt-coverage=%.2f "
                "distinctiveness=%.2f\n",
                stats.name.c_str(), stats.coverage, stats.groundtruth_coverage,
                stats.distinctiveness);
  }

  // Corpus statistics (Figure 3b/c).
  const auto agnostic = core::ComputeCorpusStats(dataset, core::SchemaMode::kAgnostic,
                                                 /*clean=*/false);
  const auto based = core::ComputeCorpusStats(dataset, core::SchemaMode::kBased,
                                              /*clean=*/false);
  std::printf("  vocabulary: agnostic=%zu based=%zu   chars: agnostic=%zu based=%zu\n",
              agnostic.vocabulary_size, based.vocabulary_size,
              agnostic.char_length, based.char_length);

  // Baselines per family (schema-agnostic).
  {
    const auto run = blocking::RunWorkflow(dataset, core::SchemaMode::kAgnostic,
                                           blocking::ParameterFreeWorkflow());
    const auto eff = core::Evaluate(run.candidates, dataset);
    std::printf("  PBW : PC=%.3f PQ=%.2e |C|=%-8zu RT=%.0fms\n", eff.pc, eff.pq,
                eff.candidates, run.timing.TotalMs());
  }
  {
    const auto run =
        sparsenn::DefaultKnnJoin(dataset, core::SchemaMode::kAgnostic);
    const auto eff = core::Evaluate(run.candidates, dataset);
    std::printf("  DkNN: PC=%.3f PQ=%.2e |C|=%-8zu RT=%.0fms\n", eff.pc, eff.pq,
                eff.candidates, run.timing.TotalMs());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    Report(std::atoi(argv[1]));
    return 0;
  }
  for (int i = 1; i <= erb::datagen::kNumDatasets; ++i) Report(i);
  return 0;
}
