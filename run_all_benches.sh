#!/bin/bash
# Runs the complete benchmark suite (tuned runs come from bench_cache) and
# archives the outputs the repository documents in EXPERIMENTS.md.
set -u
cd "$(dirname "$0")"
OUT=${1:-bench_output.txt}
: > "$OUT"
for b in bench_table6_datasets bench_fig3_profiles bench_table7_main \
         bench_table11_candidates bench_fig456_distances \
         bench_fig789_breakdown bench_scalability bench_ablation; do
  echo "##### $b #####" >> "$OUT"
  ./build/bench/$b >> "$OUT" 2>> "$OUT.err"
  echo >> "$OUT"
done
echo "##### micro_components #####" >> "$OUT"
./build/bench/micro_components --benchmark_min_time=0.05s >> "$OUT" 2>> "$OUT.err"
echo "##### micro_components (meta-blocking comparison) #####" >> "$OUT"
./build/bench/micro_components --json=micro_components.json >> "$OUT" 2>> "$OUT.err"
echo "##### micro_kernels #####" >> "$OUT"
./build/bench/micro_kernels --json=micro_kernels.json >> "$OUT" 2>> "$OUT.err"
echo "##### micro_serve #####" >> "$OUT"
./build/bench/micro_serve --json=micro_serve.json >> "$OUT" 2>> "$OUT.err"
echo "ALL_BENCHES_DONE" >> "$OUT"
