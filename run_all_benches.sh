#!/bin/bash
# Runs the complete benchmark suite (tuned runs come from bench_cache) and
# archives the outputs the repository documents in EXPERIMENTS.md.
# Any bench exiting nonzero aborts the sweep immediately — a silent partial
# bench_output.txt must never look like a finished run.
set -u
cd "$(dirname "$0")"
OUT=${1:-bench_output.txt}
: > "$OUT"

run() {
  local label=$1
  shift
  echo "##### $label #####" >> "$OUT"
  if ! "$@" >> "$OUT" 2>> "$OUT.err"; then
    echo "FAILED: $label (see $OUT.err)" | tee -a "$OUT" >&2
    exit 1
  fi
  echo >> "$OUT"
}

for b in bench_table6_datasets bench_fig3_profiles bench_table7_main \
         bench_table11_candidates bench_fig456_distances \
         bench_fig789_breakdown bench_ablation; do
  run "$b" ./build/bench/$b
done
# Scale-out headline bench: sharded ε-join grid, committed as BENCH_PR10.json.
run "bench_scalability" ./build/bench/bench_scalability --json=BENCH_PR10.json
run "micro_components" ./build/bench/micro_components --benchmark_min_time=0.05s
run "micro_components (meta-blocking comparison)" \
    ./build/bench/micro_components --json=micro_components.json
run "micro_kernels" ./build/bench/micro_kernels --json=micro_kernels.json
run "micro_serve" ./build/bench/micro_serve --json=micro_serve.json
echo "ALL_BENCHES_DONE" >> "$OUT"
