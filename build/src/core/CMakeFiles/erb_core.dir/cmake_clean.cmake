file(REMOVE_RECURSE
  "CMakeFiles/erb_core.dir/candidates.cpp.o"
  "CMakeFiles/erb_core.dir/candidates.cpp.o.d"
  "CMakeFiles/erb_core.dir/entity.cpp.o"
  "CMakeFiles/erb_core.dir/entity.cpp.o.d"
  "CMakeFiles/erb_core.dir/metrics.cpp.o"
  "CMakeFiles/erb_core.dir/metrics.cpp.o.d"
  "CMakeFiles/erb_core.dir/schema.cpp.o"
  "CMakeFiles/erb_core.dir/schema.cpp.o.d"
  "liberb_core.a"
  "liberb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
