
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidates.cpp" "src/core/CMakeFiles/erb_core.dir/candidates.cpp.o" "gcc" "src/core/CMakeFiles/erb_core.dir/candidates.cpp.o.d"
  "/root/repo/src/core/entity.cpp" "src/core/CMakeFiles/erb_core.dir/entity.cpp.o" "gcc" "src/core/CMakeFiles/erb_core.dir/entity.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/erb_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/erb_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/schema.cpp" "src/core/CMakeFiles/erb_core.dir/schema.cpp.o" "gcc" "src/core/CMakeFiles/erb_core.dir/schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/erb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/erb_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
