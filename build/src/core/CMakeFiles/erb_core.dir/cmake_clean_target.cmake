file(REMOVE_RECURSE
  "liberb_core.a"
)
