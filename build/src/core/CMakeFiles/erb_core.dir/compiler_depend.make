# Empty compiler generated dependencies file for erb_core.
# This may be replaced when dependencies are built.
