# Empty compiler generated dependencies file for erb_dirty.
# This may be replaced when dependencies are built.
