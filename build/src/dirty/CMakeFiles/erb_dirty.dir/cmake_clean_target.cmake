file(REMOVE_RECURSE
  "liberb_dirty.a"
)
