file(REMOVE_RECURSE
  "CMakeFiles/erb_dirty.dir/dataset.cpp.o"
  "CMakeFiles/erb_dirty.dir/dataset.cpp.o.d"
  "CMakeFiles/erb_dirty.dir/filters.cpp.o"
  "CMakeFiles/erb_dirty.dir/filters.cpp.o.d"
  "liberb_dirty.a"
  "liberb_dirty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erb_dirty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
