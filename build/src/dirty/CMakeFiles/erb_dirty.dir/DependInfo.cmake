
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dirty/dataset.cpp" "src/dirty/CMakeFiles/erb_dirty.dir/dataset.cpp.o" "gcc" "src/dirty/CMakeFiles/erb_dirty.dir/dataset.cpp.o.d"
  "/root/repo/src/dirty/filters.cpp" "src/dirty/CMakeFiles/erb_dirty.dir/filters.cpp.o" "gcc" "src/dirty/CMakeFiles/erb_dirty.dir/filters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blocking/CMakeFiles/erb_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/sparsenn/CMakeFiles/erb_sparsenn.dir/DependInfo.cmake"
  "/root/repo/build/src/densenn/CMakeFiles/erb_densenn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/erb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/erb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/erb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
