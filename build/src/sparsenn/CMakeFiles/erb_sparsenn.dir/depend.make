# Empty dependencies file for erb_sparsenn.
# This may be replaced when dependencies are built.
