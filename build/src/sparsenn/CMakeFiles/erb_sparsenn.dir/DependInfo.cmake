
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparsenn/joins.cpp" "src/sparsenn/CMakeFiles/erb_sparsenn.dir/joins.cpp.o" "gcc" "src/sparsenn/CMakeFiles/erb_sparsenn.dir/joins.cpp.o.d"
  "/root/repo/src/sparsenn/scancount.cpp" "src/sparsenn/CMakeFiles/erb_sparsenn.dir/scancount.cpp.o" "gcc" "src/sparsenn/CMakeFiles/erb_sparsenn.dir/scancount.cpp.o.d"
  "/root/repo/src/sparsenn/tokenset.cpp" "src/sparsenn/CMakeFiles/erb_sparsenn.dir/tokenset.cpp.o" "gcc" "src/sparsenn/CMakeFiles/erb_sparsenn.dir/tokenset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/erb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/erb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/erb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
