file(REMOVE_RECURSE
  "CMakeFiles/erb_sparsenn.dir/joins.cpp.o"
  "CMakeFiles/erb_sparsenn.dir/joins.cpp.o.d"
  "CMakeFiles/erb_sparsenn.dir/scancount.cpp.o"
  "CMakeFiles/erb_sparsenn.dir/scancount.cpp.o.d"
  "CMakeFiles/erb_sparsenn.dir/tokenset.cpp.o"
  "CMakeFiles/erb_sparsenn.dir/tokenset.cpp.o.d"
  "liberb_sparsenn.a"
  "liberb_sparsenn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erb_sparsenn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
