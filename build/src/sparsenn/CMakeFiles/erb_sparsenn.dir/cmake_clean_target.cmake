file(REMOVE_RECURSE
  "liberb_sparsenn.a"
)
