# Empty dependencies file for erb_common.
# This may be replaced when dependencies are built.
