file(REMOVE_RECURSE
  "CMakeFiles/erb_common.dir/strings.cpp.o"
  "CMakeFiles/erb_common.dir/strings.cpp.o.d"
  "liberb_common.a"
  "liberb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
