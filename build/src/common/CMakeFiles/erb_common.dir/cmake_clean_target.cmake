file(REMOVE_RECURSE
  "liberb_common.a"
)
