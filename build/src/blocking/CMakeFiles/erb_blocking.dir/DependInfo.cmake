
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocking/block.cpp" "src/blocking/CMakeFiles/erb_blocking.dir/block.cpp.o" "gcc" "src/blocking/CMakeFiles/erb_blocking.dir/block.cpp.o.d"
  "/root/repo/src/blocking/builders.cpp" "src/blocking/CMakeFiles/erb_blocking.dir/builders.cpp.o" "gcc" "src/blocking/CMakeFiles/erb_blocking.dir/builders.cpp.o.d"
  "/root/repo/src/blocking/cleaning.cpp" "src/blocking/CMakeFiles/erb_blocking.dir/cleaning.cpp.o" "gcc" "src/blocking/CMakeFiles/erb_blocking.dir/cleaning.cpp.o.d"
  "/root/repo/src/blocking/comparison.cpp" "src/blocking/CMakeFiles/erb_blocking.dir/comparison.cpp.o" "gcc" "src/blocking/CMakeFiles/erb_blocking.dir/comparison.cpp.o.d"
  "/root/repo/src/blocking/graph.cpp" "src/blocking/CMakeFiles/erb_blocking.dir/graph.cpp.o" "gcc" "src/blocking/CMakeFiles/erb_blocking.dir/graph.cpp.o.d"
  "/root/repo/src/blocking/sorted_neighborhood.cpp" "src/blocking/CMakeFiles/erb_blocking.dir/sorted_neighborhood.cpp.o" "gcc" "src/blocking/CMakeFiles/erb_blocking.dir/sorted_neighborhood.cpp.o.d"
  "/root/repo/src/blocking/workflow.cpp" "src/blocking/CMakeFiles/erb_blocking.dir/workflow.cpp.o" "gcc" "src/blocking/CMakeFiles/erb_blocking.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/erb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/erb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/erb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
