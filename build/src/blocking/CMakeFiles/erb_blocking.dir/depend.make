# Empty dependencies file for erb_blocking.
# This may be replaced when dependencies are built.
