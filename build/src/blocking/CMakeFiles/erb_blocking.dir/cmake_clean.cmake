file(REMOVE_RECURSE
  "CMakeFiles/erb_blocking.dir/block.cpp.o"
  "CMakeFiles/erb_blocking.dir/block.cpp.o.d"
  "CMakeFiles/erb_blocking.dir/builders.cpp.o"
  "CMakeFiles/erb_blocking.dir/builders.cpp.o.d"
  "CMakeFiles/erb_blocking.dir/cleaning.cpp.o"
  "CMakeFiles/erb_blocking.dir/cleaning.cpp.o.d"
  "CMakeFiles/erb_blocking.dir/comparison.cpp.o"
  "CMakeFiles/erb_blocking.dir/comparison.cpp.o.d"
  "CMakeFiles/erb_blocking.dir/graph.cpp.o"
  "CMakeFiles/erb_blocking.dir/graph.cpp.o.d"
  "CMakeFiles/erb_blocking.dir/sorted_neighborhood.cpp.o"
  "CMakeFiles/erb_blocking.dir/sorted_neighborhood.cpp.o.d"
  "CMakeFiles/erb_blocking.dir/workflow.cpp.o"
  "CMakeFiles/erb_blocking.dir/workflow.cpp.o.d"
  "liberb_blocking.a"
  "liberb_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erb_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
