file(REMOVE_RECURSE
  "liberb_blocking.a"
)
