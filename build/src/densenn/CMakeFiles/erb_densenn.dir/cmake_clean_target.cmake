file(REMOVE_RECURSE
  "liberb_densenn.a"
)
