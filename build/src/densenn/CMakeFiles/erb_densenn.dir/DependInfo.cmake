
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/densenn/autoencoder.cpp" "src/densenn/CMakeFiles/erb_densenn.dir/autoencoder.cpp.o" "gcc" "src/densenn/CMakeFiles/erb_densenn.dir/autoencoder.cpp.o.d"
  "/root/repo/src/densenn/embedding.cpp" "src/densenn/CMakeFiles/erb_densenn.dir/embedding.cpp.o" "gcc" "src/densenn/CMakeFiles/erb_densenn.dir/embedding.cpp.o.d"
  "/root/repo/src/densenn/flat_index.cpp" "src/densenn/CMakeFiles/erb_densenn.dir/flat_index.cpp.o" "gcc" "src/densenn/CMakeFiles/erb_densenn.dir/flat_index.cpp.o.d"
  "/root/repo/src/densenn/lsh.cpp" "src/densenn/CMakeFiles/erb_densenn.dir/lsh.cpp.o" "gcc" "src/densenn/CMakeFiles/erb_densenn.dir/lsh.cpp.o.d"
  "/root/repo/src/densenn/methods.cpp" "src/densenn/CMakeFiles/erb_densenn.dir/methods.cpp.o" "gcc" "src/densenn/CMakeFiles/erb_densenn.dir/methods.cpp.o.d"
  "/root/repo/src/densenn/minhash.cpp" "src/densenn/CMakeFiles/erb_densenn.dir/minhash.cpp.o" "gcc" "src/densenn/CMakeFiles/erb_densenn.dir/minhash.cpp.o.d"
  "/root/repo/src/densenn/partitioned_index.cpp" "src/densenn/CMakeFiles/erb_densenn.dir/partitioned_index.cpp.o" "gcc" "src/densenn/CMakeFiles/erb_densenn.dir/partitioned_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/erb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/erb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/erb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
