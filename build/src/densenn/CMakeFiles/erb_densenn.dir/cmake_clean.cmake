file(REMOVE_RECURSE
  "CMakeFiles/erb_densenn.dir/autoencoder.cpp.o"
  "CMakeFiles/erb_densenn.dir/autoencoder.cpp.o.d"
  "CMakeFiles/erb_densenn.dir/embedding.cpp.o"
  "CMakeFiles/erb_densenn.dir/embedding.cpp.o.d"
  "CMakeFiles/erb_densenn.dir/flat_index.cpp.o"
  "CMakeFiles/erb_densenn.dir/flat_index.cpp.o.d"
  "CMakeFiles/erb_densenn.dir/lsh.cpp.o"
  "CMakeFiles/erb_densenn.dir/lsh.cpp.o.d"
  "CMakeFiles/erb_densenn.dir/methods.cpp.o"
  "CMakeFiles/erb_densenn.dir/methods.cpp.o.d"
  "CMakeFiles/erb_densenn.dir/minhash.cpp.o"
  "CMakeFiles/erb_densenn.dir/minhash.cpp.o.d"
  "CMakeFiles/erb_densenn.dir/partitioned_index.cpp.o"
  "CMakeFiles/erb_densenn.dir/partitioned_index.cpp.o.d"
  "liberb_densenn.a"
  "liberb_densenn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erb_densenn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
