# Empty compiler generated dependencies file for erb_densenn.
# This may be replaced when dependencies are built.
