file(REMOVE_RECURSE
  "CMakeFiles/erb_text.dir/clean.cpp.o"
  "CMakeFiles/erb_text.dir/clean.cpp.o.d"
  "CMakeFiles/erb_text.dir/porter.cpp.o"
  "CMakeFiles/erb_text.dir/porter.cpp.o.d"
  "CMakeFiles/erb_text.dir/stopwords.cpp.o"
  "CMakeFiles/erb_text.dir/stopwords.cpp.o.d"
  "liberb_text.a"
  "liberb_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erb_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
