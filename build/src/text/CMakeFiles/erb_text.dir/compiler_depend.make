# Empty compiler generated dependencies file for erb_text.
# This may be replaced when dependencies are built.
