
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/clean.cpp" "src/text/CMakeFiles/erb_text.dir/clean.cpp.o" "gcc" "src/text/CMakeFiles/erb_text.dir/clean.cpp.o.d"
  "/root/repo/src/text/porter.cpp" "src/text/CMakeFiles/erb_text.dir/porter.cpp.o" "gcc" "src/text/CMakeFiles/erb_text.dir/porter.cpp.o.d"
  "/root/repo/src/text/stopwords.cpp" "src/text/CMakeFiles/erb_text.dir/stopwords.cpp.o" "gcc" "src/text/CMakeFiles/erb_text.dir/stopwords.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/erb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
