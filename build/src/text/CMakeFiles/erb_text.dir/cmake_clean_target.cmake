file(REMOVE_RECURSE
  "liberb_text.a"
)
