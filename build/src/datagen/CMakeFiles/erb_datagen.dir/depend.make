# Empty dependencies file for erb_datagen.
# This may be replaced when dependencies are built.
