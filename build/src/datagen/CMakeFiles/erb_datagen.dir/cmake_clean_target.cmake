file(REMOVE_RECURSE
  "liberb_datagen.a"
)
