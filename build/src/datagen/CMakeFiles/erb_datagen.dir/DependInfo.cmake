
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/csv_loader.cpp" "src/datagen/CMakeFiles/erb_datagen.dir/csv_loader.cpp.o" "gcc" "src/datagen/CMakeFiles/erb_datagen.dir/csv_loader.cpp.o.d"
  "/root/repo/src/datagen/csv_writer.cpp" "src/datagen/CMakeFiles/erb_datagen.dir/csv_writer.cpp.o" "gcc" "src/datagen/CMakeFiles/erb_datagen.dir/csv_writer.cpp.o.d"
  "/root/repo/src/datagen/generator.cpp" "src/datagen/CMakeFiles/erb_datagen.dir/generator.cpp.o" "gcc" "src/datagen/CMakeFiles/erb_datagen.dir/generator.cpp.o.d"
  "/root/repo/src/datagen/noise.cpp" "src/datagen/CMakeFiles/erb_datagen.dir/noise.cpp.o" "gcc" "src/datagen/CMakeFiles/erb_datagen.dir/noise.cpp.o.d"
  "/root/repo/src/datagen/registry.cpp" "src/datagen/CMakeFiles/erb_datagen.dir/registry.cpp.o" "gcc" "src/datagen/CMakeFiles/erb_datagen.dir/registry.cpp.o.d"
  "/root/repo/src/datagen/words.cpp" "src/datagen/CMakeFiles/erb_datagen.dir/words.cpp.o" "gcc" "src/datagen/CMakeFiles/erb_datagen.dir/words.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/erb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/erb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/erb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
