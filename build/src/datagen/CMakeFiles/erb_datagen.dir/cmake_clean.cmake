file(REMOVE_RECURSE
  "CMakeFiles/erb_datagen.dir/csv_loader.cpp.o"
  "CMakeFiles/erb_datagen.dir/csv_loader.cpp.o.d"
  "CMakeFiles/erb_datagen.dir/csv_writer.cpp.o"
  "CMakeFiles/erb_datagen.dir/csv_writer.cpp.o.d"
  "CMakeFiles/erb_datagen.dir/generator.cpp.o"
  "CMakeFiles/erb_datagen.dir/generator.cpp.o.d"
  "CMakeFiles/erb_datagen.dir/noise.cpp.o"
  "CMakeFiles/erb_datagen.dir/noise.cpp.o.d"
  "CMakeFiles/erb_datagen.dir/registry.cpp.o"
  "CMakeFiles/erb_datagen.dir/registry.cpp.o.d"
  "CMakeFiles/erb_datagen.dir/words.cpp.o"
  "CMakeFiles/erb_datagen.dir/words.cpp.o.d"
  "liberb_datagen.a"
  "liberb_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erb_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
