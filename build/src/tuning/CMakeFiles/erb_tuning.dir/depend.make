# Empty dependencies file for erb_tuning.
# This may be replaced when dependencies are built.
