file(REMOVE_RECURSE
  "CMakeFiles/erb_tuning.dir/blocking_tuner.cpp.o"
  "CMakeFiles/erb_tuning.dir/blocking_tuner.cpp.o.d"
  "CMakeFiles/erb_tuning.dir/dense_tuner.cpp.o"
  "CMakeFiles/erb_tuning.dir/dense_tuner.cpp.o.d"
  "CMakeFiles/erb_tuning.dir/gridspec.cpp.o"
  "CMakeFiles/erb_tuning.dir/gridspec.cpp.o.d"
  "CMakeFiles/erb_tuning.dir/metaeval.cpp.o"
  "CMakeFiles/erb_tuning.dir/metaeval.cpp.o.d"
  "CMakeFiles/erb_tuning.dir/result.cpp.o"
  "CMakeFiles/erb_tuning.dir/result.cpp.o.d"
  "CMakeFiles/erb_tuning.dir/sparse_tuner.cpp.o"
  "CMakeFiles/erb_tuning.dir/sparse_tuner.cpp.o.d"
  "CMakeFiles/erb_tuning.dir/suite.cpp.o"
  "CMakeFiles/erb_tuning.dir/suite.cpp.o.d"
  "liberb_tuning.a"
  "liberb_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erb_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
