file(REMOVE_RECURSE
  "liberb_tuning.a"
)
