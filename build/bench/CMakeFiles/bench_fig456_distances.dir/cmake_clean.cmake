file(REMOVE_RECURSE
  "CMakeFiles/bench_fig456_distances.dir/bench_fig456_distances.cpp.o"
  "CMakeFiles/bench_fig456_distances.dir/bench_fig456_distances.cpp.o.d"
  "bench_fig456_distances"
  "bench_fig456_distances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig456_distances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
