# Empty compiler generated dependencies file for bench_fig456_distances.
# This may be replaced when dependencies are built.
