# Empty compiler generated dependencies file for bench_table7_main.
# This may be replaced when dependencies are built.
