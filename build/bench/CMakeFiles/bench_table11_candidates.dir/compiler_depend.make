# Empty compiler generated dependencies file for bench_table11_candidates.
# This may be replaced when dependencies are built.
