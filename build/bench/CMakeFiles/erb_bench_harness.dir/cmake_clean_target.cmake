file(REMOVE_RECURSE
  "liberb_bench_harness.a"
)
