file(REMOVE_RECURSE
  "CMakeFiles/erb_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/erb_bench_harness.dir/harness.cpp.o.d"
  "liberb_bench_harness.a"
  "liberb_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erb_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
