# Empty dependencies file for erb_bench_harness.
# This may be replaced when dependencies are built.
