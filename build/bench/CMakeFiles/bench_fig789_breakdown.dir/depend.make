# Empty dependencies file for bench_fig789_breakdown.
# This may be replaced when dependencies are built.
