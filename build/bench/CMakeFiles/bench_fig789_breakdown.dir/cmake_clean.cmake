file(REMOVE_RECURSE
  "CMakeFiles/bench_fig789_breakdown.dir/bench_fig789_breakdown.cpp.o"
  "CMakeFiles/bench_fig789_breakdown.dir/bench_fig789_breakdown.cpp.o.d"
  "bench_fig789_breakdown"
  "bench_fig789_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig789_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
