file(REMOVE_RECURSE
  "CMakeFiles/erbench_cli.dir/erbench_cli.cpp.o"
  "CMakeFiles/erbench_cli.dir/erbench_cli.cpp.o.d"
  "erbench"
  "erbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erbench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
