
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/erbench_cli.cpp" "tools/CMakeFiles/erbench_cli.dir/erbench_cli.cpp.o" "gcc" "tools/CMakeFiles/erbench_cli.dir/erbench_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuning/CMakeFiles/erb_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/blocking/CMakeFiles/erb_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/sparsenn/CMakeFiles/erb_sparsenn.dir/DependInfo.cmake"
  "/root/repo/build/src/densenn/CMakeFiles/erb_densenn.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/erb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/erb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/erb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/erb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
