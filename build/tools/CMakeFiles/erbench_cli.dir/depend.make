# Empty dependencies file for erbench_cli.
# This may be replaced when dependencies are built.
