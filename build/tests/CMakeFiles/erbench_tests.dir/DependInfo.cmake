
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/blocking_test.cpp" "tests/CMakeFiles/erbench_tests.dir/blocking_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/blocking_test.cpp.o.d"
  "/root/repo/tests/calibration_test.cpp" "tests/CMakeFiles/erbench_tests.dir/calibration_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/calibration_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/erbench_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/erbench_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/csv_roundtrip_test.cpp" "tests/CMakeFiles/erbench_tests.dir/csv_roundtrip_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/csv_roundtrip_test.cpp.o.d"
  "/root/repo/tests/datagen_test.cpp" "tests/CMakeFiles/erbench_tests.dir/datagen_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/datagen_test.cpp.o.d"
  "/root/repo/tests/densenn_test.cpp" "tests/CMakeFiles/erbench_tests.dir/densenn_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/densenn_test.cpp.o.d"
  "/root/repo/tests/dirty_test.cpp" "tests/CMakeFiles/erbench_tests.dir/dirty_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/dirty_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/erbench_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/gridspec_test.cpp" "tests/CMakeFiles/erbench_tests.dir/gridspec_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/gridspec_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/erbench_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/join_equivalence_test.cpp" "tests/CMakeFiles/erbench_tests.dir/join_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/join_equivalence_test.cpp.o.d"
  "/root/repo/tests/probesweep_test.cpp" "tests/CMakeFiles/erbench_tests.dir/probesweep_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/probesweep_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/erbench_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/sparsenn_test.cpp" "tests/CMakeFiles/erbench_tests.dir/sparsenn_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/sparsenn_test.cpp.o.d"
  "/root/repo/tests/text_test.cpp" "tests/CMakeFiles/erbench_tests.dir/text_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/text_test.cpp.o.d"
  "/root/repo/tests/tuning_test.cpp" "tests/CMakeFiles/erbench_tests.dir/tuning_test.cpp.o" "gcc" "tests/CMakeFiles/erbench_tests.dir/tuning_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuning/CMakeFiles/erb_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/dirty/CMakeFiles/erb_dirty.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/erb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/blocking/CMakeFiles/erb_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/sparsenn/CMakeFiles/erb_sparsenn.dir/DependInfo.cmake"
  "/root/repo/build/src/densenn/CMakeFiles/erb_densenn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/erb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/erb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/erb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
