# Empty compiler generated dependencies file for erbench_tests.
# This may be replaced when dependencies are built.
