# Empty dependencies file for csv_benchmark.
# This may be replaced when dependencies are built.
