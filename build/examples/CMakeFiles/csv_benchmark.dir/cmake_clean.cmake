file(REMOVE_RECURSE
  "CMakeFiles/csv_benchmark.dir/csv_benchmark.cpp.o"
  "CMakeFiles/csv_benchmark.dir/csv_benchmark.cpp.o.d"
  "csv_benchmark"
  "csv_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
