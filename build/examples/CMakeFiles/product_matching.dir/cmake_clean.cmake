file(REMOVE_RECURSE
  "CMakeFiles/product_matching.dir/product_matching.cpp.o"
  "CMakeFiles/product_matching.dir/product_matching.cpp.o.d"
  "product_matching"
  "product_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
