file(REMOVE_RECURSE
  "CMakeFiles/deduplication.dir/deduplication.cpp.o"
  "CMakeFiles/deduplication.dir/deduplication.cpp.o.d"
  "deduplication"
  "deduplication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deduplication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
