# Empty compiler generated dependencies file for deduplication.
# This may be replaced when dependencies are built.
