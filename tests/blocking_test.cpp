// Tests for src/blocking: key extraction (against the paper's worked
// example), block building, cleaning, meta-blocking and workflows.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "blocking/builders.hpp"
#include "blocking/cleaning.hpp"
#include "blocking/comparison.hpp"
#include "blocking/entity_index.hpp"
#include "blocking/workflow.hpp"
#include "core/metrics.hpp"
#include "datagen/registry.hpp"

namespace erb::blocking {
namespace {

std::set<std::string> KeySet(std::string_view text, const BuilderConfig& config) {
  const auto keys = ExtractKeys(text, config);
  return {keys.begin(), keys.end()};
}

// The "Joe Biden" example of Section IV-B. Our normalizer lower-cases, so the
// expected keys are the paper's in lower case.
TEST(ExtractKeysTest, PaperExampleStandard) {
  BuilderConfig config;
  config.kind = BuilderKind::kStandard;
  EXPECT_EQ(KeySet("Joe Biden", config), (std::set<std::string>{"joe", "biden"}));
}

TEST(ExtractKeysTest, PaperExampleQGrams) {
  BuilderConfig config;
  config.kind = BuilderKind::kQGrams;
  config.q = 3;
  EXPECT_EQ(KeySet("Joe Biden", config),
            (std::set<std::string>{"joe", "bid", "ide", "den"}));
}

TEST(ExtractKeysTest, PaperExampleExtendedQGrams) {
  BuilderConfig config;
  config.kind = BuilderKind::kExtendedQGrams;
  config.q = 3;
  config.t = 0.9;
  // L = max(1, floor(3 * 0.9)) = 2 for "biden" (3 q-grams): combinations of
  // >= 2 q-grams; "joe" has a single q-gram.
  EXPECT_EQ(KeySet("Joe Biden", config),
            (std::set<std::string>{"joe", "bid_ide_den", "bid_ide", "bid_den",
                                   "ide_den"}));
}

TEST(ExtractKeysTest, PaperExampleSuffixArrays) {
  BuilderConfig config;
  config.kind = BuilderKind::kSuffixArrays;
  config.l_min = 3;
  EXPECT_EQ(KeySet("Joe Biden", config),
            (std::set<std::string>{"joe", "biden", "iden", "den"}));
}

TEST(ExtractKeysTest, PaperExampleExtendedSuffixArrays) {
  BuilderConfig config;
  config.kind = BuilderKind::kExtendedSuffixArrays;
  config.l_min = 3;
  EXPECT_EQ(KeySet("Joe Biden", config),
            (std::set<std::string>{"joe", "biden", "bide", "iden", "bid", "ide",
                                   "den"}));
}

TEST(ExtractKeysTest, DeduplicatesKeys) {
  BuilderConfig config;
  config.kind = BuilderKind::kStandard;
  EXPECT_EQ(ExtractKeys("red red red", config).size(), 1u);
}

TEST(ExtractKeysTest, EmptyText) {
  BuilderConfig config;
  EXPECT_TRUE(ExtractKeys("", config).empty());
  EXPECT_TRUE(ExtractKeys("  !!! ", config).empty());
}

core::Dataset ToyDataset() {
  using core::EntityProfile;
  auto p = [](const char* v) {
    EntityProfile e;
    e.attributes.push_back({"t", v});
    return e;
  };
  std::vector<EntityProfile> e1 = {p("alpha beta"), p("gamma delta"),
                                   p("epsilon")};
  std::vector<EntityProfile> e2 = {p("alpha beta extra"), p("gamma other"),
                                   p("unrelated")};
  return core::Dataset("toy", std::move(e1), std::move(e2), {{0, 0}, {1, 1}},
                       "t");
}

TEST(BuildBlocksTest, GroupsEntitiesBySharedToken) {
  const auto dataset = ToyDataset();
  BuilderConfig config;
  const auto blocks = BuildBlocks(dataset, core::SchemaMode::kAgnostic, config);
  // Useful blocks: alpha, beta (e1#0 + e2#0), gamma (e1#1 + e2#1).
  EXPECT_EQ(blocks.size(), 3u);
  for (const auto& block : blocks) {
    EXPECT_FALSE(block.e1.empty());
    EXPECT_FALSE(block.e2.empty());
  }
  EXPECT_EQ(TotalComparisons(blocks), 3u);
}

TEST(BuildBlocksTest, ProactiveBMaxDiscardsBigBlocks) {
  const auto dataset = ToyDataset();
  BuilderConfig config;
  config.kind = BuilderKind::kSuffixArrays;
  config.l_min = 2;
  config.b_max = 2;
  for (const auto& block :
       BuildBlocks(dataset, core::SchemaMode::kAgnostic, config)) {
    EXPECT_LT(block.Assignments(), 2u) << "b_max violated";
  }
}

TEST(BlockPurgingTest, RemovesOversizedBlocks) {
  BlockCollection blocks;
  // A stop-word-like block holding every entity.
  Block giant;
  for (core::EntityId i = 0; i < 50; ++i) giant.e1.push_back(i);
  for (core::EntityId i = 0; i < 50; ++i) giant.e2.push_back(i);
  blocks.push_back(giant);
  for (int b = 0; b < 20; ++b) {
    Block small;
    small.e1 = {static_cast<core::EntityId>(b)};
    small.e2 = {static_cast<core::EntityId>(b)};
    blocks.push_back(small);
  }
  BlockPurging(&blocks, 50, 50);
  EXPECT_EQ(blocks.size(), 20u);
  for (const auto& block : blocks) EXPECT_EQ(block.Comparisons(), 1u);
}

TEST(BlockPurgingTest, KeepsHomogeneousCollection) {
  BlockCollection blocks;
  for (int b = 0; b < 30; ++b) {
    Block block;
    block.e1 = {static_cast<core::EntityId>(b), static_cast<core::EntityId>(b + 1)};
    block.e2 = {static_cast<core::EntityId>(b)};
    blocks.push_back(block);
  }
  BlockPurging(&blocks, 100, 100);
  EXPECT_EQ(blocks.size(), 30u);
}

TEST(BlockFilteringTest, RatioOneIsIdentity) {
  const auto dataset = ToyDataset();
  auto blocks = BuildBlocks(dataset, core::SchemaMode::kAgnostic, BuilderConfig{});
  const auto before = TotalComparisons(blocks);
  BlockFiltering(&blocks, 1.0, dataset.e1().size(), dataset.e2().size());
  EXPECT_EQ(TotalComparisons(blocks), before);
}

TEST(BlockFilteringTest, RetainsSmallestBlocksPerEntity) {
  // Entity 0 of E1 participates in blocks of sizes 2 and 6; with ratio 0.5 it
  // must stay only in the smaller one.
  BlockCollection blocks(2);
  blocks[0].e1 = {0};
  blocks[0].e2 = {0};
  blocks[1].e1 = {0, 1, 2};
  blocks[1].e2 = {0, 1, 2};
  BlockFiltering(&blocks, 0.5, 3, 3);
  std::size_t assignments_of_entity0 = 0;
  for (const auto& block : blocks) {
    assignments_of_entity0 +=
        std::count(block.e1.begin(), block.e1.end(), core::EntityId{0});
  }
  EXPECT_EQ(assignments_of_entity0, 1u);
}

TEST(BlockFilteringTest, ReducesComparisons) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(2).Scaled(0.1));
  auto blocks = BuildBlocks(dataset, core::SchemaMode::kAgnostic, BuilderConfig{});
  const auto before = TotalComparisons(blocks);
  BlockFiltering(&blocks, 0.5, dataset.e1().size(), dataset.e2().size());
  EXPECT_LT(TotalComparisons(blocks), before);
}

TEST(ComparisonPropagationTest, EmitsDistinctPairsExactlyOnce) {
  BlockCollection blocks(2);
  blocks[0].e1 = {0, 1};
  blocks[0].e2 = {0};
  blocks[1].e1 = {0};
  blocks[1].e2 = {0, 1};  // pair (0,0) redundant across both blocks
  const auto candidates = ComparisonPropagation(blocks, 2, 2);
  // Distinct pairs: (0,0), (1,0), (0,1).
  EXPECT_EQ(candidates.size(), 3u);
  EXPECT_TRUE(candidates.Contains(0, 0));
  EXPECT_TRUE(candidates.Contains(1, 0));
  EXPECT_TRUE(candidates.Contains(0, 1));
}

TEST(EntityBlockIndexTest, CommonBlockCountsAndArcs) {
  BlockCollection blocks(2);
  blocks[0].e1 = {0};
  blocks[0].e2 = {0};          // 1 comparison
  blocks[1].e1 = {0, 1};
  blocks[1].e2 = {0, 1};       // 4 comparisons
  EntityBlockIndex index(blocks, 2, 2);
  bool saw_pair00 = false;
  index.ForEachPair([&](core::EntityId i, core::EntityId j, std::uint32_t common,
                        double arcs) {
    if (i == 0 && j == 0) {
      saw_pair00 = true;
      EXPECT_EQ(common, 2u);
      EXPECT_DOUBLE_EQ(arcs, 1.0 / 1.0 + 1.0 / 4.0);
    } else {
      EXPECT_EQ(common, 1u);
    }
  });
  EXPECT_TRUE(saw_pair00);
  EXPECT_EQ(index.BlocksOf1(0), 2u);
  EXPECT_EQ(index.BlocksOf2(1), 1u);
  index.EnsureDegrees();
  EXPECT_EQ(index.TotalPairs(), 4u);
  EXPECT_EQ(index.Degree1(0), 2u);
}

// The sorted and unsorted streams must emit the same pair multiset; sorted
// emission must come out in ascending (i, j).
TEST(EntityBlockIndexTest, SortedAndUnsortedStreamsAgree) {
  BlockCollection blocks(3);
  blocks[0].e1 = {2, 0};
  blocks[0].e2 = {3, 1};
  blocks[1].e1 = {0};
  blocks[1].e2 = {1, 0};
  blocks[2].e1 = {1, 2};
  blocks[2].e2 = {2};
  EntityBlockIndex index(blocks, 3, 4);
  std::vector<std::tuple<core::EntityId, core::EntityId, std::uint32_t>> sorted,
      unsorted;
  index.Stream<false, true>(0, 3, [&](core::EntityId i, core::EntityId j,
                                      std::uint32_t c, double) {
    sorted.emplace_back(i, j, c);
  });
  index.Stream<false, false>(0, 3, [&](core::EntityId i, core::EntityId j,
                                       std::uint32_t c, double) {
    unsorted.emplace_back(i, j, c);
  });
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  std::sort(unsorted.begin(), unsorted.end());
  EXPECT_EQ(sorted, unsorted);
}

// CSR boundary case: an entity assigned to no block at all must produce a
// gap in the offsets array and stream nothing.
TEST(EntityBlockIndexTest, EntityInZeroBlocks) {
  BlockCollection blocks(1);
  blocks[0].e1 = {0, 2};  // entity 1 is in no block
  blocks[0].e2 = {1};     // entities 0 and 2 of E2 are in no block
  EntityBlockIndex index(blocks, 3, 3);
  EXPECT_EQ(index.BlocksOf1(1), 0u);
  EXPECT_EQ(index.BlocksOf2(0), 0u);
  EXPECT_EQ(index.BlocksOf2(2), 0u);
  std::size_t pairs = 0;
  index.ForEachPair([&](core::EntityId i, core::EntityId j, std::uint32_t,
                        double) {
    EXPECT_NE(i, 1u);
    EXPECT_EQ(j, 1u);
    ++pairs;
  });
  EXPECT_EQ(pairs, 2u);
  index.EnsureDegrees();
  EXPECT_EQ(index.Degree1(1), 0u);
  EXPECT_EQ(index.TotalPairs(), 2u);
}

// CSR boundary case: duplicate entity-block assignments are preserved (the
// co-occurrence count rises once per occurrence, matching the brute-force
// oracle's per-member accumulation).
TEST(EntityBlockIndexTest, DuplicateAssignmentsCountPerOccurrence) {
  BlockCollection blocks(1);
  blocks[0].e1 = {0, 0};
  blocks[0].e2 = {1, 1, 1};
  EntityBlockIndex index(blocks, 1, 2);
  EXPECT_EQ(index.BlocksOf1(0), 2u);
  EXPECT_EQ(index.BlocksOf2(1), 3u);
  std::size_t pairs = 0;
  index.ForEachPair([&](core::EntityId i, core::EntityId j, std::uint32_t common,
                        double arcs) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(j, 1u);
    EXPECT_EQ(common, 6u);  // 2 occurrences of i x 3 of j
    EXPECT_DOUBLE_EQ(arcs, 6.0 / static_cast<double>(blocks[0].Comparisons()));
    ++pairs;
  });
  EXPECT_EQ(pairs, 1u);
}

// CSR boundary case: a collection of singleton 1x1 blocks.
TEST(EntityBlockIndexTest, SingletonBlocks) {
  BlockCollection blocks(2);
  blocks[0].e1 = {0};
  blocks[0].e2 = {1};
  blocks[1].e1 = {1};
  blocks[1].e2 = {0};
  EntityBlockIndex index(blocks, 2, 2);
  std::vector<std::pair<core::EntityId, core::EntityId>> pairs;
  index.ForEachPair([&](core::EntityId i, core::EntityId j, std::uint32_t common,
                        double arcs) {
    EXPECT_EQ(common, 1u);
    EXPECT_DOUBLE_EQ(arcs, 1.0);
    pairs.emplace_back(i, j);
  });
  EXPECT_EQ(pairs, (std::vector<std::pair<core::EntityId, core::EntityId>>{
                       {0, 1}, {1, 0}}));
}

TEST(PairWeightTest, SchemesMatchFormulas) {
  BlockCollection blocks(3);
  blocks[0].e1 = {0};
  blocks[0].e2 = {0};
  blocks[1].e1 = {0};
  blocks[1].e2 = {0};
  blocks[2].e1 = {0};
  blocks[2].e2 = {1};
  EntityBlockIndex index(blocks, 1, 2);
  // Pair (0,0): common = 2, |B0| = 3, |B_0 of e2| = 2, total blocks = 3.
  EXPECT_DOUBLE_EQ(PairWeight(index, WeightingScheme::kCbs, 0, 0, 2, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(PairWeight(index, WeightingScheme::kJs, 0, 0, 2, 2.0),
                   2.0 / (3 + 2 - 2));
  EXPECT_DOUBLE_EQ(PairWeight(index, WeightingScheme::kArcs, 0, 0, 2, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(
      PairWeight(index, WeightingScheme::kEcbs, 0, 0, 2, 2.0),
      2.0 * std::log(3.0 / 3.0) * std::log(3.0 / 2.0));
  EXPECT_GE(PairWeight(index, WeightingScheme::kChiSquared, 0, 0, 2, 2.0), 0.0);
}

// The hoisted weigher policies must reproduce PairWeight bit for bit on
// every distinct pair of a small collection — that equality is what lets
// the production kernel precompute the per-entity log factors.
TEST(PairWeightTest, WeighersMatchPairWeightBitForBit) {
  BlockCollection blocks(4);
  blocks[0].e1 = {0, 1};
  blocks[0].e2 = {0, 2};
  blocks[1].e1 = {0};
  blocks[1].e2 = {1};
  blocks[2].e1 = {2, 0};
  blocks[2].e2 = {2, 1, 0};
  blocks[3].e1 = {1};
  blocks[3].e2 = {0};
  EntityBlockIndex index(blocks, 3, 3);
  index.EnsureDegrees();
  for (WeightingScheme scheme :
       {WeightingScheme::kArcs, WeightingScheme::kCbs, WeightingScheme::kEcbs,
        WeightingScheme::kJs, WeightingScheme::kEjs,
        WeightingScheme::kChiSquared}) {
    const WeightTables tables = BuildWeightTables(index, scheme);
    DispatchWeigher(index, scheme, tables, [&](auto weigh) {
      index.ForEachPair([&](core::EntityId i, core::EntityId j,
                            std::uint32_t common, double arcs) {
        const double reference = PairWeight(index, scheme, i, j, common, arcs);
        const double hoisted = weigh(i, j, common, arcs);
        EXPECT_EQ(reference, hoisted)
            << SchemeName(scheme) << " pair (" << i << "," << j << ")";
      });
    });
  }
}

class PruningSubsetTest
    : public ::testing::TestWithParam<std::pair<WeightingScheme, PruningAlgorithm>> {};

TEST_P(PruningSubsetTest, MetaBlockingIsSubsetOfPropagation) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.3));
  const auto blocks =
      BuildBlocks(dataset, core::SchemaMode::kAgnostic, BuilderConfig{});
  const auto all = ComparisonPropagation(blocks, dataset.e1().size(),
                                         dataset.e2().size());
  const auto pruned =
      MetaBlocking(blocks, dataset.e1().size(), dataset.e2().size(),
                   GetParam().first, GetParam().second);
  EXPECT_LE(pruned.size(), all.size());
  EXPECT_GT(pruned.size(), 0u);
  for (core::PairKey key : pruned) {
    EXPECT_TRUE(all.Contains(core::PairFirst(key), core::PairSecond(key)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PruningSubsetTest,
    ::testing::Values(
        std::pair{WeightingScheme::kCbs, PruningAlgorithm::kWep},
        std::pair{WeightingScheme::kCbs, PruningAlgorithm::kWnp},
        std::pair{WeightingScheme::kCbs, PruningAlgorithm::kRwnp},
        std::pair{WeightingScheme::kArcs, PruningAlgorithm::kCep},
        std::pair{WeightingScheme::kJs, PruningAlgorithm::kCnp},
        std::pair{WeightingScheme::kEjs, PruningAlgorithm::kRcnp},
        std::pair{WeightingScheme::kEcbs, PruningAlgorithm::kBlast},
        std::pair{WeightingScheme::kChiSquared, PruningAlgorithm::kWnp}));

TEST(MetaBlockingTest, ReciprocalVariantsAreStricter) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(2).Scaled(0.1));
  const auto blocks =
      BuildBlocks(dataset, core::SchemaMode::kAgnostic, BuilderConfig{});
  const std::size_t n1 = dataset.e1().size(), n2 = dataset.e2().size();
  const auto wnp = MetaBlocking(blocks, n1, n2, WeightingScheme::kCbs,
                                PruningAlgorithm::kWnp);
  const auto rwnp = MetaBlocking(blocks, n1, n2, WeightingScheme::kCbs,
                                 PruningAlgorithm::kRwnp);
  const auto cnp = MetaBlocking(blocks, n1, n2, WeightingScheme::kCbs,
                                PruningAlgorithm::kCnp);
  const auto rcnp = MetaBlocking(blocks, n1, n2, WeightingScheme::kCbs,
                                 PruningAlgorithm::kRcnp);
  EXPECT_LE(rwnp.size(), wnp.size());
  EXPECT_LE(rcnp.size(), cnp.size());
}

TEST(WorkflowTest, PhasesAreRecorded) {
  const auto dataset = ToyDataset();
  WorkflowConfig config;
  config.block_purging = true;
  config.filter_ratio = 0.8;
  config.cleaning.use_metablocking = true;
  const auto result = RunWorkflow(dataset, core::SchemaMode::kAgnostic, config);
  EXPECT_GT(result.blocks_built, 0u);
  EXPECT_TRUE(result.timing.phases().contains(kPhaseBuild));
  EXPECT_TRUE(result.timing.phases().contains(kPhasePurge));
  EXPECT_TRUE(result.timing.phases().contains(kPhaseFilter));
  EXPECT_TRUE(result.timing.phases().contains(kPhaseClean));
}

TEST(WorkflowTest, PbwFindsAllTokenSharingDuplicates) {
  const auto dataset = ToyDataset();
  const auto result = RunWorkflow(dataset, core::SchemaMode::kAgnostic,
                                  ParameterFreeWorkflow());
  const auto eff = core::Evaluate(result.candidates, dataset);
  EXPECT_DOUBLE_EQ(eff.pc, 1.0);
}

TEST(WorkflowTest, DescribeMentionsAllSteps) {
  const auto config = DefaultWorkflow();
  const std::string desc = config.Describe();
  EXPECT_NE(desc.find("QGramsBlocking"), std::string::npos);
  EXPECT_NE(desc.find("q=6"), std::string::npos);
  EXPECT_NE(desc.find("WEP"), std::string::npos);
  EXPECT_NE(desc.find("ECBS"), std::string::npos);
}

TEST(WorkflowTest, SchemaBasedUsesOnlyBestAttribute) {
  using core::EntityProfile;
  auto p = [](const char* name, const char* other) {
    EntityProfile e;
    e.attributes.push_back({"name", name});
    e.attributes.push_back({"other", other});
    return e;
  };
  std::vector<EntityProfile> e1 = {p("unique1", "shared")};
  std::vector<EntityProfile> e2 = {p("unique2", "shared")};
  core::Dataset d("t", std::move(e1), std::move(e2), {{0, 0}}, "name");
  // No Block Purging: with only two entities, any shared block holds them
  // all and would be purged as stop-word-like.
  WorkflowConfig config;
  config.cleaning.use_metablocking = false;
  const auto agnostic = RunWorkflow(d, core::SchemaMode::kAgnostic, config);
  const auto based = RunWorkflow(d, core::SchemaMode::kBased, config);
  EXPECT_EQ(core::Evaluate(agnostic.candidates, d).pc, 1.0);  // via "shared"
  EXPECT_EQ(core::Evaluate(based.candidates, d).pc, 0.0);     // names differ
}

}  // namespace
}  // namespace erb::blocking
