// Differential test suite: every production filtering method runs against
// its brute-force oracle (src/oracle/) over the adversarial corpus, at 1 and
// 8 threads, asserting byte-identical candidate sets and PC/PQ metrics.
// The named regression tests at the bottom pin the boundary bugs this suite
// flushed out of the original implementations.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/builders.hpp"
#include "blocking/cleaning.hpp"
#include "blocking/comparison.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/metrics.hpp"
#include "datagen/csv_loader.hpp"
#include "densenn/embedding.hpp"
#include "densenn/flat_index.hpp"
#include "densenn/methods.hpp"
#include "oracle/blocking.hpp"
#include "oracle/corpus.hpp"
#include "oracle/dense.hpp"
#include "oracle/metrics.hpp"
#include "oracle/sparse.hpp"
#include "sparsenn/joins.hpp"

namespace erb {
namespace {

using blocking::BlockCollection;
using blocking::BuilderConfig;
using blocking::BuilderKind;
using blocking::PruningAlgorithm;
using blocking::WeightingScheme;
using core::CandidateSet;
using core::Dataset;
using core::SchemaMode;
using sparsenn::SimilarityMeasure;
using sparsenn::SparseConfig;
using sparsenn::TokenModel;

constexpr std::uint64_t kCorpusSeed = 20230406;

const std::vector<oracle::CorpusCase>& Corpus() {
  static const auto* corpus =
      new std::vector<oracle::CorpusCase>(oracle::BuildCorpus(kCorpusSeed));
  return *corpus;
}

// Byte-identical candidate sets: the finalized pair vectors must be equal,
// element for element.
void ExpectSameCandidates(const CandidateSet& production,
                          const CandidateSet& reference) {
  EXPECT_EQ(production.pairs(), reference.pairs());
}

// The production evaluation and the reference evaluation must agree exactly
// (and never produce NaN) for the given candidate set.
void ExpectSameEffectiveness(const CandidateSet& candidates,
                             const Dataset& dataset) {
  const core::Effectiveness production = core::Evaluate(candidates, dataset);
  const core::Effectiveness reference =
      oracle::EvaluateOracle(candidates, dataset);
  EXPECT_EQ(production.detected, reference.detected);
  EXPECT_EQ(production.candidates, reference.candidates);
  EXPECT_EQ(production.pc, reference.pc);
  EXPECT_EQ(production.pq, reference.pq);
  EXPECT_FALSE(std::isnan(production.pc));
  EXPECT_FALSE(std::isnan(production.pq));
}

void ExpectSameBlocks(const BlockCollection& production,
                      const BlockCollection& reference) {
  ASSERT_EQ(production.size(), reference.size());
  for (std::size_t b = 0; b < production.size(); ++b) {
    EXPECT_EQ(production[b].e1, reference[b].e1) << "block " << b << " (E1)";
    EXPECT_EQ(production[b].e2, reference[b].e2) << "block " << b << " (E2)";
  }
}

// The production blocking pipeline stages applied to one case: build (each
// tested against the canonical oracle separately), then purge + filter so
// the comparison-cleaning differentials run on realistic mid-pipeline
// collections with production block indices.
BlockCollection PipelineBlocks(const Dataset& dataset) {
  BuilderConfig config;
  config.kind = BuilderKind::kStandard;
  BlockCollection blocks =
      blocking::BuildBlocks(dataset, SchemaMode::kAgnostic, config);
  blocking::BlockPurging(&blocks, dataset.e1().size(), dataset.e2().size());
  blocking::BlockFiltering(&blocks, 0.8, dataset.e1().size(),
                           dataset.e2().size());
  return blocks;
}

// Thread-count parameterization: the full differential suite runs once with
// the pool pinned to a single thread and once fanned over 8.
class OracleTest : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Threads, OracleTest,
                         ::testing::Values<std::size_t>(1, 8),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "T" + std::to_string(info.param);
                         });

TEST_P(OracleTest, CorpusStaysWithinMetaBlockingBitExactBound) {
  for (const auto& c : Corpus()) {
    EXPECT_LE(c.dataset.e1().size(), oracle::kMaxCorpusE1) << c.name;
  }
}

TEST_P(OracleTest, EpsilonJoinMatchesOracle) {
  ScopedThreadLimit limit(GetParam());
  for (const auto& c : Corpus()) {
    SCOPED_TRACE(c.name);
    for (SimilarityMeasure measure :
         {SimilarityMeasure::kCosine, SimilarityMeasure::kDice,
          SimilarityMeasure::kJaccard}) {
      for (TokenModel model : {TokenModel::kT1G, TokenModel::kC3GM}) {
        for (double threshold : {0.0, 0.3, 0.5, 1.0}) {
          SCOPED_TRACE(std::string(MeasureName(measure)) + "/" +
                       std::string(ModelName(model)) + "/t=" +
                       std::to_string(threshold));
          SparseConfig config;
          config.measure = measure;
          config.model = model;
          const CandidateSet production =
              sparsenn::EpsilonJoin(c.dataset, SchemaMode::kAgnostic, config,
                                    threshold)
                  .candidates;
          const CandidateSet reference = oracle::EpsilonJoinOracle(
              c.dataset, SchemaMode::kAgnostic, config, threshold);
          ExpectSameCandidates(production, reference);
          ExpectSameEffectiveness(production, c.dataset);
        }
      }
    }
  }
}

TEST_P(OracleTest, KnnJoinMatchesOracle) {
  ScopedThreadLimit limit(GetParam());
  for (const auto& c : Corpus()) {
    SCOPED_TRACE(c.name);
    for (SimilarityMeasure measure :
         {SimilarityMeasure::kCosine, SimilarityMeasure::kJaccard}) {
      for (TokenModel model : {TokenModel::kT1G, TokenModel::kC3G}) {
        for (int k : {1, 2, 5}) {
          for (bool reverse : {false, true}) {
            SCOPED_TRACE(std::string(MeasureName(measure)) + "/" +
                         std::string(ModelName(model)) + "/k=" +
                         std::to_string(k) + (reverse ? "/rvs" : ""));
            SparseConfig config;
            config.measure = measure;
            config.model = model;
            const CandidateSet production =
                sparsenn::KnnJoin(c.dataset, SchemaMode::kAgnostic, config, k,
                                  reverse)
                    .candidates;
            const CandidateSet reference = oracle::KnnJoinOracle(
                c.dataset, SchemaMode::kAgnostic, config, k, reverse);
            ExpectSameCandidates(production, reference);
            ExpectSameEffectiveness(production, c.dataset);
          }
        }
      }
    }
  }
}

TEST_P(OracleTest, GlobalTopKJoinMatchesOracle) {
  ScopedThreadLimit limit(GetParam());
  for (const auto& c : Corpus()) {
    SCOPED_TRACE(c.name);
    for (std::size_t global_k : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                 std::size_t{1000}}) {
      SCOPED_TRACE("K=" + std::to_string(global_k));
      SparseConfig config;
      config.model = TokenModel::kT1G;
      const CandidateSet production =
          sparsenn::GlobalTopKJoin(c.dataset, SchemaMode::kAgnostic, config,
                                   global_k)
              .candidates;
      const CandidateSet reference = oracle::GlobalTopKJoinOracle(
          c.dataset, SchemaMode::kAgnostic, config, global_k);
      ExpectSameCandidates(production, reference);
      ExpectSameEffectiveness(production, c.dataset);
    }
  }
}

TEST_P(OracleTest, HybridJoinMatchesOracle) {
  ScopedThreadLimit limit(GetParam());
  for (const auto& c : Corpus()) {
    SCOPED_TRACE(c.name);
    for (SimilarityMeasure measure :
         {SimilarityMeasure::kCosine, SimilarityMeasure::kJaccard}) {
      for (TokenModel model : {TokenModel::kT1G, TokenModel::kC3GM}) {
        for (double threshold : {0.3, 0.7}) {
          for (int k : {0, 1, 3}) {
            for (sparsenn::FilterMode filter :
                 {sparsenn::FilterMode::kLength,
                  sparsenn::FilterMode::kPrefix}) {
              SCOPED_TRACE(
                  std::string(MeasureName(measure)) + "/" +
                  std::string(ModelName(model)) + "/t=" +
                  std::to_string(threshold) + "/k=" + std::to_string(k) +
                  (filter == sparsenn::FilterMode::kPrefix ? "/prefix"
                                                           : "/length"));
              SparseConfig config;
              config.measure = measure;
              config.model = model;
              config.filter = filter;
              const CandidateSet production =
                  sparsenn::HybridJoin(c.dataset, SchemaMode::kAgnostic,
                                       config, threshold, k)
                      .candidates;
              const CandidateSet reference = oracle::HybridJoinOracle(
                  c.dataset, SchemaMode::kAgnostic, config, threshold, k);
              ExpectSameCandidates(production, reference);
              ExpectSameEffectiveness(production, c.dataset);
            }
          }
        }
      }
    }
  }
}

// The prefix/positional filter must be a pure optimization: for every join
// principle, forcing it on or off yields byte-identical candidate sets.
TEST_P(OracleTest, FilterModesProduceByteIdenticalCandidates) {
  ScopedThreadLimit limit(GetParam());
  for (const auto& c : Corpus()) {
    SCOPED_TRACE(c.name);
    for (SimilarityMeasure measure :
         {SimilarityMeasure::kCosine, SimilarityMeasure::kDice,
          SimilarityMeasure::kJaccard}) {
      SCOPED_TRACE(MeasureName(measure));
      SparseConfig length_config;
      length_config.measure = measure;
      length_config.filter = sparsenn::FilterMode::kLength;
      SparseConfig prefix_config = length_config;
      prefix_config.filter = sparsenn::FilterMode::kPrefix;
      for (double threshold : {0.2, 0.6, 1.0}) {
        ExpectSameCandidates(
            sparsenn::EpsilonJoin(c.dataset, SchemaMode::kAgnostic,
                                  prefix_config, threshold)
                .candidates,
            sparsenn::EpsilonJoin(c.dataset, SchemaMode::kAgnostic,
                                  length_config, threshold)
                .candidates);
      }
      for (int k : {1, 3}) {
        ExpectSameCandidates(
            sparsenn::KnnJoin(c.dataset, SchemaMode::kAgnostic, prefix_config,
                              k, false)
                .candidates,
            sparsenn::KnnJoin(c.dataset, SchemaMode::kAgnostic, length_config,
                              k, false)
                .candidates);
      }
      ExpectSameCandidates(
          sparsenn::GlobalTopKJoin(c.dataset, SchemaMode::kAgnostic,
                                   prefix_config, 25)
              .candidates,
          sparsenn::GlobalTopKJoin(c.dataset, SchemaMode::kAgnostic,
                                   length_config, 25)
              .candidates);
    }
  }
}

TEST_P(OracleTest, BlockBuildersMatchOracle) {
  ScopedThreadLimit limit(GetParam());
  for (const auto& c : Corpus()) {
    SCOPED_TRACE(c.name);
    for (BuilderKind kind :
         {BuilderKind::kStandard, BuilderKind::kQGrams,
          BuilderKind::kExtendedQGrams, BuilderKind::kSuffixArrays,
          BuilderKind::kExtendedSuffixArrays}) {
      SCOPED_TRACE(blocking::BuilderName(kind));
      BuilderConfig config;
      config.kind = kind;
      config.q = 3;
      config.t = 0.9;
      config.l_min = 2;
      config.b_max = 8;  // small enough that the proactive bound is live
      const auto production = oracle::CanonicalBlocks(
          blocking::BuildBlocks(c.dataset, SchemaMode::kAgnostic, config));
      const auto reference = oracle::CanonicalBlocks(
          oracle::BuildBlocksOracle(c.dataset, SchemaMode::kAgnostic, config));
      EXPECT_EQ(production, reference);
    }
  }
}

TEST_P(OracleTest, BlockPurgingMatchesOracle) {
  ScopedThreadLimit limit(GetParam());
  for (const auto& c : Corpus()) {
    SCOPED_TRACE(c.name);
    for (BuilderKind kind : {BuilderKind::kStandard, BuilderKind::kQGrams}) {
      SCOPED_TRACE(blocking::BuilderName(kind));
      BuilderConfig config;
      config.kind = kind;
      const BlockCollection built =
          blocking::BuildBlocks(c.dataset, SchemaMode::kAgnostic, config);
      BlockCollection production = built;
      BlockCollection reference = built;
      blocking::BlockPurging(&production, c.dataset.e1().size(),
                             c.dataset.e2().size());
      oracle::BlockPurgingOracle(&reference, c.dataset.e1().size(),
                                 c.dataset.e2().size());
      ExpectSameBlocks(production, reference);
    }
  }
}

TEST_P(OracleTest, BlockFilteringMatchesOracle) {
  ScopedThreadLimit limit(GetParam());
  for (const auto& c : Corpus()) {
    SCOPED_TRACE(c.name);
    for (double ratio : {0.5, 0.8}) {
      SCOPED_TRACE("ratio=" + std::to_string(ratio));
      BuilderConfig config;
      config.kind = BuilderKind::kQGrams;
      const BlockCollection built =
          blocking::BuildBlocks(c.dataset, SchemaMode::kAgnostic, config);
      BlockCollection production = built;
      BlockCollection reference = built;
      blocking::BlockFiltering(&production, ratio, c.dataset.e1().size(),
                               c.dataset.e2().size());
      oracle::BlockFilteringOracle(&reference, ratio, c.dataset.e1().size(),
                                   c.dataset.e2().size());
      ExpectSameBlocks(production, reference);
    }
  }
}

TEST_P(OracleTest, ComparisonPropagationMatchesOracle) {
  ScopedThreadLimit limit(GetParam());
  for (const auto& c : Corpus()) {
    SCOPED_TRACE(c.name);
    const BlockCollection blocks = PipelineBlocks(c.dataset);
    const CandidateSet production = blocking::ComparisonPropagation(
        blocks, c.dataset.e1().size(), c.dataset.e2().size());
    const CandidateSet reference = oracle::ComparisonPropagationOracle(
        blocks, c.dataset.e1().size(), c.dataset.e2().size());
    ExpectSameCandidates(production, reference);
    ExpectSameEffectiveness(production, c.dataset);
  }
}

TEST_P(OracleTest, MetaBlockingMatchesOracle) {
  ScopedThreadLimit limit(GetParam());
  for (const auto& c : Corpus()) {
    SCOPED_TRACE(c.name);
    const BlockCollection blocks = PipelineBlocks(c.dataset);
    for (WeightingScheme scheme :
         {WeightingScheme::kArcs, WeightingScheme::kCbs, WeightingScheme::kEcbs,
          WeightingScheme::kJs, WeightingScheme::kEjs,
          WeightingScheme::kChiSquared}) {
      for (PruningAlgorithm pruning :
           {PruningAlgorithm::kBlast, PruningAlgorithm::kCep,
            PruningAlgorithm::kCnp, PruningAlgorithm::kRcnp,
            PruningAlgorithm::kRwnp, PruningAlgorithm::kWep,
            PruningAlgorithm::kWnp}) {
        SCOPED_TRACE(std::string(blocking::SchemeName(scheme)) + "/" +
                     std::string(blocking::PruningName(pruning)));
        const CandidateSet production =
            blocking::MetaBlocking(blocks, c.dataset.e1().size(),
                                   c.dataset.e2().size(), scheme, pruning);
        const CandidateSet reference =
            oracle::MetaBlockingOracle(blocks, c.dataset.e1().size(),
                                       c.dataset.e2().size(), scheme, pruning);
        ExpectSameCandidates(production, reference);
        ExpectSameEffectiveness(production, c.dataset);
      }
    }
  }
}

// Handcrafted boundary collections the CSR entity-to-block index must
// handle: all-singleton 1x1 blocks, entities absent from every block (gaps
// in the offsets array), and duplicate entity-block assignments (an entity
// listed twice in one block's member list). Each collection runs Comparison
// Propagation and the full 6x7 scheme x pruning grid against the
// brute-force oracle; n1 stays within the bit-exactness bound
// (oracle::kMaxCorpusE1).
TEST_P(OracleTest, MetaBlockingBoundaryCollectionsMatchOracle) {
  ScopedThreadLimit limit(GetParam());
  struct BoundaryCase {
    const char* name;
    BlockCollection blocks;
    std::size_t n1, n2;
  };
  std::vector<BoundaryCase> cases;
  {
    // All-singleton blocks: every node's neighborhood is exactly one pair,
    // so every per-node average, top-k and maximum collapses onto it.
    BlockCollection blocks(3);
    blocks[0].e1 = {0};
    blocks[0].e2 = {2};
    blocks[1].e1 = {1};
    blocks[1].e2 = {1};
    blocks[2].e1 = {2};
    blocks[2].e2 = {0};
    cases.push_back({"singleton_blocks", blocks, 3, 3});
  }
  {
    // Entities in zero blocks on both sides: ids 1, 2, 4 of E1 and 0, 1, 3,
    // 5 of E2 never appear, leaving empty CSR ranges that must stream
    // nothing (and contribute nothing to EJS degrees).
    BlockCollection blocks(2);
    blocks[0].e1 = {0};
    blocks[0].e2 = {4};
    blocks[1].e1 = {3, 0};
    blocks[1].e2 = {4, 2};
    cases.push_back({"zero_block_entities", blocks, 5, 6});
  }
  {
    // Duplicate entity-block assignments: the co-occurrence count rises
    // once per occurrence and |B_i| counts assignments, not distinct
    // blocks — the CSR build must preserve the duplicates.
    BlockCollection blocks(3);
    blocks[0].e1 = {0, 0, 1};
    blocks[0].e2 = {1, 1};
    blocks[1].e1 = {1};
    blocks[1].e2 = {0, 0, 0};
    blocks[2].e1 = {2, 2};
    blocks[2].e2 = {2};
    cases.push_back({"duplicate_assignments", blocks, 3, 3});
  }

  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    ASSERT_LE(c.n1, oracle::kMaxCorpusE1);
    const CandidateSet cp_production =
        blocking::ComparisonPropagation(c.blocks, c.n1, c.n2);
    const CandidateSet cp_reference =
        oracle::ComparisonPropagationOracle(c.blocks, c.n1, c.n2);
    ExpectSameCandidates(cp_production, cp_reference);
    for (WeightingScheme scheme :
         {WeightingScheme::kArcs, WeightingScheme::kCbs, WeightingScheme::kEcbs,
          WeightingScheme::kJs, WeightingScheme::kEjs,
          WeightingScheme::kChiSquared}) {
      for (PruningAlgorithm pruning :
           {PruningAlgorithm::kBlast, PruningAlgorithm::kCep,
            PruningAlgorithm::kCnp, PruningAlgorithm::kRcnp,
            PruningAlgorithm::kRwnp, PruningAlgorithm::kWep,
            PruningAlgorithm::kWnp}) {
        SCOPED_TRACE(std::string(blocking::SchemeName(scheme)) + "/" +
                     std::string(blocking::PruningName(pruning)));
        const CandidateSet production =
            blocking::MetaBlocking(c.blocks, c.n1, c.n2, scheme, pruning);
        const CandidateSet reference =
            oracle::MetaBlockingOracle(c.blocks, c.n1, c.n2, scheme, pruning);
        ExpectSameCandidates(production, reference);
      }
    }
  }
}

TEST_P(OracleTest, DenseKnnSearchMatchesOracle) {
  ScopedThreadLimit limit(GetParam());
  for (const auto& c : Corpus()) {
    SCOPED_TRACE(c.name);
    const auto indexed = densenn::EmbedSide(c.dataset, 0, SchemaMode::kAgnostic,
                                            /*clean=*/false);
    const auto queries = densenn::EmbedSide(c.dataset, 1, SchemaMode::kAgnostic,
                                            /*clean=*/false);
    for (densenn::DenseMetric metric :
         {densenn::DenseMetric::kSquaredL2, densenn::DenseMetric::kDotProduct}) {
      const densenn::FlatIndex index(indexed, metric);
      for (int k : {1, 3, 10}) {
        SCOPED_TRACE("k=" + std::to_string(k));
        const auto batch = index.SearchBatch(queries, k);
        ASSERT_EQ(batch.size(), queries.size());
        for (std::size_t q = 0; q < queries.size(); ++q) {
          EXPECT_EQ(batch[q],
                    oracle::ExactKnnOracle(indexed, queries[q], metric, k))
              << "query " << q;
        }
      }
    }
  }
}

TEST_P(OracleTest, DenseRangeSearchMatchesOracle) {
  ScopedThreadLimit limit(GetParam());
  for (const auto& c : Corpus()) {
    SCOPED_TRACE(c.name);
    const auto indexed = densenn::EmbedSide(c.dataset, 0, SchemaMode::kAgnostic,
                                            /*clean=*/false);
    const auto queries = densenn::EmbedSide(c.dataset, 1, SchemaMode::kAgnostic,
                                            /*clean=*/false);
    const densenn::FlatIndex l2_index(indexed, densenn::DenseMetric::kSquaredL2);
    const densenn::FlatIndex dot_index(indexed, densenn::DenseMetric::kDotProduct);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      for (float radius : {0.5f, 2.0f}) {
        EXPECT_EQ(l2_index.RangeSearch(queries[q], radius),
                  oracle::RangeSearchOracle(indexed, queries[q],
                                            densenn::DenseMetric::kSquaredL2,
                                            radius))
            << "query " << q;
      }
      EXPECT_EQ(dot_index.RangeSearch(queries[q], 0.6f),
                oracle::RangeSearchOracle(indexed, queries[q],
                                          densenn::DenseMetric::kDotProduct,
                                          0.6f))
          << "query " << q;
    }
  }
}

TEST_P(OracleTest, FaissKnnMatchesOracle) {
  ScopedThreadLimit limit(GetParam());
  for (const auto& c : Corpus()) {
    SCOPED_TRACE(c.name);
    for (bool reverse : {false, true}) {
      for (bool clean : {false, true}) {
        SCOPED_TRACE(std::string(reverse ? "rvs" : "fwd") +
                     (clean ? "/clean" : ""));
        densenn::KnnSearchConfig config;
        config.k = 2;
        config.reverse = reverse;
        config.clean = clean;
        const CandidateSet production =
            densenn::FaissKnn(c.dataset, SchemaMode::kAgnostic, config)
                .candidates;
        const CandidateSet reference =
            oracle::FaissKnnOracle(c.dataset, SchemaMode::kAgnostic, config);
        ExpectSameCandidates(production, reference);
        ExpectSameEffectiveness(production, c.dataset);
      }
    }
  }
}

// Adversarial input for the ε-Join length filter: nested prefix sets whose
// sizes span 1..16, so many (query, indexed) pairs land *exactly* on the
// similarity threshold and exactly on the filter's size-window and
// min-overlap boundaries (e.g. Jaccard(q=4, s=2, o=2) = 0.5 with s equal to
// the t=0.5 window's lower edge). Disjoint singletons cover the
// zero-overlap path, and the equal-size queries cover windows that prune
// nothing while min_overlap still decides.
Dataset LengthFilterBoundaryDataset() {
  const auto profile = [](const std::string& text) {
    core::EntityProfile p;
    p.attributes.push_back({"name", text});
    return p;
  };
  const auto prefix = [](std::size_t n) {
    std::string text;
    for (std::size_t i = 0; i < n; ++i) {
      if (!text.empty()) text += ' ';
      text += 't';
      text += std::to_string(i);
    }
    return text;
  };
  std::vector<core::EntityProfile> e1;
  for (std::size_t n : {1, 2, 3, 4, 6, 8, 12, 16}) e1.push_back(profile(prefix(n)));
  e1.push_back(profile("u0"));  // disjoint singleton
  std::vector<core::EntityProfile> e2 = {
      profile(prefix(1)),            // singleton query
      profile(prefix(4)),            // mid-size, subset/superset boundaries
      profile("t2 t3 t4 t5"),        // partial overlap at equal size
      profile(prefix(16)),           // largest: window clips the small side
      profile("v0"),                 // matches nothing
  };
  return Dataset("length-filter-boundary", std::move(e1), std::move(e2),
                 {{0, 0}, {3, 1}, {7, 3}}, "name");
}

// ε-Join differential on the boundary dataset, with thresholds chosen so
// similarities land exactly on the predicate (>= must admit them) and the
// length-filter window edges are hit exactly. Guards the CSR ProbeFiltered
// path: a filter that is off by one integer unit, or that drops a set whose
// size sits on a window edge, diverges from the oracle here.
TEST_P(OracleTest, EpsilonJoinLengthFilterBoundaries) {
  ScopedThreadLimit limit(GetParam());
  const Dataset dataset = LengthFilterBoundaryDataset();
  for (SimilarityMeasure measure :
       {SimilarityMeasure::kCosine, SimilarityMeasure::kDice,
        SimilarityMeasure::kJaccard}) {
    for (double threshold :
         {0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0, 0.75, std::sqrt(0.5), 1.0}) {
      SCOPED_TRACE(std::string(MeasureName(measure)) + "/t=" +
                   std::to_string(threshold));
      SparseConfig config;
      config.model = TokenModel::kT1G;
      config.measure = measure;
      const CandidateSet production =
          sparsenn::EpsilonJoin(dataset, SchemaMode::kAgnostic, config,
                                threshold)
              .candidates;
      const CandidateSet reference = oracle::EpsilonJoinOracle(
          dataset, SchemaMode::kAgnostic, config, threshold);
      ExpectSameCandidates(production, reference);
      ExpectSameEffectiveness(production, dataset);
    }
  }
}

// ---------------------------------------------------------------------------
// Named regression tests for the bugs the differential suite flushed out.
// ---------------------------------------------------------------------------

const Dataset& TiesDataset() {
  for (const auto& c : Corpus()) {
    if (c.name == "similarity-ties") return c.dataset;
  }
  ADD_FAILURE() << "similarity-ties case missing from corpus";
  static const Dataset empty;
  return empty;
}

// GlobalTopKJoin used to fall through to an exact-match threshold of 1.0
// when K = 0 (the empty pass-1 heap), emitting every similarity-1 pair
// instead of nothing.
TEST(OracleRegressionTest, GlobalTopKZeroSelectsNothing) {
  SparseConfig config;
  config.model = TokenModel::kT1G;
  const auto result = sparsenn::GlobalTopKJoin(
      TiesDataset(), SchemaMode::kAgnostic, config, /*global_k=*/0);
  EXPECT_TRUE(result.candidates.empty());
}

// EpsilonJoin used to return only overlapping pairs at threshold 0, because
// the inverted index never surfaces zero-overlap pairs; the literal
// predicate sim >= 0 admits the full Cartesian product.
TEST(OracleRegressionTest, EpsilonJoinZeroThresholdIsCartesian) {
  const Dataset& dataset = TiesDataset();
  SparseConfig config;
  config.model = TokenModel::kT1G;
  const auto result =
      sparsenn::EpsilonJoin(dataset, SchemaMode::kAgnostic, config, 0.0);
  EXPECT_EQ(result.candidates.size(), dataset.CartesianSize());
  // ("aa bb", "dd") shares no token — exactly the kind of pair the index
  // path missed.
  EXPECT_TRUE(result.candidates.Contains(0, 4));
}

// kNN-Join defines k over *distinct* similarity values: neighbors tied with
// the k-th value are all retained, and the tie order is pinned to ascending
// entity id.
TEST(OracleRegressionTest, KnnJoinRetainsAllTiedNeighbors) {
  const Dataset& dataset = TiesDataset();
  SparseConfig config;
  config.model = TokenModel::kT1G;
  config.measure = SimilarityMeasure::kJaccard;
  // Query "aa bb cc" (E2 id 3) has Jaccard 2/3 with E1 ids 0, 1 and 2 alike;
  // k = 1 must keep all three.
  const auto result = sparsenn::KnnJoin(dataset, SchemaMode::kAgnostic, config,
                                        /*k=*/1, /*reverse=*/false);
  EXPECT_TRUE(result.candidates.Contains(0, 3));
  EXPECT_TRUE(result.candidates.Contains(1, 3));
  EXPECT_TRUE(result.candidates.Contains(2, 3));
}

// Dense top-k boundary ties resolve to the lowest entity ids.
TEST(OracleRegressionTest, DenseTopKBoundaryTiesKeepLowestIds) {
  const std::vector<densenn::Vector> vectors = {
      {1.0f, 0.0f}, {1.0f, 0.0f}, {1.0f, 0.0f}, {0.0f, 1.0f}};
  for (densenn::DenseMetric metric :
       {densenn::DenseMetric::kSquaredL2, densenn::DenseMetric::kDotProduct}) {
    const densenn::FlatIndex index(vectors, metric);
    const std::vector<std::uint32_t> expected = {0, 1};
    EXPECT_EQ(index.Search({1.0f, 0.0f}, 2), expected);
    EXPECT_EQ(oracle::ExactKnnOracle(vectors, {1.0f, 0.0f}, metric, 2),
              expected);
  }
}

// The score oracles replicate the production kernels' striped reduction
// tree, so agreement is bitwise — on every SIMD backend this build supports,
// including sizes off the 8-lane boundary. A reassociated production kernel
// (e.g. an FMA-contracted AVX2 path) breaks this, and with it the exact
// score comparisons of the dense differential suite.
TEST(OracleRegressionTest, ScoreOraclesMatchProductionKernelsBitwise) {
  std::vector<simd::Kind> kinds = {simd::Kind::kScalar};
  if (simd::KindSupported(simd::Kind::kAvx2)) kinds.push_back(simd::Kind::kAvx2);
  if (simd::KindSupported(simd::Kind::kNeon)) kinds.push_back(simd::Kind::kNeon);
  for (simd::Kind kind : kinds) {
    simd::ScopedSimdKind scoped(kind);
    for (std::size_t n : {1u, 7u, 8u, 9u, 300u}) {
      Rng rng(9000 + n);
      densenn::Vector a(n), b(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = static_cast<float>(rng.NextDouble(-2.0, 2.0));
        b[i] = static_cast<float>(rng.NextDouble(-2.0, 2.0));
      }
      const float dot_ref = oracle::DotOracle(a, b);
      const float dot_got = densenn::Dot(a, b);
      EXPECT_EQ(std::memcmp(&dot_ref, &dot_got, sizeof(float)), 0)
          << simd::KindName(kind) << " dot n=" << n;
      const float l2_ref = oracle::SquaredL2Oracle(a, b);
      const float l2_got = densenn::SquaredL2(a, b);
      EXPECT_EQ(std::memcmp(&l2_ref, &l2_got, sizeof(float)), 0)
          << simd::KindName(kind) << " l2 n=" << n;
    }
  }
}

class CsvLoaderRegressionTest : public ::testing::Test {
 protected:
  std::string Write(const std::string& name, const std::string& content) {
    const std::string path = testing::TempDir() + "/oracle_csv_" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    return path;
  }
};

// The loader used to conflate records made of quoted empty fields with blank
// lines and silently drop them — including a final record cut off at EOF.
TEST_F(CsvLoaderRegressionTest, QuotedEmptyRecordIsNotABlankLine) {
  const std::string e1 = Write("e1a.csv",
                               "id,name\n"
                               "1,alpha\n"
                               "\n"             // true blank line: skipped
                               "2,beta\n"
                               "\"\"\n");       // record with a quoted empty id
  const std::string e2 = Write("e2a.csv", "id,name\n9,alpha\n");
  const std::string gt = Write("gta.csv", "id1,id2\n1,9\n");
  const auto dataset = datagen::LoadCsvDataset("quoted-empty", e1, e2, gt, "name");
  EXPECT_EQ(dataset.e1().size(), 3u);
  EXPECT_EQ(dataset.e2().size(), 1u);
  EXPECT_EQ(dataset.NumDuplicates(), 1u);
}

TEST_F(CsvLoaderRegressionTest, UnterminatedQuoteAtEofKeepsFinalRecord) {
  const std::string e1 = Write("e1b.csv",
                               "id,name\n"
                               "1,alpha\n"
                               "2,\"bet");  // EOF inside the quoted field
  const std::string e2 = Write("e2b.csv", "id,name\n9,alpha\n");
  const std::string gt = Write("gtb.csv", "id1,id2\n2,9\n");
  const auto dataset =
      datagen::LoadCsvDataset("unterminated", e1, e2, gt, "name");
  ASSERT_EQ(dataset.e1().size(), 2u);
  EXPECT_EQ(dataset.e1()[1].attributes.at(0).value, "bet");
  EXPECT_EQ(dataset.NumDuplicates(), 1u);
}

// ERB_THREADS parsing: reject junk, zero, negatives and absurd values with a
// clear fallback instead of honouring whatever strtol happened to return.
TEST(ParseThreadCountTest, AcceptsOnlySaneValues) {
  constexpr std::size_t kFallback = 7;
  EXPECT_EQ(ParseThreadCount("8", kFallback), 8u);
  EXPECT_EQ(ParseThreadCount("1", kFallback), 1u);
  EXPECT_EQ(ParseThreadCount(" 8 \n", kFallback), 8u);
  EXPECT_EQ(ParseThreadCount("4096", kFallback), 4096u);
  EXPECT_EQ(ParseThreadCount(nullptr, kFallback), kFallback);
  EXPECT_EQ(ParseThreadCount("", kFallback), kFallback);
  EXPECT_EQ(ParseThreadCount("0", kFallback), kFallback);
  EXPECT_EQ(ParseThreadCount("-3", kFallback), kFallback);
  EXPECT_EQ(ParseThreadCount("abc", kFallback), kFallback);
  EXPECT_EQ(ParseThreadCount("3abc", kFallback), kFallback);
  EXPECT_EQ(ParseThreadCount("4097", kFallback), kFallback);
  // Overflows strtol on every platform (errno = ERANGE).
  EXPECT_EQ(ParseThreadCount("999999999999999999999999", kFallback), kFallback);
}

core::EntityProfile NamedProfile(const std::string& value) {
  core::EntityProfile profile;
  profile.attributes.push_back({"name", value});
  return profile;
}

// Metrics degenerate cases: PC/PQ are always finite, an empty ground truth
// is vacuously complete, and repeated ground-truth rows collapse so PC can
// reach 1.
TEST(MetricsRegressionTest, ZeroCandidatesGiveFiniteZeroes) {
  const Dataset dataset("gt", {NamedProfile("a")}, {NamedProfile("a")},
                        {{0, 0}}, "name");
  CandidateSet empty;
  empty.Finalize();
  const auto production = core::Evaluate(empty, dataset);
  EXPECT_EQ(production.pc, 0.0);
  EXPECT_EQ(production.pq, 0.0);
  ExpectSameEffectiveness(empty, dataset);
}

TEST(MetricsRegressionTest, EmptyGroundTruthIsVacuouslyComplete) {
  const Dataset dataset("no-gt", {NamedProfile("a")}, {NamedProfile("b")}, {},
                        "name");
  CandidateSet candidates;
  candidates.Add(0, 0);
  candidates.Finalize();
  const auto production = core::Evaluate(candidates, dataset);
  EXPECT_EQ(production.pc, 1.0);
  EXPECT_EQ(production.pq, 0.0);
  EXPECT_FALSE(std::isnan(production.pc));
  ExpectSameEffectiveness(candidates, dataset);
}

TEST(MetricsRegressionTest, SupersetOfDuplicatesReachesFullRecall) {
  const Dataset dataset("full", {NamedProfile("a"), NamedProfile("b")},
                        {NamedProfile("a"), NamedProfile("b")},
                        {{0, 0}, {1, 1}}, "name");
  CandidateSet cartesian;
  for (core::EntityId i = 0; i < 2; ++i) {
    for (core::EntityId j = 0; j < 2; ++j) cartesian.Add(i, j);
  }
  cartesian.Finalize();
  const auto production = core::Evaluate(cartesian, dataset);
  EXPECT_EQ(production.pc, 1.0);
  EXPECT_EQ(production.pq, 0.5);
  ExpectSameEffectiveness(cartesian, dataset);
}

TEST(MetricsRegressionTest, RepeatedGroundTruthRowsCollapse) {
  const Dataset dataset("dup-gt", {NamedProfile("a")},
                        {NamedProfile("a"), NamedProfile("b")},
                        {{0, 0}, {0, 0}, {0, 1}}, "name");
  EXPECT_EQ(dataset.NumDuplicates(), 2u);
  CandidateSet candidates;
  candidates.Add(0, 0);
  candidates.Add(0, 1);
  candidates.Finalize();
  const auto production = core::Evaluate(candidates, dataset);
  EXPECT_EQ(production.pc, 1.0);  // was capped at 2/3 before the collapse
  ExpectSameEffectiveness(candidates, dataset);
}

}  // namespace
}  // namespace erb
