// Consistency tests for the LSH probe-budget sweep: each sweep point must
// match running the corresponding method once with that probe budget.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "datagen/registry.hpp"
#include "densenn/embedding.hpp"
#include "densenn/lsh.hpp"

namespace erb::densenn {
namespace {

class ProbeSweepConsistency : public ::testing::TestWithParam<bool> {};

TEST_P(ProbeSweepConsistency, SweepPointsMatchDirectRuns) {
  const bool cross_polytope = GetParam();
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.25));

  AngularLshConfig config;
  config.clean = false;
  config.tables = 4;
  config.hashes = cross_polytope ? 2 : 6;
  config.seed = 3;

  const auto indexed = EmbedSide(dataset, 0, core::SchemaMode::kAgnostic, false);
  const auto queries = EmbedSide(dataset, 1, core::SchemaMode::kAgnostic, false);
  const auto sweep = SweepAngularProbes(indexed, queries, dataset, config,
                                        cross_polytope, config.tables * 8);
  ASSERT_GE(sweep.size(), 3u);

  for (const auto& point : sweep) {
    AngularLshConfig direct = config;
    direct.probes = point.probes;
    const DenseResult run =
        cross_polytope
            ? CrossPolytopeLsh(dataset, core::SchemaMode::kAgnostic, direct)
            : HyperplaneLsh(dataset, core::SchemaMode::kAgnostic, direct);
    const auto eff = core::Evaluate(run.candidates, dataset);
    EXPECT_EQ(point.eff.candidates, eff.candidates) << "probes=" << point.probes;
    EXPECT_EQ(point.eff.detected, eff.detected) << "probes=" << point.probes;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ProbeSweepConsistency, ::testing::Bool());

TEST(ProbeSweepTest, MonotoneInBudget) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.2));
  AngularLshConfig config;
  config.tables = 8;
  config.hashes = 8;
  const auto indexed = EmbedSide(dataset, 0, core::SchemaMode::kAgnostic, false);
  const auto queries = EmbedSide(dataset, 1, core::SchemaMode::kAgnostic, false);
  const auto sweep =
      SweepAngularProbes(indexed, queries, dataset, config, false, 8 * 16);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].eff.candidates, sweep[i - 1].eff.candidates);
    EXPECT_GE(sweep[i].eff.pc, sweep[i - 1].eff.pc);
    EXPECT_GT(sweep[i].probes, sweep[i - 1].probes);
  }
}

}  // namespace
}  // namespace erb::densenn
