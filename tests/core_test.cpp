// Unit tests for src/core: entity model, candidate sets, metrics, schema
// statistics.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/candidates.hpp"
#include "core/entity.hpp"
#include "core/metrics.hpp"
#include "core/schema.hpp"

namespace erb::core {
namespace {

EntityProfile Profile(std::initializer_list<std::pair<const char*, const char*>> attrs) {
  EntityProfile p;
  for (const auto& [n, v] : attrs) p.attributes.push_back({n, v});
  return p;
}

Dataset ToyDataset() {
  std::vector<EntityProfile> e1 = {
      Profile({{"name", "alpha beta"}, {"desc", "red camera"}}),
      Profile({{"name", "gamma"}, {"desc", ""}}),
      Profile({{"name", ""}, {"desc", "blue phone"}}),
  };
  std::vector<EntityProfile> e2 = {
      Profile({{"name", "alpha beta"}, {"desc", "red camera new"}}),
      Profile({{"name", "delta"}, {"desc", "green tv"}}),
  };
  return Dataset("toy", std::move(e1), std::move(e2), {{0, 0}}, "name");
}

TEST(PairKeyTest, RoundTrip) {
  const PairKey key = MakePair(123456, 654321);
  EXPECT_EQ(PairFirst(key), 123456u);
  EXPECT_EQ(PairSecond(key), 654321u);
}

TEST(PairKeyTest, MaxIds) {
  const PairKey key = MakePair(0xffffffffu, 0xfffffffeu);
  EXPECT_EQ(PairFirst(key), 0xffffffffu);
  EXPECT_EQ(PairSecond(key), 0xfffffffeu);
}

TEST(EntityProfileTest, ValueOfConcatenatesMatchingAttributes) {
  EntityProfile p = Profile({{"a", "x"}, {"b", "y"}, {"a", "z"}});
  EXPECT_EQ(p.ValueOf("a"), "x z");
  EXPECT_EQ(p.ValueOf("missing"), "");
}

TEST(EntityProfileTest, AllValuesSkipsEmpty) {
  EntityProfile p = Profile({{"a", "x"}, {"b", ""}, {"c", "y"}});
  EXPECT_EQ(p.AllValues(), "x y");
}

TEST(EntityProfileTest, Covers) {
  EntityProfile p = Profile({{"a", "x"}, {"b", ""}});
  EXPECT_TRUE(p.Covers("a"));
  EXPECT_FALSE(p.Covers("b"));
  EXPECT_FALSE(p.Covers("c"));
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset d = ToyDataset();
  EXPECT_EQ(d.name(), "toy");
  EXPECT_EQ(d.e1().size(), 3u);
  EXPECT_EQ(d.e2().size(), 2u);
  EXPECT_EQ(d.NumDuplicates(), 1u);
  EXPECT_EQ(d.CartesianSize(), 6u);
  EXPECT_TRUE(d.IsDuplicate(MakePair(0, 0)));
  EXPECT_FALSE(d.IsDuplicate(MakePair(1, 1)));
}

TEST(DatasetTest, RejectsOutOfRangeGroundTruth) {
  std::vector<EntityProfile> e1 = {Profile({{"a", "x"}})};
  std::vector<EntityProfile> e2 = {Profile({{"a", "x"}})};
  EXPECT_THROW(Dataset("bad", e1, e2, {{0, 5}}, "a"), std::out_of_range);
}

TEST(DatasetTest, EntityTextModes) {
  const Dataset d = ToyDataset();
  EXPECT_EQ(d.EntityText(0, 0, SchemaMode::kAgnostic), "alpha beta red camera");
  EXPECT_EQ(d.EntityText(0, 0, SchemaMode::kBased), "alpha beta");
  EXPECT_EQ(d.EntityText(0, 2, SchemaMode::kBased), "");
  EXPECT_EQ(d.EntityText(1, 1, SchemaMode::kAgnostic), "delta green tv");
}

TEST(CandidateSetTest, FinalizeDeduplicatesAndSorts) {
  CandidateSet set;
  set.Add(2, 3);
  set.Add(1, 1);
  set.Add(2, 3);
  set.Add(1, 1);
  set.Finalize();
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(1, 1));
  EXPECT_TRUE(set.Contains(2, 3));
  EXPECT_FALSE(set.Contains(3, 2));
}

TEST(CandidateSetTest, FinalizeIdempotent) {
  CandidateSet set;
  set.Add(1, 2);
  set.Finalize();
  set.Finalize();
  EXPECT_EQ(set.size(), 1u);
}

TEST(CandidateSetTest, EmptySetBehaves) {
  CandidateSet set;
  set.Finalize();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.Contains(0, 0));
}

TEST(MetricsTest, PerfectFilter) {
  const Dataset d = ToyDataset();
  CandidateSet set;
  set.Add(0, 0);
  set.Finalize();
  const auto eff = Evaluate(set, d);
  EXPECT_DOUBLE_EQ(eff.pc, 1.0);
  EXPECT_DOUBLE_EQ(eff.pq, 1.0);
  EXPECT_EQ(eff.candidates, 1u);
  EXPECT_EQ(eff.detected, 1u);
}

TEST(MetricsTest, MixedCandidates) {
  const Dataset d = ToyDataset();
  CandidateSet set;
  set.Add(0, 0);  // duplicate
  set.Add(1, 1);  // not
  set.Add(2, 1);  // not
  set.Add(2, 0);  // not
  set.Finalize();
  const auto eff = Evaluate(set, d);
  EXPECT_DOUBLE_EQ(eff.pc, 1.0);
  EXPECT_DOUBLE_EQ(eff.pq, 0.25);
}

TEST(MetricsTest, EmptyCandidates) {
  const Dataset d = ToyDataset();
  CandidateSet set;
  set.Finalize();
  const auto eff = Evaluate(set, d);
  EXPECT_DOUBLE_EQ(eff.pc, 0.0);
  EXPECT_DOUBLE_EQ(eff.pq, 0.0);
}

TEST(SchemaTest, CoverageAndDistinctiveness) {
  const Dataset d = ToyDataset();
  const auto stats = ComputeAttributeStats(d);
  // Attributes: name (4 covered of 5 entities), desc (4 covered of 5).
  for (const auto& s : stats) {
    if (s.name == "name") {
      EXPECT_NEAR(s.coverage, 4.0 / 5.0, 1e-9);
      EXPECT_NEAR(s.groundtruth_coverage, 1.0, 1e-9);
      // Values: "alpha beta" x2, "gamma", "delta" -> 3 distinct / 4 covered.
      EXPECT_NEAR(s.distinctiveness, 3.0 / 4.0, 1e-9);
    }
  }
  EXPECT_EQ(stats.size(), 2u);
}

TEST(SchemaTest, GroundTruthCoverageRequiresBothSides) {
  std::vector<EntityProfile> e1 = {Profile({{"name", ""}, {"x", "v"}})};
  std::vector<EntityProfile> e2 = {Profile({{"name", "n"}, {"x", "v"}})};
  Dataset d("t", std::move(e1), std::move(e2), {{0, 0}}, "name");
  for (const auto& s : ComputeAttributeStats(d)) {
    if (s.name == "name") EXPECT_DOUBLE_EQ(s.groundtruth_coverage, 0.0);
    if (s.name == "x") EXPECT_DOUBLE_EQ(s.groundtruth_coverage, 1.0);
  }
}

TEST(SchemaTest, SelectBestAttributePrefersCoverageAndDistinctiveness) {
  std::vector<EntityProfile> e1 = {
      Profile({{"id", "a"}, {"year", "2001"}}),
      Profile({{"id", "b"}, {"year", "2001"}}),
      Profile({{"id", "c"}, {"year", "2001"}}),
  };
  std::vector<EntityProfile> e2 = {Profile({{"id", "d"}, {"year", "2001"}})};
  Dataset d("t", std::move(e1), std::move(e2), {}, "");
  EXPECT_EQ(SelectBestAttribute(d), "id");
}

TEST(SchemaTest, CorpusStatsCountDistinctTokensAndChars) {
  const Dataset d = ToyDataset();
  const auto stats = ComputeCorpusStats(d, SchemaMode::kBased, false);
  // Tokens in "name": alpha beta (x2), gamma, delta -> 4 distinct.
  EXPECT_EQ(stats.vocabulary_size, 4u);
  // Characters: alpha+beta twice, gamma, delta = 9+9+5+5.
  EXPECT_EQ(stats.char_length, 28u);
}

TEST(SchemaTest, CleaningShrinksCorpus) {
  std::vector<EntityProfile> e1 = {
      Profile({{"t", "the quick brown foxes are running"}})};
  std::vector<EntityProfile> e2 = {Profile({{"t", "the lazy dogs"}})};
  Dataset d("t", std::move(e1), std::move(e2), {}, "t");
  const auto raw = ComputeCorpusStats(d, SchemaMode::kAgnostic, false);
  const auto clean = ComputeCorpusStats(d, SchemaMode::kAgnostic, true);
  EXPECT_LT(clean.vocabulary_size, raw.vocabulary_size);
  EXPECT_LT(clean.char_length, raw.char_length);
}

}  // namespace
}  // namespace erb::core
