// Tests of the observability subsystem (src/obs/): exporter golden files,
// counter determinism across thread counts, and the PhaseTimer regressions
// this layer exists to fix — thread-safety under ParallelFor (the old
// std::map race; run under TSan via the obs label) and exception-safe
// recording.
#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "datagen/generator.hpp"
#include "datagen/registry.hpp"
#include "obs/export.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"
#include "sparsenn/joins.hpp"

namespace erb {
namespace {

// Enables tracing for one test and restores the disabled default afterwards,
// leaving the collector empty either way.
class ScopedTracing {
 public:
  ScopedTracing() {
    obs::SetTraceEnabled(true);
    obs::ResetCollected();
  }
  ~ScopedTracing() {
    obs::SetTraceEnabled(false);
    obs::ResetCollected();
  }
};

obs::Snapshot GoldenSnapshot() {
  obs::Snapshot snapshot;
  snapshot.spans.push_back({"build", 0, 1'000'000, 2'000'000});
  snapshot.spans.push_back({"query", 1, 3'500'000, 500'000});
  snapshot.counters["blocking.candidates"] = 42;
  snapshot.counters["sparse.candidates"] = 7;
  snapshot.peak_rss_bytes = 1048576;
  return snapshot;
}

TEST(ChromeTraceExportTest, MatchesGoldenFile) {
  std::ostringstream out;
  obs::WriteChromeTrace(GoldenSnapshot(), out);

  std::ifstream golden(ERB_OBS_GOLDEN);
  ASSERT_TRUE(golden) << "missing golden file: " << ERB_OBS_GOLDEN;
  std::ostringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(out.str(), expected.str());
}

TEST(ChromeTraceExportTest, EscapesSpecialCharacters) {
  obs::Snapshot snapshot;
  snapshot.spans.push_back({"a\"b\\c\nd", 0, 0, 1000});
  std::ostringstream out;
  obs::WriteChromeTrace(snapshot, out);
  EXPECT_NE(out.str().find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(StatsJsonExportTest, FlatObjectWithCountersAndGauges) {
  obs::Snapshot snapshot = GoldenSnapshot();
  snapshot.gauges["sparse.index_sets"] = 100;
  EXPECT_EQ(obs::StatsJson(snapshot),
            "{\"peak_rss_bytes\": 1048576"
            ", \"counters\": {\"blocking.candidates\": 42"
            ", \"sparse.candidates\": 7}"
            ", \"gauges\": {\"sparse.index_sets\": 100}}");
}

TEST(TraceCollectorTest, DisabledRecordsNothing) {
  obs::SetTraceEnabled(false);
  obs::ResetCollected();
  {
    obs::Span span("ignored");
    obs::CounterAdd("ignored.counter", 5);
    obs::GaugeSet("ignored.gauge", 5);
  }
  const obs::Snapshot snapshot = obs::Collect();
  EXPECT_TRUE(snapshot.spans.empty());
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.gauges.empty());
  obs::ResetCollected();
}

TEST(TraceCollectorTest, SpanAndCounterRoundTrip) {
  ScopedTracing tracing;
  { obs::Span span("phase/x"); }
  obs::CounterAdd("x.count", 3);
  obs::CounterAdd("x.count", 4);
  obs::GaugeSet("x.size", 9);

  const obs::Snapshot snapshot = obs::Collect();
  ASSERT_EQ(snapshot.spans.size(), 1u);
  EXPECT_EQ(snapshot.spans[0].name, "phase/x");
  EXPECT_EQ(snapshot.counters.at("x.count"), 7u);
  EXPECT_EQ(snapshot.gauges.at("x.size"), 9u);
}

TEST(TraceCollectorTest, PeakRssProbeReportsBytes) {
  // getrusage is available on every platform this repo builds on; the probe
  // must report a sane process footprint (more than 1 MiB, normalized from
  // the platform's native unit to bytes).
  EXPECT_GT(obs::PeakRssBytes(), 1u << 20);
}

// The acceptance bar for the collector: counters merged from worker-thread
// buffers are byte-identical at 1 and 8 threads because the merge is
// (buffer-id, sequence)-ordered unsigned addition.
TEST(TraceCollectorTest, WorkerCountersIdenticalAt1And8Threads) {
  ScopedTracing tracing;
  std::map<std::string, std::uint64_t> reference;
  for (std::size_t threads : {1u, 8u}) {
    ScopedThreadLimit limit(threads);
    obs::ResetCollected();
    ParallelFor(0, 1000, /*grain=*/1, [](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        obs::CounterAdd("test.items", 1);
        obs::CounterAdd("test.weight", i);
      }
    });
    const auto counters = obs::CounterSnapshot();
    EXPECT_EQ(counters.at("test.items"), 1000u);
    EXPECT_EQ(counters.at("test.weight"), 999u * 1000u / 2);
    if (threads == 1u) {
      reference = counters;
    } else {
      EXPECT_EQ(counters, reference);
    }
  }
}

TEST(TraceCollectorTest, FilteringCountersIdenticalAt1And8Threads) {
  ScopedTracing tracing;
  const core::Dataset dataset =
      datagen::Generate(datagen::PaperSpec(1).Scaled(0.2));
  std::map<std::string, std::uint64_t> reference;
  for (std::size_t threads : {1u, 8u}) {
    ScopedThreadLimit limit(threads);
    obs::ResetCollected();
    const auto result = sparsenn::DefaultKnnJoin(
        dataset, core::SchemaMode::kAgnostic);
    auto counters = obs::CounterSnapshot();
    EXPECT_EQ(counters.at("sparse.candidates"), result.candidates.size());
    // build.dict_rehashes describes the assembly strategy (a single-threaded
    // pool builds sequentially, a parallel one merges fixed chunks), so its
    // value is pool-size-dependent by design; the built indexes themselves
    // stay byte-identical (enforced by the BuildDifferential suite).
    counters.erase("build.dict_rehashes");
    if (threads == 1u) {
      reference = counters;
    } else {
      EXPECT_EQ(counters, reference);
    }
  }
}

// The length-filtered probe accounts its pruning work through the collector:
// whole-list skips land in sparse.probe_skipped_lists, first-touch prunes in
// sparse.probe_pruned_sets, and a scratch with nothing to report publishes
// neither (FlushCounters only adds nonzero totals, keeping zero-pruning runs
// out of the trace).
TEST(TraceCollectorTest, ProbeFilterCountersSurfaceSkipsAndPrunes) {
  ScopedTracing tracing;
  // Token 7's list holds only size-<4 sets (whole-list skip under
  // min_size=4); token 9's list mixes sizes (per-set prune of {9}).
  const std::vector<sparsenn::TokenSet> indexed = {
      {7, 8}, {7}, {1, 2, 3, 9}, {9}};
  const sparsenn::ScanCountIndex index(indexed);
  sparsenn::ScanCountIndex::ProbeScratch scratch;

  sparsenn::ScanCountIndex::LengthFilter filter;
  filter.min_size = 4;
  index.ProbeFiltered({1, 7, 9}, filter, &scratch,
                      [](std::uint32_t, std::uint32_t, std::uint32_t) {});
  sparsenn::ScanCountIndex::FlushCounters(&scratch);
  auto counters = obs::CounterSnapshot();
  EXPECT_EQ(counters.at("sparse.probe_skipped_lists"), 1u);
  EXPECT_EQ(counters.at("sparse.probe_pruned_sets"), 1u);

  obs::ResetCollected();
  sparsenn::ScanCountIndex::ProbeScratch idle;
  sparsenn::ScanCountIndex::FlushCounters(&idle);
  counters = obs::CounterSnapshot();
  EXPECT_EQ(counters.count("sparse.probe_skipped_lists"), 0u);
  EXPECT_EQ(counters.count("sparse.probe_pruned_sets"), 0u);
}

// Regression: PhaseTimer::Measure used to mutate a shared std::map with no
// synchronization — a data race the moment it wraps a ParallelFor body. With
// the collector's thread-local buffers this must be clean under TSan (the
// obs label runs in the TSan CI job) and lose no measurement.
TEST(PhaseTimerTest, MeasureIsThreadSafeInsideParallelFor) {
  ScopedThreadLimit limit(8);
  PhaseTimer timer;
  std::atomic<int> calls{0};
  ParallelFor(0, 256, /*grain=*/1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      timer.Measure("parallel_work", [&] { ++calls; });
      timer.Add("parallel_add", 0.5);
    }
  });
  EXPECT_EQ(calls.load(), 256);
  EXPECT_GT(timer.Get("parallel_work"), 0.0);
  EXPECT_DOUBLE_EQ(timer.Get("parallel_add"), 128.0);
  EXPECT_EQ(timer.phases().size(), 2u);
}

// Regression: Measure used to drop the sample if fn threw, corrupting phase
// totals for failed grid points. The RAII guard records during unwinding.
TEST(PhaseTimerTest, MeasureRecordsPhaseWhenFnThrows) {
  PhaseTimer timer;
  EXPECT_THROW(
      timer.Measure("throwing_phase",
                    []() -> int { throw std::runtime_error("grid point"); }),
      std::runtime_error);
  EXPECT_EQ(timer.phases().count("throwing_phase"), 1u);
  EXPECT_GT(timer.Get("throwing_phase"), 0.0);
}

TEST(PhaseTimerTest, MeasureReturnsFnResult) {
  PhaseTimer timer;
  EXPECT_EQ(timer.Measure("f", [] { return 41 + 1; }), 42);
  EXPECT_GT(timer.TotalMs(), 0.0);
}

TEST(PhaseAccumulatorTest, CopyTakesSnapshotMoveTransfersPending) {
  obs::PhaseAccumulator source;
  source.Add("a", 1.0);

  obs::PhaseAccumulator copied(source);
  source.Add("a", 2.0);
  EXPECT_DOUBLE_EQ(copied.Get("a"), 1.0);
  EXPECT_DOUBLE_EQ(source.Get("a"), 3.0);

  obs::PhaseAccumulator moved(std::move(source));
  EXPECT_DOUBLE_EQ(moved.Get("a"), 3.0);

  moved.Clear();
  EXPECT_DOUBLE_EQ(moved.TotalMs(), 0.0);
}

TEST(PhaseAccumulatorTest, ResultStructsCarryTimingAcrossReturns) {
  // PhaseTimer lives inside result structs returned by value from the
  // filtering methods; the accumulator's move semantics must keep samples
  // that are still pending in thread buffers attached to the result.
  auto make = [] {
    PhaseTimer timer;
    timer.Measure("inner", [] {});
    return timer;
  };
  PhaseTimer timer = make();
  EXPECT_EQ(timer.phases().count("inner"), 1u);
}

}  // namespace
}  // namespace erb
