// Tests for src/sparsenn: token models, similarity measures, ScanCount and
// both join principles (with brute-force reference checks).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"
#include "core/metrics.hpp"
#include "datagen/registry.hpp"
#include "sparsenn/joins.hpp"
#include "sparsenn/scancount.hpp"
#include "sparsenn/tokenset.hpp"

namespace erb::sparsenn {
namespace {

TEST(TokenModelTest, NamesAndGramLengths) {
  EXPECT_EQ(ModelName(TokenModel::kT1GM), "T1GM");
  EXPECT_EQ(ModelGramLength(TokenModel::kT1G), 0);
  EXPECT_EQ(ModelGramLength(TokenModel::kC4GM), 4);
  EXPECT_TRUE(IsMultiset(TokenModel::kC5GM));
  EXPECT_FALSE(IsMultiset(TokenModel::kC5G));
}

TEST(TokenSetTest, WhitespaceSetSemantics) {
  const auto set = BuildTokenSet("red red blue", TokenModel::kT1G, false);
  EXPECT_EQ(set.size(), 2u);  // {red, blue}
}

TEST(TokenSetTest, WhitespaceMultisetSemantics) {
  const auto set = BuildTokenSet("red red blue", TokenModel::kT1GM, false);
  EXPECT_EQ(set.size(), 3u);  // {red#1, red#2, blue#1}
}

TEST(TokenSetTest, MultisetOverlapCountsOccurrences) {
  // {a,a,b} vs {a,b,b}: multiset intersection = {a#1, b#1} -> overlap 2.
  const auto s1 = BuildTokenSet("a a b", TokenModel::kT1GM, false);
  const auto s2 = BuildTokenSet("a b b", TokenModel::kT1GM, false);
  std::size_t overlap = 0;
  for (auto t : s1) overlap += std::binary_search(s2.begin(), s2.end(), t);
  EXPECT_EQ(overlap, 2u);
}

TEST(TokenSetTest, CharacterGramCount) {
  // "abcd ef" normalized -> "abcd ef" (7 chars) -> 5 distinct 3-grams.
  const auto set = BuildTokenSet("abcd ef", TokenModel::kC3G, false);
  EXPECT_EQ(set.size(), 5u);
}

TEST(TokenSetTest, ShortTextFallsBackToWholeString) {
  const auto set = BuildTokenSet("ab", TokenModel::kC5G, false);
  EXPECT_EQ(set.size(), 1u);
}

TEST(TokenSetTest, CleaningChangesTokens) {
  const auto raw = BuildTokenSet("the cameras", TokenModel::kT1G, false);
  const auto clean = BuildTokenSet("the cameras", TokenModel::kT1G, true);
  EXPECT_EQ(raw.size(), 2u);
  EXPECT_EQ(clean.size(), 1u);  // stop word removed, "cameras" stemmed
}

TEST(SimilarityTest, Formulas) {
  // |A| = 4, |B| = 2, overlap = 2.
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kCosine, 2, 4, 2),
                   2.0 / std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kDice, 2, 4, 2),
                   4.0 / 6.0);
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kJaccard, 2, 4, 2),
                   2.0 / 4.0);
}

TEST(SimilarityTest, BoundsAndDegenerateInputs) {
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kJaccard, 0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kCosine, 3, 3, 3), 1.0);
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kDice, 3, 3, 3), 1.0);
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kJaccard, 3, 3, 3), 1.0);
}

// Property: ScanCount's overlap counts equal brute-force set intersection.
TEST(ScanCountTest, MatchesBruteForceOnRandomSets) {
  Rng rng(11);
  std::vector<TokenSet> indexed;
  for (int i = 0; i < 60; ++i) {
    TokenSet set;
    const std::size_t n = 1 + rng.NextBounded(20);
    for (std::size_t t = 0; t < n; ++t) set.push_back(rng.NextBounded(50));
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    indexed.push_back(std::move(set));
  }
  ScanCountIndex index(indexed);

  for (int q = 0; q < 30; ++q) {
    TokenSet query;
    const std::size_t n = 1 + rng.NextBounded(15);
    for (std::size_t t = 0; t < n; ++t) query.push_back(rng.NextBounded(50));
    std::sort(query.begin(), query.end());
    query.erase(std::unique(query.begin(), query.end()), query.end());

    std::map<std::uint32_t, std::uint32_t> reported;
    index.Probe(query, [&](std::uint32_t id, std::uint32_t overlap, std::uint32_t) {
      reported[id] = overlap;
    });
    for (std::uint32_t id = 0; id < indexed.size(); ++id) {
      std::uint32_t expected = 0;
      for (auto t : query) {
        expected += std::binary_search(indexed[id].begin(), indexed[id].end(), t);
      }
      const auto it = reported.find(id);
      EXPECT_EQ(it == reported.end() ? 0 : it->second, expected)
          << "query " << q << " id " << id;
    }
  }
}

TEST(ScanCountTest, ProbeIsRepeatable) {
  std::vector<TokenSet> indexed = {{1, 2, 3}, {3, 4}};
  ScanCountIndex index(indexed);
  for (int round = 0; round < 3; ++round) {
    std::size_t hits = 0;
    index.Probe({3}, [&](std::uint32_t, std::uint32_t overlap, std::uint32_t) {
      EXPECT_EQ(overlap, 1u);
      ++hits;
    });
    EXPECT_EQ(hits, 2u);
  }
}

// Property: ProbeFiltered emits exactly Probe's output restricted to the
// filter window, with identical overlap values — for windows that prune
// nothing, prune everything, and everything in between (including
// min_overlap values at and beyond the query size).
TEST(ScanCountTest, ProbeFilteredMatchesProbeUnderManualFilter) {
  Rng rng(29);
  std::vector<TokenSet> indexed;
  for (int i = 0; i < 80; ++i) {
    TokenSet set;
    // Sizes spread 1..30 so size windows actually discriminate.
    const std::size_t n = 1 + rng.NextBounded(30);
    for (std::size_t t = 0; t < n; ++t) set.push_back(rng.NextBounded(40));
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    indexed.push_back(std::move(set));
  }
  ScanCountIndex index(indexed);

  const ScanCountIndex::LengthFilter filters[] = {
      {0, 0xffffffffu, 1},   // no-op window
      {5, 20, 1},            // size window only
      {0, 0xffffffffu, 3},   // overlap floor only
      {8, 14, 4},            // both
      {12, 12, 2},           // single admissible size
      {31, 0xffffffffu, 1},  // empty window: prunes everything
      {0, 0xffffffffu, 40},  // overlap floor beyond any query size
  };

  ScanCountIndex::ProbeScratch scratch;
  for (int q = 0; q < 25; ++q) {
    TokenSet query;
    const std::size_t n = 1 + rng.NextBounded(18);
    for (std::size_t t = 0; t < n; ++t) query.push_back(rng.NextBounded(40));
    std::sort(query.begin(), query.end());
    query.erase(std::unique(query.begin(), query.end()), query.end());

    std::map<std::uint32_t, std::uint32_t> unfiltered;
    index.Probe(query, [&](std::uint32_t id, std::uint32_t overlap,
                           std::uint32_t) { unfiltered[id] = overlap; });

    for (const auto& filter : filters) {
      std::map<std::uint32_t, std::uint32_t> expected;
      for (const auto& [id, overlap] : unfiltered) {
        const std::uint32_t size =
            static_cast<std::uint32_t>(indexed[id].size());
        if (size >= filter.min_size && size <= filter.max_size &&
            overlap >= filter.min_overlap) {
          expected[id] = overlap;
        }
      }
      std::map<std::uint32_t, std::uint32_t> got;
      index.ProbeFiltered(
          query, filter, &scratch,
          [&](std::uint32_t id, std::uint32_t overlap, std::uint32_t size) {
            EXPECT_EQ(size, indexed[id].size());
            got[id] = overlap;
          });
      EXPECT_EQ(got, expected)
          << "query " << q << " filter [" << filter.min_size << ", "
          << filter.max_size << "] overlap>=" << filter.min_overlap;
    }
  }
}

// The scratch counters account for the filter's work: whole-list skips when
// a token's members all fall outside the window, first-touch prunes
// otherwise, and FlushCounters() zeroes both.
TEST(ScanCountTest, ProbeFilteredAccountsPruningInScratch) {
  // Token 7 appears only in small sets (whole-list skip under min_size=4);
  // token 9's list mixes sizes (per-set prune of the small member).
  std::vector<TokenSet> indexed = {{7, 8}, {7}, {1, 2, 3, 9}, {9}};
  ScanCountIndex index(indexed);
  ScanCountIndex::ProbeScratch scratch;

  ScanCountIndex::LengthFilter filter;
  filter.min_size = 4;
  std::size_t hits = 0;
  index.ProbeFiltered({1, 7, 9}, filter, &scratch,
                      [&](std::uint32_t id, std::uint32_t overlap,
                          std::uint32_t size) {
                        EXPECT_EQ(id, 2u);
                        EXPECT_EQ(overlap, 2u);  // tokens 1 and 9
                        EXPECT_EQ(size, 4u);
                        ++hits;
                      });
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(scratch.skipped_lists, 1u);  // token 7's list
  EXPECT_EQ(scratch.pruned_sets, 1u);    // set {9}
  ScanCountIndex::FlushCounters(&scratch);
  EXPECT_EQ(scratch.skipped_lists, 0u);
  EXPECT_EQ(scratch.pruned_sets, 0u);
}

// Soundness of the ε-Join length filter: any (query size, indexed size,
// overlap) combination reaching the threshold must fall inside the window
// LengthBounds returns. This is the property EpsilonJoin relies on when it
// hands the filter to ProbeFiltered.
TEST(LengthBoundsTest, AdmitsEveryCombinationReachingThreshold) {
  const SimilarityMeasure measures[] = {SimilarityMeasure::kCosine,
                                        SimilarityMeasure::kDice,
                                        SimilarityMeasure::kJaccard};
  const double thresholds[] = {0.1, 0.3, 0.5, 0.7, 0.9, 1.0};
  for (auto measure : measures) {
    for (double t : thresholds) {
      for (std::size_t q = 1; q <= 40; ++q) {
        const auto filter = LengthBounds(measure, t, q);
        for (std::size_t s = 1; s <= 80; ++s) {
          for (std::size_t o = 1; o <= std::min(q, s); ++o) {
            if (SetSimilarity(measure, o, q, s) < t) continue;
            EXPECT_GE(s, filter.min_size)
                << MeasureName(measure) << " t=" << t << " q=" << q
                << " s=" << s << " o=" << o;
            EXPECT_LE(s, filter.max_size)
                << MeasureName(measure) << " t=" << t << " q=" << q
                << " s=" << s << " o=" << o;
            EXPECT_GE(o, filter.min_overlap)
                << MeasureName(measure) << " t=" << t << " q=" << q
                << " s=" << s << " o=" << o;
          }
        }
      }
    }
  }
}

TEST(TokenRankMapTest, RanksAscendByFrequencyThenToken) {
  // df: token 5 appears 3x, token 9 2x, tokens 1 and 2 once each — so the
  // global-frequency order is 1, 2 (df tie broken by token id), 9, 5.
  const std::vector<TokenSet> sets = {{1, 5, 9}, {2, 5, 9}, {5}};
  TokenRankMap ranks(sets);
  EXPECT_EQ(ranks.NumRanked(), 4u);
  EXPECT_EQ(ranks.Rank(1), 0u);
  EXPECT_EQ(ranks.Rank(2), 1u);
  EXPECT_EQ(ranks.Rank(9), 2u);
  EXPECT_EQ(ranks.Rank(5), 3u);
  EXPECT_EQ(ranks.Rank(1234), TokenRankMap::kUnknownRank);
}

TEST(TokenRankMapTest, RemapSortsRanksWithUnknownsLast) {
  const std::vector<TokenSet> sets = {{1, 5, 9}, {2, 5, 9}, {5}};
  TokenRankMap ranks(sets);
  const RankedTokenSet remapped = ranks.Remap({5, 9, 77});
  const RankedTokenSet expected = {2, 3, TokenRankMap::kUnknownRank};
  EXPECT_EQ(remapped, expected);
}

TEST(PrefixScanCountTest, CountersAccountPrefixSkipsAndVerifies) {
  const std::vector<TokenSet> indexed = {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}};
  PrefixScanCountIndex index(indexed, SimilarityMeasure::kJaccard, 0.9);
  PrefixScanCountIndex::ProbeScratch scratch;
  const RankedTokenSet query = index.ranks().Remap(indexed[0]);
  std::size_t hits = 0;
  index.Probe(query, 0.9, &scratch,
              [&](std::uint32_t id, std::uint32_t overlap, std::uint32_t size) {
                EXPECT_EQ(id, 0u);
                EXPECT_EQ(overlap, 10u);
                EXPECT_EQ(size, 10u);
                ++hits;
              });
  EXPECT_EQ(hits, 1u);
  // Jaccard at t=0.9 over a size-10 query needs overlap >= 8 (widened), so
  // only the 3-token pigeonhole prefix is scanned: 7 query tokens skipped.
  EXPECT_EQ(scratch.prefix_skipped, 7u);
  EXPECT_EQ(scratch.verify_calls, 1u);
  PrefixScanCountIndex::FlushCounters(&scratch);
  EXPECT_EQ(scratch.prefix_skipped, 0u);
  EXPECT_EQ(scratch.verify_calls, 0u);
}

TEST(PrefixScanCountTest, PositionalAndLengthPrunesAreCounted) {
  // Token 100 is the only one shared with the query: in set 0 it sits at the
  // last position (suffix can add nothing, positional prune), and set 1 is
  // far below the Jaccard length window at t=0.5 (length prune).
  const std::vector<TokenSet> indexed = {{1, 2, 3, 4, 5, 6, 7, 8, 100}, {100}};
  PrefixScanCountIndex index(indexed, SimilarityMeasure::kJaccard, 0.0);
  PrefixScanCountIndex::ProbeScratch scratch;
  const RankedTokenSet query =
      index.ranks().Remap({100, 200, 201, 202, 203, 204, 205, 206, 207});
  std::size_t hits = 0;
  index.Probe(query, 0.5, &scratch,
              [&](std::uint32_t, std::uint32_t, std::uint32_t) { ++hits; });
  EXPECT_EQ(hits, 0u);
  EXPECT_EQ(scratch.positional_pruned, 1u);
  EXPECT_EQ(scratch.pruned_sets, 1u);
  EXPECT_EQ(scratch.verify_calls, 0u);
}

// ProbeDecreasing under a constant tau is interchangeable with Probe: both
// emit exactly the candidates first touched in the admissible prefix whose
// exact overlap reaches the pair bound, with identical overlap values.
TEST(PrefixScanCountTest, ProbeDecreasingMatchesProbeUnderConstantTau) {
  Rng rng(31);
  std::vector<TokenSet> indexed;
  for (int i = 0; i < 40; ++i) {
    TokenSet set;
    const std::size_t n = 1 + rng.NextBounded(20);
    for (std::size_t t = 0; t < n; ++t) set.push_back(rng.NextBounded(40));
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    indexed.push_back(std::move(set));
  }
  for (SimilarityMeasure measure :
       {SimilarityMeasure::kCosine, SimilarityMeasure::kDice,
        SimilarityMeasure::kJaccard}) {
    const PrefixScanCountIndex index(indexed, measure, 0.0);
    PrefixScanCountIndex::ProbeScratch scratch;
    for (double tau : {0.0, 0.4}) {
      for (int q = 0; q < 12; ++q) {
        TokenSet raw;
        const std::size_t n = 1 + rng.NextBounded(16);
        for (std::size_t t = 0; t < n; ++t) raw.push_back(rng.NextBounded(50));
        std::sort(raw.begin(), raw.end());
        raw.erase(std::unique(raw.begin(), raw.end()), raw.end());
        const RankedTokenSet query = index.ranks().Remap(raw);

        std::map<std::uint32_t, std::uint32_t> fixed, decreasing;
        index.Probe(query, tau, &scratch,
                    [&](std::uint32_t id, std::uint32_t overlap,
                        std::uint32_t) { fixed[id] = overlap; });
        index.ProbeDecreasing(query, [tau] { return tau; }, &scratch,
                              [&](std::uint32_t id, std::uint32_t overlap,
                                  std::uint32_t) {
                                EXPECT_EQ(decreasing.count(id), 0u);
                                decreasing[id] = overlap;
                              });
        EXPECT_EQ(decreasing, fixed)
            << MeasureName(measure) << " tau=" << tau << " query " << q;
      }
    }
  }
}

core::Dataset SmallDataset() {
  return datagen::Generate(datagen::PaperSpec(1).Scaled(0.4));
}

TEST(EpsilonJoinTest, ThresholdOneKeepsOnlyIdenticalSets) {
  const auto dataset = SmallDataset();
  SparseConfig config;
  const auto all = EpsilonJoin(dataset, core::SchemaMode::kAgnostic, config, 0.0);
  const auto exact = EpsilonJoin(dataset, core::SchemaMode::kAgnostic, config, 1.0);
  EXPECT_LT(exact.candidates.size(), all.candidates.size());
}

TEST(EpsilonJoinTest, MonotoneInThreshold) {
  const auto dataset = SmallDataset();
  SparseConfig config;
  config.model = TokenModel::kC3G;
  std::size_t previous = SIZE_MAX;
  for (double t : {0.2, 0.4, 0.6, 0.8}) {
    const auto run = EpsilonJoin(dataset, core::SchemaMode::kAgnostic, config, t);
    EXPECT_LE(run.candidates.size(), previous);
    previous = run.candidates.size();
  }
}

TEST(EpsilonJoinTest, RecordsPhaseTimings) {
  const auto dataset = SmallDataset();
  const auto run =
      EpsilonJoin(dataset, core::SchemaMode::kAgnostic, SparseConfig{}, 0.5);
  EXPECT_TRUE(run.timing.phases().contains(kPhasePreprocess));
  EXPECT_TRUE(run.timing.phases().contains(kPhaseIndex));
  EXPECT_TRUE(run.timing.phases().contains(kPhaseQuery));
}

TEST(KnnJoinTest, CandidatesGrowWithK) {
  const auto dataset = SmallDataset();
  SparseConfig config;
  config.model = TokenModel::kC4GM;
  std::size_t previous = 0;
  for (int k : {1, 3, 10}) {
    const auto run = KnnJoin(dataset, core::SchemaMode::kAgnostic, config, k, false);
    EXPECT_GE(run.candidates.size(), previous);
    previous = run.candidates.size();
  }
}

TEST(KnnJoinTest, AtLeastKValuesPerQueryWithTies) {
  // Two indexed entities equidistant from the query must both be returned
  // even with k = 1 (the paper's distinct-similarity-values semantics).
  using core::EntityProfile;
  auto p = [](const char* v) {
    EntityProfile e;
    e.attributes.push_back({"t", v});
    return e;
  };
  std::vector<EntityProfile> e1 = {p("alpha beta"), p("alpha gamma")};
  std::vector<EntityProfile> e2 = {p("alpha")};
  core::Dataset d("t", std::move(e1), std::move(e2), {{0, 0}}, "t");
  SparseConfig config;  // T1G cosine: both share exactly {alpha}
  const auto run = KnnJoin(d, core::SchemaMode::kAgnostic, config, 1, false);
  EXPECT_EQ(run.candidates.size(), 2u);
}

TEST(KnnJoinTest, ReverseSwapsQuerySide) {
  const auto dataset = SmallDataset();  // |E1| < |E2|
  SparseConfig config;
  const auto fwd = KnnJoin(dataset, core::SchemaMode::kAgnostic, config, 1, false);
  const auto rev = KnnJoin(dataset, core::SchemaMode::kAgnostic, config, 1, true);
  // Queries = E2 (larger) forward, E1 (smaller) reversed; with k = 1 and few
  // ties, candidate counts differ accordingly.
  EXPECT_GT(fwd.candidates.size(), rev.candidates.size());
}

TEST(KnnJoinTest, PairsAlwaysInCanonicalOrder) {
  const auto dataset = SmallDataset();
  SparseConfig config;
  for (bool reverse : {false, true}) {
    const auto run =
        KnnJoin(dataset, core::SchemaMode::kAgnostic, config, 2, reverse);
    for (core::PairKey key : run.candidates) {
      EXPECT_LT(core::PairFirst(key), dataset.e1().size());
      EXPECT_LT(core::PairSecond(key), dataset.e2().size());
    }
  }
}

TEST(HybridJoinTest, KZeroIsPureThresholdPass) {
  const auto dataset = SmallDataset();
  SparseConfig config;
  const auto epsilon =
      EpsilonJoin(dataset, core::SchemaMode::kAgnostic, config, 0.5);
  const auto hybrid =
      HybridJoin(dataset, core::SchemaMode::kAgnostic, config, 0.5, 0);
  EXPECT_EQ(hybrid.candidates.pairs(), epsilon.candidates.pairs());
}

TEST(HybridJoinTest, FallsBackToKnnForUnderFilledQueries) {
  // The query shares one token with e1[0] only: Jaccard 1/3, below the 0.9
  // threshold, so with k = 1 the hybrid must fall back to the kNN set
  // instead of returning nothing.
  using core::EntityProfile;
  auto p = [](const char* v) {
    EntityProfile e;
    e.attributes.push_back({"t", v});
    return e;
  };
  std::vector<EntityProfile> e1 = {p("alpha beta"), p("gamma delta")};
  std::vector<EntityProfile> e2 = {p("alpha epsilon")};
  core::Dataset d("t", std::move(e1), std::move(e2), {{0, 0}}, "t");
  SparseConfig config;
  config.measure = SimilarityMeasure::kJaccard;
  const auto run = HybridJoin(d, core::SchemaMode::kAgnostic, config, 0.9, 1);
  ASSERT_EQ(run.candidates.size(), 1u);  // kNN fallback keeps (e1[0], e2[0])
  const auto above = HybridJoin(d, core::SchemaMode::kAgnostic, config, 0.2, 1);
  EXPECT_EQ(above.candidates.pairs(), run.candidates.pairs());  // threshold pass
}

TEST(HybridJoinTest, SandwichedBetweenEpsilonAndEpsilonPlusKnn) {
  // Per query the hybrid emits either its full threshold pass or (only when
  // that pass holds fewer than k pairs, which are then all within the top k
  // distinct values) its kNN set — so globally ε(t) ⊆ HB(t,k) ⊆ ε(t) ∪ kNN(k).
  const auto dataset = SmallDataset();
  SparseConfig config;
  config.model = TokenModel::kC3G;
  for (double t : {0.2, 0.5, 0.8}) {
    const auto epsilon =
        EpsilonJoin(dataset, core::SchemaMode::kAgnostic, config, t);
    const auto knn =
        KnnJoin(dataset, core::SchemaMode::kAgnostic, config, 3, false);
    const auto hybrid =
        HybridJoin(dataset, core::SchemaMode::kAgnostic, config, t, 3);
    EXPECT_TRUE(std::includes(hybrid.candidates.pairs().begin(),
                              hybrid.candidates.pairs().end(),
                              epsilon.candidates.pairs().begin(),
                              epsilon.candidates.pairs().end()))
        << "t=" << t;
    std::vector<core::PairKey> cover(epsilon.candidates.pairs());
    cover.insert(cover.end(), knn.candidates.pairs().begin(),
                 knn.candidates.pairs().end());
    std::sort(cover.begin(), cover.end());
    cover.erase(std::unique(cover.begin(), cover.end()), cover.end());
    EXPECT_TRUE(std::includes(cover.begin(), cover.end(),
                              hybrid.candidates.pairs().begin(),
                              hybrid.candidates.pairs().end()))
        << "t=" << t;
  }
}

TEST(DefaultKnnJoinTest, UsesSmallerSideAsQueries) {
  const auto dataset = SmallDataset();
  const auto run = DefaultKnnJoin(dataset, core::SchemaMode::kAgnostic);
  // |C| <= K * min(|E1|,|E2|) + ties; sanity bound with slack for ties.
  EXPECT_LE(run.candidates.size(),
            10 * std::min(dataset.e1().size(), dataset.e2().size()));
  const auto eff = core::Evaluate(run.candidates, dataset);
  EXPECT_GT(eff.pc, 0.5);
}

}  // namespace
}  // namespace erb::sparsenn
