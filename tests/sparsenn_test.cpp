// Tests for src/sparsenn: token models, similarity measures, ScanCount and
// both join principles (with brute-force reference checks).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"
#include "core/metrics.hpp"
#include "datagen/registry.hpp"
#include "sparsenn/joins.hpp"
#include "sparsenn/scancount.hpp"
#include "sparsenn/tokenset.hpp"

namespace erb::sparsenn {
namespace {

TEST(TokenModelTest, NamesAndGramLengths) {
  EXPECT_EQ(ModelName(TokenModel::kT1GM), "T1GM");
  EXPECT_EQ(ModelGramLength(TokenModel::kT1G), 0);
  EXPECT_EQ(ModelGramLength(TokenModel::kC4GM), 4);
  EXPECT_TRUE(IsMultiset(TokenModel::kC5GM));
  EXPECT_FALSE(IsMultiset(TokenModel::kC5G));
}

TEST(TokenSetTest, WhitespaceSetSemantics) {
  const auto set = BuildTokenSet("red red blue", TokenModel::kT1G, false);
  EXPECT_EQ(set.size(), 2u);  // {red, blue}
}

TEST(TokenSetTest, WhitespaceMultisetSemantics) {
  const auto set = BuildTokenSet("red red blue", TokenModel::kT1GM, false);
  EXPECT_EQ(set.size(), 3u);  // {red#1, red#2, blue#1}
}

TEST(TokenSetTest, MultisetOverlapCountsOccurrences) {
  // {a,a,b} vs {a,b,b}: multiset intersection = {a#1, b#1} -> overlap 2.
  const auto s1 = BuildTokenSet("a a b", TokenModel::kT1GM, false);
  const auto s2 = BuildTokenSet("a b b", TokenModel::kT1GM, false);
  std::size_t overlap = 0;
  for (auto t : s1) overlap += std::binary_search(s2.begin(), s2.end(), t);
  EXPECT_EQ(overlap, 2u);
}

TEST(TokenSetTest, CharacterGramCount) {
  // "abcd ef" normalized -> "abcd ef" (7 chars) -> 5 distinct 3-grams.
  const auto set = BuildTokenSet("abcd ef", TokenModel::kC3G, false);
  EXPECT_EQ(set.size(), 5u);
}

TEST(TokenSetTest, ShortTextFallsBackToWholeString) {
  const auto set = BuildTokenSet("ab", TokenModel::kC5G, false);
  EXPECT_EQ(set.size(), 1u);
}

TEST(TokenSetTest, CleaningChangesTokens) {
  const auto raw = BuildTokenSet("the cameras", TokenModel::kT1G, false);
  const auto clean = BuildTokenSet("the cameras", TokenModel::kT1G, true);
  EXPECT_EQ(raw.size(), 2u);
  EXPECT_EQ(clean.size(), 1u);  // stop word removed, "cameras" stemmed
}

TEST(SimilarityTest, Formulas) {
  // |A| = 4, |B| = 2, overlap = 2.
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kCosine, 2, 4, 2),
                   2.0 / std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kDice, 2, 4, 2),
                   4.0 / 6.0);
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kJaccard, 2, 4, 2),
                   2.0 / 4.0);
}

TEST(SimilarityTest, BoundsAndDegenerateInputs) {
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kJaccard, 0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kCosine, 3, 3, 3), 1.0);
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kDice, 3, 3, 3), 1.0);
  EXPECT_DOUBLE_EQ(SetSimilarity(SimilarityMeasure::kJaccard, 3, 3, 3), 1.0);
}

// Property: ScanCount's overlap counts equal brute-force set intersection.
TEST(ScanCountTest, MatchesBruteForceOnRandomSets) {
  Rng rng(11);
  std::vector<TokenSet> indexed;
  for (int i = 0; i < 60; ++i) {
    TokenSet set;
    const std::size_t n = 1 + rng.NextBounded(20);
    for (std::size_t t = 0; t < n; ++t) set.push_back(rng.NextBounded(50));
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    indexed.push_back(std::move(set));
  }
  ScanCountIndex index(indexed);

  for (int q = 0; q < 30; ++q) {
    TokenSet query;
    const std::size_t n = 1 + rng.NextBounded(15);
    for (std::size_t t = 0; t < n; ++t) query.push_back(rng.NextBounded(50));
    std::sort(query.begin(), query.end());
    query.erase(std::unique(query.begin(), query.end()), query.end());

    std::map<std::uint32_t, std::uint32_t> reported;
    index.Probe(query, [&](std::uint32_t id, std::uint32_t overlap, std::uint32_t) {
      reported[id] = overlap;
    });
    for (std::uint32_t id = 0; id < indexed.size(); ++id) {
      std::uint32_t expected = 0;
      for (auto t : query) {
        expected += std::binary_search(indexed[id].begin(), indexed[id].end(), t);
      }
      const auto it = reported.find(id);
      EXPECT_EQ(it == reported.end() ? 0 : it->second, expected)
          << "query " << q << " id " << id;
    }
  }
}

TEST(ScanCountTest, ProbeIsRepeatable) {
  std::vector<TokenSet> indexed = {{1, 2, 3}, {3, 4}};
  ScanCountIndex index(indexed);
  for (int round = 0; round < 3; ++round) {
    std::size_t hits = 0;
    index.Probe({3}, [&](std::uint32_t, std::uint32_t overlap, std::uint32_t) {
      EXPECT_EQ(overlap, 1u);
      ++hits;
    });
    EXPECT_EQ(hits, 2u);
  }
}

// Property: ProbeFiltered emits exactly Probe's output restricted to the
// filter window, with identical overlap values — for windows that prune
// nothing, prune everything, and everything in between (including
// min_overlap values at and beyond the query size).
TEST(ScanCountTest, ProbeFilteredMatchesProbeUnderManualFilter) {
  Rng rng(29);
  std::vector<TokenSet> indexed;
  for (int i = 0; i < 80; ++i) {
    TokenSet set;
    // Sizes spread 1..30 so size windows actually discriminate.
    const std::size_t n = 1 + rng.NextBounded(30);
    for (std::size_t t = 0; t < n; ++t) set.push_back(rng.NextBounded(40));
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    indexed.push_back(std::move(set));
  }
  ScanCountIndex index(indexed);

  const ScanCountIndex::LengthFilter filters[] = {
      {0, 0xffffffffu, 1},   // no-op window
      {5, 20, 1},            // size window only
      {0, 0xffffffffu, 3},   // overlap floor only
      {8, 14, 4},            // both
      {12, 12, 2},           // single admissible size
      {31, 0xffffffffu, 1},  // empty window: prunes everything
      {0, 0xffffffffu, 40},  // overlap floor beyond any query size
  };

  ScanCountIndex::ProbeScratch scratch;
  for (int q = 0; q < 25; ++q) {
    TokenSet query;
    const std::size_t n = 1 + rng.NextBounded(18);
    for (std::size_t t = 0; t < n; ++t) query.push_back(rng.NextBounded(40));
    std::sort(query.begin(), query.end());
    query.erase(std::unique(query.begin(), query.end()), query.end());

    std::map<std::uint32_t, std::uint32_t> unfiltered;
    index.Probe(query, [&](std::uint32_t id, std::uint32_t overlap,
                           std::uint32_t) { unfiltered[id] = overlap; });

    for (const auto& filter : filters) {
      std::map<std::uint32_t, std::uint32_t> expected;
      for (const auto& [id, overlap] : unfiltered) {
        const std::uint32_t size =
            static_cast<std::uint32_t>(indexed[id].size());
        if (size >= filter.min_size && size <= filter.max_size &&
            overlap >= filter.min_overlap) {
          expected[id] = overlap;
        }
      }
      std::map<std::uint32_t, std::uint32_t> got;
      index.ProbeFiltered(
          query, filter, &scratch,
          [&](std::uint32_t id, std::uint32_t overlap, std::uint32_t size) {
            EXPECT_EQ(size, indexed[id].size());
            got[id] = overlap;
          });
      EXPECT_EQ(got, expected)
          << "query " << q << " filter [" << filter.min_size << ", "
          << filter.max_size << "] overlap>=" << filter.min_overlap;
    }
  }
}

// The scratch counters account for the filter's work: whole-list skips when
// a token's members all fall outside the window, first-touch prunes
// otherwise, and FlushCounters() zeroes both.
TEST(ScanCountTest, ProbeFilteredAccountsPruningInScratch) {
  // Token 7 appears only in small sets (whole-list skip under min_size=4);
  // token 9's list mixes sizes (per-set prune of the small member).
  std::vector<TokenSet> indexed = {{7, 8}, {7}, {1, 2, 3, 9}, {9}};
  ScanCountIndex index(indexed);
  ScanCountIndex::ProbeScratch scratch;

  ScanCountIndex::LengthFilter filter;
  filter.min_size = 4;
  std::size_t hits = 0;
  index.ProbeFiltered({1, 7, 9}, filter, &scratch,
                      [&](std::uint32_t id, std::uint32_t overlap,
                          std::uint32_t size) {
                        EXPECT_EQ(id, 2u);
                        EXPECT_EQ(overlap, 2u);  // tokens 1 and 9
                        EXPECT_EQ(size, 4u);
                        ++hits;
                      });
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(scratch.skipped_lists, 1u);  // token 7's list
  EXPECT_EQ(scratch.pruned_sets, 1u);    // set {9}
  ScanCountIndex::FlushCounters(&scratch);
  EXPECT_EQ(scratch.skipped_lists, 0u);
  EXPECT_EQ(scratch.pruned_sets, 0u);
}

// Soundness of the ε-Join length filter: any (query size, indexed size,
// overlap) combination reaching the threshold must fall inside the window
// LengthBounds returns. This is the property EpsilonJoin relies on when it
// hands the filter to ProbeFiltered.
TEST(LengthBoundsTest, AdmitsEveryCombinationReachingThreshold) {
  const SimilarityMeasure measures[] = {SimilarityMeasure::kCosine,
                                        SimilarityMeasure::kDice,
                                        SimilarityMeasure::kJaccard};
  const double thresholds[] = {0.1, 0.3, 0.5, 0.7, 0.9, 1.0};
  for (auto measure : measures) {
    for (double t : thresholds) {
      for (std::size_t q = 1; q <= 40; ++q) {
        const auto filter = LengthBounds(measure, t, q);
        for (std::size_t s = 1; s <= 80; ++s) {
          for (std::size_t o = 1; o <= std::min(q, s); ++o) {
            if (SetSimilarity(measure, o, q, s) < t) continue;
            EXPECT_GE(s, filter.min_size)
                << MeasureName(measure) << " t=" << t << " q=" << q
                << " s=" << s << " o=" << o;
            EXPECT_LE(s, filter.max_size)
                << MeasureName(measure) << " t=" << t << " q=" << q
                << " s=" << s << " o=" << o;
            EXPECT_GE(o, filter.min_overlap)
                << MeasureName(measure) << " t=" << t << " q=" << q
                << " s=" << s << " o=" << o;
          }
        }
      }
    }
  }
}

core::Dataset SmallDataset() {
  return datagen::Generate(datagen::PaperSpec(1).Scaled(0.4));
}

TEST(EpsilonJoinTest, ThresholdOneKeepsOnlyIdenticalSets) {
  const auto dataset = SmallDataset();
  SparseConfig config;
  const auto all = EpsilonJoin(dataset, core::SchemaMode::kAgnostic, config, 0.0);
  const auto exact = EpsilonJoin(dataset, core::SchemaMode::kAgnostic, config, 1.0);
  EXPECT_LT(exact.candidates.size(), all.candidates.size());
}

TEST(EpsilonJoinTest, MonotoneInThreshold) {
  const auto dataset = SmallDataset();
  SparseConfig config;
  config.model = TokenModel::kC3G;
  std::size_t previous = SIZE_MAX;
  for (double t : {0.2, 0.4, 0.6, 0.8}) {
    const auto run = EpsilonJoin(dataset, core::SchemaMode::kAgnostic, config, t);
    EXPECT_LE(run.candidates.size(), previous);
    previous = run.candidates.size();
  }
}

TEST(EpsilonJoinTest, RecordsPhaseTimings) {
  const auto dataset = SmallDataset();
  const auto run =
      EpsilonJoin(dataset, core::SchemaMode::kAgnostic, SparseConfig{}, 0.5);
  EXPECT_TRUE(run.timing.phases().contains(kPhasePreprocess));
  EXPECT_TRUE(run.timing.phases().contains(kPhaseIndex));
  EXPECT_TRUE(run.timing.phases().contains(kPhaseQuery));
}

TEST(KnnJoinTest, CandidatesGrowWithK) {
  const auto dataset = SmallDataset();
  SparseConfig config;
  config.model = TokenModel::kC4GM;
  std::size_t previous = 0;
  for (int k : {1, 3, 10}) {
    const auto run = KnnJoin(dataset, core::SchemaMode::kAgnostic, config, k, false);
    EXPECT_GE(run.candidates.size(), previous);
    previous = run.candidates.size();
  }
}

TEST(KnnJoinTest, AtLeastKValuesPerQueryWithTies) {
  // Two indexed entities equidistant from the query must both be returned
  // even with k = 1 (the paper's distinct-similarity-values semantics).
  using core::EntityProfile;
  auto p = [](const char* v) {
    EntityProfile e;
    e.attributes.push_back({"t", v});
    return e;
  };
  std::vector<EntityProfile> e1 = {p("alpha beta"), p("alpha gamma")};
  std::vector<EntityProfile> e2 = {p("alpha")};
  core::Dataset d("t", std::move(e1), std::move(e2), {{0, 0}}, "t");
  SparseConfig config;  // T1G cosine: both share exactly {alpha}
  const auto run = KnnJoin(d, core::SchemaMode::kAgnostic, config, 1, false);
  EXPECT_EQ(run.candidates.size(), 2u);
}

TEST(KnnJoinTest, ReverseSwapsQuerySide) {
  const auto dataset = SmallDataset();  // |E1| < |E2|
  SparseConfig config;
  const auto fwd = KnnJoin(dataset, core::SchemaMode::kAgnostic, config, 1, false);
  const auto rev = KnnJoin(dataset, core::SchemaMode::kAgnostic, config, 1, true);
  // Queries = E2 (larger) forward, E1 (smaller) reversed; with k = 1 and few
  // ties, candidate counts differ accordingly.
  EXPECT_GT(fwd.candidates.size(), rev.candidates.size());
}

TEST(KnnJoinTest, PairsAlwaysInCanonicalOrder) {
  const auto dataset = SmallDataset();
  SparseConfig config;
  for (bool reverse : {false, true}) {
    const auto run =
        KnnJoin(dataset, core::SchemaMode::kAgnostic, config, 2, reverse);
    for (core::PairKey key : run.candidates) {
      EXPECT_LT(core::PairFirst(key), dataset.e1().size());
      EXPECT_LT(core::PairSecond(key), dataset.e2().size());
    }
  }
}

TEST(DefaultKnnJoinTest, UsesSmallerSideAsQueries) {
  const auto dataset = SmallDataset();
  const auto run = DefaultKnnJoin(dataset, core::SchemaMode::kAgnostic);
  // |C| <= K * min(|E1|,|E2|) + ties; sanity bound with slack for ties.
  EXPECT_LE(run.candidates.size(),
            10 * std::min(dataset.e1().size(), dataset.e2().size()));
  const auto eff = core::Evaluate(run.candidates, dataset);
  EXPECT_GT(eff.pc, 0.5);
}

}  // namespace
}  // namespace erb::sparsenn
