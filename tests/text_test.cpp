// Unit tests for src/text: Porter stemmer, stop words, cleaning pipeline.
#include <gtest/gtest.h>

#include "text/clean.hpp"
#include "text/porter.hpp"
#include "text/stopwords.hpp"

namespace erb::text {
namespace {

struct StemCase {
  const char* word;
  const char* stem;
};

// Classic vectors from Porter's paper and the reference implementation's
// vocabulary list.
class PorterVectors : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterVectors, StemsAsReference) {
  EXPECT_EQ(PorterStem(GetParam().word), GetParam().stem)
      << "word: " << GetParam().word;
}

INSTANTIATE_TEST_SUITE_P(
    Classic, PorterVectors,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("as"), "as");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterTest, IdempotentOnCommonStems) {
  for (const char* word : {"blocks", "filtering", "entities", "resolution"}) {
    const std::string once = PorterStem(word);
    EXPECT_EQ(PorterStem(once), once) << word;
  }
}

TEST(StopWordsTest, CommonWordsAreStopWords) {
  for (const char* word : {"the", "and", "of", "is", "a", "in"}) {
    EXPECT_TRUE(IsStopWord(word)) << word;
  }
}

TEST(StopWordsTest, ContentWordsAreNot) {
  for (const char* word : {"entity", "blocking", "camera", "sony"}) {
    EXPECT_FALSE(IsStopWord(word)) << word;
  }
}

TEST(StopWordsTest, ListSizeMatchesNltk) { EXPECT_EQ(StopWordCount(), 127u); }

TEST(CleanTest, WithoutCleaningOnlyNormalizes) {
  const auto tokens = CleanTokens("The Quick, Brown FOX!", false);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "the");
  EXPECT_EQ(tokens[3], "fox");
}

TEST(CleanTest, CleaningRemovesStopWordsAndStems) {
  const auto tokens = CleanTokens("the blocks are filtering entities", true);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "block");
  EXPECT_EQ(tokens[1], "filter");
  EXPECT_EQ(tokens[2], "entiti");
}

TEST(CleanTest, CleanTextJoinsWithSpaces) {
  EXPECT_EQ(CleanText("the blocks are filtering", true), "block filter");
}

TEST(CleanTest, EmptyInput) {
  EXPECT_TRUE(CleanTokens("", true).empty());
  EXPECT_EQ(CleanText("", true), "");
}

TEST(CleanTest, AllStopWordsYieldEmpty) {
  EXPECT_TRUE(CleanTokens("the of and is", true).empty());
}

}  // namespace
}  // namespace erb::text
