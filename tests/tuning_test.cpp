// Tests for src/tuning: selection rule, the fast multi-configuration
// evaluator's consistency with the real MetaBlocking, and tuner smoke tests.
#include <gtest/gtest.h>

#include "blocking/builders.hpp"
#include "blocking/comparison.hpp"
#include "core/metrics.hpp"
#include "datagen/registry.hpp"
#include "tuning/blocking_tuner.hpp"
#include "tuning/dense_tuner.hpp"
#include "tuning/metaeval.hpp"
#include "tuning/sparse_tuner.hpp"
#include "tuning/suite.hpp"

namespace erb::tuning {
namespace {

core::Effectiveness Eff(double pc, double pq) {
  core::Effectiveness e;
  e.pc = pc;
  e.pq = pq;
  return e;
}

TEST(IsBetterTest, TargetMetBeatsTargetMissed) {
  EXPECT_TRUE(IsBetter(Eff(0.91, 0.01), Eff(0.89, 0.99), 0.9));
  EXPECT_FALSE(IsBetter(Eff(0.89, 0.99), Eff(0.91, 0.01), 0.9));
}

TEST(IsBetterTest, AmongTargetMetHigherPqWins) {
  EXPECT_TRUE(IsBetter(Eff(0.90, 0.5), Eff(0.99, 0.4), 0.9));
  EXPECT_FALSE(IsBetter(Eff(0.99, 0.4), Eff(0.90, 0.5), 0.9));
}

TEST(IsBetterTest, AmongTargetMissedHigherPcWins) {
  EXPECT_TRUE(IsBetter(Eff(0.8, 0.1), Eff(0.7, 0.9), 0.9));
  EXPECT_TRUE(IsBetter(Eff(0.8, 0.9), Eff(0.8, 0.1), 0.9));
}

TEST(GridOptionsTest, DefaultsAreSane) {
  const GridOptions options;
  EXPECT_FALSE(options.full_grid);
  EXPECT_GT(options.repetitions, 0);
  EXPECT_DOUBLE_EQ(options.target_recall, 0.9);
}

// The cornerstone consistency property: the tuner's shared-pass evaluator
// must report exactly the counts of running each configuration for real.
TEST(MetaEvalTest, MatchesRealMetaBlockingForEveryConfiguration) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.3));
  const auto blocks = blocking::BuildBlocks(dataset, core::SchemaMode::kAgnostic,
                                            blocking::BuilderConfig{});
  const std::size_t n1 = dataset.e1().size();
  const std::size_t n2 = dataset.e2().size();

  const CleaningSweep sweep = EvaluateAllCleaning(blocks, dataset);
  for (const auto& outcome : sweep) {
    const auto candidates =
        blocking::CleanComparisons(blocks, n1, n2, outcome.config);
    const auto eff = core::Evaluate(candidates, dataset);
    std::string label =
        outcome.config.use_metablocking
            ? std::string(blocking::PruningName(outcome.config.pruning)) + "+" +
                  std::string(blocking::SchemeName(outcome.config.scheme))
            : "CP";
    EXPECT_EQ(outcome.eff.candidates, eff.candidates) << label;
    EXPECT_EQ(outcome.eff.detected, eff.detected) << label;
    EXPECT_DOUBLE_EQ(outcome.eff.pc, eff.pc) << label;
  }
}

TEST(MetaEvalTest, RecallCeilingEqualsComparisonPropagationPc) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(2).Scaled(0.1));
  const auto blocks = blocking::BuildBlocks(dataset, core::SchemaMode::kAgnostic,
                                            blocking::BuilderConfig{});
  const CleaningSweep sweep = EvaluateAllCleaning(blocks, dataset);
  EXPECT_DOUBLE_EQ(RecallCeiling(blocks, dataset), sweep[0].eff.pc);
}

TEST(MetaEvalTest, NoCleaningBeatsThePropagationCeiling) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(2).Scaled(0.1));
  const auto blocks = blocking::BuildBlocks(dataset, core::SchemaMode::kAgnostic,
                                            blocking::BuilderConfig{});
  const CleaningSweep sweep = EvaluateAllCleaning(blocks, dataset);
  for (const auto& outcome : sweep) {
    EXPECT_LE(outcome.eff.pc, sweep[0].eff.pc);
    EXPECT_LE(outcome.eff.candidates, sweep[0].eff.candidates);
  }
}

GridOptions FastOptions() {
  GridOptions options;
  options.repetitions = 1;
  return options;
}

TEST(BlockingTunerTest, ReachesTargetOnEasyDataset) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(4).Scaled(0.2));
  const auto result = TuneBlockingWorkflow(dataset, core::SchemaMode::kAgnostic,
                                           blocking::BuilderKind::kStandard,
                                           FastOptions());
  EXPECT_TRUE(result.reached_target);
  EXPECT_GE(result.eff.pc, 0.9);
  EXPECT_GT(result.eff.pq, 0.1);
  EXPECT_GT(result.configurations_tried, 40u);
  EXPECT_FALSE(result.config.empty());
  EXPECT_GT(result.runtime_ms, 0.0);
}

TEST(BlockingTunerTest, BaselinesRunWithoutTuning) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.3));
  const auto pbw = RunPbwBaseline(dataset, core::SchemaMode::kAgnostic);
  EXPECT_EQ(pbw.method, "PBW");
  EXPECT_EQ(pbw.configurations_tried, 1u);
  EXPECT_GT(pbw.eff.pc, 0.8);
  const auto dbw = RunDbwBaseline(dataset, core::SchemaMode::kAgnostic);
  EXPECT_EQ(dbw.method, "DBW");
  EXPECT_GT(dbw.eff.candidates, 0u);
}

TEST(SparseTunerTest, KnnJoinFindsSmallK) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(4).Scaled(0.2));
  const auto result =
      TuneKnnJoin(dataset, core::SchemaMode::kAgnostic, FastOptions());
  EXPECT_TRUE(result.reached_target);
  EXPECT_NE(result.config.find("K="), std::string::npos);
  EXPECT_GT(result.eff.pq, 0.2);
}

TEST(SparseTunerTest, EpsilonJoinReportsThreshold) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(4).Scaled(0.15));
  const auto result =
      TuneEpsilonJoin(dataset, core::SchemaMode::kAgnostic, FastOptions());
  EXPECT_TRUE(result.reached_target);
  EXPECT_NE(result.config.find("t="), std::string::npos);
}

TEST(SparseTunerTest, HybridJoinReportsThresholdAndK) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(4).Scaled(0.15));
  const auto result =
      TuneHybridJoin(dataset, core::SchemaMode::kAgnostic, FastOptions());
  EXPECT_EQ(result.method, "HybridJoin");
  EXPECT_TRUE(result.reached_target);
  EXPECT_NE(result.config.find("t="), std::string::npos);
  EXPECT_NE(result.config.find("K="), std::string::npos);
  EXPECT_GT(result.configurations_tried, 100u);
  EXPECT_GT(result.runtime_ms, 0.0);
}

TEST(DenseTunerTest, FaissReachesTargetOnEasyDataset) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(4).Scaled(0.1));
  const auto result = TuneFaiss(dataset, core::SchemaMode::kAgnostic, FastOptions());
  EXPECT_TRUE(result.reached_target);
  EXPECT_GT(result.eff.pq, 0.05);
}

TEST(SuiteTest, MethodNamesRoundTrip) {
  for (MethodId id : AllMethods()) {
    EXPECT_FALSE(MethodName(id).empty());
  }
  EXPECT_EQ(AllMethods().size(), 18u);
}

TEST(SuiteTest, TaxonomyPartitionsAllMethods) {
  for (MethodId id : AllMethods()) {
    const int groups = IsBlockingMethod(id) + IsSparseMethod(id) + IsDenseMethod(id);
    EXPECT_EQ(groups, 1) << MethodName(id);
  }
  EXPECT_TRUE(IsBaseline(MethodId::kPbw));
  EXPECT_TRUE(IsBaseline(MethodId::kDdb));
  EXPECT_FALSE(IsBaseline(MethodId::kSbw));
}

}  // namespace
}  // namespace erb::tuning
