// Tests for the Dirty ER (deduplication) extension.
#include <gtest/gtest.h>

#include "datagen/registry.hpp"
#include "dirty/dataset.hpp"
#include "dirty/filters.hpp"

namespace erb::dirty {
namespace {

const DirtyDataset& Merged() {
  static const DirtyDataset dataset =
      MergeToDirty(datagen::Generate(datagen::PaperSpec(1).Scaled(0.3)));
  return dataset;
}

TEST(DirtyPairTest, CanonicalOrder) {
  EXPECT_EQ(MakeDirtyPair(3, 7), MakeDirtyPair(7, 3));
  EXPECT_NE(MakeDirtyPair(3, 7), MakeDirtyPair(3, 8));
}

TEST(DirtyDatasetTest, MergePreservesCounts) {
  const auto clean = datagen::Generate(datagen::PaperSpec(1).Scaled(0.3));
  const auto dirty = MergeToDirty(clean);
  EXPECT_EQ(dirty.size(), clean.e1().size() + clean.e2().size());
  EXPECT_EQ(dirty.NumDuplicates(), clean.NumDuplicates());
  EXPECT_EQ(dirty.best_attribute(), clean.best_attribute());
  // Every ground-truth pair references the merged ids correctly.
  for (const auto& [a, b] : dirty.duplicates()) {
    EXPECT_LT(a, clean.e1().size());
    EXPECT_GE(b, clean.e1().size());
    EXPECT_TRUE(dirty.IsDuplicate(MakeDirtyPair(a, b)));
  }
}

TEST(DirtyDatasetTest, RejectsSelfPairs) {
  std::vector<core::EntityProfile> entities(3);
  EXPECT_THROW(DirtyDataset("bad", entities, {{1, 1}}, "x"), std::out_of_range);
}

TEST(DirtyDatasetTest, TotalPairsFormula) {
  std::vector<core::EntityProfile> entities(5);
  DirtyDataset d("t", entities, {}, "x");
  EXPECT_EQ(d.TotalPairs(), 10u);
}

TEST(DirtyCandidateSetTest, DeduplicatesUnorderedPairs) {
  DirtyCandidateSet set;
  set.Add(1, 2);
  set.Add(2, 1);
  set.Add(1, 1);  // self-pair ignored
  set.Finalize();
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.Contains(2, 1));
}

TEST(DirtyBlockingTest, FindsDuplicatesWithHighRecall) {
  const auto result = DirtyBlockingWorkflow(Merged(), core::SchemaMode::kAgnostic,
                                            blocking::BuilderConfig{});
  const auto eff = Evaluate(result.candidates, Merged());
  EXPECT_GE(eff.pc, 0.9);
  EXPECT_LT(result.candidates.size(), Merged().TotalPairs());
  EXPECT_TRUE(result.timing.phases().contains("build"));
}

TEST(DirtyBlockingTest, FilteringReducesCandidates) {
  const auto full = DirtyBlockingWorkflow(Merged(), core::SchemaMode::kAgnostic,
                                          blocking::BuilderConfig{}, true, 1.0);
  const auto filtered = DirtyBlockingWorkflow(
      Merged(), core::SchemaMode::kAgnostic, blocking::BuilderConfig{}, true, 0.5);
  EXPECT_LE(filtered.candidates.size(), full.candidates.size());
}

TEST(DirtyKnnJoinTest, NoSelfPairsAndBoundedCandidates) {
  sparsenn::SparseConfig config;
  config.model = sparsenn::TokenModel::kC3G;
  const auto result = DirtyKnnJoin(Merged(), core::SchemaMode::kAgnostic, config, 2);
  // Bounded by k * n (ties add a little; unordered halves it).
  EXPECT_LE(result.candidates.size(), 4 * Merged().size());
  const auto eff = Evaluate(result.candidates, Merged());
  EXPECT_GT(eff.pc, 0.5);
}

TEST(DirtyEpsilonJoinTest, MonotoneInThreshold) {
  sparsenn::SparseConfig config;
  config.model = sparsenn::TokenModel::kC3G;
  const auto loose =
      DirtyEpsilonJoin(Merged(), core::SchemaMode::kAgnostic, config, 0.2);
  const auto strict =
      DirtyEpsilonJoin(Merged(), core::SchemaMode::kAgnostic, config, 0.6);
  EXPECT_LE(strict.candidates.size(), loose.candidates.size());
}

TEST(DirtyDenseKnnTest, FindsDuplicates) {
  const auto result =
      DirtyDenseKnn(Merged(), core::SchemaMode::kAgnostic, true, 5);
  const auto eff = Evaluate(result.candidates, Merged());
  EXPECT_GT(eff.pc, 0.5);
  EXPECT_LE(result.candidates.size(), 5u * Merged().size());
}

TEST(DirtyEvaluateTest, CountsAgainstGroundTruth) {
  DirtyCandidateSet set;
  const auto& [a, b] = Merged().duplicates()[0];
  set.Add(a, b);
  set.Add(a, b == 0 ? 1 : 0);  // one non-duplicate filler pair
  set.Finalize();
  const auto eff = Evaluate(set, Merged());
  EXPECT_EQ(eff.detected, 1u);
  EXPECT_DOUBLE_EQ(eff.pq, 0.5);
}

}  // namespace
}  // namespace erb::dirty
