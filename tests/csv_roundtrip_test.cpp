// Round-trip tests: a dataset written with WriteCsvDataset and re-loaded with
// LoadCsvDataset must be equivalent (profiles, ground truth, metrics).
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "datagen/csv_loader.hpp"
#include "datagen/csv_writer.hpp"
#include "datagen/registry.hpp"

namespace erb::datagen {
namespace {

class CsvRoundTripTest : public ::testing::TestWithParam<int> {
 protected:
  // Filenames carry a per-binary prefix: TempDir() is shared with every other
  // test binary in a parallel ctest run, and bare "e1.csv" collides with the
  // loader fixtures in datagen_test.cpp (observed as a rare -j8 flake).
  std::string Path(const std::string& name) const {
    return ::testing::TempDir() + "/roundtrip_" + name;
  }
};

TEST_P(CsvRoundTripTest, PreservesDatasetExactly) {
  const auto original = Generate(PaperSpec(GetParam()).Scaled(0.1));
  WriteCsvDataset(original, Path("e1.csv"), Path("e2.csv"), Path("gt.csv"));
  const auto loaded =
      LoadCsvDataset(original.name(), Path("e1.csv"), Path("e2.csv"),
                     Path("gt.csv"), original.best_attribute());

  ASSERT_EQ(loaded.e1().size(), original.e1().size());
  ASSERT_EQ(loaded.e2().size(), original.e2().size());
  ASSERT_EQ(loaded.NumDuplicates(), original.NumDuplicates());

  // Profiles preserve every attribute value (ValueOf covers repeated names).
  for (std::size_t i = 0; i < original.e1().size(); ++i) {
    for (const auto& attr : original.e1()[i].attributes) {
      EXPECT_EQ(loaded.e1()[i].ValueOf(attr.name),
                original.e1()[i].ValueOf(attr.name));
    }
  }
  // Ground truth preserved pair-by-pair.
  for (const auto& [id1, id2] : original.duplicates()) {
    EXPECT_TRUE(loaded.IsDuplicate(core::MakePair(id1, id2)));
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, CsvRoundTripTest, ::testing::Values(1, 2, 4));

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  std::vector<core::EntityProfile> e1(1), e2(1);
  e1[0].attributes.push_back({"text", "has, comma and \"quotes\""});
  e2[0].attributes.push_back({"text", "line\nbreak"});
  core::Dataset d("special", std::move(e1), std::move(e2), {{0, 0}}, "text");

  const std::string dir = ::testing::TempDir();
  WriteCsvDataset(d, dir + "/s1.csv", dir + "/s2.csv", dir + "/sgt.csv");
  const auto loaded = LoadCsvDataset("special", dir + "/s1.csv", dir + "/s2.csv",
                                     dir + "/sgt.csv", "text");
  EXPECT_EQ(loaded.e1()[0].ValueOf("text"), "has, comma and \"quotes\"");
  EXPECT_EQ(loaded.e2()[0].ValueOf("text"), "line\nbreak");
}

}  // namespace
}  // namespace erb::datagen
