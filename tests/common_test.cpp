// Unit tests for src/common: hashing, deterministic RNG, timers, strings.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/env.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"

namespace erb {
namespace {

TEST(HashTest, FnvIsDeterministic) {
  EXPECT_EQ(FnvHash64("hello"), FnvHash64("hello"));
  EXPECT_NE(FnvHash64("hello"), FnvHash64("hellO"));
  EXPECT_NE(FnvHash64("ab"), FnvHash64("ba"));
}

TEST(HashTest, FnvSeedChangesValue) {
  EXPECT_NE(FnvHash64("hello", 1), FnvHash64("hello", 2));
}

TEST(HashTest, EmptyStringHashesToSeed) {
  EXPECT_EQ(FnvHash64("", 42), 42u);
}

TEST(HashTest, SplitMixAvoidsTrivialFixpoints) {
  EXPECT_NE(SplitMix64(0), 0u);
  EXPECT_NE(SplitMix64(1), 1u);
  EXPECT_NE(SplitMix64(0), SplitMix64(1));
}

TEST(HashTest, HashCombineOrderDependent) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashTest, SeededHashIndependentFunctions) {
  // Different function indices must behave like independent hash functions:
  // the minima of MinHash rely on it.
  std::set<std::uint64_t> values;
  for (std::uint64_t f = 0; f < 64; ++f) values.insert(SeededHash("token", f));
  EXPECT_EQ(values.size(), 64u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.NextBounded(17), 17u);
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(4);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(RngTest, ZipfStaysInRangeAndSkewsLow) {
  Rng rng(5);
  std::size_t low_ranks = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const auto r = rng.NextZipf(1000, 1.0);
    ASSERT_LT(r, 1000u);
    low_ranks += r < 10;
  }
  // Under Zipf(1.0, 1000) the top-10 ranks carry ~31% of the mass.
  EXPECT_GT(low_ranks, kN / 5);
}

TEST(RngTest, ZipfWithZeroSkewIsUniformish) {
  Rng rng(6);
  std::size_t low_ranks = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) low_ranks += rng.NextZipf(100, 0.0) < 10;
  EXPECT_NEAR(static_cast<double>(low_ranks) / kN, 0.1, 0.03);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.ElapsedMs(), 15.0);
}

TEST(PhaseTimerTest, AccumulatesNamedPhases) {
  PhaseTimer timer;
  timer.Add("a", 5.0);
  timer.Add("a", 7.0);
  timer.Add("b", 1.0);
  EXPECT_DOUBLE_EQ(timer.Get("a"), 12.0);
  EXPECT_DOUBLE_EQ(timer.Get("b"), 1.0);
  EXPECT_DOUBLE_EQ(timer.Get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(timer.TotalMs(), 13.0);
}

TEST(PhaseTimerTest, MeasureReturnsValueAndRecords) {
  PhaseTimer timer;
  const int result = timer.Measure("phase", [] { return 42; });
  EXPECT_EQ(result, 42);
  EXPECT_GE(timer.Get("phase"), 0.0);
  EXPECT_EQ(timer.phases().size(), 1u);
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("MiXeD 123 Case!"), "mixed 123 case!");
}

TEST(StringsTest, SplitWhitespaceDropsEmptyTokens) {
  const auto tokens = SplitWhitespace("  a  b\t\nc ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[2], "c");
}

TEST(StringsTest, SplitWhitespaceEmptyInput) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, SplitCharKeepsEmptyFields) {
  const auto fields = SplitChar("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StringsTest, IsAlnum) {
  EXPECT_TRUE(IsAlnum("abc123"));
  EXPECT_FALSE(IsAlnum("abc-123"));
  EXPECT_FALSE(IsAlnum(""));
}

TEST(StringsTest, NormalizeTextStripsPunctuationAndCases) {
  EXPECT_EQ(NormalizeText("Hello, World! (v2.0)"), "hello  world   v2 0 ");
}

TEST(EnvTest, ParseOnOffRecognizesDocumentedSpellings) {
  for (const char* on : {"1", "on", "ON", "true", "True", "yes", " YES \n"}) {
    EXPECT_TRUE(ParseOnOff("ERB_TEST", on, false)) << on;
  }
  for (const char* off : {"0", "off", "OFF", "false", "No", " no "}) {
    EXPECT_FALSE(ParseOnOff("ERB_TEST", off, true)) << off;
  }
}

TEST(EnvTest, ParseOnOffUnsetOrEmptyKeepsFallbackEitherWay) {
  EXPECT_TRUE(ParseOnOff("ERB_TEST", nullptr, true));
  EXPECT_FALSE(ParseOnOff("ERB_TEST", nullptr, false));
  EXPECT_TRUE(ParseOnOff("ERB_TEST", "", true));
  EXPECT_FALSE(ParseOnOff("ERB_TEST", "  \t", false));
}

TEST(EnvTest, ParseOnOffJunkKeepsFallback) {
  // The historical ERB_PREFIX_FILTER bug: anything but the exact strings
  // "0"/"off" silently counted as on. Junk must fall back, both directions.
  EXPECT_TRUE(ParseOnOff("ERB_TEST", "banana", true));
  EXPECT_FALSE(ParseOnOff("ERB_TEST", "banana", false));
  EXPECT_FALSE(ParseOnOff("ERB_TEST", "2", false));
}

TEST(EnvTest, ParseEnvCountAcceptsInRangeIntegers) {
  EXPECT_EQ(ParseEnvCount("ERB_TEST", "8", 1, 100, 3), 8u);
  EXPECT_EQ(ParseEnvCount("ERB_TEST", " 42 \n", 1, 100, 3), 42u);
  EXPECT_EQ(ParseEnvCount("ERB_TEST", "1", 1, 100, 3), 1u);
  EXPECT_EQ(ParseEnvCount("ERB_TEST", "100", 1, 100, 3), 100u);
}

TEST(EnvTest, ParseEnvCountRejectsJunkAndOutOfRange) {
  EXPECT_EQ(ParseEnvCount("ERB_TEST", nullptr, 1, 100, 3), 3u);
  EXPECT_EQ(ParseEnvCount("ERB_TEST", "", 1, 100, 3), 3u);
  EXPECT_EQ(ParseEnvCount("ERB_TEST", "abc", 1, 100, 3), 3u);
  EXPECT_EQ(ParseEnvCount("ERB_TEST", "3abc", 1, 100, 3), 3u);
  EXPECT_EQ(ParseEnvCount("ERB_TEST", "0", 1, 100, 3), 3u);
  EXPECT_EQ(ParseEnvCount("ERB_TEST", "-7", 1, 100, 3), 3u);
  EXPECT_EQ(ParseEnvCount("ERB_TEST", "101", 1, 100, 3), 3u);
}

}  // namespace
}  // namespace erb
