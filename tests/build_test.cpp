// Build-path suite (`ctest -L build`): the flat open-addressing dictionaries
// (TokenDict / StringDict), the token-hash collision disambiguation, the
// Resolver::Insert rollback, and 1-vs-8-thread differentials over the
// build-path boundary corpora (empty corpus, single-token corpus,
// all-identical entities, the table's max-load-factor boundary). The
// differential tests pin the determinism contract of the parallel two-pass
// builders: every index built here must be byte-identical at any thread
// count.
#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/builders.hpp"
#include "common/flat_dict.hpp"
#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "core/entity.hpp"
#include "core/profile_store.hpp"
#include "obs/trace.hpp"
#include "serve/incremental.hpp"
#include "serve/resolver.hpp"
#include "sparsenn/joins.hpp"
#include "sparsenn/scancount.hpp"
#include "sparsenn/tokenset.hpp"

namespace erb {
namespace {

using blocking::BlockCollection;
using blocking::BuilderConfig;
using blocking::BuilderKind;
using core::Dataset;
using core::EntityProfile;
using core::SchemaMode;
using sparsenn::SimilarityMeasure;
using sparsenn::TokenModel;
using sparsenn::TokenSet;

// ---------------------------------------------------------------------------
// TokenDict

TEST(TokenDictTest, InsertFindRoundtrip) {
  TokenDict dict;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::uint64_t key = SplitMix64(k);  // scrambled, no structure
    std::uint32_t* value = dict.FindOrInsert(key, static_cast<std::uint32_t>(k));
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, k);
  }
  EXPECT_EQ(dict.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::uint32_t* value = dict.Find(SplitMix64(k));
    ASSERT_NE(value, nullptr) << "key " << k << " lost";
    EXPECT_EQ(*value, k);
  }
  EXPECT_EQ(dict.Find(SplitMix64(1000)), nullptr);
  EXPECT_EQ(dict.Find(0), nullptr);
}

TEST(TokenDictTest, FindOrInsertKeepsExistingValue) {
  TokenDict dict;
  *dict.FindOrInsert(42, 7) = 7;
  std::uint32_t* again = dict.FindOrInsert(42, 99);
  EXPECT_EQ(*again, 7u);
  EXPECT_EQ(dict.size(), 1u);
}

// The grow condition is (size + 1) * 2 > capacity: a fresh table (capacity
// 16) holds exactly 8 keys rehash-free, and the 9th insert doubles it. Every
// key must survive the rehash with its value intact.
TEST(TokenDictTest, MaxLoadFactorBoundary) {
  TokenDict dict;
  ASSERT_EQ(dict.capacity(), 16u);
  for (std::uint64_t k = 1; k <= 8; ++k) {
    dict.FindOrInsert(k, static_cast<std::uint32_t>(k));
  }
  EXPECT_EQ(dict.capacity(), 16u);  // exactly at the load bound, no growth
  EXPECT_EQ(dict.rehashes(), 0u);
  dict.FindOrInsert(9, 9);
  EXPECT_EQ(dict.capacity(), 32u);
  EXPECT_EQ(dict.rehashes(), 1u);
  for (std::uint64_t k = 1; k <= 9; ++k) {
    const std::uint32_t* value = dict.Find(k);
    ASSERT_NE(value, nullptr) << "key " << k << " lost in rehash";
    EXPECT_EQ(*value, k);
  }
}

TEST(TokenDictTest, ReserveMakesInsertsRehashFree) {
  TokenDict dict;
  dict.Reserve(5000);
  const std::uint64_t after_reserve = dict.rehashes();
  for (std::uint64_t k = 0; k < 5000; ++k) {
    dict.FindOrInsert(SplitMix64(k), static_cast<std::uint32_t>(k));
  }
  EXPECT_EQ(dict.rehashes(), after_reserve);
  EXPECT_EQ(dict.size(), 5000u);
}

// ---------------------------------------------------------------------------
// StringDict

TEST(StringDictTest, DenseFirstAppearanceIds) {
  StringDict dict;
  EXPECT_EQ(dict.FindOrAssign("alpha"), 0u);
  EXPECT_EQ(dict.FindOrAssign("beta"), 1u);
  EXPECT_EQ(dict.FindOrAssign("alpha"), 0u);  // interned, not re-assigned
  EXPECT_EQ(dict.FindOrAssign(""), 2u);       // empty key is a valid key
  EXPECT_EQ(dict.NumKeys(), 3u);
  EXPECT_EQ(dict.Key(0), "alpha");
  EXPECT_EQ(dict.Key(1), "beta");
  EXPECT_EQ(dict.Key(2), "");
  EXPECT_EQ(dict.Find("beta"), 1u);
  EXPECT_EQ(dict.Find("gamma"), StringDict::kAbsent);
}

// Prefix/suffix-related keys share many bytes (and under a weak hash could
// share hashes): the dict must compare full key bytes, never alias.
TEST(StringDictTest, RelatedKeysNeverAlias) {
  StringDict dict;
  const std::vector<std::string> keys = {"a", "ab", "abc", "bc", "c", "abcabc"};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(dict.FindOrAssign(keys[i]), i);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(dict.Find(keys[i]), i);
    EXPECT_EQ(dict.Key(static_cast<std::uint32_t>(i)), keys[i]);
  }
}

TEST(StringDictTest, IdsStableAcrossRehashes) {
  StringDict dict;
  std::vector<std::string> keys;
  keys.reserve(2000);
  for (int i = 0; i < 2000; ++i) keys.push_back("key_" + std::to_string(i));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(dict.FindOrAssign(keys[i]), i);
  }
  EXPECT_GT(dict.rehashes(), 0u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(dict.Find(keys[i]), i);
    ASSERT_EQ(dict.Key(static_cast<std::uint32_t>(i)), keys[i]);
  }
  EXPECT_EQ(dict.NumKeys(), keys.size());
}

// ---------------------------------------------------------------------------
// Token-hash collision disambiguation (satellite: the TokenRankMap
// rank-corruption bug). The injectable hash forces same-hash/distinct-gram
// inputs that the 2^-64 FNV event would otherwise never produce in a test.

std::uint64_t ConstantHash(std::string_view) { return 42; }

std::uint64_t FirstByteHash(std::string_view gram) {
  return gram.empty() ? 0 : static_cast<std::uint64_t>(gram.front());
}

TEST(TokenCollisionTest, CollidingGramsStayDistinct) {
  // All three words collide on the constant hash; the set must still hold
  // three distinct tokens (the pre-fix behaviour merged them into one).
  const TokenSet set =
      sparsenn::BuildTokenSet("ab cd ef", TokenModel::kT1G, false, ConstantHash);
  EXPECT_EQ(set.size(), 3u);
}

TEST(TokenCollisionTest, DisambiguationIsContentDeterministic) {
  // The colliding grams are ordered lexicographically, not by encounter
  // order: any permutation of the same words must produce the same set.
  const TokenSet a =
      sparsenn::BuildTokenSet("ab cd ef", TokenModel::kT1G, false, ConstantHash);
  const TokenSet b =
      sparsenn::BuildTokenSet("ef ab cd", TokenModel::kT1G, false, ConstantHash);
  const TokenSet c =
      sparsenn::BuildTokenSet("cd ef ab", TokenModel::kT1G, false, ConstantHash);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(TokenCollisionTest, PartialCollisionOnlyRehashesColliders) {
  // "aa" and "ab" collide on the first byte, "ba" does not: three distinct
  // tokens, and the non-collider keeps its base hash.
  const TokenSet set = sparsenn::BuildTokenSet("aa ab ba", TokenModel::kT1G,
                                               false, FirstByteHash);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(std::find(set.begin(), set.end(), FirstByteHash("ba")) !=
              set.end());
}

TEST(TokenCollisionTest, MultisetOccurrencesSurviveCollisions) {
  // Multiset semantics: {ab, ab, cd} has three members even when every gram
  // collides — two occurrence-disambiguated "ab" tokens plus "cd".
  const TokenSet set = sparsenn::BuildTokenSet("ab ab cd", TokenModel::kT1GM,
                                               false, ConstantHash);
  EXPECT_EQ(set.size(), 3u);
}

TEST(TokenCollisionTest, CollisionsAreCounterTracked) {
  obs::SetTraceEnabled(true);
  obs::ResetCollected();
  sparsenn::BuildTokenSet("ab cd ef", TokenModel::kT1G, false, ConstantHash);
  const auto counters = obs::CounterSnapshot();
  obs::SetTraceEnabled(false);
  obs::ResetCollected();
  ASSERT_TRUE(counters.count("build.token_hash_collisions"));
  EXPECT_EQ(counters.at("build.token_hash_collisions"), 2u);  // 3 grams, 1 keeps
}

TEST(TokenCollisionTest, CollisionFreeHashMatchesDefaultBuild) {
  // The injectable-hash overload with the production hash is the production
  // build: no collision machinery may perturb the clean path.
  const std::string text = "benchmarking filtering techniques for er";
  for (TokenModel model : {TokenModel::kT1G, TokenModel::kC3G,
                           TokenModel::kC3GM}) {
    EXPECT_EQ(sparsenn::BuildTokenSet(text, model, false),
              sparsenn::BuildTokenSet(text, model, false,
                                      [](std::string_view gram) {
                                        return FnvHash64(gram);
                                      }));
  }
}

// A TokenRankMap over sets with disambiguated collisions ranks every distinct
// token: remapped sets keep their cardinality (the pre-fix corruption was two
// grams silently sharing one rank).
TEST(TokenCollisionTest, RankMapRanksDisambiguatedTokens) {
  std::vector<TokenSet> sets;
  sets.push_back(
      sparsenn::BuildTokenSet("ab cd ef", TokenModel::kT1G, false, ConstantHash));
  sets.push_back(
      sparsenn::BuildTokenSet("ab gh", TokenModel::kT1G, false, ConstantHash));
  const sparsenn::TokenRankMap ranks(sets);
  EXPECT_EQ(ranks.NumRanked(), 4u);  // ab, cd, ef, gh all distinct
  for (const TokenSet& set : sets) {
    const sparsenn::RankedTokenSet remapped = ranks.Remap(set);
    EXPECT_EQ(remapped.size(), set.size());
  }
}

// ---------------------------------------------------------------------------
// Build-path 1-vs-8-thread differentials over the boundary corpora.

EntityProfile MakeProfile(std::string text) {
  EntityProfile profile;
  profile.attributes.push_back({"name", std::move(text)});
  return profile;
}

Dataset MakeDataset(std::vector<std::string> texts1,
                    std::vector<std::string> texts2) {
  std::vector<EntityProfile> e1, e2;
  for (auto& t : texts1) e1.push_back(MakeProfile(std::move(t)));
  for (auto& t : texts2) e2.push_back(MakeProfile(std::move(t)));
  return Dataset("build_test", std::move(e1), std::move(e2), {}, "name");
}

// The boundary corpora the two-pass builders are most likely to get wrong:
// nothing to chunk, one global token, every chunk producing identical keys,
// and a distinct-token count sitting exactly on the TokenDict growth bound.
std::vector<std::pair<std::string, Dataset>> BuildCorpora() {
  std::vector<std::pair<std::string, Dataset>> corpora;
  corpora.emplace_back("empty", MakeDataset({}, {}));
  corpora.emplace_back("single_token",
                       MakeDataset({"x", "x", "x", "x", "x", "x", "x", "x", "x"},
                                   {"x", "x", "x"}));
  corpora.emplace_back(
      "all_identical",
      MakeDataset(std::vector<std::string>(12, "john a smith 42 main st"),
                  std::vector<std::string>(12, "john a smith 42 main st")));
  // 8 and 9 distinct word tokens: exactly at and one past the fresh-table
  // load bound, so the 9-token side rehashes mid-build.
  corpora.emplace_back(
      "load_factor_boundary",
      MakeDataset({"t1 t2 t3 t4 t5 t6 t7 t8", "t1 t2 t3 t4", "t5 t6 t7 t8"},
                  {"t1 t2 t3 t4 t5 t6 t7 t8 t9", "t9 t1", "t4 t5"}));
  return corpora;
}

// Full probe-everything emission log of a ScanCountIndex: every (query,
// indexed, overlap, size) tuple in emission order. Byte-identical indexes
// produce identical logs.
std::vector<std::tuple<std::size_t, std::uint32_t, std::uint32_t, std::uint32_t>>
ScanCountLog(const std::vector<TokenSet>& indexed,
             const std::vector<TokenSet>& queries) {
  const sparsenn::ScanCountIndex index(indexed);
  std::vector<std::tuple<std::size_t, std::uint32_t, std::uint32_t,
                         std::uint32_t>>
      log;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    index.Probe(queries[q], [&](std::uint32_t id, std::uint32_t overlap,
                                std::uint32_t size) {
      log.emplace_back(q, id, overlap, size);
    });
  }
  return log;
}

// Same for the prefix index, probing at the build threshold.
std::vector<std::tuple<std::size_t, std::uint32_t, std::uint32_t, std::uint32_t>>
PrefixLog(const std::vector<TokenSet>& indexed,
          const std::vector<TokenSet>& queries, double threshold) {
  const sparsenn::PrefixScanCountIndex index(indexed,
                                             SimilarityMeasure::kJaccard,
                                             threshold);
  sparsenn::PrefixScanCountIndex::ProbeScratch scratch;
  std::vector<std::tuple<std::size_t, std::uint32_t, std::uint32_t,
                         std::uint32_t>>
      log;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const sparsenn::RankedTokenSet ranked = index.ranks().Remap(queries[q]);
    index.Probe(ranked, threshold, &scratch,
                [&](std::uint32_t id, std::uint32_t overlap,
                    std::uint32_t size) { log.emplace_back(q, id, overlap, size); });
  }
  return log;
}

void ExpectSameBlocks(const BlockCollection& a, const BlockCollection& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].e1, b[i].e1) << "block " << i;
    EXPECT_EQ(a[i].e2, b[i].e2) << "block " << i;
  }
}

class BuildDifferentialTest : public ::testing::Test {};

TEST(BuildDifferentialTest, TokenSetsIdenticalAt1And8Threads) {
  for (const auto& [name, dataset] : BuildCorpora()) {
    SCOPED_TRACE(name);
    std::vector<TokenSet> reference1, reference2;
    for (std::size_t threads : {1u, 8u}) {
      ScopedThreadLimit limit(threads);
      const auto sets1 = sparsenn::BuildSideTokenSets(
          dataset, 0, SchemaMode::kAgnostic, TokenModel::kC3G, false);
      const auto sets2 = sparsenn::BuildSideTokenSets(
          dataset, 1, SchemaMode::kAgnostic, TokenModel::kT1G, false);
      if (threads == 1u) {
        reference1 = sets1;
        reference2 = sets2;
      } else {
        EXPECT_EQ(sets1, reference1);
        EXPECT_EQ(sets2, reference2);
      }
    }
  }
}

TEST(BuildDifferentialTest, ScanCountIndexIdenticalAt1And8Threads) {
  for (const auto& [name, dataset] : BuildCorpora()) {
    SCOPED_TRACE(name);
    for (TokenModel model : {TokenModel::kT1G, TokenModel::kC3G}) {
      std::vector<std::tuple<std::size_t, std::uint32_t, std::uint32_t,
                             std::uint32_t>>
          reference;
      for (std::size_t threads : {1u, 8u}) {
        ScopedThreadLimit limit(threads);
        const auto indexed = sparsenn::BuildSideTokenSets(
            dataset, 0, SchemaMode::kAgnostic, model, false);
        const auto queries = sparsenn::BuildSideTokenSets(
            dataset, 1, SchemaMode::kAgnostic, model, false);
        const auto log = ScanCountLog(indexed, queries);
        if (threads == 1u) {
          reference = log;
        } else {
          EXPECT_EQ(log, reference);
        }
      }
    }
  }
}

TEST(BuildDifferentialTest, PrefixIndexIdenticalAt1And8Threads) {
  for (const auto& [name, dataset] : BuildCorpora()) {
    SCOPED_TRACE(name);
    for (double threshold : {0.1, 0.5}) {
      std::vector<std::tuple<std::size_t, std::uint32_t, std::uint32_t,
                             std::uint32_t>>
          reference;
      for (std::size_t threads : {1u, 8u}) {
        ScopedThreadLimit limit(threads);
        const auto indexed = sparsenn::BuildSideTokenSets(
            dataset, 0, SchemaMode::kAgnostic, TokenModel::kC3G, false);
        const auto queries = sparsenn::BuildSideTokenSets(
            dataset, 1, SchemaMode::kAgnostic, TokenModel::kC3G, false);
        const auto log = PrefixLog(indexed, queries, threshold);
        if (threads == 1u) {
          reference = log;
        } else {
          EXPECT_EQ(log, reference);
        }
      }
    }
  }
}

TEST(BuildDifferentialTest, BlocksIdenticalAt1And8Threads) {
  for (const auto& [name, dataset] : BuildCorpora()) {
    SCOPED_TRACE(name);
    for (BuilderKind kind : {BuilderKind::kStandard, BuilderKind::kQGrams,
                             BuilderKind::kSuffixArrays}) {
      BuilderConfig config;
      config.kind = kind;
      BlockCollection reference;
      for (std::size_t threads : {1u, 8u}) {
        ScopedThreadLimit limit(threads);
        const BlockCollection blocks =
            blocking::BuildBlocks(dataset, SchemaMode::kAgnostic, config);
        if (threads == 1u) {
          reference = blocks;
        } else {
          ExpectSameBlocks(blocks, reference);
        }
      }
    }
  }
}

TEST(BuildDifferentialTest, ProfileStoreMatchesEntityText) {
  for (const auto& [name, dataset] : BuildCorpora()) {
    SCOPED_TRACE(name);
    for (SchemaMode mode : {SchemaMode::kAgnostic, SchemaMode::kBased}) {
      for (int side : {0, 1}) {
        const core::ProfileStore store =
            core::ProfileStore::ForSide(dataset, side, mode);
        const auto& profiles = side == 0 ? dataset.e1() : dataset.e2();
        ASSERT_EQ(store.size(), profiles.size());
        for (std::size_t id = 0; id < profiles.size(); ++id) {
          EXPECT_EQ(store.Text(static_cast<core::EntityId>(id)),
                    dataset.EntityText(side, static_cast<core::EntityId>(id),
                                       mode));
        }
      }
    }
  }
}

TEST(BuildDifferentialTest, SealedIncrementalBlockIndexIdenticalAt1And8Threads) {
  const std::vector<std::string> texts = {
      "john smith",       "jane doe",   "john smith", "j smith",
      "doe jane",         "smith john", "",           "x",
      "john smith extra", "jane d"};
  std::vector<std::vector<std::vector<core::EntityId>>> results;
  for (std::size_t threads : {1u, 8u}) {
    ScopedThreadLimit limit(threads);
    serve::IncrementalBlockIndex index;
    for (const auto& text : texts) index.Insert(text);
    index.Seal();
    std::vector<std::vector<core::EntityId>> probes;
    for (const auto& text : texts) {
      probes.emplace_back();
      index.Probe(text, &probes.back());
    }
    results.push_back(std::move(probes));
  }
  EXPECT_EQ(results[0], results[1]);
}

// ---------------------------------------------------------------------------
// Serve-path rollback (satellite: the half-registered-entity bug).

TEST(ServeRollbackTest, DuplicateExternalIdLeavesNoTrace) {
  serve::ServeConfig config;
  config.threshold = 0.3;
  config.enable_blocking = true;
  serve::Resolver resolver(config);
  const auto first = resolver.Insert("id-1", MakeProfile("john smith"));
  EXPECT_TRUE(first.inserted);
  const auto duplicate = resolver.Insert("id-1", MakeProfile("jane doe"));
  EXPECT_FALSE(duplicate.inserted);
  EXPECT_EQ(duplicate.id, first.id);
  EXPECT_EQ(resolver.NumEntities(), 1u);
  // The rejected insert must not have perturbed any index: the original
  // entity still resolves under its original text.
  const auto result = resolver.Resolve(MakeProfile("john smith"));
  ASSERT_EQ(result.matches.size(), 1u);
  EXPECT_EQ(result.matches[0].id, first.id);
}

TEST(ServeRollbackTest, SparseRollbackRemovesDeltaTail) {
  serve::IncrementalSparseIndex index(SimilarityMeasure::kJaccard, 0.5,
                                      sparsenn::FilterMode::kLength);
  index.Insert(sparsenn::BuildTokenSet("a b c", TokenModel::kT1G, false));
  EXPECT_EQ(index.NumSets(), 1u);
  index.RollbackLastInsert();
  EXPECT_EQ(index.NumSets(), 0u);
  serve::IncrementalSparseIndex::ProbeScratch scratch;
  int emissions = 0;
  index.Probe(sparsenn::BuildTokenSet("a b c", TokenModel::kT1G, false),
              &scratch, [&](core::EntityId, double) { ++emissions; });
  EXPECT_EQ(emissions, 0);
}

TEST(ServeRollbackTest, RollbackNeverTouchesSealedSets) {
  serve::IncrementalSparseIndex index(SimilarityMeasure::kJaccard, 0.5,
                                      sparsenn::FilterMode::kLength);
  index.Insert(sparsenn::BuildTokenSet("a b c", TokenModel::kT1G, false));
  index.Seal();
  index.RollbackLastInsert();  // delta is empty: must be a no-op
  EXPECT_EQ(index.NumSets(), 1u);
  EXPECT_EQ(index.SealedCount(), 1u);
}

}  // namespace
}  // namespace erb
