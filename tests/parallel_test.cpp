// Tests of the deterministic parallel runtime (common/parallel.hpp): loop
// primitives, exception propagation, and the end-to-end guarantee that the
// parallelized filtering kernels produce byte-identical candidate sets at
// every thread count.
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/workflow.hpp"
#include "common/parallel.hpp"
#include "core/candidates.hpp"
#include "core/entity.hpp"
#include "datagen/generator.hpp"
#include "datagen/registry.hpp"
#include "densenn/minhash.hpp"
#include "sparsenn/joins.hpp"

namespace erb {
namespace {

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  bool called = false;
  ParallelFor(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  ParallelFor(7, 3, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleElementRange) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  ParallelFor(4, 5, 1, [&](std::size_t b, std::size_t e) {
    chunks.emplace_back(b, e);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 4u);
  EXPECT_EQ(chunks[0].second, 5u);
}

TEST(ParallelForTest, GrainLargerThanRangeYieldsOneChunk) {
  std::atomic<int> calls{0};
  ParallelFor(0, 10, 1000, [&](std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 10u);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, ChunksAreDisjointAndCoverTheRange) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    ScopedThreadLimit limit(threads);
    constexpr std::size_t kN = 1003;
    std::vector<std::atomic<int>> visits(kN);
    ParallelFor(0, kN, 17, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) ++visits[i];
    });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
  }
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ScopedThreadLimit limit(4);
  EXPECT_THROW(
      ParallelFor(0, 64, 1,
                  [&](std::size_t b, std::size_t) {
                    if (b == 8) throw std::runtime_error("chunk failed");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, LowestIndexedExceptionWins) {
  // Chunks >= 8 all throw; the rethrown exception must be chunk 8's (the
  // lowest-indexed thrower), at any thread count.
  for (std::size_t threads : {1u, 2u, 8u}) {
    ScopedThreadLimit limit(threads);
    try {
      ParallelFor(0, 64, 1, [&](std::size_t b, std::size_t) {
        if (b >= 8) throw std::runtime_error(std::to_string(b));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "8");
    }
  }
}

TEST(ParallelMapReduceTest, EmptyRangeReturnsDefault) {
  const int sum = ParallelMapReduce<int>(
      3, 3, 1, [](std::size_t, std::size_t) { return 42; },
      [](int& into, int&& from) { into += from; });
  EXPECT_EQ(sum, 0);
}

TEST(ParallelMapReduceTest, SumMatchesSequentialAtAnyThreadCount) {
  constexpr std::size_t kN = 12345;
  const long long expected = static_cast<long long>(kN) * (kN - 1) / 2;
  for (std::size_t threads : {1u, 2u, 8u}) {
    ScopedThreadLimit limit(threads);
    const long long sum = ParallelMapReduce<long long>(
        0, kN, 100,
        [](std::size_t b, std::size_t e) {
          long long s = 0;
          for (std::size_t i = b; i < e; ++i) s += static_cast<long long>(i);
          return s;
        },
        [](long long& into, long long&& from) { into += from; });
    EXPECT_EQ(sum, expected);
  }
}

TEST(ParallelMapReduceTest, MergesInAscendingChunkOrder) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    ScopedThreadLimit limit(threads);
    const std::vector<std::size_t> order = ParallelMapReduce<
        std::vector<std::size_t>>(
        0, 40, 4,
        [](std::size_t b, std::size_t) { return std::vector<std::size_t>{b}; },
        [](std::vector<std::size_t>& into, std::vector<std::size_t>&& from) {
          into.insert(into.end(), from.begin(), from.end());
        });
    std::vector<std::size_t> expected;
    for (std::size_t b = 0; b < 40; b += 4) expected.push_back(b);
    EXPECT_EQ(order, expected);
  }
}

TEST(ScopedThreadLimitTest, RestoresPreviousSetting) {
  const std::size_t before = NumThreads();
  {
    ScopedThreadLimit limit(3);
    EXPECT_EQ(NumThreads(), 3u);
    {
      ScopedThreadLimit inner(7);
      EXPECT_EQ(NumThreads(), 7u);
    }
    EXPECT_EQ(NumThreads(), 3u);
  }
  EXPECT_EQ(NumThreads(), before);
}

TEST(ParallelForTest, NestedRegionRunsInline) {
  ScopedThreadLimit limit(4);
  std::atomic<int> inner_total{0};
  ParallelFor(0, 8, 1, [&](std::size_t, std::size_t) {
    // A nested region must complete correctly (it runs inline on the worker).
    ParallelFor(0, 10, 1, [&](std::size_t b, std::size_t e) {
      inner_total += static_cast<int>(e - b);
    });
  });
  EXPECT_EQ(inner_total.load(), 80);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: parallelized kernels must produce identical
// candidate sets at 1, 2 and 8 threads.
// ---------------------------------------------------------------------------

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  // Runs `method` under thread limits 1, 2 and 8 and asserts the finalized
  // pair lists are identical.
  template <typename Method>
  static void ExpectIdenticalCandidates(Method&& method, const char* label) {
    std::vector<std::vector<core::PairKey>> runs;
    for (std::size_t threads : {1u, 2u, 8u}) {
      ScopedThreadLimit limit(threads);
      runs.push_back(method());
      ASSERT_FALSE(runs.back().empty()) << label << ": empty candidate set";
    }
    EXPECT_EQ(runs[0], runs[1]) << label << ": 1 thread vs 2 threads";
    EXPECT_EQ(runs[0], runs[2]) << label << ": 1 thread vs 8 threads";
  }

  static const core::Dataset& TestDataset() {
    static const core::Dataset dataset =
        datagen::Generate(datagen::PaperSpec(2).Scaled(0.1));
    return dataset;
  }
};

TEST_F(ParallelDeterminismTest, EpsilonJoin) {
  const auto& dataset = TestDataset();
  ExpectIdenticalCandidates(
      [&] {
        sparsenn::SparseConfig config;
        config.model = sparsenn::TokenModel::kC3G;
        auto run = sparsenn::EpsilonJoin(dataset, core::SchemaMode::kAgnostic,
                                         config, 0.5);
        return run.candidates.pairs();
      },
      "eJoin");
}

TEST_F(ParallelDeterminismTest, KnnJoin) {
  const auto& dataset = TestDataset();
  ExpectIdenticalCandidates(
      [&] {
        sparsenn::SparseConfig config;
        config.model = sparsenn::TokenModel::kC3G;
        auto run = sparsenn::KnnJoin(dataset, core::SchemaMode::kAgnostic,
                                     config, 3, /*reverse=*/false);
        return run.candidates.pairs();
      },
      "kNNJ");
}

TEST_F(ParallelDeterminismTest, GlobalTopKJoin) {
  const auto& dataset = TestDataset();
  ExpectIdenticalCandidates(
      [&] {
        sparsenn::SparseConfig config;
        config.model = sparsenn::TokenModel::kC3G;
        auto run = sparsenn::GlobalTopKJoin(dataset, core::SchemaMode::kAgnostic,
                                            config, 200);
        return run.candidates.pairs();
      },
      "TopK");
}

TEST_F(ParallelDeterminismTest, WnpMetaBlockingWorkflow) {
  const auto& dataset = TestDataset();
  ExpectIdenticalCandidates(
      [&] {
        blocking::WorkflowConfig config;
        config.builder.kind = blocking::BuilderKind::kQGrams;
        config.builder.q = 4;
        config.cleaning.use_metablocking = true;
        config.cleaning.scheme = blocking::WeightingScheme::kEcbs;
        config.cleaning.pruning = blocking::PruningAlgorithm::kWnp;
        auto run = blocking::RunWorkflow(dataset, core::SchemaMode::kAgnostic,
                                         config);
        return run.candidates.pairs();
      },
      "WNP");
}

TEST_F(ParallelDeterminismTest, MinHashLsh) {
  const auto& dataset = TestDataset();
  ExpectIdenticalCandidates(
      [&] {
        densenn::MinHashConfig config;
        config.bands = 32;
        config.rows = 4;
        auto run = densenn::MinHashLsh(dataset, core::SchemaMode::kAgnostic,
                                       config);
        return run.candidates.pairs();
      },
      "MH-LSH");
}

}  // namespace
}  // namespace erb
