// Tests for the extension features beyond the paper's main tables: Sorted
// Neighborhood, FAISS-style range search and the global top-K join.
#include <gtest/gtest.h>

#include <algorithm>

#include "blocking/sorted_neighborhood.hpp"
#include "blocking/workflow.hpp"
#include "core/metrics.hpp"
#include "datagen/registry.hpp"
#include "densenn/embedding.hpp"
#include "densenn/flat_index.hpp"
#include "sparsenn/joins.hpp"

namespace erb {
namespace {

const core::Dataset& SmallD1() {
  static const core::Dataset dataset =
      datagen::Generate(datagen::PaperSpec(1).Scaled(0.3));
  return dataset;
}

TEST(SortedNeighborhoodTest, FindsTokenSharingDuplicates) {
  const auto candidates =
      blocking::SortedNeighborhood(SmallD1(), core::SchemaMode::kAgnostic, 10);
  const auto eff = core::Evaluate(candidates, SmallD1());
  EXPECT_GT(eff.pc, 0.5);
  EXPECT_LT(candidates.size(), SmallD1().CartesianSize());
}

TEST(SortedNeighborhoodTest, WindowGrowsCandidates) {
  const auto narrow =
      blocking::SortedNeighborhood(SmallD1(), core::SchemaMode::kAgnostic, 3);
  const auto wide =
      blocking::SortedNeighborhood(SmallD1(), core::SchemaMode::kAgnostic, 20);
  EXPECT_GT(wide.size(), narrow.size());
  EXPECT_GE(core::Evaluate(wide, SmallD1()).pc,
            core::Evaluate(narrow, SmallD1()).pc);
}

TEST(SortedNeighborhoodTest, OnlyCrossSourcePairs) {
  const auto candidates =
      blocking::SortedNeighborhood(SmallD1(), core::SchemaMode::kAgnostic, 6);
  for (core::PairKey key : candidates) {
    EXPECT_LT(core::PairFirst(key), SmallD1().e1().size());
    EXPECT_LT(core::PairSecond(key), SmallD1().e2().size());
  }
}

TEST(SortedNeighborhoodTest, UnderperformsTunedBlockingWorkflows) {
  // The reason the paper excludes the method: it cannot be combined with
  // block/comparison cleaning, so at comparable recall it admits many more
  // superfluous pairs than PBW does.
  const auto& dataset = SmallD1();
  const auto sn =
      blocking::SortedNeighborhood(dataset, core::SchemaMode::kAgnostic, 40);
  const auto pbw = blocking::RunWorkflow(dataset, core::SchemaMode::kAgnostic,
                                         blocking::ParameterFreeWorkflow());
  const auto sn_eff = core::Evaluate(sn, dataset);
  const auto pbw_eff = core::Evaluate(pbw.candidates, dataset);
  if (sn_eff.pc >= pbw_eff.pc - 0.05) {
    EXPECT_LT(sn_eff.pq, pbw_eff.pq * 1.5);
  }
}

TEST(RangeSearchTest, MatchesBruteForcePredicate) {
  const auto& dataset = SmallD1();
  const auto vectors = densenn::EmbedSide(dataset, 0, core::SchemaMode::kAgnostic,
                                          false);
  densenn::FlatIndex index(vectors, densenn::DenseMetric::kSquaredL2);
  const auto query =
      densenn::EmbedText(dataset.EntityText(1, 0, core::SchemaMode::kAgnostic));
  const float radius = 1.2f;
  const auto ids = index.RangeSearch(query, radius);
  for (std::uint32_t id = 0; id < vectors.size(); ++id) {
    const bool within = densenn::SquaredL2(query, vectors[id]) <= radius;
    const bool reported = std::count(ids.begin(), ids.end(), id) > 0;
    EXPECT_EQ(within, reported) << id;
  }
}

TEST(RangeSearchTest, DotProductVariant) {
  const auto vectors = densenn::EmbedSide(SmallD1(), 0,
                                          core::SchemaMode::kAgnostic, false);
  densenn::FlatIndex index(vectors, densenn::DenseMetric::kDotProduct);
  // Radius 1.0 on normalized vectors: only (near-)identical ones qualify.
  const auto ids = index.RangeSearch(vectors[0], 0.999f);
  EXPECT_GE(ids.size(), 1u);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), 0u), 1);
}

TEST(GlobalTopKJoinTest, ReturnsAtLeastKPairs) {
  sparsenn::SparseConfig config;
  config.model = sparsenn::TokenModel::kC3G;
  const auto run =
      sparsenn::GlobalTopKJoin(SmallD1(), core::SchemaMode::kAgnostic, config, 50);
  EXPECT_GE(run.candidates.size(), 50u);
}

TEST(GlobalTopKJoinTest, TopPairsAreMostlyDuplicates) {
  // With K ~ the number of duplicates, the globally best-scored pairs should
  // be dominated by true matches.
  const auto& dataset = SmallD1();
  sparsenn::SparseConfig config;
  config.model = sparsenn::TokenModel::kC3G;
  const auto run = sparsenn::GlobalTopKJoin(dataset, core::SchemaMode::kAgnostic,
                                            config, dataset.NumDuplicates());
  const auto eff = core::Evaluate(run.candidates, dataset);
  EXPECT_GT(eff.pq, 0.3);
}

TEST(GlobalTopKJoinTest, GrowsWithK) {
  sparsenn::SparseConfig config;
  const auto small =
      sparsenn::GlobalTopKJoin(SmallD1(), core::SchemaMode::kAgnostic, config, 10);
  const auto large =
      sparsenn::GlobalTopKJoin(SmallD1(), core::SchemaMode::kAgnostic, config, 200);
  EXPECT_LE(small.candidates.size(), large.candidates.size());
}

}  // namespace
}  // namespace erb
