// Parity and dispatch-policy tests for the runtime-dispatched dense kernels
// (src/common/simd.hpp). The contract under test: every backend computes the
// same reduction in the same association order, so results are bit-identical
// across ERB_SIMD settings, and bad requests fall back to auto with a
// warning instead of failing (the ParseThreadCount policy).
#include "common/simd.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace erb::simd {
namespace {

std::vector<float> RandomFloats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n);
  // A mix of magnitudes so association order matters: bitwise equality of
  // the results is then evidence of an identical reduction tree.
  for (std::size_t i = 0; i < n; ++i) {
    const double mag = rng.NextDouble(-4.0, 4.0);
    out[i] = static_cast<float>(rng.NextDouble(-1.0, 1.0) * std::pow(10.0, mag));
  }
  return out;
}

// Sizes straddling the lane boundaries: empty, sub-lane, one short of a
// lane, exact lanes, one over, a large non-multiple and a large multiple.
constexpr std::size_t kSizes[] = {0, 1, 7, 8, 9, 300, 304};

std::vector<Kind> SupportedConcreteKinds() {
  std::vector<Kind> kinds = {Kind::kScalar};
  if (KindSupported(Kind::kAvx2)) kinds.push_back(Kind::kAvx2);
  if (KindSupported(Kind::kNeon)) kinds.push_back(Kind::kNeon);
  return kinds;
}

TEST(SimdParityTest, DotMatchesScalarBitwiseAcrossBackends) {
  for (Kind kind : SupportedConcreteKinds()) {
    ScopedSimdKind scoped(kind);
    for (std::size_t n : kSizes) {
      const auto a = RandomFloats(n, 101 + n);
      const auto b = RandomFloats(n, 202 + n);
      const float expect = DotScalar(a.data(), b.data(), n);
      const float got = Dot(a.data(), b.data(), n);
      EXPECT_EQ(std::memcmp(&expect, &got, sizeof(float)), 0)
          << "kind=" << KindName(kind) << " n=" << n << " expect=" << expect
          << " got=" << got;
    }
  }
}

TEST(SimdParityTest, SquaredL2MatchesScalarBitwiseAcrossBackends) {
  for (Kind kind : SupportedConcreteKinds()) {
    ScopedSimdKind scoped(kind);
    for (std::size_t n : kSizes) {
      const auto a = RandomFloats(n, 303 + n);
      const auto b = RandomFloats(n, 404 + n);
      const float expect = SquaredL2Scalar(a.data(), b.data(), n);
      const float got = SquaredL2(a.data(), b.data(), n);
      EXPECT_EQ(std::memcmp(&expect, &got, sizeof(float)), 0)
          << "kind=" << KindName(kind) << " n=" << n;
    }
  }
}

TEST(SimdParityTest, AxpyMatchesScalarBitwiseAcrossBackends) {
  for (Kind kind : SupportedConcreteKinds()) {
    ScopedSimdKind scoped(kind);
    for (std::size_t n : kSizes) {
      const auto x = RandomFloats(n, 505 + n);
      auto y_expect = RandomFloats(n, 606 + n);
      auto y_got = y_expect;
      AxpyScalar(0.37f, x.data(), y_expect.data(), n);
      Axpy(0.37f, x.data(), y_got.data(), n);
      if (n > 0) {
        EXPECT_EQ(std::memcmp(y_expect.data(), y_got.data(), n * sizeof(float)),
                  0)
            << "kind=" << KindName(kind) << " n=" << n;
      }
    }
  }
}

TEST(SimdDispatchTest, ParseAcceptsKnownNames) {
  EXPECT_EQ(ParseSimdKind("scalar", Kind::kAuto), Kind::kScalar);
  EXPECT_EQ(ParseSimdKind("avx2", Kind::kAuto), Kind::kAvx2);
  EXPECT_EQ(ParseSimdKind("neon", Kind::kAuto), Kind::kNeon);
  EXPECT_EQ(ParseSimdKind("auto", Kind::kScalar), Kind::kAuto);
  EXPECT_EQ(ParseSimdKind(nullptr, Kind::kAuto), Kind::kAuto);
  EXPECT_EQ(ParseSimdKind("", Kind::kAuto), Kind::kAuto);
}

TEST(SimdDispatchTest, ParseJunkFallsBack) {
  // Junk input returns the fallback (and warns on stderr) instead of
  // aborting — mirrors ParseThreadCount's policy for ERB_THREADS, including
  // the tolerance for surrounding whitespace and letter case.
  EXPECT_EQ(ParseSimdKind("sse9", Kind::kAuto), Kind::kAuto);
  EXPECT_EQ(ParseSimdKind("42", Kind::kScalar), Kind::kScalar);
  EXPECT_EQ(ParseSimdKind(" avx2 \n", Kind::kAuto), Kind::kAvx2);
  EXPECT_EQ(ParseSimdKind("SCALAR", Kind::kAuto), Kind::kScalar);
}

TEST(SimdDispatchTest, ActiveKindIsNeverAuto) {
  EXPECT_NE(ActiveKind(), Kind::kAuto);
  EXPECT_TRUE(KindSupported(ActiveKind()));
}

TEST(SimdDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(KindSupported(Kind::kScalar));
  EXPECT_TRUE(KindSupported(Kind::kAuto));  // always satisfiable by scalar
}

TEST(SimdDispatchTest, ScopedKindForcesAndRestores) {
  const Kind before = ActiveKind();
  {
    ScopedSimdKind scoped(Kind::kScalar);
    EXPECT_EQ(ActiveKind(), Kind::kScalar);
  }
  EXPECT_EQ(ActiveKind(), before);
}

TEST(SimdDispatchTest, SetKindUnsupportedFallsBackToAuto) {
  const Kind resolved = ActiveKind();
  // At most one of AVX2/NEON is supportable in one build; the other must
  // fall back to the auto resolution with a warning.
  const Kind unsupported =
      KindSupported(Kind::kAvx2) ? Kind::kNeon : Kind::kAvx2;
  ASSERT_FALSE(KindSupported(unsupported));
  SetKind(unsupported);
  EXPECT_EQ(ActiveKind(), resolved);
  SetKind(Kind::kAuto);
  EXPECT_EQ(ActiveKind(), resolved);
}

}  // namespace
}  // namespace erb::simd
