// Randomized property tests: invariants that must hold for arbitrary inputs,
// exercised with deterministic fuzz data.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "blocking/builders.hpp"
#include "blocking/cleaning.hpp"
#include "common/rng.hpp"
#include "core/candidates.hpp"
#include "datagen/registry.hpp"
#include "densenn/embedding.hpp"
#include "sparsenn/scancount.hpp"
#include "sparsenn/tokenset.hpp"
#include "text/clean.hpp"
#include "text/porter.hpp"

namespace erb {
namespace {

std::string RandomText(Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,-_'\"!";
  std::string text;
  const std::size_t len = rng.NextBounded(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    text.push_back(kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
  }
  return text;
}

TEST(FuzzTest, PorterStemNeverGrowsOrCrashes) {
  Rng rng(71);
  for (int i = 0; i < 2000; ++i) {
    std::string word;
    const std::size_t len = rng.NextBounded(24);
    for (std::size_t c = 0; c < len; ++c) {
      word.push_back(static_cast<char>('a' + rng.NextBounded(26)));
    }
    const std::string stem = text::PorterStem(word);
    EXPECT_LE(stem.size(), word.size() + 1) << word;  // +1: bl -> ble rules
    EXPECT_EQ(text::PorterStem(stem), text::PorterStem(text::PorterStem(stem)))
        << word;  // stemming stabilizes after at most one extra application
  }
}

TEST(FuzzTest, CleanTokensProducesNormalizedTokens) {
  Rng rng(72);
  for (int i = 0; i < 500; ++i) {
    const std::string text = RandomText(rng, 120);
    for (const auto& token : text::CleanTokens(text, rng.NextBool(0.5))) {
      EXPECT_FALSE(token.empty());
      for (char c : token) {
        EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
            << "token '" << token << "' from: " << text;
      }
    }
  }
}

class ExtractKeysFuzz : public ::testing::TestWithParam<blocking::BuilderKind> {};

TEST_P(ExtractKeysFuzz, KeysAreSortedUniqueNonEmpty) {
  Rng rng(73);
  blocking::BuilderConfig config;
  config.kind = GetParam();
  config.q = 3;
  config.l_min = 2;
  for (int i = 0; i < 300; ++i) {
    const auto keys = blocking::ExtractKeys(RandomText(rng, 80), config);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
    for (const auto& key : keys) EXPECT_FALSE(key.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBuilders, ExtractKeysFuzz,
    ::testing::Values(blocking::BuilderKind::kStandard,
                      blocking::BuilderKind::kQGrams,
                      blocking::BuilderKind::kExtendedQGrams,
                      blocking::BuilderKind::kSuffixArrays,
                      blocking::BuilderKind::kExtendedSuffixArrays));

TEST(PropertyTest, PurgingIsMonotoneAndNearlyStable) {
  // Comparison-based purging recomputes its knee from the (already purged)
  // cardinality distribution, so it is not strictly idempotent — but a second
  // application must never add blocks and may only trim marginally.
  const auto dataset = datagen::Generate(datagen::PaperSpec(2).Scaled(0.15));
  auto blocks = blocking::BuildBlocks(dataset, core::SchemaMode::kAgnostic,
                                      blocking::BuilderConfig{});
  const std::size_t built = blocks.size();
  const std::size_t n1 = dataset.e1().size(), n2 = dataset.e2().size();
  blocking::BlockPurging(&blocks, n1, n2);
  const std::size_t after_first = blocks.size();
  EXPECT_LE(after_first, built);
  blocking::BlockPurging(&blocks, n1, n2);
  EXPECT_LE(blocks.size(), after_first);
  EXPECT_GE(blocks.size(), after_first * 99 / 100);
}

TEST(PropertyTest, FilteringMonotoneInRatio) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(2).Scaled(0.15));
  const auto base = blocking::BuildBlocks(dataset, core::SchemaMode::kAgnostic,
                                          blocking::BuilderConfig{});
  const std::size_t n1 = dataset.e1().size(), n2 = dataset.e2().size();
  std::uint64_t previous = 0;
  for (double ratio : {0.2, 0.5, 0.8, 1.0}) {
    auto blocks = base;
    blocking::BlockFiltering(&blocks, ratio, n1, n2);
    const auto comparisons = blocking::TotalComparisons(blocks);
    EXPECT_GE(comparisons, previous) << ratio;
    previous = comparisons;
  }
}

TEST(PropertyTest, CandidateSetOrderInsensitive) {
  Rng rng(74);
  core::CandidateSet a, b;
  std::vector<std::pair<core::EntityId, core::EntityId>> pairs;
  for (int i = 0; i < 500; ++i) {
    pairs.emplace_back(static_cast<core::EntityId>(rng.NextBounded(50)),
                       static_cast<core::EntityId>(rng.NextBounded(50)));
  }
  for (const auto& [x, y] : pairs) a.Add(x, y);
  std::reverse(pairs.begin(), pairs.end());
  for (const auto& [x, y] : pairs) b.Add(x, y);
  a.Finalize();
  b.Finalize();
  EXPECT_EQ(a.pairs(), b.pairs());
}

TEST(PropertyTest, TokenSetOverlapIsSymmetricInModel) {
  // For any two texts, overlap(A,B) == overlap(B,A) under every model.
  Rng rng(75);
  for (int i = 0; i < 100; ++i) {
    const std::string t1 = RandomText(rng, 60);
    const std::string t2 = RandomText(rng, 60);
    for (auto model : {sparsenn::TokenModel::kT1GM, sparsenn::TokenModel::kC3G}) {
      const auto a = sparsenn::BuildTokenSet(t1, model, false);
      const auto b = sparsenn::BuildTokenSet(t2, model, false);
      std::size_t ab = 0, ba = 0;
      for (auto t : a) ab += std::binary_search(b.begin(), b.end(), t);
      for (auto t : b) ba += std::binary_search(a.begin(), a.end(), t);
      EXPECT_EQ(ab, ba);
    }
  }
}

// The prefix/positional-filtered probe is a drop-in replacement for the
// unfiltered merge-count: over arbitrary corpora, every measure and low /
// mid / exact thresholds, the candidates surviving the exact similarity
// predicate are identical, and every emitted overlap is exact. (Everything
// the filters drop provably falls below the threshold.)
TEST(PropertyTest, PrefixProbeEquivalentToUnfilteredScanCount) {
  using sparsenn::PrefixScanCountIndex;
  using sparsenn::SetSimilarity;
  using sparsenn::SimilarityMeasure;
  using sparsenn::TokenSet;
  Rng rng(77);
  for (int corpus = 0; corpus < 3; ++corpus) {
    std::vector<TokenSet> indexed;
    for (int i = 0; i < 50; ++i) {
      TokenSet set;
      const std::size_t n = 1 + rng.NextBounded(24);
      for (std::size_t t = 0; t < n; ++t) set.push_back(rng.NextBounded(60));
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
      indexed.push_back(std::move(set));
    }
    std::vector<TokenSet> queries;
    for (int i = 0; i < 15; ++i) {
      TokenSet query;
      const std::size_t n = 1 + rng.NextBounded(18);
      // Universe 80 > 60: some query tokens are unknown to the index.
      for (std::size_t t = 0; t < n; ++t) query.push_back(rng.NextBounded(80));
      std::sort(query.begin(), query.end());
      query.erase(std::unique(query.begin(), query.end()), query.end());
      queries.push_back(std::move(query));
    }
    for (SimilarityMeasure measure :
         {SimilarityMeasure::kCosine, SimilarityMeasure::kDice,
          SimilarityMeasure::kJaccard}) {
      for (double threshold : {0.0, 0.5, 1.0}) {
        const PrefixScanCountIndex index(indexed, measure, threshold);
        PrefixScanCountIndex::ProbeScratch scratch;
        for (std::size_t q = 0; q < queries.size(); ++q) {
          const TokenSet& query = queries[q];
          std::map<std::uint32_t, std::uint32_t> overlaps;  // brute force
          std::map<std::uint32_t, std::uint32_t> expected;  // ... >= threshold
          for (std::uint32_t id = 0; id < indexed.size(); ++id) {
            std::uint32_t o = 0;
            for (auto t : query) {
              o += std::binary_search(indexed[id].begin(), indexed[id].end(), t);
            }
            if (o == 0) continue;
            overlaps[id] = o;
            if (SetSimilarity(measure, o, query.size(), indexed[id].size()) >=
                threshold) {
              expected[id] = o;
            }
          }
          std::map<std::uint32_t, std::uint32_t> survivors;
          index.Probe(
              index.ranks().Remap(query), threshold, &scratch,
              [&](std::uint32_t id, std::uint32_t overlap, std::uint32_t size) {
                EXPECT_EQ(size, indexed[id].size());
                EXPECT_EQ(overlap, overlaps[id]) << "inexact overlap";
                if (SetSimilarity(measure, overlap, query.size(), size) >=
                    threshold) {
                  survivors[id] = overlap;
                }
              });
          EXPECT_EQ(survivors, expected)
              << "corpus " << corpus << " " << MeasureName(measure)
              << " t=" << threshold << " query " << q;
        }
      }
    }
  }
}

TEST(PropertyTest, EmbeddingIsScaleFreeOverWordOrder) {
  // Averaging words makes the embedding order-insensitive.
  const auto a = densenn::EmbedText("alpha beta gamma");
  const auto b = densenn::EmbedText("gamma alpha beta");
  EXPECT_NEAR(densenn::Dot(a, b), 1.0f, 1e-5);
}

TEST(PropertyTest, EmbedTextHandlesArbitraryBytes) {
  Rng rng(76);
  for (int i = 0; i < 200; ++i) {
    std::string text;
    const std::size_t len = rng.NextBounded(100);
    for (std::size_t c = 0; c < len; ++c) {
      text.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    const auto v = densenn::EmbedText(text);
    for (float x : v) EXPECT_TRUE(std::isfinite(x));
  }
}

}  // namespace
}  // namespace erb
