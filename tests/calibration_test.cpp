// Calibration regression tests: pin the dataset-shape properties that the
// paper's findings depend on, so accidental generator drift is caught by CI
// rather than by a misshapen Table VII.
#include <gtest/gtest.h>

#include "blocking/workflow.hpp"
#include "core/metrics.hpp"
#include "core/schema.hpp"
#include "datagen/registry.hpp"
#include "sparsenn/joins.hpp"

namespace erb {
namespace {

double BestAttrCoverage(const core::Dataset& d, bool groundtruth) {
  for (const auto& s : core::ComputeAttributeStats(d)) {
    if (s.name == d.best_attribute()) {
      return groundtruth ? s.groundtruth_coverage : s.coverage;
    }
  }
  return 0.0;
}

double PbwPq(const core::Dataset& d) {
  const auto run = blocking::RunWorkflow(d, core::SchemaMode::kAgnostic,
                                         blocking::ParameterFreeWorkflow());
  return core::Evaluate(run.candidates, d).pq;
}

TEST(CalibrationTest, D1CoverageMatchesFigure3a) {
  // Paper: the name attribute covers ~2/3 of all profiles but every duplicate.
  const auto d = datagen::Generate(datagen::PaperSpec(1));
  EXPECT_GT(BestAttrCoverage(d, false), 0.55);
  EXPECT_LT(BestAttrCoverage(d, false), 0.78);
  EXPECT_DOUBLE_EQ(BestAttrCoverage(d, true), 1.0);
}

TEST(CalibrationTest, MovieDatasetsFailSchemaBasedCoverage) {
  // Paper: D5-D7 overall coverage 55-75%, ground-truth coverage 30-53%.
  for (int index : {5, 6, 7}) {
    const auto d = datagen::Generate(datagen::PaperSpec(index).Scaled(0.25));
    const double coverage = BestAttrCoverage(d, false);
    const double gt = BestAttrCoverage(d, true);
    EXPECT_GT(coverage, 0.5) << d.name();
    EXPECT_LT(coverage, 0.8) << d.name();
    EXPECT_LT(gt, 0.7) << d.name();
    EXPECT_LT(gt, coverage) << d.name();
  }
}

TEST(CalibrationTest, HardnessOrderingD3HardestD4Easiest) {
  // Paper Table VII(b): D3 yields the lowest PQ among D1-D4 for nearly every
  // method, D4 the highest. PBW's precision is a cheap proxy for that shape.
  const auto d2 = datagen::Generate(datagen::PaperSpec(2).Scaled(0.5));
  const auto d3 = datagen::Generate(datagen::PaperSpec(3).Scaled(0.5));
  const auto d4 = datagen::Generate(datagen::PaperSpec(4).Scaled(0.5));
  const double pq2 = PbwPq(d2), pq3 = PbwPq(d3), pq4 = PbwPq(d4);
  EXPECT_LT(pq3, pq2);
  EXPECT_LT(pq2, pq4);
}

TEST(CalibrationTest, TokenBlockingRecallCeilingHoldsEverywhere) {
  // Problem 1 must be solvable in the schema-agnostic settings: the token
  // co-occurrence ceiling stays above the 0.9 target on every dataset.
  for (int index = 1; index <= datagen::kNumDatasets; ++index) {
    const auto d = datagen::Generate(datagen::PaperSpec(index).Scaled(
        index <= 4 ? 0.5 : 0.15));
    const auto run = blocking::RunWorkflow(d, core::SchemaMode::kAgnostic,
                                           blocking::ParameterFreeWorkflow());
    EXPECT_GE(core::Evaluate(run.candidates, d).pc, 0.9) << d.name();
  }
}

TEST(CalibrationTest, DknnBaselineLandsInPaperRange) {
  // DkNN (K=5, C5GM, cosine) reaches 0.8-1.0 recall on the small datasets,
  // as in Table VII(a)'s baseline rows.
  for (int index : {1, 2, 4}) {
    const auto d = datagen::Generate(datagen::PaperSpec(index).Scaled(0.5));
    const auto run = sparsenn::DefaultKnnJoin(d, core::SchemaMode::kAgnostic);
    const auto eff = core::Evaluate(run.candidates, d);
    EXPECT_GT(eff.pc, 0.8) << d.name();
    EXPECT_GT(eff.pq, 0.05) << d.name();
  }
}

TEST(CalibrationTest, DuplicateHardnessIsGraded) {
  // The hard tail must form a continuum: with K=1 a kNN join catches most
  // but clearly not all duplicates on D2 (no cliff at the easy fraction, no
  // perfect separability either).
  const auto d = datagen::Generate(datagen::PaperSpec(2).Scaled(0.5));
  sparsenn::SparseConfig config;
  config.model = sparsenn::TokenModel::kC5GM;
  const auto run = sparsenn::KnnJoin(d, core::SchemaMode::kAgnostic, config, 1,
                                     false);
  const double pc = core::Evaluate(run.candidates, d).pc;
  EXPECT_GT(pc, 0.70);
  EXPECT_LT(pc, 0.97);
}

}  // namespace
}  // namespace erb
