// Integration and cross-dataset property tests: every filtering method run
// end-to-end on generated replicas, with the paper's structural invariants
// checked per dataset.
#include <gtest/gtest.h>

#include "blocking/workflow.hpp"
#include "core/metrics.hpp"
#include "core/schema.hpp"
#include "datagen/registry.hpp"
#include "sparsenn/joins.hpp"
#include "tuning/suite.hpp"

namespace erb {
namespace {

const core::Dataset& TestDataset(int index, double scale) {
  static std::map<std::pair<int, int>, core::Dataset> cache;
  const std::pair<int, int> key{index, static_cast<int>(scale * 1000)};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, datagen::Generate(datagen::PaperSpec(index).Scaled(scale)))
             .first;
  }
  return it->second;
}

// --- every method produces sane output on a small dataset ------------------

class AllMethodsTest : public ::testing::TestWithParam<tuning::MethodId> {};

TEST_P(AllMethodsTest, RunsEndToEndOnD1) {
  const auto& dataset = TestDataset(1, 0.35);
  tuning::GridOptions options;
  options.repetitions = 1;
  const auto result =
      tuning::RunMethod(GetParam(), dataset, core::SchemaMode::kAgnostic, options);
  EXPECT_EQ(result.method, tuning::MethodName(GetParam()));
  EXPECT_GT(result.eff.pc, 0.0);
  EXPECT_GT(result.eff.candidates, 0u);
  EXPECT_LE(result.eff.detected, dataset.NumDuplicates());
  EXPECT_LE(result.eff.detected, result.eff.candidates);
  EXPECT_GE(result.runtime_ms, 0.0);
  EXPECT_FALSE(result.config.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AllMethodsTest, ::testing::ValuesIn(tuning::AllMethods()),
    [](const ::testing::TestParamInfo<tuning::MethodId>& info) {
      std::string name(tuning::MethodName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- structural invariants across datasets ----------------------------------

class DatasetPropertiesTest : public ::testing::TestWithParam<int> {};

TEST_P(DatasetPropertiesTest, TokenBlockingCeilingSupportsTargetRecall) {
  const auto& dataset = TestDataset(GetParam(), 0.25);
  const auto run = blocking::RunWorkflow(dataset, core::SchemaMode::kAgnostic,
                                         blocking::ParameterFreeWorkflow());
  const auto eff = core::Evaluate(run.candidates, dataset);
  // The paper's Problem 1 requires PC >= 0.9 to be reachable in the
  // schema-agnostic settings of every dataset.
  EXPECT_GE(eff.pc, 0.9) << dataset.name();
}

TEST_P(DatasetPropertiesTest, SchemaBasedReducesCorpusSize) {
  const auto& dataset = TestDataset(GetParam(), 0.25);
  const auto agnostic =
      core::ComputeCorpusStats(dataset, core::SchemaMode::kAgnostic, false);
  const auto based =
      core::ComputeCorpusStats(dataset, core::SchemaMode::kBased, false);
  EXPECT_LT(based.char_length, agnostic.char_length) << dataset.name();
  EXPECT_LT(based.vocabulary_size, agnostic.vocabulary_size) << dataset.name();
}

TEST_P(DatasetPropertiesTest, CleaningReducesCorpusSize) {
  const auto& dataset = TestDataset(GetParam(), 0.25);
  const auto raw =
      core::ComputeCorpusStats(dataset, core::SchemaMode::kAgnostic, false);
  const auto cleaned =
      core::ComputeCorpusStats(dataset, core::SchemaMode::kAgnostic, true);
  EXPECT_LE(cleaned.vocabulary_size, raw.vocabulary_size) << dataset.name();
}

TEST_P(DatasetPropertiesTest, CardinalityMethodsScaleLinearly) {
  const auto& dataset = TestDataset(GetParam(), 0.25);
  // |C| of a kNN join is bounded by k * queries (plus ties); the similarity
  // join has no such bound. This is conclusion 3 of the paper.
  sparsenn::SparseConfig config;
  config.model = sparsenn::TokenModel::kC3G;
  const auto knn =
      sparsenn::KnnJoin(dataset, core::SchemaMode::kAgnostic, config, 2, false);
  EXPECT_LE(knn.candidates.size(), 4 * dataset.e2().size()) << dataset.name();
}

INSTANTIATE_TEST_SUITE_P(D1toD4, DatasetPropertiesTest, ::testing::Range(1, 5));

// --- fine-tuning dominates defaults (the paper's conclusion 1) -------------

TEST(FineTuningTest, TunedKnnBeatsDefaultOnD2) {
  const auto& dataset = TestDataset(2, 0.3);
  tuning::GridOptions options;
  options.repetitions = 1;
  const auto tuned =
      tuning::RunMethod(tuning::MethodId::kKnnJoin, dataset,
                        core::SchemaMode::kAgnostic, options);
  const auto baseline = tuning::RunMethod(tuning::MethodId::kDknn, dataset,
                                          core::SchemaMode::kAgnostic, options);
  ASSERT_TRUE(tuned.reached_target);
  if (baseline.reached_target) {
    EXPECT_GE(tuned.eff.pq, baseline.eff.pq * 0.8);
  }
}

TEST(FineTuningTest, TunedBlockingBeatsPbwPrecisionOnD2) {
  const auto& dataset = TestDataset(2, 0.3);
  tuning::GridOptions options;
  options.repetitions = 1;
  const auto tuned = tuning::RunMethod(tuning::MethodId::kSbw, dataset,
                                       core::SchemaMode::kAgnostic, options);
  const auto pbw = tuning::RunMethod(tuning::MethodId::kPbw, dataset,
                                     core::SchemaMode::kAgnostic, options);
  ASSERT_TRUE(tuned.reached_target);
  EXPECT_GT(tuned.eff.pq, pbw.eff.pq);
}

}  // namespace
}  // namespace erb
