// Verifies that the encoded configuration spaces reproduce the "Maximum
// Configurations" counts of the paper's Tables III, IV and V exactly.
#include <gtest/gtest.h>

#include "tuning/gridspec.hpp"

namespace erb::tuning {
namespace {

TEST(GridSpecTest, TableIIIBlockingCounts) {
  EXPECT_EQ(MaxConfigurations(MethodId::kSbw), 3440u);
  EXPECT_EQ(MaxConfigurations(MethodId::kQbw), 17200u);
  EXPECT_EQ(MaxConfigurations(MethodId::kEqbw), 68800u);
  EXPECT_EQ(MaxConfigurations(MethodId::kSabw), 21285u);
  EXPECT_EQ(MaxConfigurations(MethodId::kEsabw), 21285u);
}

TEST(GridSpecTest, TableIVSparseCounts) {
  EXPECT_EQ(MaxConfigurations(MethodId::kEpsilonJoin), 6000u);
  EXPECT_EQ(MaxConfigurations(MethodId::kKnnJoin), 12000u);
  // HB-join extension: sparse common block x thresholds x k.
  EXPECT_EQ(MaxConfigurations(MethodId::kHybridJoin), 600000u);
}

TEST(GridSpecTest, TableVDenseCounts) {
  EXPECT_EQ(MaxConfigurations(MethodId::kMhLsh), 168u);
  EXPECT_EQ(MaxConfigurations(MethodId::kHpLsh), 400u);
  EXPECT_EQ(MaxConfigurations(MethodId::kCpLsh), 2000u);
  EXPECT_EQ(MaxConfigurations(MethodId::kFaiss), 2720u);
  EXPECT_EQ(MaxConfigurations(MethodId::kScann), 10880u);
  EXPECT_EQ(MaxConfigurations(MethodId::kDeepBlocker), 2720u);
}

TEST(GridSpecTest, BaselinesHaveOneConfiguration) {
  EXPECT_EQ(MaxConfigurations(MethodId::kPbw), 1u);
  EXPECT_EQ(MaxConfigurations(MethodId::kDbw), 1u);
  EXPECT_EQ(MaxConfigurations(MethodId::kDknn), 1u);
  EXPECT_EQ(MaxConfigurations(MethodId::kDdb), 1u);
}

TEST(GridSpecTest, DomainsMatchTableDefinitions) {
  const auto blocking = PaperBlockingGrid();
  EXPECT_EQ(blocking.filter_ratios.size(), 40u);
  EXPECT_DOUBLE_EQ(blocking.filter_ratios.front(), 0.025);
  EXPECT_NEAR(blocking.filter_ratios.back(), 1.0, 1e-9);
  EXPECT_EQ(blocking.q, (std::vector<int>{2, 3, 4, 5, 6}));
  EXPECT_EQ(blocking.t.size(), 4u);  // [0.8, 1.0) step 0.05
  EXPECT_EQ(blocking.b_max.size(), 99u);

  const auto sparse = PaperSparseGrid();
  EXPECT_EQ(sparse.thresholds.size(), 100u);
  EXPECT_EQ(sparse.k.size(), 100u);

  const auto dense = PaperDenseGrid();
  EXPECT_EQ(dense.minhash_bands_rows.size(), 21u);  // 6 + 7 + 8 factor pairs
  for (const auto& [bands, rows] : dense.minhash_bands_rows) {
    const int product = bands * rows;
    EXPECT_TRUE(product == 128 || product == 256 || product == 512);
    EXPECT_GE(bands, 2);
    EXPECT_GE(rows, 2);
  }
  EXPECT_EQ(dense.lsh_tables.size(), 10u);  // 2^0 .. 2^9
  EXPECT_EQ(dense.cardinality_k.size(), 680u);  // 100 + 180 + 400
}

}  // namespace
}  // namespace erb::tuning
