// Differential tests for the shard-partitioned pipeline (src/shard): every
// sharded entry point must produce byte-identical results to its unsharded
// counterpart at shard counts {1, 4, 8} and thread counts {1, 8}, under both
// filter modes, over the adversarial oracle corpus — plus the boundary
// assignments (empty shard, single-entity shard, all-in-one-shard), K = 0,
// and the rotation schedule against the resident one. Run alone with
// `ctest -L shard`.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "blocking/builders.hpp"
#include "blocking/entity_index.hpp"
#include "common/parallel.hpp"
#include "core/candidates.hpp"
#include "core/entity.hpp"
#include "datagen/generator.hpp"
#include "datagen/registry.hpp"
#include "datagen/scale.hpp"
#include "obs/trace.hpp"
#include "oracle/corpus.hpp"
#include "serve/resolver.hpp"
#include "shard/blocks.hpp"
#include "shard/joins.hpp"
#include "shard/merge.hpp"
#include "shard/plan.hpp"
#include "shard/resolver.hpp"
#include "shard/scale.hpp"
#include "sparsenn/joins.hpp"

namespace erb {
namespace {

using core::EntityId;

constexpr std::uint32_t kShardCounts[] = {1, 4, 8};
constexpr std::size_t kThreadCounts[] = {1, 8};

shard::ShardOptions Opts(std::uint32_t shards) {
  shard::ShardOptions options;
  options.num_shards = shards;
  options.mem_budget_mb = 0;  // resident unless a test says otherwise
  return options;
}

// The sweep driver: runs `sharded(options)` across the shard x thread grid
// and asserts its finalized pairs equal `expected` every time.
template <typename Sharded>
void ExpectShardedEqual(const std::vector<core::PairKey>& expected,
                        Sharded&& sharded, const std::string& what) {
  for (const std::uint32_t shards : kShardCounts) {
    for (const std::size_t threads : kThreadCounts) {
      ScopedThreadLimit limit(threads);
      const core::CandidateSet got = sharded(Opts(shards));
      ASSERT_EQ(expected, got.pairs())
          << what << " diverges at " << shards << " shards, " << threads
          << " threads";
    }
  }
}

TEST(ShardPlan, AssignmentIsDeterministicAndInRange) {
  EXPECT_EQ(shard::ShardOf("anything", 1), 0u);
  const std::uint32_t a = shard::ShardOf("D2:e1:17", 8);
  EXPECT_EQ(a, shard::ShardOf("D2:e1:17", 8));
  EXPECT_LT(a, 8u);
  EXPECT_EQ(shard::SyntheticExternalId("D2", 0, 17), "D2:e1:17");
  EXPECT_EQ(shard::SyntheticExternalId("D2", 1, 3), "D2:e2:3");
}

TEST(ShardPlan, FromAssignmentsValidatesAndOrdersMembers) {
  const auto plan = shard::ShardPlan::FromAssignments({1, 0, 1, 1}, 2);
  EXPECT_EQ(plan.members[0], (std::vector<EntityId>{1}));
  EXPECT_EQ(plan.members[1], (std::vector<EntityId>{0, 2, 3}));
  EXPECT_THROW(shard::ShardPlan::FromAssignments({2}, 2),
               std::invalid_argument);
  EXPECT_THROW(shard::ShardPlan::FromAssignments({}, 0),
               std::invalid_argument);
}

TEST(ShardPlan, ScheduleRespectsBudget) {
  using shard::ShardSchedule;
  EXPECT_EQ(shard::ChooseSchedule(10 << 20, 0, 4), ShardSchedule::kResident);
  EXPECT_EQ(shard::ChooseSchedule(10 << 20, 1, 4), ShardSchedule::kRotate);
  EXPECT_EQ(shard::ChooseSchedule(10 << 20, 1, 1), ShardSchedule::kResident);
  EXPECT_EQ(shard::ChooseSchedule(1 << 18, 1, 4), ShardSchedule::kResident);
}

TEST(ShardMerge, MergesRunsInKnnOrder) {
  const std::vector<std::vector<shard::ScoredMatch>> runs = {
      {{2, 0.9}, {5, 0.5}},
      {},
      {{1, 0.9}, {3, 0.9}, {4, 0.2}},
  };
  std::vector<shard::ScoredMatch> out;
  shard::MergeScoredRuns(runs, &out);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 2u);
  EXPECT_EQ(out[2].id, 3u);
  EXPECT_EQ(out[3].id, 5u);
  EXPECT_EQ(out[4].id, 4u);
}

TEST(ShardJoinDifferential, EpsilonMatchesUnsharded) {
  const auto cases = oracle::BuildCorpus(/*seed=*/4242);
  for (const auto filter :
       {sparsenn::FilterMode::kLength, sparsenn::FilterMode::kPrefix}) {
    sparsenn::SparseConfig config;
    config.filter = filter;
    for (const auto& c : cases) {
      const auto expected =
          sparsenn::EpsilonJoin(c.dataset, core::SchemaMode::kAgnostic, config,
                                0.35)
              .candidates.pairs();
      ExpectShardedEqual(
          expected,
          [&](const shard::ShardOptions& options) {
            return shard::ShardedEpsilonJoin(c.dataset,
                                             core::SchemaMode::kAgnostic,
                                             config, 0.35, options)
                .candidates;
          },
          "epsilon/" + c.name);
    }
  }
}

TEST(ShardJoinDifferential, KnnMatchesUnsharded) {
  const auto cases = oracle::BuildCorpus(/*seed=*/4243);
  for (const auto filter :
       {sparsenn::FilterMode::kLength, sparsenn::FilterMode::kPrefix}) {
    sparsenn::SparseConfig config;
    config.filter = filter;
    for (const auto& c : cases) {
      for (const bool reverse : {false, true}) {
        for (const int k : {0, 2}) {
          const auto expected =
              sparsenn::KnnJoin(c.dataset, core::SchemaMode::kAgnostic, config,
                                k, reverse)
                  .candidates.pairs();
          ExpectShardedEqual(
              expected,
              [&](const shard::ShardOptions& options) {
                return shard::ShardedKnnJoin(c.dataset,
                                             core::SchemaMode::kAgnostic,
                                             config, k, reverse, options)
                    .candidates;
              },
              "knn/" + c.name);
        }
      }
    }
  }
}

TEST(ShardJoinDifferential, GlobalTopKMatchesUnsharded) {
  const auto cases = oracle::BuildCorpus(/*seed=*/4244);
  for (const auto filter :
       {sparsenn::FilterMode::kLength, sparsenn::FilterMode::kPrefix}) {
    sparsenn::SparseConfig config;
    config.filter = filter;
    for (const auto& c : cases) {
      for (const std::size_t global_k : {std::size_t{0}, std::size_t{7}}) {
        const auto expected =
            sparsenn::GlobalTopKJoin(c.dataset, core::SchemaMode::kAgnostic,
                                     config, global_k)
                .candidates.pairs();
        ExpectShardedEqual(
            expected,
            [&](const shard::ShardOptions& options) {
              return shard::ShardedGlobalTopKJoin(
                         c.dataset, core::SchemaMode::kAgnostic, config,
                         global_k, options)
                  .candidates;
            },
            "topk/" + c.name);
      }
    }
  }
}

// Explicit boundary assignments: an empty shard, a single-entity shard, and
// everything on one shard — all must still match the unsharded join.
TEST(ShardJoinDifferential, BoundaryAssignmentsMatchUnsharded) {
  const auto cases = oracle::BuildCorpus(/*seed=*/4245);
  sparsenn::SparseConfig config;
  config.filter = sparsenn::FilterMode::kLength;
  for (const auto& c : cases) {
    const std::size_t n1 = c.dataset.e1().size();
    if (n1 < 2) continue;
    const auto expected = sparsenn::EpsilonJoin(
                              c.dataset, core::SchemaMode::kAgnostic, config,
                              0.35)
                              .candidates.pairs();
    std::vector<std::vector<std::uint32_t>> assignments;
    // Shard 1 stays empty; everything lands on shards 0 and 2.
    std::vector<std::uint32_t> with_empty(n1, 0);
    with_empty.back() = 2;
    assignments.push_back(with_empty);
    // Shard 1 holds exactly one entity.
    std::vector<std::uint32_t> singleton(n1, 0);
    singleton[0] = 1;
    assignments.push_back(singleton);
    // All-in-one shard (of 3).
    assignments.push_back(std::vector<std::uint32_t>(n1, 2));
    for (const auto& assignment : assignments) {
      shard::ShardOptions options = Opts(3);
      options.assignment = assignment;
      const auto got = shard::ShardedEpsilonJoin(
          c.dataset, core::SchemaMode::kAgnostic, config, 0.35, options);
      ASSERT_EQ(expected, got.candidates.pairs()) << c.name;
    }
    shard::ShardOptions bad = Opts(3);
    bad.assignment = {0};  // wrong length
    if (n1 != 1) {
      EXPECT_THROW(shard::ShardedEpsilonJoin(c.dataset,
                                             core::SchemaMode::kAgnostic,
                                             config, 0.35, bad),
                   std::invalid_argument);
    }
  }
}

// A corpus big enough that ERB_MEM_BUDGET_MB = 1 forces kRotate: the
// rotation schedule must emit the same bytes as the resident one and must
// actually rotate (counter-checked).
TEST(ShardJoinDifferential, RotationMatchesResident) {
  datagen::DatasetSpec spec = datagen::PaperSpec(2);
  spec.n1 = 2400;
  spec.n2 = 120;
  spec.n_duplicates = 60;
  const core::Dataset dataset = datagen::Generate(spec);
  sparsenn::SparseConfig config;
  config.filter = sparsenn::FilterMode::kLength;

  shard::ShardOptions resident = Opts(4);
  const auto expected = shard::ShardedEpsilonJoin(
      dataset, core::SchemaMode::kAgnostic, config, 0.5, resident);

  obs::SetTraceEnabled(true);
  obs::ResetCollected();
  shard::ShardOptions rotate = Opts(4);
  rotate.mem_budget_mb = 1;
  const auto got = shard::ShardedEpsilonJoin(
      dataset, core::SchemaMode::kAgnostic, config, 0.5, rotate);
  const auto counters = obs::CounterSnapshot();
  const auto snapshot = obs::Collect();
  obs::SetTraceEnabled(false);

  EXPECT_EQ(expected.candidates.pairs(), got.candidates.pairs());
  ASSERT_TRUE(counters.contains("shard.rotations"));
  EXPECT_EQ(counters.at("shard.rotations"), 4u);
  EXPECT_EQ(snapshot.gauges.at("shard.schedule_rotate"), 1u);
}

TEST(ShardBlocks, MatchesUnshardedLazyBuilders) {
  const auto cases = oracle::BuildCorpus(/*seed=*/4246);
  for (const auto kind :
       {blocking::BuilderKind::kStandard, blocking::BuilderKind::kQGrams,
        blocking::BuilderKind::kExtendedQGrams}) {
    blocking::BuilderConfig config;
    config.kind = kind;
    for (const auto& c : cases) {
      const auto blocks =
          blocking::BuildBlocks(c.dataset, core::SchemaMode::kAgnostic, config);
      const blocking::EntityBlockIndex index(blocks, c.dataset.e1().size(),
                                             c.dataset.e2().size());
      core::CandidateSet expected;
      index.Stream<false, false>(
          0, c.dataset.e1().size(),
          [&](EntityId i, EntityId j, std::uint32_t, double) {
            expected.Add(i, j);
          });
      expected.Finalize();
      ExpectShardedEqual(
          expected.pairs(),
          [&](const shard::ShardOptions& options) {
            return shard::ShardedBlockCandidates(
                c.dataset, core::SchemaMode::kAgnostic, config, options);
          },
          "blocks/" + c.name);
    }
  }
}

TEST(ShardBlocks, RejectsSuffixArrayBuilders) {
  const auto cases = oracle::BuildCorpus(/*seed=*/1);
  blocking::BuilderConfig config;
  config.kind = blocking::BuilderKind::kSuffixArrays;
  EXPECT_FALSE(shard::BuilderIsShardable(config.kind));
  EXPECT_FALSE(
      shard::BuilderIsShardable(blocking::BuilderKind::kExtendedSuffixArrays));
  EXPECT_THROW(shard::ShardedBlockCandidates(cases.front().dataset,
                                             core::SchemaMode::kAgnostic,
                                             config, Opts(2)),
               std::invalid_argument);
}

// The sharded resolver against a single resolver fed the same insert
// stream: identical global ids, matches, similarities and block candidates,
// at every shard count, with and without sealing.
TEST(ShardResolver, MatchesSingleResolver) {
  const auto cases = oracle::BuildCorpus(/*seed=*/4247);
  serve::ServeConfig config;
  config.threshold = 0.35;
  config.enable_blocking = true;
  for (const auto& c : cases) {
    const auto& corpus = c.dataset.e1();
    const auto& queries = c.dataset.e2();
    for (const bool seal : {false, true}) {
      serve::Resolver single(config);
      for (std::size_t i = 0; i < corpus.size(); ++i) {
        single.Insert(std::to_string(i), corpus[i]);
      }
      if (seal) single.SealEpoch();
      for (const std::uint32_t shards : {1u, 3u, 8u}) {
        shard::ShardedResolver sharded(config, Opts(shards));
        for (std::size_t i = 0; i < corpus.size(); ++i) {
          const auto r = sharded.Insert(std::to_string(i), corpus[i]);
          ASSERT_TRUE(r.inserted);
          ASSERT_EQ(r.id, i) << "global ids must follow insert order";
        }
        if (seal) sharded.SealEpoch();
        ASSERT_EQ(sharded.NumEntities(), corpus.size());
        const auto singles = single.ResolveBatch(queries);
        const auto shardeds = sharded.ResolveBatch(queries);
        ASSERT_EQ(singles.size(), shardeds.size());
        for (std::size_t q = 0; q < singles.size(); ++q) {
          ASSERT_EQ(singles[q].matches.size(), shardeds[q].matches.size())
              << c.name << " query " << q << " at " << shards << " shards";
          for (std::size_t m = 0; m < singles[q].matches.size(); ++m) {
            EXPECT_EQ(singles[q].matches[m].id, shardeds[q].matches[m].id);
            EXPECT_EQ(singles[q].matches[m].similarity,
                      shardeds[q].matches[m].similarity);
          }
          EXPECT_EQ(singles[q].block_candidates, shardeds[q].block_candidates);
        }
      }
    }
  }
}

TEST(ShardResolver, RejectsDuplicateExternalIdsAcrossShards) {
  serve::ServeConfig config;
  config.threshold = 0.5;
  shard::ShardedResolver resolver(config, Opts(4));
  core::EntityProfile p{{{"name", "acme pump"}}};
  const auto first = resolver.Insert("x1", p);
  ASSERT_TRUE(first.inserted);
  const auto again = resolver.Insert("x1", p);
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.id, first.id);
  EXPECT_EQ(resolver.NumEntities(), 1u);
  EXPECT_EQ(resolver.ExternalIdOf(first.id), "x1");
}

TEST(ScaleSpec, ReplicaZeroReproducesBaseDataset) {
  datagen::DatasetSpec base = datagen::PaperSpec(1);
  base.n1 = 40;
  base.n2 = 30;
  base.n_duplicates = 15;
  const core::Dataset dataset = datagen::Generate(base);
  datagen::ScaleSpec spec;
  spec.base = base;
  spec.replicas = 3;
  EXPECT_EQ(spec.CorpusSize(), 120u);
  for (std::size_t i = 0; i < base.n1; ++i) {
    const auto rendered = datagen::RenderScaledEntity(spec, 0, i);
    ASSERT_EQ(rendered.attributes.size(),
              dataset.e1()[i].attributes.size());
    for (std::size_t a = 0; a < rendered.attributes.size(); ++a) {
      EXPECT_EQ(rendered.attributes[a].name,
                dataset.e1()[i].attributes[a].name);
      EXPECT_EQ(rendered.attributes[a].value,
                dataset.e1()[i].attributes[a].value);
    }
  }
  // Later replicas render previously unseen objects, not copies.
  const auto r0 = datagen::RenderScaledEntity(spec, 0, 0);
  const auto r1 = datagen::RenderScaledEntity(spec, 1, 0);
  EXPECT_NE(r0.AllValues(), r1.AllValues());
  EXPECT_EQ(datagen::ScaledExternalId(spec, 3, 17), "D1:e1:17#r3");
  const auto target = datagen::ScaleSpec::ForTargetCorpus(base, 100);
  EXPECT_EQ(target.replicas, 3u);
  EXPECT_GE(target.CorpusSize(), 100u);
}

// The scale runner: pairs are identical across shard counts, thread counts
// and schedules; cells add up to the corpus.
TEST(ScaleRunner, PairsInvariantAcrossShardsThreadsAndSchedules) {
  datagen::DatasetSpec base = datagen::PaperSpec(2);
  base.n1 = 500;
  base.n2 = 100;
  base.n_duplicates = 50;
  shard::ScaleRunConfig config;
  config.spec.base = base;
  config.spec.replicas = 6;  // 3000-entity corpus (projects past the 1 MB budget)
  config.threshold = 0.5;
  config.num_queries = 120;
  config.collect_pairs = true;
  config.options.mem_budget_mb = 0;

  config.options.num_shards = 1;
  const auto reference = shard::RunScaleEpsilon(config);
  EXPECT_EQ(reference.corpus_size, 3000u);
  EXPECT_EQ(reference.num_shards, 1u);
  EXPECT_EQ(reference.schedule, shard::ShardSchedule::kResident);

  for (const std::uint32_t shards : {4u, 8u}) {
    for (const std::size_t threads : kThreadCounts) {
      ScopedThreadLimit limit(threads);
      config.options.num_shards = shards;
      const auto got = shard::RunScaleEpsilon(config);
      ASSERT_EQ(reference.pairs.pairs(), got.pairs.pairs())
          << shards << " shards, " << threads << " threads";
      EXPECT_EQ(reference.total_candidates, got.total_candidates);
      std::uint64_t entities = 0;
      for (const auto& cell : got.cells) entities += cell.entities;
      EXPECT_EQ(entities, got.corpus_size);
    }
  }

  // Budget 1 MB forces rotation on this corpus; same pairs.
  config.options.num_shards = 4;
  config.options.mem_budget_mb = 1;
  const auto rotated = shard::RunScaleEpsilon(config);
  EXPECT_EQ(rotated.schedule, shard::ShardSchedule::kRotate);
  EXPECT_EQ(reference.pairs.pairs(), rotated.pairs.pairs());
}

}  // namespace
}  // namespace erb
