// Differential tests for the online resolve path (src/serve): the resolver
// must produce byte-identical candidates to a from-scratch batch rebuild +
// ε-join (and to the brute-force pairwise reference) at every epoch shape —
// all-delta, freshly sealed, half-sealed, multiply-merged — at 1 and 8
// threads, under both filter modes. Run alone with `ctest -L serve`.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/entity.hpp"
#include "oracle/corpus.hpp"
#include "oracle/serve.hpp"
#include "serve/incremental.hpp"
#include "serve/resolver.hpp"

namespace erb {
namespace {

using core::EntityId;
using core::EntityProfile;

// Epoch shapes the differential sweeps: where SealEpoch() is called within
// the insert stream of n entities.
enum class EpochShape {
  kDeltaOnly,   // never sealed: the delta scan answers everything
  kSealedAll,   // sealed after the last insert: pure index probes
  kHalfSealed,  // sealed midway: index + delta tail both contribute
  kQuarters,    // sealed every quarter: multiple compactions
};

const char* ShapeName(EpochShape shape) {
  switch (shape) {
    case EpochShape::kDeltaOnly: return "delta-only";
    case EpochShape::kSealedAll: return "sealed-all";
    case EpochShape::kHalfSealed: return "half-sealed";
    case EpochShape::kQuarters: return "quarters";
  }
  return "?";
}

serve::Resolver BuildResolver(const std::vector<EntityProfile>& corpus,
                              const serve::ServeConfig& config,
                              EpochShape shape) {
  serve::Resolver resolver(config);
  const std::size_t n = corpus.size();
  for (std::size_t i = 0; i < n; ++i) {
    resolver.Insert(std::to_string(i), corpus[i]);
    const std::size_t done = i + 1;
    if (shape == EpochShape::kHalfSealed && done == n / 2) resolver.SealEpoch();
    if (shape == EpochShape::kQuarters && n >= 4 && done % (n / 4) == 0) {
      resolver.SealEpoch();
    }
  }
  if (shape == EpochShape::kSealedAll) resolver.SealEpoch();
  return resolver;
}

TEST(ServeDifferential, MatchesBatchRebuildAndBruteForce) {
  const auto corpus_cases = oracle::BuildCorpus(/*seed=*/777);
  for (const auto filter :
       {sparsenn::FilterMode::kLength, sparsenn::FilterMode::kPrefix}) {
    serve::ServeConfig config;
    config.sparse.filter = filter;
    config.threshold = 0.35;
    for (const auto& c : corpus_cases) {
      const auto& corpus = c.dataset.e1();
      const auto& queries = c.dataset.e2();
      const auto batch = oracle::ServeBatchReference(corpus, queries, config);
      const auto brute = oracle::ServeBruteForce(corpus, queries, config);
      ASSERT_EQ(batch.pairs(), brute.pairs())
          << c.name << ": batch join disagrees with brute force";
      for (const auto shape :
           {EpochShape::kDeltaOnly, EpochShape::kSealedAll,
            EpochShape::kHalfSealed, EpochShape::kQuarters}) {
        const auto resolver = BuildResolver(corpus, config, shape);
        for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
          ScopedThreadLimit limit(threads);
          const auto resolved =
              oracle::ServeResultsToCandidates(resolver.ResolveBatch(queries));
          ASSERT_EQ(resolved.pairs(), batch.pairs())
              << c.name << " shape=" << ShapeName(shape)
              << " threads=" << threads << " filter="
              << (filter == sparsenn::FilterMode::kPrefix ? "prefix" : "length");
        }
      }
    }
  }
}

TEST(ServeDifferential, MatchesUnderAlternativeTokenization) {
  // One pass with the heavier config axes (cleaning, n-grams, Jaccard) to
  // catch a resolver that only tokenizes correctly under the defaults.
  serve::ServeConfig config;
  config.sparse.clean = true;
  config.sparse.model = sparsenn::TokenModel::kC3G;
  config.sparse.measure = sparsenn::SimilarityMeasure::kJaccard;
  config.threshold = 0.25;
  const auto corpus_cases = oracle::BuildCorpus(/*seed=*/12);
  for (const auto& c : corpus_cases) {
    const auto& corpus = c.dataset.e1();
    const auto& queries = c.dataset.e2();
    const auto batch = oracle::ServeBatchReference(corpus, queries, config);
    auto resolver = BuildResolver(corpus, config, EpochShape::kHalfSealed);
    const auto resolved =
        oracle::ServeResultsToCandidates(resolver.ResolveBatch(queries));
    ASSERT_EQ(resolved.pairs(), batch.pairs()) << c.name;
  }
}

TEST(ServeResolver, SingleResolveEqualsBatchSlot) {
  const auto corpus_cases = oracle::BuildCorpus(/*seed=*/5);
  serve::ServeConfig config;
  config.threshold = 0.3;
  const auto& c = corpus_cases.back();
  auto resolver = BuildResolver(c.dataset.e1(), config, EpochShape::kHalfSealed);
  const auto batch = resolver.ResolveBatch(c.dataset.e2());
  for (std::size_t q = 0; q < c.dataset.e2().size(); ++q) {
    const auto single = resolver.Resolve(c.dataset.e2()[q]);
    ASSERT_EQ(single.matches.size(), batch[q].matches.size());
    for (std::size_t m = 0; m < single.matches.size(); ++m) {
      EXPECT_EQ(single.matches[m].id, batch[q].matches[m].id);
      EXPECT_EQ(single.matches[m].similarity, batch[q].matches[m].similarity);
    }
  }
}

TEST(ServeResolver, RejectsDuplicateExternalIds) {
  serve::Resolver resolver;
  EntityProfile a;
  a.attributes.push_back({"name", "alpha beta"});
  EntityProfile b;
  b.attributes.push_back({"name", "gamma delta"});
  const auto first = resolver.Insert("dup", a);
  EXPECT_TRUE(first.inserted);
  const auto second = resolver.Insert("dup", b);
  EXPECT_FALSE(second.inserted);
  EXPECT_EQ(second.id, first.id);
  EXPECT_EQ(resolver.NumEntities(), 1u);
  // The original profile is kept: "alpha beta" still resolves, b does not.
  EXPECT_EQ(resolver.Resolve(a).matches.size(), 1u);
  EXPECT_TRUE(resolver.Resolve(b).matches.empty());
}

TEST(ServeResolver, EmptyCorpusAndEmptyQueryAreSafe) {
  serve::Resolver resolver;
  EntityProfile q;
  q.attributes.push_back({"name", "anything at all"});
  EXPECT_TRUE(resolver.Resolve(q).matches.empty());
  EXPECT_EQ(resolver.SealEpoch(), 0u);  // nothing to merge: epoch unchanged
  EXPECT_TRUE(resolver.Resolve(q).matches.empty());

  resolver.Insert("e0", q);
  EXPECT_TRUE(resolver.Resolve(EntityProfile{}).matches.empty());
}

TEST(ServeResolver, SealEpochAdvancesOnlyOnNewInserts) {
  serve::Resolver resolver;
  EntityProfile p;
  p.attributes.push_back({"name", "x y z"});
  EXPECT_EQ(resolver.epoch(), 0u);
  resolver.Insert("a", p);
  EXPECT_EQ(resolver.SealEpoch(), 1u);
  EXPECT_EQ(resolver.SealEpoch(), 1u);  // no-op without new inserts
  resolver.Insert("b", p);
  EXPECT_EQ(resolver.SealEpoch(), 2u);
  EXPECT_EQ(resolver.DeltaCount(), 0u);
}

TEST(ServeResolver, RejectsNonPositiveThreshold) {
  serve::ServeConfig config;
  config.threshold = 0.0;
  EXPECT_THROW(serve::Resolver{config}, std::invalid_argument);
}

TEST(IncrementalBlockIndex, ProbeIsSealInvariant) {
  serve::IncrementalBlockIndex delta_index;
  serve::IncrementalBlockIndex sealed_index;
  const std::vector<std::string> texts = {
      "joe biden", "joe cocker", "margaret thatcher", "joe biden jr",
      "thatcher margaret"};
  for (const auto& text : texts) {
    delta_index.Insert(text);
    sealed_index.Insert(text);
  }
  sealed_index.Seal();
  EXPECT_EQ(sealed_index.epoch(), 1u);
  std::vector<EntityId> from_delta, from_sealed;
  for (const auto& probe : {"joe smith", "margaret", "biden", "nobody"}) {
    delta_index.Probe(probe, &from_delta);
    sealed_index.Probe(probe, &from_sealed);
    EXPECT_EQ(from_delta, from_sealed) << probe;
    EXPECT_TRUE(std::is_sorted(from_delta.begin(), from_delta.end()));
  }
  // Standard blocking keys are whitespace tokens: "joe" hits 0, 1 and 3.
  delta_index.Probe("joe", &from_delta);
  EXPECT_EQ(from_delta, (std::vector<EntityId>{0, 1, 3}));
}

TEST(ServeResolver, BlockCandidatesFollowBlockingKeys) {
  serve::ServeConfig config;
  config.enable_blocking = true;
  serve::Resolver resolver(config);
  EntityProfile a;
  a.attributes.push_back({"name", "alpha common"});
  EntityProfile b;
  b.attributes.push_back({"name", "beta common"});
  resolver.Insert("a", a);
  resolver.SealEpoch();
  resolver.Insert("b", b);  // stays in the block index's delta
  EntityProfile q;
  q.attributes.push_back({"name", "common"});
  const auto result = resolver.Resolve(q);
  EXPECT_EQ(result.block_candidates, (std::vector<EntityId>{0, 1}));
}

}  // namespace
}  // namespace erb
