// Brute-force equivalence properties: the ScanCount-driven joins must return
// exactly the pairs a quadratic scan over the token sets returns. Run on a
// small dataset so the quadratic reference stays fast.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/metrics.hpp"
#include "datagen/registry.hpp"
#include "sparsenn/joins.hpp"
#include "sparsenn/tokenset.hpp"

namespace erb::sparsenn {
namespace {

const core::Dataset& Tiny() {
  static const core::Dataset dataset =
      datagen::Generate(datagen::PaperSpec(1).Scaled(0.15));
  return dataset;
}

double BruteSimilarity(const TokenSet& a, const TokenSet& b,
                       SimilarityMeasure measure) {
  std::size_t overlap = 0;
  for (auto token : a) {
    overlap += std::binary_search(b.begin(), b.end(), token);
  }
  return SetSimilarity(measure, overlap, a.size(), b.size());
}

class JoinEquivalence
    : public ::testing::TestWithParam<std::pair<TokenModel, SimilarityMeasure>> {};

TEST_P(JoinEquivalence, EpsilonJoinMatchesQuadraticScan) {
  const auto& dataset = Tiny();
  SparseConfig config;
  config.model = GetParam().first;
  config.measure = GetParam().second;
  const double threshold = 0.3;

  const auto run = EpsilonJoin(dataset, core::SchemaMode::kAgnostic, config,
                               threshold);

  const auto sets1 = BuildSideTokenSets(dataset, 0, core::SchemaMode::kAgnostic,
                                        config.model, config.clean);
  const auto sets2 = BuildSideTokenSets(dataset, 1, core::SchemaMode::kAgnostic,
                                        config.model, config.clean);
  std::set<core::PairKey> expected;
  for (core::EntityId i = 0; i < sets1.size(); ++i) {
    for (core::EntityId j = 0; j < sets2.size(); ++j) {
      if (BruteSimilarity(sets1[i], sets2[j], config.measure) >= threshold) {
        expected.insert(core::MakePair(i, j));
      }
    }
  }

  ASSERT_EQ(run.candidates.size(), expected.size());
  for (core::PairKey key : run.candidates) {
    EXPECT_TRUE(expected.contains(key));
  }
}

TEST_P(JoinEquivalence, KnnJoinMatchesQuadraticScan) {
  const auto& dataset = Tiny();
  SparseConfig config;
  config.model = GetParam().first;
  config.measure = GetParam().second;
  const int k = 2;

  const auto run =
      KnnJoin(dataset, core::SchemaMode::kAgnostic, config, k, false);

  const auto sets1 = BuildSideTokenSets(dataset, 0, core::SchemaMode::kAgnostic,
                                        config.model, config.clean);
  const auto sets2 = BuildSideTokenSets(dataset, 1, core::SchemaMode::kAgnostic,
                                        config.model, config.clean);
  // Reference: per query, retain indexed entities holding the k highest
  // distinct non-zero similarities.
  std::set<core::PairKey> expected;
  for (core::EntityId j = 0; j < sets2.size(); ++j) {
    std::vector<std::pair<double, core::EntityId>> scored;
    for (core::EntityId i = 0; i < sets1.size(); ++i) {
      const double sim = BruteSimilarity(sets1[i], sets2[j], config.measure);
      if (sim > 0.0) scored.emplace_back(sim, i);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    int distinct = 0;
    double previous = -1.0;
    for (const auto& [sim, i] : scored) {
      if (sim != previous) {
        if (++distinct > k) break;
        previous = sim;
      }
      expected.insert(core::MakePair(i, j));
    }
  }

  ASSERT_EQ(run.candidates.size(), expected.size());
  for (core::PairKey key : run.candidates) {
    EXPECT_TRUE(expected.contains(key));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndMeasures, JoinEquivalence,
    ::testing::Values(
        std::pair{TokenModel::kT1G, SimilarityMeasure::kCosine},
        std::pair{TokenModel::kT1GM, SimilarityMeasure::kJaccard},
        std::pair{TokenModel::kC3G, SimilarityMeasure::kDice},
        std::pair{TokenModel::kC3GM, SimilarityMeasure::kCosine},
        std::pair{TokenModel::kC5G, SimilarityMeasure::kJaccard},
        std::pair{TokenModel::kC5GM, SimilarityMeasure::kDice}));

}  // namespace
}  // namespace erb::sparsenn
