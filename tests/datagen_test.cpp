// Tests for src/datagen: deterministic generation, Clean-Clean invariants,
// noise operators, coverage modelling and the CSV loader.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "common/strings.hpp"
#include "core/schema.hpp"
#include "datagen/csv_loader.hpp"
#include "datagen/noise.hpp"
#include "datagen/registry.hpp"
#include "datagen/words.hpp"

namespace erb::datagen {
namespace {

DatasetSpec TinySpec() {
  DatasetSpec spec = PaperSpec(2).Scaled(0.1);
  return spec;
}

TEST(WordsTest, SynthWordDeterministic) {
  // Ranks below 16 are English filler words shared by every pool; tail ranks
  // are pool-specific synthetic words.
  EXPECT_EQ(SynthWord(1, 5), SynthWord(2, 5));
  EXPECT_EQ(SynthWord(1, 100), SynthWord(1, 100));
  EXPECT_NE(SynthWord(1, 100), SynthWord(1, 102));
  EXPECT_NE(SynthWord(1, 100), SynthWord(2, 100));
}

TEST(WordsTest, OddIndexIsSuffixedVariantOfEvenStem) {
  const std::string stem = SynthWord(3, 100);
  const std::string inflected = SynthWord(3, 101);
  EXPECT_EQ(inflected.rfind(stem, 0), 0u) << stem << " / " << inflected;
  EXPECT_GT(inflected.size(), stem.size());
}

TEST(WordsTest, SynthWordIsLowercaseAlpha) {
  for (std::uint64_t i = 0; i < 200; ++i) {
    for (char c : SynthWord(42, i)) {
      EXPECT_TRUE(c >= 'a' && c <= 'z');
    }
  }
}

TEST(WordsTest, SynthCodeLooksLikeSku) {
  const std::string code = SynthCode(1, 7);
  EXPECT_EQ(code.size(), 9u);
  EXPECT_EQ(code[4], '-');
}

TEST(WordsTest, PoolHeadIsFrequent) {
  WordPool pool(9, /*tail=*/1000, /*head=*/4, /*mass=*/0.5, 0.0);
  Rng rng(3);
  std::size_t head_draws = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const std::string w = pool.Draw(rng);
    for (std::uint64_t h = 0; h < 4; ++h) {
      if (w == pool.At(h)) {
        ++head_draws;
        break;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(head_draws) / kN, 0.5, 0.05);
}

TEST(NoiseTest, TypoChangesToken) {
  Rng rng(1);
  int changed = 0;
  for (int i = 0; i < 100; ++i) changed += ApplyTypo("example", rng) != "example";
  EXPECT_GT(changed, 80);  // substitution to the same char is rare
}

TEST(NoiseTest, TypoNeverEmptiesToken) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(ApplyTypo("ab", rng).empty());
}

TEST(NoiseTest, DropReducesTokens) {
  Rng rng(3);
  NoiseProfile noise;
  noise.token_drop = 0.5;
  std::vector<std::string> tokens(20, "word");
  ApplyTokenNoise(&tokens, noise, rng);
  EXPECT_LT(tokens.size(), 20u);
  EXPECT_GE(tokens.size(), 1u);
}

TEST(NoiseTest, NeverDropsEverything) {
  Rng rng(4);
  NoiseProfile noise;
  noise.token_drop = 1.0;
  std::vector<std::string> tokens = {"only"};
  ApplyTokenNoise(&tokens, noise, rng);
  EXPECT_EQ(tokens.size(), 1u);
}

TEST(NoiseTest, AbbreviationShortensToken) {
  Rng rng(5);
  NoiseProfile noise;
  noise.abbreviate = 1.0;
  std::vector<std::string> tokens = {"example"};
  ApplyTokenNoise(&tokens, noise, rng);
  EXPECT_EQ(tokens[0], "e");
}

TEST(GeneratorTest, DeterministicForSpec) {
  const auto a = Generate(TinySpec());
  const auto b = Generate(TinySpec());
  ASSERT_EQ(a.e1().size(), b.e1().size());
  for (std::size_t i = 0; i < a.e1().size(); ++i) {
    EXPECT_EQ(a.e1()[i].AllValues(), b.e1()[i].AllValues());
  }
  EXPECT_EQ(a.duplicates(), b.duplicates());
}

TEST(GeneratorTest, SeedChangesContent) {
  DatasetSpec spec = TinySpec();
  const auto a = Generate(spec);
  spec.seed ^= 0x9999;
  const auto b = Generate(spec);
  EXPECT_NE(a.e1()[0].AllValues(), b.e1()[0].AllValues());
}

TEST(GeneratorTest, RespectsSpecSizes) {
  const DatasetSpec spec = TinySpec();
  const auto d = Generate(spec);
  EXPECT_EQ(d.e1().size(), spec.n1);
  EXPECT_EQ(d.e2().size(), spec.n2);
  EXPECT_EQ(d.NumDuplicates(), spec.n_duplicates);
}

TEST(GeneratorTest, CleanCleanGroundTruthIsBijective) {
  const auto d = Generate(PaperSpec(3).Scaled(0.2));
  std::set<core::EntityId> seen1, seen2;
  for (const auto& [id1, id2] : d.duplicates()) {
    EXPECT_TRUE(seen1.insert(id1).second) << "E1 entity matched twice";
    EXPECT_TRUE(seen2.insert(id2).second) << "E2 entity matched twice";
    EXPECT_LT(id1, d.e1().size());
    EXPECT_LT(id2, d.e2().size());
  }
}

TEST(GeneratorTest, DuplicatesShareMoreContentThanRandomPairs) {
  const auto d = Generate(TinySpec());
  // Compare the average token overlap of duplicates against shifted pairs.
  auto overlap = [&d](core::EntityId i, core::EntityId j) {
    const auto t1 = SplitWhitespace(d.EntityText(0, i, core::SchemaMode::kAgnostic));
    const auto t2 = SplitWhitespace(d.EntityText(1, j, core::SchemaMode::kAgnostic));
    const std::set<std::string> s1(t1.begin(), t1.end());
    std::size_t shared = 0;
    for (const auto& t : t2) shared += s1.count(t);
    return static_cast<double>(shared);
  };
  double dup_overlap = 0.0, random_overlap = 0.0;
  for (const auto& [id1, id2] : d.duplicates()) {
    dup_overlap += overlap(id1, id2);
    random_overlap += overlap(id1, (id2 + 7) % d.e2().size());
  }
  EXPECT_GT(dup_overlap, 2.0 * random_overlap);
}

TEST(GeneratorTest, MisplacementLowersBestAttributeCoverage) {
  const auto d5 = Generate(PaperSpec(5).Scaled(0.2));
  for (const auto& s : core::ComputeAttributeStats(d5)) {
    if (s.name != d5.best_attribute()) continue;
    EXPECT_LT(s.coverage, 0.85);
    EXPECT_LT(s.groundtruth_coverage, 0.7);
    EXPECT_GT(s.coverage, 0.3);
  }
}

TEST(GeneratorTest, ProtectedCoverageKeepsDuplicatesCovered) {
  const auto d1 = Generate(PaperSpec(1));
  for (const auto& s : core::ComputeAttributeStats(d1)) {
    if (s.name != d1.best_attribute()) continue;
    EXPECT_LT(s.coverage, 0.85);  // overall coverage drops...
    EXPECT_DOUBLE_EQ(s.groundtruth_coverage, 1.0);  // ...but duplicates keep it
  }
}

TEST(SpecTest, ScalingKeepsValidInstance) {
  const DatasetSpec spec = PaperSpec(9).Scaled(0.01);
  EXPECT_GE(spec.n1, 8u);
  EXPECT_LE(spec.n_duplicates, std::min(spec.n1, spec.n2));
  EXPECT_GT(spec.n_duplicates, 0u);
}

TEST(SpecTest, ScaleOneIsIdentity) {
  const DatasetSpec spec = PaperSpec(4);
  const DatasetSpec scaled = spec.Scaled(1.0);
  EXPECT_EQ(scaled.n1, spec.n1);
  EXPECT_EQ(scaled.n2, spec.n2);
  EXPECT_EQ(scaled.n_duplicates, spec.n_duplicates);
}

TEST(RegistryTest, AllSpecsAreValid) {
  for (const auto& spec : AllPaperSpecs()) {
    EXPECT_FALSE(spec.id.empty());
    EXPECT_GT(spec.n1, 0u);
    EXPECT_GT(spec.n2, 0u);
    EXPECT_LE(spec.n_duplicates, std::min(spec.n1, spec.n2));
    EXPECT_FALSE(spec.best_attribute.empty());
    // The best attribute must exist in the schema.
    bool found = false;
    for (const auto& attr : spec.attributes) found |= attr.name == spec.best_attribute;
    EXPECT_TRUE(found) << spec.id;
  }
}

TEST(RegistryTest, PaperSizesMatchTableVI) {
  const DatasetSpec d2 = PaperSpec(2);
  EXPECT_EQ(d2.n1, 1076u);
  EXPECT_EQ(d2.n2, 1076u);
  EXPECT_EQ(d2.n_duplicates, 1076u);
  const DatasetSpec d9 = PaperSpec(9);
  EXPECT_EQ(d9.n1, 2516u);
  EXPECT_EQ(d9.n2, 61353u);
  EXPECT_EQ(d9.n_duplicates, 2308u);
}

TEST(RegistryTest, SchemaBasedAvailability) {
  EXPECT_TRUE(HasSchemaBasedSettings(1));
  EXPECT_TRUE(HasSchemaBasedSettings(4));
  EXPECT_FALSE(HasSchemaBasedSettings(5));
  EXPECT_FALSE(HasSchemaBasedSettings(10));
}

TEST(RegistryTest, InvalidIndexThrows) {
  EXPECT_THROW(PaperSpec(0), std::out_of_range);
  EXPECT_THROW(PaperSpec(11), std::out_of_range);
}

class CsvLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    Write("e1.csv", "id,name,desc\n1,alpha,\"red, big\"\n2,beta,small\n");
    Write("e2.csv", "id,name,desc\nx,alpha,\"says \"\"hi\"\"\"\ny,gamma,tiny\n");
    Write("gt.csv", "1,x\n");
  }

  void Write(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  // Prefixed: TempDir() is shared across test binaries, and bare "e1.csv"
  // races with csv_roundtrip_test.cpp under a parallel ctest run.
  std::string Path(const std::string& name) const {
    return dir_ + "/loader_" + name;
  }

  std::string dir_;
};

TEST_F(CsvLoaderTest, LoadsProfilesAndGroundTruth) {
  const auto d = LoadCsvDataset("csv", Path("e1.csv"), Path("e2.csv"),
                                Path("gt.csv"), "name");
  EXPECT_EQ(d.e1().size(), 2u);
  EXPECT_EQ(d.e2().size(), 2u);
  EXPECT_EQ(d.NumDuplicates(), 1u);
  EXPECT_EQ(d.e1()[0].ValueOf("desc"), "red, big");   // quoted comma
  EXPECT_EQ(d.e2()[0].ValueOf("desc"), "says \"hi\"");  // doubled quotes
  EXPECT_TRUE(d.IsDuplicate(core::MakePair(0, 0)));
}

TEST_F(CsvLoaderTest, AutoSelectsBestAttribute) {
  const auto d =
      LoadCsvDataset("csv", Path("e1.csv"), Path("e2.csv"), Path("gt.csv"));
  EXPECT_FALSE(d.best_attribute().empty());
}

TEST_F(CsvLoaderTest, MissingFileThrows) {
  EXPECT_THROW(
      LoadCsvDataset("csv", Path("nope.csv"), Path("e2.csv"), Path("gt.csv")),
      std::runtime_error);
}

TEST_F(CsvLoaderTest, DuplicateIdThrows) {
  Write("bad.csv", "id,name\n1,a\n1,b\n");
  EXPECT_THROW(
      LoadCsvDataset("csv", Path("bad.csv"), Path("e2.csv"), Path("gt.csv")),
      std::runtime_error);
}

TEST_F(CsvLoaderTest, UnknownGroundTruthIdThrows) {
  Write("badgt.csv", "1,x\n9,y\n");
  EXPECT_THROW(LoadCsvDataset("csv", Path("e1.csv"), Path("e2.csv"),
                              Path("badgt.csv")),
               std::runtime_error);
}

}  // namespace
}  // namespace erb::datagen
