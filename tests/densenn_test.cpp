// Tests for src/densenn: embeddings, the three LSH families, the flat and
// partitioned kNN indexes and the autoencoder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "core/metrics.hpp"
#include "datagen/registry.hpp"
#include "densenn/autoencoder.hpp"
#include "densenn/embedding.hpp"
#include "densenn/flat_index.hpp"
#include "densenn/lsh.hpp"
#include "densenn/methods.hpp"
#include "densenn/minhash.hpp"
#include "densenn/partitioned_index.hpp"

namespace erb::densenn {
namespace {

TEST(EmbeddingTest, DeterministicAndNormalized) {
  const Vector a = EmbedText("sony bravia television");
  const Vector b = EmbedText("sony bravia television");
  EXPECT_EQ(a, b);
  double norm = 0.0;
  for (float x : a) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
  EXPECT_EQ(a.size(), static_cast<std::size_t>(kEmbeddingDim));
}

TEST(EmbeddingTest, EmptyTextIsZeroVector) {
  const Vector v = EmbedText("");
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(EmbeddingTest, SyntacticallyCloseStringsAreCloser) {
  const Vector base = EmbedText("panasonic lumix camera");
  const Vector typo = EmbedText("panasonik lumix camera");
  const Vector other = EmbedText("leather office chair");
  EXPECT_GT(Dot(base, typo), Dot(base, other) + 0.2);
}

TEST(EmbeddingTest, SharedWordsRaiseSimilarity) {
  const Vector a = EmbedText("alpha beta gamma");
  const Vector b = EmbedText("alpha beta delta");
  const Vector c = EmbedText("epsilon zeta eta");
  EXPECT_GT(Dot(a, b), Dot(a, c));
}

TEST(EmbeddingTest, CustomDimension) {
  EXPECT_EQ(EmbedText("word", 64).size(), 64u);
}

TEST(VectorMathTest, DotAndL2Consistency) {
  // For unit vectors, ||a-b||^2 = 2 - 2 a.b.
  const Vector a = EmbedText("first text");
  const Vector b = EmbedText("second text");
  EXPECT_NEAR(SquaredL2(a, b), 2.0f - 2.0f * Dot(a, b), 1e-4);
}

TEST(MinHashTest, IdenticalTextsAlwaysCollide) {
  using core::EntityProfile;
  auto p = [](const char* v) {
    EntityProfile e;
    e.attributes.push_back({"t", v});
    return e;
  };
  std::vector<EntityProfile> e1 = {p("identical text content here")};
  std::vector<EntityProfile> e2 = {p("identical text content here"),
                                   p("completely different words appear")};
  core::Dataset d("t", std::move(e1), std::move(e2), {{0, 0}}, "t");
  MinHashConfig config;
  config.bands = 8;
  config.rows = 4;
  const auto run = MinHashLsh(d, core::SchemaMode::kAgnostic, config);
  EXPECT_TRUE(run.candidates.Contains(0, 0));
}

TEST(MinHashTest, RecallGrowsWithMoreBands) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.4));
  MinHashConfig few;
  few.bands = 4;
  few.rows = 32;
  MinHashConfig many;
  many.bands = 64;
  many.rows = 2;
  const auto strict = MinHashLsh(dataset, core::SchemaMode::kAgnostic, few);
  const auto loose = MinHashLsh(dataset, core::SchemaMode::kAgnostic, many);
  const auto strict_eff = core::Evaluate(strict.candidates, dataset);
  const auto loose_eff = core::Evaluate(loose.candidates, dataset);
  EXPECT_GE(loose_eff.pc, strict_eff.pc);
  EXPECT_GE(loose.candidates.size(), strict.candidates.size());
}

TEST(MinHashTest, SeedChangesCandidatesSlightly) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.3));
  MinHashConfig a;
  a.seed = 1;
  MinHashConfig b;
  b.seed = 2;
  const auto ra = MinHashLsh(dataset, core::SchemaMode::kAgnostic, a);
  const auto rb = MinHashLsh(dataset, core::SchemaMode::kAgnostic, b);
  // Stochastic: results may differ, but both must be non-trivial.
  EXPECT_GT(ra.candidates.size(), 0u);
  EXPECT_GT(rb.candidates.size(), 0u);
}

class AngularLshTest : public ::testing::TestWithParam<bool> {};

TEST_P(AngularLshTest, FindsExactDuplicatePairs) {
  const bool cross_polytope = GetParam();
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.3));
  AngularLshConfig config;
  config.tables = 32;
  config.hashes = cross_polytope ? 1 : 6;
  config.probes = 64;
  const auto run = cross_polytope
                       ? CrossPolytopeLsh(dataset, core::SchemaMode::kAgnostic, config)
                       : HyperplaneLsh(dataset, core::SchemaMode::kAgnostic, config);
  const auto eff = core::Evaluate(run.candidates, dataset);
  EXPECT_GT(eff.pc, 0.5);
  EXPECT_LT(run.candidates.size(), dataset.CartesianSize());
}

TEST_P(AngularLshTest, MoreProbesNeverLowerRecall) {
  const bool cross_polytope = GetParam();
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.2));
  AngularLshConfig narrow;
  narrow.tables = 8;
  narrow.hashes = cross_polytope ? 2 : 10;
  narrow.probes = 8;
  AngularLshConfig wide = narrow;
  wide.probes = 128;
  auto run = [&](const AngularLshConfig& c) {
    return cross_polytope ? CrossPolytopeLsh(dataset, core::SchemaMode::kAgnostic, c)
                          : HyperplaneLsh(dataset, core::SchemaMode::kAgnostic, c);
  };
  const auto narrow_eff = core::Evaluate(run(narrow).candidates, dataset);
  const auto wide_eff = core::Evaluate(run(wide).candidates, dataset);
  EXPECT_GE(wide_eff.pc, narrow_eff.pc);
}

INSTANTIATE_TEST_SUITE_P(Families, AngularLshTest, ::testing::Bool());

std::vector<Vector> RandomVectors(std::size_t n, int dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> out;
  for (std::size_t i = 0; i < n; ++i) {
    Vector v(static_cast<std::size_t>(dim));
    for (float& x : v) x = static_cast<float>(rng.NextGaussian());
    Normalize(&v);
    out.push_back(std::move(v));
  }
  return out;
}

TEST(FlatIndexTest, MatchesBruteForceNearestNeighbours) {
  const auto vectors = RandomVectors(200, 32, 5);
  const auto queries = RandomVectors(20, 32, 6);
  FlatIndex index(vectors, DenseMetric::kSquaredL2);
  for (const auto& q : queries) {
    const auto ids = index.Search(q, 5);
    ASSERT_EQ(ids.size(), 5u);
    // Brute-force reference.
    std::vector<std::pair<float, std::uint32_t>> scored;
    for (std::uint32_t i = 0; i < vectors.size(); ++i) {
      scored.emplace_back(SquaredL2(q, vectors[i]), i);
    }
    std::sort(scored.begin(), scored.end());
    for (int r = 0; r < 5; ++r) EXPECT_EQ(ids[r], scored[r].second);
  }
}

TEST(FlatIndexTest, DotProductMetric) {
  const auto vectors = RandomVectors(50, 16, 7);
  FlatIndex index(vectors, DenseMetric::kDotProduct);
  const auto q = RandomVectors(1, 16, 8)[0];
  const auto ids = index.Search(q, 1);
  float best = -1e30f;
  std::uint32_t best_id = 0;
  for (std::uint32_t i = 0; i < vectors.size(); ++i) {
    if (Dot(q, vectors[i]) > best) {
      best = Dot(q, vectors[i]);
      best_id = i;
    }
  }
  EXPECT_EQ(ids[0], best_id);
}

TEST(FlatIndexTest, KLargerThanIndexReturnsEverything) {
  const auto vectors = RandomVectors(5, 8, 9);
  FlatIndex index(vectors, DenseMetric::kSquaredL2);
  EXPECT_EQ(index.Search(vectors[0], 50).size(), 5u);
}

TEST(PartitionedIndexTest, BruteForceScoringHasHighRecallVsExact) {
  const auto vectors = RandomVectors(400, 32, 10);
  const auto queries = RandomVectors(25, 32, 11);
  FlatIndex exact(vectors, DenseMetric::kSquaredL2);
  PartitionedConfig config;
  config.asymmetric_hashing = false;
  PartitionedIndex approx(vectors, config);
  EXPECT_GT(approx.NumPartitions(), 1u);

  std::size_t hits = 0, total = 0;
  for (const auto& q : queries) {
    const auto expected = exact.Search(q, 10);
    const auto got = approx.Search(q, 10);
    for (auto id : expected) {
      ++total;
      hits += std::count(got.begin(), got.end(), id);
    }
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.6);
}

TEST(PartitionedIndexTest, AsymmetricHashingApproximatesWell) {
  const auto vectors = RandomVectors(300, 32, 12);
  FlatIndex exact(vectors, DenseMetric::kSquaredL2);
  PartitionedConfig config;
  config.asymmetric_hashing = true;
  PartitionedIndex approx(vectors, config);
  std::size_t hits = 0, total = 0;
  for (int q = 0; q < 20; ++q) {
    const auto expected = exact.Search(vectors[q], 5);
    const auto got = approx.Search(vectors[q], 5);
    for (auto id : expected) {
      ++total;
      hits += std::count(got.begin(), got.end(), id);
    }
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.5);
  // Identity queries must find themselves despite quantization (re-scoring).
  EXPECT_EQ(approx.Search(vectors[0], 1)[0], 0u);
}

TEST(AutoencoderTest, TrainingReducesReconstructionError) {
  const auto samples = RandomVectors(300, 64, 13);
  AutoencoderConfig config;
  config.hidden_dim = 32;
  config.epochs = 0;
  Autoencoder untrained(samples, config);
  config.epochs = 10;
  Autoencoder trained(samples, config);
  EXPECT_LT(trained.ReconstructionError(samples),
            0.7 * untrained.ReconstructionError(samples));
}

TEST(AutoencoderTest, EncodeIsNormalizedAndDeterministicPerSeed) {
  const auto samples = RandomVectors(100, 32, 14);
  AutoencoderConfig config;
  config.hidden_dim = 16;
  config.epochs = 3;
  Autoencoder a(samples, config), b(samples, config);
  const Vector ea = a.Encode(samples[0]);
  const Vector eb = b.Encode(samples[0]);
  EXPECT_EQ(ea, eb);
  double norm = 0.0;
  for (float x : ea) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(norm, 1.0, 1e-4);
  EXPECT_EQ(ea.size(), 16u);
}

TEST(AutoencoderTest, PreservesNeighbourhoodStructure) {
  // Nearby inputs should stay nearby in the encoded space.
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.2));
  auto inputs = EmbedSide(dataset, 0, core::SchemaMode::kAgnostic, false);
  AutoencoderConfig config;
  config.epochs = 6;
  Autoencoder model(inputs, config);
  const Vector base = model.Encode(EmbedText("palumo keskato vanora"));
  const Vector near = model.Encode(EmbedText("palumo keskato vanor"));
  const Vector far = model.Encode(EmbedText("zyxwvu tsrqpo nmlkji"));
  EXPECT_GT(Dot(base, near), Dot(base, far));
}

TEST(DenseMethodsTest, FaissKnnRespectsK) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.3));
  KnnSearchConfig config;
  config.k = 3;
  const auto run = FaissKnn(dataset, core::SchemaMode::kAgnostic, config);
  EXPECT_LE(run.candidates.size(), 3 * dataset.e2().size());
  EXPECT_TRUE(run.timing.phases().contains(kPhasePreprocess));
  EXPECT_TRUE(run.timing.phases().contains(kPhaseQuery));
}

TEST(DenseMethodsTest, ReverseBoundsByOtherSide) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.3));
  KnnSearchConfig config;
  config.k = 2;
  config.reverse = true;
  const auto run = FaissKnn(dataset, core::SchemaMode::kAgnostic, config);
  EXPECT_LE(run.candidates.size(), 2 * dataset.e1().size());
}

TEST(DenseMethodsTest, ScannCloseToFaiss) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.3));
  KnnSearchConfig config;
  config.k = 5;
  const auto faiss = FaissKnn(dataset, core::SchemaMode::kAgnostic, config);
  PartitionedConfig scann_config;
  scann_config.asymmetric_hashing = false;
  const auto scann = ScannKnn(dataset, core::SchemaMode::kAgnostic, config,
                              scann_config);
  const auto faiss_eff = core::Evaluate(faiss.candidates, dataset);
  const auto scann_eff = core::Evaluate(scann.candidates, dataset);
  EXPECT_NEAR(faiss_eff.pc, scann_eff.pc, 0.15);
}

TEST(DenseMethodsTest, DeepBlockerProducesCandidatesAndTrainPhase) {
  const auto dataset = datagen::Generate(datagen::PaperSpec(1).Scaled(0.2));
  KnnSearchConfig config;
  config.k = 3;
  AutoencoderConfig autoencoder;
  autoencoder.epochs = 3;
  const auto run =
      DeepBlockerKnn(dataset, core::SchemaMode::kAgnostic, config, autoencoder);
  EXPECT_GT(run.candidates.size(), 0u);
  EXPECT_GT(run.timing.Get(kPhaseTrain), 0.0);
  const auto eff = core::Evaluate(run.candidates, dataset);
  EXPECT_GT(eff.pc, 0.3);
}

}  // namespace
}  // namespace erb::densenn
