// erbench command-line interface.
//
//   erbench list
//       Datasets and methods available.
//   erbench generate <dataset 1-10> <out_dir> [scale]
//       Materialize a synthetic replica as e1.csv / e2.csv / groundtruth.csv.
//   erbench tune <method|ALL> <e1.csv> <e2.csv> <gt.csv> [--schema-based]
//       Fine-tune filtering method(s) on a CSV dataset (Problem 1).
//   erbench stats <e1.csv> <e2.csv> <gt.csv>
//       Dataset profile: attribute coverage, vocabulary, corpus size.
//   erbench serve [--threshold <t>] [--blocking] [--trace <out.json>]
//       Online resolve loop over a stdin/stdout line protocol (see CmdServe).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/schema.hpp"
#include "datagen/csv_loader.hpp"
#include "datagen/csv_writer.hpp"
#include "datagen/registry.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "serve/resolver.hpp"
#include "tuning/suite.hpp"

namespace {

using namespace erb;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  erbench list\n"
               "  erbench generate <dataset 1-10> <out_dir> [scale]\n"
               "  erbench tune <method|ALL> <e1.csv> <e2.csv> <gt.csv> "
               "[--schema-based]\n"
               "  erbench stats <e1.csv> <e2.csv> <gt.csv>\n"
               "  erbench serve [--threshold <t>] [--blocking] "
               "[--trace <out.json>]\n");
  return 1;
}

int CmdList() {
  std::printf("datasets (synthetic replicas of the ICDE 2023 benchmark):\n");
  for (int i = 1; i <= datagen::kNumDatasets; ++i) {
    const auto spec = datagen::PaperSpec(i);
    std::printf("  %2d  %-45s |E1|=%zu |E2|=%zu dups=%zu\n", i,
                spec.description.c_str(), spec.n1, spec.n2, spec.n_duplicates);
  }
  std::printf("\nmethods:\n ");
  for (auto id : tuning::AllMethods()) {
    std::printf(" %s", std::string(tuning::MethodName(id)).c_str());
  }
  std::printf("\n");
  return 0;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const int index = std::atoi(argv[2]);
  const std::string dir = argv[3];
  const double scale = argc > 4 ? std::atof(argv[4]) : 1.0;
  if (index < 1 || index > datagen::kNumDatasets || scale <= 0.0) return Usage();
  const auto dataset = datagen::Generate(datagen::PaperSpec(index).Scaled(scale));
  datagen::WriteCsvDataset(dataset, dir + "/e1.csv", dir + "/e2.csv",
                           dir + "/groundtruth.csv");
  std::printf("wrote %s/{e1,e2,groundtruth}.csv  (|E1|=%zu |E2|=%zu dups=%zu)\n",
              dir.c_str(), dataset.e1().size(), dataset.e2().size(),
              dataset.NumDuplicates());
  return 0;
}

int CmdTune(int argc, char** argv) {
  if (argc < 6) return Usage();
  const std::string method = argv[2];
  core::SchemaMode mode = core::SchemaMode::kAgnostic;
  for (int i = 6; i < argc; ++i) {
    if (std::strcmp(argv[i], "--schema-based") == 0) {
      mode = core::SchemaMode::kBased;
    }
  }
  const auto dataset = datagen::LoadCsvDataset("csv", argv[3], argv[4], argv[5]);
  const auto options = tuning::GridOptions::FromEnv();

  auto run_one = [&](tuning::MethodId id) {
    const auto result = tuning::RunMethod(id, dataset, mode, options);
    std::printf("%-12s PC=%.3f PQ=%.4f |C|=%zu RT=%.0fms  %s%s\n",
                std::string(tuning::MethodName(id)).c_str(), result.eff.pc,
                result.eff.pq, result.eff.candidates, result.runtime_ms,
                result.config.c_str(),
                result.reached_target ? "" : "  [missed recall target]");
  };

  if (method == "ALL") {
    for (auto id : tuning::AllMethods()) run_one(id);
    return 0;
  }
  for (auto id : tuning::AllMethods()) {
    if (method == tuning::MethodName(id)) {
      run_one(id);
      return 0;
    }
  }
  std::fprintf(stderr, "unknown method '%s' (try: erbench list)\n",
               method.c_str());
  return 1;
}

int CmdStats(int argc, char** argv) {
  if (argc < 5) return Usage();
  const auto dataset = datagen::LoadCsvDataset("csv", argv[2], argv[3], argv[4]);
  std::printf("|E1|=%zu |E2|=%zu duplicates=%zu cartesian=%.2e\n",
              dataset.e1().size(), dataset.e2().size(), dataset.NumDuplicates(),
              static_cast<double>(dataset.CartesianSize()));
  std::printf("best attribute: %s\n\n", dataset.best_attribute().c_str());
  std::printf("%-16s %9s %12s %15s\n", "attribute", "coverage", "gt-coverage",
              "distinctiveness");
  for (const auto& s : core::ComputeAttributeStats(dataset)) {
    std::printf("%-16s %9.3f %12.3f %15.3f\n", s.name.c_str(), s.coverage,
                s.groundtruth_coverage, s.distinctiveness);
  }
  for (auto mode : {core::SchemaMode::kAgnostic, core::SchemaMode::kBased}) {
    const auto stats = core::ComputeCorpusStats(dataset, mode, false);
    std::printf("\n%s: vocabulary=%zu characters=%zu",
                mode == core::SchemaMode::kAgnostic ? "schema-agnostic"
                                                    : "schema-based",
                stats.vocabulary_size, stats.char_length);
  }
  std::printf("\n");
  return 0;
}

// Online resolve loop. Line protocol on stdin (one command per line, CSV
// payloads under the LoadCsvDataset quoting rules), one response per command
// on stdout, flushed so the CLI can sit behind a pipe:
//
//   SCHEMA <id-column>,<attr>,...   -> OK schema <k> attributes
//   INSERT <id>,<value>,...         -> OK <corpus id> | DUP <corpus id>
//   RESOLVE <label>,<value>,...     -> MATCHES <label> <n> [<ext id>:<sim>]...
//   SEAL                            -> SEALED <epoch> <corpus size>
//
// Matches are ascending by corpus id with the exact similarity (%.6f).
// Blank lines and lines starting with '#' are skipped; unknown or malformed
// commands answer "ERR <reason>" and the loop continues. With --trace (or
// ERB_TRACE=1) the obs collector records spans and serve.* counters, written
// as a Chrome trace at EOF.
int CmdServe(int argc, char** argv) {
  serve::ServeConfig config;
  std::string trace_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      config.threshold = std::atof(argv[++i]);
      if (config.threshold <= 0.0) {
        std::fprintf(stderr, "serve: --threshold must be positive\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--blocking") == 0) {
      config.enable_blocking = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
      obs::SetTraceEnabled(true);
    } else {
      return Usage();
    }
  }

  serve::Resolver resolver(config);
  std::vector<std::string> attributes;  // set by SCHEMA; first column is the id

  const auto make_profile = [&](const std::vector<std::string>& fields) {
    core::EntityProfile profile;
    profile.attributes.reserve(attributes.size());
    for (std::size_t i = 0; i < attributes.size(); ++i) {
      profile.attributes.push_back(
          {attributes[i], i + 1 < fields.size() ? fields[i + 1] : std::string()});
    }
    return profile;
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find(' ');
    const std::string command = line.substr(0, space);
    const std::string payload =
        space == std::string::npos ? std::string() : line.substr(space + 1);
    if (command == "SEAL") {
      const std::uint64_t epoch = resolver.SealEpoch();
      std::printf("SEALED %llu %zu\n", static_cast<unsigned long long>(epoch),
                  resolver.NumEntities());
    } else if (command == "SCHEMA") {
      const auto fields = datagen::SplitCsvLine(payload);
      if (fields.size() < 2) {
        std::printf("ERR schema needs an id column and >=1 attribute\n");
      } else {
        attributes.assign(fields.begin() + 1, fields.end());
        std::printf("OK schema %zu attributes\n", attributes.size());
      }
    } else if (command == "INSERT" || command == "RESOLVE") {
      const auto fields = datagen::SplitCsvLine(payload);
      if (attributes.empty()) {
        std::printf("ERR no schema (send SCHEMA first)\n");
      } else if (fields.empty()) {
        std::printf("ERR empty record\n");
      } else if (command == "INSERT") {
        const auto result = resolver.Insert(fields[0], make_profile(fields));
        std::printf("%s %u\n", result.inserted ? "OK" : "DUP", result.id);
      } else {
        const auto result = resolver.Resolve(make_profile(fields));
        std::printf("MATCHES %s %zu", fields[0].c_str(), result.matches.size());
        for (const auto& match : result.matches) {
          std::printf(" %s:%.6f", resolver.ExternalIdOf(match.id).c_str(),
                      match.similarity);
        }
        std::printf("\n");
      }
    } else {
      std::printf("ERR unknown command '%s'\n", command.c_str());
    }
    std::fflush(stdout);
  }

  if (!trace_path.empty()) {
    if (!obs::WriteChromeTraceFile(obs::Collect(), trace_path)) {
      std::fprintf(stderr, "serve: cannot write trace to %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "serve: wrote %s\n", trace_path.c_str());
  }
  std::fprintf(stderr,
               "serve: %zu entities, epoch %llu, insert %.1fms resolve %.1fms "
               "seal %.1fms\n",
               resolver.NumEntities(),
               static_cast<unsigned long long>(resolver.epoch()),
               resolver.timing().Get("serve/insert"),
               resolver.timing().Get("serve/resolve"),
               resolver.timing().Get("serve/seal"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  try {
    if (command == "list") return CmdList();
    if (command == "generate") return CmdGenerate(argc, argv);
    if (command == "tune") return CmdTune(argc, argv);
    if (command == "stats") return CmdStats(argc, argv);
    if (command == "serve") return CmdServe(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
