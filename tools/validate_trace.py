#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file against a schema.

Usage: validate_trace.py SCHEMA_JSON TRACE_JSON

Implements the subset of JSON Schema the checked-in schema uses — type,
required, properties, items, enum, minimum — with only the standard library,
so CI needs no third-party packages. If the schema carries an
"x-counterPrefixes" list, every counter sample (ph == "C") must additionally
carry a name starting with one of those prefixes: a new counter namespace has
to be registered (and documented) in docs/trace_schema.json before CI accepts
traces that emit it. Exits 0 on success, 1 with a list of violations
otherwise.
"""
import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def validate(instance, schema, path, errors):
    expected = schema.get("type")
    if expected is not None:
        python_type = TYPES[expected]
        ok = isinstance(instance, python_type)
        # bool is an int subclass in Python; a JSON boolean is not a number.
        if ok and isinstance(instance, bool) and expected in ("integer", "number"):
            ok = False
        if not ok:
            errors.append(f"{path}: expected {expected}, got {type(instance).__name__}")
            return
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) and instance < schema["minimum"]:
        errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required property {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in instance:
                validate(instance[key], subschema, f"{path}.{key}", errors)
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        schema = json.load(f)
    with open(argv[2]) as f:
        trace = json.load(f)
    errors = []
    validate(trace, schema, "$", errors)
    prefixes = tuple(schema.get("x-counterPrefixes", []))
    if prefixes:
        for i, event in enumerate(trace.get("traceEvents", [])):
            if not isinstance(event, dict) or event.get("ph") != "C":
                continue
            name = event.get("name", "")
            if not isinstance(name, str) or not name.startswith(prefixes):
                errors.append(
                    f"$.traceEvents[{i}]: counter {name!r} matches none of the "
                    f"registered prefixes {list(prefixes)}")
    if errors:
        for error in errors[:50]:
            print(f"FAIL {error}", file=sys.stderr)
        print(f"{argv[2]}: {len(errors)} schema violation(s)", file=sys.stderr)
        return 1
    events = trace.get("traceEvents", [])
    spans = sum(1 for e in events if e.get("ph") == "X")
    counters = sum(1 for e in events if e.get("ph") == "C")
    print(f"{argv[2]}: OK ({spans} spans, {counters} counter samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
