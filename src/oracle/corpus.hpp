// Adversarial corpus for differential testing: small Clean-Clean ER datasets
// concentrated on the boundaries where filtering methods disagree (empty
// inputs, single-entity sources, all-identical records, similarity ties,
// strings shorter than the q-gram length, Unicode/CRLF attribute values),
// plus seeded random instances from the synthetic generator.
//
// Every production filtering method is expected to match its brute-force
// oracle on every case of this corpus — see tests/oracle_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/entity.hpp"

namespace erb::oracle {

/// One adversarial instance: a named dataset exercising a boundary the
/// optimized kernels are most likely to get wrong.
struct CorpusCase {
  std::string name;
  core::Dataset dataset;
};

/// Maximum |E1| of any corpus case. Kept at 16 so every pass-1 chunk of the
/// parallel meta-blocking kernel holds exactly one E1 node (kStatsChunks is
/// 16), which makes the kernel's chunk-merged floating-point accumulations
/// bit-identical to the oracle's per-node left-to-right sums.
inline constexpr std::size_t kMaxCorpusE1 = 16;

/// Builds the full corpus: the handcrafted edge cases plus seeded random
/// datasets. Deterministic in `seed`.
std::vector<CorpusCase> BuildCorpus(std::uint64_t seed);

}  // namespace erb::oracle
