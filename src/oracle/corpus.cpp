#include "oracle/corpus.hpp"

#include <utility>

#include "datagen/generator.hpp"
#include "datagen/registry.hpp"

namespace erb::oracle {
namespace {

using core::Dataset;
using core::EntityId;
using core::EntityProfile;

using Row = std::vector<std::pair<std::string, std::string>>;
using Gt = std::vector<std::pair<EntityId, EntityId>>;

std::vector<EntityProfile> Profiles(const std::vector<Row>& rows) {
  std::vector<EntityProfile> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    EntityProfile profile;
    for (const auto& [name, value] : row) profile.attributes.push_back({name, value});
    out.push_back(std::move(profile));
  }
  return out;
}

CorpusCase Make(std::string name, const std::vector<Row>& e1,
                const std::vector<Row>& e2, Gt gt, std::string best) {
  return {name, Dataset(std::move(name), Profiles(e1), Profiles(e2),
                        std::move(gt), std::move(best))};
}

}  // namespace

std::vector<CorpusCase> BuildCorpus(std::uint64_t seed) {
  std::vector<CorpusCase> corpus;

  // Degenerate sizes: no entities at all, and one side empty. Every method
  // must return an empty candidate set without touching invalid memory.
  corpus.push_back(Make("empty-both", {}, {}, {}, "name"));
  corpus.push_back(Make("empty-e2",
                        {{{"name", "acme widget"}, {"desc", "blue"}},
                         {{"name", "bolt cutter"}, {"desc", "steel tool"}},
                         {{"name", "gamma ray"}, {"desc", ""}}},
                        {}, {}, "name"));

  // Single-entity sources: the smallest non-trivial join.
  corpus.push_back(Make("single-pair",
                        {{{"name", "acme widget 42"}}},
                        {{{"name", "acme widget 42"}}},
                        {{0, 0}}, "name"));

  // All records identical: every similarity is exactly 1, every block holds
  // everything, every meta-blocking weight ties. Purging's half-of-all-
  // entities criterion and the kNN distinct-value semantics are both live.
  {
    std::vector<Row> e1, e2;
    for (int i = 0; i < 5; ++i) e1.push_back({{"name", "acme widget pro max"}});
    for (int i = 0; i < 4; ++i) e2.push_back({{"name", "acme widget pro max"}});
    corpus.push_back(Make("all-identical", e1, e2, {{0, 0}, {1, 1}, {2, 2}, {3, 3}},
                          "name"));
  }

  // Similarity ties: values drawn from a four-token alphabet so many pairs
  // land on exactly the same Cosine/Dice/Jaccard value. This is where the
  // >= vs > threshold boundary and the kNN tie retention rules bite.
  corpus.push_back(Make(
      "similarity-ties",
      {{{"name", "aa bb"}}, {{"name", "aa cc"}}, {{"name", "bb cc"}},
       {{"name", "aa dd"}}, {{"name", "cc dd"}}},
      {{{"name", "aa bb"}}, {{"name", "bb dd"}}, {{"name", "cc dd"}},
       {{"name", "aa bb cc"}}, {{"name", "dd"}}},
      {{0, 0}, {4, 2}}, "name"));

  // Strings shorter than any q-gram length in the grid (q in [2, 6]), empty
  // values, and single characters. Q-Grams blocking treats a short token as
  // its own gram; Suffix Arrays must drop tokens shorter than l_min.
  corpus.push_back(Make(
      "short-strings",
      {{{"name", "x"}}, {{"name", "ab"}}, {{"name", ""}}, {{"name", "a b c"}},
       {{"name", "q"}}},
      {{{"name", "x"}}, {{"name", "abc"}}, {{"name", "z"}},
       {{"name", "a b"}}},
      {{0, 0}, {1, 1}}, "name"));

  // Unicode and control characters inside attribute values: multi-byte UTF-8
  // (normalized byte-wise to spaces by the ASCII pipeline), CRLF line breaks,
  // tabs, embedded quotes and commas. Tokenizers must neither crash nor
  // split differently between the production and reference paths.
  corpus.push_back(Make(
      "unicode-crlf",
      {{{"name", "M\xc3\xbcller stra\xc3\x9f""e 42"}, {"desc", "first\r\nsecond line"}},
       {{"name", "na\xc3\xafve caf\xc3\xa9"}, {"desc", "tab\tseparated\tvalue"}},
       {{"name", "\"quoted, name\""}, {"desc", "a,b,c"}}},
      {{{"name", "muller strasse 42"}, {"desc", "first second line"}},
       {{"name", "naive cafe"}, {"desc", "tab separated value"}},
       {{"name", "quoted name"}, {"desc", "a b c"}}},
      {{0, 0}, {1, 1}, {2, 2}}, "name"));

  // Seeded random instances at the generator's minimum size (8 x 8 with 4
  // duplicates): realistic token distributions, hard cases and coverage
  // holes, still small enough that the O(n^2 * blocks) oracles stay instant
  // and |E1| <= kMaxCorpusE1 keeps the meta-blocking sums bit-comparable.
  for (int spec_index : {1, 4}) {
    for (std::uint64_t rep = 0; rep < 2; ++rep) {
      datagen::DatasetSpec spec = datagen::PaperSpec(spec_index).Scaled(0.0);
      spec.seed = seed + 17 * static_cast<std::uint64_t>(spec_index) + rep;
      corpus.push_back({"random-" + spec.id + "-s" + std::to_string(rep),
                        datagen::Generate(spec)});
    }
  }

  return corpus;
}

}  // namespace erb::oracle
