// Brute-force references for the dense NN methods (Section IV-D): exact kNN
// by full pairwise distance computation with an explicit sort — no bounded
// heap, no partitioning, no batching. The embeddings themselves are shared
// with production (they are the input under test, not the filter), but every
// score is recomputed with an independent replica of the float arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/candidates.hpp"
#include "core/entity.hpp"
#include "densenn/flat_index.hpp"
#include "densenn/methods.hpp"

namespace erb::oracle {

/// Independent replicas of the production score kernels: plain ascending-d
/// float loops, so the values are bit-identical to densenn::Dot /
/// densenn::SquaredL2 (no fused or reassociated arithmetic on either side).
float DotOracle(const densenn::Vector& a, const densenn::Vector& b);
float SquaredL2Oracle(const densenn::Vector& a, const densenn::Vector& b);

/// Exact kNN by definition: score the query against every vector, sort by
/// (score descending, id ascending) and keep the first min(k, n). Ties at
/// the k-th score resolve to the lowest ids — the pinned tie-breaking
/// contract every production index must honor. k <= 0 returns nothing.
std::vector<std::uint32_t> ExactKnnOracle(const std::vector<densenn::Vector>& vectors,
                                          const densenn::Vector& query,
                                          densenn::DenseMetric metric, int k);

/// Range search by literal predicate: dot product >= radius (kDotProduct) or
/// squared L2 distance <= radius (kSquaredL2), ids ascending.
std::vector<std::uint32_t> RangeSearchOracle(
    const std::vector<densenn::Vector>& vectors, const densenn::Vector& query,
    densenn::DenseMetric metric, float radius);

/// End-to-end reference for the FAISS-substitute method: embed both sides,
/// run the exact kNN per query entity, emit pairs in canonical (E1, E2)
/// order.
core::CandidateSet FaissKnnOracle(const core::Dataset& dataset,
                                  core::SchemaMode mode,
                                  const densenn::KnnSearchConfig& config);

}  // namespace erb::oracle
