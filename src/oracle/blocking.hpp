// First-principles references for the blocking workflow stages (Section
// IV-B): block building by literal method definition, Block Purging and
// Block Filtering re-derived from their published descriptions, Comparison
// Propagation by pairwise co-occurrence test, and meta-blocking with every
// edge weight recomputed from scratch per pair.
//
// Stage-wise differential design: the cleaning and comparison references
// operate on the *same* block collection as the production code (block
// indices are part of the tie-breaking contract), while built collections —
// whose block order depends on key discovery order — are compared through
// CanonicalBlocks().
#pragma once

#include <string_view>
#include <utility>
#include <vector>

#include "blocking/block.hpp"
#include "blocking/builders.hpp"
#include "blocking/comparison.hpp"
#include "core/candidates.hpp"
#include "core/entity.hpp"

namespace erb::oracle {

/// Blocking keys of one textual value by literal definition (independent
/// normalization, tokenization and key enumeration; combinations enumerated
/// recursively instead of via bitmasks). Returned deduplicated and sorted.
std::vector<std::string> ExtractKeysOracle(std::string_view text,
                                           const blocking::BuilderConfig& config);

/// Block building by definition: one block per distinct key, entities in
/// ascending id order; Suffix-Arrays-family blocks reaching b_max
/// assignments are discarded; one-sided blocks are dropped.
blocking::BlockCollection BuildBlocksOracle(const core::Dataset& dataset,
                                            core::SchemaMode mode,
                                            const blocking::BuilderConfig& config);

/// Order-independent canonical form of a collection: each block as its
/// (sorted e1, sorted e2) id lists, blocks sorted lexicographically.
std::vector<std::pair<std::vector<core::EntityId>, std::vector<core::EntityId>>>
CanonicalBlocks(const blocking::BlockCollection& blocks);

/// Block Purging re-derived: (1) drop blocks holding more than half of all
/// input entities; (2) ascending scan over distinct comparison cardinalities
/// tracking the cumulative comparisons-per-assignment ratio, purging every
/// level above the last disproportionate jump (factor 1.025).
void BlockPurgingOracle(blocking::BlockCollection* blocks, std::size_t n1,
                        std::size_t n2);

/// Block Filtering re-derived: each entity stays in the ceil(ratio * count)
/// smallest of its blocks (minimum one), ties on cardinality broken by
/// ascending block index; one-sided blocks are then dropped.
void BlockFilteringOracle(blocking::BlockCollection* blocks, double ratio,
                          std::size_t n1, std::size_t n2);

/// Comparison Propagation by pairwise test: (i, j) is a candidate iff some
/// block contains i on the E1 side and j on the E2 side.
core::CandidateSet ComparisonPropagationOracle(
    const blocking::BlockCollection& blocks, std::size_t n1, std::size_t n2);

/// Meta-blocking with per-pair recomputation: for every (i, j) the shared
/// blocks, weight and pruning thresholds are derived from scratch. Node and
/// global weight sums accumulate left-to-right in ascending (i, j) order,
/// matching the production kernel's pinned streaming order bit-for-bit for
/// collections with n1 <= corpus::kMaxCorpusE1.
core::CandidateSet MetaBlockingOracle(const blocking::BlockCollection& blocks,
                                      std::size_t n1, std::size_t n2,
                                      blocking::WeightingScheme scheme,
                                      blocking::PruningAlgorithm pruning);

}  // namespace erb::oracle
