// Brute-force references for the sparse NN joins (Section IV-C): direct
// pairwise Cosine/Dice/Jaccard over token sets, no inverted index, no
// ScanCount, no heaps. Obviously correct by inspection; every optimized
// implementation in src/sparsenn must produce byte-identical candidate sets
// (tests/oracle_test.cpp).
#pragma once

#include "core/candidates.hpp"
#include "core/entity.hpp"
#include "sparsenn/joins.hpp"
#include "sparsenn/tokenset.hpp"

namespace erb::oracle {

/// Pairwise set similarity by the literal textbook formulas: overlap via a
/// two-pointer merge of the sorted token sets (independent of the ScanCount
/// merge-count machinery), then Cosine = o / sqrt(|A| |B|),
/// Dice = 2 o / (|A| + |B|), Jaccard = o / (|A| + |B| - o). Empty sets have
/// similarity 0 under every measure.
double TokenSetSimilarity(sparsenn::SimilarityMeasure measure,
                          const sparsenn::TokenSet& a,
                          const sparsenn::TokenSet& b);

/// ε-Join reference: every pair (i, j) of E1 x E2 with similarity >=
/// `threshold`. At threshold <= 0 this is the full Cartesian product —
/// similarities are non-negative, so every pair qualifies, including pairs
/// with no shared token.
core::CandidateSet EpsilonJoinOracle(const core::Dataset& dataset,
                                     core::SchemaMode mode,
                                     const sparsenn::SparseConfig& config,
                                     double threshold);

/// kNN-Join reference. For each query entity, the indexed entities carrying
/// the k highest *distinct* positive similarity values are retained (ties
/// beyond position k are all kept, per the paper's definition); pairs with
/// zero similarity are never candidates — "nearest" is defined over the
/// overlap graph. `reverse` indexes E2 and queries with E1.
core::CandidateSet KnnJoinOracle(const core::Dataset& dataset,
                                 core::SchemaMode mode,
                                 const sparsenn::SparseConfig& config, int k,
                                 bool reverse);

/// Global top-K reference: the K highest-similarity overlapping pairs across
/// E1 x E2, ties with the K-th value all retained. K = 0 selects nothing.
core::CandidateSet GlobalTopKJoinOracle(const core::Dataset& dataset,
                                        core::SchemaMode mode,
                                        const sparsenn::SparseConfig& config,
                                        std::size_t global_k);

/// HB-join reference: for each query entity of E2, every indexed entity of
/// E1 with similarity >= `threshold` when at least `k` such entities exist,
/// otherwise the kNN reference's top-k-distinct-values set. Candidates come
/// from the overlap graph (similarity > 0), matching sparsenn::HybridJoin.
core::CandidateSet HybridJoinOracle(const core::Dataset& dataset,
                                    core::SchemaMode mode,
                                    const sparsenn::SparseConfig& config,
                                    double threshold, int k);

}  // namespace erb::oracle
