// Reference PC/PQ evaluation: iterates the ground truth and probes the
// candidate set — the opposite direction from the production Evaluate(),
// which iterates candidates and probes the ground-truth hash set. Both must
// agree exactly on every corpus case and every candidate set.
#pragma once

#include "core/candidates.hpp"
#include "core/entity.hpp"
#include "core/metrics.hpp"

namespace erb::oracle {

/// Evaluates a finalized candidate set against the dataset's ground truth by
/// definition: detected = |{(a, b) in GT : (a, b) in C}|, PC = detected /
/// |GT| (vacuously 1 when the ground truth is empty), PQ = detected / |C|
/// (0 when there are no candidates). Never NaN.
core::Effectiveness EvaluateOracle(const core::CandidateSet& candidates,
                                   const core::Dataset& dataset);

}  // namespace erb::oracle
