#include "oracle/metrics.hpp"

namespace erb::oracle {

core::Effectiveness EvaluateOracle(const core::CandidateSet& candidates,
                                   const core::Dataset& dataset) {
  core::Effectiveness result;
  result.candidates = candidates.size();
  for (const auto& [id1, id2] : dataset.duplicates()) {
    if (candidates.Contains(id1, id2)) ++result.detected;
  }
  const std::size_t total = dataset.NumDuplicates();
  result.pc = total == 0 ? 1.0
                         : static_cast<double>(result.detected) /
                               static_cast<double>(total);
  result.pq = result.candidates == 0
                  ? 0.0
                  : static_cast<double>(result.detected) /
                        static_cast<double>(result.candidates);
  return result;
}

}  // namespace erb::oracle
