#include "oracle/serve.hpp"

#include "oracle/sparse.hpp"
#include "sparsenn/joins.hpp"
#include "sparsenn/tokenset.hpp"

namespace erb::oracle {
namespace {

// The serve corpus is schema-agnostic by contract (Resolver tokenizes
// profile.AllValues()), and the reference dataset needs no ground truth or
// best attribute — only the profiles matter to an ε-join.
core::Dataset MakeReferenceDataset(
    const std::vector<core::EntityProfile>& corpus,
    const std::vector<core::EntityProfile>& queries) {
  return core::Dataset("serve-reference", corpus, queries, {}, "");
}

}  // namespace

core::CandidateSet ServeBatchReference(
    const std::vector<core::EntityProfile>& corpus,
    const std::vector<core::EntityProfile>& queries,
    const serve::ServeConfig& config) {
  const core::Dataset dataset = MakeReferenceDataset(corpus, queries);
  return sparsenn::EpsilonJoin(dataset, core::SchemaMode::kAgnostic,
                               config.sparse, config.threshold)
      .candidates;
}

core::CandidateSet ServeBruteForce(
    const std::vector<core::EntityProfile>& corpus,
    const std::vector<core::EntityProfile>& queries,
    const serve::ServeConfig& config) {
  std::vector<sparsenn::TokenSet> corpus_sets;
  corpus_sets.reserve(corpus.size());
  for (const auto& profile : corpus) {
    corpus_sets.push_back(sparsenn::BuildTokenSet(
        profile.AllValues(), config.sparse.model, config.sparse.clean));
  }
  core::CandidateSet candidates;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const sparsenn::TokenSet query_set = sparsenn::BuildTokenSet(
        queries[q].AllValues(), config.sparse.model, config.sparse.clean);
    for (std::size_t i = 0; i < corpus_sets.size(); ++i) {
      const double sim = TokenSetSimilarity(config.sparse.measure,
                                            corpus_sets[i], query_set);
      if (sim >= config.threshold) {
        candidates.Add(static_cast<core::EntityId>(i),
                       static_cast<core::EntityId>(q));
      }
    }
  }
  candidates.Finalize();
  return candidates;
}

core::CandidateSet ServeResultsToCandidates(
    const std::vector<serve::ResolveResult>& results) {
  core::CandidateSet candidates;
  for (std::size_t q = 0; q < results.size(); ++q) {
    for (const serve::Match& match : results[q].matches) {
      candidates.Add(match.id, static_cast<core::EntityId>(q));
    }
  }
  candidates.Finalize();
  return candidates;
}

}  // namespace erb::oracle
