#include "oracle/blocking.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

namespace erb::oracle {
namespace {

using blocking::Block;
using blocking::BlockCollection;
using blocking::BuilderConfig;
using blocking::BuilderKind;
using core::EntityId;

// Independent text normalization: ASCII case-fold, every other byte becomes
// a space. Intentionally re-derived rather than calling NormalizeText().
std::string NormalizeOracle(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (c >= 'a' && c <= 'z') {
      out.push_back(ch);
    } else if (c >= 'A' && c <= 'Z') {
      out.push_back(static_cast<char>(c - 'A' + 'a'));
    } else if (c >= '0' && c <= '9') {
      out.push_back(ch);
    } else {
      out.push_back(' ');
    }
  }
  return out;
}

std::vector<std::string> TokenizeOracle(std::string_view normalized) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : normalized) {
    if (c == ' ') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

// Character q-grams by definition; a token no longer than q is one gram.
std::vector<std::string> QGramsOf(const std::string& token, int q) {
  std::vector<std::string> grams;
  if (static_cast<int>(token.size()) <= q) {
    grams.push_back(token);
    return grams;
  }
  for (std::size_t i = 0; i + static_cast<std::size_t>(q) <= token.size(); ++i) {
    grams.push_back(token.substr(i, static_cast<std::size_t>(q)));
  }
  return grams;
}

// All order-preserving combinations of >= l of the k grams, enumerated
// recursively (the production code uses bitmasks; both enumerate the same
// subsets, and keys are deduplicated afterwards).
void Combinations(const std::vector<std::string>& grams, std::size_t next,
                  std::size_t min_size, std::vector<std::string>* chosen,
                  std::vector<std::string>* out) {
  if (next == grams.size()) {
    if (chosen->size() >= min_size && !chosen->empty()) {
      std::string key;
      for (const std::string& g : *chosen) {
        if (!key.empty()) key += '_';
        key += g;
      }
      out->push_back(std::move(key));
    }
    return;
  }
  chosen->push_back(grams[next]);
  Combinations(grams, next + 1, min_size, chosen, out);
  chosen->pop_back();
  Combinations(grams, next + 1, min_size, chosen, out);
}

}  // namespace

std::vector<std::string> ExtractKeysOracle(std::string_view text,
                                           const BuilderConfig& config) {
  std::vector<std::string> keys;
  for (const std::string& token : TokenizeOracle(NormalizeOracle(text))) {
    switch (config.kind) {
      case BuilderKind::kStandard:
        keys.push_back(token);
        break;
      case BuilderKind::kQGrams:
        for (std::string& g : QGramsOf(token, config.q)) keys.push_back(std::move(g));
        break;
      case BuilderKind::kExtendedQGrams: {
        std::vector<std::string> grams = QGramsOf(token, config.q);
        if (grams.size() > 10) grams.resize(10);
        const std::size_t k = grams.size();
        const std::size_t l = std::max<std::size_t>(
            1, static_cast<std::size_t>(static_cast<int>(
                   static_cast<double>(k) * config.t)));
        if (l >= k) {
          std::string key;
          for (const std::string& g : grams) {
            if (!key.empty()) key += '_';
            key += g;
          }
          keys.push_back(std::move(key));
        } else {
          std::vector<std::string> chosen;
          Combinations(grams, 0, l, &chosen, &keys);
        }
        break;
      }
      case BuilderKind::kSuffixArrays: {
        const std::size_t n = token.size();
        for (std::size_t start = 0;
             start + static_cast<std::size_t>(config.l_min) <= n; ++start) {
          keys.push_back(token.substr(start));
        }
        break;
      }
      case BuilderKind::kExtendedSuffixArrays: {
        const std::size_t n = token.size();
        for (std::size_t len = static_cast<std::size_t>(config.l_min); len <= n;
             ++len) {
          for (std::size_t start = 0; start + len <= n; ++start) {
            keys.push_back(token.substr(start, len));
          }
        }
        break;
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

BlockCollection BuildBlocksOracle(const core::Dataset& dataset,
                                  core::SchemaMode mode,
                                  const BuilderConfig& config) {
  // Ordered map: the oracle's block order is lexicographic by key, not the
  // production hash-map discovery order — compare through CanonicalBlocks().
  std::map<std::string, Block> by_key;
  for (int side = 0; side < 2; ++side) {
    const std::size_t count =
        side == 0 ? dataset.e1().size() : dataset.e2().size();
    for (EntityId id = 0; id < count; ++id) {
      const std::string text = dataset.EntityText(side, id, mode);
      for (const std::string& key : ExtractKeysOracle(text, config)) {
        Block& block = by_key[key];
        (side == 0 ? block.e1 : block.e2).push_back(id);
      }
    }
  }

  const bool proactive = config.kind == BuilderKind::kSuffixArrays ||
                         config.kind == BuilderKind::kExtendedSuffixArrays;
  BlockCollection blocks;
  for (auto& [key, block] : by_key) {
    if (block.e1.empty() || block.e2.empty()) continue;
    if (proactive &&
        block.Assignments() >= static_cast<std::size_t>(config.b_max)) {
      continue;
    }
    blocks.push_back(std::move(block));
  }
  return blocks;
}

std::vector<std::pair<std::vector<EntityId>, std::vector<EntityId>>>
CanonicalBlocks(const BlockCollection& blocks) {
  std::vector<std::pair<std::vector<EntityId>, std::vector<EntityId>>> out;
  out.reserve(blocks.size());
  for (const Block& block : blocks) {
    auto e1 = block.e1;
    auto e2 = block.e2;
    std::sort(e1.begin(), e1.end());
    std::sort(e2.begin(), e2.end());
    out.emplace_back(std::move(e1), std::move(e2));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void BlockPurgingOracle(BlockCollection* blocks, std::size_t n1,
                        std::size_t n2) {
  if (blocks->empty()) return;

  // Criterion 1, by definition: a block holding more than half of all input
  // entities is a stop-word block. 2 * |b| > n1 + n2 is the integer form.
  const std::size_t total_entities = n1 + n2;
  std::erase_if(*blocks, [total_entities](const Block& b) {
    return 2 * b.Assignments() > total_entities;
  });
  if (blocks->empty()) return;

  // Criterion 2: ascending over distinct comparison cardinalities, track the
  // cumulative comparisons-per-assignment ratio and purge every level above
  // the last jump exceeding the smoothing factor.
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> levels;
  for (const Block& block : *blocks) {
    auto& [comparisons, assignments] = levels[block.Comparisons()];
    comparisons += block.Comparisons();
    assignments += block.Assignments();
  }
  constexpr double kSmoothing = 1.025;
  std::uint64_t cum_comparisons = 0;
  std::uint64_t cum_assignments = 0;
  double previous_ratio = 0.0;
  std::uint64_t previous_cardinality = 0;
  std::uint64_t cut = levels.rbegin()->first;
  for (const auto& [cardinality, totals] : levels) {
    cum_comparisons += totals.first;
    cum_assignments += totals.second;
    const double ratio = static_cast<double>(cum_comparisons) /
                         static_cast<double>(cum_assignments);
    if (previous_ratio > 0.0 && ratio > kSmoothing * previous_ratio) {
      cut = previous_cardinality;
    }
    previous_ratio = ratio;
    previous_cardinality = cardinality;
  }
  std::erase_if(*blocks, [cut](const Block& b) { return b.Comparisons() > cut; });
}

void BlockFilteringOracle(BlockCollection* blocks, double ratio, std::size_t n1,
                          std::size_t n2) {
  if (ratio >= 1.0 || blocks->empty()) return;

  // For each entity, the set of blocks it stays in: the ceil(ratio * count)
  // smallest by (cardinality, block index) — a full sort where the production
  // code uses nth_element; the retained *set* is identical because the
  // block index breaks every cardinality tie.
  const auto retained = [blocks, ratio](int side, std::size_t count) {
    std::vector<std::vector<std::uint32_t>> keep_blocks(count);
    for (std::size_t id = 0; id < count; ++id) {
      std::vector<std::pair<std::uint64_t, std::uint32_t>> mine;
      for (std::uint32_t b = 0; b < blocks->size(); ++b) {
        const auto& members = side == 0 ? (*blocks)[b].e1 : (*blocks)[b].e2;
        if (std::find(members.begin(), members.end(),
                      static_cast<EntityId>(id)) != members.end()) {
          mine.emplace_back((*blocks)[b].Comparisons(), b);
        }
      }
      if (mine.empty()) continue;
      std::sort(mine.begin(), mine.end());
      const std::size_t keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(ratio * static_cast<double>(mine.size()))));
      mine.resize(std::min(keep, mine.size()));
      for (const auto& [_, b] : mine) keep_blocks[id].push_back(b);
    }
    return keep_blocks;
  };
  const auto keep1 = retained(0, n1);
  const auto keep2 = retained(1, n2);

  // Rebuild with the original block indices; entities are appended in
  // ascending id order, so the surviving blocks' member lists match the
  // production rebuild byte for byte.
  BlockCollection filtered(blocks->size());
  for (std::size_t id = 0; id < n1; ++id) {
    for (std::uint32_t b : keep1[id]) {
      filtered[b].e1.push_back(static_cast<EntityId>(id));
    }
  }
  for (std::size_t id = 0; id < n2; ++id) {
    for (std::uint32_t b : keep2[id]) {
      filtered[b].e2.push_back(static_cast<EntityId>(id));
    }
  }
  std::erase_if(filtered,
                [](const Block& b) { return b.e1.empty() || b.e2.empty(); });
  *blocks = std::move(filtered);
}

core::CandidateSet ComparisonPropagationOracle(const BlockCollection& blocks,
                                               std::size_t n1, std::size_t n2) {
  core::CandidateSet out;
  for (EntityId i = 0; i < n1; ++i) {
    for (EntityId j = 0; j < n2; ++j) {
      for (const Block& block : blocks) {
        const bool has_i = std::find(block.e1.begin(), block.e1.end(), i) !=
                           block.e1.end();
        const bool has_j = std::find(block.e2.begin(), block.e2.end(), j) !=
                           block.e2.end();
        if (has_i && has_j) {
          out.Add(i, j);
          break;
        }
      }
    }
  }
  out.Finalize();
  return out;
}

namespace {

// Per-pair co-occurrence recomputed from the raw collection: number of
// shared blocks and the ARCS sum (1 / ||b|| accumulated in ascending block
// index order, the same order the production streamer uses).
struct PairStats {
  std::vector<std::vector<std::uint32_t>> common;
  std::vector<std::vector<double>> arcs;
  std::vector<std::uint32_t> blocks_of_1, blocks_of_2;
};

PairStats CollectPairStats(const BlockCollection& blocks, std::size_t n1,
                           std::size_t n2) {
  PairStats s;
  s.common.assign(n1, std::vector<std::uint32_t>(n2, 0));
  s.arcs.assign(n1, std::vector<double>(n2, 0.0));
  s.blocks_of_1.assign(n1, 0);
  s.blocks_of_2.assign(n2, 0);
  for (const Block& block : blocks) {
    const double inv = 1.0 / static_cast<double>(block.Comparisons());
    for (EntityId i : block.e1) ++s.blocks_of_1[i];
    for (EntityId j : block.e2) ++s.blocks_of_2[j];
    for (EntityId i : block.e1) {
      for (EntityId j : block.e2) {
        ++s.common[i][j];
        s.arcs[i][j] += inv;
      }
    }
  }
  return s;
}

// The six weighting schemes by their published formulas, recomputed per pair
// from the PairStats co-occurrence counts.
double WeightOracle(const PairStats& s, const BlockCollection& blocks,
                    std::uint64_t total_pairs,
                    const std::vector<std::uint32_t>& degree1,
                    const std::vector<std::uint32_t>& degree2,
                    blocking::WeightingScheme scheme, EntityId i, EntityId j) {
  const double bi = static_cast<double>(s.blocks_of_1[i]);
  const double bj = static_cast<double>(s.blocks_of_2[j]);
  const double total_blocks =
      std::max<double>(1.0, static_cast<double>(blocks.size()));
  const double c = static_cast<double>(s.common[i][j]);
  switch (scheme) {
    case blocking::WeightingScheme::kArcs:
      return s.arcs[i][j];
    case blocking::WeightingScheme::kCbs:
      return c;
    case blocking::WeightingScheme::kEcbs:
      return c * std::log(total_blocks / bi) * std::log(total_blocks / bj);
    case blocking::WeightingScheme::kJs:
      return c / (bi + bj - c);
    case blocking::WeightingScheme::kEjs: {
      const double js = c / (bi + bj - c);
      const double pairs = std::max<double>(1.0, static_cast<double>(total_pairs));
      const double di = std::max<double>(degree1[i], 1.0);
      const double dj = std::max<double>(degree2[j], 1.0);
      return js * std::log10(pairs / di) * std::log10(pairs / dj);
    }
    case blocking::WeightingScheme::kChiSquared: {
      const double n = total_blocks;
      const double o11 = c;
      const double o12 = bi - c;
      const double o21 = bj - c;
      const double o22 = n - bi - bj + c;
      const double denom = bi * bj * (n - bi) * (n - bj);
      if (denom <= 0.0) return 0.0;
      const double diff = o11 * o22 - o12 * o21;
      return n * diff * diff / denom;
    }
  }
  return 0.0;
}

// k-th largest of a weight multiset (0 when empty, the minimum when fewer
// than k values exist) — the value the production bounded heap exposes.
double KthLargest(std::vector<double> weights, std::size_t k) {
  if (weights.empty()) return 0.0;
  std::sort(weights.begin(), weights.end(), std::greater<>());
  return weights[std::min(k, weights.size()) - 1];
}

}  // namespace

core::CandidateSet MetaBlockingOracle(const BlockCollection& blocks,
                                      std::size_t n1, std::size_t n2,
                                      blocking::WeightingScheme scheme,
                                      blocking::PruningAlgorithm pruning) {
  const PairStats s = CollectPairStats(blocks, n1, n2);

  // EJS degrees and the pair count, from the co-occurrence matrix.
  std::vector<std::uint32_t> degree1(n1, 0), degree2(n2, 0);
  std::uint64_t total_pairs = 0;
  for (EntityId i = 0; i < n1; ++i) {
    for (EntityId j = 0; j < n2; ++j) {
      if (s.common[i][j] == 0) continue;
      ++degree1[i];
      ++degree2[j];
      ++total_pairs;
    }
  }

  // Cardinality parameters from block characteristics, as in the literature.
  std::uint64_t assignments = 0;
  for (const Block& block : blocks) assignments += block.Assignments();
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(static_cast<double>(assignments) /
                          static_cast<double>(std::max<std::size_t>(1, n1 + n2)))));
  const std::uint64_t cep_cap = std::max<std::uint64_t>(1, assignments / 2);

  const auto weight = [&](EntityId i, EntityId j) {
    return WeightOracle(s, blocks, total_pairs, degree1, degree2, scheme, i, j);
  };

  // Per-node statistics over the weighted pair graph. Sums run left-to-right
  // in ascending j per node, and node partial sums accumulate in ascending i
  // — the exact association order of the production kernel once each pass-1
  // chunk holds a single E1 node (guaranteed for |E1| <= corpus
  // kMaxCorpusE1), so every double here is bit-identical, not just close.
  std::vector<double> sum1(n1, 0.0), max1(n1, 0.0);
  std::vector<double> sum2(n2, 0.0), max2(n2, 0.0);
  std::vector<std::uint32_t> cnt1(n1, 0), cnt2(n2, 0);
  std::vector<std::vector<double>> node1_weights(n1), node2_weights(n2);
  std::vector<double> all_weights;
  double global_sum = 0.0;
  std::uint64_t global_count = 0;
  for (EntityId i = 0; i < n1; ++i) {
    double node_sum = 0.0;
    for (EntityId j = 0; j < n2; ++j) {
      if (s.common[i][j] == 0) continue;
      const double w = weight(i, j);
      sum1[i] += w;
      node_sum += w;
      max1[i] = std::max(max1[i], w);
      ++cnt1[i];
      sum2[j] += w;
      max2[j] = std::max(max2[j], w);
      ++cnt2[j];
      node1_weights[i].push_back(w);
      node2_weights[j].push_back(w);
      all_weights.push_back(w);
      ++global_count;
    }
    global_sum += node_sum;
  }

  const double global_avg =
      global_count == 0 ? 0.0 : global_sum / static_cast<double>(global_count);
  double cep_threshold = 0.0;
  if (all_weights.size() > cep_cap) {
    std::sort(all_weights.begin(), all_weights.end(), std::greater<>());
    cep_threshold = all_weights[cep_cap - 1];
  }

  core::CandidateSet out;
  for (EntityId i = 0; i < n1; ++i) {
    for (EntityId j = 0; j < n2; ++j) {
      if (s.common[i][j] == 0) continue;
      const double w = weight(i, j);
      bool keep = false;
      switch (pruning) {
        case blocking::PruningAlgorithm::kBlast:
          keep = w >= 0.35 * (max1[i] + max2[j]);
          break;
        case blocking::PruningAlgorithm::kCep:
          keep = w >= cep_threshold;
          break;
        case blocking::PruningAlgorithm::kCnp:
          keep = w >= KthLargest(node1_weights[i], k) ||
                 w >= KthLargest(node2_weights[j], k);
          break;
        case blocking::PruningAlgorithm::kRcnp:
          keep = w >= KthLargest(node1_weights[i], k) &&
                 w >= KthLargest(node2_weights[j], k);
          break;
        case blocking::PruningAlgorithm::kWep:
          keep = w >= global_avg;
          break;
        case blocking::PruningAlgorithm::kWnp:
          keep = (cnt1[i] > 0 && w >= sum1[i] / cnt1[i]) ||
                 (cnt2[j] > 0 && w >= sum2[j] / cnt2[j]);
          break;
        case blocking::PruningAlgorithm::kRwnp:
          keep = (cnt1[i] > 0 && w >= sum1[i] / cnt1[i]) &&
                 (cnt2[j] > 0 && w >= sum2[j] / cnt2[j]);
          break;
      }
      if (keep) out.Add(i, j);
    }
  }
  out.Finalize();
  return out;
}

}  // namespace erb::oracle
