#include "oracle/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace erb::oracle {
namespace {

using core::CandidateSet;
using core::EntityId;
using sparsenn::SimilarityMeasure;
using sparsenn::TokenSet;

// |A ∩ B| by merging the two sorted, deduplicated token vectors.
std::size_t Overlap(const TokenSet& a, const TokenSet& b) {
  std::size_t overlap = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  return overlap;
}

struct Sides {
  std::vector<TokenSet> e1;
  std::vector<TokenSet> e2;
};

Sides BuildSides(const core::Dataset& dataset, core::SchemaMode mode,
                 const sparsenn::SparseConfig& config) {
  return {sparsenn::BuildSideTokenSets(dataset, 0, mode, config.model,
                                       config.clean),
          sparsenn::BuildSideTokenSets(dataset, 1, mode, config.model,
                                       config.clean)};
}

}  // namespace

double TokenSetSimilarity(SimilarityMeasure measure, const TokenSet& a,
                          const TokenSet& b) {
  if (a.empty() || b.empty()) return 0.0;
  const double o = static_cast<double>(Overlap(a, b));
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return o / std::sqrt(static_cast<double>(a.size()) * b.size());
    case SimilarityMeasure::kDice:
      return 2.0 * o / static_cast<double>(a.size() + b.size());
    case SimilarityMeasure::kJaccard:
      return o / (static_cast<double>(a.size() + b.size()) - o);
  }
  return 0.0;
}

CandidateSet EpsilonJoinOracle(const core::Dataset& dataset,
                               core::SchemaMode mode,
                               const sparsenn::SparseConfig& config,
                               double threshold) {
  const Sides sides = BuildSides(dataset, mode, config);
  CandidateSet out;
  for (EntityId i = 0; i < sides.e1.size(); ++i) {
    for (EntityId j = 0; j < sides.e2.size(); ++j) {
      if (TokenSetSimilarity(config.measure, sides.e1[i], sides.e2[j]) >=
          threshold) {
        out.Add(i, j);
      }
    }
  }
  out.Finalize();
  return out;
}

CandidateSet KnnJoinOracle(const core::Dataset& dataset, core::SchemaMode mode,
                           const sparsenn::SparseConfig& config, int k,
                           bool reverse) {
  const Sides sides = BuildSides(dataset, mode, config);
  const std::vector<TokenSet>& queries = reverse ? sides.e1 : sides.e2;
  const std::vector<TokenSet>& indexed = reverse ? sides.e2 : sides.e1;

  CandidateSet out;
  std::vector<std::pair<double, EntityId>> scored;
  for (EntityId q = 0; q < queries.size(); ++q) {
    scored.clear();
    for (EntityId id = 0; id < indexed.size(); ++id) {
      const double sim =
          TokenSetSimilarity(config.measure, queries[q], indexed[id]);
      if (sim > 0.0) scored.emplace_back(sim, id);
    }
    // Pinned order: descending similarity, ascending entity id on ties.
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    int distinct = 0;
    double previous = -1.0;
    for (const auto& [sim, id] : scored) {
      if (sim != previous) {
        if (++distinct > k) break;
        previous = sim;
      }
      if (reverse) {
        out.Add(q, id);
      } else {
        out.Add(id, q);
      }
    }
  }
  out.Finalize();
  return out;
}

CandidateSet GlobalTopKJoinOracle(const core::Dataset& dataset,
                                  core::SchemaMode mode,
                                  const sparsenn::SparseConfig& config,
                                  std::size_t global_k) {
  CandidateSet out;
  if (global_k == 0) {
    out.Finalize();
    return out;
  }
  const Sides sides = BuildSides(dataset, mode, config);
  std::vector<double> sims;
  for (const TokenSet& a : sides.e1) {
    for (const TokenSet& b : sides.e2) {
      const double sim = TokenSetSimilarity(config.measure, a, b);
      if (sim > 0.0) sims.push_back(sim);
    }
  }
  if (sims.empty()) {
    out.Finalize();
    return out;
  }
  std::sort(sims.begin(), sims.end(), std::greater<>());
  const double threshold =
      global_k < sims.size() ? sims[global_k - 1] : sims.back();
  for (EntityId i = 0; i < sides.e1.size(); ++i) {
    for (EntityId j = 0; j < sides.e2.size(); ++j) {
      const double sim =
          TokenSetSimilarity(config.measure, sides.e1[i], sides.e2[j]);
      if (sim > 0.0 && sim >= threshold) out.Add(i, j);
    }
  }
  out.Finalize();
  return out;
}

CandidateSet HybridJoinOracle(const core::Dataset& dataset,
                              core::SchemaMode mode,
                              const sparsenn::SparseConfig& config,
                              double threshold, int k) {
  const Sides sides = BuildSides(dataset, mode, config);
  CandidateSet out;
  const std::size_t min_matches = k > 0 ? static_cast<std::size_t>(k) : 0;
  std::vector<std::pair<double, EntityId>> scored;
  for (EntityId q = 0; q < sides.e2.size(); ++q) {
    scored.clear();
    for (EntityId id = 0; id < sides.e1.size(); ++id) {
      const double sim =
          TokenSetSimilarity(config.measure, sides.e1[id], sides.e2[q]);
      if (sim > 0.0) scored.emplace_back(sim, id);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    std::size_t above = 0;
    while (above < scored.size() && scored[above].first >= threshold) ++above;
    if (above >= min_matches) {
      for (std::size_t i = 0; i < above; ++i) out.Add(scored[i].second, q);
      continue;
    }
    int distinct = 0;
    double previous = -1.0;
    for (const auto& [sim, id] : scored) {
      if (sim != previous) {
        if (++distinct > k) break;
        previous = sim;
      }
      out.Add(id, q);
    }
  }
  out.Finalize();
  return out;
}

}  // namespace erb::oracle
