// References for the online resolve path (src/serve): the from-scratch batch
// rebuild the incremental indexes must stay byte-identical to, plus a
// brute-force pairwise reference that bypasses every index. The differential
// in tests/serve_test.cpp compares all three representations of the same
// resolution at several epoch shapes and thread counts.
#pragma once

#include <vector>

#include "core/candidates.hpp"
#include "core/entity.hpp"
#include "serve/resolver.hpp"

namespace erb::oracle {

/// Batch-rebuild reference: materializes (corpus as E1, queries as E2) into a
/// Dataset and runs the batch sparsenn::EpsilonJoin with the resolver's
/// config — exactly the computation Resolver::Resolve claims to match.
/// Finalized candidate set over (corpus id, query index) pairs.
core::CandidateSet ServeBatchReference(
    const std::vector<core::EntityProfile>& corpus,
    const std::vector<core::EntityProfile>& queries,
    const serve::ServeConfig& config);

/// Brute-force reference: pairwise TokenSetSimilarity (oracle/sparse.hpp)
/// over all corpus x query profiles, no index of any kind. Same pair
/// convention as ServeBatchReference.
core::CandidateSet ServeBruteForce(
    const std::vector<core::EntityProfile>& corpus,
    const std::vector<core::EntityProfile>& queries,
    const serve::ServeConfig& config);

/// Folds resolver results into the references' pair convention: one
/// (match id, query index) pair per match, finalized.
core::CandidateSet ServeResultsToCandidates(
    const std::vector<serve::ResolveResult>& results);

}  // namespace erb::oracle
