#include "oracle/dense.hpp"

#include <algorithm>
#include <utility>

#include "densenn/embedding.hpp"

namespace erb::oracle {

using densenn::DenseMetric;
using densenn::Vector;

// The production kernels (common/simd.hpp) reduce through 8 striped lanes
// folded as ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) with a sequential tail —
// the same expression on every backend, which is what keeps ERB_SIMD
// settings byte-identical. The references replicate that association order
// (per §7a: same arithmetic expression, independent control structure) so
// score comparisons stay exact rather than ULP-bounded.
float DotOracle(const Vector& a, const Vector& b) {
  const std::size_t n = a.size();
  const std::size_t main = n - n % 8;
  float l[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < main; ++i) l[i % 8] += a[i] * b[i];
  float sum = ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
  for (std::size_t i = main; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

float SquaredL2Oracle(const Vector& a, const Vector& b) {
  const std::size_t n = a.size();
  const std::size_t main = n - n % 8;
  float l[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < main; ++i) {
    const float diff = a[i] - b[i];
    l[i % 8] += diff * diff;
  }
  float sum = ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
  for (std::size_t i = main; i < n; ++i) {
    const float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

std::vector<std::uint32_t> ExactKnnOracle(const std::vector<Vector>& vectors,
                                          const Vector& query,
                                          DenseMetric metric, int k) {
  if (k <= 0) return {};
  std::vector<std::pair<float, std::uint32_t>> scored;
  scored.reserve(vectors.size());
  for (std::uint32_t id = 0; id < vectors.size(); ++id) {
    const float score = metric == DenseMetric::kDotProduct
                            ? DotOracle(query, vectors[id])
                            : -SquaredL2Oracle(query, vectors[id]);
    scored.emplace_back(score, id);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  if (scored.size() > static_cast<std::size_t>(k)) {
    scored.resize(static_cast<std::size_t>(k));
  }
  std::vector<std::uint32_t> ids;
  ids.reserve(scored.size());
  for (const auto& [score, id] : scored) ids.push_back(id);
  return ids;
}

std::vector<std::uint32_t> RangeSearchOracle(const std::vector<Vector>& vectors,
                                             const Vector& query,
                                             DenseMetric metric, float radius) {
  std::vector<std::uint32_t> ids;
  for (std::uint32_t id = 0; id < vectors.size(); ++id) {
    const bool within = metric == DenseMetric::kDotProduct
                            ? DotOracle(query, vectors[id]) >= radius
                            : SquaredL2Oracle(query, vectors[id]) <= radius;
    if (within) ids.push_back(id);
  }
  return ids;
}

core::CandidateSet FaissKnnOracle(const core::Dataset& dataset,
                                  core::SchemaMode mode,
                                  const densenn::KnnSearchConfig& config) {
  const int indexed_side = config.reverse ? 1 : 0;
  const int query_side = config.reverse ? 0 : 1;
  const std::vector<Vector> indexed =
      densenn::EmbedSide(dataset, indexed_side, mode, config.clean);
  const std::vector<Vector> queries =
      densenn::EmbedSide(dataset, query_side, mode, config.clean);

  core::CandidateSet out;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::uint32_t id :
         ExactKnnOracle(indexed, queries[q], DenseMetric::kSquaredL2, config.k)) {
      if (config.reverse) {
        out.Add(static_cast<core::EntityId>(q), id);
      } else {
        out.Add(id, static_cast<core::EntityId>(q));
      }
    }
  }
  out.Finalize();
  return out;
}

}  // namespace erb::oracle
