// The six meta-blocking weighting schemes (Section IV-B) as streaming
// kernels over the CSR entity-to-block index.
//
// Two forms with bit-identical results:
//  - PairWeight(): one switch-dispatched evaluation per pair — the reference
//    form the oracle comments and the configuration optimizer use.
//  - The weigher policy structs + BuildWeightTables()/DispatchWeigher(): the
//    hot-path form. Scheme dispatch is hoisted out of the pair loop
//    (templates, no per-pair switch) and the entity-local factors of ECBS
//    (log(|B| / |B_i|)) and EJS (log10(|V| / |v_i|)) are precomputed per
//    entity instead of per pair. Precomputation applies the same operations
//    to the same operands, so every double matches the reference form bit
//    for bit — the determinism contract of comparison.cpp rests on that.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "blocking/entity_index.hpp"
#include "core/entity.hpp"

namespace erb::blocking {

/// Weighting schemes of Meta-blocking. The more and the rarer the blocks two
/// entities share, the higher the weight.
enum class WeightingScheme { kArcs, kCbs, kEcbs, kJs, kEjs, kChiSquared };

/// \brief Human-readable scheme name ("ARCS", "CBS", ...).
/// \param scheme The scheme to name.
std::string_view SchemeName(WeightingScheme scheme);

/// \brief The weight of pair (i, j) under `scheme`, evaluated per pair.
///
/// \param index The entity-to-block index of the collection.
/// \param scheme Weighting scheme to evaluate.
/// \param i E1 entity of the pair.
/// \param j E2 entity of the pair.
/// \param common Number of blocks the pair shares, as produced by
///        EntityBlockIndex::ForEachPair.
/// \param arcs The ARCS accumulator (sum of 1/||b|| over shared blocks), as
///        produced by EntityBlockIndex::ForEachPair; only read for ARCS.
/// \return The pair's weight. For EJS the index's degrees must have been
///         computed (EntityBlockIndex::EnsureDegrees).
double PairWeight(const EntityBlockIndex& index, WeightingScheme scheme,
                  core::EntityId i, core::EntityId j, std::uint32_t common,
                  double arcs);

/// Per-entity factors hoisted out of the pair loop. Only the vectors the
/// chosen scheme reads are populated (BuildWeightTables).
struct WeightTables {
  /// max(1, number of blocks), the |B| of ECBS and the n of X2.
  double total_blocks = 1.0;
  std::vector<double> ecbs1;  ///< ECBS: log(|B| / |B_i|) per E1 entity.
  std::vector<double> ecbs2;  ///< ECBS: log(|B| / |B_j|) per E2 entity.
  std::vector<double> ejs1;   ///< EJS: log10(|V| / |v_i|) per E1 entity.
  std::vector<double> ejs2;   ///< EJS: log10(|V| / |v_j|) per E2 entity.
};

/// \brief Precomputes the per-entity factors `scheme` needs over `index`.
/// \param index The entity-to-block index; for EJS its degrees must have
///        been computed (EntityBlockIndex::EnsureDegrees).
/// \param scheme The scheme the tables will serve.
/// \return Tables with exactly the vectors `scheme` reads populated.
WeightTables BuildWeightTables(const EntityBlockIndex& index,
                               WeightingScheme scheme);

/// ARCS: the precomputed accumulator itself (sum of 1/||b|| over shared
/// blocks).
struct ArcsWeigher {
  static constexpr bool kNeedsArcs = true;
  double operator()(core::EntityId, core::EntityId, std::uint32_t,
                    double arcs) const {
    return arcs;
  }
};

/// CBS: the number of shared blocks.
struct CbsWeigher {
  static constexpr bool kNeedsArcs = false;
  double operator()(core::EntityId, core::EntityId, std::uint32_t common,
                    double) const {
    return static_cast<double>(common);
  }
};

/// ECBS: CBS rescaled by each entity's hoisted log(|B| / |B_i|) factor.
struct EcbsWeigher {
  static constexpr bool kNeedsArcs = false;
  const double* log1;
  const double* log2;
  double operator()(core::EntityId i, core::EntityId j, std::uint32_t common,
                    double) const {
    return static_cast<double>(common) * log1[i] * log2[j];
  }
};

/// JS: Jaccard coefficient of the two entities' block sets.
struct JsWeigher {
  static constexpr bool kNeedsArcs = false;
  const EntityBlockIndex* index;
  double operator()(core::EntityId i, core::EntityId j, std::uint32_t common,
                    double) const {
    const double bi = static_cast<double>(index->BlocksOf1(i));
    const double bj = static_cast<double>(index->BlocksOf2(j));
    const double c = static_cast<double>(common);
    return c / (bi + bj - c);
  }
};

/// EJS: JS rescaled by each entity's hoisted log10(|V| / |v_i|) factor.
struct EjsWeigher {
  static constexpr bool kNeedsArcs = false;
  const EntityBlockIndex* index;
  const double* log1;
  const double* log2;
  double operator()(core::EntityId i, core::EntityId j, std::uint32_t common,
                    double) const {
    const double bi = static_cast<double>(index->BlocksOf1(i));
    const double bj = static_cast<double>(index->BlocksOf2(j));
    const double c = static_cast<double>(common);
    const double js = c / (bi + bj - c);
    return js * log1[i] * log2[j];
  }
};

/// Pearson chi-squared: independence test of the entities' block
/// participations.
struct ChiSquaredWeigher {
  static constexpr bool kNeedsArcs = false;
  const EntityBlockIndex* index;
  double total_blocks;
  double operator()(core::EntityId i, core::EntityId j, std::uint32_t common,
                    double) const {
    const double bi = static_cast<double>(index->BlocksOf1(i));
    const double bj = static_cast<double>(index->BlocksOf2(j));
    const double n = total_blocks;
    const double c = static_cast<double>(common);
    const double o11 = c;
    const double o12 = bi - c;
    const double o21 = bj - c;
    const double o22 = n - bi - bj + c;
    const double denom = bi * bj * (n - bi) * (n - bj);
    if (denom <= 0.0) return 0.0;
    const double diff = o11 * o22 - o12 * o21;
    return n * diff * diff / denom;
  }
};

/// \brief Invokes `fn` with the weigher policy object for `scheme`.
///
/// \param index The entity-to-block index the weighers read.
/// \param scheme The scheme to dispatch on.
/// \param tables Hoisted per-entity factors from BuildWeightTables (must
///        have been built for the same scheme and must outlive the call).
/// \param fn Generic callable invoked as `fn(weigher)`; its instantiations
///        carry the scheme dispatch out of the per-pair loop.
/// \return Whatever `fn` returns.
template <typename Fn>
auto DispatchWeigher(const EntityBlockIndex& index, WeightingScheme scheme,
                     const WeightTables& tables, Fn&& fn) {
  switch (scheme) {
    case WeightingScheme::kArcs:
      return fn(ArcsWeigher{});
    case WeightingScheme::kCbs:
      return fn(CbsWeigher{});
    case WeightingScheme::kEcbs:
      return fn(EcbsWeigher{tables.ecbs1.data(), tables.ecbs2.data()});
    case WeightingScheme::kJs:
      return fn(JsWeigher{&index});
    case WeightingScheme::kEjs:
      return fn(EjsWeigher{&index, tables.ejs1.data(), tables.ejs2.data()});
    case WeightingScheme::kChiSquared:
      return fn(ChiSquaredWeigher{&index, tables.total_blocks});
  }
  return fn(CbsWeigher{});  // unreachable; keeps -Wreturn-type quiet
}

}  // namespace erb::blocking
