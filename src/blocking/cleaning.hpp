// Block cleaning (Section IV-B): Block Purging and Block Filtering, the two
// optional coarse-grained steps between block building and comparison
// cleaning in the workflow of Figure 1.
#pragma once

#include "blocking/block.hpp"

namespace erb::blocking {

/// \brief Block Purging (parameter-free). Removes the oversized blocks that
///        emanate from stop-word-like signatures.
///
/// Two complementary criteria, both parameter-free:
///  1. Size: a block holding more than half of all input entities is purged
///     (the paper's own characterization of stop-word blocks).
///  2. Comparisons: scanning distinct comparison cardinalities in ascending
///     order, the cumulative comparisons-per-assignment ratio is tracked;
///     every level above the last disproportionate jump of that ratio is
///     purged — those blocks add comparisons much faster than they add
///     (potentially matching) entity assignments.
///
/// \param blocks Collection to purge in place; block order is preserved.
/// \param n1 Number of E1 entities of the input dataset.
/// \param n2 Number of E2 entities of the input dataset.
void BlockPurging(BlockCollection* blocks, std::size_t n1, std::size_t n2);

/// \brief Block Filtering: retains each entity only in the
///        ceil(ratio * |blocks of the entity|) smallest of its blocks
///        (minimum one), ties on cardinality broken by ascending block
///        index.
///
/// \param blocks Collection to filter in place. Surviving blocks keep their
///        relative order with member lists in ascending entity id; blocks
///        that lose one side are dropped.
/// \param ratio Fraction of each entity's blocks to keep, in (0, 1];
///        ratio >= 1 keeps everything (no-op).
/// \param n1 Number of E1 entities of the input dataset.
/// \param n2 Number of E2 entities of the input dataset.
void BlockFiltering(BlockCollection* blocks, double ratio,
                    std::size_t n1, std::size_t n2);

}  // namespace erb::blocking
