#include "blocking/entity_index.hpp"

namespace erb::blocking {

EntityBlockIndex::EntityBlockIndex(const BlockCollection& blocks,
                                   std::size_t n1, std::size_t n2)
    : blocks_(&blocks), n1_(n1), n2_(n2) {
  // Pass 1: count E1 assignments per entity and E2 members per block.
  e1_offsets_.assign(n1 + 1, 0);
  e2_block_counts_.assign(n2, 0);
  b2_offsets_.assign(blocks.size() + 1, 0);
  std::size_t total_members2 = 0;
  for (std::uint32_t b = 0; b < blocks.size(); ++b) {
    for (core::EntityId id : blocks[b].e1) ++e1_offsets_[id + 1];
    for (core::EntityId id : blocks[b].e2) ++e2_block_counts_[id];
    total_members2 += blocks[b].e2.size();
    b2_offsets_[b + 1] = static_cast<std::uint32_t>(total_members2);
  }
  for (std::size_t i = 0; i < n1; ++i) e1_offsets_[i + 1] += e1_offsets_[i];

  // Pass 2: fill. Iterating blocks in ascending id keeps every entity's
  // block-id run ascending — the order the ARCS accumulator and the pair
  // streamer's floating-point sums are pinned to.
  e1_blocks_.resize(e1_offsets_[n1]);
  b2_members_.resize(total_members2);
  inv_comparisons_.resize(blocks.size());
  std::vector<std::uint32_t> cursor(e1_offsets_.begin(),
                                    e1_offsets_.end() - 1);
  for (std::uint32_t b = 0; b < blocks.size(); ++b) {
    for (core::EntityId id : blocks[b].e1) e1_blocks_[cursor[id]++] = b;
    std::copy(blocks[b].e2.begin(), blocks[b].e2.end(),
              b2_members_.begin() + b2_offsets_[b]);
    inv_comparisons_[b] =
        1.0 / static_cast<double>(blocks[b].Comparisons());
  }
}

void EntityBlockIndex::EnsureDegrees() const {
  if (degrees_ready_) return;
  degree1_.assign(n1_, 0);
  degree2_.assign(n2_, 0);
  total_pairs_ = 0;
  // Degrees are integer counts per distinct pair: order-independent, so the
  // unsorted arcs-free stream suffices.
  Stream<false, false>(
      0, n1_, [this](core::EntityId i, core::EntityId j, std::uint32_t, double) {
        ++degree1_[i];
        ++degree2_[j];
        ++total_pairs_;
      });
  degrees_ready_ = true;
}

}  // namespace erb::blocking
