#include "blocking/entity_index.hpp"

#include "common/buildpar.hpp"
#include "common/parallel.hpp"
#include "obs/trace.hpp"

namespace erb::blocking {

EntityBlockIndex::EntityBlockIndex(const BlockCollection& blocks,
                                   std::size_t n1, std::size_t n2)
    : blocks_(&blocks), n1_(n1), n2_(n2) {
  const std::size_t nb = blocks.size();
  e1_offsets_.assign(n1 + 1, 0);
  e2_block_counts_.assign(n2, 0);
  b2_offsets_.assign(nb + 1, 0);

  const std::size_t grain = BuildGrain(nb);
  const std::size_t num_chunks = NumBuildChunks(nb);

  if (!UseChunkedBuild()) {
    // Sequential fast path (single-threaded pool): count straight into the
    // offset arrays — no per-chunk partials, one cursor array for the fill.
    // The block scan order is the order the chunked segments concatenate in,
    // so the CSR is byte-identical either way.
    for (std::size_t b = 0; b < nb; ++b) {
      for (core::EntityId id : blocks[b].e1) ++e1_offsets_[id + 1];
      for (core::EntityId id : blocks[b].e2) ++e2_block_counts_[id];
      b2_offsets_[b + 1] = static_cast<std::uint32_t>(blocks[b].e2.size());
    }
    for (std::size_t i = 0; i < n1; ++i) e1_offsets_[i + 1] += e1_offsets_[i];
    for (std::size_t b = 0; b < nb; ++b) b2_offsets_[b + 1] += b2_offsets_[b];

    e1_blocks_.resize(e1_offsets_[n1]);
    b2_members_.resize(b2_offsets_[nb]);
    inv_comparisons_.resize(nb);
    std::vector<std::uint32_t> cursor(e1_offsets_.begin(),
                                      e1_offsets_.end() - 1);
    for (std::size_t b = 0; b < nb; ++b) {
      for (core::EntityId id : blocks[b].e1) {
        e1_blocks_[cursor[id]++] = static_cast<std::uint32_t>(b);
      }
      std::copy(blocks[b].e2.begin(), blocks[b].e2.end(),
                b2_members_.begin() + b2_offsets_[b]);
      inv_comparisons_[b] = 1.0 / static_cast<double>(blocks[b].Comparisons());
    }
    obs::CounterAdd("build.chunks_merged", num_chunks);
    return;
  }

  // Pass 1 (parallel): each chunk of blocks counts E1 assignments and E2
  // memberships per entity into private arrays; the fixed chunk count
  // (kBuildChunks) bounds the transient memory and keeps the decomposition
  // independent of ERB_THREADS.
  std::vector<std::vector<std::uint32_t>> counts1(num_chunks);
  std::vector<std::vector<std::uint32_t>> counts2(num_chunks);
  ParallelFor(0, nb, grain, [&](std::size_t begin, std::size_t end) {
    const std::size_t c = begin / grain;
    counts1[c].assign(n1, 0);
    counts2[c].assign(n2, 0);
    for (std::size_t b = begin; b < end; ++b) {
      for (core::EntityId id : blocks[b].e1) ++counts1[c][id];
      for (core::EntityId id : blocks[b].e2) ++counts2[c][id];
      b2_offsets_[b + 1] = static_cast<std::uint32_t>(blocks[b].e2.size());
    }
  });

  // Fold the chunk partials (each entity's column is independent) and turn
  // each chunk's E1 count into its pass-2 write cursor: chunk c's block ids
  // for an entity start where the prior chunks' ids for it end.
  ParallelFor(0, n1, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t id = begin; id < end; ++id) {
      std::uint32_t sum = 0;
      for (std::size_t c = 0; c < num_chunks; ++c) sum += counts1[c][id];
      e1_offsets_[id + 1] = sum;
    }
  });
  ParallelFor(0, n2, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t id = begin; id < end; ++id) {
      std::uint32_t sum = 0;
      for (std::size_t c = 0; c < num_chunks; ++c) sum += counts2[c][id];
      e2_block_counts_[id] = sum;
    }
  });
  for (std::size_t i = 0; i < n1; ++i) e1_offsets_[i + 1] += e1_offsets_[i];
  for (std::size_t b = 0; b < nb; ++b) b2_offsets_[b + 1] += b2_offsets_[b];
  ParallelFor(0, n1, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t id = begin; id < end; ++id) {
      std::uint32_t cursor = e1_offsets_[id];
      for (std::size_t c = 0; c < num_chunks; ++c) {
        const std::uint32_t count = counts1[c][id];
        counts1[c][id] = cursor;
        cursor += count;
      }
    }
  });

  // Pass 2 (parallel): fill. Each chunk iterates its blocks in ascending id
  // and the chunks' segments are ordered, so every entity's block-id run
  // ascends — the order the ARCS accumulator and the pair streamer's
  // floating-point sums are pinned to. The E2 member copy and the ARCS
  // reciprocal write into disjoint per-block segments.
  e1_blocks_.resize(e1_offsets_[n1]);
  b2_members_.resize(b2_offsets_[nb]);
  inv_comparisons_.resize(nb);
  ParallelFor(0, nb, grain, [&](std::size_t begin, std::size_t end) {
    auto& cursor = counts1[begin / grain];
    for (std::size_t b = begin; b < end; ++b) {
      for (core::EntityId id : blocks[b].e1) {
        e1_blocks_[cursor[id]++] = static_cast<std::uint32_t>(b);
      }
    }
  });
  ParallelFor(0, nb, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t b = begin; b < end; ++b) {
      std::copy(blocks[b].e2.begin(), blocks[b].e2.end(),
                b2_members_.begin() + b2_offsets_[b]);
      inv_comparisons_[b] = 1.0 / static_cast<double>(blocks[b].Comparisons());
    }
  });

  obs::CounterAdd("build.chunks_merged", num_chunks);
}

void EntityBlockIndex::EnsureDegrees() const {
  if (degrees_ready_) return;
  degree1_.assign(n1_, 0);
  degree2_.assign(n2_, 0);
  total_pairs_ = 0;
  // Degrees are integer counts per distinct pair: order-independent, so the
  // unsorted arcs-free stream suffices.
  Stream<false, false>(
      0, n1_, [this](core::EntityId i, core::EntityId j, std::uint32_t, double) {
        ++degree1_[i];
        ++degree2_[j];
        ++total_pairs_;
      });
  degrees_ready_ = true;
}

}  // namespace erb::blocking
