#include "blocking/cleaning.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "obs/trace.hpp"

namespace erb::blocking {

void BlockPurging(BlockCollection* blocks, std::size_t n1, std::size_t n2) {
  if (blocks->empty()) return;
  const std::size_t before = blocks->size();

  // Criterion 1: purge blocks with more than half of all input entities.
  const std::size_t half_entities = (n1 + n2) / 2;
  std::erase_if(*blocks, [half_entities](const Block& b) {
    return b.Assignments() > half_entities;
  });
  if (blocks->empty()) {
    obs::CounterAdd("blocking.purged_blocks", before);
    return;
  }

  // Criterion 2 follows. Aggregate comparisons/assignments per distinct
  // comparison cardinality: one (cardinality, assignments) entry per block,
  // sorted, then swept grouping equal cardinalities — same ascending-level
  // aggregation the former std::map produced, without the node allocations.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> levels;
  levels.reserve(blocks->size());
  for (const auto& block : *blocks) {
    levels.emplace_back(block.Comparisons(), block.Assignments());
  }
  std::sort(levels.begin(), levels.end());

  // Ascending scan over cumulative comparisons-per-assignment. The retained
  // maximum cardinality is the level just below the *last* disproportionate
  // jump of that ratio: the oversized stop-word blocks at the top of the
  // distribution add comparisons much faster than assignments, while the
  // mid-frequency blocks keep the cumulative ratio nearly flat. Everything
  // below the last jump is kept — purging is deliberately conservative,
  // removing only the largest blocks.
  constexpr double kSmoothing = 1.025;
  std::uint64_t cum_comparisons = 0;
  std::uint64_t cum_assignments = 0;
  double previous_ratio = 0.0;
  std::uint64_t previous_cardinality = 0;
  std::uint64_t cut = levels.back().first;  // no jump -> keep everything
  for (std::size_t idx = 0; idx < levels.size();) {
    const std::uint64_t cardinality = levels[idx].first;
    while (idx < levels.size() && levels[idx].first == cardinality) {
      cum_comparisons += cardinality;
      cum_assignments += levels[idx].second;
      ++idx;
    }
    const double ratio = static_cast<double>(cum_comparisons) /
                         static_cast<double>(cum_assignments);
    if (previous_ratio > 0.0 && ratio > kSmoothing * previous_ratio) {
      cut = previous_cardinality;
    }
    previous_ratio = ratio;
    previous_cardinality = cardinality;
  }
  std::erase_if(*blocks, [cut](const Block& b) { return b.Comparisons() > cut; });
  obs::CounterAdd("blocking.purged_blocks", before - blocks->size());
}

void BlockFiltering(BlockCollection* blocks, double ratio, std::size_t n1,
                    std::size_t n2) {
  if (ratio >= 1.0 || blocks->empty()) return;
  const std::size_t before = blocks->size();

  // Each side's entity -> (cardinality, block index) assignments as one
  // contiguous CSR array (two counting passes), in place of a
  // vector-of-vectors: each entity's entries occupy
  // [offsets[id], offsets[id+1]) and run in ascending block index, so block
  // index breaks every cardinality tie exactly as before.
  using Entry = std::pair<std::uint64_t, std::uint32_t>;
  const auto build_side = [blocks](int side, std::size_t count,
                                   std::vector<std::uint32_t>* offsets,
                                   std::vector<Entry>* entries) {
    offsets->assign(count + 1, 0);
    for (const Block& block : *blocks) {
      for (core::EntityId id : side == 0 ? block.e1 : block.e2) {
        ++(*offsets)[id + 1];
      }
    }
    for (std::size_t id = 0; id < count; ++id) {
      (*offsets)[id + 1] += (*offsets)[id];
    }
    entries->resize(offsets->back());
    std::vector<std::uint32_t> cursor(offsets->begin(), offsets->end() - 1);
    for (std::uint32_t b = 0; b < blocks->size(); ++b) {
      const std::uint64_t cardinality = (*blocks)[b].Comparisons();
      for (core::EntityId id : side == 0 ? (*blocks)[b].e1 : (*blocks)[b].e2) {
        (*entries)[cursor[id]++] = Entry(cardinality, b);
      }
    }
  };

  // Per entity, move the ceil(ratio * count) smallest entries (min one) to
  // the front of its CSR range. Subranges are disjoint, so the selection
  // runs in parallel; the retained *set* per entity is order-independent.
  const auto select = [ratio](const std::vector<std::uint32_t>& offsets,
                              std::vector<Entry>* entries,
                              std::vector<std::uint32_t>* kept) {
    const std::size_t count = offsets.size() - 1;
    kept->assign(count, 0);
    ParallelFor(0, count, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
      for (std::size_t id = begin; id < end; ++id) {
        const std::size_t size = offsets[id + 1] - offsets[id];
        if (size == 0) continue;
        const std::size_t keep = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::ceil(ratio * static_cast<double>(size))));
        if (keep < size) {
          Entry* base = entries->data() + offsets[id];
          std::nth_element(base, base + keep - 1, base + size);
          (*kept)[id] = static_cast<std::uint32_t>(keep);
        } else {
          (*kept)[id] = static_cast<std::uint32_t>(size);
        }
      }
    });
  };

  std::vector<std::uint32_t> offsets;
  std::vector<Entry> entries;
  std::vector<std::uint32_t> kept;
  BlockCollection filtered(blocks->size());
  for (int side = 0; side < 2; ++side) {
    const std::size_t count = side == 0 ? n1 : n2;
    build_side(side, count, &offsets, &entries);
    select(offsets, &entries, &kept);
    // Rebuild iterating entity ids in ascending order, so every surviving
    // block's member list stays ascending regardless of the selection's
    // internal ordering.
    for (std::size_t id = 0; id < count; ++id) {
      for (std::uint32_t n = 0; n < kept[id]; ++n) {
        const std::uint32_t b = entries[offsets[id] + n].second;
        auto& block = filtered[b];
        (side == 0 ? block.e1 : block.e2)
            .push_back(static_cast<core::EntityId>(id));
      }
    }
  }

  DropUselessBlocks(&filtered);
  *blocks = std::move(filtered);
  obs::CounterAdd("blocking.filtered_blocks", before - blocks->size());
}

}  // namespace erb::blocking
