#include "blocking/cleaning.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

namespace erb::blocking {

void BlockPurging(BlockCollection* blocks, std::size_t n1, std::size_t n2) {
  if (blocks->empty()) return;

  // Criterion 1: purge blocks with more than half of all input entities.
  const std::size_t half_entities = (n1 + n2) / 2;
  std::erase_if(*blocks, [half_entities](const Block& b) {
    return b.Assignments() > half_entities;
  });
  if (blocks->empty()) return;

  // Criterion 2 follows. Aggregate comparisons/assignments per distinct
  // comparison cardinality.
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> levels;
  for (const auto& block : *blocks) {
    auto& [comparisons, assignments] = levels[block.Comparisons()];
    comparisons += block.Comparisons();
    assignments += block.Assignments();
  }

  // Ascending scan over cumulative comparisons-per-assignment. The retained
  // maximum cardinality is the level just below the *last* disproportionate
  // jump of that ratio: the oversized stop-word blocks at the top of the
  // distribution add comparisons much faster than assignments, while the
  // mid-frequency blocks keep the cumulative ratio nearly flat. Everything
  // below the last jump is kept — purging is deliberately conservative,
  // removing only the largest blocks.
  constexpr double kSmoothing = 1.025;
  std::uint64_t cum_comparisons = 0;
  std::uint64_t cum_assignments = 0;
  double previous_ratio = 0.0;
  std::uint64_t previous_cardinality = 0;
  std::uint64_t cut = levels.rbegin()->first;  // no jump -> keep everything
  for (const auto& [cardinality, totals] : levels) {
    cum_comparisons += totals.first;
    cum_assignments += totals.second;
    const double ratio =
        static_cast<double>(cum_comparisons) / static_cast<double>(cum_assignments);
    if (previous_ratio > 0.0 && ratio > kSmoothing * previous_ratio) {
      cut = previous_cardinality;
    }
    previous_ratio = ratio;
    previous_cardinality = cardinality;
  }
  std::erase_if(*blocks, [cut](const Block& b) { return b.Comparisons() > cut; });
}

void BlockFiltering(BlockCollection* blocks, double ratio, std::size_t n1,
                    std::size_t n2) {
  if (ratio >= 1.0 || blocks->empty()) return;

  // Collect each entity's blocks as (cardinality, block index), then keep the
  // entity in the ceil(ratio * count) smallest ones.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>> per_e1(n1);
  std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>> per_e2(n2);
  for (std::uint32_t b = 0; b < blocks->size(); ++b) {
    const std::uint64_t cardinality = (*blocks)[b].Comparisons();
    for (core::EntityId id : (*blocks)[b].e1) per_e1[id].emplace_back(cardinality, b);
    for (core::EntityId id : (*blocks)[b].e2) per_e2[id].emplace_back(cardinality, b);
  }

  BlockCollection filtered(blocks->size());
  auto retain = [&filtered, ratio](
                    std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>>&
                        per_entity,
                    int side) {
    for (std::size_t id = 0; id < per_entity.size(); ++id) {
      auto& entity_blocks = per_entity[id];
      if (entity_blocks.empty()) continue;
      const std::size_t keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(ratio * static_cast<double>(entity_blocks.size()))));
      if (keep < entity_blocks.size()) {
        std::nth_element(entity_blocks.begin(), entity_blocks.begin() + keep - 1,
                         entity_blocks.end());
        entity_blocks.resize(keep);
      }
      for (const auto& [_, b] : entity_blocks) {
        auto& block = filtered[b];
        (side == 0 ? block.e1 : block.e2)
            .push_back(static_cast<core::EntityId>(id));
      }
    }
  };
  retain(per_e1, 0);
  retain(per_e2, 1);

  DropUselessBlocks(&filtered);
  *blocks = std::move(filtered);
}

}  // namespace erb::blocking
