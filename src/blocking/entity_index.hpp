// The CSR entity-to-block index behind comparison cleaning: streaming access
// to the distinct candidate pairs of a block collection together with the
// co-occurrence statistics the meta-blocking weighting schemes consume.
//
// Layout (mirrors the ScanCount CSR postings of src/sparsenn): instead of one
// heap-allocated block-id vector per E1 entity, the index keeps two
// contiguous arrays per direction —
//
//   e1_offsets_[i] .. e1_offsets_[i+1]   block ids of E1 entity i (ascending,
//                                        duplicates preserved) in e1_blocks_
//   b2_offsets_[b] .. b2_offsets_[b+1]   E2 members of block b (stored block
//                                        order) in b2_members_
//
// built in two counting passes (count, prefix-sum, fill), so a pair stream
// walks two flat arrays instead of chasing a vector header per entity and a
// member vector per block. The reciprocal comparison count of every block
// (the ARCS term) is precomputed once at build time.
//
// Exposed separately from comparison.cpp so the configuration optimizer can
// evaluate every weighting scheme and pruning algorithm over shared passes
// instead of re-running meta-blocking 42 times per block collection.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "blocking/block.hpp"

namespace erb::blocking {

/// \brief CSR entity-to-block index for both sides plus the pair streamers.
///
/// Replaces the per-pair blocking graph: no edge list is ever materialized.
/// The index borrows `blocks` (it keeps a pointer) and must not outlive it.
class EntityBlockIndex {
 public:
  /// \brief Builds the index over `blocks` in two counting passes.
  /// \param blocks Block collection to index; borrowed, not copied.
  /// \param n1 Number of E1 (first-source) entities; member ids in
  ///           `Block::e1` must be smaller.
  /// \param n2 Number of E2 (second-source) entities; member ids in
  ///           `Block::e2` must be smaller.
  EntityBlockIndex(const BlockCollection& blocks, std::size_t n1,
                   std::size_t n2);

  /// \brief Streams the distinct inter-source pairs whose E1 node lies in
  ///        [i_begin, i_end).
  ///
  /// Invokes `fn(i, j, common_blocks, arcs_weight)` exactly once per distinct
  /// pair. `arcs_weight` is the ARCS accumulator (sum of 1/||b|| over shared
  /// blocks) when `kNeedArcs`, else 0.0 — callers whose weighting scheme
  /// ignores it skip one double-array touch per block assignment.
  ///
  /// When `kSorted`, pairs stream in ascending (i, j) order: the weighted
  /// sums the meta-blocking statistics pass accumulates from this stream are
  /// then associated the same way no matter how the blocks order their
  /// members, which pins the floating-point results exactly. When `!kSorted`
  /// the per-node emission order is first-touch (no sort) — valid for
  /// consumers that are order-independent per node (integer counts, or
  /// retention passes whose output is sorted afterwards).
  ///
  /// The co-occurrence scratch is local to the call, so disjoint ranges can
  /// be streamed from different threads concurrently (the parallel
  /// meta-blocking passes do exactly that).
  template <bool kNeedArcs, bool kSorted, typename Fn>
  void Stream(std::size_t i_begin, std::size_t i_end, Fn&& fn) const {
    std::vector<std::uint32_t> common(n2_, 0);
    std::vector<double> arcs(kNeedArcs ? n2_ : 0, 0.0);
    std::vector<core::EntityId> touched;
    i_end = std::min(i_end, n1_);
    for (std::size_t i = i_begin; i < i_end; ++i) {
      touched.clear();
      const std::uint32_t* block_ids = e1_blocks_.data() + e1_offsets_[i];
      const std::uint32_t num_blocks = e1_offsets_[i + 1] - e1_offsets_[i];
      for (std::uint32_t n = 0; n < num_blocks; ++n) {
        const std::uint32_t b = block_ids[n];
        const double inv = kNeedArcs ? inv_comparisons_[b] : 0.0;
        const core::EntityId* members = b2_members_.data() + b2_offsets_[b];
        const std::uint32_t num_members = b2_offsets_[b + 1] - b2_offsets_[b];
        for (std::uint32_t m = 0; m < num_members; ++m) {
          const core::EntityId j = members[m];
          if (common[j] == 0) touched.push_back(j);
          ++common[j];
          if constexpr (kNeedArcs) arcs[j] += inv;
        }
      }
      if constexpr (kSorted) std::sort(touched.begin(), touched.end());
      for (core::EntityId j : touched) {
        fn(static_cast<core::EntityId>(i), j, common[j],
           kNeedArcs ? arcs[j] : 0.0);
        common[j] = 0;
        if constexpr (kNeedArcs) arcs[j] = 0.0;
      }
    }
  }

  /// \brief Legacy-shaped streamer: sorted emission with the ARCS
  ///        accumulator, over E1 nodes in [i_begin, i_end).
  /// \param i_begin First E1 node of the range.
  /// \param i_end One past the last E1 node (clamped to n1).
  /// \param fn Callable `fn(i, j, common_blocks, arcs_weight)`.
  template <typename Fn>
  void ForEachPairInRange(std::size_t i_begin, std::size_t i_end,
                          Fn&& fn) const {
    Stream<true, true>(i_begin, i_end, std::forward<Fn>(fn));
  }

  /// \brief Streams every distinct inter-source pair (all of E1's nodes) in
  ///        ascending (i, j) order with the ARCS accumulator.
  /// \param fn Callable `fn(i, j, common_blocks, arcs_weight)`.
  template <typename Fn>
  void ForEachPair(Fn&& fn) const {
    Stream<true, true>(0, n1_, std::forward<Fn>(fn));
  }

  /// \brief Number of E1 entities the index was built for.
  std::size_t n1() const { return n1_; }
  /// \brief Number of E2 entities the index was built for.
  std::size_t n2() const { return n2_; }
  /// \brief Number of blocks in the indexed collection.
  std::size_t NumBlocks() const { return b2_offsets_.size() - 1; }
  /// \brief Number of block assignments of E1 entity `i` (|B_i|).
  std::size_t BlocksOf1(core::EntityId i) const {
    return e1_offsets_[i + 1] - e1_offsets_[i];
  }
  /// \brief Number of block assignments of E2 entity `j` (|B_j|).
  std::size_t BlocksOf2(core::EntityId j) const { return e2_block_counts_[j]; }

  /// \brief Computes the number of distinct pairs and per-entity degrees
  ///        (|v_i| of EJS) on first call (one extra streaming pass).
  void EnsureDegrees() const;
  /// \brief Number of distinct inter-source pairs (valid after
  ///        EnsureDegrees).
  std::uint64_t TotalPairs() const { return total_pairs_; }
  /// \brief Blocking-graph degree of E1 entity `i` (valid after
  ///        EnsureDegrees).
  std::uint32_t Degree1(core::EntityId i) const { return degree1_[i]; }
  /// \brief Blocking-graph degree of E2 entity `j` (valid after
  ///        EnsureDegrees).
  std::uint32_t Degree2(core::EntityId j) const { return degree2_[j]; }

  /// \brief The indexed collection (borrowed).
  const BlockCollection& blocks() const { return *blocks_; }

 private:
  const BlockCollection* blocks_;
  std::size_t n1_;
  std::size_t n2_;

  // CSR E1 entity -> block ids (ascending per entity, duplicates preserved).
  std::vector<std::uint32_t> e1_offsets_;
  std::vector<std::uint32_t> e1_blocks_;
  // CSR block -> E2 members (stored block order, duplicates preserved).
  std::vector<std::uint32_t> b2_offsets_;
  std::vector<core::EntityId> b2_members_;
  // 1 / Block::Comparisons() per block: the ARCS term, hoisted out of the
  // pair stream's inner loop.
  std::vector<double> inv_comparisons_;
  std::vector<std::uint32_t> e2_block_counts_;

  mutable bool degrees_ready_ = false;
  mutable std::uint64_t total_pairs_ = 0;
  mutable std::vector<std::uint32_t> degree1_;
  mutable std::vector<std::uint32_t> degree2_;
};

}  // namespace erb::blocking
