#include "blocking/graph.hpp"

namespace erb::blocking {

PairGraph::PairGraph(const BlockCollection& blocks, std::size_t n1,
                     std::size_t n2)
    : blocks_(&blocks), n2_(n2) {
  e1_blocks_.resize(n1);
  e2_block_counts_.assign(n2, 0);
  for (std::uint32_t b = 0; b < blocks.size(); ++b) {
    for (core::EntityId id : blocks[b].e1) e1_blocks_[id].push_back(b);
    for (core::EntityId id : blocks[b].e2) ++e2_block_counts_[id];
  }
}

void PairGraph::EnsureDegrees() const {
  if (degrees_ready_) return;
  degree1_.assign(e1_blocks_.size(), 0);
  degree2_.assign(n2_, 0);
  total_pairs_ = 0;
  ForEachPair([this](core::EntityId i, core::EntityId j, std::uint32_t, double) {
    ++degree1_[i];
    ++degree2_[j];
    ++total_pairs_;
  });
  degrees_ready_ = true;
}

}  // namespace erb::blocking
