// Block building methods (Section IV-B): Standard, Q-Grams, Extended
// Q-Grams, Suffix Arrays and Extended Suffix Arrays Blocking.
//
// All methods derive signatures from the entity's textual representation
// under the chosen schema mode and cluster entities with identical signatures
// into blocks.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "blocking/block.hpp"
#include "core/entity.hpp"

namespace erb::blocking {

/// \brief The five block-building methods of the benchmark.
enum class BuilderKind {
  kStandard,
  kQGrams,
  kExtendedQGrams,
  kSuffixArrays,
  kExtendedSuffixArrays,
};

/// \brief Human-readable name (for reports and Table VIII output).
/// \param kind The builder to name.
std::string_view BuilderName(BuilderKind kind);

/// \brief Parameters of a block builder (Table III domains).
struct BuilderConfig {
  BuilderKind kind = BuilderKind::kStandard;
  int q = 3;           ///< q-gram length, [2, 6]
  double t = 0.9;      ///< Extended Q-Grams combination threshold, [0.8, 1.0)
  int l_min = 3;       ///< minimum suffix/substring length, [2, 6]
  int b_max = 50;      ///< maximum entities per (extended) suffix block, [2, 100]
};

/// \brief Extracts the blocking keys (signatures) of one textual value under
///        the given configuration. Exposed for testing and for the paper's
///        "Joe Biden" worked example.
/// \param text The textual value to derive signatures from.
/// \param config Builder kind and its parameters.
std::vector<std::string> ExtractKeys(std::string_view text,
                                     const BuilderConfig& config);

/// \brief Reusable buffers for ExtractKeysInto. The normalized text and (for
///        Extended Q-Grams) the concatenated-key arena back the key views and
///        keep their capacity across calls, so a per-entity extraction loop
///        settles into zero allocations per entity.
struct KeyScratch {
  std::string normalized;  ///< normalized text the key views point into
  std::string extended;    ///< arena for concatenated Extended Q-Grams keys
  std::vector<std::pair<std::size_t, std::size_t>> spans;  ///< arena (off, len)
  std::vector<std::string_view> grams;  ///< per-token gram scratch
  std::vector<std::string_view> keys;   ///< result: sorted, deduplicated
};

/// \brief Allocation-avoiding ExtractKeys: fills scratch->keys with views
///        into the scratch buffers. The views are invalidated by the next
///        call (or by destroying the scratch).
void ExtractKeysInto(std::string_view text, const BuilderConfig& config,
                     KeyScratch* scratch);

/// \brief Builds the block collection of `dataset` under `mode`.
///
/// For the proactive Suffix-Arrays-based methods the b_max bound is enforced
/// here: blocks with b_max or more entities are discarded during building, as
/// the methods define. Lazy builders return every block with both sides
/// non-empty, relying on block/comparison cleaning downstream.
///
/// \param dataset The two entity sources to block.
/// \param mode Schema-agnostic or schema-aware key derivation.
/// \param config Builder kind and its parameters.
BlockCollection BuildBlocks(const core::Dataset& dataset, core::SchemaMode mode,
                            const BuilderConfig& config);

}  // namespace erb::blocking
