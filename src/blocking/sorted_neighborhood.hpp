// Sorted Neighborhood (Hernandez & Stolfo): entities are sorted by their
// blocking keys and a fixed-size window slides over the sorted sequence;
// every cross-source pair inside a window becomes a candidate.
//
// The paper evaluated this method but excluded it from the tables because it
// consistently underperforms the block-building methods (it is incompatible
// with block/comparison cleaning). It is provided here so that finding can be
// reproduced (see bench_ablation).
#pragma once

#include "core/candidates.hpp"
#include "core/entity.hpp"

namespace erb::blocking {

/// \brief Runs Sorted Neighborhood with the given window size. Keys are the
///        normalized tokens of each entity's text under `mode`; an entity
///        appears in the sorted sequence once per distinct token, as in the
///        schema-agnostic adaptations of the method.
/// \param dataset The two entity sources to pair up.
/// \param mode Schema-agnostic or schema-aware key derivation.
/// \param window Sliding window size, at least 2.
core::CandidateSet SortedNeighborhood(const core::Dataset& dataset,
                                      core::SchemaMode mode, int window);

}  // namespace erb::blocking
