#include "blocking/weighting.hpp"

#include <algorithm>
#include <cmath>

namespace erb::blocking {

std::string_view SchemeName(WeightingScheme scheme) {
  switch (scheme) {
    case WeightingScheme::kArcs: return "ARCS";
    case WeightingScheme::kCbs: return "CBS";
    case WeightingScheme::kEcbs: return "ECBS";
    case WeightingScheme::kJs: return "JS";
    case WeightingScheme::kEjs: return "EJS";
    case WeightingScheme::kChiSquared: return "X2";
  }
  return "unknown";
}

double PairWeight(const EntityBlockIndex& index, WeightingScheme scheme,
                  core::EntityId i, core::EntityId j, std::uint32_t common,
                  double arcs) {
  const double bi = static_cast<double>(index.BlocksOf1(i));
  const double bj = static_cast<double>(index.BlocksOf2(j));
  const double total_blocks =
      std::max<double>(1.0, static_cast<double>(index.NumBlocks()));
  const double c = static_cast<double>(common);
  switch (scheme) {
    case WeightingScheme::kArcs:
      return arcs;
    case WeightingScheme::kCbs:
      return c;
    case WeightingScheme::kEcbs:
      return c * std::log(total_blocks / bi) * std::log(total_blocks / bj);
    case WeightingScheme::kJs:
      return c / (bi + bj - c);
    case WeightingScheme::kEjs: {
      const double js = c / (bi + bj - c);
      const double total_pairs =
          std::max<double>(1.0, static_cast<double>(index.TotalPairs()));
      const double di = std::max<double>(index.Degree1(i), 1.0);
      const double dj = std::max<double>(index.Degree2(j), 1.0);
      return js * std::log10(total_pairs / di) * std::log10(total_pairs / dj);
    }
    case WeightingScheme::kChiSquared: {
      // Independence test of the entities' block participations.
      const double n = total_blocks;
      const double o11 = c;
      const double o12 = bi - c;
      const double o21 = bj - c;
      const double o22 = n - bi - bj + c;
      const double denom = bi * bj * (n - bi) * (n - bj);
      if (denom <= 0.0) return 0.0;
      const double diff = o11 * o22 - o12 * o21;
      return n * diff * diff / denom;
    }
  }
  return 0.0;
}

WeightTables BuildWeightTables(const EntityBlockIndex& index,
                               WeightingScheme scheme) {
  WeightTables tables;
  tables.total_blocks =
      std::max<double>(1.0, static_cast<double>(index.NumBlocks()));
  if (scheme == WeightingScheme::kEcbs) {
    tables.ecbs1.resize(index.n1());
    tables.ecbs2.resize(index.n2());
    for (std::size_t i = 0; i < index.n1(); ++i) {
      const double bi = static_cast<double>(
          index.BlocksOf1(static_cast<core::EntityId>(i)));
      tables.ecbs1[i] = std::log(tables.total_blocks / bi);
    }
    for (std::size_t j = 0; j < index.n2(); ++j) {
      const double bj = static_cast<double>(
          index.BlocksOf2(static_cast<core::EntityId>(j)));
      tables.ecbs2[j] = std::log(tables.total_blocks / bj);
    }
  } else if (scheme == WeightingScheme::kEjs) {
    const double total_pairs =
        std::max<double>(1.0, static_cast<double>(index.TotalPairs()));
    tables.ejs1.resize(index.n1());
    tables.ejs2.resize(index.n2());
    for (std::size_t i = 0; i < index.n1(); ++i) {
      const double di = std::max<double>(
          index.Degree1(static_cast<core::EntityId>(i)), 1.0);
      tables.ejs1[i] = std::log10(total_pairs / di);
    }
    for (std::size_t j = 0; j < index.n2(); ++j) {
      const double dj = std::max<double>(
          index.Degree2(static_cast<core::EntityId>(j)), 1.0);
      tables.ejs2[j] = std::log10(total_pairs / dj);
    }
  }
  return tables;
}

}  // namespace erb::blocking
