// Block collection model for Clean-Clean ER.
//
// A block groups the entities that share one signature. In Clean-Clean ER
// only inter-source comparisons matter, so each block keeps the two sides
// separate; a block is useful only when both sides are non-empty.
#pragma once

#include <cstdint>
#include <vector>

#include "core/entity.hpp"

namespace erb::blocking {

/// \brief One block: the entities of each source sharing a signature.
struct Block {
  std::vector<core::EntityId> e1;  ///< First-source members (may repeat).
  std::vector<core::EntityId> e2;  ///< Second-source members (may repeat).

  /// \brief Number of inter-source comparisons this block induces.
  std::uint64_t Comparisons() const {
    return static_cast<std::uint64_t>(e1.size()) * e2.size();
  }

  /// \brief Total entity assignments (block "size" in the block-cleaning
  ///        sense).
  std::size_t Assignments() const { return e1.size() + e2.size(); }
};

using BlockCollection = std::vector<Block>;

/// \brief Total comparisons across a collection (with redundancy, i.e. the
///        same pair counted once per shared block) — the BC measure of block
///        cleaning.
/// \param blocks The collection to measure.
std::uint64_t TotalComparisons(const BlockCollection& blocks);

/// \brief Total entity assignments across a collection.
/// \param blocks The collection to measure.
std::uint64_t TotalAssignments(const BlockCollection& blocks);

/// \brief Drops blocks that lost one side (no comparisons). Keeps order.
/// \param blocks Collection pruned in place.
void DropUselessBlocks(BlockCollection* blocks);

}  // namespace erb::blocking
