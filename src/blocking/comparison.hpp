// Comparison cleaning (Section IV-B): the mandatory last step of a blocking
// workflow. Either Comparison Propagation (removes redundant pairs only) or
// Meta-blocking (a weighting scheme scoring each distinct candidate pair by
// the blocks its entities share, plus a pruning algorithm retaining the
// best-scored pairs).
//
// Both paths stream pairs from the CSR entity-to-block index
// (blocking/entity_index.hpp); the full weighted graph is never
// materialized. The weighting schemes live in blocking/weighting.hpp.
#pragma once

#include <string_view>

#include "blocking/block.hpp"
#include "blocking/entity_index.hpp"
#include "blocking/weighting.hpp"
#include "core/candidates.hpp"

namespace erb::blocking {

/// Pruning algorithms deciding which weighted pairs survive.
enum class PruningAlgorithm { kBlast, kCep, kCnp, kRcnp, kRwnp, kWep, kWnp };

/// \brief Human-readable pruning-algorithm name ("BLAST", "CEP", ...).
/// \param algorithm The algorithm to name.
std::string_view PruningName(PruningAlgorithm algorithm);

/// Configuration of the comparison-cleaning step.
struct ComparisonConfig {
  /// false = Comparison Propagation (parameter-free); true = Meta-blocking
  /// with the scheme/pruning below.
  bool use_metablocking = false;
  WeightingScheme scheme = WeightingScheme::kCbs;
  PruningAlgorithm pruning = PruningAlgorithm::kWep;
};

/// \brief Comparison Propagation: emits every distinct inter-source pair of
///        `blocks` exactly once (precision up, recall untouched).
/// \param blocks The block collection to clean.
/// \param n1 Number of E1 entities (ids in the blocks must be smaller).
/// \param n2 Number of E2 entities (ids in the blocks must be smaller).
/// \return The finalized (sorted, deduplicated) candidate set.
core::CandidateSet ComparisonPropagation(const BlockCollection& blocks,
                                         std::size_t n1, std::size_t n2);

/// \brief Meta-blocking: scores every distinct pair of `blocks` with
///        `scheme` and retains those selected by `pruning`.
///
/// Deterministic at any thread count: the statistics pass streams pairs in
/// pinned ascending (i, j) order and merges per-chunk accumulators in
/// ascending chunk order, so the candidate set is byte-identical at
/// ERB_THREADS=1 and 8 (enforced by the src/oracle differential suite).
///
/// \param blocks The block collection to clean.
/// \param n1 Number of E1 entities (ids in the blocks must be smaller).
/// \param n2 Number of E2 entities (ids in the blocks must be smaller).
/// \param scheme Weighting scheme scoring each distinct pair.
/// \param pruning Pruning algorithm deciding which pairs survive.
/// \return The finalized (sorted, deduplicated) candidate set.
core::CandidateSet MetaBlocking(const BlockCollection& blocks, std::size_t n1,
                                std::size_t n2, WeightingScheme scheme,
                                PruningAlgorithm pruning);

/// \brief Dispatches on `config` to Comparison Propagation or Meta-blocking.
/// \param blocks The block collection to clean.
/// \param n1 Number of E1 entities (ids in the blocks must be smaller).
/// \param n2 Number of E2 entities (ids in the blocks must be smaller).
/// \param config Selects the cleaning step and its parameters.
/// \return The finalized (sorted, deduplicated) candidate set.
core::CandidateSet CleanComparisons(const BlockCollection& blocks,
                                    std::size_t n1, std::size_t n2,
                                    const ComparisonConfig& config);

}  // namespace erb::blocking
