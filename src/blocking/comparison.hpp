// Comparison cleaning (Section IV-B): the mandatory last step of a blocking
// workflow. Either Comparison Propagation (removes redundant pairs only) or
// Meta-blocking (a weighting scheme scoring each distinct candidate pair by
// the blocks its entities share, plus a pruning algorithm retaining the
// best-scored pairs).
#pragma once

#include <string_view>

#include "blocking/block.hpp"
#include "blocking/graph.hpp"
#include "core/candidates.hpp"

namespace erb::blocking {

/// Weighting schemes of Meta-blocking. The more and the rarer the blocks two
/// entities share, the higher the weight.
enum class WeightingScheme { kArcs, kCbs, kEcbs, kJs, kEjs, kChiSquared };

/// Pruning algorithms deciding which weighted pairs survive.
enum class PruningAlgorithm { kBlast, kCep, kCnp, kRcnp, kRwnp, kWep, kWnp };

std::string_view SchemeName(WeightingScheme scheme);
std::string_view PruningName(PruningAlgorithm algorithm);

/// Configuration of the comparison-cleaning step.
struct ComparisonConfig {
  /// false = Comparison Propagation (parameter-free); true = Meta-blocking
  /// with the scheme/pruning below.
  bool use_metablocking = false;
  WeightingScheme scheme = WeightingScheme::kCbs;
  PruningAlgorithm pruning = PruningAlgorithm::kWep;
};

/// Comparison Propagation: emits every distinct inter-source pair exactly
/// once (precision up, recall untouched).
core::CandidateSet ComparisonPropagation(const BlockCollection& blocks,
                                         std::size_t n1, std::size_t n2);

/// Meta-blocking: scores every distinct pair with `scheme` and retains those
/// selected by `pruning`.
core::CandidateSet MetaBlocking(const BlockCollection& blocks, std::size_t n1,
                                std::size_t n2, WeightingScheme scheme,
                                PruningAlgorithm pruning);

/// Dispatches on `config`.
core::CandidateSet CleanComparisons(const BlockCollection& blocks,
                                    std::size_t n1, std::size_t n2,
                                    const ComparisonConfig& config);

/// The weight of pair (i, j) under `scheme`, given the shared-block count and
/// ARCS accumulator produced by PairGraph::ForEachPair. For EJS the graph's
/// degrees must have been computed (PairGraph::EnsureDegrees).
double PairWeight(const PairGraph& graph, WeightingScheme scheme,
                  core::EntityId i, core::EntityId j, std::uint32_t common,
                  double arcs);

}  // namespace erb::blocking
