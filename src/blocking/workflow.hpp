// The complete blocking workflow of Figure 1: block building -> optional
// Block Purging -> optional Block Filtering -> comparison cleaning.
#pragma once

#include <string>

#include "blocking/builders.hpp"
#include "blocking/cleaning.hpp"
#include "blocking/comparison.hpp"
#include "common/timer.hpp"
#include "core/candidates.hpp"
#include "core/entity.hpp"

namespace erb::blocking {

/// Full configuration of one blocking workflow (the search space of
/// Table III).
struct WorkflowConfig {
  BuilderConfig builder;
  bool block_purging = false;
  /// Block Filtering ratio in (0, 1]; 1.0 disables the step.
  double filter_ratio = 1.0;
  ComparisonConfig cleaning;

  /// Compact description for the configuration tables (Table VIII).
  std::string Describe() const;
};

/// Result of running a workflow: candidates plus the per-phase timings that
/// feed the run-time breakdown of Figures 7-9 (t_b, t_p, t_f, t_c).
struct WorkflowResult {
  core::CandidateSet candidates;
  PhaseTimer timing;
  std::size_t blocks_built = 0;
  std::size_t blocks_after_cleaning = 0;
};

/// Phase names used in WorkflowResult::timing.
inline constexpr const char* kPhaseBuild = "build";
inline constexpr const char* kPhasePurge = "purge";
inline constexpr const char* kPhaseFilter = "filter";
inline constexpr const char* kPhaseClean = "clean";

/// Runs the workflow on `dataset` under `mode`.
WorkflowResult RunWorkflow(const core::Dataset& dataset, core::SchemaMode mode,
                           const WorkflowConfig& config);

/// The Parameter-free Blocking Workflow baseline (PBW): Standard Blocking +
/// Block Purging + Comparison Propagation.
WorkflowConfig ParameterFreeWorkflow();

/// The Default Blocking Workflow baseline (DBW): Q-Grams Blocking (q=6) +
/// Block Filtering (ratio 0.5) + Meta-blocking with WEP + ECBS.
WorkflowConfig DefaultWorkflow();

}  // namespace erb::blocking
