// The complete blocking workflow of Figure 1: block building -> optional
// Block Purging -> optional Block Filtering -> comparison cleaning.
#pragma once

#include <string>

#include "blocking/builders.hpp"
#include "blocking/cleaning.hpp"
#include "blocking/comparison.hpp"
#include "common/timer.hpp"
#include "core/candidates.hpp"
#include "core/entity.hpp"

namespace erb::blocking {

/// \brief Full configuration of one blocking workflow (the search space of
///        Table III).
struct WorkflowConfig {
  BuilderConfig builder;       ///< Block-building method and parameters.
  bool block_purging = false;  ///< Whether Block Purging runs.
  /// Block Filtering ratio in (0, 1]; 1.0 disables the step.
  double filter_ratio = 1.0;
  ComparisonConfig cleaning;  ///< Comparison-cleaning step.

  /// \brief Compact description for the configuration tables (Table VIII).
  std::string Describe() const;
};

/// \brief Result of running a workflow: candidates plus the per-phase timings
///        that feed the run-time breakdown of Figures 7-9 (t_b, t_p, t_f,
///        t_c).
struct WorkflowResult {
  core::CandidateSet candidates;          ///< Surviving candidate pairs.
  PhaseTimer timing;                      ///< Per-phase wall times.
  std::size_t blocks_built = 0;           ///< Blocks before cleaning.
  std::size_t blocks_after_cleaning = 0;  ///< Blocks after purging/filtering.
};

/// Phase names used in WorkflowResult::timing.
inline constexpr const char* kPhaseBuild = "build";
inline constexpr const char* kPhasePurge = "purge";
inline constexpr const char* kPhaseFilter = "filter";
inline constexpr const char* kPhaseClean = "clean";

/// \brief Runs the workflow on `dataset` under `mode`.
/// \param dataset The two entity sources to block.
/// \param mode Schema-agnostic or schema-aware key derivation.
/// \param config The workflow to run.
WorkflowResult RunWorkflow(const core::Dataset& dataset, core::SchemaMode mode,
                           const WorkflowConfig& config);

/// \brief The Parameter-free Blocking Workflow baseline (PBW): Standard
///        Blocking + Block Purging + Comparison Propagation.
WorkflowConfig ParameterFreeWorkflow();

/// \brief The Default Blocking Workflow baseline (DBW): Q-Grams Blocking
///        (q=6) + Block Filtering (ratio 0.5) + Meta-blocking with WEP +
///        ECBS.
WorkflowConfig DefaultWorkflow();

}  // namespace erb::blocking
