#include "blocking/comparison.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "obs/trace.hpp"

namespace erb::blocking {
namespace {

using core::EntityId;

// Bounded min-heap keeping the k largest weights seen per node; exposes the
// k-th largest as the node's cardinality threshold (CNP / RCNP).
class TopKTracker {
 public:
  TopKTracker() = default;
  TopKTracker(std::size_t nodes, std::size_t k) : k_(k), heaps_(nodes) {}

  void Offer(std::size_t node, double weight) {
    auto& heap = heaps_[node];
    if (heap.size() < k_) {
      heap.push_back(weight);
      std::push_heap(heap.begin(), heap.end(), std::greater<>());
    } else if (!heap.empty() && weight > heap.front()) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>());
      heap.back() = weight;
      std::push_heap(heap.begin(), heap.end(), std::greater<>());
    }
  }

  /// Minimum weight qualifying for the node's top-k.
  double Threshold(std::size_t node) const {
    const auto& heap = heaps_[node];
    return heap.empty() ? 0.0 : heap.front();
  }

  /// Folds another tracker's per-node heaps into this one. The retained
  /// top-k multiset per node is independent of offer order, so merging
  /// chunk-local trackers reproduces the single-pass thresholds.
  void MergeFrom(const TopKTracker& other) {
    for (std::size_t node = 0; node < other.heaps_.size(); ++node) {
      for (double weight : other.heaps_[node]) Offer(node, weight);
    }
  }

 private:
  std::size_t k_ = 0;
  std::vector<std::vector<double>> heaps_;
};

// Chunk-private pass-1 statistics for the E2 side of the blocking graph.
// Pairs stream grouped by their E1 node, so E1-side statistics are written
// to disjoint slots by disjoint chunks and live in shared arrays; the E2
// side is touched by every chunk and is accumulated privately, then merged
// in ascending chunk order (deterministic at any thread count).
struct Side2Stats {
  TopKTracker topk2;
  std::vector<double> sum2, max2;
  std::vector<std::uint32_t> cnt2;
  std::vector<double> all_weights;  // CEP's global weight pool
  double global_sum = 0.0;
  std::uint64_t global_count = 0;
  std::uint64_t pairs = 0;  // distinct pairs weighted (obs counter)
};

// The weighting + pruning kernel, templated on the weigher policy so scheme
// dispatch happens once per run instead of once per pair, and so the pair
// streams skip the ARCS accumulator for the five schemes that ignore it.
// The structure — pass-1 chunking, merge order, pinned pass-1 emission
// order — is what keeps the candidate set byte-identical at any thread
// count; see docs/blocking.md.
template <typename Weigher>
core::CandidateSet MetaBlockingImpl(const EntityBlockIndex& index,
                                    std::size_t n1, std::size_t n2,
                                    const Weigher& weigh, std::size_t k,
                                    std::uint64_t cep_cap,
                                    PruningAlgorithm pruning) {
  const bool needs_topk =
      pruning == PruningAlgorithm::kCnp || pruning == PruningAlgorithm::kRcnp;
  const bool needs_node_stats = pruning == PruningAlgorithm::kWnp ||
                                pruning == PruningAlgorithm::kRwnp ||
                                pruning == PruningAlgorithm::kBlast;
  const bool needs_global_weights = pruning == PruningAlgorithm::kCep;
  const bool needs_global_avg = pruning == PruningAlgorithm::kWep;

  // E1-side statistics: pairs are grouped by their E1 node, so parallel
  // chunks over disjoint i ranges write disjoint slots of these shared
  // arrays without synchronization.
  TopKTracker topk1(needs_topk ? n1 : 0, k);
  std::vector<double> sum1, max1;
  std::vector<std::uint32_t> cnt1;
  if (needs_node_stats) {
    sum1.assign(n1, 0.0);
    max1.assign(n1, 0.0);
    cnt1.assign(n1, 0);
  }

  // Pass 1: statistics. The E2 side (and the global accumulators) are
  // chunk-private and merged in ascending chunk order. The grain bounds the
  // number of n2-sized chunk accumulators alive at once; it depends only on
  // n1, never on the thread count, so the merged statistics are identical
  // at 1, 2 or 64 threads. The sorted stream pins the per-node weight sums
  // to ascending-j association order.
  constexpr std::size_t kStatsChunks = 16;
  const std::size_t stats_grain =
      std::max<std::size_t>(1, (n1 + kStatsChunks - 1) / kStatsChunks);
  Side2Stats stats;
  {
    obs::Span span("blocking/metablocking/stats");
    stats = ParallelMapReduce<Side2Stats>(
        0, n1, stats_grain,
        [&](std::size_t i_begin, std::size_t i_end) {
          Side2Stats chunk;
          if (needs_topk) chunk.topk2 = TopKTracker(n2, k);
          if (needs_node_stats) {
            chunk.sum2.assign(n2, 0.0);
            chunk.max2.assign(n2, 0.0);
            chunk.cnt2.assign(n2, 0);
          }
          index.Stream<Weigher::kNeedsArcs, /*kSorted=*/true>(
              i_begin, i_end,
              [&](EntityId i, EntityId j, std::uint32_t common, double arcs) {
                const double w = weigh(i, j, common, arcs);
                ++chunk.pairs;
                if (needs_topk) {
                  topk1.Offer(i, w);
                  chunk.topk2.Offer(j, w);
                }
                if (needs_node_stats) {
                  sum1[i] += w;
                  ++cnt1[i];
                  max1[i] = std::max(max1[i], w);
                  chunk.sum2[j] += w;
                  ++chunk.cnt2[j];
                  chunk.max2[j] = std::max(chunk.max2[j], w);
                }
                if (needs_global_weights) chunk.all_weights.push_back(w);
                if (needs_global_avg) {
                  chunk.global_sum += w;
                  ++chunk.global_count;
                }
              });
          return chunk;
        },
        [&](Side2Stats& into, Side2Stats&& from) {
          if (needs_topk) into.topk2.MergeFrom(from.topk2);
          if (needs_node_stats) {
            for (std::size_t j = 0; j < n2; ++j) {
              into.sum2[j] += from.sum2[j];
              into.cnt2[j] += from.cnt2[j];
              into.max2[j] = std::max(into.max2[j], from.max2[j]);
            }
          }
          if (needs_global_weights) {
            into.all_weights.insert(into.all_weights.end(),
                                    from.all_weights.begin(),
                                    from.all_weights.end());
          }
          into.global_sum += from.global_sum;
          into.global_count += from.global_count;
          into.pairs += from.pairs;
        });
  }
  obs::CounterAdd("blocking.pairs_weighted", stats.pairs);
  const TopKTracker& topk2 = stats.topk2;
  const std::vector<double>& sum2 = stats.sum2;
  const std::vector<double>& max2 = stats.max2;
  const std::vector<std::uint32_t>& cnt2 = stats.cnt2;
  std::vector<double>& all_weights = stats.all_weights;
  const double global_sum = stats.global_sum;
  const std::uint64_t global_count = stats.global_count;

  double cep_threshold = 0.0;
  if (needs_global_weights) {
    if (all_weights.size() > cep_cap) {
      std::nth_element(all_weights.begin(), all_weights.begin() + cep_cap - 1,
                       all_weights.end(), std::greater<>());
      cep_threshold = all_weights[cep_cap - 1];
    }
    all_weights.clear();
    all_weights.shrink_to_fit();
  }
  const double global_avg =
      global_count == 0 ? 0.0 : global_sum / static_cast<double>(global_count);

  // BLAST's local threshold: a fixed ratio of the sum of the two entities'
  // maximum weights, as in the loosely schema-aware meta-blocking of Simonini
  // et al.
  constexpr double kBlastRatio = 0.35;

  // Pass 2: retention. The pass-1 statistics are read-only now, so chunks
  // only need a private candidate buffer (merged in chunk order; Finalize
  // sorts, so the emitted set is order-independent — which is also why this
  // pass can use the cheaper unsorted stream).
  obs::Span span("blocking/metablocking/prune");
  core::CandidateSet candidates = ParallelMapReduce<core::CandidateSet>(
      0, n1, /*grain=*/0,
      [&](std::size_t i_begin, std::size_t i_end) {
        core::CandidateSet chunk;
        index.Stream<Weigher::kNeedsArcs, /*kSorted=*/false>(
            i_begin, i_end,
            [&](EntityId i, EntityId j, std::uint32_t common, double arcs) {
              const double w = weigh(i, j, common, arcs);
              bool keep = false;
              switch (pruning) {
                case PruningAlgorithm::kBlast:
                  keep = w >= kBlastRatio * (max1[i] + max2[j]);
                  break;
                case PruningAlgorithm::kCep:
                  keep = w >= cep_threshold;
                  break;
                case PruningAlgorithm::kCnp:
                  keep = w >= topk1.Threshold(i) || w >= topk2.Threshold(j);
                  break;
                case PruningAlgorithm::kRcnp:
                  keep = w >= topk1.Threshold(i) && w >= topk2.Threshold(j);
                  break;
                case PruningAlgorithm::kWep:
                  keep = w >= global_avg;
                  break;
                case PruningAlgorithm::kWnp:
                  keep = (cnt1[i] > 0 && w >= sum1[i] / cnt1[i]) ||
                         (cnt2[j] > 0 && w >= sum2[j] / cnt2[j]);
                  break;
                case PruningAlgorithm::kRwnp:
                  keep = (cnt1[i] > 0 && w >= sum1[i] / cnt1[i]) &&
                         (cnt2[j] > 0 && w >= sum2[j] / cnt2[j]);
                  break;
              }
              if (keep) chunk.Add(i, j);
            });
        return chunk;
      },
      [](core::CandidateSet& into, core::CandidateSet&& from) {
        into.Merge(std::move(from));
      });
  candidates.Finalize();
  return candidates;
}

}  // namespace

std::string_view PruningName(PruningAlgorithm algorithm) {
  switch (algorithm) {
    case PruningAlgorithm::kBlast: return "BLAST";
    case PruningAlgorithm::kCep: return "CEP";
    case PruningAlgorithm::kCnp: return "CNP";
    case PruningAlgorithm::kRcnp: return "RCNP";
    case PruningAlgorithm::kRwnp: return "RWNP";
    case PruningAlgorithm::kWep: return "WEP";
    case PruningAlgorithm::kWnp: return "WNP";
  }
  return "unknown";
}

core::CandidateSet ComparisonPropagation(const BlockCollection& blocks,
                                         std::size_t n1, std::size_t n2) {
  obs::Span span("blocking/cp");
  EntityBlockIndex index(blocks, n1, n2);
  core::CandidateSet candidates = ParallelMapReduce<core::CandidateSet>(
      0, n1, /*grain=*/0,
      [&index](std::size_t i_begin, std::size_t i_end) {
        core::CandidateSet chunk;
        // Emission order is free here (Finalize sorts), so the unsorted
        // arcs-free stream does the minimum work per pair.
        index.Stream<false, false>(
            i_begin, i_end,
            [&chunk](EntityId i, EntityId j, std::uint32_t, double) {
              chunk.Add(i, j);
            });
        return chunk;
      },
      [](core::CandidateSet& into, core::CandidateSet&& from) {
        into.Merge(std::move(from));
      });
  candidates.Finalize();
  return candidates;
}

core::CandidateSet MetaBlocking(const BlockCollection& blocks, std::size_t n1,
                                std::size_t n2, WeightingScheme scheme,
                                PruningAlgorithm pruning) {
  EntityBlockIndex index(blocks, n1, n2);
  if (scheme == WeightingScheme::kEjs) index.EnsureDegrees();
  const WeightTables tables = BuildWeightTables(index, scheme);

  // Cardinality parameters, configured from block characteristics as in the
  // meta-blocking literature: k = assignments per entity, K = assignments / 2.
  const std::uint64_t assignments = TotalAssignments(blocks);
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             static_cast<double>(assignments) /
             std::max<std::size_t>(1, n1 + n2))));
  const std::uint64_t cep_cap = std::max<std::uint64_t>(1, assignments / 2);

  return DispatchWeigher(index, scheme, tables, [&](auto weigher) {
    return MetaBlockingImpl(index, n1, n2, weigher, k, cep_cap, pruning);
  });
}

core::CandidateSet CleanComparisons(const BlockCollection& blocks,
                                    std::size_t n1, std::size_t n2,
                                    const ComparisonConfig& config) {
  if (!config.use_metablocking) return ComparisonPropagation(blocks, n1, n2);
  return MetaBlocking(blocks, n1, n2, config.scheme, config.pruning);
}

}  // namespace erb::blocking
