// The blocking graph: streaming access to the distinct candidate pairs of a
// block collection together with the co-occurrence statistics the
// meta-blocking weighting schemes consume.
//
// Exposed separately from comparison.cpp so the configuration optimizer can
// evaluate every weighting scheme and pruning algorithm over shared passes
// instead of re-running meta-blocking 42 times per block collection.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "blocking/block.hpp"

namespace erb::blocking {

/// Entity -> block-index adjacency for both sides plus the pair streamer.
class PairGraph {
 public:
  PairGraph(const BlockCollection& blocks, std::size_t n1, std::size_t n2);

  /// Invokes `fn(i, j, common_blocks, arcs_weight)` exactly once per distinct
  /// inter-source pair whose E1 node lies in [i_begin, i_end). `arcs_weight`
  /// is the ARCS accumulator (sum of 1/||b|| over shared blocks). Pairs
  /// stream in ascending (i, j) order; the co-occurrence scratch is local to
  /// the call, so disjoint ranges can be streamed from different threads
  /// concurrently (the parallel meta-blocking passes do exactly that).
  template <typename Fn>
  void ForEachPairInRange(std::size_t i_begin, std::size_t i_end, Fn&& fn) const {
    std::vector<std::uint32_t> common(n2_, 0);
    std::vector<double> arcs(n2_, 0.0);
    std::vector<core::EntityId> touched;
    i_end = std::min(i_end, e1_blocks_.size());
    for (std::size_t i = i_begin; i < i_end; ++i) {
      touched.clear();
      for (std::uint32_t b : e1_blocks_[i]) {
        const Block& block = (*blocks_)[b];
        const double inv = 1.0 / static_cast<double>(block.Comparisons());
        for (core::EntityId j : block.e2) {
          if (common[j] == 0) touched.push_back(j);
          ++common[j];
          arcs[j] += inv;
        }
      }
      // Emit in ascending j, not first-touch order: the weighted sums the
      // meta-blocking statistics pass accumulates from this stream are then
      // associated the same way no matter how the blocks order their
      // members, which pins the floating-point results exactly.
      std::sort(touched.begin(), touched.end());
      for (core::EntityId j : touched) {
        fn(static_cast<core::EntityId>(i), j, common[j], arcs[j]);
        common[j] = 0;
        arcs[j] = 0.0;
      }
    }
  }

  /// Streams every distinct inter-source pair (all of E1's nodes).
  template <typename Fn>
  void ForEachPair(Fn&& fn) const {
    ForEachPairInRange(0, e1_blocks_.size(), std::forward<Fn>(fn));
  }

  std::size_t n1() const { return e1_blocks_.size(); }
  std::size_t n2() const { return n2_; }
  std::size_t NumBlocks() const { return blocks_->size(); }
  std::size_t BlocksOf1(core::EntityId i) const { return e1_blocks_[i].size(); }
  std::size_t BlocksOf2(core::EntityId j) const { return e2_block_counts_[j]; }

  /// Number of distinct pairs and per-entity degrees (|v_i| of EJS).
  /// Computed lazily on first call (one extra streaming pass).
  void EnsureDegrees() const;
  std::uint64_t TotalPairs() const { return total_pairs_; }
  std::uint32_t Degree1(core::EntityId i) const { return degree1_[i]; }
  std::uint32_t Degree2(core::EntityId j) const { return degree2_[j]; }

  const BlockCollection& blocks() const { return *blocks_; }

 private:
  const BlockCollection* blocks_;
  std::size_t n2_;
  std::vector<std::vector<std::uint32_t>> e1_blocks_;
  std::vector<std::uint32_t> e2_block_counts_;

  mutable bool degrees_ready_ = false;
  mutable std::uint64_t total_pairs_ = 0;
  mutable std::vector<std::uint32_t> degree1_;
  mutable std::vector<std::uint32_t> degree2_;
};

}  // namespace erb::blocking
