#include "blocking/sorted_neighborhood.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "blocking/builders.hpp"

namespace erb::blocking {

core::CandidateSet SortedNeighborhood(const core::Dataset& dataset,
                                      core::SchemaMode mode, int window) {
  struct Entry {
    std::string key;
    core::EntityId id;
    int side;
  };
  std::vector<Entry> entries;

  BuilderConfig standard;  // token keys, as Standard Blocking extracts them
  KeyScratch scratch;
  auto add_side = [&](int side, std::size_t count) {
    for (core::EntityId id = 0; id < count; ++id) {
      const std::string text = dataset.EntityText(side, id, mode);
      ExtractKeysInto(text, standard, &scratch);
      for (const std::string_view key : scratch.keys) {
        entries.push_back({std::string(key), id, side});
      }
    }
  };
  add_side(0, dataset.e1().size());
  add_side(1, dataset.e2().size());

  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    if (a.side != b.side) return a.side < b.side;
    return a.id < b.id;
  });

  core::CandidateSet candidates;
  const std::size_t w = static_cast<std::size_t>(std::max(2, window));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size() && j < i + w; ++j) {
      const Entry& a = entries[i];
      const Entry& b = entries[j];
      if (a.side == b.side) continue;
      if (a.side == 0) {
        candidates.Add(a.id, b.id);
      } else {
        candidates.Add(b.id, a.id);
      }
    }
  }
  candidates.Finalize();
  return candidates;
}

}  // namespace erb::blocking
