#include "blocking/block.hpp"

#include <algorithm>

namespace erb::blocking {

std::uint64_t TotalComparisons(const BlockCollection& blocks) {
  std::uint64_t total = 0;
  for (const auto& block : blocks) total += block.Comparisons();
  return total;
}

std::uint64_t TotalAssignments(const BlockCollection& blocks) {
  std::uint64_t total = 0;
  for (const auto& block : blocks) total += block.Assignments();
  return total;
}

void DropUselessBlocks(BlockCollection* blocks) {
  std::erase_if(*blocks,
                [](const Block& b) { return b.e1.empty() || b.e2.empty(); });
}

}  // namespace erb::blocking
