#include "blocking/builders.hpp"

#include <algorithm>
#include <bit>

#include "common/buildpar.hpp"
#include "common/flat_dict.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "core/profile_store.hpp"
#include "obs/trace.hpp"

namespace erb::blocking {
namespace {

// Appends the q-grams of `token` as views; a token shorter than q is its own
// q-gram, as in JedAI, so short identifiers are not lost.
void AppendQGrams(std::string_view token, int q,
                  std::vector<std::string_view>* out) {
  if (static_cast<int>(token.size()) <= q) {
    out->push_back(token);
    return;
  }
  for (std::size_t i = 0; i + q <= token.size(); ++i) {
    out->push_back(token.substr(i, q));
  }
}

// Extended Q-Grams: concatenates every combination of at least
// L = max(1, floor(k * t)) of the token's k q-grams, preserving order.
// k is capped to keep the number of combinations bounded (JedAI applies the
// same safeguard); with t >= 0.8 the combination count stays small.
// Keys are appended to the scratch arena with their (offset, length) spans
// recorded; the arena may reallocate while growing, so views are only cut
// once every token has been processed.
void AppendExtendedQGrams(std::string_view token, int q, double t,
                          KeyScratch* scratch) {
  scratch->grams.clear();
  AppendQGrams(token, q, &scratch->grams);
  constexpr std::size_t kMaxGrams = 10;
  if (scratch->grams.size() > kMaxGrams) scratch->grams.resize(kMaxGrams);
  const int k = static_cast<int>(scratch->grams.size());
  const int l = std::max(1, static_cast<int>(k * t));
  std::string& arena = scratch->extended;
  if (l >= k) {
    // Only the full concatenation qualifies.
    const std::size_t start = arena.size();
    for (const auto& g : scratch->grams) {
      if (arena.size() > start) arena += '_';
      arena += g;
    }
    scratch->spans.emplace_back(start, arena.size() - start);
    return;
  }
  // Enumerate subsets of size >= l via bitmask (k <= 10 so at most 1024).
  for (std::uint32_t mask = 1; mask < (1u << k); ++mask) {
    if (static_cast<int>(std::popcount(mask)) < l) continue;
    const std::size_t start = arena.size();
    for (int bit = 0; bit < k; ++bit) {
      if (!(mask & (1u << bit))) continue;
      if (arena.size() > start) arena += '_';
      arena += scratch->grams[static_cast<std::size_t>(bit)];
    }
    scratch->spans.emplace_back(start, arena.size() - start);
  }
}

// Suffix Arrays: every suffix of the token of length >= l_min (including the
// token itself).
void AppendSuffixes(std::string_view token, int l_min,
                    std::vector<std::string_view>* out) {
  const int n = static_cast<int>(token.size());
  if (n < l_min) return;
  for (int start = 0; start + l_min <= n; ++start) {
    out->push_back(token.substr(static_cast<std::size_t>(start)));
  }
}

// Extended Suffix Arrays: every substring of length >= l_min.
void AppendSubstrings(std::string_view token, int l_min,
                      std::vector<std::string_view>* out) {
  const int n = static_cast<int>(token.size());
  for (int len = l_min; len <= n; ++len) {
    for (int start = 0; start + len <= n; ++start) {
      out->push_back(token.substr(static_cast<std::size_t>(start),
                                  static_cast<std::size_t>(len)));
    }
  }
}

// Chunked two-pass block build, used when the pool is effectively parallel.
// The unified entity range [0, n1) ++ [0, n2) is cut into the fixed
// kBuildChunks chunks; each chunk groups its own entities' keys under a
// private flat string dict, members in ascending entity order.
BlockCollection BuildBlocksChunked(const core::ProfileStore& store1,
                                   const core::ProfileStore& store2,
                                   std::size_t n1, std::size_t n,
                                   const BuilderConfig& config) {
  struct Chunk {
    StringDict dict;            // key -> local block id
    std::vector<Block> blocks;  // local first-appearance order
  };
  const std::size_t grain = BuildGrain(n);
  std::vector<Chunk> chunks(NumBuildChunks(n));
  ParallelFor(0, n, grain, [&](std::size_t begin, std::size_t end) {
    Chunk& chunk = chunks[begin / grain];
    KeyScratch scratch;
    for (std::size_t i = begin; i < end; ++i) {
      const int side = i < n1 ? 0 : 1;
      const core::EntityId id =
          static_cast<core::EntityId>(side == 0 ? i : i - n1);
      const std::string_view text =
          side == 0 ? store1.Text(id) : store2.Text(id);
      ExtractKeysInto(text, config, &scratch);
      for (const std::string_view key : scratch.keys) {
        const std::uint32_t next =
            static_cast<std::uint32_t>(chunk.blocks.size());
        const std::uint32_t local = chunk.dict.FindOrAssign(key);
        if (local == next) chunk.blocks.emplace_back();
        Block& block = chunk.blocks[local];
        (side == 0 ? block.e1 : block.e2).push_back(id);
      }
    }
  });

  // Merge in ascending chunk order: a key's global block id is its first
  // appearance in the earliest chunk holding it, and per-block members
  // concatenate in chunk order — exactly the id assignment and member order
  // (both sides ascending by entity id) of a sequential scan, at any
  // ERB_THREADS.
  std::size_t keys_upper = 0, bytes_upper = 0;
  std::uint64_t rehashes = 0;
  for (const Chunk& chunk : chunks) {
    keys_upper += chunk.dict.NumKeys();
    bytes_upper += chunk.dict.ArenaBytes();
    rehashes += chunk.dict.rehashes();
  }
  BlockCollection blocks;
  StringDict key_to_block;
  key_to_block.Reserve(keys_upper, bytes_upper);
  for (Chunk& chunk : chunks) {
    for (std::uint32_t local = 0;
         local < static_cast<std::uint32_t>(chunk.blocks.size()); ++local) {
      const std::uint32_t next = static_cast<std::uint32_t>(blocks.size());
      const std::uint32_t gid = key_to_block.FindOrAssign(chunk.dict.Key(local));
      if (gid == next) blocks.emplace_back();
      Block& into = blocks[gid];
      Block& from = chunk.blocks[local];
      into.e1.insert(into.e1.end(), from.e1.begin(), from.e1.end());
      into.e2.insert(into.e2.end(), from.e2.begin(), from.e2.end());
    }
    std::vector<Block>().swap(chunk.blocks);  // drop the chunk's copy eagerly
  }
  obs::CounterAdd("build.chunks_merged", chunks.size());
  obs::CounterAdd("build.dict_rehashes", rehashes + key_to_block.rehashes());
  return blocks;
}

// Sequential block build, used when the pool is effectively single-threaded:
// one global string dict, blocks in key first-appearance order, members
// pushed in ascending entity order — exactly the collection the chunked
// merge reproduces, without private dictionaries or a merge pass. Text is
// streamed one entity at a time (EntityText reuses the same allocator chunk
// every iteration), not materialized into the per-side columnar arenas the
// chunked path needs for shared read-only access — the sequential build's
// peak memory is the key dictionary and the blocks, nothing else.
BlockCollection BuildBlocksSequential(const core::Dataset& dataset,
                                      core::SchemaMode mode,
                                      const BuilderConfig& config) {
  BlockCollection blocks;
  StringDict key_to_block;
  KeyScratch scratch;
  std::size_t n = 0;
  for (int side = 0; side < 2; ++side) {
    const std::size_t count =
        (side == 0 ? dataset.e1() : dataset.e2()).size();
    n += count;
    for (core::EntityId id = 0; id < count; ++id) {
      const std::string text = dataset.EntityText(side, id, mode);
      ExtractKeysInto(text, config, &scratch);
      for (const std::string_view key : scratch.keys) {
        const std::uint32_t next = static_cast<std::uint32_t>(blocks.size());
        const std::uint32_t gid = key_to_block.FindOrAssign(key);
        if (gid == next) blocks.emplace_back();
        Block& block = blocks[gid];
        (side == 0 ? block.e1 : block.e2).push_back(id);
      }
    }
  }
  obs::CounterAdd("build.chunks_merged", NumBuildChunks(n));
  obs::CounterAdd("build.dict_rehashes", key_to_block.rehashes());
  return blocks;
}

}  // namespace

std::string_view BuilderName(BuilderKind kind) {
  switch (kind) {
    case BuilderKind::kStandard: return "StandardBlocking";
    case BuilderKind::kQGrams: return "QGramsBlocking";
    case BuilderKind::kExtendedQGrams: return "ExtendedQGramsBlocking";
    case BuilderKind::kSuffixArrays: return "SuffixArraysBlocking";
    case BuilderKind::kExtendedSuffixArrays: return "ExtendedSuffixArraysBlocking";
  }
  return "unknown";
}

void ExtractKeysInto(std::string_view text, const BuilderConfig& config,
                     KeyScratch* scratch) {
  scratch->keys.clear();
  scratch->extended.clear();
  scratch->spans.clear();
  NormalizeTextInto(text, &scratch->normalized);
  // Normalization maps every non-alphanumeric byte to ' ', so a space scan
  // is exactly SplitWhitespace over the normalized text — token views point
  // into the scratch buffer, no per-token strings.
  const std::string_view norm = scratch->normalized;
  std::size_t i = 0;
  while (i < norm.size()) {
    while (i < norm.size() && norm[i] == ' ') ++i;
    std::size_t j = i;
    while (j < norm.size() && norm[j] != ' ') ++j;
    if (j == i) break;
    const std::string_view token = norm.substr(i, j - i);
    switch (config.kind) {
      case BuilderKind::kStandard:
        scratch->keys.push_back(token);
        break;
      case BuilderKind::kQGrams:
        AppendQGrams(token, config.q, &scratch->keys);
        break;
      case BuilderKind::kExtendedQGrams:
        AppendExtendedQGrams(token, config.q, config.t, scratch);
        break;
      case BuilderKind::kSuffixArrays:
        AppendSuffixes(token, config.l_min, &scratch->keys);
        break;
      case BuilderKind::kExtendedSuffixArrays:
        AppendSubstrings(token, config.l_min, &scratch->keys);
        break;
    }
    i = j;
  }
  // Extended Q-Grams keys live in the arena; cut their views only now that
  // the arena has stopped growing.
  for (const auto& [offset, length] : scratch->spans) {
    scratch->keys.push_back(
        std::string_view(scratch->extended).substr(offset, length));
  }
  // Each distinct key indexes the entity once.
  std::sort(scratch->keys.begin(), scratch->keys.end());
  scratch->keys.erase(
      std::unique(scratch->keys.begin(), scratch->keys.end()),
      scratch->keys.end());
}

std::vector<std::string> ExtractKeys(std::string_view text,
                                     const BuilderConfig& config) {
  KeyScratch scratch;
  ExtractKeysInto(text, config, &scratch);
  return std::vector<std::string>(scratch.keys.begin(), scratch.keys.end());
}

BlockCollection BuildBlocks(const core::Dataset& dataset, core::SchemaMode mode,
                            const BuilderConfig& config) {
  // Columnar text per side: key extraction reads views into one arena per
  // side instead of materializing a std::string per entity. The chunked
  // build needs both sides resident (chunks straddle the side boundary and
  // run concurrently); the sequential build scopes one arena at a time.
  BlockCollection blocks;
  if (UseChunkedBuild()) {
    const core::ProfileStore store1 =
        core::ProfileStore::ForSide(dataset, 0, mode);
    const core::ProfileStore store2 =
        core::ProfileStore::ForSide(dataset, 1, mode);
    const std::size_t n1 = store1.size();
    blocks = BuildBlocksChunked(store1, store2, n1, n1 + store2.size(), config);
  } else {
    blocks = BuildBlocksSequential(dataset, mode, config);
  }

  const bool proactive = config.kind == BuilderKind::kSuffixArrays ||
                         config.kind == BuilderKind::kExtendedSuffixArrays;
  if (proactive) {
    // b_max is part of the method definition: a signature appearing in b_max
    // or more entities produces no block.
    std::erase_if(blocks, [&config](const Block& b) {
      return b.Assignments() >= static_cast<std::size_t>(config.b_max);
    });
  }
  DropUselessBlocks(&blocks);
  return blocks;
}

}  // namespace erb::blocking
