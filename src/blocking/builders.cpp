#include "blocking/builders.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "common/strings.hpp"

namespace erb::blocking {
namespace {

// Appends the q-grams of `token`; a token shorter than q is its own q-gram,
// as in JedAI, so short identifiers are not lost.
void AppendQGrams(std::string_view token, int q, std::vector<std::string>* out) {
  if (static_cast<int>(token.size()) <= q) {
    out->emplace_back(token);
    return;
  }
  for (std::size_t i = 0; i + q <= token.size(); ++i) {
    out->emplace_back(token.substr(i, q));
  }
}

// Extended Q-Grams: concatenates every combination of at least
// L = max(1, floor(k * t)) of the token's k q-grams, preserving order.
// k is capped to keep the number of combinations bounded (JedAI applies the
// same safeguard); with t >= 0.8 the combination count stays small.
void AppendExtendedQGrams(std::string_view token, int q, double t,
                          std::vector<std::string>* out) {
  std::vector<std::string> grams;
  AppendQGrams(token, q, &grams);
  constexpr std::size_t kMaxGrams = 10;
  if (grams.size() > kMaxGrams) grams.resize(kMaxGrams);
  const int k = static_cast<int>(grams.size());
  const int l = std::max(1, static_cast<int>(k * t));
  if (l >= k) {
    // Only the full concatenation qualifies.
    std::string key;
    for (const auto& g : grams) {
      if (!key.empty()) key += '_';
      key += g;
    }
    out->push_back(std::move(key));
    return;
  }
  // Enumerate subsets of size >= l via bitmask (k <= 10 so at most 1024).
  for (std::uint32_t mask = 1; mask < (1u << k); ++mask) {
    if (static_cast<int>(std::popcount(mask)) < l) continue;
    std::string key;
    for (int bit = 0; bit < k; ++bit) {
      if (!(mask & (1u << bit))) continue;
      if (!key.empty()) key += '_';
      key += grams[static_cast<std::size_t>(bit)];
    }
    out->push_back(std::move(key));
  }
}

// Suffix Arrays: every suffix of the token of length >= l_min (including the
// token itself).
void AppendSuffixes(std::string_view token, int l_min,
                    std::vector<std::string>* out) {
  const int n = static_cast<int>(token.size());
  if (n < l_min) return;
  for (int start = 0; start + l_min <= n; ++start) {
    out->emplace_back(token.substr(static_cast<std::size_t>(start)));
  }
}

// Extended Suffix Arrays: every substring of length >= l_min.
void AppendSubstrings(std::string_view token, int l_min,
                      std::vector<std::string>* out) {
  const int n = static_cast<int>(token.size());
  for (int len = l_min; len <= n; ++len) {
    for (int start = 0; start + len <= n; ++start) {
      out->emplace_back(token.substr(static_cast<std::size_t>(start),
                                     static_cast<std::size_t>(len)));
    }
  }
}

}  // namespace

std::string_view BuilderName(BuilderKind kind) {
  switch (kind) {
    case BuilderKind::kStandard: return "StandardBlocking";
    case BuilderKind::kQGrams: return "QGramsBlocking";
    case BuilderKind::kExtendedQGrams: return "ExtendedQGramsBlocking";
    case BuilderKind::kSuffixArrays: return "SuffixArraysBlocking";
    case BuilderKind::kExtendedSuffixArrays: return "ExtendedSuffixArraysBlocking";
  }
  return "unknown";
}

std::vector<std::string> ExtractKeys(std::string_view text,
                                     const BuilderConfig& config) {
  std::vector<std::string> keys;
  const std::vector<std::string> tokens = SplitWhitespace(NormalizeText(text));
  for (const auto& token : tokens) {
    switch (config.kind) {
      case BuilderKind::kStandard:
        keys.push_back(token);
        break;
      case BuilderKind::kQGrams:
        AppendQGrams(token, config.q, &keys);
        break;
      case BuilderKind::kExtendedQGrams:
        AppendExtendedQGrams(token, config.q, config.t, &keys);
        break;
      case BuilderKind::kSuffixArrays:
        AppendSuffixes(token, config.l_min, &keys);
        break;
      case BuilderKind::kExtendedSuffixArrays:
        AppendSubstrings(token, config.l_min, &keys);
        break;
    }
  }
  // Each distinct key indexes the entity once.
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

BlockCollection BuildBlocks(const core::Dataset& dataset, core::SchemaMode mode,
                            const BuilderConfig& config) {
  BlockCollection blocks;
  std::unordered_map<std::string, std::size_t> key_to_block;

  auto index_side = [&](int side, std::size_t count) {
    for (core::EntityId id = 0; id < count; ++id) {
      const std::string text = dataset.EntityText(side, id, mode);
      for (auto& key : ExtractKeys(text, config)) {
        auto [it, inserted] = key_to_block.try_emplace(std::move(key), blocks.size());
        if (inserted) blocks.emplace_back();
        Block& block = blocks[it->second];
        (side == 0 ? block.e1 : block.e2).push_back(id);
      }
    }
  };
  index_side(0, dataset.e1().size());
  index_side(1, dataset.e2().size());

  const bool proactive = config.kind == BuilderKind::kSuffixArrays ||
                         config.kind == BuilderKind::kExtendedSuffixArrays;
  if (proactive) {
    // b_max is part of the method definition: a signature appearing in b_max
    // or more entities produces no block.
    std::erase_if(blocks, [&config](const Block& b) {
      return b.Assignments() >= static_cast<std::size_t>(config.b_max);
    });
  }
  DropUselessBlocks(&blocks);
  return blocks;
}

}  // namespace erb::blocking
