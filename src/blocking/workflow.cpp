#include "blocking/workflow.hpp"

#include <sstream>

#include "obs/trace.hpp"

namespace erb::blocking {

std::string WorkflowConfig::Describe() const {
  std::ostringstream out;
  out << BuilderName(builder.kind);
  switch (builder.kind) {
    case BuilderKind::kQGrams:
      out << "(q=" << builder.q << ")";
      break;
    case BuilderKind::kExtendedQGrams:
      out << "(q=" << builder.q << ",t=" << builder.t << ")";
      break;
    case BuilderKind::kSuffixArrays:
    case BuilderKind::kExtendedSuffixArrays:
      out << "(lmin=" << builder.l_min << ",bmax=" << builder.b_max << ")";
      break;
    default:
      break;
  }
  out << " BP=" << (block_purging ? "on" : "off");
  out << " BFr=" << filter_ratio;
  if (cleaning.use_metablocking) {
    out << " " << PruningName(cleaning.pruning) << "+" << SchemeName(cleaning.scheme);
  } else {
    out << " CP";
  }
  return out.str();
}

WorkflowResult RunWorkflow(const core::Dataset& dataset, core::SchemaMode mode,
                           const WorkflowConfig& config) {
  WorkflowResult result;
  const std::size_t n1 = dataset.e1().size();
  const std::size_t n2 = dataset.e2().size();

  BlockCollection blocks = result.timing.Measure(kPhaseBuild, [&] {
    return BuildBlocks(dataset, mode, config.builder);
  });
  result.blocks_built = blocks.size();
  obs::CounterAdd("blocking.blocks_built", blocks.size());

  if (config.block_purging) {
    result.timing.Measure(kPhasePurge, [&] { BlockPurging(&blocks, n1, n2); });
  }
  if (config.filter_ratio < 1.0) {
    result.timing.Measure(kPhaseFilter,
                          [&] { BlockFiltering(&blocks, config.filter_ratio, n1, n2); });
  }
  result.blocks_after_cleaning = blocks.size();
  obs::GaugeSet("blocking.blocks_after_cleaning", blocks.size());

  result.candidates = result.timing.Measure(kPhaseClean, [&] {
    return CleanComparisons(blocks, n1, n2, config.cleaning);
  });
  obs::CounterAdd("blocking.candidates", result.candidates.size());
  return result;
}

WorkflowConfig ParameterFreeWorkflow() {
  WorkflowConfig config;
  config.builder.kind = BuilderKind::kStandard;
  config.block_purging = true;
  config.filter_ratio = 1.0;
  config.cleaning.use_metablocking = false;
  return config;
}

WorkflowConfig DefaultWorkflow() {
  WorkflowConfig config;
  config.builder.kind = BuilderKind::kQGrams;
  config.builder.q = 6;
  config.block_purging = false;
  config.filter_ratio = 0.5;
  config.cleaning.use_metablocking = true;
  config.cleaning.scheme = WeightingScheme::kEcbs;
  config.cleaning.pruning = PruningAlgorithm::kWep;
  return config;
}

}  // namespace erb::blocking
