// Shard assignment and scheduling for the shard-partitioned filtering
// pipeline (docs/sharding.md).
//
// Entities are hash-partitioned by ERB_SHARDS via FNV-1a over their external
// id — deterministic across platforms, runs and insert orders, so a corpus
// re-ingested elsewhere lands on the same shards. Batch datasets, which
// carry no external ids, get synthetic ones derived from the dataset name,
// side and index ("D2:e1:17"), making the batch and serve assignments agree
// by construction.
//
// The memory-budget gauge (ERB_MEM_BUDGET_MB) decides the build/probe
// schedule: when the projected resident bytes of all per-shard indexes fit,
// every index is built up front and stays resident (kResident); when they
// exceed the budget, the pipeline rotates — build one shard's index, probe
// it, free it, move on (kRotate) — holding at most one shard resident with
// no spill to disk. Both schedules are byte-identical by construction: a
// shard's probe results never depend on any other shard's index being alive.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/entity.hpp"

namespace erb::shard {

/// \brief Upper bound on ERB_SHARDS (a fat-fingered knob should fail loudly,
///        not allocate a million empty shards).
inline constexpr std::uint32_t kMaxShards = 4096;

/// \brief The shard of an external id: FNV-1a 64 of the id, mod `num_shards`.
///        Deterministic across platforms and runs.
/// \param external_id The entity's external identifier.
/// \param num_shards Number of shards (>= 1).
std::uint32_t ShardOf(std::string_view external_id, std::uint32_t num_shards);

/// \brief The synthetic external id of a batch-dataset entity:
///        "<dataset>:e<side+1>:<index>". Gives the batch pipeline the same
///        deterministic FNV assignment the serve path gets from real ids.
/// \param dataset_name The dataset's name (Dataset::name()).
/// \param side 0 for E1, 1 for E2.
/// \param id The entity's index within the side.
std::string SyntheticExternalId(std::string_view dataset_name, int side,
                                core::EntityId id);

/// \brief A partition of one entity collection into shards.
struct ShardPlan {
  std::uint32_t num_shards = 1;          ///< shard count (>= 1)
  std::vector<std::uint32_t> assignment; ///< entity index -> shard
  /// Per-shard member lists, each ascending by entity index. Ascending order
  /// is what makes per-shard probe emissions mergeable back into the global
  /// orders (local id ascending <=> global id ascending within a shard).
  std::vector<std::vector<core::EntityId>> members;

  /// \brief Builds a plan from an explicit assignment vector (tests use this
  ///        to force empty, singleton and all-in-one shards).
  /// \param assignment Entity index -> shard, each value < num_shards.
  /// \param num_shards Number of shards (>= 1).
  static ShardPlan FromAssignments(std::vector<std::uint32_t> assignment,
                                   std::uint32_t num_shards);

  /// \brief The production plan: FNV assignment over synthetic external ids
  ///        of one dataset side.
  /// \param dataset The dataset being partitioned.
  /// \param side 0 for E1, 1 for E2.
  /// \param num_shards Number of shards (>= 1).
  static ShardPlan ForDatasetSide(const core::Dataset& dataset, int side,
                                  std::uint32_t num_shards);
};

/// \brief Overrides for the sharded entry points; zero/empty fields defer to
///        the environment knobs.
struct ShardOptions {
  /// Shard count; 0 reads ERB_SHARDS (default 1 — sharding is opt-in).
  std::uint32_t num_shards = 0;
  /// Memory budget in MB; kBudgetFromEnv reads ERB_MEM_BUDGET_MB (default 0
  /// = unlimited, i.e. always resident).
  std::size_t mem_budget_mb = kBudgetFromEnv;
  /// Test hook: explicit per-entity shard assignment for the indexed side
  /// (empty = FNV over synthetic external ids).
  std::vector<std::uint32_t> assignment;

  /// \brief Sentinel for mem_budget_mb: consult the environment.
  static constexpr std::size_t kBudgetFromEnv = static_cast<std::size_t>(-1);
};

/// \brief Resolves a shard count: `requested` if non-zero, else ERB_SHARDS
///        (clamped to [1, kMaxShards]; malformed values warn and default
///        to 1).
/// \param requested Caller override; 0 defers to the environment.
std::uint32_t ResolveShardCount(std::uint32_t requested);

/// \brief Resolves the memory budget in MB: `requested` unless it is
///        ShardOptions::kBudgetFromEnv, else ERB_MEM_BUDGET_MB (0 =
///        unlimited).
/// \param requested Caller override; kBudgetFromEnv defers to the
///        environment.
std::size_t ResolveMemBudgetMb(std::size_t requested);

/// \brief Build/probe schedule chosen by the memory-budget gauge.
enum class ShardSchedule {
  kResident,  ///< all per-shard indexes built up front and kept alive
  kRotate,    ///< one shard at a time: build, probe, free, next
};

/// \brief Engineering estimate of the bytes needed to hold every per-shard
///        index (and its token sets) resident at once. Derived from the
///        ScanCount CSR layout: ~8 bytes per token for the sets themselves
///        plus ~16 bytes per token occurrence of postings + dictionary, and
///        per-set bookkeeping. Deliberately a ceiling-ish estimate — the
///        budget decides a schedule, it is not an allocator.
/// \param total_tokens Total token occurrences across all indexed sets.
/// \param num_sets Number of indexed sets.
std::uint64_t ProjectResidentBytes(std::uint64_t total_tokens,
                                   std::uint64_t num_sets);

/// \brief Chooses the schedule: kRotate when a budget is set, more than one
///        shard exists, and the projected resident bytes exceed it;
///        kResident otherwise (budget 0 = unlimited). Publishes the
///        shard.projected_mb / shard.mem_budget_mb / shard.schedule_rotate
///        gauges as a side effect.
/// \param projected_bytes ProjectResidentBytes of the indexed side.
/// \param budget_mb Resolved memory budget in MB (0 = unlimited).
/// \param num_shards Resolved shard count.
ShardSchedule ChooseSchedule(std::uint64_t projected_bytes,
                             std::size_t budget_mb, std::uint32_t num_shards);

}  // namespace erb::shard
