// Shard-partitioned sparse joins: the batch ε/kNN/global-top-K joins of
// src/sparsenn/ run against per-shard ScanCount/PrefixScanCount indexes,
// with per-shard candidate streams merged into global results.
//
// Determinism contract (oracle-enforced in tests/shard_test.cpp): for every
// shard count and thread count, the finalized candidate set is byte-identical
// to the corresponding unsharded join. The per-shard probes reuse the exact
// probe functors of sparsenn/probes.hpp, per-shard kNN selections merge
// through the established (similarity desc, id asc) tie order, and the global
// top-K threshold is recomputed from the merged per-shard heaps — see
// docs/sharding.md for the merge-semantics proofs.
#pragma once

#include <cstddef>

#include "core/entity.hpp"
#include "shard/plan.hpp"
#include "sparsenn/joins.hpp"

namespace erb::shard {

/// \brief Sharded ε-Join: indexes each shard of E1 separately, probes every
///        shard with all of E2, and unions the per-shard candidates.
///        Byte-identical to sparsenn::EpsilonJoin (a non-positive threshold
///        delegates to its Cartesian fallback — no index is involved).
/// \param dataset The dataset to join.
/// \param mode Schema-agnostic or schema-based text.
/// \param config Tokenization, measure and filter mode (shared with the
///        unsharded join).
/// \param threshold The ε similarity threshold.
/// \param options Shard count / memory budget / assignment overrides.
sparsenn::SparseResult ShardedEpsilonJoin(const core::Dataset& dataset,
                                          core::SchemaMode mode,
                                          const sparsenn::SparseConfig& config,
                                          double threshold,
                                          const ShardOptions& options = {});

/// \brief Sharded kNN-Join: each shard contributes its local top-k-distinct
///        selection per query; the per-shard runs are k-way merged in the
///        (similarity desc, id asc) order and the distinct-value cut is
///        re-applied to the merged stream. Byte-identical to
///        sparsenn::KnnJoin.
/// \param dataset The dataset to join.
/// \param mode Schema-agnostic or schema-based text.
/// \param config Tokenization, measure and filter mode.
/// \param k Number of distinct similarity values to keep per query.
/// \param reverse When true, E2 is sharded/indexed and E1 probes (RVS).
/// \param options Shard count / memory budget / assignment overrides.
sparsenn::SparseResult ShardedKnnJoin(const core::Dataset& dataset,
                                      core::SchemaMode mode,
                                      const sparsenn::SparseConfig& config,
                                      int k, bool reverse,
                                      const ShardOptions& options = {});

/// \brief Sharded global top-K join: pass 1 folds each shard's top-K
///        similarity heap into the global heap (shard-ascending fold, like
///        the unsharded chunk fold), pass 2 re-probes every shard at the
///        merged K-th threshold. Byte-identical to sparsenn::GlobalTopKJoin;
///        under the rotation schedule each pass rebuilds the shard index.
/// \param dataset The dataset to join.
/// \param mode Schema-agnostic or schema-based text.
/// \param config Tokenization, measure and filter mode.
/// \param global_k Number of best pairs to keep across E1 x E2 (ties with
///        the K-th similarity all retained; 0 selects nothing).
/// \param options Shard count / memory budget / assignment overrides.
sparsenn::SparseResult ShardedGlobalTopKJoin(
    const core::Dataset& dataset, core::SchemaMode mode,
    const sparsenn::SparseConfig& config, std::size_t global_k,
    const ShardOptions& options = {});

}  // namespace erb::shard
