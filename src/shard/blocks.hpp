// Shard-partitioned block-based candidate generation.
//
// The lazy block builders (Standard, Q-Grams, Extended Q-Grams) derive an
// entity's blocking keys from that entity's text alone, so a pair is a
// candidate iff the two entities share a key — a property that survives any
// partition of E1. Sharding therefore builds each shard's blocks over (shard
// subset of E1, full E2) and unions the per-shard pair streams; the finalized
// candidate set is byte-identical to the unsharded BuildBlocks +
// EntityBlockIndex stream.
//
// The proactive Suffix-Arrays-based builders are *not* shardable this way:
// their b_max bound discards blocks by size during building, and a block's
// size depends on how many E1 entities share the suffix — i.e. on the whole
// collection, not the shard. Requesting them here throws.
#pragma once

#include "blocking/builders.hpp"
#include "core/candidates.hpp"
#include "core/entity.hpp"
#include "shard/plan.hpp"

namespace erb::shard {

/// \brief True when `kind` is a lazy builder whose sharded candidates are
///        byte-identical to the unsharded ones (Standard, Q-Grams, Extended
///        Q-Grams); false for the proactive Suffix-Arrays family, whose
///        b_max bound is block-size-dependent and thus partition-sensitive.
/// \param kind The block builder.
bool BuilderIsShardable(blocking::BuilderKind kind);

/// \brief Sharded block-based candidate generation: builds each E1 shard's
///        blocks against the full E2, streams the distinct pairs of every
///        shard with global E1 ids, and finalizes the union. Byte-identical
///        to the unsharded pipeline for every lazy builder; throws
///        std::invalid_argument for the Suffix-Arrays family (see
///        BuilderIsShardable). Under the rotation schedule at most one
///        shard's block collection is alive at a time.
/// \param dataset The dataset to block.
/// \param mode Schema-agnostic or schema-based key derivation.
/// \param config Builder kind and parameters.
/// \param options Shard count / memory budget / assignment overrides.
core::CandidateSet ShardedBlockCandidates(const core::Dataset& dataset,
                                          core::SchemaMode mode,
                                          const blocking::BuilderConfig& config,
                                          const ShardOptions& options = {});

}  // namespace erb::shard
