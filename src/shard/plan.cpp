#include "shard/plan.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/env.hpp"
#include "common/hash.hpp"
#include "obs/trace.hpp"

namespace erb::shard {

std::uint32_t ShardOf(std::string_view external_id, std::uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<std::uint32_t>(FnvHash64(external_id) % num_shards);
}

std::string SyntheticExternalId(std::string_view dataset_name, int side,
                                core::EntityId id) {
  std::string out;
  out.reserve(dataset_name.size() + 16);
  out.append(dataset_name);
  out += side == 1 ? ":e2:" : ":e1:";
  out += std::to_string(id);
  return out;
}

ShardPlan ShardPlan::FromAssignments(std::vector<std::uint32_t> assignment,
                                     std::uint32_t num_shards) {
  if (num_shards == 0 || num_shards > kMaxShards) {
    throw std::invalid_argument("ShardPlan: num_shards out of [1, kMaxShards]");
  }
  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.assignment = std::move(assignment);
  plan.members.resize(num_shards);
  for (std::size_t i = 0; i < plan.assignment.size(); ++i) {
    const std::uint32_t s = plan.assignment[i];
    if (s >= num_shards) {
      throw std::invalid_argument("ShardPlan: assignment value >= num_shards");
    }
    // Ascending entity order per shard falls out of this single forward pass.
    plan.members[s].push_back(static_cast<core::EntityId>(i));
  }
  return plan;
}

ShardPlan ShardPlan::ForDatasetSide(const core::Dataset& dataset, int side,
                                    std::uint32_t num_shards) {
  const std::size_t n =
      side == 1 ? dataset.e2().size() : dataset.e1().size();
  std::vector<std::uint32_t> assignment(n);
  for (std::size_t i = 0; i < n; ++i) {
    assignment[i] = ShardOf(
        SyntheticExternalId(dataset.name(), side,
                            static_cast<core::EntityId>(i)),
        num_shards);
  }
  return FromAssignments(std::move(assignment), num_shards);
}

std::uint32_t ResolveShardCount(std::uint32_t requested) {
  if (requested != 0) {
    if (requested > kMaxShards) {
      throw std::invalid_argument("shard count exceeds kMaxShards");
    }
    return requested;
  }
  return static_cast<std::uint32_t>(
      ParseEnvCount("ERB_SHARDS", std::getenv("ERB_SHARDS"), 1, kMaxShards,
                    /*fallback=*/1));
}

std::size_t ResolveMemBudgetMb(std::size_t requested) {
  if (requested != ShardOptions::kBudgetFromEnv) return requested;
  // 0 = unlimited; the parse helper needs min <= fallback, so accept the
  // whole range and treat 0 as the documented "no budget" value.
  return ParseEnvCount("ERB_MEM_BUDGET_MB", std::getenv("ERB_MEM_BUDGET_MB"),
                       0, static_cast<std::size_t>(1) << 40, /*fallback=*/0);
}

std::uint64_t ProjectResidentBytes(std::uint64_t total_tokens,
                                   std::uint64_t num_sets) {
  // 8 B/token for the TokenSet hashes, ~16 B/token for CSR postings plus the
  // robin-hood dictionary at load <= 1/2, ~32 B/set of offsets, sizes and
  // vector headers. The prefix index's positional postings land in the same
  // ballpark (4+8 B/token of set_tokens_ + postings_).
  return total_tokens * 24 + num_sets * 32;
}

ShardSchedule ChooseSchedule(std::uint64_t projected_bytes,
                             std::size_t budget_mb, std::uint32_t num_shards) {
  obs::GaugeSet("shard.projected_mb", projected_bytes >> 20);
  obs::GaugeSet("shard.mem_budget_mb", budget_mb);
  const bool rotate = budget_mb > 0 && num_shards > 1 &&
                      projected_bytes > (static_cast<std::uint64_t>(budget_mb) << 20);
  obs::GaugeSet("shard.schedule_rotate", rotate ? 1 : 0);
  return rotate ? ShardSchedule::kRotate : ShardSchedule::kResident;
}

}  // namespace erb::shard
