#include "shard/joins.hpp"

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "obs/trace.hpp"
#include "shard/merge.hpp"
#include "sparsenn/probes.hpp"

namespace erb::shard {
namespace {

using core::EntityId;
using sparsenn::kPhaseIndex;
using sparsenn::kPhasePreprocess;
using sparsenn::kPhaseQuery;
using sparsenn::PrefixScanCountIndex;
using sparsenn::RankedTokenSet;
using sparsenn::ScanCountIndex;
using sparsenn::SparseResult;
using sparsenn::TokenSet;

// The shard subset of the indexed side's token sets, in ascending-member
// order: shard-local id i is global id members[i], so local ascending maps to
// global ascending — the property every merge below leans on.
std::vector<TokenSet> GatherSets(const std::vector<TokenSet>& all,
                                 const std::vector<EntityId>& members) {
  std::vector<TokenSet> subset;
  subset.reserve(members.size());
  for (EntityId id : members) subset.push_back(all[id]);
  return subset;
}

std::uint64_t TotalTokens(const std::vector<TokenSet>& sets) {
  std::uint64_t total = 0;
  for (const auto& set : sets) total += set.size();
  return total;
}

// Resolves plan + schedule and publishes the shard gauges; shared by the
// three joins. The plan always covers the *indexed* side.
struct ShardSetup {
  ShardPlan plan;
  ShardSchedule schedule;
};

ShardSetup MakeSetup(const core::Dataset& dataset, int indexed_side,
                     const std::vector<TokenSet>& indexed_sets,
                     const ShardOptions& options) {
  ShardSetup setup;
  const std::uint32_t shards = ResolveShardCount(options.num_shards);
  if (!options.assignment.empty() &&
      options.assignment.size() != indexed_sets.size()) {
    throw std::invalid_argument(
        "ShardOptions::assignment must cover the indexed side exactly");
  }
  setup.plan = options.assignment.empty()
                   ? ShardPlan::ForDatasetSide(dataset, indexed_side, shards)
                   : ShardPlan::FromAssignments(options.assignment, shards);
  obs::GaugeSet("shard.shards", shards);
  obs::CounterAdd("shard.assigned", setup.plan.assignment.size());
  setup.schedule = ChooseSchedule(
      ProjectResidentBytes(TotalTokens(indexed_sets), indexed_sets.size()),
      ResolveMemBudgetMb(options.mem_budget_mb), shards);
  return setup;
}

// Drives the per-shard build/probe passes under the chosen schedule.
// kResident builds every shard's state up front (first Pass) and keeps them
// alive across passes; kRotate builds, probes and frees one shard at a time,
// rebuilding on every pass — spill-free, at most one shard resident.
// Probe results per shard cannot depend on other shards' states, so the two
// schedules emit identical candidates.
template <typename State>
class ShardRunner {
 public:
  template <typename MakeState>
  ShardRunner(ShardSchedule schedule, std::uint32_t num_shards,
              PhaseTimer* timing, MakeState&& make)
      : schedule_(schedule),
        num_shards_(num_shards),
        timing_(timing),
        make_(std::forward<MakeState>(make)) {}

  template <typename Probe>
  void Pass(Probe&& probe) {
    if (schedule_ == ShardSchedule::kResident) {
      if (resident_.empty()) {
        resident_.reserve(num_shards_);
        for (std::uint32_t s = 0; s < num_shards_; ++s) {
          resident_.push_back(
              timing_->Measure(kPhaseIndex, [&] { return make_(s); }));
          obs::CounterAdd("shard.builds", 1);
        }
      }
      for (std::uint32_t s = 0; s < num_shards_; ++s) {
        timing_->Measure(kPhaseQuery, [&] { probe(s, resident_[s]); });
        obs::CounterAdd("shard.probe_passes", 1);
      }
      return;
    }
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
      State state = timing_->Measure(kPhaseIndex, [&] { return make_(s); });
      obs::CounterAdd("shard.builds", 1);
      timing_->Measure(kPhaseQuery, [&] { probe(s, state); });
      obs::CounterAdd("shard.probe_passes", 1);
      obs::CounterAdd("shard.rotations", 1);
      // `state` goes out of scope here: the rotation's whole point.
    }
  }

 private:
  ShardSchedule schedule_;
  std::uint32_t num_shards_;
  PhaseTimer* timing_;
  std::function<State(std::uint32_t)> make_;
  std::vector<State> resident_;
};

// Per-shard state for the length-filtered (merge-count) probes.
struct LengthState {
  ScanCountIndex index;
};

// Per-shard state for the prefix-filtered probes: the shard's index lives in
// its *own* global-frequency rank space (document frequencies of the shard's
// sets), so every query is remapped per shard. The remap changes only the
// scan order inside the probe, never the exact overlaps it verifies, so
// emitted candidates are unaffected.
struct PrefixState {
  PrefixScanCountIndex index;
  std::vector<RankedTokenSet> ranked_queries;
};

LengthState MakeLengthState(const std::vector<TokenSet>& indexed_sets,
                            const std::vector<EntityId>& members) {
  return LengthState{ScanCountIndex(GatherSets(indexed_sets, members))};
}

PrefixState MakePrefixState(const std::vector<TokenSet>& indexed_sets,
                            const std::vector<EntityId>& members,
                            const std::vector<TokenSet>& query_sets,
                            sparsenn::SimilarityMeasure measure,
                            double build_threshold) {
  PrefixState state{
      PrefixScanCountIndex(GatherSets(indexed_sets, members), measure,
                           build_threshold),
      {}};
  state.ranked_queries.reserve(query_sets.size());
  for (const auto& set : query_sets) {
    state.ranked_queries.push_back(state.index.ranks().Remap(set));
  }
  return state;
}

void MergeCandidates(core::CandidateSet& into, core::CandidateSet&& from) {
  into.Merge(std::move(from));
}

// Builds both sides' token sets with the join's timing phases.
void Preprocess(const core::Dataset& dataset, core::SchemaMode mode,
                const sparsenn::SparseConfig& config, bool reverse,
                SparseResult* result, std::vector<TokenSet>* indexed_sets,
                std::vector<TokenSet>* query_sets) {
  const int indexed_side = reverse ? 1 : 0;
  const int query_side = reverse ? 0 : 1;
  result->timing.Measure(kPhasePreprocess, [&] {
    *indexed_sets = sparsenn::BuildSideTokenSets(dataset, indexed_side, mode,
                                                 config.model, config.clean);
  });
  result->timing.Measure(kPhasePreprocess, [&] {
    *query_sets = sparsenn::BuildSideTokenSets(dataset, query_side, mode,
                                               config.model, config.clean);
  });
}

}  // namespace

SparseResult ShardedEpsilonJoin(const core::Dataset& dataset,
                                core::SchemaMode mode,
                                const sparsenn::SparseConfig& config,
                                double threshold,
                                const ShardOptions& options) {
  if (threshold <= 0.0) {
    // The Cartesian fallback never touches an index; per-shard execution
    // would only re-derive the same full E1 x E2 enumeration.
    return sparsenn::EpsilonJoin(dataset, mode, config, threshold);
  }
  SparseResult result;
  std::vector<TokenSet> indexed_sets, query_sets;
  Preprocess(dataset, mode, config, /*reverse=*/false, &result, &indexed_sets,
             &query_sets);
  const ShardSetup setup = MakeSetup(dataset, 0, indexed_sets, options);
  const auto& members = setup.plan.members;

  // Per-shard collector: remap the shard-local match id to its global E1 id
  // and apply the exact threshold — the unsharded ε collect, relocated.
  const auto collect_for = [&](std::uint32_t s) {
    return [&, s](EntityId q, const std::vector<sparsenn::ScoredMatch>& matches,
                  core::CandidateSet& candidates) {
      for (const auto& [local, sim] : matches) {
        if (sim >= threshold) candidates.Add(members[s][local], q);
      }
    };
  };

  if (sparsenn::ResolveFilterMode(config.filter) ==
      sparsenn::FilterMode::kPrefix) {
    ShardRunner<PrefixState> runner(
        setup.schedule, setup.plan.num_shards, &result.timing,
        [&](std::uint32_t s) {
          return MakePrefixState(indexed_sets, members[s], query_sets,
                                 config.measure, threshold);
        });
    runner.Pass([&](std::uint32_t s, const PrefixState& state) {
      result.candidates.Merge(sparsenn::ParallelProbe<core::CandidateSet>(
          state.index, state.ranked_queries,
          sparsenn::ProbePrefixEpsilon{config.measure, threshold},
          collect_for(s), MergeCandidates));
    });
  } else {
    ShardRunner<LengthState> runner(
        setup.schedule, setup.plan.num_shards, &result.timing,
        [&](std::uint32_t s) { return MakeLengthState(indexed_sets, members[s]); });
    runner.Pass([&](std::uint32_t s, const LengthState& state) {
      result.candidates.Merge(sparsenn::ParallelProbe<core::CandidateSet>(
          state.index, query_sets,
          sparsenn::ProbeWithLengthFilter{config.measure, threshold},
          collect_for(s), MergeCandidates));
    });
  }

  result.timing.Measure(kPhaseQuery, [&] { result.candidates.Finalize(); });
  obs::CounterAdd("shard.candidates", result.candidates.size());
  return result;
}

SparseResult ShardedKnnJoin(const core::Dataset& dataset, core::SchemaMode mode,
                            const sparsenn::SparseConfig& config, int k,
                            bool reverse, const ShardOptions& options) {
  SparseResult result;
  std::vector<TokenSet> indexed_sets, query_sets;
  Preprocess(dataset, mode, config, reverse, &result, &indexed_sets,
             &query_sets);
  const int indexed_side = reverse ? 1 : 0;
  const ShardSetup setup = MakeSetup(dataset, indexed_side, indexed_sets,
                                     options);
  const auto& members = setup.plan.members;
  const std::size_t nq = query_sets.size();

  // runs[q] holds one sorted (sim desc, id asc) run per shard that matched
  // anything: the shard's local top-k-distinct selection with ids already
  // global. Slots are written by the probing chunk that owns query q, so the
  // parallel fill is race-free and the content thread-count-invariant.
  std::vector<std::vector<std::vector<ScoredMatch>>> runs(nq);
  const auto reduce_into_runs = [&](std::uint32_t s, EntityId q,
                                    std::vector<sparsenn::ScoredMatch>* matches) {
    std::vector<ScoredMatch> run;
    sparsenn::SelectKnnMatches(matches, k, [&](EntityId local, double sim) {
      run.push_back(ScoredMatch{members[s][local], sim});
    });
    if (!run.empty()) runs[q].push_back(std::move(run));
  };

  const auto probe_shard = [&](std::uint32_t s, const auto& state,
                               const auto& probe, const auto& queries) {
    using Index = std::decay_t<decltype(state.index)>;
    ParallelFor(0, nq, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
      typename Index::ProbeScratch scratch;
      std::vector<sparsenn::ScoredMatch> matches;
      for (std::size_t q = begin; q < end; ++q) {
        matches.clear();
        probe(state.index, queries[q], &scratch, &matches);
        reduce_into_runs(s, static_cast<EntityId>(q), &matches);
      }
      Index::FlushCounters(&scratch);
    });
  };

  if (k > 0 && sparsenn::ResolveFilterMode(
                   config.filter, sparsenn::ProbeShape::kDecreasing) ==
                   sparsenn::FilterMode::kPrefix) {
    ShardRunner<PrefixState> runner(
        setup.schedule, setup.plan.num_shards, &result.timing,
        [&](std::uint32_t s) {
          return MakePrefixState(indexed_sets, members[s], query_sets,
                                 config.measure, /*build_threshold=*/0.0);
        });
    runner.Pass([&](std::uint32_t s, const PrefixState& state) {
      probe_shard(s, state,
                  sparsenn::ProbePrefixKnn{config.measure,
                                           static_cast<std::size_t>(k)},
                  state.ranked_queries);
    });
  } else {
    ShardRunner<LengthState> runner(
        setup.schedule, setup.plan.num_shards, &result.timing,
        [&](std::uint32_t s) { return MakeLengthState(indexed_sets, members[s]); });
    runner.Pass([&](std::uint32_t s, const LengthState& state) {
      probe_shard(s, state, sparsenn::ProbeAll{config.measure}, query_sets);
    });
  }

  // Merge phase: k-way merge each query's per-shard runs in the established
  // (sim desc, id asc) order and re-apply the distinct-value cut. Each
  // shard run is that shard's local selection, which provably contains the
  // shard's contribution to the global selection (any pair at one of the
  // global top-k distinct values is at one of its shard's top-k too), so the
  // cut over the merged stream reproduces the unsharded selection exactly.
  result.timing.Measure(kPhaseQuery, [&] {
    result.candidates = ParallelMapReduce<core::CandidateSet>(
        0, nq, /*grain=*/0,
        [&](std::size_t begin, std::size_t end) {
          core::CandidateSet chunk;
          std::vector<ScoredMatch> merged;
          for (std::size_t q = begin; q < end; ++q) {
            MergeScoredRuns(runs[q], &merged);
            sparsenn::EmitTopKDistinct(
                merged, k, [&](EntityId id, double) {
                  sparsenn::EmitPair(&chunk, reverse,
                                     static_cast<EntityId>(q), id);
                });
          }
          return chunk;
        },
        MergeCandidates);
    obs::CounterAdd("shard.merges", nq);
    result.candidates.Finalize();
  });
  obs::CounterAdd("shard.candidates", result.candidates.size());
  return result;
}

SparseResult ShardedGlobalTopKJoin(const core::Dataset& dataset,
                                   core::SchemaMode mode,
                                   const sparsenn::SparseConfig& config,
                                   std::size_t global_k,
                                   const ShardOptions& options) {
  SparseResult result;
  if (global_k == 0) {
    // K = 0 selects nothing (the unsharded guard, mirrored: an empty merged
    // heap must not fall through to the exact-match threshold).
    result.candidates.Finalize();
    return result;
  }
  std::vector<TokenSet> indexed_sets, query_sets;
  Preprocess(dataset, mode, config, /*reverse=*/false, &result, &indexed_sets,
             &query_sets);
  const ShardSetup setup = MakeSetup(dataset, 0, indexed_sets, options);
  const auto& members = setup.plan.members;

  const auto heap_merge = [global_k](std::vector<double>& into,
                                     std::vector<double>&& from) {
    for (double sim : from) sparsenn::OfferTopK(&into, global_k, sim);
  };

  // Pass 1: each shard's heap is exactly the top-K multiset of the shard's
  // similarities (chunk heaps merged in chunk order, like unsharded pass 1);
  // folding the shard heaps in ascending shard order yields the top-K
  // multiset of the whole corpus, so the K-th threshold equals the
  // unsharded one at any shard and thread count.
  std::vector<double> global_heap;
  const auto fold_shard_heap = [&](std::vector<double>&& shard_heap) {
    heap_merge(global_heap, std::move(shard_heap));
  };

  const bool prefix =
      sparsenn::ResolveFilterMode(config.filter,
                                  sparsenn::ProbeShape::kDecreasing) ==
      sparsenn::FilterMode::kPrefix;

  if (prefix) {
    ShardRunner<PrefixState> runner(
        setup.schedule, setup.plan.num_shards, &result.timing,
        [&](std::uint32_t s) {
          // Build threshold 0: pass 1 starts at bound 0 and pass 2's
          // threshold is unknown until the shard heaps merge.
          return MakePrefixState(indexed_sets, members[s], query_sets,
                                 config.measure, /*build_threshold=*/0.0);
        });
    runner.Pass([&](std::uint32_t, const PrefixState& state) {
      fold_shard_heap(ParallelMapReduce<std::vector<double>>(
          0, state.ranked_queries.size(), /*grain=*/0,
          [&](std::size_t chunk_begin, std::size_t chunk_end) {
            std::vector<double> chunk_heap;
            PrefixScanCountIndex::ProbeScratch scratch;
            for (std::size_t q = chunk_begin; q < chunk_end; ++q) {
              const auto& query = state.ranked_queries[q];
              state.index.ProbeDecreasing(
                  query,
                  [&] {
                    return chunk_heap.size() == global_k ? chunk_heap.front()
                                                         : 0.0;
                  },
                  &scratch,
                  [&](std::uint32_t id, std::uint32_t overlap,
                      std::uint32_t indexed_size) {
                    (void)id;
                    sparsenn::OfferTopK(
                        &chunk_heap, global_k,
                        sparsenn::SetSimilarity(config.measure, overlap,
                                                query.size(), indexed_size));
                  });
            }
            PrefixScanCountIndex::FlushCounters(&scratch);
            return chunk_heap;
          },
          heap_merge));
    });
    const double threshold = global_heap.empty() ? 1.0 : global_heap.front();

    // Pass 2: the per-shard ε emission at the merged threshold. Every
    // shard's own K-th value is at most the merged one, so no global winner
    // was dropped by its shard in pass 1's pruning — the union over shards
    // is the unsharded pass-2 emission.
    runner.Pass([&](std::uint32_t s, const PrefixState& state) {
      result.candidates.Merge(sparsenn::ParallelProbe<core::CandidateSet>(
          state.index, state.ranked_queries,
          sparsenn::ProbePrefixEpsilon{config.measure, threshold},
          [&, s](EntityId q,
                 const std::vector<sparsenn::ScoredMatch>& matches,
                 core::CandidateSet& candidates) {
            for (const auto& [local, sim] : matches) {
              if (sim >= threshold) candidates.Add(members[s][local], q);
            }
          },
          MergeCandidates));
    });
  } else {
    ShardRunner<LengthState> runner(
        setup.schedule, setup.plan.num_shards, &result.timing,
        [&](std::uint32_t s) { return MakeLengthState(indexed_sets, members[s]); });
    const sparsenn::ProbeAll probe{config.measure};
    runner.Pass([&](std::uint32_t, const LengthState& state) {
      fold_shard_heap(sparsenn::ParallelProbe<std::vector<double>>(
          state.index, query_sets, probe,
          [global_k](EntityId,
                     const std::vector<sparsenn::ScoredMatch>& matches,
                     std::vector<double>& heap) {
            for (const auto& match : matches) {
              sparsenn::OfferTopK(&heap, global_k, match.second);
            }
          },
          heap_merge));
    });
    const double threshold = global_heap.empty() ? 1.0 : global_heap.front();
    runner.Pass([&](std::uint32_t s, const LengthState& state) {
      result.candidates.Merge(sparsenn::ParallelProbe<core::CandidateSet>(
          state.index, query_sets, probe,
          [&, s](EntityId q,
                 const std::vector<sparsenn::ScoredMatch>& matches,
                 core::CandidateSet& candidates) {
            for (const auto& [local, sim] : matches) {
              if (sim >= threshold) candidates.Add(members[s][local], q);
            }
          },
          MergeCandidates));
    });
  }

  result.timing.Measure(kPhaseQuery, [&] { result.candidates.Finalize(); });
  obs::CounterAdd("shard.candidates", result.candidates.size());
  return result;
}

}  // namespace erb::shard
