#include "shard/resolver.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "obs/trace.hpp"
#include "shard/merge.hpp"

namespace erb::shard {

ShardedResolver::ShardedResolver(serve::ServeConfig config,
                                 const ShardOptions& options) {
  const std::uint32_t shards = ResolveShardCount(options.num_shards);
  shards_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<serve::Resolver>(config));
  }
  local_to_global_.resize(shards);
  obs::GaugeSet("shard.shards", shards);
}

serve::InsertResult ShardedResolver::Insert(
    std::string external_id, const core::EntityProfile& profile) {
  // Corpus-wide duplicate rejection must precede shard routing only in
  // spirit — routing is a pure function of the id, so the duplicate would
  // land on the same shard anyway; the global map just answers without
  // touching it.
  if (const auto it = id_lookup_.find(external_id); it != id_lookup_.end()) {
    return serve::InsertResult{it->second, false};
  }
  const std::uint32_t s =
      ShardOf(external_id, static_cast<std::uint32_t>(shards_.size()));
  const core::EntityId global =
      static_cast<core::EntityId>(global_to_local_.size());
  id_lookup_.emplace(external_id, global);
  const serve::InsertResult local =
      shards_[s]->Insert(std::move(external_id), profile);
  global_to_local_.emplace_back(s, local.id);
  local_to_global_[s].push_back(global);
  obs::CounterAdd("shard.assigned", 1);
  return serve::InsertResult{global, true};
}

serve::ResolveResult ShardedResolver::Resolve(
    const core::EntityProfile& query) const {
  const std::size_t n = shards_.size();
  std::vector<std::vector<serve::Match>> match_runs(n);
  std::vector<std::vector<core::EntityId>> block_runs(n);
  for (std::size_t s = 0; s < n; ++s) {
    serve::ResolveResult local = shards_[s]->Resolve(query);
    // Local ids ascend within the shard's insert order and local_to_global_
    // is strictly increasing, so the remapped runs stay ascending.
    match_runs[s].reserve(local.matches.size());
    for (const serve::Match& m : local.matches) {
      match_runs[s].push_back(
          serve::Match{local_to_global_[s][m.id], m.similarity});
    }
    block_runs[s].reserve(local.block_candidates.size());
    for (core::EntityId id : local.block_candidates) {
      block_runs[s].push_back(local_to_global_[s][id]);
    }
  }
  serve::ResolveResult merged;
  MergeAscendingRuns(
      match_runs, [](const serve::Match& m) { return m.id; }, &merged.matches);
  MergeAscendingRuns(
      block_runs, [](core::EntityId id) { return id; },
      &merged.block_candidates);
  obs::CounterAdd("shard.merges", 1);
  return merged;
}

std::vector<serve::ResolveResult> ShardedResolver::ResolveBatch(
    const std::vector<core::EntityProfile>& queries) const {
  std::vector<serve::ResolveResult> results(queries.size());
  ParallelFor(0, queries.size(), /*grain=*/0,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t q = begin; q < end; ++q) {
                  results[q] = Resolve(queries[q]);
                }
              });
  return results;
}

std::uint64_t ShardedResolver::SealEpoch() {
  std::uint64_t epoch = 0;
  for (const auto& shard : shards_) {
    epoch = std::max(epoch, shard->SealEpoch());
  }
  return epoch;
}

const std::string& ShardedResolver::ExternalIdOf(core::EntityId id) const {
  const auto& [s, local] = global_to_local_[id];
  return shards_[s]->ExternalIdOf(local);
}

}  // namespace erb::shard
