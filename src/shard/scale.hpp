// The scale-out runner behind bench_scalability: streams a scaled-replica
// corpus (datagen/scale.hpp) shard by shard through the ε filtering pipeline
// without ever materializing the whole corpus.
//
// Per shard: render the shard's entities (FNV assignment over the scaled
// external ids), tokenize them, build the ScanCount index, probe the shared
// query set through the exact length-filtered probe of the batch ε-Join, and
// record the shard's cell (entities, tokens, build/probe time, candidates,
// running peak RSS). Under the kResident schedule all shard indexes are
// built before any probe; under kRotate (forced whenever the projected
// resident bytes exceed ERB_MEM_BUDGET_MB) at most one shard's token sets
// and index are alive at a time — same candidates either way.
#pragma once

#include <cstdint>
#include <vector>

#include "core/candidates.hpp"
#include "datagen/scale.hpp"
#include "shard/plan.hpp"
#include "sparsenn/joins.hpp"

namespace erb::shard {

/// \brief One scale-out ε run: corpus spec, join parameters, shard knobs.
struct ScaleRunConfig {
  datagen::ScaleSpec spec;           ///< the scaled corpus to build
  sparsenn::SparseConfig sparse;     ///< tokenization + measure (filter: length)
  double threshold = 0.5;            ///< ε similarity threshold (> 0)
  std::uint64_t num_queries = 1000;  ///< queries rendered from the e2 view
  ShardOptions options;              ///< shard count / memory budget
  bool collect_pairs = false;        ///< keep the candidate pairs (tests only)
};

/// \brief Per-shard measurement cell of one scale run.
struct ShardCell {
  std::uint32_t shard = 0;           ///< shard number
  std::uint64_t entities = 0;        ///< entities assigned to the shard
  std::uint64_t tokens = 0;          ///< token occurrences across its sets
  double render_ms = 0.0;            ///< entity rendering + tokenization time
  double build_ms = 0.0;             ///< index build time
  double probe_ms = 0.0;             ///< query probe time
  std::uint64_t candidates = 0;      ///< pairs at or above the threshold
  std::uint64_t peak_rss_bytes = 0;  ///< process high-water RSS after probing
};

/// \brief Outcome of one scale run.
struct ScaleRunResult {
  std::uint32_t num_shards = 0;          ///< resolved shard count
  ShardSchedule schedule = ShardSchedule::kResident;  ///< chosen schedule
  std::uint64_t corpus_size = 0;         ///< total entities rendered
  std::uint64_t projected_bytes = 0;     ///< resident-set projection used
  std::uint64_t total_candidates = 0;    ///< candidates summed over shards
  std::uint64_t peak_rss_bytes = 0;      ///< process high-water RSS at the end
  std::vector<ShardCell> cells;          ///< one cell per shard
  core::CandidateSet pairs;              ///< finalized, when collect_pairs
};

/// \brief Runs the sharded ε pipeline over a scaled corpus. The candidate
///        pairs (and their count) are byte-identical across shard counts,
///        thread counts and schedules; only the cells change. Throws
///        std::invalid_argument for a non-positive threshold or an empty
///        corpus.
/// \param config The run configuration.
ScaleRunResult RunScaleEpsilon(const ScaleRunConfig& config);

}  // namespace erb::shard
