#include "shard/blocks.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "blocking/entity_index.hpp"
#include "common/parallel.hpp"
#include "obs/trace.hpp"

namespace erb::shard {
namespace {

using core::EntityId;

// Rough token-occurrence stand-in for the schedule projection: blocking keys
// are derived from the entity texts, so text bytes scale with key volume.
std::uint64_t ProjectedTextTokens(const core::Dataset& dataset,
                                  core::SchemaMode mode) {
  std::uint64_t chars = 0;
  for (EntityId i = 0; i < dataset.e1().size(); ++i) {
    chars += dataset.EntityText(0, i, mode).size();
  }
  return chars / 4 + 1;
}

}  // namespace

bool BuilderIsShardable(blocking::BuilderKind kind) {
  return kind == blocking::BuilderKind::kStandard ||
         kind == blocking::BuilderKind::kQGrams ||
         kind == blocking::BuilderKind::kExtendedQGrams;
}

core::CandidateSet ShardedBlockCandidates(const core::Dataset& dataset,
                                          core::SchemaMode mode,
                                          const blocking::BuilderConfig& config,
                                          const ShardOptions& options) {
  if (!BuilderIsShardable(config.kind)) {
    throw std::invalid_argument(
        "ShardedBlockCandidates: the Suffix-Arrays builders enforce b_max "
        "against whole-collection block sizes and cannot be sharded "
        "byte-identically");
  }
  const std::uint32_t shards = ResolveShardCount(options.num_shards);
  const std::size_t n1 = dataset.e1().size();
  if (!options.assignment.empty() && options.assignment.size() != n1) {
    throw std::invalid_argument(
        "ShardOptions::assignment must cover E1 exactly");
  }
  const ShardPlan plan =
      options.assignment.empty()
          ? ShardPlan::ForDatasetSide(dataset, 0, shards)
          : ShardPlan::FromAssignments(options.assignment, shards);
  obs::GaugeSet("shard.shards", shards);
  obs::CounterAdd("shard.assigned", plan.assignment.size());
  const ShardSchedule schedule = ChooseSchedule(
      ProjectResidentBytes(ProjectedTextTokens(dataset, mode),
                           n1 + dataset.e2().size()),
      ResolveMemBudgetMb(options.mem_budget_mb), shards);

  // Block candidate generation is single-pass, so both schedules walk the
  // shards the same way; rotation just means what it always means here —
  // each shard's block collection is freed before the next is built.
  core::CandidateSet candidates;
  for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
    const auto& members = plan.members[s];
    if (members.empty()) continue;
    std::vector<core::EntityProfile> e1_subset;
    e1_subset.reserve(members.size());
    for (EntityId id : members) e1_subset.push_back(dataset.e1()[id]);
    const core::Dataset subset(dataset.name(), std::move(e1_subset),
                               dataset.e2(), {}, dataset.best_attribute());
    const blocking::BlockCollection blocks =
        blocking::BuildBlocks(subset, mode, config);
    obs::CounterAdd("shard.builds", 1);
    const blocking::EntityBlockIndex index(blocks, members.size(),
                                           dataset.e2().size());
    candidates.Merge(ParallelMapReduce<core::CandidateSet>(
        0, members.size(), /*grain=*/0,
        [&](std::size_t begin, std::size_t end) {
          core::CandidateSet chunk;
          index.Stream<false, false>(
              begin, end,
              [&](EntityId local, EntityId j, std::uint32_t, double) {
                chunk.Add(members[local], j);
              });
          return chunk;
        },
        [](core::CandidateSet& into, core::CandidateSet&& from) {
          into.Merge(std::move(from));
        }));
    obs::CounterAdd("shard.probe_passes", 1);
    if (schedule == ShardSchedule::kRotate) {
      obs::CounterAdd("shard.rotations", 1);
    }
  }
  candidates.Finalize();
  obs::CounterAdd("shard.candidates", candidates.size());
  return candidates;
}

}  // namespace erb::shard
