#include "shard/scale.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"
#include "obs/trace.hpp"
#include "sparsenn/probes.hpp"

namespace erb::shard {
namespace {

using core::EntityId;
using sparsenn::ScanCountIndex;
using sparsenn::TokenSet;

double MsSince(std::uint64_t start_ns) {
  return static_cast<double>(obs::NowNs() - start_ns) / 1e6;
}

TokenSet TokenizeProfile(const core::EntityProfile& profile,
                         const sparsenn::SparseConfig& sparse) {
  return sparsenn::BuildTokenSet(profile.AllValues(), sparse.model,
                                 sparse.clean);
}

// Probe accumulator: the candidate count always, the pairs only for the
// equivalence tests (a 10M-entity run must not materialize them).
struct ProbeAcc {
  std::uint64_t count = 0;
  core::CandidateSet pairs;
};

}  // namespace

ScaleRunResult RunScaleEpsilon(const ScaleRunConfig& config) {
  if (config.threshold <= 0.0) {
    throw std::invalid_argument("RunScaleEpsilon: threshold must be > 0");
  }
  const datagen::ScaleSpec& spec = config.spec;
  const std::uint64_t corpus = spec.CorpusSize();
  const std::uint64_t n1 = spec.base.n1;
  if (corpus == 0) {
    throw std::invalid_argument("RunScaleEpsilon: empty corpus");
  }

  ScaleRunResult result;
  result.corpus_size = corpus;
  const std::uint32_t shards = ResolveShardCount(config.options.num_shards);
  result.num_shards = shards;
  obs::GaugeSet("shard.shards", shards);

  // FNV assignment over the scaled external ids; 2 bytes per entity keeps
  // the map at 100 MB even for a 50M corpus (kMaxShards fits easily).
  std::vector<std::uint16_t> assignment(corpus);
  ParallelFor(0, corpus, /*grain=*/0,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  assignment[i] = static_cast<std::uint16_t>(ShardOf(
                      datagen::ScaledExternalId(spec, i / n1, i % n1), shards));
                }
              });
  obs::CounterAdd("shard.assigned", corpus);

  // The shared query set: second-source renderings spread across replicas.
  std::vector<TokenSet> queries(config.num_queries);
  ParallelFor(0, queries.size(), /*grain=*/0,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t q = begin; q < end; ++q) {
                  const std::uint64_t replica = q % spec.replicas;
                  const std::uint64_t index = (q / spec.replicas) % n1;
                  queries[q] = TokenizeProfile(
                      datagen::RenderScaledQuery(spec, replica, index),
                      config.sparse);
                }
              });

  // Schedule projection from a rendered sample: avg tokens/entity times the
  // corpus. Deterministic (fixed sample prefix), cheap, and honest enough to
  // pick a schedule — the rotation equivalence is what keeps it safe.
  const std::uint64_t sample_n = std::min<std::uint64_t>(corpus, 2048);
  const std::uint64_t sample_tokens = ParallelMapReduce<std::uint64_t>(
      0, sample_n, /*grain=*/0,
      [&](std::size_t begin, std::size_t end) {
        std::uint64_t tokens = 0;
        for (std::size_t i = begin; i < end; ++i) {
          tokens += TokenizeProfile(
                        datagen::RenderScaledEntity(spec, i / n1, i % n1),
                        config.sparse)
                        .size();
        }
        return tokens;
      },
      [](std::uint64_t& into, std::uint64_t&& from) { into += from; });
  result.projected_bytes =
      ProjectResidentBytes(sample_tokens * corpus / sample_n, corpus);
  result.schedule =
      ChooseSchedule(result.projected_bytes,
                     ResolveMemBudgetMb(config.options.mem_budget_mb), shards);

  result.cells.resize(shards);
  for (std::uint32_t s = 0; s < shards; ++s) result.cells[s].shard = s;

  // Renders and tokenizes shard `s`: a serial sweep collects its corpus
  // slots (ascending, so shard-local ascending order is global ascending),
  // then the rendering fans out over deterministic chunks.
  std::vector<std::uint64_t> slots;
  const auto render_shard = [&](std::uint32_t s, std::vector<TokenSet>* sets,
                                std::vector<EntityId>* members) {
    obs::Span span("shard.render");
    const std::uint64_t t0 = obs::NowNs();
    slots.clear();
    for (std::uint64_t i = 0; i < corpus; ++i) {
      if (assignment[i] == s) slots.push_back(i);
    }
    sets->resize(slots.size());
    ParallelFor(0, slots.size(), /*grain=*/0,
                [&](std::size_t begin, std::size_t end) {
                  for (std::size_t j = begin; j < end; ++j) {
                    (*sets)[j] = TokenizeProfile(
                        datagen::RenderScaledEntity(spec, slots[j] / n1,
                                                    slots[j] % n1),
                        config.sparse);
                  }
                });
    if (members) {
      members->assign(slots.begin(), slots.end());
    }
    ShardCell& cell = result.cells[s];
    cell.entities = slots.size();
    for (const TokenSet& set : *sets) cell.tokens += set.size();
    cell.render_ms = MsSince(t0);
  };

  const auto build_shard = [&](std::uint32_t s, std::vector<TokenSet>&& sets) {
    obs::Span span("shard.build");
    const std::uint64_t t0 = obs::NowNs();
    ScanCountIndex index(sets);
    result.cells[s].build_ms = MsSince(t0);
    obs::CounterAdd("shard.builds", 1);
    return index;
  };

  const auto probe_shard = [&](std::uint32_t s, const ScanCountIndex& index,
                               const std::vector<EntityId>* members) {
    obs::Span span("shard.probe");
    const std::uint64_t t0 = obs::NowNs();
    ProbeAcc acc = sparsenn::ParallelProbe<ProbeAcc>(
        index, queries,
        sparsenn::ProbeWithLengthFilter{config.sparse.measure,
                                        config.threshold},
        [&](EntityId q, const std::vector<sparsenn::ScoredMatch>& matches,
            ProbeAcc& acc) {
          for (const auto& [local, sim] : matches) {
            if (sim < config.threshold) continue;
            ++acc.count;
            if (members) acc.pairs.Add((*members)[local], q);
          }
        },
        [](ProbeAcc& into, ProbeAcc&& from) {
          into.count += from.count;
          into.pairs.Merge(std::move(from.pairs));
        });
    ShardCell& cell = result.cells[s];
    cell.probe_ms = MsSince(t0);
    cell.candidates = acc.count;
    cell.peak_rss_bytes = obs::PeakRssBytes();
    result.total_candidates += acc.count;
    if (members) result.pairs.Merge(std::move(acc.pairs));
    obs::CounterAdd("shard.probe_passes", 1);
  };

  std::vector<std::vector<EntityId>> members(
      config.collect_pairs ? shards : 0);
  if (result.schedule == ShardSchedule::kResident) {
    std::vector<ScanCountIndex> indexes;
    indexes.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      std::vector<TokenSet> sets;
      render_shard(s, &sets,
                   config.collect_pairs ? &members[s] : nullptr);
      indexes.push_back(build_shard(s, std::move(sets)));
    }
    for (std::uint32_t s = 0; s < shards; ++s) {
      probe_shard(s, indexes[s],
                  config.collect_pairs ? &members[s] : nullptr);
    }
  } else {
    for (std::uint32_t s = 0; s < shards; ++s) {
      std::vector<TokenSet> sets;
      render_shard(s, &sets,
                   config.collect_pairs ? &members[s] : nullptr);
      const ScanCountIndex index = build_shard(s, std::move(sets));
      probe_shard(s, index,
                  config.collect_pairs ? &members[s] : nullptr);
      obs::CounterAdd("shard.rotations", 1);
    }
  }

  result.pairs.Finalize();
  result.peak_rss_bytes = obs::PeakRssBytes();
  obs::CounterAdd("shard.candidates", result.total_candidates);
  return result;
}

}  // namespace erb::shard
