// Shard-partitioned online resolve: ERB_SHARDS serve::Resolver instances,
// inserts routed by the FNV hash of the external id, resolves fanned out to
// every shard and k-way merged back into the single-resolver order.
//
// Determinism contract: a ShardedResolver over any shard count returns, for
// every query at every point in the insert stream, exactly the matches and
// block candidates a single serve::Resolver fed the same insert stream would
// return — same global ids (assigned in insert order, independent of shard
// routing), same ascending-id result order (per-shard local ids ascend with
// insert order, so the per-shard runs are ascending in global id and the
// k-way merge reproduces the global ascending order).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/resolver.hpp"
#include "shard/plan.hpp"

namespace erb::shard {

/// \brief A corpus partitioned over per-shard serve::Resolver instances.
///
/// Single-writer like the underlying resolvers: Insert/SealEpoch must not
/// run concurrently with anything; Resolve/ResolveBatch may run concurrently
/// with each other.
class ShardedResolver {
 public:
  /// \brief Constructs the per-shard resolvers.
  /// \param config Forwarded to every shard's serve::Resolver (throws
  ///        std::invalid_argument for a non-positive threshold, like the
  ///        unsharded resolver).
  /// \param options Shard count override (0 reads ERB_SHARDS); the memory
  ///        budget and assignment fields are ignored — routing is always the
  ///        FNV hash of the external id.
  explicit ShardedResolver(serve::ServeConfig config = {},
                           const ShardOptions& options = {});

  /// \brief Inserts `profile` under `external_id` into the shard ShardOf()
  ///        selects. Duplicate external ids are rejected corpus-wide
  ///        (inserted == false, id names the original), exactly like the
  ///        single resolver. Global ids are assigned in insert order.
  /// \param external_id The entity's external identifier (also the routing
  ///        key).
  /// \param profile The entity profile to insert.
  serve::InsertResult Insert(std::string external_id,
                             const core::EntityProfile& profile);

  /// \brief Resolves `query` against every shard and merges the per-shard
  ///        matches and block candidates into ascending global-id order.
  /// \param query The probing entity profile.
  serve::ResolveResult Resolve(const core::EntityProfile& query) const;

  /// \brief Resolve() over a batch, parallelized with deterministic
  ///        chunking; slot q is query q's independent resolution.
  /// \param queries The probing entity profiles.
  std::vector<serve::ResolveResult> ResolveBatch(
      const std::vector<core::EntityProfile>& queries) const;

  /// \brief Seals every shard's epoch; returns the maximum shard epoch.
  std::uint64_t SealEpoch();

  /// \brief Number of entities across all shards.
  std::size_t NumEntities() const { return global_to_local_.size(); }
  /// \brief The shard count.
  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// \brief The external id of global entity `id`.
  const std::string& ExternalIdOf(core::EntityId id) const;
  /// \brief The shard holding global entity `id`.
  std::uint32_t ShardOfEntity(core::EntityId id) const {
    return global_to_local_[id].first;
  }
  /// \brief Number of entities on shard `s` (for balance checks).
  std::size_t ShardSize(std::uint32_t s) const {
    return local_to_global_[s].size();
  }

 private:
  std::vector<std::unique_ptr<serve::Resolver>> shards_;
  // Global id <-> (shard, local id). Both directions are insert-ordered, so
  // each local_to_global_[s] is strictly increasing — the merge invariant.
  std::vector<std::pair<std::uint32_t, core::EntityId>> global_to_local_;
  std::vector<std::vector<core::EntityId>> local_to_global_;
  std::unordered_map<std::string, core::EntityId> id_lookup_;
};

}  // namespace erb::shard
