// K-way merge of per-shard match streams.
//
// Every sharded probe produces, per query, one sorted run of scored matches
// per shard. Merging them must reproduce the unsharded pipeline's established
// orders exactly: the kNN order (descending similarity, ties by ascending
// entity id) for the sparse joins, and ascending entity id for the serve
// path's resolve results. Both orders are total here because a query's
// matched entity ids are globally unique (shards partition the corpus), so
// the merge is deterministic regardless of shard count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/entity.hpp"

namespace erb::shard {

/// \brief One scored match in a per-shard run: a global entity id and its
///        exact similarity to the probing query.
struct ScoredMatch {
  core::EntityId id;  ///< global (unsharded) entity id
  double similarity;  ///< exact similarity under the join's measure
};

/// \brief The kNN emission order: descending similarity, ties by ascending
///        entity id — the same tie order sparsenn::SortMatchesDesc pins for
///        the unsharded joins.
/// \param a Left match.
/// \param b Right match.
inline bool ScoredBefore(const ScoredMatch& a, const ScoredMatch& b) {
  return a.similarity != b.similarity ? a.similarity > b.similarity
                                      : a.id < b.id;
}

/// \brief K-way merge of runs each sorted by ScoredBefore into one stream in
///        the same order. With globally unique ids per query the result is
///        exactly what sorting the concatenation would give, at O(n log k).
/// \param runs The per-shard runs (each sorted by ScoredBefore; empty runs
///        are fine).
/// \param out Receives the merged stream (cleared first).
inline void MergeScoredRuns(const std::vector<std::vector<ScoredMatch>>& runs,
                            std::vector<ScoredMatch>* out) {
  out->clear();
  std::size_t total = 0;
  for (const auto& run : runs) total += run.size();
  out->reserve(total);

  // Cursor heap over the non-empty runs; the comparator inverts ScoredBefore
  // because std::push_heap keeps the *largest* element at the front.
  struct Cursor {
    const ScoredMatch* next;
    const ScoredMatch* end;
  };
  std::vector<Cursor> heap;
  heap.reserve(runs.size());
  for (const auto& run : runs) {
    if (!run.empty()) heap.push_back({run.data(), run.data() + run.size()});
  }
  const auto after = [](const Cursor& a, const Cursor& b) {
    return ScoredBefore(*b.next, *a.next);
  };
  std::make_heap(heap.begin(), heap.end(), after);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), after);
    Cursor& top = heap.back();
    out->push_back(*top.next);
    if (++top.next == top.end) {
      heap.pop_back();
    } else {
      std::push_heap(heap.begin(), heap.end(), after);
    }
  }
}

/// \brief K-way merge of runs sorted by ascending entity id (the serve-path
///        resolve order) into one ascending stream.
/// \tparam T Element type of the runs.
/// \tparam IdOf Callable projecting an element to its entity id.
/// \param runs The per-shard runs, each ascending by id.
/// \param id_of Projection from an element to the id the runs are sorted by.
/// \param out Receives the merged stream (cleared first).
template <typename T, typename IdOf>
void MergeAscendingRuns(const std::vector<std::vector<T>>& runs, IdOf&& id_of,
                        std::vector<T>* out) {
  out->clear();
  std::size_t total = 0;
  for (const auto& run : runs) total += run.size();
  out->reserve(total);

  struct Cursor {
    const T* next;
    const T* end;
  };
  std::vector<Cursor> heap;
  heap.reserve(runs.size());
  for (const auto& run : runs) {
    if (!run.empty()) heap.push_back({run.data(), run.data() + run.size()});
  }
  const auto after = [&](const Cursor& a, const Cursor& b) {
    return id_of(*a.next) > id_of(*b.next);
  };
  std::make_heap(heap.begin(), heap.end(), after);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), after);
    Cursor& top = heap.back();
    out->push_back(*top.next);
    if (++top.next == top.end) {
      heap.pop_back();
    } else {
      std::push_heap(heap.begin(), heap.end(), after);
    }
  }
}

}  // namespace erb::shard
