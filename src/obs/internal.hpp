// Shared internals of the obs collector: the per-thread buffers that back
// trace spans, counters, gauges AND the always-on phase samples of
// obs/phase.hpp. Not part of the public API.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace erb::obs::internal {

/// One phase duration recorded by a PhaseAccumulator on some thread, pending
/// until that accumulator folds or discards it.
struct PhaseSample {
  std::uint64_t owner = 0;  ///< PhaseAccumulator id
  std::string name;
  double ms = 0.0;
};

/// Per-thread event buffer. The owning thread appends under `mu`; Collect()
/// and PhaseAccumulator folds lock the same mutex from other threads. The
/// buffer outlives its thread (the registry owns it), so detached pool
/// workers never race a destructor.
struct ThreadBuffer {
  std::mutex mu;
  std::uint32_t id = 0;  ///< registration index: the deterministic merge key
  std::vector<SpanRecord> spans;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;
  std::vector<PhaseSample> phases;
};

/// The calling thread's buffer, registering it on first use.
ThreadBuffer& LocalBuffer();

/// All registered buffers in ascending id order. The returned vector is
/// append-only snapshots of stable pointers; lock each buffer's `mu` before
/// touching its contents.
std::vector<ThreadBuffer*> AllBuffers();

/// Allocates a fresh nonzero PhaseAccumulator id.
std::uint64_t NextAccumulatorId();

}  // namespace erb::obs::internal
