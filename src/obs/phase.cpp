#include "obs/phase.hpp"

#include <cstddef>
#include <utility>

#include "obs/internal.hpp"

namespace erb::obs {

PhaseAccumulator::PhaseAccumulator() : id_(internal::NextAccumulatorId()) {}

PhaseAccumulator::~PhaseAccumulator() { Scrub(); }

PhaseAccumulator::PhaseAccumulator(const PhaseAccumulator& other)
    : id_(internal::NextAccumulatorId()) {
  std::lock_guard<std::mutex> lock(other.mu_);
  other.FoldLocked();
  folded_ = other.folded_;
}

PhaseAccumulator& PhaseAccumulator::operator=(const PhaseAccumulator& other) {
  if (this == &other) return *this;
  std::map<std::string, double> copy;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    other.FoldLocked();
    copy = other.folded_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Scrub();  // drop our pending samples; the copy replaces everything
  folded_ = std::move(copy);
  return *this;
}

PhaseAccumulator::PhaseAccumulator(PhaseAccumulator&& other) noexcept
    : id_(internal::NextAccumulatorId()) {
  std::lock_guard<std::mutex> lock(other.mu_);
  // Take the id so pending thread-buffer samples follow us; leave the source
  // with the fresh id (it owns no samples and an empty map).
  std::swap(id_, other.id_);
  folded_ = std::move(other.folded_);
  other.folded_.clear();
}

PhaseAccumulator& PhaseAccumulator::operator=(PhaseAccumulator&& other) noexcept {
  if (this == &other) return *this;
  std::lock_guard<std::mutex> lock(mu_);
  Scrub();
  std::lock_guard<std::mutex> other_lock(other.mu_);
  std::swap(id_, other.id_);
  folded_ = std::move(other.folded_);
  other.folded_.clear();
  return *this;
}

void PhaseAccumulator::Add(const std::string& name, double ms) {
  internal::ThreadBuffer& buffer = internal::LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.phases.push_back({id_, name, ms});
}

double PhaseAccumulator::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  FoldLocked();
  auto it = folded_.find(name);
  return it == folded_.end() ? 0.0 : it->second;
}

double PhaseAccumulator::TotalMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  FoldLocked();
  double total = 0.0;
  for (const auto& [_, ms] : folded_) total += ms;
  return total;
}

const std::map<std::string, double>& PhaseAccumulator::phases() const {
  std::lock_guard<std::mutex> lock(mu_);
  FoldLocked();
  return folded_;
}

void PhaseAccumulator::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  Scrub();
  folded_.clear();
}

void PhaseAccumulator::FoldLocked() const {
  // Buffers are visited in ascending registration order and each buffer's
  // samples in append order, so the fold is deterministic.
  for (internal::ThreadBuffer* buffer : internal::AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    auto& pending = buffer->phases;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].owner == id_) {
        folded_[pending[i].name] += pending[i].ms;
      } else {
        if (kept != i) pending[kept] = std::move(pending[i]);
        ++kept;
      }
    }
    pending.resize(kept);
  }
}

void PhaseAccumulator::Scrub() {
  for (internal::ThreadBuffer* buffer : internal::AllBuffers()) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    auto& pending = buffer->phases;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].owner != id_) {
        if (kept != i) pending[kept] = std::move(pending[i]);
        ++kept;
      }
    }
    pending.resize(kept);
  }
}

ScopedPhase::ScopedPhase(PhaseAccumulator* acc, std::string name)
    : acc_(acc), name_(std::move(name)), span_(name_), start_ns_(NowNs()) {}

ScopedPhase::~ScopedPhase() {
  // Runs during exception unwinding too: a throwing grid point still records
  // the time it consumed.
  acc_->Add(name_, static_cast<double>(NowNs() - start_ns_) / 1e6);
}

}  // namespace erb::obs
