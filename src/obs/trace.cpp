#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

#if !defined(_WIN32)
#include <sys/resource.h>
#endif

#include "common/env.hpp"
#include "obs/internal.hpp"

namespace erb::obs {
namespace {

// -1 = not yet read from ERB_TRACE; 0/1 afterwards. SetTraceEnabled stores
// directly, so an explicit override always wins over the environment.
std::atomic<int> g_enabled{-1};

// Registry of all thread buffers. Leaked (like the thread pool) so detached
// workers flushing at process exit never race a static destructor.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<internal::ThreadBuffer>> buffers;
  Snapshot aggregate;  // guarded by mu
};

Registry& TheRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

thread_local internal::ThreadBuffer* t_buffer = nullptr;

void RecordSpan(std::string name, std::uint64_t start_ns, std::uint64_t dur_ns) {
  internal::ThreadBuffer& buffer = internal::LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.spans.push_back(
      {std::move(name), buffer.id, start_ns, dur_ns});
}

}  // namespace

namespace internal {

ThreadBuffer& LocalBuffer() {
  if (t_buffer == nullptr) {
    Registry& registry = TheRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.buffers.push_back(std::make_unique<ThreadBuffer>());
    registry.buffers.back()->id =
        static_cast<std::uint32_t>(registry.buffers.size() - 1);
    t_buffer = registry.buffers.back().get();
  }
  return *t_buffer;
}

std::vector<ThreadBuffer*> AllBuffers() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<ThreadBuffer*> out;
  out.reserve(registry.buffers.size());
  for (const auto& buffer : registry.buffers) out.push_back(buffer.get());
  return out;
}

std::uint64_t NextAccumulatorId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

bool TraceEnabled() {
  int enabled = g_enabled.load(std::memory_order_relaxed);
  if (enabled < 0) {
    // ERB_TRACE goes through the shared on/off parser: "OFF"/"false"/"no"
    // now disable like "0" does, and junk warns on stderr instead of
    // silently enabling the collector. The parsed value is cached (this
    // check sits on the hot path of every Span/CounterAdd); long-running
    // processes flip recording at runtime through SetTraceEnabled, not the
    // environment.
    const char* env = std::getenv("ERB_TRACE");
    enabled = ParseOnOff("ERB_TRACE", env, /*fallback=*/false) ? 1 : 0;
    g_enabled.store(enabled, std::memory_order_relaxed);
  }
  return enabled == 1;
}

void SetTraceEnabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  // All timestamps share one origin so spans from different threads align.
  static const Clock::time_point origin = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           origin)
          .count());
}

Span::Span(std::string_view name) : active_(TraceEnabled()) {
  if (active_) {
    name_.assign(name);
    start_ns_ = NowNs();
  }
}

Span::~Span() {
  if (active_) RecordSpan(std::move(name_), start_ns_, NowNs() - start_ns_);
}

void CounterAdd(std::string_view name, std::uint64_t delta) {
  if (!TraceEnabled()) return;
  internal::ThreadBuffer& buffer = internal::LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.counters[std::string(name)] += delta;
}

void GaugeSet(std::string_view name, std::uint64_t value) {
  if (!TraceEnabled()) return;
  internal::ThreadBuffer& buffer = internal::LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.gauges[std::string(name)] = value;
}

Snapshot Collect() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  // registry.buffers is append-only and ascending in id, so iterating it is
  // the deterministic (buffer-id, sequence) merge order.
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    for (auto& span : buffer->spans) {
      registry.aggregate.spans.push_back(std::move(span));
    }
    buffer->spans.clear();
    for (const auto& [name, value] : buffer->counters) {
      registry.aggregate.counters[name] += value;
    }
    buffer->counters.clear();
    for (const auto& [name, value] : buffer->gauges) {
      registry.aggregate.gauges[name] = value;
    }
    buffer->gauges.clear();
  }
  const std::uint64_t rss = PeakRssBytes();
  if (rss > registry.aggregate.peak_rss_bytes) {
    registry.aggregate.peak_rss_bytes = rss;
  }
  return registry.aggregate;
}

std::map<std::string, std::uint64_t> CounterSnapshot() {
  return Collect().counters;
}

void ResetCollected() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  registry.aggregate = Snapshot{};
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->spans.clear();
    buffer->counters.clear();
    buffer->gauges.clear();
    // buffer->phases stays: those samples belong to live PhaseAccumulators.
  }
}

std::uint64_t PeakRssBytes() {
#if defined(_WIN32)
  return 0;
#else
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux (and the BSDs) report kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#endif
}

}  // namespace erb::obs
