// Always-on phase timing over the obs collector. This is the substrate under
// common/timer.hpp's PhaseTimer: durations are recorded into the collector's
// per-thread buffers (no shared map mutation), so phases can be timed from
// inside parallel regions without a data race.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/trace.hpp"

namespace erb::obs {

/// Accumulates named phase durations (ms). Each accumulator has a unique id;
/// recording appends an (id, name, ms) sample to the calling thread's buffer,
/// and the accessors fold pending samples back into this instance. Recording
/// is thread-safe; the fold in the accessors is meant for after parallel
/// regions complete (the usual read point), though concurrent recorders stay
/// memory-safe either way.
class PhaseAccumulator {
 public:
  PhaseAccumulator();
  ~PhaseAccumulator();

  /// Copy folds the source first; the copy gets a fresh id (pending samples
  /// stay with the source).
  PhaseAccumulator(const PhaseAccumulator& other);
  PhaseAccumulator& operator=(const PhaseAccumulator& other);

  /// Move transfers the id, so samples still pending in thread buffers follow
  /// the moved-to instance. The source is left empty with a fresh id.
  PhaseAccumulator(PhaseAccumulator&& other) noexcept;
  PhaseAccumulator& operator=(PhaseAccumulator&& other) noexcept;

  /// Adds `ms` to phase `name`. Safe from any thread.
  void Add(const std::string& name, double ms);

  double Get(const std::string& name) const;
  double TotalMs() const;

  /// Folded view of all phases. The reference stays valid for the
  /// accumulator's lifetime; read it after parallel work has completed.
  const std::map<std::string, double>& phases() const;

  void Clear();

 private:
  void FoldLocked() const;  // requires mu_
  void Scrub();             // drop this id's pending samples from all buffers

  std::uint64_t id_;
  mutable std::mutex mu_;
  mutable std::map<std::string, double> folded_;
};

/// RAII phase measurement: times from construction to destruction and records
/// into `acc` even while unwinding an exception, so a failed grid point still
/// contributes its elapsed time instead of silently dropping it. Also opens a
/// trace span of the same name when ERB_TRACE is on (a disabled span costs
/// one relaxed atomic load), which is how every PhaseTimer::Measure call site
/// shows up in the Chrome trace for free.
class ScopedPhase {
 public:
  ScopedPhase(PhaseAccumulator* acc, std::string name);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseAccumulator* acc_;
  std::string name_;
  Span span_;
  std::uint64_t start_ns_;
};

}  // namespace erb::obs
