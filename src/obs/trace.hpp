// Lightweight tracing/metrics substrate behind every run-time (RT) and
// candidate-set measurement: nestable trace spans, named counters and gauges,
// and a peak-RSS probe.
//
// Threading model: every event is appended to a per-thread buffer (one small
// mutex per buffer, never contended across threads) and merged on Collect()
// in deterministic (buffer-id, sequence) order, where the buffer id is the
// thread's registration index. Counters merge by unsigned addition and gauges
// by ascending buffer id, so the merged counter/gauge values are
// byte-identical at any ERB_THREADS — the same determinism contract as the
// parallel runtime (common/parallel.hpp).
//
// Overhead: tracing is off by default (ERB_TRACE unset or "0"). A disabled
// Span construction is one relaxed atomic load plus a branch; CounterAdd and
// GaugeSet return on the same branch. Phase timing (obs/phase.hpp) is always
// on — it feeds the paper's RT numbers — but shares the same buffers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace erb::obs {

/// True when trace spans / counters / gauges are being recorded. Initialized
/// from ERB_TRACE on first use (unset, empty or "0" = off).
bool TraceEnabled();

/// Overrides the ERB_TRACE setting (tests and the bench --trace flag).
void SetTraceEnabled(bool on);

/// One completed span: [start_ns, start_ns + duration_ns) on buffer `tid`.
/// Timestamps are nanoseconds on the steady clock, relative to the process's
/// first observation point.
struct SpanRecord {
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

/// Everything the collector has merged so far: spans in (buffer-id, sequence)
/// order, counters summed, gauges resolved by ascending buffer id, and the
/// high-water peak RSS observed at collection points.
struct Snapshot {
  std::vector<SpanRecord> spans;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;
  std::uint64_t peak_rss_bytes = 0;
};

/// RAII trace span. Nestable: concurrent spans on different threads land in
/// different buffers; nested spans on one thread are reconstructed from their
/// timestamps (Chrome trace "X" events nest by containment). The destructor
/// records the span even when unwinding an exception.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  std::uint64_t start_ns_ = 0;
  bool active_;
};

/// Adds `delta` to the named counter (thread-local; merged by addition).
/// No-op when tracing is disabled.
void CounterAdd(std::string_view name, std::uint64_t delta);

/// Sets the named gauge (e.g. an index size). Merge resolves multiple
/// writers by ascending buffer id, last write per buffer wins; gauges are
/// meant to be set from one thread per name. No-op when tracing is disabled.
void GaugeSet(std::string_view name, std::uint64_t value);

/// Drains every thread buffer into the global aggregate and returns a copy of
/// it. Call after parallel regions have completed (the pool's region barrier
/// guarantees workers are quiescent; the per-buffer mutexes make a concurrent
/// writer safe regardless). Also refreshes the peak-RSS high-water mark.
Snapshot Collect();

/// Convenience: Collect() and return just the counters.
std::map<std::string, std::uint64_t> CounterSnapshot();

/// Clears the aggregate and every thread buffer's spans/counters/gauges
/// (pending phase samples are left alone — they belong to live
/// PhaseAccumulators). For tests and between bench repetitions.
void ResetCollected();

/// Current peak resident set size of the process in bytes, via getrusage.
/// ru_maxrss is kilobytes on Linux and bytes on macOS; both are normalized
/// to bytes. Returns 0 where the probe is unsupported.
std::uint64_t PeakRssBytes();

/// Monotonic nanoseconds since the process's first observation point.
/// All span timestamps share this origin.
std::uint64_t NowNs();

}  // namespace erb::obs
