#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace erb::obs {
namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Nanoseconds as trace_event microseconds with fixed 3-decimal precision,
/// so output bytes don't depend on locale or stream state.
std::string Micros(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

void WriteChromeTrace(const Snapshot& snapshot, std::ostream& out) {
  // Counter samples are stamped at the end of the last span so they appear
  // at the right edge of the timeline.
  std::uint64_t end_ns = 0;
  for (const auto& span : snapshot.spans) {
    end_ns = std::max(end_ns, span.start_ns + span.duration_ns);
  }

  out << "{\n";
  out << "  \"displayTimeUnit\": \"ms\",\n";
  out << "  \"otherData\": {\"peak_rss_bytes\": " << snapshot.peak_rss_bytes
      << "},\n";
  out << "  \"traceEvents\": [";
  bool first = true;
  for (const auto& span : snapshot.spans) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << JsonEscape(span.name)
        << "\", \"cat\": \"erb\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
        << span.tid << ", \"ts\": " << Micros(span.start_ns)
        << ", \"dur\": " << Micros(span.duration_ns) << "}";
  }
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << JsonEscape(name)
        << "\", \"cat\": \"erb\", \"ph\": \"C\", \"pid\": 1, \"tid\": 0, "
        << "\"ts\": " << Micros(end_ns) << ", \"args\": {\"value\": " << value
        << "}}";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << JsonEscape(name)
        << "\", \"cat\": \"erb\", \"ph\": \"C\", \"pid\": 1, \"tid\": 0, "
        << "\"ts\": " << Micros(end_ns) << ", \"args\": {\"value\": " << value
        << "}}";
  }
  out << "\n  ]\n";
  out << "}\n";
}

bool WriteChromeTraceFile(const Snapshot& snapshot, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  WriteChromeTrace(snapshot, out);
  return static_cast<bool>(out);
}

std::string StatsJson(const Snapshot& snapshot) {
  std::ostringstream out;
  out << "{\"peak_rss_bytes\": " << snapshot.peak_rss_bytes;
  out << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(name) << "\": " << value;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << JsonEscape(name) << "\": " << value;
  }
  out << "}}";
  return out.str();
}

}  // namespace erb::obs
