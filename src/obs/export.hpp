// Exporters for the obs collector: Chrome trace_event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev) and a flat JSON stats block
// for embedding into ERBENCH_JSON records.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/trace.hpp"

namespace erb::obs {

/// Writes `snapshot` as a Chrome trace_event JSON object. Spans become "X"
/// (complete) events on pid 1 with tid = buffer id; counters and gauges
/// become "C" (counter) events sampled at the end of the trace; the peak RSS
/// is recorded under otherData.peak_rss_bytes. Output is byte-deterministic
/// for a given snapshot.
void WriteChromeTrace(const Snapshot& snapshot, std::ostream& out);

/// WriteChromeTrace to `path`. Returns false (and writes nothing) if the
/// file cannot be opened.
bool WriteChromeTraceFile(const Snapshot& snapshot, const std::string& path);

/// Flat JSON object with the snapshot's scalar stats:
/// {"peak_rss_bytes":N,"counters":{...},"gauges":{...}}. Intended to be
/// embedded verbatim as the "stats" field of an ERBENCH_JSON record.
std::string StatsJson(const Snapshot& snapshot);

}  // namespace erb::obs
