// The exact configuration spaces of Tables III, IV and V, as introspectable
// data. The counts these domains induce match the "Maximum Configurations"
// rows of the paper (verified in tests/gridspec_test.cpp):
//   Standard BW 3,440 - QGrams BW 17,200 - Ext. QGrams BW 68,800 -
//   (Ex.)Suffix Arrays BW 21,285 - eps-Join 6,000 - kNN-Join 12,000 -
//   MH-LSH 168 - HP-LSH 400 - CP-LSH 2,000 - FAISS 2,720 - SCANN 10,880 -
//   DeepBlocker 2,720 - HybridJoin 600,000 (the sparse common block times the
//   full (threshold, k) plane; not a paper row).
//
// The run-time tuners (blocking_tuner, sparse_tuner, dense_tuner) use
// coarsened versions of these domains by default and these exact domains
// under ERBENCH_FULL_GRID; this module is the single reference for what
// "full grid" means.
#pragma once

#include <cstdint>
#include <vector>

#include "tuning/suite.hpp"

namespace erb::tuning {

/// Table III common domains.
struct BlockingGridSpec {
  std::vector<double> filter_ratios;     ///< (0, 1] step 0.025 (1 = off)
  int block_purging_options = 2;         ///< off / on
  int comparison_cleaning_options = 43;  ///< CP + 6 schemes x 7 prunings
  std::vector<int> q;                    ///< [2, 6]
  std::vector<double> t;                 ///< [0.8, 1.0) step 0.05
  std::vector<int> l_min;                ///< [2, 6]
  std::vector<int> b_max;                ///< [2, 100] step 1
};

/// Table IV domains.
struct SparseGridSpec {
  int cleaning_options = 2;
  int similarity_measures = 3;
  int representation_models = 10;
  std::vector<double> thresholds;  ///< (0, 1] step 0.01 (eps-Join)
  std::vector<int> k;              ///< [1, 100] (kNN-Join)
  int reverse_options = 2;         ///< kNN-Join only
};

/// Table V domains.
struct DenseGridSpec {
  int cleaning_options = 2;
  std::vector<std::pair<int, int>> minhash_bands_rows;  ///< product in {128,256,512}
  std::vector<int> minhash_shingle_k;                   ///< [2, 5]
  std::vector<int> lsh_tables;                          ///< 2^0 .. 2^9
  std::vector<int> lsh_hashes;                          ///< [1, 20]
  std::vector<int> cp_last_dims;                        ///< 5 powers of two
  std::vector<int> cardinality_k;  ///< [1,100] + [105,1000]/5 + [1010,5000]/10
  int reverse_options = 2;
  int scann_variants = 4;  ///< {AH, BF} x {DP, L2^2}
};

BlockingGridSpec PaperBlockingGrid();
SparseGridSpec PaperSparseGrid();
DenseGridSpec PaperDenseGrid();

/// Maximum number of configurations of `id` under the paper's grids (the
/// "Maximum Configurations" rows of Tables III-V). Baselines return 1;
/// parameter-free combinations count as one configuration.
std::uint64_t MaxConfigurations(MethodId id);

}  // namespace erb::tuning
