#include "tuning/suite.hpp"

#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "tuning/blocking_tuner.hpp"
#include "tuning/dense_tuner.hpp"
#include "tuning/sparse_tuner.hpp"

namespace erb::tuning {

std::string_view MethodName(MethodId id) {
  switch (id) {
    case MethodId::kSbw: return "SBW";
    case MethodId::kQbw: return "QBW";
    case MethodId::kEqbw: return "EQBW";
    case MethodId::kSabw: return "SABW";
    case MethodId::kEsabw: return "ESABW";
    case MethodId::kPbw: return "PBW";
    case MethodId::kDbw: return "DBW";
    case MethodId::kEpsilonJoin: return "eJoin";
    case MethodId::kKnnJoin: return "kNNJ";
    case MethodId::kDknn: return "DkNN";
    case MethodId::kMhLsh: return "MH-LSH";
    case MethodId::kCpLsh: return "CP-LSH";
    case MethodId::kHpLsh: return "HP-LSH";
    case MethodId::kFaiss: return "FAISS";
    case MethodId::kScann: return "SCANN";
    case MethodId::kDeepBlocker: return "DeepBlocker";
    case MethodId::kDdb: return "DDB";
    case MethodId::kHybridJoin: return "HybridJoin";
  }
  return "unknown";
}

std::vector<MethodId> AllMethods() {
  return {MethodId::kSbw,   MethodId::kQbw,         MethodId::kEqbw,
          MethodId::kSabw,  MethodId::kEsabw,       MethodId::kPbw,
          MethodId::kDbw,   MethodId::kEpsilonJoin, MethodId::kKnnJoin,
          MethodId::kDknn,  MethodId::kMhLsh,       MethodId::kCpLsh,
          MethodId::kHpLsh, MethodId::kFaiss,       MethodId::kScann,
          MethodId::kDeepBlocker, MethodId::kDdb, MethodId::kHybridJoin};
}

bool IsBlockingMethod(MethodId id) {
  switch (id) {
    case MethodId::kSbw: case MethodId::kQbw: case MethodId::kEqbw:
    case MethodId::kSabw: case MethodId::kEsabw: case MethodId::kPbw:
    case MethodId::kDbw:
      return true;
    default:
      return false;
  }
}

bool IsSparseMethod(MethodId id) {
  return id == MethodId::kEpsilonJoin || id == MethodId::kKnnJoin ||
         id == MethodId::kDknn || id == MethodId::kHybridJoin;
}

bool IsDenseMethod(MethodId id) {
  switch (id) {
    case MethodId::kMhLsh: case MethodId::kCpLsh: case MethodId::kHpLsh:
    case MethodId::kFaiss: case MethodId::kScann: case MethodId::kDeepBlocker:
    case MethodId::kDdb:
      return true;
    default:
      return false;
  }
}

bool IsBaseline(MethodId id) {
  return id == MethodId::kPbw || id == MethodId::kDbw || id == MethodId::kDknn ||
         id == MethodId::kDdb;
}

namespace {

TunedResult DispatchMethod(MethodId id, const core::Dataset& dataset,
                           core::SchemaMode mode, const GridOptions& options) {
  using blocking::BuilderKind;
  switch (id) {
    case MethodId::kSbw:
      return TuneBlockingWorkflow(dataset, mode, BuilderKind::kStandard, options);
    case MethodId::kQbw:
      return TuneBlockingWorkflow(dataset, mode, BuilderKind::kQGrams, options);
    case MethodId::kEqbw:
      return TuneBlockingWorkflow(dataset, mode, BuilderKind::kExtendedQGrams,
                                  options);
    case MethodId::kSabw:
      return TuneBlockingWorkflow(dataset, mode, BuilderKind::kSuffixArrays,
                                  options);
    case MethodId::kEsabw:
      return TuneBlockingWorkflow(dataset, mode,
                                  BuilderKind::kExtendedSuffixArrays, options);
    case MethodId::kPbw:
      return RunPbwBaseline(dataset, mode);
    case MethodId::kDbw:
      return RunDbwBaseline(dataset, mode);
    case MethodId::kEpsilonJoin:
      return TuneEpsilonJoin(dataset, mode, options);
    case MethodId::kKnnJoin:
      return TuneKnnJoin(dataset, mode, options);
    case MethodId::kDknn:
      return RunDknnBaseline(dataset, mode);
    case MethodId::kMhLsh:
      return TuneMinHashLsh(dataset, mode, options);
    case MethodId::kCpLsh:
      return TuneCrossPolytopeLsh(dataset, mode, options);
    case MethodId::kHpLsh:
      return TuneHyperplaneLsh(dataset, mode, options);
    case MethodId::kFaiss:
      return TuneFaiss(dataset, mode, options);
    case MethodId::kScann:
      return TuneScann(dataset, mode, options);
    case MethodId::kDeepBlocker:
      return TuneDeepBlocker(dataset, mode, options);
    case MethodId::kDdb:
      return RunDdbBaseline(dataset, mode, options);
    case MethodId::kHybridJoin:
      return TuneHybridJoin(dataset, mode, options);
  }
  throw std::invalid_argument("unknown method id");
}

}  // namespace

TunedResult RunMethod(MethodId id, const core::Dataset& dataset,
                      core::SchemaMode mode, const GridOptions& options) {
  // One span per tuner invocation covers that method's whole grid loop; the
  // per-phase Measure spans of the winning run nest inside it.
  obs::Span span("tune/" + std::string(MethodName(id)));
  TunedResult result = DispatchMethod(id, dataset, mode, options);
  obs::CounterAdd("tuning.configurations", result.configurations_tried);
  return result;
}

}  // namespace erb::tuning
