// Grid search over the dense NN methods (Table V).
//
// Protocol for stochastic methods (MinHash/HP-/CP-LSH, DeepBlocker): the grid
// is explored with a fixed seed and the winning configuration is re-measured
// as the average of `GridOptions::repetitions` seeded runs, mirroring the
// paper's average-of-10-repetitions reporting.
#pragma once

#include "core/entity.hpp"
#include "tuning/result.hpp"

namespace erb::tuning {

TunedResult TuneMinHashLsh(const core::Dataset& dataset, core::SchemaMode mode,
                           const GridOptions& options);

/// Hyperplane LSH; the number of probes is auto-raised (doubling) per
/// configuration until the recall target is met, as in the FALCONN recipe
/// the paper follows.
TunedResult TuneHyperplaneLsh(const core::Dataset& dataset, core::SchemaMode mode,
                              const GridOptions& options);

TunedResult TuneCrossPolytopeLsh(const core::Dataset& dataset,
                                 core::SchemaMode mode,
                                 const GridOptions& options);

TunedResult TuneFaiss(const core::Dataset& dataset, core::SchemaMode mode,
                      const GridOptions& options);

TunedResult TuneScann(const core::Dataset& dataset, core::SchemaMode mode,
                      const GridOptions& options);

TunedResult TuneDeepBlocker(const core::Dataset& dataset, core::SchemaMode mode,
                            const GridOptions& options);

/// Runs the DDB baseline (no tuning; averaged over repetitions).
TunedResult RunDdbBaseline(const core::Dataset& dataset, core::SchemaMode mode,
                           const GridOptions& options);

}  // namespace erb::tuning
