#include "tuning/gridspec.hpp"

namespace erb::tuning {
namespace {

std::vector<double> Steps(double lo, double hi, double step) {
  std::vector<double> out;
  for (double v = lo; v <= hi + 1e-9; v += step) out.push_back(v);
  return out;
}

std::vector<int> IntRange(int lo, int hi, int step = 1) {
  std::vector<int> out;
  for (int v = lo; v <= hi; v += step) out.push_back(v);
  return out;
}

}  // namespace

BlockingGridSpec PaperBlockingGrid() {
  BlockingGridSpec spec;
  spec.filter_ratios = Steps(0.025, 1.0, 0.025);  // 40 values, 1.0 = off
  spec.q = IntRange(2, 6);
  spec.t = Steps(0.8, 0.95, 0.05);  // [0.8, 1.0) step 0.05 -> 4 values
  spec.l_min = IntRange(2, 6);
  spec.b_max = IntRange(2, 100);
  return spec;
}

SparseGridSpec PaperSparseGrid() {
  SparseGridSpec spec;
  spec.thresholds = Steps(0.01, 1.0, 0.01);  // 100 values
  spec.k = IntRange(1, 100);
  return spec;
}

DenseGridSpec PaperDenseGrid() {
  DenseGridSpec spec;
  for (int product : {128, 256, 512}) {
    // Both factors are powers of two >= 2.
    for (int bands = 2; bands <= product / 2; bands *= 2) {
      spec.minhash_bands_rows.emplace_back(bands, product / bands);
    }
  }
  spec.minhash_shingle_k = IntRange(2, 5);
  for (int t = 1; t <= 512; t *= 2) spec.lsh_tables.push_back(t);
  spec.lsh_hashes = IntRange(1, 20);
  spec.cp_last_dims = {32, 64, 128, 256, 512};
  spec.cardinality_k = IntRange(1, 100);
  for (int k : IntRange(105, 1000, 5)) spec.cardinality_k.push_back(k);
  for (int k : IntRange(1010, 5000, 10)) spec.cardinality_k.push_back(k);
  return spec;
}

std::uint64_t MaxConfigurations(MethodId id) {
  const BlockingGridSpec blocking = PaperBlockingGrid();
  const SparseGridSpec sparse = PaperSparseGrid();
  const DenseGridSpec dense = PaperDenseGrid();

  // Common factor of the lazy blocking workflows: BP x BFr x cleaning.
  const std::uint64_t lazy_common =
      static_cast<std::uint64_t>(blocking.block_purging_options) *
      blocking.filter_ratios.size() * blocking.comparison_cleaning_options;
  // Proactive workflows: no block cleaning, only comparison cleaning.
  const std::uint64_t proactive_common = blocking.comparison_cleaning_options;

  const std::uint64_t sparse_common =
      static_cast<std::uint64_t>(sparse.cleaning_options) *
      sparse.similarity_measures * sparse.representation_models;
  const std::uint64_t cardinality_common =
      static_cast<std::uint64_t>(dense.cleaning_options) *
      dense.reverse_options * dense.cardinality_k.size();

  switch (id) {
    case MethodId::kSbw:
      return lazy_common;  // 3,440
    case MethodId::kQbw:
      return lazy_common * blocking.q.size();  // 17,200
    case MethodId::kEqbw:
      return lazy_common * blocking.q.size() * blocking.t.size();  // 68,800
    case MethodId::kSabw:
    case MethodId::kEsabw:
      return proactive_common * blocking.l_min.size() *
             blocking.b_max.size();  // 21,285
    case MethodId::kEpsilonJoin:
      return sparse_common * sparse.thresholds.size();  // 6,000
    case MethodId::kKnnJoin:
      return sparse_common * sparse.k.size() * sparse.reverse_options;  // 12,000
    case MethodId::kHybridJoin:
      return sparse_common * sparse.thresholds.size() *
             sparse.k.size();  // 600,000
    case MethodId::kMhLsh:
      return static_cast<std::uint64_t>(dense.cleaning_options) *
             dense.minhash_bands_rows.size() *
             dense.minhash_shingle_k.size();  // 168
    case MethodId::kHpLsh:
      return static_cast<std::uint64_t>(dense.cleaning_options) *
             dense.lsh_tables.size() * dense.lsh_hashes.size();  // 400
    case MethodId::kCpLsh:
      return static_cast<std::uint64_t>(dense.cleaning_options) *
             dense.lsh_tables.size() * dense.lsh_hashes.size() *
             dense.cp_last_dims.size();  // 2,000
    case MethodId::kFaiss:
    case MethodId::kDeepBlocker:
      return cardinality_common;  // 2,720
    case MethodId::kScann:
      return cardinality_common * dense.scann_variants;  // 10,880
    case MethodId::kPbw:
    case MethodId::kDbw:
    case MethodId::kDknn:
    case MethodId::kDdb:
      return 1;
  }
  return 0;
}

}  // namespace erb::tuning
