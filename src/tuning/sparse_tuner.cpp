#include "tuning/sparse_tuner.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <vector>

#include "common/parallel.hpp"
#include "sparsenn/joins.hpp"
#include "sparsenn/scancount.hpp"

namespace erb::tuning {
namespace {

using core::EntityId;
using sparsenn::SimilarityMeasure;
using sparsenn::SparseConfig;
using sparsenn::TokenModel;

constexpr std::array<TokenModel, 10> kModels = {
    TokenModel::kT1G,  TokenModel::kT1GM, TokenModel::kC2G, TokenModel::kC2GM,
    TokenModel::kC3G,  TokenModel::kC3GM, TokenModel::kC4G, TokenModel::kC4GM,
    TokenModel::kC5G,  TokenModel::kC5GM};

constexpr std::array<SimilarityMeasure, 3> kMeasures = {
    SimilarityMeasure::kCosine, SimilarityMeasure::kDice,
    SimilarityMeasure::kJaccard};

// The representation-model subset explored by the coarse grid: one set and
// one multiset variant per tokenization family.
constexpr std::array<TokenModel, 6> kCoarseModels = {
    TokenModel::kT1G, TokenModel::kT1GM, TokenModel::kC3G,
    TokenModel::kC3GM, TokenModel::kC5G, TokenModel::kC5GM};

std::string DescribeSparse(const SparseConfig& config) {
  std::ostringstream out;
  out << "CL=" << (config.clean ? "on" : "off")
      << " RM=" << sparsenn::ModelName(config.model)
      << " SM=" << sparsenn::MeasureName(config.measure);
  return out.str();
}

std::vector<std::pair<bool, TokenModel>> RepresentationGrid(bool full) {
  std::vector<std::pair<bool, TokenModel>> grid;
  const auto& models = full ? std::vector<TokenModel>(kModels.begin(), kModels.end())
                            : std::vector<TokenModel>(kCoarseModels.begin(),
                                                      kCoarseModels.end());
  for (bool clean : {false, true}) {
    for (TokenModel model : models) grid.emplace_back(clean, model);
  }
  return grid;
}

core::Effectiveness MakeEff(std::uint64_t pairs, std::uint64_t detected,
                            std::size_t total_duplicates) {
  core::Effectiveness eff;
  eff.candidates = pairs;
  eff.detected = detected;
  eff.pc = static_cast<double>(detected) / std::max<std::size_t>(1, total_duplicates);
  eff.pq = pairs == 0 ? 0.0 : static_cast<double>(detected) / pairs;
  return eff;
}

}  // namespace

TunedResult TuneEpsilonJoin(const core::Dataset& dataset, core::SchemaMode mode,
                            const GridOptions& options) {
  TunedResult result;
  result.method = "eJoin";
  const std::size_t total_duplicates = dataset.NumDuplicates();

  SparseConfig best_config;
  double best_threshold = 1.0;
  core::Effectiveness best_eff;
  bool have_best = false;

  // The threshold grid is [0, 1] with step 0.01 (Table IV): similarities are
  // binned so one scoring pass evaluates all 101 thresholds exactly; all
  // three similarity measures share that pass (the probe only yields
  // overlaps — the measures differ in a final formula).
  //
  // The expensive part — building token sets and probing the index — is
  // fanned across the pool, one (clean, model) combo per chunk. Selection
  // folds the per-combo bins sequentially in grid order afterwards, so the
  // winner is exactly the one the sequential sweep would pick.
  constexpr int kBins = 101;
  struct ComboBins {
    std::array<std::array<std::uint64_t, kBins>, 3> pair_bins{};
    std::array<std::array<std::uint64_t, kBins>, 3> dup_bins{};
  };
  const auto grid = RepresentationGrid(options.full_grid);
  std::vector<ComboBins> combos(grid.size());
  ParallelFor(0, grid.size(), /*grain=*/1,
              [&](std::size_t g_begin, std::size_t g_end) {
    for (std::size_t g = g_begin; g < g_end; ++g) {
      const auto& [clean, model] = grid[g];
      const auto indexed = sparsenn::BuildSideTokenSets(
          dataset, 0, mode, model, clean);
      const auto queries = sparsenn::BuildSideTokenSets(
          dataset, 1, mode, model, clean);
      sparsenn::ScanCountIndex index(indexed);
      ComboBins& bins = combos[g];
      for (std::size_t q = 0; q < queries.size(); ++q) {
        index.Probe(queries[q], [&](std::uint32_t id, std::uint32_t overlap,
                                    std::uint32_t indexed_size) {
          const bool dup = dataset.IsDuplicate(
              core::MakePair(id, static_cast<EntityId>(q)));
          for (std::size_t m = 0; m < kMeasures.size(); ++m) {
            const double sim = sparsenn::SetSimilarity(
                kMeasures[m], overlap, queries[q].size(), indexed_size);
            const int bin =
                std::clamp(static_cast<int>(sim * 100.0), 0, kBins - 1);
            ++bins.pair_bins[m][static_cast<std::size_t>(bin)];
            if (dup) ++bins.dup_bins[m][static_cast<std::size_t>(bin)];
          }
        });
      }
    }
  });

  for (std::size_t g = 0; g < grid.size(); ++g) {
    const auto& [clean, model] = grid[g];
    const ComboBins& bins = combos[g];
    // Cumulate from the highest threshold down; per combo the best threshold
    // is the largest one whose PC meets the target (lowering it only adds
    // candidates and erodes PQ) — the paper's early-termination rule.
    for (std::size_t m = 0; m < kMeasures.size(); ++m) {
      std::uint64_t pairs = 0, detected = 0;
      for (int bin = kBins - 1; bin >= 0; --bin) {
        ++result.configurations_tried;
        pairs += bins.pair_bins[m][static_cast<std::size_t>(bin)];
        detected += bins.dup_bins[m][static_cast<std::size_t>(bin)];
        const auto eff = MakeEff(pairs, detected, total_duplicates);
        if (!have_best || IsBetter(eff, best_eff, options.target_recall)) {
          have_best = true;
          best_eff = eff;
          best_config.clean = clean;
          best_config.model = model;
          best_config.measure = kMeasures[m];
          best_threshold = bin / 100.0;
        }
        if (eff.pc >= options.target_recall) break;
      }
    }
  }

  // Re-run the winner for RT and the authoritative candidate set.
  auto run = sparsenn::EpsilonJoin(dataset, mode, best_config, best_threshold);
  result.eff = core::Evaluate(run.candidates, dataset);
  result.runtime_ms = run.timing.TotalMs();
  result.phases = run.timing.phases();
  std::ostringstream desc;
  desc << DescribeSparse(best_config) << " t=" << best_threshold;
  result.config = desc.str();
  result.reached_target = result.eff.pc >= options.target_recall;
  return result;
}

TunedResult TuneKnnJoin(const core::Dataset& dataset, core::SchemaMode mode,
                        const GridOptions& options) {
  TunedResult result;
  result.method = "kNNJ";
  const std::size_t total_duplicates = dataset.NumDuplicates();
  constexpr int kMaxK = 100;

  SparseConfig best_config;
  int best_k = 1;
  bool best_reverse = false;
  core::Effectiveness best_eff;
  bool have_best = false;

  // Rank-group histograms per combo, computed in parallel (one (clean,
  // model) combo per chunk so the token sets are still built once and
  // shared by both join directions); selection folds sequentially below.
  struct ComboRanks {
    // [reverse][m][k]: contribution of the k-th distinct-similarity rank
    // group under measure m for that join direction.
    std::array<std::array<std::array<std::uint64_t, kMaxK>, 3>, 2> added_pairs{};
    std::array<std::array<std::array<std::uint64_t, kMaxK>, 3>, 2> added_dups{};
  };
  const auto grid = RepresentationGrid(options.full_grid);
  std::vector<ComboRanks> combos(grid.size());
  ParallelFor(0, grid.size(), /*grain=*/1,
              [&](std::size_t g_begin, std::size_t g_end) {
    for (std::size_t g = g_begin; g < g_end; ++g) {
      const auto& [clean, model] = grid[g];
      const auto sets1 =
          sparsenn::BuildSideTokenSets(dataset, 0, mode, model, clean);
      const auto sets2 =
          sparsenn::BuildSideTokenSets(dataset, 1, mode, model, clean);

      for (bool reverse : {false, true}) {
        const auto& indexed = reverse ? sets2 : sets1;
        const auto& queries = reverse ? sets1 : sets2;
        sparsenn::ScanCountIndex index(indexed);
        auto& added_pairs = combos[g].added_pairs[reverse ? 1 : 0];
        auto& added_dups = combos[g].added_dups[reverse ? 1 : 0];

        std::vector<std::pair<EntityId, std::uint32_t>> matches;  // (id, overlap)
        std::vector<std::pair<double, bool>> scored;              // (sim, is_dup)
        for (std::size_t q = 0; q < queries.size(); ++q) {
          matches.clear();
          index.Probe(queries[q], [&matches](std::uint32_t id,
                                             std::uint32_t overlap,
                                             std::uint32_t) {
            matches.emplace_back(id, overlap);
          });
          for (std::size_t m = 0; m < kMeasures.size(); ++m) {
            scored.clear();
            for (const auto& [id, overlap] : matches) {
              const auto qid = static_cast<EntityId>(q);
              const core::PairKey key =
                  reverse ? core::MakePair(qid, id) : core::MakePair(id, qid);
              scored.emplace_back(
                  sparsenn::SetSimilarity(kMeasures[m], overlap,
                                          queries[q].size(), index.SetSize(id)),
                  dataset.IsDuplicate(key));
            }
            std::sort(scored.begin(), scored.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
            int rank_group = -1;
            double previous = -1.0;
            for (const auto& [sim, dup] : scored) {
              if (sim != previous) {
                if (++rank_group >= kMaxK) break;
                previous = sim;
              }
              ++added_pairs[m][static_cast<std::size_t>(rank_group)];
              if (dup) ++added_dups[m][static_cast<std::size_t>(rank_group)];
            }
          }
        }
      }
    }
  });

  for (std::size_t g = 0; g < grid.size(); ++g) {
    const auto& [clean, model] = grid[g];
    for (bool reverse : {false, true}) {
      const auto& added_pairs = combos[g].added_pairs[reverse ? 1 : 0];
      const auto& added_dups = combos[g].added_dups[reverse ? 1 : 0];
      // Ascending k; the paper terminates the sweep at the first k meeting
      // the recall target.
      for (std::size_t m = 0; m < kMeasures.size(); ++m) {
        std::uint64_t pairs = 0, detected = 0;
        for (int k = 1; k <= kMaxK; ++k) {
          ++result.configurations_tried;
          pairs += added_pairs[m][static_cast<std::size_t>(k - 1)];
          detected += added_dups[m][static_cast<std::size_t>(k - 1)];
          const auto eff = MakeEff(pairs, detected, total_duplicates);
          if (!have_best || IsBetter(eff, best_eff, options.target_recall)) {
            have_best = true;
            best_eff = eff;
            best_config.clean = clean;
            best_config.model = model;
            best_config.measure = kMeasures[m];
            best_k = k;
            best_reverse = reverse;
          }
          if (eff.pc >= options.target_recall) break;
        }
      }
    }
  }

  auto run = sparsenn::KnnJoin(dataset, mode, best_config, best_k, best_reverse);
  result.eff = core::Evaluate(run.candidates, dataset);
  result.runtime_ms = run.timing.TotalMs();
  result.phases = run.timing.phases();
  std::ostringstream desc;
  desc << DescribeSparse(best_config) << " K=" << best_k
       << " RVS=" << (best_reverse ? "on" : "off");
  result.config = desc.str();
  result.reached_target = result.eff.pc >= options.target_recall;
  return result;
}

TunedResult TuneHybridJoin(const core::Dataset& dataset, core::SchemaMode mode,
                           const GridOptions& options) {
  TunedResult result;
  result.method = "HybridJoin";
  const std::size_t total_duplicates = dataset.NumDuplicates();
  constexpr int kBins = 101;

  // The k sweep: every k for the full grid, a coarse ladder otherwise.
  std::vector<int> k_grid;
  if (options.full_grid) {
    for (int k = 1; k <= 100; ++k) k_grid.push_back(k);
  } else {
    k_grid = {1, 2, 3, 5, 10, 20};
  }

  SparseConfig best_config;
  double best_threshold = 1.0;
  int best_k = 1;
  core::Effectiveness best_eff;
  bool have_best = false;

  // One unfiltered probe pass per (clean, model) combo scores every
  // (measure, k, threshold) cell: per query, pair/duplicate counts at or
  // above each threshold bin come from suffix-cumulated similarity bins and
  // the kNN fallback contribution from cumulated distinct-similarity rank
  // groups. The per-query hybrid decision — threshold pass when at least k
  // pairs reach the bin, kNN fallback otherwise — is then a per-cell pick
  // between the two, exactly reproducing HybridJoin on that query (up to
  // the ε-tuner's established bin granularity).
  struct ComboCells {
    // [m][k][bin] accumulated pairs/duplicates of the hybrid result.
    std::vector<std::uint64_t> pairs, dups;
  };
  const auto grid = RepresentationGrid(options.full_grid);
  const std::size_t cells = kMeasures.size() * k_grid.size() * kBins;
  std::vector<ComboCells> combos(grid.size());
  for (auto& combo : combos) {
    combo.pairs.assign(cells, 0);
    combo.dups.assign(cells, 0);
  }
  const auto cell = [&](std::size_t m, std::size_t kk, std::size_t bin) {
    return (m * k_grid.size() + kk) * kBins + bin;
  };

  ParallelFor(0, grid.size(), /*grain=*/1,
              [&](std::size_t g_begin, std::size_t g_end) {
    for (std::size_t g = g_begin; g < g_end; ++g) {
      const auto& [clean, model] = grid[g];
      const auto indexed =
          sparsenn::BuildSideTokenSets(dataset, 0, mode, model, clean);
      const auto queries =
          sparsenn::BuildSideTokenSets(dataset, 1, mode, model, clean);
      sparsenn::ScanCountIndex index(indexed);
      ComboCells& acc = combos[g];

      std::vector<std::pair<EntityId, std::uint32_t>> matches;
      std::vector<std::pair<double, bool>> scored;  // (sim, is_dup) descending
      std::vector<std::pair<std::uint64_t, std::uint64_t>> knn_cum;
      for (std::size_t q = 0; q < queries.size(); ++q) {
        matches.clear();
        index.Probe(queries[q], [&matches](std::uint32_t id,
                                           std::uint32_t overlap,
                                           std::uint32_t) {
          matches.emplace_back(id, overlap);
        });
        for (std::size_t m = 0; m < kMeasures.size(); ++m) {
          scored.clear();
          for (const auto& [id, overlap] : matches) {
            const core::PairKey key =
                core::MakePair(id, static_cast<EntityId>(q));
            scored.emplace_back(
                sparsenn::SetSimilarity(kMeasures[m], overlap,
                                        queries[q].size(), index.SetSize(id)),
                dataset.IsDuplicate(key));
          }
          std::sort(scored.begin(), scored.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });

          // Suffix-cumulated bins: entry b counts pairs with sim >= b/100.
          std::array<std::uint64_t, kBins> bin_pairs{}, bin_dups{};
          for (const auto& [sim, dup] : scored) {
            const auto b = static_cast<std::size_t>(
                std::clamp(static_cast<int>(sim * 100.0), 0, kBins - 1));
            ++bin_pairs[b];
            if (dup) bin_dups[b] += 1;
          }
          for (int b = kBins - 2; b >= 0; --b) {
            bin_pairs[static_cast<std::size_t>(b)] +=
                bin_pairs[static_cast<std::size_t>(b) + 1];
            bin_dups[static_cast<std::size_t>(b)] +=
                bin_dups[static_cast<std::size_t>(b) + 1];
          }

          // Cumulated rank groups: knn_cum[g] is the kNN result for k=g+1.
          knn_cum.clear();
          double previous = -1.0;
          for (const auto& [sim, dup] : scored) {
            if (sim != previous) {
              previous = sim;
              knn_cum.emplace_back(knn_cum.empty() ? 0 : knn_cum.back().first,
                                   knn_cum.empty() ? 0 : knn_cum.back().second);
            }
            ++knn_cum.back().first;
            knn_cum.back().second += dup ? 1 : 0;
          }

          for (std::size_t kk = 0; kk < k_grid.size(); ++kk) {
            const auto k = static_cast<std::uint64_t>(k_grid[kk]);
            std::uint64_t knn_pairs = 0, knn_dups = 0;
            if (!knn_cum.empty()) {
              const std::size_t idx =
                  std::min<std::size_t>(k_grid[kk], knn_cum.size()) - 1;
              knn_pairs = knn_cum[idx].first;
              knn_dups = knn_cum[idx].second;
            }
            for (std::size_t b = 0; b < kBins; ++b) {
              if (bin_pairs[b] >= k) {
                acc.pairs[cell(m, kk, b)] += bin_pairs[b];
                acc.dups[cell(m, kk, b)] += bin_dups[b];
              } else {
                acc.pairs[cell(m, kk, b)] += knn_pairs;
                acc.dups[cell(m, kk, b)] += knn_dups;
              }
            }
          }
        }
      }
    }
  });

  // Sequential selection in grid order: ascending k, then descending
  // threshold with the paper's early-termination at the recall target.
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const auto& [clean, model] = grid[g];
    const ComboCells& acc = combos[g];
    for (std::size_t m = 0; m < kMeasures.size(); ++m) {
      for (std::size_t kk = 0; kk < k_grid.size(); ++kk) {
        for (int b = kBins - 1; b >= 0; --b) {
          ++result.configurations_tried;
          const auto idx = cell(m, kk, static_cast<std::size_t>(b));
          const auto eff =
              MakeEff(acc.pairs[idx], acc.dups[idx], total_duplicates);
          if (!have_best || IsBetter(eff, best_eff, options.target_recall)) {
            have_best = true;
            best_eff = eff;
            best_config.clean = clean;
            best_config.model = model;
            best_config.measure = kMeasures[m];
            best_threshold = b / 100.0;
            best_k = k_grid[kk];
          }
          if (eff.pc >= options.target_recall) break;
        }
      }
    }
  }

  auto run =
      sparsenn::HybridJoin(dataset, mode, best_config, best_threshold, best_k);
  result.eff = core::Evaluate(run.candidates, dataset);
  result.runtime_ms = run.timing.TotalMs();
  result.phases = run.timing.phases();
  std::ostringstream desc;
  desc << DescribeSparse(best_config) << " t=" << best_threshold
       << " K=" << best_k;
  result.config = desc.str();
  result.reached_target = result.eff.pc >= options.target_recall;
  return result;
}

TunedResult RunDknnBaseline(const core::Dataset& dataset, core::SchemaMode mode) {
  TunedResult result;
  result.method = "DkNN";
  result.configurations_tried = 1;
  auto run = sparsenn::DefaultKnnJoin(dataset, mode);
  result.eff = core::Evaluate(run.candidates, dataset);
  result.runtime_ms = run.timing.TotalMs();
  result.phases = run.timing.phases();
  result.config = "CL=on RM=C5GM SM=Cosine K=5 (smaller side queries)";
  result.reached_target = result.eff.pc >= core::kTargetRecall;
  return result;
}

}  // namespace erb::tuning
