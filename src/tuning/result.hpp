// Shared types of the configuration optimization layer (Problem 1 of the
// paper): grid options and the tuned-method result records that feed
// Tables VII-XI.
#pragma once

#include <map>
#include <string>

#include "core/metrics.hpp"

namespace erb::tuning {

/// Grid-search granularity. The default grids keep the paper's parameter
/// dimensions but use coarser steps so the full suite runs interactively;
/// `full_grid` restores the exact domains of Tables III-V.
struct GridOptions {
  bool full_grid = false;
  /// Repetitions averaged for stochastic methods (the paper uses 10).
  int repetitions = 2;
  double target_recall = core::kTargetRecall;

  /// Reads ERBENCH_FULL_GRID / ERBENCH_REPS from the environment.
  static GridOptions FromEnv();
};

/// Outcome of tuning (or of running a baseline): the best configuration's
/// effectiveness, run-time and per-phase breakdown.
struct TunedResult {
  std::string method;        ///< e.g. "SBW", "kNNJ", "FAISS"
  std::string config;        ///< best configuration (Tables VIII-X)
  core::Effectiveness eff;   ///< PC, PQ, |C| of the best configuration
  double runtime_ms = 0.0;   ///< RT of one run of the best configuration
  std::map<std::string, double> phases;  ///< phase -> ms (Figures 7-9)
  bool reached_target = false;           ///< PC >= target achieved
  std::size_t configurations_tried = 0;
};

/// Candidate-selection rule of Problem 1: prefer configurations meeting the
/// recall target, then maximize PQ; among configurations missing the target,
/// prefer the higher PC (ties by PQ).
bool IsBetter(const core::Effectiveness& challenger,
              const core::Effectiveness& incumbent, double target_recall);

}  // namespace erb::tuning
