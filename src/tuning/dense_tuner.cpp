#include "tuning/dense_tuner.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "densenn/flat_index.hpp"
#include "densenn/lsh.hpp"
#include "densenn/methods.hpp"
#include "densenn/minhash.hpp"

namespace erb::tuning {
namespace {

using core::EntityId;
using densenn::AngularLshConfig;
using densenn::DenseResult;
using densenn::KnnSearchConfig;
using densenn::MinHashConfig;
using densenn::PartitionedConfig;

// Re-measures a (possibly stochastic) winner: averages effectiveness,
// run-time AND the per-phase breakdown over `repetitions` seeded runs.
// Phases must be averaged the same way as runtime_ms — taking them from a
// single rep would make the phase sum drift away from the reported RT.
void MeasureStochasticWinner(const std::function<DenseResult(std::uint64_t)>& run,
                             const core::Dataset& dataset, int repetitions,
                             TunedResult* result) {
  double pc = 0.0, pq = 0.0, rt = 0.0, candidates = 0.0, detected = 0.0;
  std::map<std::string, double> phase_sums;
  for (int rep = 0; rep < repetitions; ++rep) {
    DenseResult r = run(static_cast<std::uint64_t>(rep) + 1);
    const auto eff = core::Evaluate(r.candidates, dataset);
    pc += eff.pc;
    pq += eff.pq;
    candidates += static_cast<double>(eff.candidates);
    detected += static_cast<double>(eff.detected);
    rt += r.timing.TotalMs();
    for (const auto& [name, ms] : r.timing.phases()) phase_sums[name] += ms;
  }
  const double n = static_cast<double>(std::max(1, repetitions));
  result->eff.pc = pc / n;
  result->eff.pq = pq / n;
  result->eff.candidates = static_cast<std::size_t>(candidates / n);
  result->eff.detected = static_cast<std::size_t>(detected / n);
  result->runtime_ms = rt / n;
  for (auto& [_, ms] : phase_sums) ms /= n;
  result->phases = std::move(phase_sums);
}

// ---------------------------------------------------------------------------
// Cardinality-based methods (FAISS / SCANN / DeepBlocker)
// ---------------------------------------------------------------------------

// Per-(clean, reverse) sweep over the cardinality threshold K: runs the
// search once at k_max and derives PC/PQ for every smaller K from the rank
// positions of the duplicates — identical to re-running per K.
struct CardinalitySweep {
  std::vector<std::uint64_t> added_dups;   // duplicates first seen at rank r
  std::vector<std::uint64_t> queries_with; // queries with >= r results
  std::size_t total_duplicates = 0;

  core::Effectiveness At(int k) const {
    core::Effectiveness eff;
    std::uint64_t pairs = 0, detected = 0;
    for (int r = 0; r < k && r < static_cast<int>(added_dups.size()); ++r) {
      pairs += queries_with[static_cast<std::size_t>(r)];
      detected += added_dups[static_cast<std::size_t>(r)];
    }
    eff.candidates = pairs;
    eff.detected = detected;
    eff.pc = static_cast<double>(detected) /
             std::max<std::size_t>(1, total_duplicates);
    eff.pq = pairs == 0 ? 0.0 : static_cast<double>(detected) / pairs;
    return eff;
  }
};

// Runs `search(query_vectors[q], k_max)` per query and accumulates the sweep.
// Queries fan across the pool; per-chunk histograms merge by elementwise
// addition (commutative over integers), so the sweep is thread-count
// independent.
template <typename SearchFn>
CardinalitySweep SweepCardinality(const core::Dataset& dataset, bool reverse,
                                  std::size_t num_queries, int k_max,
                                  SearchFn&& search) {
  CardinalitySweep sweep = ParallelMapReduce<CardinalitySweep>(
      0, num_queries, /*grain=*/0,
      [&](std::size_t q_begin, std::size_t q_end) {
        CardinalitySweep chunk;
        chunk.added_dups.assign(static_cast<std::size_t>(k_max), 0);
        chunk.queries_with.assign(static_cast<std::size_t>(k_max), 0);
        for (std::size_t q = q_begin; q < q_end; ++q) {
          const auto qid = static_cast<EntityId>(q);
          const std::vector<std::uint32_t> ids = search(qid, k_max);
          for (std::size_t r = 0; r < ids.size(); ++r) {
            ++chunk.queries_with[r];
            const core::PairKey key = reverse ? core::MakePair(qid, ids[r])
                                              : core::MakePair(ids[r], qid);
            if (dataset.IsDuplicate(key)) ++chunk.added_dups[r];
          }
        }
        return chunk;
      },
      [](CardinalitySweep& into, CardinalitySweep&& from) {
        for (std::size_t r = 0; r < into.added_dups.size(); ++r) {
          into.added_dups[r] += from.added_dups[r];
          into.queries_with[r] += from.queries_with[r];
        }
      });
  if (sweep.added_dups.empty()) {  // empty query range
    sweep.added_dups.assign(static_cast<std::size_t>(k_max), 0);
    sweep.queries_with.assign(static_cast<std::size_t>(k_max), 0);
  }
  sweep.total_duplicates = dataset.NumDuplicates();
  return sweep;
}

// The K grid of Table V(b): every value in [1,100], then coarser steps.
std::vector<int> KGrid(bool full, int k_max) {
  std::vector<int> grid;
  for (int k = 1; k <= 100 && k <= k_max; ++k) grid.push_back(k);
  if (full) {
    for (int k = 105; k <= 1000 && k <= k_max; k += 5) grid.push_back(k);
    for (int k = 1010; k <= 5000 && k <= k_max; k += 10) grid.push_back(k);
  } else {
    for (int k = 110; k <= k_max; k += 10) grid.push_back(k);
  }
  return grid;
}

struct CardinalityChoice {
  bool clean = false;
  bool reverse = false;
  int k = 1;
  int scann_variant = 0;  // SCANN only: index x similarity
  core::Effectiveness eff;
  bool valid = false;
};

// Folds one sweep into the incumbent choice: ascending K, stop at target.
void ConsiderSweep(const CardinalitySweep& sweep, bool clean, bool reverse,
                   int scann_variant, int k_max, const GridOptions& options,
                   std::size_t* tried, CardinalityChoice* best) {
  for (int k : KGrid(options.full_grid, k_max)) {
    ++*tried;
    const core::Effectiveness eff = sweep.At(k);
    if (!best->valid || IsBetter(eff, best->eff, options.target_recall)) {
      best->valid = true;
      best->eff = eff;
      best->clean = clean;
      best->reverse = reverse;
      best->k = k;
      best->scann_variant = scann_variant;
    }
    if (eff.pc >= options.target_recall) break;
  }
}

std::string DescribeKnn(const CardinalityChoice& choice) {
  std::ostringstream out;
  out << "CL=" << (choice.clean ? "on" : "off")
      << " RVS=" << (choice.reverse ? "on" : "off") << " K=" << choice.k;
  return out.str();
}

int MaxK(const core::Dataset& dataset, bool reverse, bool full) {
  const std::size_t indexed =
      reverse ? dataset.e2().size() : dataset.e1().size();
  const int cap = full ? 5000 : 200;
  return static_cast<int>(std::min<std::size_t>(indexed, cap));
}

// ---------------------------------------------------------------------------
// Shared embedding cache (per clean flag and side) for one tuner invocation.
// ---------------------------------------------------------------------------

class EmbeddingCache {
 public:
  EmbeddingCache(const core::Dataset& dataset, core::SchemaMode mode)
      : dataset_(&dataset), mode_(mode) {}

  const std::vector<densenn::Vector>& Side(int side, bool clean) {
    auto& slot = cache_[side][clean ? 1 : 0];
    if (slot.empty()) {
      slot = densenn::EmbedSide(*dataset_, side, mode_, clean);
    }
    return slot;
  }

 private:
  const core::Dataset* dataset_;
  core::SchemaMode mode_;
  std::vector<densenn::Vector> cache_[2][2];
};

std::string DescribeAngular(const AngularLshConfig& config, bool cross_polytope) {
  std::ostringstream out;
  out << "CL=" << (config.clean ? "on" : "off") << " #tables=" << config.tables
      << " #hashes=" << config.hashes << " #probes=" << config.probes;
  if (cross_polytope) out << " cpdim=" << config.last_cp_dim;
  return out.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// MinHash LSH
// ---------------------------------------------------------------------------

TunedResult TuneMinHashLsh(const core::Dataset& dataset, core::SchemaMode mode,
                           const GridOptions& options) {
  TunedResult result;
  result.method = "MH-LSH";

  // (bands, rows) with both powers of two and product in {128, 256, 512}.
  std::vector<std::pair<int, int>> band_grid;
  if (options.full_grid) {
    for (int product : {128, 256, 512}) {
      for (int bands = 2; bands <= product / 2; bands *= 2) {
        band_grid.emplace_back(bands, product / bands);
      }
    }
  } else {
    band_grid = {{16, 16}, {32, 8}, {128, 2}};
  }
  const std::vector<int> shingle_grid =
      options.full_grid ? std::vector<int>{2, 3, 4, 5} : std::vector<int>{3, 5};

  // The grid is flattened in its original nesting order; each config runs on
  // its own pool chunk and the argmax fold below replays the sequential
  // tie-breaking (first win on equal effectiveness) exactly.
  std::vector<MinHashConfig> grid;
  for (bool clean : {false, true}) {
    for (const auto& [bands, rows] : band_grid) {
      for (int k : shingle_grid) {
        MinHashConfig config;
        config.clean = clean;
        config.bands = bands;
        config.rows = rows;
        config.shingle_k = k;
        config.seed = 1;
        grid.push_back(config);
      }
    }
  }
  std::vector<core::Effectiveness> effs(grid.size());
  ParallelFor(0, grid.size(), /*grain=*/1,
              [&](std::size_t g_begin, std::size_t g_end) {
                for (std::size_t g = g_begin; g < g_end; ++g) {
                  DenseResult run = densenn::MinHashLsh(dataset, mode, grid[g]);
                  effs[g] = core::Evaluate(run.candidates, dataset);
                }
              });

  MinHashConfig best_config;
  core::Effectiveness best_eff;
  bool have_best = false;
  for (std::size_t g = 0; g < grid.size(); ++g) {
    ++result.configurations_tried;
    if (!have_best || IsBetter(effs[g], best_eff, options.target_recall)) {
      have_best = true;
      best_eff = effs[g];
      best_config = grid[g];
    }
  }

  MeasureStochasticWinner(
      [&](std::uint64_t seed) {
        MinHashConfig config = best_config;
        config.seed = seed;
        return densenn::MinHashLsh(dataset, mode, config);
      },
      dataset, options.repetitions, &result);
  std::ostringstream desc;
  desc << "CL=" << (best_config.clean ? "on" : "off")
       << " #bands=" << best_config.bands << " #rows=" << best_config.rows
       << " k=" << best_config.shingle_k;
  result.config = desc.str();
  result.reached_target = result.eff.pc >= options.target_recall;
  return result;
}

// ---------------------------------------------------------------------------
// Hyperplane / Cross-Polytope LSH
// ---------------------------------------------------------------------------

namespace {

TunedResult TuneAngular(const core::Dataset& dataset, core::SchemaMode mode,
                        const GridOptions& options, bool cross_polytope) {
  TunedResult result;
  result.method = cross_polytope ? "CP-LSH" : "HP-LSH";

  // Full grids follow Table V exactly (see tuning/gridspec.cpp); the coarse
  // defaults keep the dimensions but probe far fewer points.
  std::vector<int> table_grid;
  if (options.full_grid) {
    for (int t = 1; t <= 512; t *= 2) table_grid.push_back(t);
  } else {
    table_grid = {16};
  }
  std::vector<int> hash_grid;
  if (options.full_grid) {
    for (int h = 1; h <= 20; ++h) hash_grid.push_back(h);
  } else {
    hash_grid = cross_polytope ? std::vector<int>{1, 2} : std::vector<int>{8, 12};
    // (single-table-count coarse grid: the probe sweep supplies the recall
    // dimension, so varying #tables adds little at bench scale)
  }
  const std::vector<int> cp_dim_grid =
      cross_polytope ? (options.full_grid ? std::vector<int>{32, 64, 128, 256, 512}
                                          : std::vector<int>{128})
                     : std::vector<int>{128};

  auto run_method = [&](const AngularLshConfig& config) {
    return cross_polytope ? densenn::CrossPolytopeLsh(dataset, mode, config)
                          : densenn::HyperplaneLsh(dataset, mode, config);
  };

  // The lazily-filled embedding cache is not thread-safe, so both cleaning
  // variants are materialized up front; the flattened config grid then fans
  // across the pool (one probe sweep per config) and the fold below replays
  // the sequential selection, including its per-config early termination.
  EmbeddingCache embeddings(dataset, mode);
  for (bool clean : {false, true}) {
    embeddings.Side(0, clean);
    embeddings.Side(1, clean);
  }
  std::vector<AngularLshConfig> grid;
  for (bool clean : {false, true}) {
    for (int tables : table_grid) {
      for (int hashes : hash_grid) {
        for (int cp_dim : cp_dim_grid) {
          AngularLshConfig config;
          config.clean = clean;
          config.tables = tables;
          config.hashes = hashes;
          config.last_cp_dim = cp_dim;
          config.seed = 1;
          grid.push_back(config);
        }
      }
    }
  }
  std::vector<std::vector<densenn::ProbeSweepPoint>> sweeps(grid.size());
  ParallelFor(0, grid.size(), /*grain=*/1,
              [&](std::size_t g_begin, std::size_t g_end) {
                for (std::size_t g = g_begin; g < g_end; ++g) {
                  const AngularLshConfig& config = grid[g];
                  // One pass evaluates every probe budget; the paper's
                  // protocol raises probes until the recall target is met.
                  sweeps[g] = densenn::SweepAngularProbes(
                      embeddings.Side(0, config.clean),
                      embeddings.Side(1, config.clean), dataset, config,
                      cross_polytope, config.tables * 32);
                }
              });

  AngularLshConfig best_config;
  core::Effectiveness best_eff;
  bool have_best = false;
  for (std::size_t g = 0; g < grid.size(); ++g) {
    for (const auto& point : sweeps[g]) {
      ++result.configurations_tried;
      if (!have_best || IsBetter(point.eff, best_eff, options.target_recall)) {
        have_best = true;
        best_eff = point.eff;
        best_config = grid[g];
        best_config.probes = point.probes;
      }
      if (point.eff.pc >= options.target_recall) break;
    }
  }

  MeasureStochasticWinner(
      [&](std::uint64_t seed) {
        AngularLshConfig config = best_config;
        config.seed = seed;
        return run_method(config);
      },
      dataset, options.repetitions, &result);
  result.config = DescribeAngular(best_config, cross_polytope);
  result.reached_target = result.eff.pc >= options.target_recall;
  return result;
}

}  // namespace

TunedResult TuneHyperplaneLsh(const core::Dataset& dataset, core::SchemaMode mode,
                              const GridOptions& options) {
  return TuneAngular(dataset, mode, options, /*cross_polytope=*/false);
}

TunedResult TuneCrossPolytopeLsh(const core::Dataset& dataset,
                                 core::SchemaMode mode,
                                 const GridOptions& options) {
  return TuneAngular(dataset, mode, options, /*cross_polytope=*/true);
}

// ---------------------------------------------------------------------------
// FAISS
// ---------------------------------------------------------------------------

TunedResult TuneFaiss(const core::Dataset& dataset, core::SchemaMode mode,
                      const GridOptions& options) {
  TunedResult result;
  result.method = "FAISS";

  EmbeddingCache embeddings(dataset, mode);
  CardinalityChoice best;
  for (bool clean : {false, true}) {
    for (bool reverse : {false, true}) {
      const int k_max = MaxK(dataset, reverse, options.full_grid);
      const auto& indexed = embeddings.Side(reverse ? 1 : 0, clean);
      const auto& queries = embeddings.Side(reverse ? 0 : 1, clean);
      densenn::FlatIndex index(indexed, densenn::DenseMetric::kSquaredL2);
      const auto sweep = SweepCardinality(
          dataset, reverse, queries.size(), k_max,
          [&](EntityId q, int k) { return index.Search(queries[q], k); });
      ConsiderSweep(sweep, clean, reverse, 0, k_max, options,
                    &result.configurations_tried, &best);
    }
  }

  KnnSearchConfig config;
  config.clean = best.clean;
  config.reverse = best.reverse;
  config.k = best.k;
  DenseResult run = densenn::FaissKnn(dataset, mode, config);
  result.eff = core::Evaluate(run.candidates, dataset);
  result.runtime_ms = run.timing.TotalMs();
  result.phases = run.timing.phases();
  result.config = DescribeKnn(best);
  result.reached_target = result.eff.pc >= options.target_recall;
  return result;
}

// ---------------------------------------------------------------------------
// SCANN
// ---------------------------------------------------------------------------

TunedResult TuneScann(const core::Dataset& dataset, core::SchemaMode mode,
                      const GridOptions& options) {
  TunedResult result;
  result.method = "SCANN";

  // variant = 2 * asymmetric_hashing + dot_product.
  auto variant_config = [](int variant) {
    PartitionedConfig scann;
    scann.asymmetric_hashing = (variant & 2) != 0;
    scann.metric = (variant & 1) != 0 ? densenn::DenseMetric::kDotProduct
                                      : densenn::DenseMetric::kSquaredL2;
    return scann;
  };

  EmbeddingCache embeddings(dataset, mode);
  CardinalityChoice best;
  for (bool clean : {false, true}) {
    for (bool reverse : {false, true}) {
      const int k_max = MaxK(dataset, reverse, options.full_grid);
      const auto& indexed = embeddings.Side(reverse ? 1 : 0, clean);
      const auto& queries = embeddings.Side(reverse ? 0 : 1, clean);
      for (int variant = 0; variant < 4; ++variant) {
        densenn::PartitionedIndex index(indexed, variant_config(variant));
        const auto sweep = SweepCardinality(
            dataset, reverse, queries.size(), k_max,
            [&](EntityId q, int k) { return index.Search(queries[q], k); });
        ConsiderSweep(sweep, clean, reverse, variant, k_max, options,
                      &result.configurations_tried, &best);
      }
    }
  }

  KnnSearchConfig config;
  config.clean = best.clean;
  config.reverse = best.reverse;
  config.k = best.k;
  DenseResult run = densenn::ScannKnn(dataset, mode, config,
                                      variant_config(best.scann_variant));
  result.eff = core::Evaluate(run.candidates, dataset);
  result.runtime_ms = run.timing.TotalMs();
  result.phases = run.timing.phases();
  std::ostringstream desc;
  desc << DescribeKnn(best)
       << " index=" << ((best.scann_variant & 2) != 0 ? "AH" : "BF")
       << " sim=" << ((best.scann_variant & 1) != 0 ? "DP" : "L2^2");
  result.config = desc.str();
  result.reached_target = result.eff.pc >= options.target_recall;
  return result;
}

// ---------------------------------------------------------------------------
// DeepBlocker
// ---------------------------------------------------------------------------

TunedResult TuneDeepBlocker(const core::Dataset& dataset, core::SchemaMode mode,
                            const GridOptions& options) {
  TunedResult result;
  result.method = "DeepBlocker";

  densenn::AutoencoderConfig autoencoder;  // AutoEncoder tuple-embedding module
  autoencoder.seed = 1;

  EmbeddingCache embeddings(dataset, mode);
  CardinalityChoice best;
  for (bool clean : {false, true}) {
    // The autoencoder trains on the union of both sides, which is identical
    // for both RVS directions — one training per cleaning setting suffices.
    std::vector<densenn::Vector> training = embeddings.Side(0, clean);
    const auto& side2 = embeddings.Side(1, clean);
    training.insert(training.end(), side2.begin(), side2.end());
    densenn::Autoencoder model(training, autoencoder);
    const auto encoded1 = densenn::EncodeAll(model, embeddings.Side(0, clean));
    const auto encoded2 = densenn::EncodeAll(model, embeddings.Side(1, clean));
    for (bool reverse : {false, true}) {
      const int k_max = MaxK(dataset, reverse, options.full_grid);
      const auto& indexed = reverse ? encoded2 : encoded1;
      const auto& queries = reverse ? encoded1 : encoded2;
      densenn::FlatIndex index(indexed, densenn::DenseMetric::kSquaredL2);
      const auto sweep = SweepCardinality(
          dataset, reverse, queries.size(), k_max,
          [&](EntityId q, int k) { return index.Search(queries[q], k); });
      ConsiderSweep(sweep, clean, reverse, 0, k_max, options,
                    &result.configurations_tried, &best);
    }
  }

  KnnSearchConfig config;
  config.clean = best.clean;
  config.reverse = best.reverse;
  config.k = best.k;
  MeasureStochasticWinner(
      [&](std::uint64_t seed) {
        densenn::AutoencoderConfig ae = autoencoder;
        ae.seed = seed;
        return densenn::DeepBlockerKnn(dataset, mode, config, ae);
      },
      dataset, options.repetitions, &result);
  result.config = DescribeKnn(best);
  result.reached_target = result.eff.pc >= options.target_recall;
  return result;
}

TunedResult RunDdbBaseline(const core::Dataset& dataset, core::SchemaMode mode,
                           const GridOptions& options) {
  TunedResult result;
  result.method = "DDB";
  result.configurations_tried = 1;
  MeasureStochasticWinner(
      [&](std::uint64_t seed) {
        return densenn::DefaultDeepBlocker(dataset, mode, seed);
      },
      dataset, options.repetitions, &result);
  result.config = "CL=on K=5 (smaller side queries)";
  result.reached_target = result.eff.pc >= core::kTargetRecall;
  return result;
}

}  // namespace erb::tuning
