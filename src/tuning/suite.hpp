// The full method roster of Table VII: 15 fine-tuned filters plus 4 baseline
// methods — extended with the hybrid ε+kNN join (HB-join) — with a uniform
// run interface for the benchmark harness.
#pragma once

#include <string_view>
#include <vector>

#include "core/entity.hpp"
#include "tuning/result.hpp"

namespace erb::tuning {

/// Every method evaluated in Table VII, in the table's row order.
enum class MethodId {
  kSbw, kQbw, kEqbw, kSabw, kEsabw,   // fine-tuned blocking workflows
  kPbw, kDbw,                          // baseline blocking workflows
  kEpsilonJoin, kKnnJoin, kDknn,       // sparse NN (+ baseline)
  kMhLsh, kCpLsh, kHpLsh,              // similarity-based dense NN
  kFaiss, kScann, kDeepBlocker, kDdb,  // cardinality-based dense NN (+ baseline)
  kHybridJoin,                         // sparse NN extension (HB-join)
};

std::string_view MethodName(MethodId id);

/// All methods in Table VII order.
std::vector<MethodId> AllMethods();

/// True for the similarity/cardinality and blocking groups as the paper's
/// qualitative taxonomy defines them.
bool IsBlockingMethod(MethodId id);
bool IsSparseMethod(MethodId id);
bool IsDenseMethod(MethodId id);
bool IsBaseline(MethodId id);

/// Tunes (or, for baselines, runs) one method on one dataset/schema setting.
TunedResult RunMethod(MethodId id, const core::Dataset& dataset,
                      core::SchemaMode mode, const GridOptions& options);

}  // namespace erb::tuning
