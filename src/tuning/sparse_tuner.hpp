// Grid search over the sparse NN methods (Table IV): ε-Join and kNN-Join.
//
// Both tuners exploit that, for a fixed (cleaning, model, measure)
// combination, every threshold of the sweep can be evaluated from one pass
// over the scored candidate pairs: thresholds are binned for ε-Join and rank
// groups are accumulated for kNN-Join. Results are identical to running the
// join once per threshold.
#pragma once

#include "core/entity.hpp"
#include "tuning/result.hpp"

namespace erb::tuning {

/// Fine-tunes ε-Join for Problem 1.
TunedResult TuneEpsilonJoin(const core::Dataset& dataset, core::SchemaMode mode,
                            const GridOptions& options);

/// Fine-tunes kNN-Join for Problem 1 (including the RVS direction).
TunedResult TuneKnnJoin(const core::Dataset& dataset, core::SchemaMode mode,
                        const GridOptions& options);

/// Fine-tunes the hybrid ε+kNN join (HB-join) over the shared sparse block
/// plus its (threshold, k) plane. One probe pass per (cleaning, model) combo
/// feeds every (measure, threshold, k) cell: per query the threshold-pass
/// counts come from similarity bins and the kNN fallback from rank groups,
/// with the per-query fallback decision (fewer than k matches at or above
/// the threshold) applied cell by cell.
TunedResult TuneHybridJoin(const core::Dataset& dataset, core::SchemaMode mode,
                           const GridOptions& options);

/// Runs the DkNN baseline (no tuning).
TunedResult RunDknnBaseline(const core::Dataset& dataset, core::SchemaMode mode);

}  // namespace erb::tuning
