// Holistic grid search over blocking workflows (Table III): all steps are
// fine-tuned simultaneously, not step-by-step, following the paper's
// configuration-optimization protocol.
#pragma once

#include "blocking/workflow.hpp"
#include "core/entity.hpp"
#include "tuning/result.hpp"

namespace erb::tuning {

/// Fine-tunes the blocking workflow rooted at `kind` for Problem 1 and
/// reports the best configuration's performance (with RT re-measured by one
/// clean run of the winning configuration).
TunedResult TuneBlockingWorkflow(const core::Dataset& dataset,
                                 core::SchemaMode mode,
                                 blocking::BuilderKind kind,
                                 const GridOptions& options);

/// Runs the PBW baseline (no tuning).
TunedResult RunPbwBaseline(const core::Dataset& dataset, core::SchemaMode mode);

/// Runs the DBW baseline (no tuning).
TunedResult RunDbwBaseline(const core::Dataset& dataset, core::SchemaMode mode);

}  // namespace erb::tuning
