// Fast evaluation of every comparison-cleaning configuration over one block
// collection.
//
// The holistic grid search of the paper evaluates Comparison Propagation plus
// all 42 Meta-blocking combinations (6 weighting schemes x 7 pruning
// algorithms) for every block-cleaning variant. Running MetaBlocking() 42
// times would stream the blocking graph 84 times; this evaluator computes,
// per scheme, the statistics of all 7 pruning algorithms in one pass and
// their PC/PQ counts in a second, i.e. 13 passes total — identical results,
// ~6x faster tuning.
#pragma once

#include <array>

#include "blocking/comparison.hpp"
#include "core/metrics.hpp"

namespace erb::tuning {

/// Effectiveness of one cleaning configuration (counts only; candidate sets
/// are not materialized during tuning).
struct CleaningOutcome {
  blocking::ComparisonConfig config;
  core::Effectiveness eff;
};

inline constexpr int kNumSchemes = 6;
inline constexpr int kNumPrunings = 7;

/// All 43 outcomes: index 0 is Comparison Propagation, then scheme-major
/// meta-blocking combinations.
using CleaningSweep = std::array<CleaningOutcome, 1 + kNumSchemes * kNumPrunings>;

/// Evaluates every cleaning configuration of `blocks` against the ground
/// truth of `dataset`. The Comparison Propagation entry doubles as the block
/// collection's recall ceiling (no cleaning configuration can exceed its PC).
CleaningSweep EvaluateAllCleaning(const blocking::BlockCollection& blocks,
                                  const core::Dataset& dataset);

/// Only the recall ceiling (the Comparison Propagation PC): cheap check used
/// for the grid's early-termination rule.
double RecallCeiling(const blocking::BlockCollection& blocks,
                     const core::Dataset& dataset);

}  // namespace erb::tuning
