#include "tuning/metaeval.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "blocking/entity_index.hpp"
#include "blocking/weighting.hpp"
#include "obs/trace.hpp"

namespace erb::tuning {
namespace {

using blocking::EntityBlockIndex;
using blocking::PruningAlgorithm;
using blocking::WeightingScheme;
using core::EntityId;

constexpr std::array<WeightingScheme, kNumSchemes> kSchemes = {
    WeightingScheme::kArcs, WeightingScheme::kCbs,  WeightingScheme::kEcbs,
    WeightingScheme::kJs,   WeightingScheme::kEjs,  WeightingScheme::kChiSquared};

constexpr std::array<PruningAlgorithm, kNumPrunings> kPrunings = {
    PruningAlgorithm::kBlast, PruningAlgorithm::kCep,  PruningAlgorithm::kCnp,
    PruningAlgorithm::kRcnp,  PruningAlgorithm::kRwnp, PruningAlgorithm::kWep,
    PruningAlgorithm::kWnp};

// Bounded min-heap of the k largest weights per node (same semantics as the
// tracker inside MetaBlocking; duplicated here because that one is file-local
// and this evaluator must match its tie behaviour exactly).
class TopKTracker {
 public:
  TopKTracker(std::size_t nodes, std::size_t k) : k_(k), heaps_(nodes) {}

  void Offer(std::size_t node, double weight) {
    auto& heap = heaps_[node];
    if (heap.size() < k_) {
      heap.push_back(weight);
      std::push_heap(heap.begin(), heap.end(), std::greater<>());
    } else if (weight > heap.front()) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>());
      heap.back() = weight;
      std::push_heap(heap.begin(), heap.end(), std::greater<>());
    }
  }

  double Threshold(std::size_t node) const {
    const auto& heap = heaps_[node];
    return heap.empty() ? 0.0 : heap.front();
  }

 private:
  std::size_t k_;
  std::vector<std::vector<double>> heaps_;
};

}  // namespace

double RecallCeiling(const blocking::BlockCollection& blocks,
                     const core::Dataset& dataset) {
  // A duplicate is reachable iff its entities co-occur in >= 1 block. Only
  // integer counts are derived from the stream, so the unsorted arcs-free
  // stream suffices.
  EntityBlockIndex index(blocks, dataset.e1().size(), dataset.e2().size());
  std::size_t reachable = 0;
  index.Stream<false, false>(
      0, index.n1(), [&](EntityId i, EntityId j, std::uint32_t, double) {
        if (dataset.IsDuplicate(core::MakePair(i, j))) ++reachable;
      });
  const std::size_t total = dataset.NumDuplicates();
  return total == 0 ? 0.0 : static_cast<double>(reachable) / total;
}

CleaningSweep EvaluateAllCleaning(const blocking::BlockCollection& blocks,
                                  const core::Dataset& dataset) {
  const std::size_t n1 = dataset.e1().size();
  const std::size_t n2 = dataset.e2().size();
  const std::size_t total_duplicates = std::max<std::size_t>(1, dataset.NumDuplicates());

  CleaningSweep sweep;
  EntityBlockIndex index(blocks, n1, n2);

  // Entry 0: Comparison Propagation = every distinct pair.
  {
    std::uint64_t pairs = 0, detected = 0;
    index.Stream<false, false>(
        0, n1, [&](EntityId i, EntityId j, std::uint32_t, double) {
          ++pairs;
          if (dataset.IsDuplicate(core::MakePair(i, j))) ++detected;
        });
    auto& out = sweep[0];
    out.config.use_metablocking = false;
    out.eff.candidates = pairs;
    out.eff.detected = detected;
    out.eff.pc = static_cast<double>(detected) / total_duplicates;
    out.eff.pq = pairs == 0 ? 0.0 : static_cast<double>(detected) / pairs;
  }

  // Cardinality parameters shared by all schemes (depend only on the blocks).
  const std::uint64_t assignments = blocking::TotalAssignments(blocks);
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             static_cast<double>(assignments) / std::max<std::size_t>(1, n1 + n2))));
  const std::uint64_t cep_cap = std::max<std::uint64_t>(1, assignments / 2);
  constexpr double kBlastRatio = 0.35;

  for (int s = 0; s < kNumSchemes; ++s) {
    const WeightingScheme scheme = kSchemes[static_cast<std::size_t>(s)];
    if (scheme == WeightingScheme::kEjs) index.EnsureDegrees();
    const blocking::WeightTables tables =
        blocking::BuildWeightTables(index, scheme);

    blocking::DispatchWeigher(index, scheme, tables, [&](auto weigh) {
      constexpr bool kNeedsArcs = decltype(weigh)::kNeedsArcs;

      // Pass 1: all statistics at once. The sorted stream pins the weight
      // sums to the same ascending (i, j) association order the production
      // MetaBlocking uses, so the thresholds match it bit for bit.
      TopKTracker topk1(n1, k), topk2(n2, k);
      std::vector<double> sum1(n1, 0.0), sum2(n2, 0.0), max1(n1, 0.0), max2(n2, 0.0);
      std::vector<std::uint32_t> cnt1(n1, 0), cnt2(n2, 0);
      std::vector<double> all_weights;
      double global_sum = 0.0;
      std::uint64_t global_count = 0;
      index.Stream<kNeedsArcs, true>(
          0, n1, [&](EntityId i, EntityId j, std::uint32_t common, double arcs) {
            const double w = weigh(i, j, common, arcs);
            topk1.Offer(i, w);
            topk2.Offer(j, w);
            sum1[i] += w;
            sum2[j] += w;
            ++cnt1[i];
            ++cnt2[j];
            max1[i] = std::max(max1[i], w);
            max2[j] = std::max(max2[j], w);
            all_weights.push_back(w);
            global_sum += w;
            ++global_count;
          });
      obs::CounterAdd("blocking.pairs_weighted", global_count);

      double cep_threshold = 0.0;
      if (all_weights.size() > cep_cap) {
        std::nth_element(all_weights.begin(), all_weights.begin() + cep_cap - 1,
                         all_weights.end(), std::greater<>());
        cep_threshold = all_weights[cep_cap - 1];
      }
      all_weights.clear();
      all_weights.shrink_to_fit();
      const double global_avg =
          global_count == 0 ? 0.0 : global_sum / static_cast<double>(global_count);

      // Pass 2: count |C| and detected duplicates for all 7 prunings at
      // once. Only integer counts are accumulated, so emission order is
      // free and the unsorted stream does the minimum work per pair.
      std::array<std::uint64_t, kNumPrunings> pairs{};
      std::array<std::uint64_t, kNumPrunings> detected{};
      index.Stream<kNeedsArcs, false>(
          0, n1, [&](EntityId i, EntityId j, std::uint32_t common, double arcs) {
            const double w = weigh(i, j, common, arcs);
            const bool is_duplicate = dataset.IsDuplicate(core::MakePair(i, j));
            const bool avg1_ok = cnt1[i] > 0 && w >= sum1[i] / cnt1[i];
            const bool avg2_ok = cnt2[j] > 0 && w >= sum2[j] / cnt2[j];
            const bool topk1_ok = w >= topk1.Threshold(i);
            const bool topk2_ok = w >= topk2.Threshold(j);
            const std::array<bool, kNumPrunings> keep = {
                /*BLAST=*/w >= kBlastRatio * (max1[i] + max2[j]),
                /*CEP=*/w >= cep_threshold,
                /*CNP=*/topk1_ok || topk2_ok,
                /*RCNP=*/topk1_ok && topk2_ok,
                /*RWNP=*/avg1_ok && avg2_ok,
                /*WEP=*/w >= global_avg,
                /*WNP=*/avg1_ok || avg2_ok,
            };
            for (int p = 0; p < kNumPrunings; ++p) {
              if (!keep[static_cast<std::size_t>(p)]) continue;
              ++pairs[static_cast<std::size_t>(p)];
              if (is_duplicate) ++detected[static_cast<std::size_t>(p)];
            }
          });

      for (int p = 0; p < kNumPrunings; ++p) {
        auto& out = sweep[static_cast<std::size_t>(1 + s * kNumPrunings + p)];
        out.config.use_metablocking = true;
        out.config.scheme = scheme;
        out.config.pruning = kPrunings[static_cast<std::size_t>(p)];
        out.eff.candidates = pairs[static_cast<std::size_t>(p)];
        out.eff.detected = detected[static_cast<std::size_t>(p)];
        out.eff.pc = static_cast<double>(out.eff.detected) / total_duplicates;
        out.eff.pq = out.eff.candidates == 0
                         ? 0.0
                         : static_cast<double>(out.eff.detected) / out.eff.candidates;
      }
    });
  }
  return sweep;
}

}  // namespace erb::tuning
