#include "tuning/result.hpp"

#include <cstdlib>

namespace erb::tuning {

GridOptions GridOptions::FromEnv() {
  GridOptions options;
  options.full_grid = std::getenv("ERBENCH_FULL_GRID") != nullptr;
  if (const char* reps = std::getenv("ERBENCH_REPS")) {
    const int value = std::atoi(reps);
    if (value > 0) options.repetitions = value;
  }
  if (std::getenv("ERBENCH_FAST") != nullptr) options.repetitions = 1;
  return options;
}

bool IsBetter(const core::Effectiveness& challenger,
              const core::Effectiveness& incumbent, double target_recall) {
  const bool challenger_ok = challenger.pc >= target_recall;
  const bool incumbent_ok = incumbent.pc >= target_recall;
  if (challenger_ok != incumbent_ok) return challenger_ok;
  if (challenger_ok) return challenger.pq > incumbent.pq;
  if (challenger.pc != incumbent.pc) return challenger.pc > incumbent.pc;
  return challenger.pq > incumbent.pq;
}

}  // namespace erb::tuning
