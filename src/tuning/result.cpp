#include "tuning/result.hpp"

#include <cstdlib>

#include "common/env.hpp"

namespace erb::tuning {

GridOptions GridOptions::FromEnv() {
  // All three knobs go through the shared parsers (common/env.hpp):
  // ERBENCH_FULL_GRID=0 now disables the full grid instead of enabling it by
  // mere presence, ERBENCH_REPS=junk warns on stderr instead of silently
  // keeping the default (atoi returned 0 and the guard swallowed it), and
  // the values are re-read on every call rather than latched.
  GridOptions options;
  options.full_grid =
      ParseOnOff("ERBENCH_FULL_GRID", std::getenv("ERBENCH_FULL_GRID"), false);
  options.repetitions = static_cast<int>(
      ParseEnvCount("ERBENCH_REPS", std::getenv("ERBENCH_REPS"), 1, 1000,
                    static_cast<std::size_t>(options.repetitions)));
  if (ParseOnOff("ERBENCH_FAST", std::getenv("ERBENCH_FAST"), false)) {
    options.repetitions = 1;
  }
  return options;
}

bool IsBetter(const core::Effectiveness& challenger,
              const core::Effectiveness& incumbent, double target_recall) {
  const bool challenger_ok = challenger.pc >= target_recall;
  const bool incumbent_ok = incumbent.pc >= target_recall;
  if (challenger_ok != incumbent_ok) return challenger_ok;
  if (challenger_ok) return challenger.pq > incumbent.pq;
  if (challenger.pc != incumbent.pc) return challenger.pc > incumbent.pc;
  return challenger.pq > incumbent.pq;
}

}  // namespace erb::tuning
