#include "tuning/blocking_tuner.hpp"

#include <vector>

#include "blocking/cleaning.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "tuning/metaeval.hpp"

namespace erb::tuning {
namespace {

using blocking::BlockCollection;
using blocking::BuilderConfig;
using blocking::BuilderKind;
using blocking::WorkflowConfig;

// The builder parameter combinations of Table III, coarsened unless
// `full` is set. b_max is handled separately (see TuneBlockingWorkflow).
std::vector<BuilderConfig> BuilderGrid(BuilderKind kind, bool full) {
  std::vector<BuilderConfig> grid;
  auto qs = full ? std::vector<int>{2, 3, 4, 5, 6} : std::vector<int>{3, 4, 6};
  auto ts = full ? std::vector<double>{0.8, 0.85, 0.9, 0.95}
                 : std::vector<double>{0.8, 0.9};
  auto lmins = full ? std::vector<int>{2, 3, 4, 5, 6} : std::vector<int>{2, 3, 4, 6};
  switch (kind) {
    case BuilderKind::kStandard: {
      grid.push_back({kind});
      break;
    }
    case BuilderKind::kQGrams: {
      for (int q : qs) {
        BuilderConfig c{kind};
        c.q = q;
        grid.push_back(c);
      }
      break;
    }
    case BuilderKind::kExtendedQGrams: {
      for (int q : qs) {
        for (double t : ts) {
          BuilderConfig c{kind};
          c.q = q;
          c.t = t;
          grid.push_back(c);
        }
      }
      break;
    }
    case BuilderKind::kSuffixArrays:
    case BuilderKind::kExtendedSuffixArrays: {
      for (int l : lmins) {
        BuilderConfig c{kind};
        c.l_min = l;
        grid.push_back(c);
      }
      break;
    }
  }
  return grid;
}

std::vector<int> BMaxGrid(bool full) {
  if (full) {
    std::vector<int> grid;  // the paper's [2, 100] step 1, descending
    for (int b = 100; b >= 2; --b) grid.push_back(b);
    return grid;
  }
  return {100, 50, 25, 10, 5};
}

std::vector<double> FilterRatioGrid(bool full) {
  std::vector<double> grid;
  if (full) {
    for (int i = 40; i >= 1; --i) grid.push_back(0.025 * i);
  } else {
    grid = {1.0, 0.8, 0.6, 0.4, 0.2};
  }
  return grid;
}

const char* WorkflowAbbrev(BuilderKind kind) {
  switch (kind) {
    case BuilderKind::kStandard: return "SBW";
    case BuilderKind::kQGrams: return "QBW";
    case BuilderKind::kExtendedQGrams: return "EQBW";
    case BuilderKind::kSuffixArrays: return "SABW";
    case BuilderKind::kExtendedSuffixArrays: return "ESABW";
  }
  return "?";
}

// Applies b_max to a proactively built collection (blocks are independent, so
// deriving the sub-collection is equivalent to rebuilding with that b_max).
BlockCollection ApplyBMax(const BlockCollection& blocks, int b_max) {
  BlockCollection out;
  out.reserve(blocks.size());
  for (const auto& block : blocks) {
    if (block.Assignments() < static_cast<std::size_t>(b_max)) out.push_back(block);
  }
  return out;
}

// Runs the final (winning) configuration once to measure RT and phases.
void MeasureWinner(const core::Dataset& dataset, core::SchemaMode mode,
                   const WorkflowConfig& config, TunedResult* result) {
  const auto run = blocking::RunWorkflow(dataset, mode, config);
  result->eff = core::Evaluate(run.candidates, dataset);
  result->runtime_ms = run.timing.TotalMs();
  result->phases = run.timing.phases();
  result->config = config.Describe();
}

}  // namespace

TunedResult TuneBlockingWorkflow(const core::Dataset& dataset,
                                 core::SchemaMode mode, BuilderKind kind,
                                 const GridOptions& options) {
  TunedResult result;
  result.method = WorkflowAbbrev(kind);

  const bool proactive = kind == BuilderKind::kSuffixArrays ||
                         kind == BuilderKind::kExtendedSuffixArrays;
  const std::size_t n1 = dataset.e1().size();
  const std::size_t n2 = dataset.e2().size();

  WorkflowConfig best_config;
  core::Effectiveness best_eff;  // pc = 0 initially, any config beats it
  bool have_best = false;

  // Builders are independent: the early-termination rules inside one builder
  // depend only on that builder's own recall ceilings, never on the incumbent
  // best. So each builder is evaluated on its own pool chunk, recording every
  // (effectiveness, config) outcome it considered in sweep order; the
  // incumbent-best fold below then replays them sequentially in grid order,
  // reproducing the sequential tuner's selection exactly.
  const auto builder_grid = BuilderGrid(kind, options.full_grid);
  using Outcome = std::pair<core::Effectiveness, WorkflowConfig>;
  std::vector<std::vector<Outcome>> per_builder(builder_grid.size());
  ParallelFor(0, builder_grid.size(), /*grain=*/1,
              [&](std::size_t g_begin, std::size_t g_end) {
    for (std::size_t g = g_begin; g < g_end; ++g) {
      const BuilderConfig& builder = builder_grid[g];
      auto& outcomes = per_builder[g];

      // Evaluates every cleaning configuration of one block collection.
      // Returns the collection's recall ceiling so the loops below can
      // implement the grid's early-termination rules.
      auto consider = [&](const BlockCollection& blocks,
                          const WorkflowConfig& base) {
        const CleaningSweep sweep = EvaluateAllCleaning(blocks, dataset);
        for (const auto& outcome : sweep) {
          WorkflowConfig config = base;
          config.cleaning = outcome.config;
          outcomes.emplace_back(outcome.eff, config);
        }
        return sweep[0].eff.pc;  // Comparison Propagation PC == recall ceiling
      };

      WorkflowConfig base;
      base.builder = builder;

      if (proactive) {
        // Build once with the loosest b_max, derive tighter ones by filtering.
        BuilderConfig loose = builder;
        const auto b_grid = BMaxGrid(options.full_grid);
        loose.b_max = b_grid.front() + 1;
        const BlockCollection all_blocks =
            blocking::BuildBlocks(dataset, mode, loose);
        for (int b_max : b_grid) {  // descending: recall shrinks with b_max
          base.builder.b_max = b_max;
          const BlockCollection blocks = ApplyBMax(all_blocks, b_max);
          const double ceiling = consider(blocks, base);
          if (ceiling < options.target_recall) break;
        }
        continue;
      }

      const BlockCollection built = blocking::BuildBlocks(dataset, mode, builder);
      for (bool purge : {false, true}) {
        base.block_purging = purge;
        BlockCollection purged = built;
        if (purge) {
          blocking::BlockPurging(&purged, n1, n2);
          // Purging was a no-op: this branch duplicates BP=off exactly.
          if (purged.size() == built.size()) continue;
        }
        for (double ratio : FilterRatioGrid(options.full_grid)) {  // descending
          base.filter_ratio = ratio;
          BlockCollection blocks = purged;
          if (ratio < 1.0) blocking::BlockFiltering(&blocks, ratio, n1, n2);
          const double ceiling = consider(blocks, base);
          // Early termination (paper protocol): block cleaning bounds the
          // recall of every later step; once the ceiling breaks the target,
          // smaller ratios cannot recover it.
          if (ceiling < options.target_recall) break;
        }
      }
    }
  });

  for (const auto& outcomes : per_builder) {
    for (const auto& [eff, config] : outcomes) {
      ++result.configurations_tried;
      if (!have_best || IsBetter(eff, best_eff, options.target_recall)) {
        have_best = true;
        best_eff = eff;
        best_config = config;
      }
    }
  }

  if (have_best) MeasureWinner(dataset, mode, best_config, &result);
  result.reached_target = result.eff.pc >= options.target_recall;
  return result;
}

TunedResult RunPbwBaseline(const core::Dataset& dataset, core::SchemaMode mode) {
  TunedResult result;
  result.method = "PBW";
  result.configurations_tried = 1;
  MeasureWinner(dataset, mode, blocking::ParameterFreeWorkflow(), &result);
  result.reached_target = result.eff.pc >= core::kTargetRecall;
  return result;
}

TunedResult RunDbwBaseline(const core::Dataset& dataset, core::SchemaMode mode) {
  TunedResult result;
  result.method = "DBW";
  result.configurations_tried = 1;
  MeasureWinner(dataset, mode, blocking::DefaultWorkflow(), &result);
  result.reached_target = result.eff.pc >= core::kTargetRecall;
  return result;
}

}  // namespace erb::tuning
