#include "serve/resolver.hpp"

#include <algorithm>
#include <utility>

#include "common/parallel.hpp"
#include "obs/trace.hpp"
#include "sparsenn/tokenset.hpp"

namespace erb::serve {
namespace {

// Phase names (each ScopedPhase also opens a trace span of the same name).
constexpr const char* kPhaseInsert = "serve/insert";
constexpr const char* kPhaseResolve = "serve/resolve";
constexpr const char* kPhaseSeal = "serve/seal";

}  // namespace

Resolver::Resolver(ServeConfig config)
    : config_(std::move(config)),
      sparse_(config_.sparse.measure, config_.threshold,
              sparsenn::ResolveFilterMode(config_.sparse.filter,
                                          sparsenn::ProbeShape::kThreshold)),
      blocks_(config_.blocking) {}

InsertResult Resolver::Insert(std::string external_id,
                              const core::EntityProfile& profile) {
  obs::ScopedPhase phase(&timing_, kPhaseInsert);
  const auto found = id_lookup_.find(external_id);
  if (found != id_lookup_.end()) return {found->second, false};

  // Fallible computation first, then one mutation per level, each guarded by
  // a nothrow rollback: a throw anywhere (including from the block index,
  // which previously left a half-registered entity behind the duplicate
  // check) unwinds every structure to its pre-call state.
  const std::string text = profile.AllValues();
  sparsenn::TokenSet set = sparsenn::BuildTokenSet(
      text, config_.sparse.model, config_.sparse.clean);

  const auto id = static_cast<core::EntityId>(external_ids_.size());
  external_ids_.push_back(external_id);
  try {
    id_lookup_.emplace(std::move(external_id), id);
    try {
      sparse_.Insert(std::move(set));
      try {
        if (config_.enable_blocking) blocks_.Insert(text);
      } catch (...) {
        sparse_.RollbackLastInsert();
        throw;
      }
    } catch (...) {
      id_lookup_.erase(external_ids_.back());
      throw;
    }
  } catch (...) {
    external_ids_.pop_back();
    throw;
  }
  obs::CounterAdd("serve.inserts", 1);
  return {id, true};
}

ResolveResult Resolver::ResolveWith(
    const core::EntityProfile& query,
    IncrementalSparseIndex::ProbeScratch* scratch) const {
  ResolveResult result;
  const std::string text = query.AllValues();
  const sparsenn::TokenSet set = sparsenn::BuildTokenSet(
      text, config_.sparse.model, config_.sparse.clean);
  sparse_.Probe(set, scratch, [&](core::EntityId id, double sim) {
    if (sim >= config_.threshold) result.matches.push_back({id, sim});
  });
  // Each corpus id is emitted at most once (the sealed probe emits per
  // indexed set, delta ids are disjoint from sealed ids), so sorting by id
  // fully determines the order — no tiebreak needed.
  std::sort(result.matches.begin(), result.matches.end(),
            [](const Match& a, const Match& b) { return a.id < b.id; });
  if (config_.enable_blocking) blocks_.Probe(text, &result.block_candidates);
  return result;
}

ResolveResult Resolver::Resolve(const core::EntityProfile& query) const {
  obs::ScopedPhase phase(&timing_, kPhaseResolve);
  IncrementalSparseIndex::ProbeScratch scratch;
  ResolveResult result = ResolveWith(query, &scratch);
  IncrementalSparseIndex::FlushCounters(&scratch);
  obs::CounterAdd("serve.resolves", 1);
  return result;
}

std::vector<ResolveResult> Resolver::ResolveBatch(
    const std::vector<core::EntityProfile>& queries) const {
  obs::ScopedPhase phase(&timing_, kPhaseResolve);
  std::vector<ResolveResult> results(queries.size());
  // Deterministic chunking (boundaries independent of the thread count);
  // each slot is one query's independent resolution, so the result vector
  // is identical however the chunks were scheduled.
  ParallelFor(0, queries.size(), /*grain=*/0,
              [&](std::size_t begin, std::size_t end) {
                IncrementalSparseIndex::ProbeScratch scratch;
                for (std::size_t q = begin; q < end; ++q) {
                  results[q] = ResolveWith(queries[q], &scratch);
                }
                IncrementalSparseIndex::FlushCounters(&scratch);
              });
  obs::CounterAdd("serve.resolves", queries.size());
  return results;
}

std::uint64_t Resolver::SealEpoch() {
  obs::ScopedPhase phase(&timing_, kPhaseSeal);
  if (config_.enable_blocking) blocks_.Seal();
  return sparse_.Seal();
}

}  // namespace erb::serve
