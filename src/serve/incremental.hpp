// Incremental, epoch-based wrappers over the batch indexes, for the online
// resolve path (`erbench serve`). Both indexes follow the same delta + epoch
// scheme: inserts land in an append-only delta tail, probes consult the
// sealed (immutable) structure built at the last epoch boundary plus the
// delta, and Seal() compacts everything into a fresh contiguous structure —
// no in-place mutation of a probed index, ever, which is what keeps probes
// oracle-checkable: at every epoch boundary the sealed structure is exactly
// what a from-scratch batch build over the same inputs produces, and between
// boundaries the delta scan computes the same exact overlaps the batch probe
// would, so resolve results are byte-identical to a batch rebuild + join at
// any point in the insert stream.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "blocking/builders.hpp"
#include "common/flat_dict.hpp"
#include "core/entity.hpp"
#include "sparsenn/joins.hpp"
#include "sparsenn/scancount.hpp"
#include "sparsenn/tokenset.hpp"

namespace erb::serve {

/// Incremental ε-probe index over token sets: a sealed ScanCount (or prefix)
/// index over the first SealedCount() sets plus a linearly-scanned delta
/// tail. Sound for probes at exactly the construction threshold (the sealed
/// prefix index is built truncated at it).
class IncrementalSparseIndex {
 public:
  /// `filter` must be resolved (kLength or kPrefix, never kAuto) — the
  /// caller decides policy once, the index only executes it. `threshold`
  /// must be positive: the inverted index never surfaces zero-overlap pairs,
  /// so a non-positive threshold has no sound incremental evaluation here
  /// (the batch ε-join falls back to the Cartesian product for it).
  IncrementalSparseIndex(sparsenn::SimilarityMeasure measure, double threshold,
                         sparsenn::FilterMode filter);

  /// Composite per-thread probe scratch: one sub-scratch per sealed index
  /// flavour plus the delta-scan counter, flushed by FlushCounters().
  struct ProbeScratch {
    sparsenn::ScanCountIndex::ProbeScratch length;
    sparsenn::PrefixScanCountIndex::ProbeScratch prefix;
    std::uint64_t delta_probed = 0;  ///< delta sets whose overlap was computed
  };

  /// Appends `set` to the delta tail and returns its id (insertion order).
  core::EntityId Insert(sparsenn::TokenSet set);

  /// Removes the most recent unsealed Insert()'s set from the delta tail
  /// (no-op when the delta is empty). Nothrow — the resolver's insert path
  /// uses it to unwind a partially-registered entity when a later step of
  /// the same insert throws.
  void RollbackLastInsert() noexcept {
    if (sets_.size() > sealed_count_) sets_.pop_back();
  }

  /// Compacts: rebuilds the sealed index over *all* sets as one fresh
  /// contiguous CSR structure (identical to a from-scratch batch build over
  /// the same sets, in the same order) and empties the delta. No-op when
  /// nothing was inserted since the last seal. Returns the epoch number.
  std::uint64_t Seal();

  /// Invokes `fn(id, similarity)` for every indexed set that shares at least
  /// the filter's minimum overlap with `query` and lies inside the length
  /// window of the construction threshold — a superset of the sets at or
  /// above the threshold, each with its *exact* similarity, so the caller's
  /// `similarity >= threshold` check selects exactly the batch join's
  /// matches. Sealed sets are probed through the index; delta sets get a
  /// two-pointer overlap behind the same length window. Thread-safe against
  /// concurrent Probe calls (each with its own scratch), not against
  /// Insert/Seal.
  template <typename Fn>
  void Probe(const sparsenn::TokenSet& query, ProbeScratch* scratch,
             Fn&& fn) const {
    const sparsenn::ScanCountIndex::LengthFilter filter =
        sparsenn::LengthBounds(measure_, threshold_, query.size());
    if (length_index_ != nullptr) {
      length_index_->ProbeFiltered(
          query, filter, &scratch->length,
          [&](std::uint32_t id, std::uint32_t overlap, std::uint32_t size) {
            fn(static_cast<core::EntityId>(id),
               sparsenn::SetSimilarity(measure_, overlap, query.size(), size));
          });
    } else if (prefix_index_ != nullptr) {
      const sparsenn::RankedTokenSet ranked = prefix_index_->ranks().Remap(query);
      prefix_index_->Probe(
          ranked, threshold_, &scratch->prefix,
          [&](std::uint32_t id, std::uint32_t overlap, std::uint32_t size) {
            fn(static_cast<core::EntityId>(id),
               sparsenn::SetSimilarity(measure_, overlap, query.size(), size));
          });
    }
    const std::uint32_t min_overlap = filter.min_overlap > 0 ? filter.min_overlap : 1;
    for (std::size_t i = sealed_count_; i < sets_.size(); ++i) {
      const sparsenn::TokenSet& set = sets_[i];
      if (set.size() < filter.min_size || set.size() > filter.max_size) continue;
      ++scratch->delta_probed;
      const std::uint32_t overlap = Overlap(query, set);
      if (overlap < min_overlap) continue;
      fn(static_cast<core::EntityId>(i),
         sparsenn::SetSimilarity(measure_, overlap, query.size(), set.size()));
    }
  }

  /// Publishes and resets the scratch's counters: the sealed sub-scratches'
  /// (sparse.*) plus `serve.delta_probed`.
  static void FlushCounters(ProbeScratch* scratch);

  std::size_t NumSets() const { return sets_.size(); }
  std::size_t SealedCount() const { return sealed_count_; }
  std::size_t DeltaCount() const { return sets_.size() - sealed_count_; }
  std::uint64_t epoch() const { return epoch_; }
  sparsenn::SimilarityMeasure measure() const { return measure_; }
  double threshold() const { return threshold_; }
  sparsenn::FilterMode filter() const { return filter_; }

 private:
  /// Exact overlap of two sorted token sets by two-pointer merge — the same
  /// integer the batch probes count, so the similarities agree bit-for-bit.
  static std::uint32_t Overlap(const sparsenn::TokenSet& a,
                               const sparsenn::TokenSet& b);

  sparsenn::SimilarityMeasure measure_;
  double threshold_;
  sparsenn::FilterMode filter_;

  // All sets in insertion order; [0, sealed_count_) are covered by the
  // sealed index, the rest are the delta tail.
  std::vector<sparsenn::TokenSet> sets_;
  std::size_t sealed_count_ = 0;
  std::uint64_t epoch_ = 0;

  // Exactly one is non-null once Seal() has run over a non-empty corpus,
  // per the resolved filter mode.
  std::unique_ptr<sparsenn::ScanCountIndex> length_index_;
  std::unique_ptr<sparsenn::PrefixScanCountIndex> prefix_index_;
};

/// Incremental entity-to-block index: blocking keys (blocking::ExtractKeys)
/// map to posting lists of entity ids, stored as a sealed CSR plus per-key
/// delta vectors. Probes return every entity sharing at least one key with
/// the probe text, sorted ascending and deduplicated. Key strings are exact
/// dictionary entries, so two distinct keys never alias.
class IncrementalBlockIndex {
 public:
  explicit IncrementalBlockIndex(blocking::BuilderConfig config = {});

  /// Registers the next entity (ids are assigned in insertion order) under
  /// the keys of `text`. Returns the entity id. Strongly exception-safe with
  /// respect to results: on a throw no posting is appended and the entity id
  /// is not consumed — at most some of the text's keys stay interned with
  /// empty posting lists, which Probe() and Seal() cannot observe (only
  /// NumKeys() can).
  core::EntityId Insert(std::string_view text);

  /// Compacts sealed CSR + deltas into a fresh contiguous CSR. Posting lists
  /// stay ascending because entity ids only grow. No-op when no key gained a
  /// posting since the last seal. Returns the epoch number.
  std::uint64_t Seal();

  /// Entities sharing at least one blocking key with `text`, ascending and
  /// unique. Thread-safe against concurrent Probe calls, not Insert/Seal.
  void Probe(std::string_view text, std::vector<core::EntityId>* out) const;

  std::size_t NumEntities() const { return num_entities_; }
  std::size_t NumKeys() const { return key_ids_.NumKeys(); }
  std::uint64_t epoch() const { return epoch_; }

 private:
  /// Deduplicated keys of `text` under config_.
  std::vector<std::string> Keys(std::string_view text) const;

  blocking::BuilderConfig config_;
  // Interning key dictionary: dense first-appearance ids, so a key's id
  // doubles as its delta_ index (exactly the emplace(key, delta_.size())
  // numbering the node-map version produced).
  StringDict key_ids_;

  // Sealed CSR over keys [0, offsets_.size() - 1); keys first seen after the
  // last seal have ids beyond it and live only in delta_.
  std::vector<std::uint32_t> offsets_{0};
  std::vector<core::EntityId> postings_;
  std::vector<std::vector<core::EntityId>> delta_;  // indexed by key id

  std::size_t num_entities_ = 0;
  std::uint64_t epoch_ = 0;
  bool dirty_ = false;
};

}  // namespace erb::serve
