// The online resolve API behind `erbench serve`: a growing corpus of entity
// profiles with ε-join resolution against it, built on the incremental
// epoch-based indexes of serve/incremental.hpp.
//
// Contract: Resolve() returns exactly the matches a from-scratch batch
// rebuild + sparsenn::EpsilonJoin over (corpus as E1, query as E2) would
// produce, at any point in the insert stream — the oracle differential in
// tests/serve_test.cpp enforces this byte-for-byte at several epoch shapes
// and thread counts. Insert/SealEpoch are single-writer; Resolve and
// ResolveBatch may run concurrently with each other (never with a writer).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "blocking/builders.hpp"
#include "core/entity.hpp"
#include "obs/phase.hpp"
#include "serve/incremental.hpp"
#include "sparsenn/joins.hpp"

namespace erb::serve {

/// Resolver parameters. The sparse config's kAuto filter is resolved once at
/// construction (through ERB_PREFIX_FILTER, like the batch joins); an
/// explicit kLength/kPrefix pins the mode for the resolver's lifetime.
struct ServeConfig {
  sparsenn::SparseConfig sparse;  ///< tokenization + measure + filter
  double threshold = 0.5;         ///< ε-join threshold, must be > 0
  bool enable_blocking = false;   ///< also maintain the block index
  blocking::BuilderConfig blocking;  ///< block builder when enabled
};

/// One resolved match: corpus entity and its exact similarity to the query.
struct Match {
  core::EntityId id;
  double similarity;
};

/// Outcome of one Resolve(): ε-matches ascending by corpus id, plus (when
/// blocking is enabled) the entities sharing a blocking key with the query.
struct ResolveResult {
  std::vector<Match> matches;
  std::vector<core::EntityId> block_candidates;
};

/// Outcome of one Insert(): the entity's corpus id, and whether the profile
/// was actually inserted (false = the external id already exists; the
/// original profile is kept and `id` names it).
struct InsertResult {
  core::EntityId id;
  bool inserted;
};

class Resolver {
 public:
  /// Throws std::invalid_argument for a non-positive threshold.
  explicit Resolver(ServeConfig config = {});

  /// Inserts `profile` under `external_id`. Duplicate external ids are
  /// rejected (InsertResult::inserted == false), keeping the corpus a set.
  /// Profiles are tokenized schema-agnostically (all attribute values).
  InsertResult Insert(std::string external_id,
                      const core::EntityProfile& profile);

  /// Resolves `query` against the current corpus (sealed epoch + delta).
  ResolveResult Resolve(const core::EntityProfile& query) const;

  /// Resolve() over a batch, parallelized with deterministic chunking: the
  /// result vector is byte-identical at any thread count (each slot is one
  /// query's independent resolution).
  std::vector<ResolveResult> ResolveBatch(
      const std::vector<core::EntityProfile>& queries) const;

  /// Seals both indexes: compacts delta into fresh contiguous structures.
  /// Returns the sparse index's epoch number.
  std::uint64_t SealEpoch();

  std::size_t NumEntities() const { return external_ids_.size(); }
  std::size_t DeltaCount() const { return sparse_.DeltaCount(); }
  std::uint64_t epoch() const { return sparse_.epoch(); }
  const std::string& ExternalIdOf(core::EntityId id) const {
    return external_ids_[id];
  }
  const ServeConfig& config() const { return config_; }

  /// Accumulated serve/insert, serve/resolve and serve/seal phase times (ms).
  const obs::PhaseAccumulator& timing() const { return timing_; }

 private:
  ResolveResult ResolveWith(const core::EntityProfile& query,
                            IncrementalSparseIndex::ProbeScratch* scratch) const;

  ServeConfig config_;
  IncrementalSparseIndex sparse_;
  IncrementalBlockIndex blocks_;
  std::vector<std::string> external_ids_;  // corpus id -> external id
  std::unordered_map<std::string, core::EntityId> id_lookup_;
  mutable obs::PhaseAccumulator timing_;
};

}  // namespace erb::serve
