#include "serve/incremental.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.hpp"
#include "obs/trace.hpp"

namespace erb::serve {

IncrementalSparseIndex::IncrementalSparseIndex(
    sparsenn::SimilarityMeasure measure, double threshold,
    sparsenn::FilterMode filter)
    : measure_(measure), threshold_(threshold), filter_(filter) {
  if (threshold <= 0.0) {
    throw std::invalid_argument(
        "IncrementalSparseIndex: threshold must be positive");
  }
  if (filter == sparsenn::FilterMode::kAuto) {
    throw std::invalid_argument(
        "IncrementalSparseIndex: filter must be resolved (kLength or kPrefix)");
  }
}

core::EntityId IncrementalSparseIndex::Insert(sparsenn::TokenSet set) {
  const auto id = static_cast<core::EntityId>(sets_.size());
  sets_.push_back(std::move(set));
  return id;
}

std::uint64_t IncrementalSparseIndex::Seal() {
  if (sealed_count_ == sets_.size()) return epoch_;  // nothing new
  // Fresh contiguous build over all sets — never an in-place splice, so the
  // sealed structure is bit-for-bit what a batch build over the same sets
  // produces and the old index stays valid until the swap.
  if (filter_ == sparsenn::FilterMode::kPrefix) {
    prefix_index_ = std::make_unique<sparsenn::PrefixScanCountIndex>(
        sets_, measure_, threshold_);
    length_index_.reset();
  } else {
    length_index_ = std::make_unique<sparsenn::ScanCountIndex>(sets_);
    prefix_index_.reset();
  }
  sealed_count_ = sets_.size();
  ++epoch_;
  obs::CounterAdd("serve.epoch_merges", 1);
  return epoch_;
}

void IncrementalSparseIndex::FlushCounters(ProbeScratch* scratch) {
  sparsenn::ScanCountIndex::FlushCounters(&scratch->length);
  sparsenn::PrefixScanCountIndex::FlushCounters(&scratch->prefix);
  if (scratch->delta_probed > 0) {
    obs::CounterAdd("serve.delta_probed", scratch->delta_probed);
    scratch->delta_probed = 0;
  }
}

std::uint32_t IncrementalSparseIndex::Overlap(const sparsenn::TokenSet& a,
                                              const sparsenn::TokenSet& b) {
  std::uint32_t overlap = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++overlap;
      ++ia;
      ++ib;
    }
  }
  return overlap;
}

IncrementalBlockIndex::IncrementalBlockIndex(blocking::BuilderConfig config)
    : config_(config) {}

std::vector<std::string> IncrementalBlockIndex::Keys(
    std::string_view text) const {
  // ExtractKeys returns the keys sorted and deduplicated already, so each
  // distinct key indexes an entity exactly once.
  return blocking::ExtractKeys(text, config_);
}

core::EntityId IncrementalBlockIndex::Insert(std::string_view text) {
  const auto id = static_cast<core::EntityId>(num_entities_);
  // Phase 1 (fallible): extract the keys, intern each under its dense id,
  // grow delta_ and pre-reserve a posting slot per touched list. Nothing an
  // observer can see changes if any step throws.
  const std::vector<std::string> keys = Keys(text);
  std::vector<std::uint32_t> key_ids;
  key_ids.reserve(keys.size());
  for (const std::string& key : keys) {
    // Capacity ahead of the intern: once a key id exists, its delta_ slot
    // must exist too (the emplace_back below cannot be allowed to throw).
    if (delta_.size() == delta_.capacity()) {
      delta_.reserve(std::max<std::size_t>(16, delta_.capacity() * 2));
    }
    const std::uint32_t next = static_cast<std::uint32_t>(delta_.size());
    const std::uint32_t kid = key_ids_.FindOrAssign(key);
    if (kid == next) delta_.emplace_back();
    auto& list = delta_[kid];
    if (list.size() == list.capacity()) {
      list.reserve(std::max<std::size_t>(4, list.capacity() * 2));
    }
    key_ids.push_back(kid);
  }
  // Phase 2 (nothrow): publish. Keys are deduplicated, so each touched list
  // gets exactly the one append its reserve above guaranteed room for.
  for (std::uint32_t kid : key_ids) delta_[kid].push_back(id);
  if (!key_ids.empty()) dirty_ = true;
  ++num_entities_;
  return id;
}

std::uint64_t IncrementalBlockIndex::Seal() {
  if (!dirty_) return epoch_;
  const std::size_t num_keys = delta_.size();
  std::vector<std::uint32_t> offsets(num_keys + 1, 0);
  for (std::size_t k = 0; k < num_keys; ++k) {
    const std::size_t sealed =
        k + 1 < offsets_.size() ? offsets_[k + 1] - offsets_[k] : 0;
    offsets[k + 1] =
        offsets[k] + static_cast<std::uint32_t>(sealed + delta_[k].size());
  }
  // Per-key compaction writes into disjoint segments of the new postings
  // array, so the merge parallelizes with no effect on the result bytes.
  std::vector<core::EntityId> postings(offsets.back());
  ParallelFor(0, num_keys, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      core::EntityId* out = postings.data() + offsets[k];
      if (k + 1 < offsets_.size()) {
        out = std::copy(postings_.begin() + offsets_[k],
                        postings_.begin() + offsets_[k + 1], out);
      }
      std::copy(delta_[k].begin(), delta_[k].end(), out);
      delta_[k].clear();
    }
  });
  offsets_ = std::move(offsets);
  postings_ = std::move(postings);
  dirty_ = false;
  ++epoch_;
  return epoch_;
}

void IncrementalBlockIndex::Probe(std::string_view text,
                                  std::vector<core::EntityId>* out) const {
  out->clear();
  for (const std::string& key : Keys(text)) {
    const std::uint32_t k = key_ids_.Find(key);
    if (k == StringDict::kAbsent) continue;
    if (k + 1 < offsets_.size()) {
      out->insert(out->end(), postings_.begin() + offsets_[k],
                  postings_.begin() + offsets_[k + 1]);
    }
    out->insert(out->end(), delta_[k].begin(), delta_[k].end());
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

}  // namespace erb::serve
