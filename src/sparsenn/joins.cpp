#include "sparsenn/joins.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/env.hpp"
#include "common/parallel.hpp"
#include "obs/trace.hpp"
#include "sparsenn/scancount.hpp"

namespace erb::sparsenn {
namespace {

using core::EntityId;

// Probes the index with every query set in parallel and folds the scored
// matches into one accumulator per chunk: `probe(index, query, scratch,
// matches)` fills the (indexed_id, similarity) matches of one query,
// `collect(query_id, matches, acc)` consumes them, and `merge` folds the
// chunk accumulators in ascending chunk order (so the result is
// deterministic at any thread count). Each chunk owns its probe scratch;
// any pruning counters the probe accumulated are flushed once per chunk.
// Works against either index flavour: `Index` only has to provide
// ProbeScratch and a static FlushCounters, and `QuerySet` has to match what
// the probe functor expects (TokenSet, or RankedTokenSet for the prefix
// index).
template <typename Acc, typename Index, typename QuerySet, typename ProbeFn,
          typename Collect, typename Merge>
Acc ParallelProbe(const Index& index, const std::vector<QuerySet>& query_sets,
                  ProbeFn&& probe, Collect&& collect, Merge&& merge) {
  return ParallelMapReduce<Acc>(
      0, query_sets.size(), /*grain=*/0,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        Acc acc;
        typename Index::ProbeScratch scratch;
        std::vector<std::pair<EntityId, double>> matches;
        for (std::size_t q = chunk_begin; q < chunk_end; ++q) {
          matches.clear();
          probe(index, query_sets[q], &scratch, &matches);
          collect(static_cast<EntityId>(q), matches, acc);
        }
        Index::FlushCounters(&scratch);
        return acc;
      },
      merge);
}

void MergeCandidates(core::CandidateSet& into, core::CandidateSet&& from) {
  into.Merge(std::move(from));
}

// The unfiltered probe: every indexed set sharing at least one token.
struct ProbeAll {
  SimilarityMeasure measure;

  void operator()(const ScanCountIndex& index, const TokenSet& query,
                  ScanCountIndex::ProbeScratch* scratch,
                  std::vector<std::pair<EntityId, double>>* matches) const {
    index.Probe(query, scratch,
                [&](std::uint32_t id, std::uint32_t overlap,
                    std::uint32_t indexed_size) {
                  matches->emplace_back(
                      id, SetSimilarity(measure, overlap, query.size(),
                                        indexed_size));
                });
  }
};

// The length-filtered probe for a fixed similarity threshold: skips posting
// lists and candidate sets that cannot reach it (see LengthBounds).
struct ProbeWithLengthFilter {
  SimilarityMeasure measure;
  double threshold;

  void operator()(const ScanCountIndex& index, const TokenSet& query,
                  ScanCountIndex::ProbeScratch* scratch,
                  std::vector<std::pair<EntityId, double>>* matches) const {
    const ScanCountIndex::LengthFilter filter =
        LengthBounds(measure, threshold, query.size());
    index.ProbeFiltered(query, filter, scratch,
                        [&](std::uint32_t id, std::uint32_t overlap,
                            std::uint32_t indexed_size) {
                          matches->emplace_back(
                              id, SetSimilarity(measure, overlap, query.size(),
                                                indexed_size));
                        });
  }
};

// The prefix-filtered probe for a fixed similarity threshold: prefix,
// positional and length filters over the global-frequency order, bitmap
// suffix verification for survivors (see PrefixScanCountIndex).
struct ProbePrefixEpsilon {
  SimilarityMeasure measure;
  double threshold;

  void operator()(const PrefixScanCountIndex& index,
                  const RankedTokenSet& query,
                  PrefixScanCountIndex::ProbeScratch* scratch,
                  std::vector<std::pair<EntityId, double>>* matches) const {
    index.Probe(query, threshold, scratch,
                [&](std::uint32_t id, std::uint32_t overlap,
                    std::uint32_t indexed_size) {
                  matches->emplace_back(
                      id, SetSimilarity(measure, overlap, query.size(),
                                        indexed_size));
                });
  }
};

// Tracker for the running k-th *distinct* similarity of one query: `values`
// holds at most k distinct similarities, descending. tau() is the threshold
// the k-th of them sets — 0 until k distinct values exist, after which any
// pair below it can no longer enter the kNN result.
struct DistinctTopK {
  std::vector<double> values;
  std::size_t k = 0;

  explicit DistinctTopK(std::size_t k_) : k(k_) { values.reserve(k_); }

  double tau() const { return values.size() == k ? values.back() : 0.0; }

  void Offer(double sim) {
    auto it = std::lower_bound(values.begin(), values.end(), sim,
                               std::greater<double>());
    if (it != values.end() && *it == sim) return;
    if (values.size() < k) {
      values.insert(it, sim);
    } else if (it != values.end()) {
      values.insert(it, sim);
      values.pop_back();
    }
  }
};

// The decreasing-threshold kNN probe: the running k-th distinct similarity
// bounds the admissible prefix, length window and positional filter, all of
// which tighten as matches accumulate. Emits every pair whose similarity was
// at or above the bound when it was verified — a superset of the final kNN
// selection that provably contains every pair the unfiltered probe's
// selection would keep, so the shared collector yields identical candidates.
struct ProbePrefixKnn {
  SimilarityMeasure measure;
  std::size_t k;

  void operator()(const PrefixScanCountIndex& index,
                  const RankedTokenSet& query,
                  PrefixScanCountIndex::ProbeScratch* scratch,
                  std::vector<std::pair<EntityId, double>>* matches) const {
    DistinctTopK top(k);
    index.ProbeDecreasing(
        query, [&] { return top.tau(); }, scratch,
        [&](std::uint32_t id, std::uint32_t overlap,
            std::uint32_t indexed_size) {
          const double sim = SetSimilarity(measure, overlap, query.size(),
                                           indexed_size);
          if (sim < top.tau()) return;
          top.Offer(sim);
          matches->emplace_back(id, sim);
        });
  }
};

// The hybrid probe: pairs matter if they beat the join threshold *or* could
// sit among the query's k nearest, so the admissible bound is the smaller of
// the two — min(threshold, running k-th distinct similarity).
struct ProbePrefixHybrid {
  SimilarityMeasure measure;
  double threshold;
  std::size_t k;

  void operator()(const PrefixScanCountIndex& index,
                  const RankedTokenSet& query,
                  PrefixScanCountIndex::ProbeScratch* scratch,
                  std::vector<std::pair<EntityId, double>>* matches) const {
    DistinctTopK top(k);
    const double cap = std::max(threshold, 0.0);
    const auto tau = [&] { return std::min(cap, top.tau()); };
    index.ProbeDecreasing(
        query, tau, scratch,
        [&](std::uint32_t id, std::uint32_t overlap,
            std::uint32_t indexed_size) {
          const double sim = SetSimilarity(measure, overlap, query.size(),
                                           indexed_size);
          if (sim < tau()) return;
          top.Offer(sim);
          matches->emplace_back(id, sim);
        });
  }
};

// Builds both sides' token sets, indexes one and probes with the other,
// handing each query's scored matches to `collect(query_id, matches, acc)`.
template <typename ProbeFn, typename Collect>
SparseResult RunJoin(const core::Dataset& dataset, core::SchemaMode mode,
                     const SparseConfig& config, bool reverse, ProbeFn&& probe,
                     Collect&& collect) {
  SparseResult result;

  const int indexed_side = reverse ? 1 : 0;
  const int query_side = reverse ? 0 : 1;
  auto indexed_sets = result.timing.Measure(kPhasePreprocess, [&] {
    return BuildSideTokenSets(dataset, indexed_side, mode, config.model,
                              config.clean);
  });
  std::vector<TokenSet> query_sets;
  result.timing.Measure(kPhasePreprocess, [&] {
    query_sets = BuildSideTokenSets(dataset, query_side, mode, config.model,
                                    config.clean);
  });

  auto index = result.timing.Measure(
      kPhaseIndex, [&] { return ScanCountIndex(indexed_sets); });
  obs::GaugeSet("sparse.index_sets", indexed_sets.size());

  result.timing.Measure(kPhaseQuery, [&] {
    result.candidates = ParallelProbe<core::CandidateSet>(
        index, query_sets, probe, collect, MergeCandidates);
    // Finalize (sort + dedup) is part of emitting candidates, so it belongs
    // inside the timed query phase — RT must cover it.
    result.candidates.Finalize();
  });
  obs::CounterAdd("sparse.candidates", result.candidates.size());
  return result;
}

// RunJoin's prefix-index twin: additionally remaps the query sets into the
// index's global-frequency rank space (an index-phase cost, like building
// the postings) before the parallel probe.
template <typename ProbeFn, typename Collect>
SparseResult RunPrefixJoin(const core::Dataset& dataset, core::SchemaMode mode,
                           const SparseConfig& config, bool reverse,
                           double index_threshold, ProbeFn&& probe,
                           Collect&& collect) {
  SparseResult result;

  const int indexed_side = reverse ? 1 : 0;
  const int query_side = reverse ? 0 : 1;
  auto indexed_sets = result.timing.Measure(kPhasePreprocess, [&] {
    return BuildSideTokenSets(dataset, indexed_side, mode, config.model,
                              config.clean);
  });
  std::vector<TokenSet> query_sets;
  result.timing.Measure(kPhasePreprocess, [&] {
    query_sets = BuildSideTokenSets(dataset, query_side, mode, config.model,
                                    config.clean);
  });

  auto index = result.timing.Measure(kPhaseIndex, [&] {
    return PrefixScanCountIndex(indexed_sets, config.measure, index_threshold);
  });
  obs::GaugeSet("sparse.index_sets", indexed_sets.size());
  std::vector<RankedTokenSet> ranked_queries;
  result.timing.Measure(kPhaseIndex, [&] {
    ranked_queries.reserve(query_sets.size());
    for (const auto& set : query_sets) {
      ranked_queries.push_back(index.ranks().Remap(set));
    }
  });

  result.timing.Measure(kPhaseQuery, [&] {
    result.candidates = ParallelProbe<core::CandidateSet>(
        index, ranked_queries, probe, collect, MergeCandidates);
    result.candidates.Finalize();
  });
  obs::CounterAdd("sparse.candidates", result.candidates.size());
  return result;
}

// Adds the pair in canonical (E1, E2) order given the join direction.
void EmitPair(core::CandidateSet* candidates, bool reverse, EntityId query,
              EntityId indexed) {
  if (reverse) {
    candidates->Add(query, indexed);
  } else {
    candidates->Add(indexed, query);
  }
}

// Bounded min-heap insert keeping the k largest similarities.
void OfferTopK(std::vector<double>* heap, std::size_t k, double sim) {
  if (heap->size() < k) {
    heap->push_back(sim);
    std::push_heap(heap->begin(), heap->end(), std::greater<>());
  } else if (!heap->empty() && sim > heap->front()) {
    std::pop_heap(heap->begin(), heap->end(), std::greater<>());
    heap->back() = sim;
    std::push_heap(heap->begin(), heap->end(), std::greater<>());
  }
}

}  // namespace

FilterMode ResolveFilterMode(FilterMode requested, ProbeShape shape) {
  // An explicit SparseConfig::filter wins outright; the environment is a
  // default-only fallback consulted on every kAuto resolution. No
  // once-per-process latch: a long-running serve process (or a test) can
  // flip ERB_PREFIX_FILTER between joins and the next resolution honours
  // it. The read happens on the thread that starts the join, before its
  // parallel region fans out, so there is no concurrent-getenv hazard on
  // the probe path itself.
  if (requested != FilterMode::kAuto) return requested;
  const bool prefix_enabled =
      ParseOnOff("ERB_PREFIX_FILTER", std::getenv("ERB_PREFIX_FILTER"), true);
  if (!prefix_enabled) return FilterMode::kLength;
  // Fixed-threshold probes run against build-time-truncated prefixes and
  // win from the first posting; decreasing-threshold probes spend their
  // opening at τ = 0 verifying every overlapping candidate, where the
  // unfiltered merge-count is measurably faster (micro_kernels kNN cell).
  return shape == ProbeShape::kThreshold ? FilterMode::kPrefix
                                         : FilterMode::kLength;
}

SparseResult EpsilonJoin(const core::Dataset& dataset, core::SchemaMode mode,
                         const SparseConfig& config, double threshold) {
  if (threshold <= 0.0) {
    // Similarities are non-negative, so a non-positive threshold admits every
    // pair of E1 x E2 — including pairs with no shared token, which the
    // inverted index never surfaces. Chunks over E1 merge in ascending order,
    // so the emitted sequence matches the sequential double loop.
    SparseResult result;
    const std::size_t n2 = dataset.e2().size();
    result.timing.Measure(kPhaseQuery, [&] {
      result.candidates = ParallelMapReduce<core::CandidateSet>(
          0, dataset.e1().size(), /*grain=*/0,
          [&](std::size_t begin, std::size_t end) {
            core::CandidateSet chunk;
            chunk.Reserve((end - begin) * n2);
            for (std::size_t i = begin; i < end; ++i) {
              for (EntityId j = 0; j < n2; ++j) {
                chunk.Add(static_cast<EntityId>(i), j);
              }
            }
            return chunk;
          },
          MergeCandidates);
      result.candidates.Finalize();
    });
    obs::CounterAdd("sparse.candidates", result.candidates.size());
    return result;
  }
  const auto collect = [threshold](
                           EntityId q,
                           const std::vector<std::pair<EntityId, double>>& matches,
                           core::CandidateSet& candidates) {
    for (const auto& [id, sim] : matches) {
      if (sim >= threshold) candidates.Add(id, q);
    }
  };
  if (ResolveFilterMode(config.filter) == FilterMode::kPrefix) {
    return RunPrefixJoin(dataset, mode, config, /*reverse=*/false,
                         /*index_threshold=*/threshold,
                         ProbePrefixEpsilon{config.measure, threshold}, collect);
  }
  return RunJoin(dataset, mode, config, /*reverse=*/false,
                 ProbeWithLengthFilter{config.measure, threshold}, collect);
}

SparseResult KnnJoin(const core::Dataset& dataset, core::SchemaMode mode,
                     const SparseConfig& config, int k, bool reverse) {
  const auto collect = [k, reverse](
                           EntityId q,
                           std::vector<std::pair<EntityId, double>>& matches,
                           core::CandidateSet& candidates) {
    // Retain the entities carrying the k highest distinct similarity
    // values; equidistant entities beyond position k are all kept. Ties
    // sort by ascending entity id so the pre-Finalize emission order is
    // pinned, not left to the sort implementation.
    std::sort(matches.begin(), matches.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    int distinct_values = 0;
    double previous = -1.0;
    for (const auto& [id, sim] : matches) {
      if (sim != previous) {
        if (++distinct_values > k) break;
        previous = sim;
      }
      EmitPair(&candidates, reverse, q, id);
    }
  };
  if (k > 0 && ResolveFilterMode(config.filter, ProbeShape::kDecreasing) == FilterMode::kPrefix) {
    // The probe's match list is a provable superset of the final selection
    // (every pair kept had similarity >= the bound at its verification), so
    // the same collector emits identical candidates.
    return RunPrefixJoin(dataset, mode, config, reverse,
                         /*index_threshold=*/0.0,
                         ProbePrefixKnn{config.measure,
                                        static_cast<std::size_t>(k)},
                         collect);
  }
  return RunJoin(dataset, mode, config, reverse, ProbeAll{config.measure},
                 collect);
}

SparseResult HybridJoin(const core::Dataset& dataset, core::SchemaMode mode,
                        const SparseConfig& config, double threshold, int k) {
  SparseResult result;
  // Per-chunk accumulator: candidates plus the number of queries that fell
  // back to kNN, folded in chunk order like the candidates themselves.
  struct HybridAcc {
    core::CandidateSet candidates;
    std::uint64_t fallbacks = 0;
  };
  const auto merge = [](HybridAcc& into, HybridAcc&& from) {
    into.candidates.Merge(std::move(from.candidates));
    into.fallbacks += from.fallbacks;
  };
  const std::size_t min_matches = k > 0 ? static_cast<std::size_t>(k) : 0;
  const auto collect = [threshold, k, min_matches](
                           EntityId q,
                           std::vector<std::pair<EntityId, double>>& matches,
                           HybridAcc& acc) {
    std::sort(matches.begin(), matches.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    std::size_t above = 0;
    while (above < matches.size() && matches[above].second >= threshold) {
      ++above;
    }
    if (above >= min_matches) {
      // Threshold pass: the query found enough close entities.
      for (std::size_t i = 0; i < above; ++i) {
        acc.candidates.Add(matches[i].first, q);
      }
      return;
    }
    // Under-filled: fall back to the k nearest distinct similarity values
    // (ties retained) — a superset of the threshold matches.
    ++acc.fallbacks;
    int distinct_values = 0;
    double previous = -1.0;
    for (const auto& [id, sim] : matches) {
      if (sim != previous) {
        if (++distinct_values > k) break;
        previous = sim;
      }
      acc.candidates.Add(id, q);
    }
  };

  auto indexed_sets = result.timing.Measure(kPhasePreprocess, [&] {
    return BuildSideTokenSets(dataset, 0, mode, config.model, config.clean);
  });
  std::vector<TokenSet> query_sets;
  result.timing.Measure(kPhasePreprocess, [&] {
    query_sets = BuildSideTokenSets(dataset, 1, mode, config.model, config.clean);
  });

  HybridAcc acc;
  if (k > 0 && ResolveFilterMode(config.filter, ProbeShape::kDecreasing) == FilterMode::kPrefix) {
    auto index = result.timing.Measure(kPhaseIndex, [&] {
      // Build threshold 0: the hybrid bound min(threshold, running k-th)
      // starts at 0, so the index must hold full positional prefixes.
      return PrefixScanCountIndex(indexed_sets, config.measure, 0.0);
    });
    obs::GaugeSet("sparse.index_sets", indexed_sets.size());
    std::vector<RankedTokenSet> ranked_queries;
    result.timing.Measure(kPhaseIndex, [&] {
      ranked_queries.reserve(query_sets.size());
      for (const auto& set : query_sets) {
        ranked_queries.push_back(index.ranks().Remap(set));
      }
    });
    result.timing.Measure(kPhaseQuery, [&] {
      acc = ParallelProbe<HybridAcc>(
          index, ranked_queries,
          ProbePrefixHybrid{config.measure, threshold,
                            static_cast<std::size_t>(k)},
          collect, merge);
      acc.candidates.Finalize();
    });
  } else {
    auto index = result.timing.Measure(
        kPhaseIndex, [&] { return ScanCountIndex(indexed_sets); });
    obs::GaugeSet("sparse.index_sets", indexed_sets.size());
    result.timing.Measure(kPhaseQuery, [&] {
      acc = ParallelProbe<HybridAcc>(index, query_sets,
                                     ProbeAll{config.measure}, collect, merge);
      acc.candidates.Finalize();
    });
  }
  result.candidates = std::move(acc.candidates);
  if (acc.fallbacks > 0) {
    obs::CounterAdd("sparse.hybrid_fallbacks", acc.fallbacks);
  }
  obs::CounterAdd("sparse.candidates", result.candidates.size());
  return result;
}

SparseResult GlobalTopKJoin(const core::Dataset& dataset, core::SchemaMode mode,
                            const SparseConfig& config, std::size_t global_k) {
  // Pass 1 finds the K-th best similarity with bounded min-heaps (one per
  // chunk, merged in chunk order); pass 2 emits every pair at or above it
  // (ties included, like the kNN-Join's distinct-value semantics). Both
  // passes probe the same index over the same token sets, so preprocessing
  // and indexing are paid — and reported — exactly once.
  SparseResult result;
  if (global_k == 0) {
    // K = 0 selects nothing. Without this guard the empty pass-1 heap would
    // fall through to the exact-match threshold below and emit every pair
    // with similarity 1.
    result.candidates.Finalize();
    return result;
  }

  auto indexed_sets = result.timing.Measure(kPhasePreprocess, [&] {
    return BuildSideTokenSets(dataset, 0, mode, config.model, config.clean);
  });
  std::vector<TokenSet> query_sets;
  result.timing.Measure(kPhasePreprocess, [&] {
    query_sets = BuildSideTokenSets(dataset, 1, mode, config.model, config.clean);
  });

  const auto heap_merge = [global_k](std::vector<double>& into,
                                     std::vector<double>&& from) {
    for (double sim : from) OfferTopK(&into, global_k, sim);
  };
  const auto emit_at = [](double threshold) {
    return [threshold](EntityId q,
                       const std::vector<std::pair<EntityId, double>>& matches,
                       core::CandidateSet& candidates) {
      for (const auto& [id, sim] : matches) {
        if (sim >= threshold) candidates.Add(id, q);
      }
    };
  };

  if (ResolveFilterMode(config.filter, ProbeShape::kDecreasing) == FilterMode::kPrefix) {
    auto index = result.timing.Measure(kPhaseIndex, [&] {
      // Build threshold 0: pass 1 starts with an empty heap (bound 0) and
      // pass 2's threshold is unknown until the heaps merge.
      return PrefixScanCountIndex(indexed_sets, config.measure, 0.0);
    });
    obs::GaugeSet("sparse.index_sets", indexed_sets.size());
    std::vector<RankedTokenSet> ranked_queries;
    result.timing.Measure(kPhaseIndex, [&] {
      ranked_queries.reserve(query_sets.size());
      for (const auto& set : query_sets) {
        ranked_queries.push_back(index.ranks().Remap(set));
      }
    });

    // Pass 1 under the decreasing-threshold trick with the *chunk's* heap:
    // a pair dropped because it fell below the chunk's running K-th value
    // could never displace that heap's contents, and the merged K-th value
    // is at least every chunk's, so the final threshold is unaffected — at
    // any thread count, since each chunk's heap is exactly the top-K
    // multiset of its own similarities.
    const std::vector<double> heap = result.timing.Measure(kPhaseQuery, [&] {
      return ParallelMapReduce<std::vector<double>>(
          0, ranked_queries.size(), /*grain=*/0,
          [&](std::size_t chunk_begin, std::size_t chunk_end) {
            std::vector<double> chunk_heap;
            PrefixScanCountIndex::ProbeScratch scratch;
            for (std::size_t q = chunk_begin; q < chunk_end; ++q) {
              const auto& query = ranked_queries[q];
              index.ProbeDecreasing(
                  query,
                  [&] {
                    return chunk_heap.size() == global_k ? chunk_heap.front()
                                                         : 0.0;
                  },
                  &scratch,
                  [&](std::uint32_t id, std::uint32_t overlap,
                      std::uint32_t indexed_size) {
                    (void)id;
                    OfferTopK(&chunk_heap, global_k,
                              SetSimilarity(config.measure, overlap,
                                            query.size(), indexed_size));
                  });
            }
            PrefixScanCountIndex::FlushCounters(&scratch);
            return chunk_heap;
          },
          heap_merge);
    });
    const double threshold = heap.empty() ? 1.0 : heap.front();

    result.timing.Measure(kPhaseQuery, [&] {
      result.candidates = ParallelProbe<core::CandidateSet>(
          index, ranked_queries, ProbePrefixEpsilon{config.measure, threshold},
          emit_at(threshold), MergeCandidates);
      result.candidates.Finalize();
    });
    obs::CounterAdd("sparse.candidates", result.candidates.size());
    return result;
  }

  auto index = result.timing.Measure(
      kPhaseIndex, [&] { return ScanCountIndex(indexed_sets); });
  obs::GaugeSet("sparse.index_sets", indexed_sets.size());

  const ProbeAll probe{config.measure};
  const std::vector<double> heap = result.timing.Measure(kPhaseQuery, [&] {
    return ParallelProbe<std::vector<double>>(
        index, query_sets, probe,
        [global_k](EntityId,
                   const std::vector<std::pair<EntityId, double>>& matches,
                   std::vector<double>& heap) {
          for (const auto& match : matches) OfferTopK(&heap, global_k, match.second);
        },
        heap_merge);
  });
  const double threshold = heap.empty() ? 1.0 : heap.front();

  result.timing.Measure(kPhaseQuery, [&] {
    result.candidates = ParallelProbe<core::CandidateSet>(
        index, query_sets, probe, emit_at(threshold), MergeCandidates);
    result.candidates.Finalize();
  });
  obs::CounterAdd("sparse.candidates", result.candidates.size());
  return result;
}

SparseResult DefaultKnnJoin(const core::Dataset& dataset, core::SchemaMode mode) {
  SparseConfig config;
  config.clean = true;
  config.model = TokenModel::kC5GM;
  config.measure = SimilarityMeasure::kCosine;
  // Query with the smaller side so |C| = K * min(|E1|, |E2|).
  const bool reverse = dataset.e1().size() < dataset.e2().size();
  return KnnJoin(dataset, mode, config, /*k=*/5, reverse);
}

}  // namespace erb::sparsenn
