#include "sparsenn/joins.hpp"

#include <algorithm>

#include "sparsenn/scancount.hpp"

namespace erb::sparsenn {
namespace {

using core::EntityId;

// Builds both sides' token sets, indexes one and probes with the other,
// handing each query's scored matches to `collect(query_id, matches)` where
// matches are (indexed_id, similarity) pairs with overlap >= 1.
template <typename Collect>
SparseResult RunJoin(const core::Dataset& dataset, core::SchemaMode mode,
                     const SparseConfig& config, bool reverse, Collect&& collect) {
  SparseResult result;

  const int indexed_side = reverse ? 1 : 0;
  const int query_side = reverse ? 0 : 1;
  auto indexed_sets = result.timing.Measure(kPhasePreprocess, [&] {
    return BuildSideTokenSets(dataset, indexed_side, mode, config.model,
                              config.clean);
  });
  std::vector<TokenSet> query_sets;
  result.timing.Measure(kPhasePreprocess, [&] {
    query_sets = BuildSideTokenSets(dataset, query_side, mode, config.model,
                                    config.clean);
  });

  auto index = result.timing.Measure(
      kPhaseIndex, [&] { return ScanCountIndex(indexed_sets); });

  result.timing.Measure(kPhaseQuery, [&] {
    std::vector<std::pair<EntityId, double>> matches;
    for (EntityId q = 0; q < query_sets.size(); ++q) {
      matches.clear();
      const TokenSet& query = query_sets[q];
      index.Probe(query, [&](std::uint32_t id, std::uint32_t overlap,
                             std::uint32_t indexed_size) {
        matches.emplace_back(
            id, SetSimilarity(config.measure, overlap, query.size(), indexed_size));
      });
      collect(q, matches, result.candidates);
    }
  });
  result.candidates.Finalize();
  return result;
}

// Adds the pair in canonical (E1, E2) order given the join direction.
void EmitPair(core::CandidateSet* candidates, bool reverse, EntityId query,
              EntityId indexed) {
  if (reverse) {
    candidates->Add(query, indexed);
  } else {
    candidates->Add(indexed, query);
  }
}

}  // namespace

SparseResult EpsilonJoin(const core::Dataset& dataset, core::SchemaMode mode,
                         const SparseConfig& config, double threshold) {
  return RunJoin(dataset, mode, config, /*reverse=*/false,
                 [threshold](EntityId q,
                             const std::vector<std::pair<EntityId, double>>& matches,
                             core::CandidateSet& candidates) {
                   for (const auto& [id, sim] : matches) {
                     if (sim >= threshold) candidates.Add(id, q);
                   }
                 });
}

SparseResult KnnJoin(const core::Dataset& dataset, core::SchemaMode mode,
                     const SparseConfig& config, int k, bool reverse) {
  return RunJoin(
      dataset, mode, config, reverse,
      [k, reverse](EntityId q, std::vector<std::pair<EntityId, double>>& matches,
                   core::CandidateSet& candidates) {
        // Retain the entities carrying the k highest distinct similarity
        // values; equidistant entities beyond position k are all kept.
        std::sort(matches.begin(), matches.end(),
                  [](const auto& a, const auto& b) { return a.second > b.second; });
        int distinct_values = 0;
        double previous = -1.0;
        for (const auto& [id, sim] : matches) {
          if (sim != previous) {
            if (++distinct_values > k) break;
            previous = sim;
          }
          EmitPair(&candidates, reverse, q, id);
        }
      });
}

SparseResult GlobalTopKJoin(const core::Dataset& dataset, core::SchemaMode mode,
                            const SparseConfig& config, std::size_t global_k) {
  // Pass 1 finds the K-th best similarity with a bounded min-heap; pass 2
  // emits every pair at or above it (ties included, like the kNN-Join's
  // distinct-value semantics).
  std::vector<double> heap;  // min-heap of the best K similarities
  SparseResult probe = RunJoin(
      dataset, mode, config, /*reverse=*/false,
      [&heap, global_k](EntityId, const std::vector<std::pair<EntityId, double>>& matches,
                        core::CandidateSet&) {
        for (const auto& [id, sim] : matches) {
          if (heap.size() < global_k) {
            heap.push_back(sim);
            std::push_heap(heap.begin(), heap.end(), std::greater<>());
          } else if (!heap.empty() && sim > heap.front()) {
            std::pop_heap(heap.begin(), heap.end(), std::greater<>());
            heap.back() = sim;
            std::push_heap(heap.begin(), heap.end(), std::greater<>());
          }
        }
      });
  const double threshold = heap.empty() ? 1.0 : heap.front();
  SparseResult result = EpsilonJoin(dataset, mode, config, threshold);
  // Account the extra scoring pass in the reported timing.
  result.timing.Add(kPhaseQuery, probe.timing.Get(kPhaseQuery));
  return result;
}

SparseResult DefaultKnnJoin(const core::Dataset& dataset, core::SchemaMode mode) {
  SparseConfig config;
  config.clean = true;
  config.model = TokenModel::kC5GM;
  config.measure = SimilarityMeasure::kCosine;
  // Query with the smaller side so |C| = K * min(|E1|, |E2|).
  const bool reverse = dataset.e1().size() < dataset.e2().size();
  return KnnJoin(dataset, mode, config, /*k=*/5, reverse);
}

}  // namespace erb::sparsenn
