#include "sparsenn/joins.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/parallel.hpp"
#include "obs/trace.hpp"
#include "sparsenn/scancount.hpp"

namespace erb::sparsenn {
namespace {

using core::EntityId;

// Probes the index with every query set in parallel and folds the scored
// matches into one accumulator per chunk: `probe(index, query, scratch,
// matches)` fills the (indexed_id, similarity) matches of one query,
// `collect(query_id, matches, acc)` consumes them, and `merge` folds the
// chunk accumulators in ascending chunk order (so the result is
// deterministic at any thread count). Each chunk owns its probe scratch;
// any pruning counters the probe accumulated are flushed once per chunk.
template <typename Acc, typename ProbeFn, typename Collect, typename Merge>
Acc ParallelProbe(const ScanCountIndex& index,
                  const std::vector<TokenSet>& query_sets, ProbeFn&& probe,
                  Collect&& collect, Merge&& merge) {
  return ParallelMapReduce<Acc>(
      0, query_sets.size(), /*grain=*/0,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        Acc acc;
        ScanCountIndex::ProbeScratch scratch;
        std::vector<std::pair<EntityId, double>> matches;
        for (std::size_t q = chunk_begin; q < chunk_end; ++q) {
          matches.clear();
          probe(index, query_sets[q], &scratch, &matches);
          collect(static_cast<EntityId>(q), matches, acc);
        }
        ScanCountIndex::FlushCounters(&scratch);
        return acc;
      },
      merge);
}

void MergeCandidates(core::CandidateSet& into, core::CandidateSet&& from) {
  into.Merge(std::move(from));
}

// The unfiltered probe: every indexed set sharing at least one token.
struct ProbeAll {
  SimilarityMeasure measure;

  void operator()(const ScanCountIndex& index, const TokenSet& query,
                  ScanCountIndex::ProbeScratch* scratch,
                  std::vector<std::pair<EntityId, double>>* matches) const {
    index.Probe(query, scratch,
                [&](std::uint32_t id, std::uint32_t overlap,
                    std::uint32_t indexed_size) {
                  matches->emplace_back(
                      id, SetSimilarity(measure, overlap, query.size(),
                                        indexed_size));
                });
  }
};

// The length-filtered probe for a fixed similarity threshold: skips posting
// lists and candidate sets that cannot reach it (see LengthBounds).
struct ProbeWithLengthFilter {
  SimilarityMeasure measure;
  double threshold;

  void operator()(const ScanCountIndex& index, const TokenSet& query,
                  ScanCountIndex::ProbeScratch* scratch,
                  std::vector<std::pair<EntityId, double>>* matches) const {
    const ScanCountIndex::LengthFilter filter =
        LengthBounds(measure, threshold, query.size());
    index.ProbeFiltered(query, filter, scratch,
                        [&](std::uint32_t id, std::uint32_t overlap,
                            std::uint32_t indexed_size) {
                          matches->emplace_back(
                              id, SetSimilarity(measure, overlap, query.size(),
                                                indexed_size));
                        });
  }
};

// Builds both sides' token sets, indexes one and probes with the other,
// handing each query's scored matches to `collect(query_id, matches, acc)`.
template <typename ProbeFn, typename Collect>
SparseResult RunJoin(const core::Dataset& dataset, core::SchemaMode mode,
                     const SparseConfig& config, bool reverse, ProbeFn&& probe,
                     Collect&& collect) {
  SparseResult result;

  const int indexed_side = reverse ? 1 : 0;
  const int query_side = reverse ? 0 : 1;
  auto indexed_sets = result.timing.Measure(kPhasePreprocess, [&] {
    return BuildSideTokenSets(dataset, indexed_side, mode, config.model,
                              config.clean);
  });
  std::vector<TokenSet> query_sets;
  result.timing.Measure(kPhasePreprocess, [&] {
    query_sets = BuildSideTokenSets(dataset, query_side, mode, config.model,
                                    config.clean);
  });

  auto index = result.timing.Measure(
      kPhaseIndex, [&] { return ScanCountIndex(indexed_sets); });
  obs::GaugeSet("sparse.index_sets", indexed_sets.size());

  result.timing.Measure(kPhaseQuery, [&] {
    result.candidates = ParallelProbe<core::CandidateSet>(
        index, query_sets, probe, collect, MergeCandidates);
    // Finalize (sort + dedup) is part of emitting candidates, so it belongs
    // inside the timed query phase — RT must cover it.
    result.candidates.Finalize();
  });
  obs::CounterAdd("sparse.candidates", result.candidates.size());
  return result;
}

// Adds the pair in canonical (E1, E2) order given the join direction.
void EmitPair(core::CandidateSet* candidates, bool reverse, EntityId query,
              EntityId indexed) {
  if (reverse) {
    candidates->Add(query, indexed);
  } else {
    candidates->Add(indexed, query);
  }
}

// Bounded min-heap insert keeping the k largest similarities.
void OfferTopK(std::vector<double>* heap, std::size_t k, double sim) {
  if (heap->size() < k) {
    heap->push_back(sim);
    std::push_heap(heap->begin(), heap->end(), std::greater<>());
  } else if (!heap->empty() && sim > heap->front()) {
    std::pop_heap(heap->begin(), heap->end(), std::greater<>());
    heap->back() = sim;
    std::push_heap(heap->begin(), heap->end(), std::greater<>());
  }
}

}  // namespace

ScanCountIndex::LengthFilter LengthBounds(SimilarityMeasure measure,
                                          double threshold,
                                          std::size_t query_size) {
  ScanCountIndex::LengthFilter filter;
  const double q = static_cast<double>(query_size);
  const double t = threshold;
  double min_size = 0.0, max_size = q, min_overlap = 1.0;
  switch (measure) {
    case SimilarityMeasure::kCosine:
      min_size = t * t * q;
      max_size = q / (t * t);
      min_overlap = t * t * q;
      break;
    case SimilarityMeasure::kDice:
      min_size = t * q / (2.0 - t);
      max_size = q * (2.0 - t) / t;
      min_overlap = t * q / (2.0 - t);
      break;
    case SimilarityMeasure::kJaccard:
      min_size = t * q;
      max_size = q / t;
      min_overlap = t * q;
      break;
  }
  // Widen each bound by one integer unit: rounding slack costs a little
  // pruning at the boundary but can never drop a qualifying pair.
  filter.min_size = static_cast<std::uint32_t>(
      std::max(1.0, std::floor(min_size) - 1.0));
  filter.max_size = static_cast<std::uint32_t>(
      std::min(4294967295.0, std::ceil(max_size) + 1.0));
  filter.min_overlap = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(min_overlap) - 1.0));
  return filter;
}

SparseResult EpsilonJoin(const core::Dataset& dataset, core::SchemaMode mode,
                         const SparseConfig& config, double threshold) {
  if (threshold <= 0.0) {
    // Similarities are non-negative, so a non-positive threshold admits every
    // pair of E1 x E2 — including pairs with no shared token, which the
    // inverted index never surfaces. Chunks over E1 merge in ascending order,
    // so the emitted sequence matches the sequential double loop.
    SparseResult result;
    const std::size_t n2 = dataset.e2().size();
    result.timing.Measure(kPhaseQuery, [&] {
      result.candidates = ParallelMapReduce<core::CandidateSet>(
          0, dataset.e1().size(), /*grain=*/0,
          [&](std::size_t begin, std::size_t end) {
            core::CandidateSet chunk;
            chunk.Reserve((end - begin) * n2);
            for (std::size_t i = begin; i < end; ++i) {
              for (EntityId j = 0; j < n2; ++j) {
                chunk.Add(static_cast<EntityId>(i), j);
              }
            }
            return chunk;
          },
          MergeCandidates);
      result.candidates.Finalize();
    });
    obs::CounterAdd("sparse.candidates", result.candidates.size());
    return result;
  }
  return RunJoin(dataset, mode, config, /*reverse=*/false,
                 ProbeWithLengthFilter{config.measure, threshold},
                 [threshold](EntityId q,
                             const std::vector<std::pair<EntityId, double>>& matches,
                             core::CandidateSet& candidates) {
                   for (const auto& [id, sim] : matches) {
                     if (sim >= threshold) candidates.Add(id, q);
                   }
                 });
}

SparseResult KnnJoin(const core::Dataset& dataset, core::SchemaMode mode,
                     const SparseConfig& config, int k, bool reverse) {
  return RunJoin(
      dataset, mode, config, reverse, ProbeAll{config.measure},
      [k, reverse](EntityId q, std::vector<std::pair<EntityId, double>>& matches,
                   core::CandidateSet& candidates) {
        // Retain the entities carrying the k highest distinct similarity
        // values; equidistant entities beyond position k are all kept. Ties
        // sort by ascending entity id so the pre-Finalize emission order is
        // pinned, not left to the sort implementation.
        std::sort(matches.begin(), matches.end(),
                  [](const auto& a, const auto& b) {
                    return a.second != b.second ? a.second > b.second
                                                : a.first < b.first;
                  });
        int distinct_values = 0;
        double previous = -1.0;
        for (const auto& [id, sim] : matches) {
          if (sim != previous) {
            if (++distinct_values > k) break;
            previous = sim;
          }
          EmitPair(&candidates, reverse, q, id);
        }
      });
}

SparseResult GlobalTopKJoin(const core::Dataset& dataset, core::SchemaMode mode,
                            const SparseConfig& config, std::size_t global_k) {
  // Pass 1 finds the K-th best similarity with bounded min-heaps (one per
  // chunk, merged in chunk order); pass 2 emits every pair at or above it
  // (ties included, like the kNN-Join's distinct-value semantics). Both
  // passes probe the same index over the same token sets, so preprocessing
  // and indexing are paid — and reported — exactly once.
  SparseResult result;
  if (global_k == 0) {
    // K = 0 selects nothing. Without this guard the empty pass-1 heap would
    // fall through to the exact-match threshold below and emit every pair
    // with similarity 1.
    result.candidates.Finalize();
    return result;
  }

  auto indexed_sets = result.timing.Measure(kPhasePreprocess, [&] {
    return BuildSideTokenSets(dataset, 0, mode, config.model, config.clean);
  });
  std::vector<TokenSet> query_sets;
  result.timing.Measure(kPhasePreprocess, [&] {
    query_sets = BuildSideTokenSets(dataset, 1, mode, config.model, config.clean);
  });
  auto index = result.timing.Measure(
      kPhaseIndex, [&] { return ScanCountIndex(indexed_sets); });
  obs::GaugeSet("sparse.index_sets", indexed_sets.size());

  const ProbeAll probe{config.measure};
  const std::vector<double> heap = result.timing.Measure(kPhaseQuery, [&] {
    return ParallelProbe<std::vector<double>>(
        index, query_sets, probe,
        [global_k](EntityId,
                   const std::vector<std::pair<EntityId, double>>& matches,
                   std::vector<double>& heap) {
          for (const auto& match : matches) OfferTopK(&heap, global_k, match.second);
        },
        [global_k](std::vector<double>& into, std::vector<double>&& from) {
          for (double sim : from) OfferTopK(&into, global_k, sim);
        });
  });
  const double threshold = heap.empty() ? 1.0 : heap.front();

  result.timing.Measure(kPhaseQuery, [&] {
    result.candidates = ParallelProbe<core::CandidateSet>(
        index, query_sets, probe,
        [threshold](EntityId q,
                    const std::vector<std::pair<EntityId, double>>& matches,
                    core::CandidateSet& candidates) {
          for (const auto& [id, sim] : matches) {
            if (sim >= threshold) candidates.Add(id, q);
          }
        },
        MergeCandidates);
    result.candidates.Finalize();
  });
  obs::CounterAdd("sparse.candidates", result.candidates.size());
  return result;
}

SparseResult DefaultKnnJoin(const core::Dataset& dataset, core::SchemaMode mode) {
  SparseConfig config;
  config.clean = true;
  config.model = TokenModel::kC5GM;
  config.measure = SimilarityMeasure::kCosine;
  // Query with the smaller side so |C| = K * min(|E1|, |E2|).
  const bool reverse = dataset.e1().size() < dataset.e2().size();
  return KnnJoin(dataset, mode, config, /*k=*/5, reverse);
}

}  // namespace erb::sparsenn
