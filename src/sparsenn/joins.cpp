#include "sparsenn/joins.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/env.hpp"
#include "common/parallel.hpp"
#include "obs/trace.hpp"
#include "sparsenn/probes.hpp"
#include "sparsenn/scancount.hpp"

namespace erb::sparsenn {
namespace {

using core::EntityId;

void MergeCandidates(core::CandidateSet& into, core::CandidateSet&& from) {
  into.Merge(std::move(from));
}

// Builds both sides' token sets, indexes one and probes with the other,
// handing each query's scored matches to `collect(query_id, matches, acc)`.
template <typename ProbeFn, typename Collect>
SparseResult RunJoin(const core::Dataset& dataset, core::SchemaMode mode,
                     const SparseConfig& config, bool reverse, ProbeFn&& probe,
                     Collect&& collect) {
  SparseResult result;

  const int indexed_side = reverse ? 1 : 0;
  const int query_side = reverse ? 0 : 1;
  auto indexed_sets = result.timing.Measure(kPhasePreprocess, [&] {
    return BuildSideTokenSets(dataset, indexed_side, mode, config.model,
                              config.clean);
  });
  std::vector<TokenSet> query_sets;
  result.timing.Measure(kPhasePreprocess, [&] {
    query_sets = BuildSideTokenSets(dataset, query_side, mode, config.model,
                                    config.clean);
  });

  auto index = result.timing.Measure(
      kPhaseIndex, [&] { return ScanCountIndex(indexed_sets); });
  obs::GaugeSet("sparse.index_sets", indexed_sets.size());

  result.timing.Measure(kPhaseQuery, [&] {
    result.candidates = ParallelProbe<core::CandidateSet>(
        index, query_sets, probe, collect, MergeCandidates);
    // Finalize (sort + dedup) is part of emitting candidates, so it belongs
    // inside the timed query phase — RT must cover it.
    result.candidates.Finalize();
  });
  obs::CounterAdd("sparse.candidates", result.candidates.size());
  return result;
}

// RunJoin's prefix-index twin: additionally remaps the query sets into the
// index's global-frequency rank space (an index-phase cost, like building
// the postings) before the parallel probe.
template <typename ProbeFn, typename Collect>
SparseResult RunPrefixJoin(const core::Dataset& dataset, core::SchemaMode mode,
                           const SparseConfig& config, bool reverse,
                           double index_threshold, ProbeFn&& probe,
                           Collect&& collect) {
  SparseResult result;

  const int indexed_side = reverse ? 1 : 0;
  const int query_side = reverse ? 0 : 1;
  auto indexed_sets = result.timing.Measure(kPhasePreprocess, [&] {
    return BuildSideTokenSets(dataset, indexed_side, mode, config.model,
                              config.clean);
  });
  std::vector<TokenSet> query_sets;
  result.timing.Measure(kPhasePreprocess, [&] {
    query_sets = BuildSideTokenSets(dataset, query_side, mode, config.model,
                                    config.clean);
  });

  auto index = result.timing.Measure(kPhaseIndex, [&] {
    return PrefixScanCountIndex(indexed_sets, config.measure, index_threshold);
  });
  obs::GaugeSet("sparse.index_sets", indexed_sets.size());
  std::vector<RankedTokenSet> ranked_queries;
  result.timing.Measure(kPhaseIndex, [&] {
    ranked_queries.reserve(query_sets.size());
    for (const auto& set : query_sets) {
      ranked_queries.push_back(index.ranks().Remap(set));
    }
  });

  result.timing.Measure(kPhaseQuery, [&] {
    result.candidates = ParallelProbe<core::CandidateSet>(
        index, ranked_queries, probe, collect, MergeCandidates);
    result.candidates.Finalize();
  });
  obs::CounterAdd("sparse.candidates", result.candidates.size());
  return result;
}

}  // namespace

FilterMode ResolveFilterMode(FilterMode requested, ProbeShape shape) {
  // An explicit SparseConfig::filter wins outright; the environment is a
  // default-only fallback consulted on every kAuto resolution. No
  // once-per-process latch: a long-running serve process (or a test) can
  // flip ERB_PREFIX_FILTER between joins and the next resolution honours
  // it. The read happens on the thread that starts the join, before its
  // parallel region fans out, so there is no concurrent-getenv hazard on
  // the probe path itself.
  if (requested != FilterMode::kAuto) return requested;
  const bool prefix_enabled =
      ParseOnOff("ERB_PREFIX_FILTER", std::getenv("ERB_PREFIX_FILTER"), true);
  if (!prefix_enabled) return FilterMode::kLength;
  // Fixed-threshold probes run against build-time-truncated prefixes and
  // win from the first posting; decreasing-threshold probes spend their
  // opening at τ = 0 verifying every overlapping candidate, where the
  // unfiltered merge-count is measurably faster (micro_kernels kNN cell).
  return shape == ProbeShape::kThreshold ? FilterMode::kPrefix
                                         : FilterMode::kLength;
}

SparseResult EpsilonJoin(const core::Dataset& dataset, core::SchemaMode mode,
                         const SparseConfig& config, double threshold) {
  if (threshold <= 0.0) {
    // Similarities are non-negative, so a non-positive threshold admits every
    // pair of E1 x E2 — including pairs with no shared token, which the
    // inverted index never surfaces. Chunks over E1 merge in ascending order,
    // so the emitted sequence matches the sequential double loop.
    SparseResult result;
    const std::size_t n2 = dataset.e2().size();
    result.timing.Measure(kPhaseQuery, [&] {
      result.candidates = ParallelMapReduce<core::CandidateSet>(
          0, dataset.e1().size(), /*grain=*/0,
          [&](std::size_t begin, std::size_t end) {
            core::CandidateSet chunk;
            chunk.Reserve((end - begin) * n2);
            for (std::size_t i = begin; i < end; ++i) {
              for (EntityId j = 0; j < n2; ++j) {
                chunk.Add(static_cast<EntityId>(i), j);
              }
            }
            return chunk;
          },
          MergeCandidates);
      result.candidates.Finalize();
    });
    obs::CounterAdd("sparse.candidates", result.candidates.size());
    return result;
  }
  const auto collect = [threshold](EntityId q,
                                   const std::vector<ScoredMatch>& matches,
                                   core::CandidateSet& candidates) {
    for (const auto& [id, sim] : matches) {
      if (sim >= threshold) candidates.Add(id, q);
    }
  };
  if (ResolveFilterMode(config.filter) == FilterMode::kPrefix) {
    return RunPrefixJoin(dataset, mode, config, /*reverse=*/false,
                         /*index_threshold=*/threshold,
                         ProbePrefixEpsilon{config.measure, threshold}, collect);
  }
  return RunJoin(dataset, mode, config, /*reverse=*/false,
                 ProbeWithLengthFilter{config.measure, threshold}, collect);
}

SparseResult KnnJoin(const core::Dataset& dataset, core::SchemaMode mode,
                     const SparseConfig& config, int k, bool reverse) {
  const auto collect = [k, reverse](EntityId q,
                                    std::vector<ScoredMatch>& matches,
                                    core::CandidateSet& candidates) {
    // Retain the entities carrying the k highest distinct similarity
    // values; equidistant entities beyond position k are all kept (see
    // SelectKnnMatches in probes.hpp for the tie ordering contract).
    SelectKnnMatches(&matches, k, [&](EntityId id, double) {
      EmitPair(&candidates, reverse, q, id);
    });
  };
  if (k > 0 && ResolveFilterMode(config.filter, ProbeShape::kDecreasing) == FilterMode::kPrefix) {
    // The probe's match list is a provable superset of the final selection
    // (every pair kept had similarity >= the bound at its verification), so
    // the same collector emits identical candidates.
    return RunPrefixJoin(dataset, mode, config, reverse,
                         /*index_threshold=*/0.0,
                         ProbePrefixKnn{config.measure,
                                        static_cast<std::size_t>(k)},
                         collect);
  }
  return RunJoin(dataset, mode, config, reverse, ProbeAll{config.measure},
                 collect);
}

SparseResult HybridJoin(const core::Dataset& dataset, core::SchemaMode mode,
                        const SparseConfig& config, double threshold, int k) {
  SparseResult result;
  // Per-chunk accumulator: candidates plus the number of queries that fell
  // back to kNN, folded in chunk order like the candidates themselves.
  struct HybridAcc {
    core::CandidateSet candidates;
    std::uint64_t fallbacks = 0;
  };
  const auto merge = [](HybridAcc& into, HybridAcc&& from) {
    into.candidates.Merge(std::move(from.candidates));
    into.fallbacks += from.fallbacks;
  };
  const std::size_t min_matches = k > 0 ? static_cast<std::size_t>(k) : 0;
  const auto collect = [threshold, k, min_matches](
                           EntityId q, std::vector<ScoredMatch>& matches,
                           HybridAcc& acc) {
    SortMatchesDesc(&matches);
    std::size_t above = 0;
    while (above < matches.size() && matches[above].second >= threshold) {
      ++above;
    }
    if (above >= min_matches) {
      // Threshold pass: the query found enough close entities.
      for (std::size_t i = 0; i < above; ++i) {
        acc.candidates.Add(matches[i].first, q);
      }
      return;
    }
    // Under-filled: fall back to the k nearest distinct similarity values
    // (ties retained) — a superset of the threshold matches.
    ++acc.fallbacks;
    EmitTopKDistinct(matches, k, [&](EntityId id, double) {
      acc.candidates.Add(id, q);
    });
  };

  auto indexed_sets = result.timing.Measure(kPhasePreprocess, [&] {
    return BuildSideTokenSets(dataset, 0, mode, config.model, config.clean);
  });
  std::vector<TokenSet> query_sets;
  result.timing.Measure(kPhasePreprocess, [&] {
    query_sets = BuildSideTokenSets(dataset, 1, mode, config.model, config.clean);
  });

  HybridAcc acc;
  if (k > 0 && ResolveFilterMode(config.filter, ProbeShape::kDecreasing) == FilterMode::kPrefix) {
    auto index = result.timing.Measure(kPhaseIndex, [&] {
      // Build threshold 0: the hybrid bound min(threshold, running k-th)
      // starts at 0, so the index must hold full positional prefixes.
      return PrefixScanCountIndex(indexed_sets, config.measure, 0.0);
    });
    obs::GaugeSet("sparse.index_sets", indexed_sets.size());
    std::vector<RankedTokenSet> ranked_queries;
    result.timing.Measure(kPhaseIndex, [&] {
      ranked_queries.reserve(query_sets.size());
      for (const auto& set : query_sets) {
        ranked_queries.push_back(index.ranks().Remap(set));
      }
    });
    result.timing.Measure(kPhaseQuery, [&] {
      acc = ParallelProbe<HybridAcc>(
          index, ranked_queries,
          ProbePrefixHybrid{config.measure, threshold,
                            static_cast<std::size_t>(k)},
          collect, merge);
      acc.candidates.Finalize();
    });
  } else {
    auto index = result.timing.Measure(
        kPhaseIndex, [&] { return ScanCountIndex(indexed_sets); });
    obs::GaugeSet("sparse.index_sets", indexed_sets.size());
    result.timing.Measure(kPhaseQuery, [&] {
      acc = ParallelProbe<HybridAcc>(index, query_sets,
                                     ProbeAll{config.measure}, collect, merge);
      acc.candidates.Finalize();
    });
  }
  result.candidates = std::move(acc.candidates);
  if (acc.fallbacks > 0) {
    obs::CounterAdd("sparse.hybrid_fallbacks", acc.fallbacks);
  }
  obs::CounterAdd("sparse.candidates", result.candidates.size());
  return result;
}

SparseResult GlobalTopKJoin(const core::Dataset& dataset, core::SchemaMode mode,
                            const SparseConfig& config, std::size_t global_k) {
  // Pass 1 finds the K-th best similarity with bounded min-heaps (one per
  // chunk, merged in chunk order); pass 2 emits every pair at or above it
  // (ties included, like the kNN-Join's distinct-value semantics). Both
  // passes probe the same index over the same token sets, so preprocessing
  // and indexing are paid — and reported — exactly once.
  SparseResult result;
  if (global_k == 0) {
    // K = 0 selects nothing. Without this guard the empty pass-1 heap would
    // fall through to the exact-match threshold below and emit every pair
    // with similarity 1.
    result.candidates.Finalize();
    return result;
  }

  auto indexed_sets = result.timing.Measure(kPhasePreprocess, [&] {
    return BuildSideTokenSets(dataset, 0, mode, config.model, config.clean);
  });
  std::vector<TokenSet> query_sets;
  result.timing.Measure(kPhasePreprocess, [&] {
    query_sets = BuildSideTokenSets(dataset, 1, mode, config.model, config.clean);
  });

  const auto heap_merge = [global_k](std::vector<double>& into,
                                     std::vector<double>&& from) {
    for (double sim : from) OfferTopK(&into, global_k, sim);
  };
  const auto emit_at = [](double threshold) {
    return [threshold](EntityId q, const std::vector<ScoredMatch>& matches,
                       core::CandidateSet& candidates) {
      for (const auto& [id, sim] : matches) {
        if (sim >= threshold) candidates.Add(id, q);
      }
    };
  };

  if (ResolveFilterMode(config.filter, ProbeShape::kDecreasing) == FilterMode::kPrefix) {
    auto index = result.timing.Measure(kPhaseIndex, [&] {
      // Build threshold 0: pass 1 starts with an empty heap (bound 0) and
      // pass 2's threshold is unknown until the heaps merge.
      return PrefixScanCountIndex(indexed_sets, config.measure, 0.0);
    });
    obs::GaugeSet("sparse.index_sets", indexed_sets.size());
    std::vector<RankedTokenSet> ranked_queries;
    result.timing.Measure(kPhaseIndex, [&] {
      ranked_queries.reserve(query_sets.size());
      for (const auto& set : query_sets) {
        ranked_queries.push_back(index.ranks().Remap(set));
      }
    });

    // Pass 1 under the decreasing-threshold trick with the *chunk's* heap:
    // a pair dropped because it fell below the chunk's running K-th value
    // could never displace that heap's contents, and the merged K-th value
    // is at least every chunk's, so the final threshold is unaffected — at
    // any thread count, since each chunk's heap is exactly the top-K
    // multiset of its own similarities.
    const std::vector<double> heap = result.timing.Measure(kPhaseQuery, [&] {
      return ParallelMapReduce<std::vector<double>>(
          0, ranked_queries.size(), /*grain=*/0,
          [&](std::size_t chunk_begin, std::size_t chunk_end) {
            std::vector<double> chunk_heap;
            PrefixScanCountIndex::ProbeScratch scratch;
            for (std::size_t q = chunk_begin; q < chunk_end; ++q) {
              const auto& query = ranked_queries[q];
              index.ProbeDecreasing(
                  query,
                  [&] {
                    return chunk_heap.size() == global_k ? chunk_heap.front()
                                                         : 0.0;
                  },
                  &scratch,
                  [&](std::uint32_t id, std::uint32_t overlap,
                      std::uint32_t indexed_size) {
                    (void)id;
                    OfferTopK(&chunk_heap, global_k,
                              SetSimilarity(config.measure, overlap,
                                            query.size(), indexed_size));
                  });
            }
            PrefixScanCountIndex::FlushCounters(&scratch);
            return chunk_heap;
          },
          heap_merge);
    });
    const double threshold = heap.empty() ? 1.0 : heap.front();

    result.timing.Measure(kPhaseQuery, [&] {
      result.candidates = ParallelProbe<core::CandidateSet>(
          index, ranked_queries, ProbePrefixEpsilon{config.measure, threshold},
          emit_at(threshold), MergeCandidates);
      result.candidates.Finalize();
    });
    obs::CounterAdd("sparse.candidates", result.candidates.size());
    return result;
  }

  auto index = result.timing.Measure(
      kPhaseIndex, [&] { return ScanCountIndex(indexed_sets); });
  obs::GaugeSet("sparse.index_sets", indexed_sets.size());

  const ProbeAll probe{config.measure};
  const std::vector<double> heap = result.timing.Measure(kPhaseQuery, [&] {
    return ParallelProbe<std::vector<double>>(
        index, query_sets, probe,
        [global_k](EntityId, const std::vector<ScoredMatch>& matches,
                   std::vector<double>& heap) {
          for (const auto& match : matches) OfferTopK(&heap, global_k, match.second);
        },
        heap_merge);
  });
  const double threshold = heap.empty() ? 1.0 : heap.front();

  result.timing.Measure(kPhaseQuery, [&] {
    result.candidates = ParallelProbe<core::CandidateSet>(
        index, query_sets, probe, emit_at(threshold), MergeCandidates);
    result.candidates.Finalize();
  });
  obs::CounterAdd("sparse.candidates", result.candidates.size());
  return result;
}

SparseResult DefaultKnnJoin(const core::Dataset& dataset, core::SchemaMode mode) {
  SparseConfig config;
  config.clean = true;
  config.model = TokenModel::kC5GM;
  config.measure = SimilarityMeasure::kCosine;
  // Query with the smaller side so |C| = K * min(|E1|, |E2|).
  const bool reverse = dataset.e1().size() < dataset.e2().size();
  return KnnJoin(dataset, mode, config, /*k=*/5, reverse);
}

}  // namespace erb::sparsenn
