// The two sparse NN matching principles (Section IV-C): range join (ε-Join)
// and k-nearest-neighbour join (kNN-Join), both driven by ScanCount.
#pragma once

#include "common/timer.hpp"
#include "core/candidates.hpp"
#include "core/entity.hpp"
#include "sparsenn/scancount.hpp"
#include "sparsenn/tokenset.hpp"

namespace erb::sparsenn {

/// Parameters shared by both joins (Table IV, common block).
struct SparseConfig {
  bool clean = false;                    ///< CL: stop-words + stemming
  TokenModel model = TokenModel::kT1G;   ///< RM
  SimilarityMeasure measure = SimilarityMeasure::kCosine;  ///< SM
};

/// Result of a sparse join: candidates plus the preprocess/index/query
/// timing breakdown of the Appendix C analysis.
struct SparseResult {
  core::CandidateSet candidates;
  PhaseTimer timing;
};

/// Phase names used in SparseResult::timing.
inline constexpr const char* kPhasePreprocess = "preprocess";
inline constexpr const char* kPhaseIndex = "index";
inline constexpr const char* kPhaseQuery = "query";

/// The length-filter window for a query of size `query_size` under an ε-Join
/// at `threshold`: indexed sets outside [min_size, max_size], or sharing
/// fewer than min_overlap tokens, cannot reach the threshold. Derivations
/// (o = overlap, q = query size, s = indexed size, max o = min(q, s)):
///   Cosine  o/sqrt(qs)  >= t  =>  s in [t^2 q, q/t^2],       o >= t^2 q
///   Dice    2o/(q+s)    >= t  =>  s in [tq/(2-t), q(2-t)/t], o >= tq/(2-t)
///   Jaccard o/(q+s-o)   >= t  =>  s in [tq, q/t],            o >= tq
/// Each bound is widened by one integer unit against floating-point rounding;
/// the exact similarity predicate still decides every surviving pair, so the
/// filter only has to be sound, never tight.
ScanCountIndex::LengthFilter LengthBounds(SimilarityMeasure measure,
                                          double threshold,
                                          std::size_t query_size);

/// ε-Join: indexes E1 and pairs every query entity of E2 with all indexed
/// entities of similarity >= `threshold`. Probes are length-filtered through
/// LengthBounds(); the kNN and global top-K joins below keep unfiltered
/// probes (their per-query thresholds are not known up front).
SparseResult EpsilonJoin(const core::Dataset& dataset, core::SchemaMode mode,
                         const SparseConfig& config, double threshold);

/// kNN-Join: pairs each query entity with the indexed entities holding the k
/// highest *distinct* similarity values (ties beyond k are all retained, per
/// the paper's definition). `reverse` (RVS) indexes E2 and queries with E1.
SparseResult KnnJoin(const core::Dataset& dataset, core::SchemaMode mode,
                     const SparseConfig& config, int k, bool reverse);

/// The Default kNN-Join baseline (DkNN): cosine similarity, cleaning on,
/// C5GM, K=5, smaller side as query set.
SparseResult DefaultKnnJoin(const core::Dataset& dataset, core::SchemaMode mode);

/// Global top-K set-similarity join (Section IV-C's related matching
/// principle): the K highest-similarity pairs across the whole E1 x E2,
/// equivalent to an ε-Join whose threshold is the K-th best similarity. Ties
/// with the K-th similarity are all retained.
SparseResult GlobalTopKJoin(const core::Dataset& dataset, core::SchemaMode mode,
                            const SparseConfig& config, std::size_t global_k);

}  // namespace erb::sparsenn
