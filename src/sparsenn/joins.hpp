// The two sparse NN matching principles (Section IV-C): range join (ε-Join)
// and k-nearest-neighbour join (kNN-Join), both driven by ScanCount.
#pragma once

#include "common/timer.hpp"
#include "core/candidates.hpp"
#include "core/entity.hpp"
#include "sparsenn/scancount.hpp"
#include "sparsenn/tokenset.hpp"

namespace erb::sparsenn {

/// Probe filtering strategy for the sparse joins. kLength is the PR 4
/// behaviour (ScanCount merge-count behind the length window); kPrefix adds
/// the PPJoin-family prefix + positional filters over a global-frequency
/// token order, with bitmap suffix verification. Both emit byte-identical
/// candidates — the filters are sound, the exact similarity still decides.
/// kAuto resolves through the ERB_PREFIX_FILTER environment knob and the
/// probe shape (see ResolveFilterMode).
enum class FilterMode { kAuto, kLength, kPrefix };

/// What a probe knows about its threshold, which decides where the prefix
/// stack pays off. kThreshold probes (ε-Join, the hybrid's ε side) know the
/// final threshold up front, so the index prefixes are truncated at build
/// time and the filters bite from the first posting. kDecreasing probes
/// (kNN, global top-K, the hybrid fallback) start at τ = 0 — every
/// overlapping candidate is verified before the running k-th value lifts
/// the bound — and micro_kernels shows the length-only merge-count winning
/// that regime on every benchmarked corpus.
enum class ProbeShape { kThreshold, kDecreasing };

/// Resolves kAuto: ERB_PREFIX_FILTER off (0/off/false/no, case-insensitive —
/// see ParseOnOff in common/env.hpp; unrecognized values warn on stderr and
/// keep the default) selects kLength everywhere; otherwise — including unset
/// — kThreshold probes get kPrefix and kDecreasing probes keep kLength (the
/// measured-faster default per shape). Explicit kLength/kPrefix requests on
/// SparseConfig::filter pass through untouched for either shape and never
/// consult the environment. The variable is re-read on every kAuto
/// resolution (no once-per-process latch), so a long-running process can
/// flip modes between joins; the read happens before the join's parallel
/// region starts.
FilterMode ResolveFilterMode(FilterMode requested,
                             ProbeShape shape = ProbeShape::kThreshold);

/// Parameters shared by the sparse joins (Table IV, common block).
struct SparseConfig {
  bool clean = false;                    ///< CL: stop-words + stemming
  TokenModel model = TokenModel::kT1G;   ///< RM
  SimilarityMeasure measure = SimilarityMeasure::kCosine;  ///< SM
  FilterMode filter = FilterMode::kAuto;  ///< probe filtering strategy
};

/// Result of a sparse join: candidates plus the preprocess/index/query
/// timing breakdown of the Appendix C analysis.
struct SparseResult {
  core::CandidateSet candidates;
  PhaseTimer timing;
};

/// Phase names used in SparseResult::timing.
inline constexpr const char* kPhasePreprocess = "preprocess";
inline constexpr const char* kPhaseIndex = "index";
inline constexpr const char* kPhaseQuery = "query";

/// ε-Join: indexes E1 and pairs every query entity of E2 with all indexed
/// entities of similarity >= `threshold`. Probes are filtered per the
/// config's FilterMode: through LengthBounds() (see scancount.hpp), or the
/// full prefix/positional stack of PrefixScanCountIndex.
SparseResult EpsilonJoin(const core::Dataset& dataset, core::SchemaMode mode,
                         const SparseConfig& config, double threshold);

/// kNN-Join: pairs each query entity with the indexed entities holding the k
/// highest *distinct* similarity values (ties beyond k are all retained, per
/// the paper's definition). `reverse` (RVS) indexes E2 and queries with E1.
/// Under kPrefix the probe tightens as the running k-th similarity rises
/// (the decreasing-threshold trick); under kLength it stays unfiltered, as
/// the per-query threshold is not known up front.
SparseResult KnnJoin(const core::Dataset& dataset, core::SchemaMode mode,
                     const SparseConfig& config, int k, bool reverse);

/// HB-join (ShallowBlocker's hybrid): per query entity, emit every indexed
/// entity with similarity >= `threshold` if at least `k` such entities
/// exist; otherwise fall back to the kNN-Join's top-k-distinct-values set,
/// which is a superset of the threshold matches. Candidates are drawn from
/// the overlap graph (similarity > 0), so a non-positive threshold behaves
/// as the smallest positive one rather than going Cartesian. Indexes E1,
/// queries with E2.
SparseResult HybridJoin(const core::Dataset& dataset, core::SchemaMode mode,
                        const SparseConfig& config, double threshold, int k);

/// The Default kNN-Join baseline (DkNN): cosine similarity, cleaning on,
/// C5GM, K=5, smaller side as query set.
SparseResult DefaultKnnJoin(const core::Dataset& dataset, core::SchemaMode mode);

/// Global top-K set-similarity join (Section IV-C's related matching
/// principle): the K highest-similarity pairs across the whole E1 x E2,
/// equivalent to an ε-Join whose threshold is the K-th best similarity. Ties
/// with the K-th similarity are all retained.
SparseResult GlobalTopKJoin(const core::Dataset& dataset, core::SchemaMode mode,
                            const SparseConfig& config, std::size_t global_k);

}  // namespace erb::sparsenn
