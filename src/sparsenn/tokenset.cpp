#include "sparsenn/tokenset.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/hash.hpp"
#include "text/clean.hpp"

namespace erb::sparsenn {

std::string_view ModelName(TokenModel model) {
  switch (model) {
    case TokenModel::kT1G: return "T1G";
    case TokenModel::kT1GM: return "T1GM";
    case TokenModel::kC2G: return "C2G";
    case TokenModel::kC2GM: return "C2GM";
    case TokenModel::kC3G: return "C3G";
    case TokenModel::kC3GM: return "C3GM";
    case TokenModel::kC4G: return "C4G";
    case TokenModel::kC4GM: return "C4GM";
    case TokenModel::kC5G: return "C5G";
    case TokenModel::kC5GM: return "C5GM";
  }
  return "unknown";
}

bool IsMultiset(TokenModel model) {
  switch (model) {
    case TokenModel::kT1GM:
    case TokenModel::kC2GM:
    case TokenModel::kC3GM:
    case TokenModel::kC4GM:
    case TokenModel::kC5GM:
      return true;
    default:
      return false;
  }
}

int ModelGramLength(TokenModel model) {
  switch (model) {
    case TokenModel::kC2G: case TokenModel::kC2GM: return 2;
    case TokenModel::kC3G: case TokenModel::kC3GM: return 3;
    case TokenModel::kC4G: case TokenModel::kC4GM: return 4;
    case TokenModel::kC5G: case TokenModel::kC5GM: return 5;
    default: return 0;
  }
}

TokenSet BuildTokenSet(std::string_view text, TokenModel model, bool clean) {
  const std::string cleaned = text::CleanText(text, clean);
  std::vector<std::uint64_t> raw;
  const int n = ModelGramLength(model);
  if (n == 0) {
    for (const auto& token : text::CleanTokens(cleaned, /*clean=*/false)) {
      raw.push_back(FnvHash64(token));
    }
  } else {
    if (static_cast<int>(cleaned.size()) < n) {
      if (!cleaned.empty()) raw.push_back(FnvHash64(cleaned));
    } else {
      raw.reserve(cleaned.size());
      for (std::size_t i = 0; i + n <= cleaned.size(); ++i) {
        raw.push_back(FnvHash64(std::string_view(cleaned).substr(i, n)));
      }
    }
  }

  TokenSet set;
  set.reserve(raw.size());
  if (IsMultiset(model)) {
    // {a, a, b} -> {a#1, a#2, b#1}: occurrences become distinct elements, so
    // set overlap equals multiset intersection cardinality.
    std::unordered_map<std::uint64_t, std::uint32_t> occurrence;
    for (std::uint64_t h : raw) {
      set.push_back(HashCombine(h, ++occurrence[h]));
    }
  } else {
    set = std::move(raw);
  }
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

std::vector<TokenSet> BuildSideTokenSets(const core::Dataset& dataset, int side,
                                         core::SchemaMode mode, TokenModel model,
                                         bool clean) {
  const std::size_t count =
      side == 0 ? dataset.e1().size() : dataset.e2().size();
  std::vector<TokenSet> sets;
  sets.reserve(count);
  for (core::EntityId id = 0; id < count; ++id) {
    sets.push_back(BuildTokenSet(dataset.EntityText(side, id, mode), model, clean));
  }
  return sets;
}

TokenRankMap::TokenRankMap(const std::vector<TokenSet>& sets) {
  // Document frequency per distinct token. Token sets are deduplicated, so
  // each set contributes at most one occurrence per token.
  std::unordered_map<std::uint64_t, std::uint32_t> frequency;
  for (const auto& set : sets) {
    for (std::uint64_t token : set) ++frequency[token];
  }

  // Rank by (df ascending, token ascending): the secondary key makes the
  // order independent of hash-map iteration order.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> order;
  order.reserve(frequency.size());
  for (const auto& [token, df] : frequency) order.emplace_back(df, token);
  std::sort(order.begin(), order.end());

  num_ranked_ = static_cast<std::uint32_t>(order.size());
  std::size_t capacity = 16;
  while (capacity < order.size() * 2) capacity *= 2;
  slots_.assign(capacity, Slot{});
  const std::size_t mask = capacity - 1;
  for (std::uint32_t rank = 0; rank < num_ranked_; ++rank) {
    const std::uint64_t token = order[rank].second;
    std::size_t pos = SplitMix64(token) & mask;
    while (slots_[pos].used) pos = (pos + 1) & mask;
    slots_[pos].used = true;
    slots_[pos].token = token;
    slots_[pos].rank = rank;
  }
}

std::uint32_t TokenRankMap::Rank(std::uint64_t token) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t pos = SplitMix64(token) & mask;
  while (slots_[pos].used) {
    if (slots_[pos].token == token) return slots_[pos].rank;
    pos = (pos + 1) & mask;
  }
  return kUnknownRank;
}

RankedTokenSet TokenRankMap::Remap(const TokenSet& set) const {
  RankedTokenSet ranked;
  ranked.reserve(set.size());
  for (std::uint64_t token : set) ranked.push_back(Rank(token));
  std::sort(ranked.begin(), ranked.end());
  return ranked;
}

std::string_view MeasureName(SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kCosine: return "Cosine";
    case SimilarityMeasure::kDice: return "Dice";
    case SimilarityMeasure::kJaccard: return "Jaccard";
  }
  return "unknown";
}

double SetSimilarity(SimilarityMeasure measure, std::size_t overlap,
                     std::size_t size_a, std::size_t size_b) {
  if (size_a == 0 || size_b == 0) return 0.0;
  const double o = static_cast<double>(overlap);
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return o / std::sqrt(static_cast<double>(size_a) * size_b);
    case SimilarityMeasure::kDice:
      return 2.0 * o / static_cast<double>(size_a + size_b);
    case SimilarityMeasure::kJaccard:
      return o / static_cast<double>(size_a + size_b - overlap);
  }
  return 0.0;
}

}  // namespace erb::sparsenn
