#include "sparsenn/tokenset.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/buildpar.hpp"
#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "core/profile_store.hpp"
#include "obs/trace.hpp"
#include "text/clean.hpp"

namespace erb::sparsenn {

std::string_view ModelName(TokenModel model) {
  switch (model) {
    case TokenModel::kT1G: return "T1G";
    case TokenModel::kT1GM: return "T1GM";
    case TokenModel::kC2G: return "C2G";
    case TokenModel::kC2GM: return "C2GM";
    case TokenModel::kC3G: return "C3G";
    case TokenModel::kC3GM: return "C3GM";
    case TokenModel::kC4G: return "C4G";
    case TokenModel::kC4GM: return "C4GM";
    case TokenModel::kC5G: return "C5G";
    case TokenModel::kC5GM: return "C5GM";
  }
  return "unknown";
}

bool IsMultiset(TokenModel model) {
  switch (model) {
    case TokenModel::kT1GM:
    case TokenModel::kC2GM:
    case TokenModel::kC3GM:
    case TokenModel::kC4GM:
    case TokenModel::kC5GM:
      return true;
    default:
      return false;
  }
}

int ModelGramLength(TokenModel model) {
  switch (model) {
    case TokenModel::kC2G: case TokenModel::kC2GM: return 2;
    case TokenModel::kC3G: case TokenModel::kC3GM: return 3;
    case TokenModel::kC4G: case TokenModel::kC4GM: return 4;
    case TokenModel::kC5G: case TokenModel::kC5GM: return 5;
    default: return 0;
  }
}

namespace {

std::uint64_t DefaultTokenHash(std::string_view gram) {
  return FnvHash64(gram);
}

/// Salted re-hash assigned to the `index`-th (lexicographically ordered,
/// index >= 1) gram of a detected base-hash collision group. Depends only on
/// the gram content, the collided base hash and the gram's content order, so
/// every text containing the same colliding grams assigns identically.
std::uint64_t DisambiguatedHash(std::string_view gram, std::uint64_t base,
                                std::size_t index) {
  return FnvHash64(gram, SplitMix64(base + index));
}

/// Slow path, entered only when the single-pass build detected two distinct
/// grams sharing one base hash: regroups all occurrences by (base hash, gram
/// content) and assigns final token hashes content-deterministically — the
/// lexicographically smallest gram of a group keeps the base hash, later
/// ones get DisambiguatedHash. Emission order is irrelevant (the set is
/// sorted before return), so the grouping sort fixes the assignment without
/// any dependence on gram encounter order.
TokenSet BuildCollidingTokenSet(const std::vector<std::string_view>& grams,
                                bool multiset, TokenHashFn hash) {
  std::vector<std::pair<std::uint64_t, std::string_view>> occ;
  occ.reserve(grams.size());
  for (std::string_view gram : grams) occ.emplace_back(hash(gram), gram);
  std::sort(occ.begin(), occ.end());

  TokenSet set;
  set.reserve(occ.size());
  std::uint64_t collisions = 0;
  for (std::size_t i = 0; i < occ.size();) {
    const std::uint64_t base = occ[i].first;
    std::size_t distinct = 0;  // grams of this base group seen so far
    while (i < occ.size() && occ[i].first == base) {
      const std::string_view gram = occ[i].second;
      const std::uint64_t token =
          distinct == 0 ? base : DisambiguatedHash(gram, base, distinct);
      if (distinct > 0) ++collisions;
      std::uint32_t occurrence = 0;
      while (i < occ.size() && occ[i].first == base && occ[i].second == gram) {
        ++occurrence;
        if (multiset) set.push_back(HashCombine(token, occurrence));
        ++i;
      }
      if (!multiset) set.push_back(token);
      ++distinct;
    }
  }
  obs::CounterAdd("build.token_hash_collisions", collisions);
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

}  // namespace

TokenSet BuildTokenSet(std::string_view text, TokenModel model, bool clean) {
  return BuildTokenSet(text, model, clean, &DefaultTokenHash);
}

TokenSet BuildTokenSet(std::string_view text, TokenModel model, bool clean,
                       TokenHashFn hash) {
  const std::string cleaned = text::CleanText(text, clean);
  const int n = ModelGramLength(model);

  // Gather the grams as views — into the cleaned text for character n-grams,
  // into the token strings for the whitespace models — so collision
  // detection can compare bytes without materializing anything.
  std::vector<std::string> words;
  std::vector<std::string_view> grams;
  if (n == 0) {
    words = text::CleanTokens(cleaned, /*clean=*/false);
    grams.reserve(words.size());
    for (const auto& word : words) grams.emplace_back(word);
  } else if (static_cast<int>(cleaned.size()) < n) {
    if (!cleaned.empty()) grams.emplace_back(cleaned);
  } else {
    grams.reserve(cleaned.size());
    for (std::size_t i = 0; i + n <= cleaned.size(); ++i) {
      grams.push_back(std::string_view(cleaned).substr(i, n));
    }
  }

  // One flat-dict pass: each distinct base hash keeps its first gram's bytes
  // and occurrence count. {a, a, b} -> {a#1, a#2, b#1} in multiset mode (the
  // occurrence fold); one token per distinct gram otherwise. A second,
  // byte-different gram behind an existing hash is an FNV collision — bail
  // to the content-deterministic slow path.
  const bool multiset = IsMultiset(model);
  struct Entry {
    std::string_view gram;
    std::uint32_t count;
  };
  TokenDict dict;
  dict.Reserve(grams.size());
  std::vector<Entry> entries;
  entries.reserve(grams.size());
  TokenSet set;
  set.reserve(grams.size());
  for (std::string_view gram : grams) {
    const std::uint64_t h = hash(gram);
    const std::uint32_t next = static_cast<std::uint32_t>(entries.size());
    std::uint32_t* index = dict.FindOrInsert(h, next);
    if (*index == next) {
      entries.push_back(Entry{gram, 1});
      set.push_back(multiset ? HashCombine(h, 1) : h);
      continue;
    }
    Entry& entry = entries[*index];
    if (entry.gram != gram) {
      return BuildCollidingTokenSet(grams, multiset, hash);
    }
    ++entry.count;
    if (multiset) set.push_back(HashCombine(h, entry.count));
  }
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

std::vector<TokenSet> BuildSideTokenSets(const core::Dataset& dataset, int side,
                                         core::SchemaMode mode, TokenModel model,
                                         bool clean) {
  // Columnar text pass first (one arena, no per-entity strings), then the
  // independent per-entity tokenizations fan out over the pool.
  const core::ProfileStore store = core::ProfileStore::ForSide(dataset, side, mode);
  std::vector<TokenSet> sets(store.size());
  ParallelFor(0, store.size(), /*grain=*/0,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t id = begin; id < end; ++id) {
                  sets[id] = BuildTokenSet(
                      store.Text(static_cast<core::EntityId>(id)), model, clean);
                }
              });
  return sets;
}

TokenRankMap::TokenRankMap(const std::vector<TokenSet>& sets) {
  // Document frequency per distinct token, counted in parallel: each chunk
  // builds a private flat dict plus its tokens in first-appearance order,
  // and the chunk partials merge by addition in ascending chunk order.
  // The merge order cannot leak into the result — the rank order below is
  // (df, token)-sorted, and integer df addition is exact — but keeping the
  // fixed-chunk decomposition makes the intermediate states reproducible
  // too. Token sets are deduplicated, so each set contributes at most one
  // occurrence per token.
  struct Acc {
    TokenDict df;
    std::vector<std::uint64_t> first_seen;
  };
  Acc acc;
  if (!UseChunkedBuild()) {
    // Sequential fast path (single-threaded pool): count straight into one
    // dict. The (df, token) sort below erases any trace of accumulation
    // order, so this is exactly the chunked reduction's result.
    for (const TokenSet& set : sets) {
      for (std::uint64_t token : set) {
        std::uint32_t* count = acc.df.FindOrInsert(token, 0);
        if (*count == 0) acc.first_seen.push_back(token);
        ++*count;
      }
    }
  } else {
    acc = ParallelMapReduce<Acc>(
        0, sets.size(), BuildGrain(sets.size()),
        [&](std::size_t begin, std::size_t end) {
          Acc local;
          for (std::size_t i = begin; i < end; ++i) {
            for (std::uint64_t token : sets[i]) {
              std::uint32_t* count = local.df.FindOrInsert(token, 0);
              if (*count == 0) local.first_seen.push_back(token);
              ++*count;
            }
          }
          return local;
        },
        [](Acc& into, Acc&& from) {
          for (std::uint64_t token : from.first_seen) {
            std::uint32_t* count = into.df.FindOrInsert(token, 0);
            if (*count == 0) into.first_seen.push_back(token);
            *count += *from.df.Find(token);
          }
        });
  }

  // Rank by (df ascending, token ascending): the secondary key makes the
  // order independent of any map traversal order.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> order;
  order.reserve(acc.first_seen.size());
  for (std::uint64_t token : acc.first_seen) {
    order.emplace_back(*acc.df.Find(token), token);
  }
  // The frequency table and first-appearance list are spent; release them
  // before the rank table below so the two never peak together.
  acc.df = TokenDict();
  std::vector<std::uint64_t>().swap(acc.first_seen);
  std::sort(order.begin(), order.end());

  num_ranked_ = static_cast<std::uint32_t>(order.size());
  ranks_.Reserve(order.size());
  for (std::uint32_t rank = 0; rank < num_ranked_; ++rank) {
    *ranks_.FindOrInsert(order[rank].second, rank) = rank;
  }
}

std::uint32_t TokenRankMap::Rank(std::uint64_t token) const {
  const std::uint32_t* rank = ranks_.Find(token);
  return rank != nullptr ? *rank : kUnknownRank;
}

RankedTokenSet TokenRankMap::Remap(const TokenSet& set) const {
  RankedTokenSet ranked;
  ranked.reserve(set.size());
  for (std::uint64_t token : set) ranked.push_back(Rank(token));
  std::sort(ranked.begin(), ranked.end());
  return ranked;
}

std::string_view MeasureName(SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kCosine: return "Cosine";
    case SimilarityMeasure::kDice: return "Dice";
    case SimilarityMeasure::kJaccard: return "Jaccard";
  }
  return "unknown";
}

double SetSimilarity(SimilarityMeasure measure, std::size_t overlap,
                     std::size_t size_a, std::size_t size_b) {
  if (size_a == 0 || size_b == 0) return 0.0;
  const double o = static_cast<double>(overlap);
  switch (measure) {
    case SimilarityMeasure::kCosine:
      return o / std::sqrt(static_cast<double>(size_a) * size_b);
    case SimilarityMeasure::kDice:
      return 2.0 * o / static_cast<double>(size_a + size_b);
    case SimilarityMeasure::kJaccard:
      return o / static_cast<double>(size_a + size_b - overlap);
  }
  return 0.0;
}

}  // namespace erb::sparsenn
