#include "sparsenn/scancount.hpp"

#include <bit>
#include <cmath>

#include "common/hash.hpp"
#include "obs/trace.hpp"

namespace erb::sparsenn {

ScanCountIndex::ScanCountIndex(const std::vector<TokenSet>& sets) {
  set_sizes_.reserve(sets.size());
  for (const auto& set : sets) {
    set_sizes_.push_back(static_cast<std::uint32_t>(set.size()));
  }

  // Pass 1: discover distinct tokens and count each list's postings. The
  // token table grows with the distinct count, so a collection with heavy
  // token reuse no longer pays for a table sized by total occurrences.
  Rehash(16);
  std::vector<std::uint32_t> list_counts;
  for (const auto& set : sets) {
    for (std::uint64_t token : set) {
      const std::uint32_t list = InsertToken(token);
      if (list == list_counts.size()) list_counts.push_back(0);
      ++list_counts[list];
    }
  }

  // Prefix-sum the counts into CSR offsets.
  offsets_.resize(list_counts.size() + 1);
  offsets_[0] = 0;
  for (std::size_t i = 0; i < list_counts.size(); ++i) {
    offsets_[i + 1] = offsets_[i] + list_counts[i];
  }
  postings_.resize(offsets_.back());
  list_min_size_.assign(list_counts.size(), 0xffffffffu);
  list_max_size_.assign(list_counts.size(), 0);

  // Pass 2: fill postings in ascending set id (ids within a list ascend) and
  // fold each member's size into the list's admissibility range.
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::uint32_t id = 0; id < sets.size(); ++id) {
    const std::uint32_t size = set_sizes_[id];
    for (std::uint64_t token : sets[id]) {
      const std::uint32_t list = FindList(token);
      postings_[cursor[list]++] = id;
      if (size < list_min_size_[list]) list_min_size_[list] = size;
      if (size > list_max_size_[list]) list_max_size_[list] = size;
    }
  }

  scratch_.counts.assign(sets.size(), 0);
  scratch_.touched.reserve(sets.size());
}

void ScanCountIndex::Rehash(std::size_t capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{});
  const std::size_t mask = capacity - 1;
  for (const Slot& slot : old) {
    if (!slot.used) continue;
    std::size_t pos = SplitMix64(slot.token) & mask;
    while (slots_[pos].used) pos = (pos + 1) & mask;
    slots_[pos] = slot;
  }
}

std::uint32_t ScanCountIndex::InsertToken(std::uint64_t token) {
  // Keep the load factor at or below 1/2; capacity is a power of two for
  // mask addressing.
  if ((distinct_tokens_ + 1) * 2 > slots_.size()) Rehash(slots_.size() * 2);
  const std::size_t mask = slots_.size() - 1;
  std::size_t pos = SplitMix64(token) & mask;
  while (slots_[pos].used && slots_[pos].token != token) pos = (pos + 1) & mask;
  if (!slots_[pos].used) {
    slots_[pos].used = true;
    slots_[pos].token = token;
    slots_[pos].list = static_cast<std::uint32_t>(distinct_tokens_++);
  }
  return slots_[pos].list;
}

std::uint32_t ScanCountIndex::FindList(std::uint64_t token) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t pos = SplitMix64(token) & mask;
  while (slots_[pos].used) {
    if (slots_[pos].token == token) return slots_[pos].list;
    pos = (pos + 1) & mask;
  }
  return kNoList;
}

void ScanCountIndex::FlushCounters(ProbeScratch* scratch) {
  if (scratch->skipped_lists > 0) {
    obs::CounterAdd("sparse.probe_skipped_lists", scratch->skipped_lists);
    scratch->skipped_lists = 0;
  }
  if (scratch->pruned_sets > 0) {
    obs::CounterAdd("sparse.probe_pruned_sets", scratch->pruned_sets);
    scratch->pruned_sets = 0;
  }
}

ScanCountIndex::LengthFilter LengthBounds(SimilarityMeasure measure,
                                          double threshold,
                                          std::size_t query_size) {
  ScanCountIndex::LengthFilter filter;
  const double q = static_cast<double>(query_size);
  const double t = threshold;
  double min_size = 0.0, max_size = q, min_overlap = 1.0;
  switch (measure) {
    case SimilarityMeasure::kCosine:
      min_size = t * t * q;
      max_size = q / (t * t);
      min_overlap = t * t * q;
      break;
    case SimilarityMeasure::kDice:
      min_size = t * q / (2.0 - t);
      max_size = q * (2.0 - t) / t;
      min_overlap = t * q / (2.0 - t);
      break;
    case SimilarityMeasure::kJaccard:
      min_size = t * q;
      max_size = q / t;
      min_overlap = t * q;
      break;
  }
  // Widen each bound by one integer unit: rounding slack costs a little
  // pruning at the boundary but can never drop a qualifying pair.
  filter.min_size = static_cast<std::uint32_t>(
      std::max(1.0, std::floor(min_size) - 1.0));
  filter.max_size = static_cast<std::uint32_t>(
      std::min(4294967295.0, std::ceil(max_size) + 1.0));
  filter.min_overlap = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(min_overlap) - 1.0));
  return filter;
}

std::uint32_t PairMinOverlap(SimilarityMeasure measure, double threshold,
                             std::size_t size_a, std::size_t size_b) {
  const double q = static_cast<double>(size_a);
  const double s = static_cast<double>(size_b);
  const double t = threshold;
  double bound = 1.0;
  switch (measure) {
    case SimilarityMeasure::kCosine:
      bound = t * std::sqrt(q * s);
      break;
    case SimilarityMeasure::kDice:
      bound = t * (q + s) / 2.0;
      break;
    case SimilarityMeasure::kJaccard:
      bound = t * (q + s) / (1.0 + t);
      break;
  }
  return static_cast<std::uint32_t>(std::max(1.0, std::ceil(bound) - 1.0));
}

PrefixScanCountIndex::PrefixScanCountIndex(const std::vector<TokenSet>& sets,
                                           SimilarityMeasure measure,
                                           double threshold)
    : measure_(measure), threshold_(threshold), ranks_(sets) {
  const std::size_t n = sets.size();
  set_sizes_.reserve(n);
  set_offsets_.reserve(n + 1);
  set_offsets_.push_back(0);
  std::size_t total_tokens = 0;
  for (const auto& set : sets) total_tokens += set.size();
  set_tokens_.reserve(total_tokens);

  // Pass 1: remap every set into rank space (every token is known — the rank
  // order was just built over these sets), record its pigeonhole prefix
  // length, and count each rank's prefix postings.
  std::vector<std::uint32_t> prefix_len(n, 0);
  std::vector<std::uint32_t> list_counts(ranks_.NumRanked(), 0);
  for (std::size_t id = 0; id < n; ++id) {
    const RankedTokenSet ranked = ranks_.Remap(sets[id]);
    const std::uint32_t size = static_cast<std::uint32_t>(ranked.size());
    set_sizes_.push_back(size);
    min_set_size_ = std::min(min_set_size_, size);
    max_set_size_ = std::max(max_set_size_, size);
    set_tokens_.insert(set_tokens_.end(), ranked.begin(), ranked.end());
    set_offsets_.push_back(static_cast<std::uint32_t>(set_tokens_.size()));
    const auto filter = LengthBounds(measure, threshold, size);
    const std::uint32_t plen =
        size >= filter.min_overlap ? size - filter.min_overlap + 1 : 0;
    prefix_len[id] = plen;
    for (std::uint32_t j = 0; j < plen; ++j) {
      ++list_counts[set_tokens_[set_offsets_[id] + j]];
    }
  }

  // Prefix-sum into CSR offsets, then fill postings by ascending set id so
  // ids within a list ascend (matching ScanCountIndex's layout guarantee).
  post_offsets_.resize(list_counts.size() + 1);
  post_offsets_[0] = 0;
  for (std::size_t i = 0; i < list_counts.size(); ++i) {
    post_offsets_[i + 1] = post_offsets_[i] + list_counts[i];
  }
  postings_.resize(post_offsets_.back());
  std::vector<std::uint32_t> cursor(post_offsets_.begin(),
                                    post_offsets_.end() - 1);
  for (std::size_t id = 0; id < n; ++id) {
    for (std::uint32_t j = 0; j < prefix_len[id]; ++j) {
      const std::uint32_t rank = set_tokens_[set_offsets_[id] + j];
      postings_[cursor[rank]++] =
          Posting{static_cast<std::uint32_t>(id), j};
    }
  }
}

void PrefixScanCountIndex::FlushCounters(ProbeScratch* scratch) {
  if (scratch->prefix_skipped > 0) {
    obs::CounterAdd("sparse.prefix_skipped", scratch->prefix_skipped);
    scratch->prefix_skipped = 0;
  }
  if (scratch->positional_pruned > 0) {
    obs::CounterAdd("sparse.positional_pruned", scratch->positional_pruned);
    scratch->positional_pruned = 0;
  }
  if (scratch->pruned_sets > 0) {
    obs::CounterAdd("sparse.probe_pruned_sets", scratch->pruned_sets);
    scratch->pruned_sets = 0;
  }
  if (scratch->verify_calls > 0) {
    obs::CounterAdd("sparse.verify_calls", scratch->verify_calls);
    scratch->verify_calls = 0;
  }
}

}  // namespace erb::sparsenn
