#include "sparsenn/scancount.hpp"

#include <bit>

#include "common/hash.hpp"

namespace erb::sparsenn {

ScanCountIndex::ScanCountIndex(const std::vector<TokenSet>& sets) {
  std::size_t total_tokens = 0;
  set_sizes_.reserve(sets.size());
  for (const auto& set : sets) {
    set_sizes_.push_back(static_cast<std::uint32_t>(set.size()));
    total_tokens += set.size();
  }

  // Size the open-addressed table at >= 2x the (upper bound of) distinct
  // tokens; power of two for mask addressing.
  const std::size_t capacity =
      std::bit_ceil(std::max<std::size_t>(16, total_tokens * 2));
  slots_.resize(capacity);
  const std::size_t mask = capacity - 1;

  for (std::uint32_t id = 0; id < sets.size(); ++id) {
    for (std::uint64_t token : sets[id]) {
      std::size_t pos = SplitMix64(token) & mask;
      while (slots_[pos].used && slots_[pos].token != token) pos = (pos + 1) & mask;
      if (!slots_[pos].used) {
        slots_[pos].used = true;
        slots_[pos].token = token;
        slots_[pos].list_index = static_cast<std::uint32_t>(posting_lists_.size());
        posting_lists_.emplace_back();
      }
      posting_lists_[slots_[pos].list_index].push_back(id);
    }
  }

  scratch_.counts.assign(sets.size(), 0);
  scratch_.touched.reserve(sets.size());
}

const std::vector<std::uint32_t>* ScanCountIndex::PostingList(
    std::uint64_t token) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t pos = SplitMix64(token) & mask;
  while (slots_[pos].used) {
    if (slots_[pos].token == token) return &posting_lists_[slots_[pos].list_index];
    pos = (pos + 1) & mask;
  }
  return nullptr;
}

}  // namespace erb::sparsenn
