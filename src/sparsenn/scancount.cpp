#include "sparsenn/scancount.hpp"

#include <bit>

#include "common/hash.hpp"
#include "obs/trace.hpp"

namespace erb::sparsenn {

ScanCountIndex::ScanCountIndex(const std::vector<TokenSet>& sets) {
  set_sizes_.reserve(sets.size());
  for (const auto& set : sets) {
    set_sizes_.push_back(static_cast<std::uint32_t>(set.size()));
  }

  // Pass 1: discover distinct tokens and count each list's postings. The
  // token table grows with the distinct count, so a collection with heavy
  // token reuse no longer pays for a table sized by total occurrences.
  Rehash(16);
  std::vector<std::uint32_t> list_counts;
  for (const auto& set : sets) {
    for (std::uint64_t token : set) {
      const std::uint32_t list = InsertToken(token);
      if (list == list_counts.size()) list_counts.push_back(0);
      ++list_counts[list];
    }
  }

  // Prefix-sum the counts into CSR offsets.
  offsets_.resize(list_counts.size() + 1);
  offsets_[0] = 0;
  for (std::size_t i = 0; i < list_counts.size(); ++i) {
    offsets_[i + 1] = offsets_[i] + list_counts[i];
  }
  postings_.resize(offsets_.back());
  list_min_size_.assign(list_counts.size(), 0xffffffffu);
  list_max_size_.assign(list_counts.size(), 0);

  // Pass 2: fill postings in ascending set id (ids within a list ascend) and
  // fold each member's size into the list's admissibility range.
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::uint32_t id = 0; id < sets.size(); ++id) {
    const std::uint32_t size = set_sizes_[id];
    for (std::uint64_t token : sets[id]) {
      const std::uint32_t list = FindList(token);
      postings_[cursor[list]++] = id;
      if (size < list_min_size_[list]) list_min_size_[list] = size;
      if (size > list_max_size_[list]) list_max_size_[list] = size;
    }
  }

  scratch_.counts.assign(sets.size(), 0);
  scratch_.touched.reserve(sets.size());
}

void ScanCountIndex::Rehash(std::size_t capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{});
  const std::size_t mask = capacity - 1;
  for (const Slot& slot : old) {
    if (!slot.used) continue;
    std::size_t pos = SplitMix64(slot.token) & mask;
    while (slots_[pos].used) pos = (pos + 1) & mask;
    slots_[pos] = slot;
  }
}

std::uint32_t ScanCountIndex::InsertToken(std::uint64_t token) {
  // Keep the load factor at or below 1/2; capacity is a power of two for
  // mask addressing.
  if ((distinct_tokens_ + 1) * 2 > slots_.size()) Rehash(slots_.size() * 2);
  const std::size_t mask = slots_.size() - 1;
  std::size_t pos = SplitMix64(token) & mask;
  while (slots_[pos].used && slots_[pos].token != token) pos = (pos + 1) & mask;
  if (!slots_[pos].used) {
    slots_[pos].used = true;
    slots_[pos].token = token;
    slots_[pos].list = static_cast<std::uint32_t>(distinct_tokens_++);
  }
  return slots_[pos].list;
}

std::uint32_t ScanCountIndex::FindList(std::uint64_t token) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t pos = SplitMix64(token) & mask;
  while (slots_[pos].used) {
    if (slots_[pos].token == token) return slots_[pos].list;
    pos = (pos + 1) & mask;
  }
  return kNoList;
}

void ScanCountIndex::FlushCounters(ProbeScratch* scratch) {
  if (scratch->skipped_lists > 0) {
    obs::CounterAdd("sparse.probe_skipped_lists", scratch->skipped_lists);
    scratch->skipped_lists = 0;
  }
  if (scratch->pruned_sets > 0) {
    obs::CounterAdd("sparse.probe_pruned_sets", scratch->pruned_sets);
    scratch->pruned_sets = 0;
  }
}

}  // namespace erb::sparsenn
