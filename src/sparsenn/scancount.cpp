#include "sparsenn/scancount.hpp"

#include <bit>
#include <cmath>

#include "common/buildpar.hpp"
#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "obs/trace.hpp"

namespace erb::sparsenn {

ScanCountIndex::ScanCountIndex(const std::vector<TokenSet>& sets) {
  const std::size_t n = sets.size();
  set_sizes_.resize(n);
  ParallelFor(0, n, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t id = begin; id < end; ++id) {
      set_sizes_[id] = static_cast<std::uint32_t>(sets[id].size());
    }
  });

  if (!UseChunkedBuild()) {
    // Sequential fast path (single-threaded pool): one global dict, two
    // passes, no private chunk state. Pass 2 re-walks the sets with the
    // bare present-key probe (FindPresent — the robin-hood invariant makes
    // a key-compare walk sufficient), and the count array is reused as the
    // fill cursor, so peak memory stays strictly below the classic build
    // (which copies the offsets into a separate cursor array).
    // First-appearance numbering is the same scan order the chunked merge
    // reproduces, so the CSR is byte-identical either way.
    std::vector<std::uint32_t> list_counts;
    for (std::size_t id = 0; id < n; ++id) {
      for (std::uint64_t token : sets[id]) {
        const std::uint32_t next =
            static_cast<std::uint32_t>(list_counts.size());
        const std::uint32_t list = *dict_.FindOrInsert(token, next);
        if (list == next) list_counts.push_back(0);
        ++list_counts[list];
      }
    }
    offsets_.resize(list_counts.size() + 1);
    offsets_[0] = 0;
    for (std::size_t i = 0; i < list_counts.size(); ++i) {
      offsets_[i + 1] = offsets_[i] + list_counts[i];
      list_counts[i] = offsets_[i];  // becomes the pass-2 write cursor
    }
    postings_.resize(offsets_.back());
    list_min_size_.assign(list_counts.size(), 0xffffffffu);
    list_max_size_.assign(list_counts.size(), 0);
    for (std::size_t id = 0; id < n; ++id) {
      const std::uint32_t size = set_sizes_[id];
      const TokenSet& set = sets[id];
      for (std::size_t j = 0; j < set.size(); ++j) {
        const std::uint32_t list = dict_.FindPresent(set[j]);
        postings_[list_counts[list]++] = static_cast<std::uint32_t>(id);
        if (size < list_min_size_[list]) list_min_size_[list] = size;
        if (size > list_max_size_[list]) list_max_size_[list] = size;
      }
    }
    // Counter contract: build.chunks_merged reports the fixed logical
    // decomposition (identical at any thread count); dict rehashes are an
    // execution-strategy metric and may differ from the chunked path's.
    obs::CounterAdd("build.chunks_merged", NumBuildChunks(n));
    obs::CounterAdd("build.dict_rehashes", dict_.rehashes());
    scratch_.counts.assign(n, 0);
    scratch_.touched.reserve(n);
    return;
  }

  // Pass 1 (parallel): each chunk discovers its distinct tokens in a private
  // flat dict and counts its postings plus per-list size ranges. The chunk
  // decomposition is fixed (kBuildChunks) regardless of the thread count.
  struct Chunk {
    TokenDict dict;                     // token -> local list id
    std::vector<std::uint64_t> tokens;  // local first-appearance order
    std::vector<std::uint32_t> counts;
    std::vector<std::uint32_t> min_size;
    std::vector<std::uint32_t> max_size;
    std::vector<std::uint32_t> cursor;  // pass-2 write position per local list
  };
  const std::size_t grain = BuildGrain(n);
  std::vector<Chunk> chunks(NumBuildChunks(n));
  ParallelFor(0, n, grain, [&](std::size_t begin, std::size_t end) {
    Chunk& chunk = chunks[begin / grain];
    for (std::size_t id = begin; id < end; ++id) {
      const std::uint32_t size = set_sizes_[id];
      for (std::uint64_t token : sets[id]) {
        const std::uint32_t next =
            static_cast<std::uint32_t>(chunk.tokens.size());
        const std::uint32_t local = *chunk.dict.FindOrInsert(token, next);
        if (local == next) {
          chunk.tokens.push_back(token);
          chunk.counts.push_back(0);
          chunk.min_size.push_back(0xffffffffu);
          chunk.max_size.push_back(0);
        }
        ++chunk.counts[local];
        if (size < chunk.min_size[local]) chunk.min_size[local] = size;
        if (size > chunk.max_size[local]) chunk.max_size[local] = size;
      }
    }
  });

  // Merge in ascending chunk order. A token's global first appearance is its
  // local first appearance in the earliest chunk holding it, so assigning
  // fresh list ids in this traversal reproduces the sequential scan's
  // first-appearance numbering exactly — the CSR layout is byte-identical at
  // any ERB_THREADS.
  std::size_t distinct_upper = 0;
  std::uint64_t local_rehashes = 0;
  for (const Chunk& chunk : chunks) {
    distinct_upper += chunk.tokens.size();
    local_rehashes += chunk.dict.rehashes();
  }
  dict_.Reserve(distinct_upper);
  std::vector<std::uint32_t> list_counts;
  list_counts.reserve(distinct_upper);
  for (const Chunk& chunk : chunks) {
    for (std::size_t local = 0; local < chunk.tokens.size(); ++local) {
      const std::uint32_t next = static_cast<std::uint32_t>(list_counts.size());
      const std::uint32_t list = *dict_.FindOrInsert(chunk.tokens[local], next);
      if (list == next) {
        list_counts.push_back(0);
        list_min_size_.push_back(0xffffffffu);
        list_max_size_.push_back(0);
      }
      list_counts[list] += chunk.counts[local];
      list_min_size_[list] = std::min(list_min_size_[list],
                                      chunk.min_size[local]);
      list_max_size_[list] = std::max(list_max_size_[list],
                                      chunk.max_size[local]);
    }
  }

  // Prefix-sum the counts into CSR offsets, then give each chunk its write
  // cursor per list: chunk c's postings for a list start where the prior
  // chunks' postings for it end.
  offsets_.resize(list_counts.size() + 1);
  offsets_[0] = 0;
  for (std::size_t i = 0; i < list_counts.size(); ++i) {
    offsets_[i + 1] = offsets_[i] + list_counts[i];
  }
  postings_.resize(offsets_.back());
  std::vector<std::uint32_t> cum(list_counts.size(), 0);
  for (Chunk& chunk : chunks) {
    chunk.cursor.resize(chunk.tokens.size());
    for (std::size_t local = 0; local < chunk.tokens.size(); ++local) {
      const std::uint32_t list = *dict_.Find(chunk.tokens[local]);
      chunk.cursor[local] = offsets_[list] + cum[list];
      cum[list] += chunk.counts[local];
    }
  }

  // Pass 2 (parallel): each chunk fills its disjoint posting segments in
  // ascending set id; segments are ordered by chunk, so ids within every
  // list ascend globally.
  ParallelFor(0, n, grain, [&](std::size_t begin, std::size_t end) {
    Chunk& chunk = chunks[begin / grain];
    for (std::size_t id = begin; id < end; ++id) {
      for (std::uint64_t token : sets[id]) {
        const std::uint32_t local = *chunk.dict.Find(token);
        postings_[chunk.cursor[local]++] = static_cast<std::uint32_t>(id);
      }
    }
  });

  obs::CounterAdd("build.chunks_merged", chunks.size());
  obs::CounterAdd("build.dict_rehashes", local_rehashes + dict_.rehashes());

  scratch_.counts.assign(n, 0);
  scratch_.touched.reserve(n);
}

void ScanCountIndex::FlushCounters(ProbeScratch* scratch) {
  if (scratch->skipped_lists > 0) {
    obs::CounterAdd("sparse.probe_skipped_lists", scratch->skipped_lists);
    scratch->skipped_lists = 0;
  }
  if (scratch->pruned_sets > 0) {
    obs::CounterAdd("sparse.probe_pruned_sets", scratch->pruned_sets);
    scratch->pruned_sets = 0;
  }
}

ScanCountIndex::LengthFilter LengthBounds(SimilarityMeasure measure,
                                          double threshold,
                                          std::size_t query_size) {
  ScanCountIndex::LengthFilter filter;
  const double q = static_cast<double>(query_size);
  const double t = threshold;
  double min_size = 0.0, max_size = q, min_overlap = 1.0;
  switch (measure) {
    case SimilarityMeasure::kCosine:
      min_size = t * t * q;
      max_size = q / (t * t);
      min_overlap = t * t * q;
      break;
    case SimilarityMeasure::kDice:
      min_size = t * q / (2.0 - t);
      max_size = q * (2.0 - t) / t;
      min_overlap = t * q / (2.0 - t);
      break;
    case SimilarityMeasure::kJaccard:
      min_size = t * q;
      max_size = q / t;
      min_overlap = t * q;
      break;
  }
  // Widen each bound by one integer unit: rounding slack costs a little
  // pruning at the boundary but can never drop a qualifying pair.
  filter.min_size = static_cast<std::uint32_t>(
      std::max(1.0, std::floor(min_size) - 1.0));
  filter.max_size = static_cast<std::uint32_t>(
      std::min(4294967295.0, std::ceil(max_size) + 1.0));
  filter.min_overlap = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(min_overlap) - 1.0));
  return filter;
}

std::uint32_t PairMinOverlap(SimilarityMeasure measure, double threshold,
                             std::size_t size_a, std::size_t size_b) {
  const double q = static_cast<double>(size_a);
  const double s = static_cast<double>(size_b);
  const double t = threshold;
  double bound = 1.0;
  switch (measure) {
    case SimilarityMeasure::kCosine:
      bound = t * std::sqrt(q * s);
      break;
    case SimilarityMeasure::kDice:
      bound = t * (q + s) / 2.0;
      break;
    case SimilarityMeasure::kJaccard:
      bound = t * (q + s) / (1.0 + t);
      break;
  }
  return static_cast<std::uint32_t>(std::max(1.0, std::ceil(bound) - 1.0));
}

PrefixScanCountIndex::PrefixScanCountIndex(const std::vector<TokenSet>& sets,
                                           SimilarityMeasure measure,
                                           double threshold)
    : measure_(measure), threshold_(threshold), ranks_(sets) {
  const std::size_t n = sets.size();

  // A ranked set has the cardinality of its source set (every token is known
  // — the rank order was just built over these sets), so the whole CSR
  // skeleton is known up front: sizes, one prefix sum, one arena resize.
  set_sizes_.resize(n);
  ParallelFor(0, n, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t id = begin; id < end; ++id) {
      set_sizes_[id] = static_cast<std::uint32_t>(sets[id].size());
    }
  });
  set_offsets_.resize(n + 1);
  set_offsets_[0] = 0;
  for (std::size_t id = 0; id < n; ++id) {
    set_offsets_[id + 1] = set_offsets_[id] + set_sizes_[id];
    min_set_size_ = std::min(min_set_size_, set_sizes_[id]);
    max_set_size_ = std::max(max_set_size_, set_sizes_[id]);
  }
  set_tokens_.resize(set_offsets_[n]);

  const std::size_t grain = BuildGrain(n);
  const std::size_t num_chunks = NumBuildChunks(n);
  const std::size_t num_ranks = ranks_.NumRanked();
  std::vector<std::uint32_t> prefix_len(n, 0);

  if (!UseChunkedBuild()) {
    // Sequential fast path (single-threaded pool): one count array instead
    // of kBuildChunks private ones; the remap/count and fill passes are the
    // same scans the chunked build performs per chunk, so the prefix CSR is
    // byte-identical either way.
    std::vector<std::uint32_t> counts(num_ranks, 0);
    for (std::size_t id = 0; id < n; ++id) {
      const TokenSet& set = sets[id];
      std::uint32_t* out = set_tokens_.data() + set_offsets_[id];
      for (std::size_t j = 0; j < set.size(); ++j) {
        out[j] = ranks_.Rank(set[j]);
      }
      std::sort(out, out + set.size());
      const std::uint32_t size = set_sizes_[id];
      const auto filter = LengthBounds(measure_, threshold_, size);
      const std::uint32_t plen =
          size >= filter.min_overlap ? size - filter.min_overlap + 1 : 0;
      prefix_len[id] = plen;
      for (std::uint32_t j = 0; j < plen; ++j) ++counts[out[j]];
    }
    post_offsets_.resize(num_ranks + 1);
    post_offsets_[0] = 0;
    for (std::size_t r = 0; r < num_ranks; ++r) {
      post_offsets_[r + 1] = post_offsets_[r] + counts[r];
      counts[r] = post_offsets_[r];  // becomes the fill cursor
    }
    postings_.resize(post_offsets_.back());
    for (std::size_t id = 0; id < n; ++id) {
      for (std::uint32_t j = 0; j < prefix_len[id]; ++j) {
        const std::uint32_t rank = set_tokens_[set_offsets_[id] + j];
        postings_[counts[rank]++] = Posting{static_cast<std::uint32_t>(id), j};
      }
    }
    obs::CounterAdd("build.chunks_merged", num_chunks);
    return;
  }

  // Pass 1 (parallel): remap every set into rank space directly inside its
  // arena segment, record its pigeonhole prefix length, and count each
  // rank's prefix postings into the chunk's private count array. The chunk
  // decomposition is fixed (kBuildChunks), so at most kBuildChunks count
  // arrays of NumRanked() entries exist transiently.
  std::vector<std::vector<std::uint32_t>> chunk_counts(num_chunks);
  ParallelFor(0, n, grain, [&](std::size_t begin, std::size_t end) {
    auto& counts = chunk_counts[begin / grain];
    counts.assign(num_ranks, 0);
    for (std::size_t id = begin; id < end; ++id) {
      const TokenSet& set = sets[id];
      std::uint32_t* out = set_tokens_.data() + set_offsets_[id];
      for (std::size_t j = 0; j < set.size(); ++j) {
        out[j] = ranks_.Rank(set[j]);
      }
      std::sort(out, out + set.size());
      const std::uint32_t size = set_sizes_[id];
      const auto filter = LengthBounds(measure_, threshold_, size);
      const std::uint32_t plen =
          size >= filter.min_overlap ? size - filter.min_overlap + 1 : 0;
      prefix_len[id] = plen;
      for (std::uint32_t j = 0; j < plen; ++j) ++counts[out[j]];
    }
  });

  // Prefix-sum into CSR offsets while turning each chunk's count for a rank
  // into its write cursor: chunk c's postings for a list start where the
  // prior chunks' postings for it end.
  post_offsets_.resize(num_ranks + 1);
  post_offsets_[0] = 0;
  for (std::size_t r = 0; r < num_ranks; ++r) {
    std::uint32_t cursor = post_offsets_[r];
    for (auto& counts : chunk_counts) {
      const std::uint32_t count = counts[r];
      counts[r] = cursor;
      cursor += count;
    }
    post_offsets_[r + 1] = cursor;
  }
  postings_.resize(post_offsets_.back());

  // Pass 2 (parallel): fill postings by ascending set id within each chunk;
  // chunk segments are ordered, so ids within a list ascend globally
  // (matching ScanCountIndex's layout guarantee).
  ParallelFor(0, n, grain, [&](std::size_t begin, std::size_t end) {
    auto& cursor = chunk_counts[begin / grain];
    for (std::size_t id = begin; id < end; ++id) {
      for (std::uint32_t j = 0; j < prefix_len[id]; ++j) {
        const std::uint32_t rank = set_tokens_[set_offsets_[id] + j];
        postings_[cursor[rank]++] =
            Posting{static_cast<std::uint32_t>(id), j};
      }
    }
  });

  obs::CounterAdd("build.chunks_merged", num_chunks);
}

void PrefixScanCountIndex::FlushCounters(ProbeScratch* scratch) {
  if (scratch->prefix_skipped > 0) {
    obs::CounterAdd("sparse.prefix_skipped", scratch->prefix_skipped);
    scratch->prefix_skipped = 0;
  }
  if (scratch->positional_pruned > 0) {
    obs::CounterAdd("sparse.positional_pruned", scratch->positional_pruned);
    scratch->positional_pruned = 0;
  }
  if (scratch->pruned_sets > 0) {
    obs::CounterAdd("sparse.probe_pruned_sets", scratch->pruned_sets);
    scratch->pruned_sets = 0;
  }
  if (scratch->verify_calls > 0) {
    obs::CounterAdd("sparse.verify_calls", scratch->verify_calls);
    scratch->verify_calls = 0;
  }
}

}  // namespace erb::sparsenn
