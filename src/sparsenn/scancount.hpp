// ScanCount (Li, Lu, Lu — ICDE 2008): an inverted index over token sets with
// merge-count lookups. Chosen by the paper because it stays efficient at the
// low similarity thresholds ER requires, unlike prefix-filter joins.
//
// Posting lists live in CSR form: one contiguous `postings_` array plus an
// `offsets_` array, so a probe walks flat memory instead of chasing one heap
// allocation per token. List i holds the ids of the sets containing token i
// in ascending order (the two-pass build fills them by ascending set id),
// which pins the first-touch emission order of Probe() to the pre-CSR layout.
//
// PrefixScanCountIndex below is the PPJoin-family alternative (ShallowBlocker,
// arXiv:2312.15835): sets rewritten into global-frequency rank order, only
// each set's pigeonhole prefix indexed, postings carrying token positions so
// probes stack the prefix, positional and length filters before any counting,
// and survivors verified with a branchless merge of the two suffixes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sparsenn/tokenset.hpp"

namespace erb::sparsenn {

/// Inverted index over a collection of token sets.
class ScanCountIndex {
 public:
  /// Builds the index over `sets` (the collection being probed, i.e. the
  /// indexed side of the join).
  explicit ScanCountIndex(const std::vector<TokenSet>& sets);

  /// Per-thread probe scratch: the merge-count array plus its dirty list.
  /// Parallel probe loops give each chunk its own scratch so concurrent
  /// Probe() calls against one shared index never touch common state.
  /// ProbeFiltered() additionally accumulates its pruning counters here (one
  /// relaxed-atomic flush per chunk instead of two per probe); call
  /// FlushCounters() when the chunk is done.
  struct ProbeScratch {
    std::vector<std::uint32_t> counts;
    std::vector<std::uint32_t> touched;
    // ProbeFiltered working state: the query's admissible lists.
    std::vector<std::uint32_t> lists;
    std::uint64_t skipped_lists = 0;  ///< whole posting lists skipped
    std::uint64_t pruned_sets = 0;    ///< candidate sets pruned at first touch
  };

  /// Similarity-aware admissibility window for ProbeFiltered(), derived from
  /// the query size and the join threshold (see LengthBounds in joins.hpp):
  /// only indexed sets with size in [min_size, max_size] can reach the
  /// threshold, and only with at least min_overlap shared tokens.
  struct LengthFilter {
    std::uint32_t min_size = 0;
    std::uint32_t max_size = 0xffffffffu;
    std::uint32_t min_overlap = 1;
  };

  /// Overlap of `query` with every indexed set that shares at least one
  /// token: invokes `fn(indexed_id, overlap, indexed_size)` per such set.
  /// One merge-count scan over the query tokens' posting lists. Thread-safe
  /// as long as each concurrent caller passes its own scratch.
  template <typename Fn>
  void Probe(const TokenSet& query, ProbeScratch* scratch, Fn&& fn) const {
    auto& counts = scratch->counts;
    auto& touched = scratch->touched;
    counts.resize(set_sizes_.size(), 0);
    touched.clear();
    for (std::uint64_t token : query) {
      const std::uint32_t list = FindList(token);
      if (list == kNoList) continue;
      CountList(postings_.data() + offsets_[list],
                postings_.data() + offsets_[list + 1], counts, touched);
    }
    for (std::uint32_t id : touched) {
      fn(id, counts[id], set_sizes_[id]);
      counts[id] = 0;
    }
  }

  /// Single-threaded convenience overload using the index's own scratch.
  template <typename Fn>
  void Probe(const TokenSet& query, Fn&& fn) const {
    Probe(query, &scratch_, std::forward<Fn>(fn));
  }

  /// Probe() restricted to indexed sets that can reach a join threshold:
  /// whole lists are skipped when no member's size falls inside the filter
  /// window (per-list size ranges are precomputed at build time), individual
  /// sets are dropped at first touch when their size is outside the window
  /// or too few query tokens remain to reach min_overlap, and `fn` only
  /// fires for overlap >= min_overlap. The filter must be sound for the
  /// caller's predicate (it only skips work, the exact similarity test still
  /// decides), so the surviving calls are exactly the qualifying ones.
  template <typename Fn>
  void ProbeFiltered(const TokenSet& query, const LengthFilter& filter,
                     ProbeScratch* scratch, Fn&& fn) const {
    auto& counts = scratch->counts;
    auto& touched = scratch->touched;
    counts.resize(set_sizes_.size(), 0);
    touched.clear();
    std::uint64_t skipped = 0, pruned = 0;
    bool any_pruned = false;

    // Resolve the query's tokens to admissible lists; a list whose members'
    // sizes all fall outside the window holds no qualifying candidate (so
    // dropping it also never perturbs an emitted candidate's exact overlap).
    auto& lists = scratch->lists;
    lists.clear();
    for (std::uint64_t token : query) {
      const std::uint32_t list = FindList(token);
      if (list == kNoList) continue;
      if (list_max_size_[list] < filter.min_size ||
          list_min_size_[list] > filter.max_size) {
        ++skipped;
        continue;
      }
      lists.push_back(list);
    }

    // Walk layout: a set first touched at list position p can overlap at
    // most the num_lists - p lists from p on, so only the first
    // num_lists - min_overlap + 1 lists (the prefix) can start a qualifying
    // candidate. Tail lists merely extend counts of already-tracked sets:
    // no pushes, no size checks, and sets living only in tail lists are
    // never tracked, never reset, never scanned at emission. Both loops are
    // branchless (CountList's deferred-push trick, and an unconditional
    // add of the comparison bit in the tail): the touched/untouched mix in
    // a posting list is data-dependent, and on a merge-count whose counts
    // array lives in L1 the mispredict stalls dominate the walk.
    const std::size_t num_lists = lists.size();
    const std::size_t prefix = num_lists >= filter.min_overlap
                                   ? num_lists - filter.min_overlap + 1
                                   : 0;

    for (std::size_t i = 0; i < num_lists; ++i) {
      const std::uint32_t list = lists[i];
      const std::uint32_t* id = postings_.data() + offsets_[list];
      const std::uint32_t* end = postings_.data() + offsets_[list + 1];
      if (i < prefix) {
        if (filter.min_size <= list_min_size_[list] &&
            list_max_size_[list] <= filter.max_size) {
          // Every member admissible: the unfiltered merge-count loop. A set
          // marked kPruned is never in such a list (its size is outside the
          // window, every size here is inside), so no sentinel check.
          CountList(id, end, counts, touched);
        } else {
          for (; id != end; ++id) {
            std::uint32_t& count = counts[*id];
            if (count == kPruned) continue;
            if (count == 0) {
              const std::uint32_t size = set_sizes_[*id];
              if (size < filter.min_size || size > filter.max_size) {
                count = kPruned;
                touched.push_back(*id);  // still needs the reset below
                ++pruned;
                any_pruned = true;
                continue;
              }
              touched.push_back(*id);
            }
            ++count;
          }
        }
      } else if (!any_pruned) {
        for (; id != end; ++id) {
          std::uint32_t& count = counts[*id];
          count += static_cast<std::uint32_t>(count != 0);
        }
      } else {
        for (; id != end; ++id) {
          std::uint32_t& count = counts[*id];
          count += static_cast<std::uint32_t>((count != 0) & (count != kPruned));
        }
      }
    }

    scratch->skipped_lists += skipped;
    scratch->pruned_sets += pruned;
    for (std::uint32_t id : touched) {
      const std::uint32_t count = counts[id];
      counts[id] = 0;
      if (count == kPruned || count < filter.min_overlap) continue;
      fn(id, count, set_sizes_[id]);
    }
  }

  /// Publishes and resets the scratch's pruning counters
  /// (`sparse.probe_skipped_lists`, `sparse.probe_pruned_sets`).
  static void FlushCounters(ProbeScratch* scratch);

  std::size_t NumSets() const { return set_sizes_.size(); }
  std::size_t SetSize(std::uint32_t id) const { return set_sizes_[id]; }
  std::size_t NumTokens() const { return offsets_.size() - 1; }

 private:
  /// Sentinel in ProbeScratch::counts marking a set dropped by the filter
  /// (no real overlap reaches it: overlaps are bounded by the query size).
  static constexpr std::uint32_t kPruned = 0xffffffffu;
  static constexpr std::uint32_t kNoList = 0xffffffffu;

  /// The list of `token`, or kNoList.
  std::uint32_t FindList(std::uint64_t token) const {
    const std::uint32_t* list = dict_.Find(token);
    return list != nullptr ? *list : kNoList;
  }

  /// Merge-counts one posting list: increments counts and appends first
  /// touches to `touched` in first-touch order. The push is branchless —
  /// every id is written to the next free slot, and the slot is only kept
  /// (top advanced) when the count was zero — because whether a posting's
  /// set is already touched is data-dependent: a compare-and-branch here
  /// mispredicts often enough to dominate an L1-resident merge-count.
  static void CountList(const std::uint32_t* id, const std::uint32_t* end,
                        std::vector<std::uint32_t>& counts,
                        std::vector<std::uint32_t>& touched) {
    const std::size_t len = static_cast<std::size_t>(end - id);
    touched.resize(touched.size() + len);
    std::uint32_t* top = touched.data() + touched.size() - len;
    const std::uint32_t* base = top;
    for (; id != end; ++id) {
      std::uint32_t& count = counts[*id];
      *top = *id;
      top += static_cast<std::size_t>(count == 0);
      ++count;
    }
    touched.resize(touched.size() - len + static_cast<std::size_t>(top - base));
  }

  // Flat robin-hood token -> list map (power-of-two capacity, load <= 1/2),
  // sized by the number of distinct tokens, not total token occurrences.
  TokenDict dict_;

  // CSR postings: list i is postings_[offsets_[i] .. offsets_[i+1]), ids
  // ascending. list_{min,max}_size_[i] bound the member sets' sizes, enabling
  // whole-list skips in ProbeFiltered().
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> postings_;
  std::vector<std::uint32_t> list_min_size_;
  std::vector<std::uint32_t> list_max_size_;
  std::vector<std::uint32_t> set_sizes_;

  // Scratch for the single-threaded Probe overload; mutable so Probe can
  // stay const for callers holding a const index.
  mutable ProbeScratch scratch_;
};

/// The length-filter window for a query of size `query_size` under a join
/// at `threshold`: indexed sets outside [min_size, max_size], or sharing
/// fewer than min_overlap tokens, cannot reach the threshold. Derivations
/// (o = overlap, q = query size, s = indexed size, max o = min(q, s)):
///   Cosine  o/sqrt(qs)  >= t  =>  s in [t^2 q, q/t^2],       o >= t^2 q
///   Dice    2o/(q+s)    >= t  =>  s in [tq/(2-t), q(2-t)/t], o >= tq/(2-t)
///   Jaccard o/(q+s-o)   >= t  =>  s in [tq, q/t],            o >= tq
/// Each bound is widened by one integer unit against floating-point rounding;
/// the exact similarity predicate still decides every surviving pair, so the
/// filter only has to be sound, never tight.
ScanCountIndex::LengthFilter LengthBounds(SimilarityMeasure measure,
                                          double threshold,
                                          std::size_t query_size);

/// Sound lower bound on the overlap two sets of the given sizes must share to
/// reach `threshold` — the positional filter's per-pair requirement, tighter
/// than LengthBounds' query-only min_overlap once the candidate size is known:
///   Cosine  o >= t sqrt(qs),  Dice  o >= t(q+s)/2,  Jaccard  o >= t(q+s)/(1+t)
/// Widened by the same one integer unit as LengthBounds.
std::uint32_t PairMinOverlap(SimilarityMeasure measure, double threshold,
                             std::size_t size_a, std::size_t size_b);

/// Prefix-filtered inverted index over token sets in global-frequency rank
/// space. Only the pigeonhole prefix of each set is indexed: a set of size s
/// can match a qualifying partner only through one of its first
/// s - min_overlap(threshold, s) + 1 rarest tokens, so tail tokens never
/// enter a posting list. Postings carry the token's position within the set,
/// which lets probes run the positional filter (overlap upper bound from the
/// remaining suffix lengths) before any candidate survives to verification.
/// Probing at a threshold above the build threshold is sound (prefixes only
/// need to shrink); probing below it is not.
class PrefixScanCountIndex {
 public:
  /// One prefix posting: the member set and the token's position in it.
  struct Posting {
    std::uint32_t id;
    std::uint32_t pos;
  };

  /// Per-thread probe scratch (see ScanCountIndex::ProbeScratch): counts is
  /// the merge-count array doubling as the pruned/done marker, the three
  /// position arrays cache per-candidate resume state for the suffix
  /// verification, and the counters accumulate until FlushCounters().
  struct ProbeScratch {
    std::vector<std::uint32_t> counts;
    std::vector<std::uint32_t> touched;
    // Resume state for the suffix verification, packed (query_pos << 32 |
    // set_pos) of the candidate's last counted match: one store per posting,
    // and at emission the tightest positional bound the scan can know.
    std::vector<std::uint64_t> last_pos;
    // PairMinOverlap by candidate size, tabulated over the length window —
    // the hot loop must not pay a sqrt per first touch. The table depends
    // only on the key below, so probes for same-sized queries reuse it.
    std::vector<std::uint32_t> needed_by_size;
    SimilarityMeasure needed_measure = SimilarityMeasure::kCosine;
    double needed_threshold = -1.0;
    std::size_t needed_q = 0;
    std::uint32_t needed_lo = 1;
    std::uint32_t needed_hi = 0;
    // One bit per rank, set for the probing query's tokens; verification
    // tests candidate-suffix tokens against it. Zeroed again before the
    // probe returns, so consecutive probes can share the allocation.
    std::vector<std::uint64_t> query_bits;
    std::uint64_t prefix_skipped = 0;     ///< query tokens beyond the prefix
    std::uint64_t positional_pruned = 0;  ///< candidates cut by the positional filter
    std::uint64_t pruned_sets = 0;        ///< candidates cut by the length window
    std::uint64_t verify_calls = 0;       ///< suffix verifications performed
  };

  /// Indexes `sets` for probes at or above `threshold` under `measure`.
  /// Build at threshold 0 to support arbitrary (decreasing-threshold) probes;
  /// that indexes full sets, still with positional postings.
  PrefixScanCountIndex(const std::vector<TokenSet>& sets,
                       SimilarityMeasure measure, double threshold);

  /// The global-frequency order the index lives in; remap queries through it.
  const TokenRankMap& ranks() const { return ranks_; }

  /// Invokes `fn(indexed_id, overlap, indexed_size)` with the *exact* overlap
  /// for every indexed set that can reach `threshold` against `query` (which
  /// must be remapped through ranks()). Candidates failing the length,
  /// prefix, positional, or verified-overlap bound are never emitted; all of
  /// them provably fall below the threshold, so a caller applying the exact
  /// similarity predicate sees the same surviving pairs as an unfiltered
  /// merge-count probe. `threshold` must be >= the build threshold.
  template <typename Fn>
  void Probe(const RankedTokenSet& query, double threshold,
             ProbeScratch* scratch, Fn&& fn) const {
    PrepareScratch(scratch);
    auto& counts = scratch->counts;
    auto& touched = scratch->touched;
    const std::size_t q = query.size();
    const ScanCountIndex::LengthFilter filter =
        LengthBounds(measure_, threshold, q);
    const std::size_t known = KnownCount(query);
    const std::size_t prefix =
        q >= filter.min_overlap ? q - filter.min_overlap + 1 : 0;
    const std::size_t scan = std::min(known, prefix);
    scratch->prefix_skipped += known - scan;

    // Tabulate the positional bound over the admissible size window once:
    // the scan then reads needed[r - lo] instead of recomputing
    // PairMinOverlap (a sqrt under Cosine) on every first touch.
    const std::uint32_t lo = std::max(filter.min_size, min_set_size_);
    const std::uint32_t hi = std::min(filter.max_size, max_set_size_);
    auto& needed_by_size = scratch->needed_by_size;
    if (lo <= hi &&
        !(scratch->needed_measure == measure_ &&
          scratch->needed_threshold == threshold && scratch->needed_q == q &&
          scratch->needed_lo == lo && scratch->needed_hi == hi)) {
      needed_by_size.resize(hi - lo + 1);
      for (std::uint32_t r = lo; r <= hi; ++r) {
        needed_by_size[r - lo] = PairMinOverlap(measure_, threshold, q, r);
      }
      scratch->needed_measure = measure_;
      scratch->needed_threshold = threshold;
      scratch->needed_q = q;
      scratch->needed_lo = lo;
      scratch->needed_hi = hi;
    }
    const std::uint32_t* const ntab = needed_by_size.data();
    std::uint64_t* const last_pos = scratch->last_pos.data();
    std::uint64_t* const bits = scratch->query_bits.data();
    for (std::size_t i = 0; i < known; ++i) {
      bits[query[i] >> 6] |= std::uint64_t{1} << (query[i] & 63);
    }

    // Branchless merge-count over the scanned prefix lists (the CountList
    // deferred-push trick, plus one packed resume-point store per posting).
    // All pruning is deferred to the emission loop: the count at a
    // candidate's *last* touch plus the suffix room left there bounds its
    // overlap at least as tightly as any partial count mid-scan — every
    // extra match consumes one unit of room — so lazy filtering prunes a
    // superset of what eager per-touch checks would, with a per-posting
    // body that mispredicts nothing.
    for (std::size_t i = 0; i < scan; ++i) {
      const std::uint32_t rank = query[i];
      const Posting* p = postings_.data() + post_offsets_[rank];
      const Posting* end = postings_.data() + post_offsets_[rank + 1];
      const std::size_t len = static_cast<std::size_t>(end - p);
      touched.resize(touched.size() + len);
      std::uint32_t* top = touched.data() + touched.size() - len;
      const std::uint32_t* base = top;
      const std::uint64_t qpos = static_cast<std::uint64_t>(i) << 32;
      for (; p != end; ++p) {
        std::uint32_t& count = counts[p->id];
        *top = p->id;
        top += static_cast<std::size_t>(count == 0);
        ++count;
        last_pos[p->id] = qpos | p->pos;
      }
      touched.resize(touched.size() - len +
                     static_cast<std::size_t>(top - base));
    }

    for (std::uint32_t id : touched) {
      const std::uint32_t count = counts[id];
      counts[id] = 0;
      const std::uint32_t r = set_sizes_[id];
      if (r < filter.min_size || r > filter.max_size) {
        ++scratch->pruned_sets;
        continue;
      }
      const std::uint32_t needed = ntab[r - lo];
      const std::uint64_t resume = last_pos[id];
      const std::uint32_t qi = static_cast<std::uint32_t>(resume >> 32);
      const std::uint32_t ri = static_cast<std::uint32_t>(resume);
      if (count + Remaining(q, qi, r, ri) < needed) {
        ++scratch->positional_pruned;
        continue;
      }
      ++scratch->verify_calls;
      // Every shared token not counted during the scan ranks above the last
      // counted match in *both* sets (a rarer shared token would have been
      // met in the scanned prefix and the candidate's indexed prefix), so
      // the candidate's uncounted suffix intersected with the *whole* query
      // is exactly the suffix-vs-suffix overlap: the exact overlap is the
      // count plus the bitmap hits of the suffix.
      const std::uint32_t overlap =
          count + BitmapOverlap(set_tokens_.data() + set_offsets_[id] + ri + 1,
                                set_tokens_.data() + set_offsets_[id + 1],
                                bits, count, needed);
      if (overlap < needed) continue;
      fn(id, overlap, r);
    }

    for (std::size_t i = 0; i < known; ++i) {
      bits[query[i] >> 6] = 0;
    }
  }

  /// Probe under a rising threshold (the decreasing-threshold trick for kNN
  /// and top-K joins): `tau()` is re-read as the scan advances, and the
  /// admissible prefix, length window and positional bound tighten with it.
  /// Candidates are verified at first touch — their first shared token is
  /// provably the rarest one — and `fn(indexed_id, overlap, indexed_size)`
  /// fires immediately with the exact overlap, so the caller can raise tau
  /// mid-probe. Sound for any caller that only ever keeps candidates whose
  /// similarity is at least the value tau() returned at some earlier moment
  /// (tau must be non-decreasing within one probe).
  template <typename TauFn, typename Fn>
  void ProbeDecreasing(const RankedTokenSet& query, TauFn&& tau,
                       ProbeScratch* scratch, Fn&& fn) const {
    PrepareScratch(scratch);
    auto& counts = scratch->counts;
    auto& touched = scratch->touched;
    const std::size_t q = query.size();
    const std::size_t known = KnownCount(query);
    std::uint64_t* const bits = scratch->query_bits.data();
    for (std::size_t i = 0; i < known; ++i) {
      bits[query[i] >> 6] |= std::uint64_t{1} << (query[i] & 63);
    }
    double current = -1.0;
    ScanCountIndex::LengthFilter filter;
    std::size_t scan = known;
    for (std::size_t i = 0; i < scan; ++i) {
      const double t = tau();
      if (t != current) {
        current = t;
        filter = LengthBounds(measure_, current, q);
        const std::size_t prefix =
            q >= filter.min_overlap ? q - filter.min_overlap + 1 : 0;
        scan = std::min(known, prefix);
        if (i >= scan) break;
      }
      const std::uint32_t rank = query[i];
      const Posting* p = postings_.data() + post_offsets_[rank];
      const Posting* end = postings_.data() + post_offsets_[rank + 1];
      for (; p != end; ++p) {
        std::uint32_t& count = counts[p->id];
        if (count != 0) continue;  // kDone or kPruned: already decided
        touched.push_back(p->id);
        const std::uint32_t r = set_sizes_[p->id];
        if (r < filter.min_size || r > filter.max_size) {
          count = kPruned;
          ++scratch->pruned_sets;
          continue;
        }
        const std::uint32_t needed = PairMinOverlap(measure_, current, q, r);
        if (1 + Remaining(q, i, r, p->pos) < needed) {
          count = kPruned;
          ++scratch->positional_pruned;
          continue;
        }
        count = kDone;
        ++scratch->verify_calls;
        const std::uint32_t overlap =
            1 + BitmapOverlap(set_tokens_.data() + set_offsets_[p->id] +
                                  p->pos + 1,
                              set_tokens_.data() + set_offsets_[p->id + 1],
                              bits, 1, needed);
        if (overlap < needed) continue;
        fn(p->id, overlap, r);
      }
    }
    scratch->prefix_skipped += known - std::min(scan, known);
    for (std::uint32_t id : touched) counts[id] = 0;
    for (std::size_t i = 0; i < known; ++i) {
      bits[query[i] >> 6] = 0;
    }
  }

  /// Publishes and resets the scratch's counters (`sparse.prefix_skipped`,
  /// `sparse.positional_pruned`, `sparse.probe_pruned_sets`,
  /// `sparse.verify_calls`).
  static void FlushCounters(ProbeScratch* scratch);

  std::size_t NumSets() const { return set_sizes_.size(); }
  std::size_t SetSize(std::uint32_t id) const { return set_sizes_[id]; }
  SimilarityMeasure measure() const { return measure_; }
  double build_threshold() const { return threshold_; }

 private:
  static constexpr std::uint32_t kPruned = 0xffffffffu;
  static constexpr std::uint32_t kDone = 0xfffffffeu;

  /// Upper bound on further matches after matching query position qi against
  /// set position ri: only the shorter remaining suffix can contribute.
  static std::uint32_t Remaining(std::size_t query_size, std::size_t qi,
                                 std::uint32_t set_size, std::uint32_t ri) {
    const std::size_t from_query = query_size - qi - 1;
    const std::size_t from_set = set_size - ri - 1;
    return static_cast<std::uint32_t>(std::min(from_query, from_set));
  }

  /// Tokens of [rp, re) present in the query bitmap — by the both-suffixes
  /// invariant this equals the suffix-vs-suffix overlap exactly. The scan is
  /// branchless (one load + bit test per token, batched 32 at a time) with
  /// an inter-batch abort (an undercount) once `have` matches plus the whole
  /// remaining run cannot reach `needed` — a merge or galloping search over
  /// both suffixes walks the same memory with data-dependent branches and
  /// loses to this on the short interleaved suffixes verification sees.
  static std::uint32_t BitmapOverlap(const std::uint32_t* rp,
                                     const std::uint32_t* re,
                                     const std::uint64_t* bits,
                                     std::uint32_t have, std::uint32_t needed) {
    std::uint32_t found = 0;
    while (rp != re) {
      if (have + found + static_cast<std::uint32_t>(re - rp) < needed) {
        return found;
      }
      const std::uint32_t* batch = rp + std::min<std::ptrdiff_t>(re - rp, 32);
      for (; rp != batch; ++rp) {
        found += static_cast<std::uint32_t>((bits[*rp >> 6] >> (*rp & 63)) & 1u);
      }
    }
    return found;
  }

  void PrepareScratch(ProbeScratch* scratch) const {
    const std::size_t n = set_sizes_.size();
    scratch->counts.resize(n, 0);
    scratch->last_pos.resize(n);
    scratch->query_bits.resize((post_offsets_.size() + 62) / 64, 0);
    scratch->touched.clear();
  }

  /// Number of leading query tokens known to the rank map; the kUnknownRank
  /// sentinels sort to the tail and can never match an indexed token.
  std::size_t KnownCount(const RankedTokenSet& query) const {
    std::size_t n = query.size();
    while (n > 0 && query[n - 1] == TokenRankMap::kUnknownRank) --n;
    return n;
  }

  SimilarityMeasure measure_;
  double threshold_;
  TokenRankMap ranks_;
  std::vector<std::uint32_t> set_sizes_;
  // Size range of the indexed sets; Probe() clips the per-size positional
  // bound table to it (an empty index keeps min > max, so no table).
  std::uint32_t min_set_size_ = 0xffffffffu;
  std::uint32_t max_set_size_ = 0;

  // Full ranked sets in CSR form (set i is set_tokens_[set_offsets_[i] ..
  // set_offsets_[i+1])), read by the suffix verification.
  std::vector<std::uint32_t> set_offsets_;
  std::vector<std::uint32_t> set_tokens_;

  // Prefix postings in CSR form, keyed directly by rank (no hash lookup on
  // the probe path): list r is postings_[post_offsets_[r] ..
  // post_offsets_[r+1]), ids ascending.
  std::vector<std::uint32_t> post_offsets_;
  std::vector<Posting> postings_;
};

}  // namespace erb::sparsenn
