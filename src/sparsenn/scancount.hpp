// ScanCount (Li, Lu, Lu — ICDE 2008): an inverted index over token sets with
// merge-count lookups. Chosen by the paper because it stays efficient at the
// low similarity thresholds ER requires, unlike prefix-filter joins.
#pragma once

#include <cstdint>
#include <vector>

#include "sparsenn/tokenset.hpp"

namespace erb::sparsenn {

/// Inverted index over a collection of token sets.
class ScanCountIndex {
 public:
  /// Builds the index over `sets` (the collection being probed, i.e. the
  /// indexed side of the join).
  explicit ScanCountIndex(const std::vector<TokenSet>& sets);

  /// Overlap of `query` with every indexed set that shares at least one
  /// token: invokes `fn(indexed_id, overlap, indexed_size)` per such set.
  /// One merge-count scan over the query tokens' posting lists.
  template <typename Fn>
  void Probe(const TokenSet& query, Fn&& fn) const {
    touched_.clear();
    for (std::uint64_t token : query) {
      const auto* list = PostingList(token);
      if (list == nullptr) continue;
      for (std::uint32_t id : *list) {
        if (counts_[id] == 0) touched_.push_back(id);
        ++counts_[id];
      }
    }
    for (std::uint32_t id : touched_) {
      fn(id, counts_[id], set_sizes_[id]);
      counts_[id] = 0;
    }
  }

  std::size_t NumSets() const { return set_sizes_.size(); }
  std::size_t SetSize(std::uint32_t id) const { return set_sizes_[id]; }

 private:
  const std::vector<std::uint32_t>* PostingList(std::uint64_t token) const;

  // Open-addressed token -> posting-list map, laid out for probe locality.
  struct Slot {
    std::uint64_t token = 0;
    std::uint32_t list_index = 0;
    bool used = false;
  };
  std::vector<Slot> slots_;
  std::vector<std::vector<std::uint32_t>> posting_lists_;
  std::vector<std::uint32_t> set_sizes_;

  // Probe scratch (counts per indexed set + dirty list); mutable so Probe can
  // stay const for callers holding a const index.
  mutable std::vector<std::uint32_t> counts_;
  mutable std::vector<std::uint32_t> touched_;
};

}  // namespace erb::sparsenn
