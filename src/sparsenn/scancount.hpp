// ScanCount (Li, Lu, Lu — ICDE 2008): an inverted index over token sets with
// merge-count lookups. Chosen by the paper because it stays efficient at the
// low similarity thresholds ER requires, unlike prefix-filter joins.
#pragma once

#include <cstdint>
#include <vector>

#include "sparsenn/tokenset.hpp"

namespace erb::sparsenn {

/// Inverted index over a collection of token sets.
class ScanCountIndex {
 public:
  /// Builds the index over `sets` (the collection being probed, i.e. the
  /// indexed side of the join).
  explicit ScanCountIndex(const std::vector<TokenSet>& sets);

  /// Per-thread probe scratch: the merge-count array plus its dirty list.
  /// Parallel probe loops give each chunk its own scratch so concurrent
  /// Probe() calls against one shared index never touch common state.
  struct ProbeScratch {
    std::vector<std::uint32_t> counts;
    std::vector<std::uint32_t> touched;
  };

  /// Overlap of `query` with every indexed set that shares at least one
  /// token: invokes `fn(indexed_id, overlap, indexed_size)` per such set.
  /// One merge-count scan over the query tokens' posting lists. Thread-safe
  /// as long as each concurrent caller passes its own scratch.
  template <typename Fn>
  void Probe(const TokenSet& query, ProbeScratch* scratch, Fn&& fn) const {
    auto& counts = scratch->counts;
    auto& touched = scratch->touched;
    counts.resize(set_sizes_.size(), 0);
    touched.clear();
    for (std::uint64_t token : query) {
      const auto* list = PostingList(token);
      if (list == nullptr) continue;
      for (std::uint32_t id : *list) {
        if (counts[id] == 0) touched.push_back(id);
        ++counts[id];
      }
    }
    for (std::uint32_t id : touched) {
      fn(id, counts[id], set_sizes_[id]);
      counts[id] = 0;
    }
  }

  /// Single-threaded convenience overload using the index's own scratch.
  template <typename Fn>
  void Probe(const TokenSet& query, Fn&& fn) const {
    Probe(query, &scratch_, std::forward<Fn>(fn));
  }

  std::size_t NumSets() const { return set_sizes_.size(); }
  std::size_t SetSize(std::uint32_t id) const { return set_sizes_[id]; }

 private:
  const std::vector<std::uint32_t>* PostingList(std::uint64_t token) const;

  // Open-addressed token -> posting-list map, laid out for probe locality.
  struct Slot {
    std::uint64_t token = 0;
    std::uint32_t list_index = 0;
    bool used = false;
  };
  std::vector<Slot> slots_;
  std::vector<std::vector<std::uint32_t>> posting_lists_;
  std::vector<std::uint32_t> set_sizes_;

  // Scratch for the single-threaded Probe overload; mutable so Probe can
  // stay const for callers holding a const index.
  mutable ProbeScratch scratch_;
};

}  // namespace erb::sparsenn
