// ScanCount (Li, Lu, Lu — ICDE 2008): an inverted index over token sets with
// merge-count lookups. Chosen by the paper because it stays efficient at the
// low similarity thresholds ER requires, unlike prefix-filter joins.
//
// Posting lists live in CSR form: one contiguous `postings_` array plus an
// `offsets_` array, so a probe walks flat memory instead of chasing one heap
// allocation per token. List i holds the ids of the sets containing token i
// in ascending order (the two-pass build fills them by ascending set id),
// which pins the first-touch emission order of Probe() to the pre-CSR layout.
#pragma once

#include <cstdint>
#include <vector>

#include "sparsenn/tokenset.hpp"

namespace erb::sparsenn {

/// Inverted index over a collection of token sets.
class ScanCountIndex {
 public:
  /// Builds the index over `sets` (the collection being probed, i.e. the
  /// indexed side of the join).
  explicit ScanCountIndex(const std::vector<TokenSet>& sets);

  /// Per-thread probe scratch: the merge-count array plus its dirty list.
  /// Parallel probe loops give each chunk its own scratch so concurrent
  /// Probe() calls against one shared index never touch common state.
  /// ProbeFiltered() additionally accumulates its pruning counters here (one
  /// relaxed-atomic flush per chunk instead of two per probe); call
  /// FlushCounters() when the chunk is done.
  struct ProbeScratch {
    std::vector<std::uint32_t> counts;
    std::vector<std::uint32_t> touched;
    // ProbeFiltered working state: the query's admissible lists.
    std::vector<std::uint32_t> lists;
    std::uint64_t skipped_lists = 0;  ///< whole posting lists skipped
    std::uint64_t pruned_sets = 0;    ///< candidate sets pruned at first touch
  };

  /// Similarity-aware admissibility window for ProbeFiltered(), derived from
  /// the query size and the join threshold (see LengthBounds in joins.hpp):
  /// only indexed sets with size in [min_size, max_size] can reach the
  /// threshold, and only with at least min_overlap shared tokens.
  struct LengthFilter {
    std::uint32_t min_size = 0;
    std::uint32_t max_size = 0xffffffffu;
    std::uint32_t min_overlap = 1;
  };

  /// Overlap of `query` with every indexed set that shares at least one
  /// token: invokes `fn(indexed_id, overlap, indexed_size)` per such set.
  /// One merge-count scan over the query tokens' posting lists. Thread-safe
  /// as long as each concurrent caller passes its own scratch.
  template <typename Fn>
  void Probe(const TokenSet& query, ProbeScratch* scratch, Fn&& fn) const {
    auto& counts = scratch->counts;
    auto& touched = scratch->touched;
    counts.resize(set_sizes_.size(), 0);
    touched.clear();
    for (std::uint64_t token : query) {
      const std::uint32_t list = FindList(token);
      if (list == kNoList) continue;
      CountList(postings_.data() + offsets_[list],
                postings_.data() + offsets_[list + 1], counts, touched);
    }
    for (std::uint32_t id : touched) {
      fn(id, counts[id], set_sizes_[id]);
      counts[id] = 0;
    }
  }

  /// Single-threaded convenience overload using the index's own scratch.
  template <typename Fn>
  void Probe(const TokenSet& query, Fn&& fn) const {
    Probe(query, &scratch_, std::forward<Fn>(fn));
  }

  /// Probe() restricted to indexed sets that can reach a join threshold:
  /// whole lists are skipped when no member's size falls inside the filter
  /// window (per-list size ranges are precomputed at build time), individual
  /// sets are dropped at first touch when their size is outside the window
  /// or too few query tokens remain to reach min_overlap, and `fn` only
  /// fires for overlap >= min_overlap. The filter must be sound for the
  /// caller's predicate (it only skips work, the exact similarity test still
  /// decides), so the surviving calls are exactly the qualifying ones.
  template <typename Fn>
  void ProbeFiltered(const TokenSet& query, const LengthFilter& filter,
                     ProbeScratch* scratch, Fn&& fn) const {
    auto& counts = scratch->counts;
    auto& touched = scratch->touched;
    counts.resize(set_sizes_.size(), 0);
    touched.clear();
    std::uint64_t skipped = 0, pruned = 0;
    bool any_pruned = false;

    // Resolve the query's tokens to admissible lists; a list whose members'
    // sizes all fall outside the window holds no qualifying candidate (so
    // dropping it also never perturbs an emitted candidate's exact overlap).
    auto& lists = scratch->lists;
    lists.clear();
    for (std::uint64_t token : query) {
      const std::uint32_t list = FindList(token);
      if (list == kNoList) continue;
      if (list_max_size_[list] < filter.min_size ||
          list_min_size_[list] > filter.max_size) {
        ++skipped;
        continue;
      }
      lists.push_back(list);
    }

    // Walk layout: a set first touched at list position p can overlap at
    // most the num_lists - p lists from p on, so only the first
    // num_lists - min_overlap + 1 lists (the prefix) can start a qualifying
    // candidate. Tail lists merely extend counts of already-tracked sets:
    // no pushes, no size checks, and sets living only in tail lists are
    // never tracked, never reset, never scanned at emission. Both loops are
    // branchless (CountList's deferred-push trick, and an unconditional
    // add of the comparison bit in the tail): the touched/untouched mix in
    // a posting list is data-dependent, and on a merge-count whose counts
    // array lives in L1 the mispredict stalls dominate the walk.
    const std::size_t num_lists = lists.size();
    const std::size_t prefix = num_lists >= filter.min_overlap
                                   ? num_lists - filter.min_overlap + 1
                                   : 0;

    for (std::size_t i = 0; i < num_lists; ++i) {
      const std::uint32_t list = lists[i];
      const std::uint32_t* id = postings_.data() + offsets_[list];
      const std::uint32_t* end = postings_.data() + offsets_[list + 1];
      if (i < prefix) {
        if (filter.min_size <= list_min_size_[list] &&
            list_max_size_[list] <= filter.max_size) {
          // Every member admissible: the unfiltered merge-count loop. A set
          // marked kPruned is never in such a list (its size is outside the
          // window, every size here is inside), so no sentinel check.
          CountList(id, end, counts, touched);
        } else {
          for (; id != end; ++id) {
            std::uint32_t& count = counts[*id];
            if (count == kPruned) continue;
            if (count == 0) {
              const std::uint32_t size = set_sizes_[*id];
              if (size < filter.min_size || size > filter.max_size) {
                count = kPruned;
                touched.push_back(*id);  // still needs the reset below
                ++pruned;
                any_pruned = true;
                continue;
              }
              touched.push_back(*id);
            }
            ++count;
          }
        }
      } else if (!any_pruned) {
        for (; id != end; ++id) {
          std::uint32_t& count = counts[*id];
          count += static_cast<std::uint32_t>(count != 0);
        }
      } else {
        for (; id != end; ++id) {
          std::uint32_t& count = counts[*id];
          count += static_cast<std::uint32_t>((count != 0) & (count != kPruned));
        }
      }
    }

    scratch->skipped_lists += skipped;
    scratch->pruned_sets += pruned;
    for (std::uint32_t id : touched) {
      const std::uint32_t count = counts[id];
      counts[id] = 0;
      if (count == kPruned || count < filter.min_overlap) continue;
      fn(id, count, set_sizes_[id]);
    }
  }

  /// Publishes and resets the scratch's pruning counters
  /// (`sparse.probe_skipped_lists`, `sparse.probe_pruned_sets`).
  static void FlushCounters(ProbeScratch* scratch);

  std::size_t NumSets() const { return set_sizes_.size(); }
  std::size_t SetSize(std::uint32_t id) const { return set_sizes_[id]; }
  std::size_t NumTokens() const { return offsets_.size() - 1; }

 private:
  /// Sentinel in ProbeScratch::counts marking a set dropped by the filter
  /// (no real overlap reaches it: overlaps are bounded by the query size).
  static constexpr std::uint32_t kPruned = 0xffffffffu;
  static constexpr std::uint32_t kNoList = 0xffffffffu;

  // Open-addressed token -> list map, laid out for probe locality. The table
  // grows during the counting pass, so its final capacity is set by the
  // number of distinct tokens, not total token occurrences.
  struct Slot {
    std::uint64_t token = 0;
    std::uint32_t list = 0;
    bool used = false;
  };

  /// The list of `token`, inserting (and growing the table) if absent.
  std::uint32_t InsertToken(std::uint64_t token);
  /// The list of `token`, or kNoList.
  std::uint32_t FindList(std::uint64_t token) const;
  void Rehash(std::size_t capacity);

  /// Merge-counts one posting list: increments counts and appends first
  /// touches to `touched` in first-touch order. The push is branchless —
  /// every id is written to the next free slot, and the slot is only kept
  /// (top advanced) when the count was zero — because whether a posting's
  /// set is already touched is data-dependent: a compare-and-branch here
  /// mispredicts often enough to dominate an L1-resident merge-count.
  static void CountList(const std::uint32_t* id, const std::uint32_t* end,
                        std::vector<std::uint32_t>& counts,
                        std::vector<std::uint32_t>& touched) {
    const std::size_t len = static_cast<std::size_t>(end - id);
    touched.resize(touched.size() + len);
    std::uint32_t* top = touched.data() + touched.size() - len;
    const std::uint32_t* base = top;
    for (; id != end; ++id) {
      std::uint32_t& count = counts[*id];
      *top = *id;
      top += static_cast<std::size_t>(count == 0);
      ++count;
    }
    touched.resize(touched.size() - len + static_cast<std::size_t>(top - base));
  }

  std::vector<Slot> slots_;
  std::size_t distinct_tokens_ = 0;

  // CSR postings: list i is postings_[offsets_[i] .. offsets_[i+1]), ids
  // ascending. list_{min,max}_size_[i] bound the member sets' sizes, enabling
  // whole-list skips in ProbeFiltered().
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> postings_;
  std::vector<std::uint32_t> list_min_size_;
  std::vector<std::uint32_t> list_max_size_;
  std::vector<std::uint32_t> set_sizes_;

  // Scratch for the single-threaded Probe overload; mutable so Probe can
  // stay const for callers holding a const index.
  mutable ProbeScratch scratch_;
};

}  // namespace erb::sparsenn
