// Token-set representations for the sparse vector-based NN methods
// (Section IV-C): whitespace tokens or character n-grams, as a set or a
// multiset (duplicate tokens disambiguated by an occurrence counter).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_dict.hpp"
#include "core/entity.hpp"

namespace erb::sparsenn {

/// The 10 representation models of Table IV.
enum class TokenModel {
  kT1G,   ///< whitespace tokens, set semantics
  kT1GM,  ///< whitespace tokens, multiset
  kC2G, kC2GM,
  kC3G, kC3GM,
  kC4G, kC4GM,
  kC5G, kC5GM,
};

std::string_view ModelName(TokenModel model);

/// True for the multiset variants (M-suffixed).
bool IsMultiset(TokenModel model);

/// Character n-gram length of a CnG model; 0 for the T1G variants.
int ModelGramLength(TokenModel model);

/// A tokenized entity: 64-bit token hashes, sorted, with multiset occurrence
/// counters folded into the hash (the {a,a,b} -> {a1,a2,b1} construction).
using TokenSet = std::vector<std::uint64_t>;

/// Builds the token set of `text` under `model`, optionally after cleaning
/// (stop-word removal + Porter stemming). Character n-grams are taken over
/// the cleaned, space-joined text so they capture word boundaries.
///
/// Token identity is the 64-bit FNV-1a hash of the gram. Two *distinct*
/// grams of one text that collide on it are detected (the build keeps the
/// gram bytes behind each hash) and disambiguated content-deterministically:
/// the colliding grams are ordered lexicographically, the smallest keeps the
/// base hash and every later one is re-hashed under a salt derived from the
/// base hash and its position in that order. The assignment depends only on
/// the text's content, never on gram encounter order, and every detected
/// collision is counter-tracked (`build.token_hash_collisions`), so a
/// TokenRankMap built over such sets can no longer merge two grams into one
/// rank silently. (Grams colliding *across* texts that never co-occur are
/// inherently undetectable without a global dictionary; the counter is the
/// audit trail for how often the 2^-64 event fires at all.)
TokenSet BuildTokenSet(std::string_view text, TokenModel model, bool clean);

/// Hash function over gram bytes; injectable for collision testing.
using TokenHashFn = std::uint64_t (*)(std::string_view);

/// BuildTokenSet under an explicit gram hash — the seam the collision
/// unit tests use to force same-hash/distinct-gram inputs deterministically.
TokenSet BuildTokenSet(std::string_view text, TokenModel model, bool clean,
                       TokenHashFn hash);

/// Token sets of one dataset side under a schema mode.
std::vector<TokenSet> BuildSideTokenSets(const core::Dataset& dataset, int side,
                                         core::SchemaMode mode, TokenModel model,
                                         bool clean);

/// A token set rewritten into global-frequency rank space: each element is
/// the rank of a token under a TokenRankMap, sorted ascending, so the rarest
/// tokens lead the set. Tokens unknown to the map all carry
/// TokenRankMap::kUnknownRank and therefore sit at the tail; duplicates are
/// possible only among those sentinels (ranks of known tokens are unique),
/// which keeps the set's cardinality equal to the source TokenSet's.
using RankedTokenSet = std::vector<std::uint32_t>;

/// Global-frequency token order for prefix filtering (the PPJoin-family
/// convention): tokens of the indexed collection ranked by ascending document
/// frequency, ties broken by ascending token id (the 64-bit hash), so the
/// order is deterministic and rare tokens get the lowest ranks.
class TokenRankMap {
 public:
  /// Rank carried by tokens absent from the collection the map was built on.
  static constexpr std::uint32_t kUnknownRank = 0xffffffffu;

  /// Builds the rank order over the distinct tokens of `sets`.
  explicit TokenRankMap(const std::vector<TokenSet>& sets);

  /// Number of distinct ranked tokens; every known rank is < NumRanked().
  std::uint32_t NumRanked() const { return num_ranked_; }

  /// The rank of `token`, or kUnknownRank.
  std::uint32_t Rank(std::uint64_t token) const;

  /// Rewrites `set` into rank space (sorted ascending, rarest first).
  RankedTokenSet Remap(const TokenSet& set) const;

 private:
  std::uint32_t num_ranked_ = 0;
  // Flat robin-hood token -> rank map (power-of-two capacity, load <= 1/2),
  // the same table ScanCountIndex uses for its token dictionary.
  TokenDict ranks_;
};

/// Set-similarity measures of Section IV-C.
enum class SimilarityMeasure { kCosine, kDice, kJaccard };

std::string_view MeasureName(SimilarityMeasure measure);

/// Similarity from overlap and set sizes; all measures map to [0, 1].
double SetSimilarity(SimilarityMeasure measure, std::size_t overlap,
                     std::size_t size_a, std::size_t size_b);

}  // namespace erb::sparsenn
