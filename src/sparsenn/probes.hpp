// Shared probe machinery of the sparse joins: the parallel probe driver, the
// per-filter-mode probe functors, and the kNN distinct-value selection.
//
// Extracted from joins.cpp so the shard-partitioned pipeline (src/shard/) can
// run the *same* probes against per-shard indexes: byte-identical sharded
// results depend on every per-pair decision — similarity arguments, filter
// bounds, tie ordering, the distinct-value cut — being literally the same
// code, not a re-implementation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "core/candidates.hpp"
#include "core/entity.hpp"
#include "sparsenn/scancount.hpp"
#include "sparsenn/tokenset.hpp"

namespace erb::sparsenn {

/// \brief One scored probe result: an indexed entity and its exact similarity
///        to the probing query.
using ScoredMatch = std::pair<core::EntityId, double>;

/// \brief Probes the index with every query set in parallel and folds the
///        scored matches into one accumulator per chunk.
///
/// `probe(index, query, scratch, matches)` fills the (indexed_id, similarity)
/// matches of one query, `collect(query_id, matches, acc)` consumes them, and
/// `merge` folds the chunk accumulators in ascending chunk order (so the
/// result is deterministic at any thread count). Each chunk owns its probe
/// scratch; any pruning counters the probe accumulated are flushed once per
/// chunk. Works against either index flavour: `Index` only has to provide
/// ProbeScratch and a static FlushCounters, and `QuerySet` has to match what
/// the probe functor expects (TokenSet, or RankedTokenSet for the prefix
/// index).
template <typename Acc, typename Index, typename QuerySet, typename ProbeFn,
          typename Collect, typename Merge>
Acc ParallelProbe(const Index& index, const std::vector<QuerySet>& query_sets,
                  ProbeFn&& probe, Collect&& collect, Merge&& merge) {
  return ParallelMapReduce<Acc>(
      0, query_sets.size(), /*grain=*/0,
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        Acc acc;
        typename Index::ProbeScratch scratch;
        std::vector<ScoredMatch> matches;
        for (std::size_t q = chunk_begin; q < chunk_end; ++q) {
          matches.clear();
          probe(index, query_sets[q], &scratch, &matches);
          collect(static_cast<core::EntityId>(q), matches, acc);
        }
        Index::FlushCounters(&scratch);
        return acc;
      },
      merge);
}

/// \brief The unfiltered probe: every indexed set sharing at least one token.
struct ProbeAll {
  SimilarityMeasure measure;  ///< similarity to score surviving pairs with

  void operator()(const ScanCountIndex& index, const TokenSet& query,
                  ScanCountIndex::ProbeScratch* scratch,
                  std::vector<ScoredMatch>* matches) const {
    index.Probe(query, scratch,
                [&](std::uint32_t id, std::uint32_t overlap,
                    std::uint32_t indexed_size) {
                  matches->emplace_back(
                      id, SetSimilarity(measure, overlap, query.size(),
                                        indexed_size));
                });
  }
};

/// \brief The length-filtered probe for a fixed similarity threshold: skips
///        posting lists and candidate sets that cannot reach it (see
///        LengthBounds).
struct ProbeWithLengthFilter {
  SimilarityMeasure measure;  ///< similarity to score surviving pairs with
  double threshold;           ///< the join threshold the filter is sound for

  void operator()(const ScanCountIndex& index, const TokenSet& query,
                  ScanCountIndex::ProbeScratch* scratch,
                  std::vector<ScoredMatch>* matches) const {
    const ScanCountIndex::LengthFilter filter =
        LengthBounds(measure, threshold, query.size());
    index.ProbeFiltered(query, filter, scratch,
                        [&](std::uint32_t id, std::uint32_t overlap,
                            std::uint32_t indexed_size) {
                          matches->emplace_back(
                              id, SetSimilarity(measure, overlap, query.size(),
                                                indexed_size));
                        });
  }
};

/// \brief The prefix-filtered probe for a fixed similarity threshold: prefix,
///        positional and length filters over the global-frequency order,
///        bitmap suffix verification for survivors (see PrefixScanCountIndex).
struct ProbePrefixEpsilon {
  SimilarityMeasure measure;  ///< similarity to score surviving pairs with
  double threshold;           ///< probe threshold (>= the index's build threshold)

  void operator()(const PrefixScanCountIndex& index,
                  const RankedTokenSet& query,
                  PrefixScanCountIndex::ProbeScratch* scratch,
                  std::vector<ScoredMatch>* matches) const {
    index.Probe(query, threshold, scratch,
                [&](std::uint32_t id, std::uint32_t overlap,
                    std::uint32_t indexed_size) {
                  matches->emplace_back(
                      id, SetSimilarity(measure, overlap, query.size(),
                                        indexed_size));
                });
  }
};

/// \brief Tracker for the running k-th *distinct* similarity of one query.
///
/// `values` holds at most k distinct similarities, descending. tau() is the
/// threshold the k-th of them sets — 0 until k distinct values exist, after
/// which any pair below it can no longer enter the kNN result.
struct DistinctTopK {
  std::vector<double> values;  ///< at most k distinct similarities, descending
  std::size_t k = 0;           ///< the kNN parameter

  explicit DistinctTopK(std::size_t k_) : k(k_) { values.reserve(k_); }

  double tau() const { return values.size() == k ? values.back() : 0.0; }

  void Offer(double sim) {
    auto it = std::lower_bound(values.begin(), values.end(), sim,
                               std::greater<double>());
    if (it != values.end() && *it == sim) return;
    if (values.size() < k) {
      values.insert(it, sim);
    } else if (it != values.end()) {
      values.insert(it, sim);
      values.pop_back();
    }
  }
};

/// \brief The decreasing-threshold kNN probe: the running k-th distinct
///        similarity bounds the admissible prefix, length window and
///        positional filter, all of which tighten as matches accumulate.
///
/// Emits every pair whose similarity was at or above the bound when it was
/// verified — a superset of the final kNN selection that provably contains
/// every pair the unfiltered probe's selection would keep, so the shared
/// collector yields identical candidates.
struct ProbePrefixKnn {
  SimilarityMeasure measure;  ///< similarity to score surviving pairs with
  std::size_t k;              ///< the kNN parameter bounding the threshold

  void operator()(const PrefixScanCountIndex& index,
                  const RankedTokenSet& query,
                  PrefixScanCountIndex::ProbeScratch* scratch,
                  std::vector<ScoredMatch>* matches) const {
    DistinctTopK top(k);
    index.ProbeDecreasing(
        query, [&] { return top.tau(); }, scratch,
        [&](std::uint32_t id, std::uint32_t overlap,
            std::uint32_t indexed_size) {
          const double sim = SetSimilarity(measure, overlap, query.size(),
                                           indexed_size);
          if (sim < top.tau()) return;
          top.Offer(sim);
          matches->emplace_back(id, sim);
        });
  }
};

/// \brief The hybrid probe: pairs matter if they beat the join threshold *or*
///        could sit among the query's k nearest, so the admissible bound is
///        the smaller of the two — min(threshold, running k-th distinct
///        similarity).
struct ProbePrefixHybrid {
  SimilarityMeasure measure;  ///< similarity to score surviving pairs with
  double threshold;           ///< the hybrid's ε threshold
  std::size_t k;              ///< the hybrid's fallback kNN parameter

  void operator()(const PrefixScanCountIndex& index,
                  const RankedTokenSet& query,
                  PrefixScanCountIndex::ProbeScratch* scratch,
                  std::vector<ScoredMatch>* matches) const {
    DistinctTopK top(k);
    const double cap = std::max(threshold, 0.0);
    const auto tau = [&] { return std::min(cap, top.tau()); };
    index.ProbeDecreasing(
        query, tau, scratch,
        [&](std::uint32_t id, std::uint32_t overlap,
            std::uint32_t indexed_size) {
          const double sim = SetSimilarity(measure, overlap, query.size(),
                                           indexed_size);
          if (sim < tau()) return;
          top.Offer(sim);
          matches->emplace_back(id, sim);
        });
  }
};

/// \brief Sorts a query's scored matches into the kNN emission order:
///        descending similarity, ties by ascending entity id, so the
///        pre-Finalize order is pinned, not left to the sort implementation.
/// \param matches The query's scored matches; sorted in place.
inline void SortMatchesDesc(std::vector<ScoredMatch>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const ScoredMatch& a, const ScoredMatch& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
}

/// \brief The kNN distinct-value cut over matches already in the kNN order
///        (descending similarity, ascending id within ties): invokes
///        `emit(id, sim)` for the entities carrying the k highest distinct
///        similarity values; equidistant entities beyond position k are all
///        kept, per the paper's definition.
/// \param matches Scored matches sorted by SortMatchesDesc (or merged from
///        runs in that order); any range whose elements destructure to
///        (id, similarity) — ScoredMatch pairs or the shard layer's structs.
/// \param k The kNN parameter; k <= 0 emits nothing.
/// \param emit Callable `emit(EntityId, double)`.
template <typename Matches, typename Emit>
void EmitTopKDistinct(const Matches& matches, int k, Emit&& emit) {
  int distinct_values = 0;
  double previous = -1.0;
  for (const auto& [id, sim] : matches) {
    if (sim != previous) {
      if (++distinct_values > k) break;
      previous = sim;
    }
    emit(id, sim);
  }
}

/// \brief SortMatchesDesc + EmitTopKDistinct: the full kNN selection over one
///        query's scored matches.
/// \param matches The query's scored matches; sorted in place.
/// \param k The kNN parameter; k <= 0 emits nothing.
/// \param emit Callable `emit(EntityId, double)`.
template <typename Emit>
void SelectKnnMatches(std::vector<ScoredMatch>* matches, int k, Emit&& emit) {
  SortMatchesDesc(matches);
  EmitTopKDistinct(*matches, k, std::forward<Emit>(emit));
}

/// \brief Bounded min-heap insert keeping the k largest similarities (the
///        global top-K pass-1 accumulator; front() is the running K-th best).
/// \param heap The min-heap (std::greater order).
/// \param k Heap capacity.
/// \param sim The similarity to offer.
inline void OfferTopK(std::vector<double>* heap, std::size_t k, double sim) {
  if (heap->size() < k) {
    heap->push_back(sim);
    std::push_heap(heap->begin(), heap->end(), std::greater<>());
  } else if (!heap->empty() && sim > heap->front()) {
    std::pop_heap(heap->begin(), heap->end(), std::greater<>());
    heap->back() = sim;
    std::push_heap(heap->begin(), heap->end(), std::greater<>());
  }
}

/// \brief Adds the pair in canonical (E1, E2) order given the join direction.
/// \param candidates The candidate set to append to.
/// \param reverse True when the join indexed E2 and probed with E1.
/// \param query The probing entity's id.
/// \param indexed The matched indexed entity's id.
inline void EmitPair(core::CandidateSet* candidates, bool reverse,
                     core::EntityId query, core::EntityId indexed) {
  if (reverse) {
    candidates->Add(query, indexed);
  } else {
    candidates->Add(indexed, query);
  }
}

}  // namespace erb::sparsenn
