// Hashing primitives shared by all erbench modules.
//
// Everything here is deterministic across runs and platforms: the benchmark
// harness relies on bit-identical dataset generation and LSH behaviour when
// re-running an experiment, so std::hash (implementation defined) is never
// used for anything that influences results.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace erb {

/// 64-bit FNV-1a. Stable, fast for short keys (tokens, q-grams).
constexpr std::uint64_t FnvHash64(std::string_view data,
                                  std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 finalizer: turns a counter or weak hash into a well-mixed value.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two hashes (order dependent), boost::hash_combine style but 64-bit.
constexpr std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Hash of a string under one of `n` independent hash functions, used by
/// MinHash: seeding FNV with a mixed function index yields functions that
/// behave independently for the Jaccard estimation purposes of LSH.
inline std::uint64_t SeededHash(std::string_view data, std::uint64_t function_index) {
  return FnvHash64(data, SplitMix64(function_index ^ 0xa0761d6478bd642fULL));
}

}  // namespace erb
