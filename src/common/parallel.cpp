#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/env.hpp"

namespace erb {
namespace {

// Set while a thread executes chunks of some region; nested regions started
// from such a thread run inline instead of re-entering the pool.
thread_local bool t_in_parallel_region = false;

// 0 = no override active.
std::atomic<std::size_t> g_thread_override{0};

std::size_t DefaultThreads() {
  static const std::size_t threads = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t fallback = static_cast<std::size_t>(hw == 0 ? 1 : hw);
    return ParseThreadCount(std::getenv("ERB_THREADS"), fallback);
  }();
  return threads;
}

// The global pool. Workers sleep between regions; one region runs at a time
// (top-level regions from distinct threads serialize on region_mu_). The
// singleton leaks deliberately so detached workers never race a static
// destructor at process exit.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool();
    return *pool;
  }

  // Runs fn(chunk) for every chunk in [0, num_chunks) using up to `threads`
  // threads (the caller plus threads - 1 workers). fn must not throw.
  void Run(std::size_t num_chunks, const std::function<void(std::size_t)>& fn,
           std::size_t threads) {
    std::lock_guard<std::mutex> region_lock(region_mu_);
    EnsureWorkers(threads - 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_ = &fn;
      num_chunks_ = num_chunks;
      next_chunk_.store(0, std::memory_order_relaxed);
      slots_ = std::min(threads - 1, workers_.size());
    }
    work_cv_.notify_all();

    // The caller participates as one of the region's threads.
    t_in_parallel_region = true;
    DrainChunks(fn, num_chunks);
    t_in_parallel_region = false;

    std::unique_lock<std::mutex> lock(mu_);
    task_ = nullptr;  // no further workers may join this region
    slots_ = 0;
    done_cv_.wait(lock, [this] { return active_ == 0; });
  }

 private:
  ThreadPool() = default;

  static void DrainChunks(const std::function<void(std::size_t)>& fn,
                          std::size_t num_chunks) {
    ThreadPool& pool = Instance();
    for (;;) {
      const std::size_t chunk =
          pool.next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      fn(chunk);
    }
  }

  void EnsureWorkers(std::size_t wanted) {
    std::lock_guard<std::mutex> lock(mu_);
    while (workers_.size() < wanted) {
      workers_.emplace_back([this] { WorkerLoop(); });
      workers_.back().detach();
    }
  }

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      work_cv_.wait(lock, [this] { return task_ != nullptr && slots_ > 0; });
      --slots_;
      ++active_;
      const std::function<void(std::size_t)>* task = task_;
      const std::size_t num_chunks = num_chunks_;
      lock.unlock();

      t_in_parallel_region = true;
      DrainChunks(*task, num_chunks);
      t_in_parallel_region = false;

      lock.lock();
      if (--active_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex region_mu_;  // serializes top-level regions

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;

  // Current region, guarded by mu_ (next_chunk_ is claimed lock-free).
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t num_chunks_ = 0;
  std::atomic<std::size_t> next_chunk_{0};
  std::size_t slots_ = 0;   // workers still allowed to join the region
  std::size_t active_ = 0;  // workers currently inside the region
};

}  // namespace

std::size_t NumThreads() {
  const std::size_t override_threads =
      g_thread_override.load(std::memory_order_relaxed);
  return override_threads != 0 ? override_threads : DefaultThreads();
}

void SetNumThreads(std::size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

std::size_t ParseThreadCount(const char* text, std::size_t fallback) {
  // Empty input ("ERB_THREADS=") is treated as unset, like the other knobs;
  // everything else follows the shared ParseEnvCount contract (stderr
  // warning on malformed or out-of-range values).
  return ParseEnvCount("ERB_THREADS", text, 1, kMaxThreadOverride, fallback);
}

ScopedThreadLimit::ScopedThreadLimit(std::size_t n)
    : previous_(g_thread_override.load(std::memory_order_relaxed)) {
  g_thread_override.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

ScopedThreadLimit::~ScopedThreadLimit() {
  g_thread_override.store(previous_, std::memory_order_relaxed);
}

namespace parallel_internal {

std::size_t EffectiveGrain(std::size_t n, std::size_t grain) {
  // 64 chunks by default: enough slack for dynamic load balancing at any
  // realistic core count while keeping per-chunk scratch costs negligible.
  constexpr std::size_t kDefaultChunks = 64;
  if (grain == 0) grain = (n + kDefaultChunks - 1) / kDefaultChunks;
  return std::max<std::size_t>(1, grain);
}

void RunChunks(std::size_t num_chunks,
               const std::function<void(std::size_t)>& fn) {
  if (num_chunks == 0) return;
  const std::size_t threads = std::min(NumThreads(), num_chunks);
  if (threads <= 1 || num_chunks <= 1 || t_in_parallel_region) {
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) fn(chunk);
    return;
  }

  // Capture exceptions per chunk; rethrow the lowest-indexed one so error
  // behaviour matches the sequential ascending scan. Once a chunk throws,
  // not-yet-started chunks are skipped (best effort).
  std::vector<std::exception_ptr> errors(num_chunks);
  std::atomic<bool> failed{false};
  const std::function<void(std::size_t)> guarded = [&](std::size_t chunk) {
    if (failed.load(std::memory_order_relaxed)) return;
    try {
      fn(chunk);
    } catch (...) {
      errors[chunk] = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };
  ThreadPool::Instance().Run(num_chunks, guarded, threads);
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace parallel_internal

}  // namespace erb
