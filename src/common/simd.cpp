#include "common/simd.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/trace.hpp"

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define ERB_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define ERB_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace erb::simd {
namespace {

// Folds the 8 accumulator lanes in the canonical tree. Every backend must
// reduce through exactly this association order.
inline float FoldLanes(const float l[kLanes]) {
  return ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
}

#if ERB_SIMD_HAVE_AVX2

// Horizontal sum of one 8-lane vector in the FoldLanes association order:
// adding the 128-bit halves pairs lane j with lane j+4, movehl pairs the
// results two apart, and the final scalar add joins the remaining two.
__attribute__((target("avx2"))) inline float HsumAvx2(__m256 v) {
  const __m128 half = _mm_add_ps(_mm256_castps256_ps128(v),
                                 _mm256_extractf128_ps(v, 1));
  const __m128 pair = _mm_add_ps(half, _mm_movehl_ps(half, half));
  const __m128 one = _mm_add_ss(pair, _mm_shuffle_ps(pair, pair, 1));
  return _mm_cvtss_f32(one);
}

// mul + add rather than FMA: the fused rounding would diverge from the
// scalar backend's lanes and break the cross-backend parity contract.
__attribute__((target("avx2"))) float DotAvx2(const float* a, const float* b,
                                              std::size_t n) {
  const std::size_t main = n - n % kLanes;
  __m256 acc = _mm256_setzero_ps();
  for (std::size_t i = 0; i < main; i += kLanes) {
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                           _mm256_loadu_ps(b + i)));
  }
  float total = HsumAvx2(acc);
  for (std::size_t i = main; i < n; ++i) total += a[i] * b[i];
  return total;
}

__attribute__((target("avx2"))) float SquaredL2Avx2(const float* a,
                                                    const float* b,
                                                    std::size_t n) {
  const std::size_t main = n - n % kLanes;
  __m256 acc = _mm256_setzero_ps();
  for (std::size_t i = 0; i < main; i += kLanes) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
  }
  float total = HsumAvx2(acc);
  for (std::size_t i = main; i < n; ++i) {
    const float diff = a[i] - b[i];
    total += diff * diff;
  }
  return total;
}

__attribute__((target("avx2"))) void AxpyAvx2(float a, const float* x,
                                              float* y, std::size_t n) {
  const std::size_t main = n - n % kLanes;
  const __m256 va = _mm256_set1_ps(a);
  for (std::size_t i = 0; i < main; i += kLanes) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                             _mm256_mul_ps(va, _mm256_loadu_ps(x + i))));
  }
  for (std::size_t i = main; i < n; ++i) y[i] += a * x[i];
}

#endif  // ERB_SIMD_HAVE_AVX2

#if ERB_SIMD_HAVE_NEON

// Two 4-lane registers hold lanes 0..3 and 4..7; their sum pairs lane j with
// lane j+4 exactly like the AVX2 half-add, and the lane extracts finish in
// the FoldLanes order.
inline float HsumNeon(float32x4_t lo, float32x4_t hi) {
  const float32x4_t half = vaddq_f32(lo, hi);
  return (vgetq_lane_f32(half, 0) + vgetq_lane_f32(half, 2)) +
         (vgetq_lane_f32(half, 1) + vgetq_lane_f32(half, 3));
}

float DotNeon(const float* a, const float* b, std::size_t n) {
  const std::size_t main = n - n % kLanes;
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  for (std::size_t i = 0; i < main; i += kLanes) {
    acc0 = vaddq_f32(acc0, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    acc1 = vaddq_f32(acc1, vmulq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4)));
  }
  float total = HsumNeon(acc0, acc1);
  for (std::size_t i = main; i < n; ++i) total += a[i] * b[i];
  return total;
}

float SquaredL2Neon(const float* a, const float* b, std::size_t n) {
  const std::size_t main = n - n % kLanes;
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  for (std::size_t i = 0; i < main; i += kLanes) {
    const float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    const float32x4_t d1 = vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc0 = vaddq_f32(acc0, vmulq_f32(d0, d0));
    acc1 = vaddq_f32(acc1, vmulq_f32(d1, d1));
  }
  float total = HsumNeon(acc0, acc1);
  for (std::size_t i = main; i < n; ++i) {
    const float diff = a[i] - b[i];
    total += diff * diff;
  }
  return total;
}

void AxpyNeon(float a, const float* x, float* y, std::size_t n) {
  const std::size_t main = n - n % 4;
  const float32x4_t va = vdupq_n_f32(a);
  for (std::size_t i = 0; i < main; i += 4) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i),
                               vmulq_f32(va, vld1q_f32(x + i))));
  }
  for (std::size_t i = main; i < n; ++i) y[i] += a * x[i];
}

#endif  // ERB_SIMD_HAVE_NEON

// The active backend, resolved lazily from ERB_SIMD. -1 = unresolved.
// Resolution is idempotent, so a racing double-init is harmless.
std::atomic<int> g_active{-1};

Kind ResolveRequest(Kind request) {
  if (request != Kind::kAuto) {
    if (KindSupported(request)) return request;
    std::fprintf(stderr,
                 "erbench: ERB_SIMD backend '%s' unavailable on this "
                 "build/CPU; falling back to auto\n",
                 std::string(KindName(request)).c_str());
  }
#if ERB_SIMD_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) return Kind::kAvx2;
#endif
#if ERB_SIMD_HAVE_NEON
  return Kind::kNeon;
#endif
  return Kind::kScalar;
}

Kind Resolved() {
  int kind = g_active.load(std::memory_order_relaxed);
  if (kind < 0) {
    const Kind request = ParseSimdKind(std::getenv("ERB_SIMD"), Kind::kAuto);
    kind = static_cast<int>(ResolveRequest(request));
    g_active.store(kind, std::memory_order_relaxed);
  }
  return static_cast<Kind>(kind);
}

}  // namespace

std::string_view KindName(Kind kind) {
  switch (kind) {
    case Kind::kAuto: return "auto";
    case Kind::kScalar: return "scalar";
    case Kind::kAvx2: return "avx2";
    case Kind::kNeon: return "neon";
  }
  return "unknown";
}

Kind ParseSimdKind(const char* text, Kind fallback) {
  if (text == nullptr) return Kind::kAuto;
  std::string value;
  for (const char* p = text; *p != '\0'; ++p) {
    if (!std::isspace(static_cast<unsigned char>(*p))) {
      value.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(*p))));
    }
  }
  if (value.empty() || value == "auto") return Kind::kAuto;
  if (value == "scalar") return Kind::kScalar;
  if (value == "avx2") return Kind::kAvx2;
  if (value == "neon") return Kind::kNeon;
  std::fprintf(stderr,
               "erbench: invalid ERB_SIMD value '%s' (want scalar|avx2|neon|"
               "auto); using %s\n",
               text, std::string(KindName(fallback)).c_str());
  return fallback;
}

bool KindSupported(Kind kind) {
  switch (kind) {
    case Kind::kAuto:
      return true;
    case Kind::kScalar:
      return true;
    case Kind::kAvx2:
#if ERB_SIMD_HAVE_AVX2
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Kind::kNeon:
#if ERB_SIMD_HAVE_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

Kind ActiveKind() { return Resolved(); }

void SetKind(Kind kind) {
  g_active.store(static_cast<int>(ResolveRequest(kind)),
                 std::memory_order_relaxed);
}

ScopedSimdKind::ScopedSimdKind(Kind kind) : previous_(ActiveKind()) {
  SetKind(kind);
}

ScopedSimdKind::~ScopedSimdKind() {
  g_active.store(static_cast<int>(previous_), std::memory_order_relaxed);
}

void RecordDispatch() {
  obs::CounterAdd("simd.dispatch", 1);
  obs::GaugeSet("simd.kernel", static_cast<std::uint64_t>(ActiveKind()));
}

// The scalar backend is the reduction's definition, kept honestly scalar:
// without the attribute -O3 auto-vectorizes the lane loop, which keeps the
// same bits (lanes are independent chains) but would make ERB_SIMD=scalar a
// covert SSE build and the microbench baseline meaningless.
__attribute__((optimize("no-tree-vectorize")))
float DotScalar(const float* a, const float* b, std::size_t n) {
  const std::size_t main = n - n % kLanes;
  float lanes[kLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < main; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) lanes[j] += a[i + j] * b[i + j];
  }
  float total = FoldLanes(lanes);
  for (std::size_t i = main; i < n; ++i) total += a[i] * b[i];
  return total;
}

__attribute__((optimize("no-tree-vectorize")))
float SquaredL2Scalar(const float* a, const float* b, std::size_t n) {
  const std::size_t main = n - n % kLanes;
  float lanes[kLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < main; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) {
      const float diff = a[i + j] - b[i + j];
      lanes[j] += diff * diff;
    }
  }
  float total = FoldLanes(lanes);
  for (std::size_t i = main; i < n; ++i) {
    const float diff = a[i] - b[i];
    total += diff * diff;
  }
  return total;
}

__attribute__((optimize("no-tree-vectorize")))
void AxpyScalar(float a, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

float Dot(const float* a, const float* b, std::size_t n) {
  switch (Resolved()) {
#if ERB_SIMD_HAVE_AVX2
    case Kind::kAvx2: return DotAvx2(a, b, n);
#endif
#if ERB_SIMD_HAVE_NEON
    case Kind::kNeon: return DotNeon(a, b, n);
#endif
    default: return DotScalar(a, b, n);
  }
}

float SquaredL2(const float* a, const float* b, std::size_t n) {
  switch (Resolved()) {
#if ERB_SIMD_HAVE_AVX2
    case Kind::kAvx2: return SquaredL2Avx2(a, b, n);
#endif
#if ERB_SIMD_HAVE_NEON
    case Kind::kNeon: return SquaredL2Neon(a, b, n);
#endif
    default: return SquaredL2Scalar(a, b, n);
  }
}

void Axpy(float a, const float* x, float* y, std::size_t n) {
  switch (Resolved()) {
#if ERB_SIMD_HAVE_AVX2
    case Kind::kAvx2: AxpyAvx2(a, x, y, n); return;
#endif
#if ERB_SIMD_HAVE_NEON
    case Kind::kNeon: AxpyNeon(a, x, y, n); return;
#endif
    default: AxpyScalar(a, x, y, n); return;
  }
}

}  // namespace erb::simd
