// Runtime-dispatched dense float kernels: Dot, SquaredL2 and Axpy, the three
// primitives under every dense hot path (flat/partitioned kNN scans, LSH
// projections, the autoencoder forward/backward passes).
//
// Parity contract: every backend computes the SAME arithmetic expression in
// the SAME association order, so switching ERB_SIMD never changes a single
// bit of any score — and therefore never changes a candidate set. The
// canonical reduction strips the input across kLanes (8) accumulator lanes
// (lane j sums elements j, j+8, j+16, ...), folds the lanes in the fixed
// tree ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)), then adds the < kLanes tail
// elements sequentially. The AVX2 backend is that reduction verbatim (one
// 8-float vector of lanes, mul + add — deliberately no FMA, whose fused
// rounding would diverge from the scalar lanes); the scalar backend keeps 8
// explicit accumulators. Axpy is element-wise (no reduction), so it is
// trivially bit-identical across backends.
//
// Dispatch: ERB_SIMD environment variable — "scalar", "avx2", "neon" or
// "auto" (default). Auto picks the widest backend the CPU supports. A
// requested backend the build or CPU cannot provide, or junk input, warns on
// stderr and falls back to auto — the ParseThreadCount policy.
#pragma once

#include <cstddef>
#include <string_view>

namespace erb::simd {

/// Kernel backends. kAuto is a request, never an active kind.
enum class Kind { kAuto, kScalar, kAvx2, kNeon };

std::string_view KindName(Kind kind);

/// Parses an ERB_SIMD value. Null/empty/"auto" return kAuto; junk returns
/// `fallback` with a warning on stderr (mirrors ParseThreadCount).
Kind ParseSimdKind(const char* text, Kind fallback);

/// The backend the dispatched kernels are currently using: the active
/// override if set, else the ERB_SIMD request resolved against CPU support.
/// Never returns kAuto.
Kind ActiveKind();

/// Sets (any concrete kind or kAuto to re-resolve) the dispatch override.
/// An unsupported concrete kind falls back to auto resolution with a
/// warning. Not thread-safe against concurrent kernel calls — call between
/// parallel regions (tests, bench setup).
void SetKind(Kind kind);

/// True when this build + CPU can run the given backend.
bool KindSupported(Kind kind);

/// RAII dispatch override for tests: forces `kind` inside the scope and
/// restores the previous resolution on destruction.
class ScopedSimdKind {
 public:
  explicit ScopedSimdKind(Kind kind);
  ~ScopedSimdKind();

  ScopedSimdKind(const ScopedSimdKind&) = delete;
  ScopedSimdKind& operator=(const ScopedSimdKind&) = delete;

 private:
  Kind previous_;
};

/// Records the resolved backend into the observability layer: bumps the
/// `simd.dispatch` counter and sets the `simd.kernel` gauge to the active
/// Kind's enum value. Call sites are index constructors, so every traced
/// dense run carries the dispatch decision.
void RecordDispatch();

/// Accumulator lanes of the canonical reduction.
inline constexpr std::size_t kLanes = 8;

/// Dispatched kernels. `n` is the logical element count; inputs need no
/// alignment or padding (aligned rows just make the vector loads cheaper).
float Dot(const float* a, const float* b, std::size_t n);
float SquaredL2(const float* a, const float* b, std::size_t n);
/// y[i] += a * x[i] for i in [0, n).
void Axpy(float a, const float* x, float* y, std::size_t n);

/// Fixed backends, exposed so tests can pin parity against the dispatcher.
float DotScalar(const float* a, const float* b, std::size_t n);
float SquaredL2Scalar(const float* a, const float* b, std::size_t n);
void AxpyScalar(float a, const float* x, float* y, std::size_t n);

}  // namespace erb::simd
