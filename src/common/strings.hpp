// Small string helpers shared across modules. ASCII-oriented: the paper's
// datasets are predominantly English product/bibliographic text, and all
// tokenizers in the benchmark operate on byte-level case-folded text.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace erb {

/// Lower-cases ASCII letters in place; other bytes pass through.
void ToLowerInPlace(std::string* s);

/// Returns a lower-cased copy.
std::string ToLower(std::string_view s);

/// Splits on runs of whitespace; no empty tokens are produced.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Splits on a single character delimiter; keeps empty fields (CSV-ish use).
std::vector<std::string> SplitChar(std::string_view s, char delim);

/// Joins parts with the given separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` consists only of ASCII alphanumerics (used by token cleaning).
bool IsAlnum(std::string_view s);

/// Replaces every non-alphanumeric byte with a space, lower-cases the rest.
/// This is the canonical normalization applied before any tokenizer, mirroring
/// JedAI's default text preprocessing.
std::string NormalizeText(std::string_view s);

/// NormalizeText into a caller-owned buffer whose capacity persists across
/// calls — the allocation-avoiding form for per-entity loops.
void NormalizeTextInto(std::string_view s, std::string* out);

}  // namespace erb
