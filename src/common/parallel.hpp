// Deterministic parallel runtime: a lazily-initialized global thread pool
// plus the two loop primitives every parallelized kernel is built on.
//
// Determinism contract: the index range [begin, end) is statically cut into
// chunks whose boundaries depend only on the range and the grain — never on
// the thread count — and ParallelMapReduce merges the per-chunk accumulators
// in ascending chunk order. A run with 8 threads therefore produces exactly
// the same bytes as a run with 1 thread (or with the pool bypassed
// entirely), which is what lets the parallel kernels keep the paper's PC/PQ
// numbers bit-identical across machines.
//
// Pool sizing: ERB_THREADS environment variable if set, otherwise
// std::thread::hardware_concurrency(). Tests (and the bench --threads flag)
// override it with ScopedThreadLimit / SetNumThreads; the pool grows on
// demand when an override asks for more workers than were spawned so far.
//
// Nested parallel regions run inline on the calling worker: a tuning grid
// fanned across the pool does not oversubscribe when the joins it evaluates
// are themselves parallelized.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace erb {

/// Effective thread count used by the next parallel region: the active
/// override if one is set, else ERB_THREADS, else hardware_concurrency.
std::size_t NumThreads();

/// Sets (n >= 1) or clears (n == 0) the global thread-count override.
void SetNumThreads(std::size_t n);

/// Upper bound accepted for an ERB_THREADS override. A value above this is a
/// configuration error (e.g. LONG_MAX from a broken script), not a request
/// to actually spawn that many workers.
inline constexpr std::size_t kMaxThreadOverride = 4096;

/// Parses a thread-count override in the ERB_THREADS format: a positive
/// decimal integer in [1, kMaxThreadOverride], optionally surrounded by
/// ASCII whitespace. Null, empty, non-numeric, trailing-junk ("3abc"), zero,
/// negative and out-of-range inputs all return `fallback` (warning on stderr
/// for non-empty invalid input). A thin wrapper over the shared ParseEnvCount
/// helper (common/env.hpp), which the other counted knobs use directly.
std::size_t ParseThreadCount(const char* text, std::size_t fallback);

/// RAII thread-count override for tests: forces every parallel region inside
/// the scope to use exactly `n` threads, restoring the previous setting on
/// destruction.
class ScopedThreadLimit {
 public:
  explicit ScopedThreadLimit(std::size_t n);
  ~ScopedThreadLimit();

  ScopedThreadLimit(const ScopedThreadLimit&) = delete;
  ScopedThreadLimit& operator=(const ScopedThreadLimit&) = delete;

 private:
  std::size_t previous_;
};

namespace parallel_internal {

/// Chunk size for a range of `n` elements: the caller's grain, or (grain 0)
/// a fixed fan-out of kDefaultChunks chunks. Pure function of (n, grain) so
/// the chunk decomposition is identical at every thread count.
std::size_t EffectiveGrain(std::size_t n, std::size_t grain);

/// Executes fn(chunk_index) for every chunk in [0, num_chunks), distributing
/// chunks over the pool (work is claimed via an atomic counter; each chunk
/// runs exactly once). Exceptions are captured per chunk and the one from
/// the lowest-indexed throwing chunk is rethrown after the region completes.
/// Runs inline when only one thread is effective, the range has one chunk,
/// or the caller is itself a pool worker (nested region).
void RunChunks(std::size_t num_chunks, const std::function<void(std::size_t)>& fn);

}  // namespace parallel_internal

/// Parallel loop over [begin, end): `body(chunk_begin, chunk_end)` is invoked
/// once per chunk with disjoint sub-ranges covering the input in ascending
/// order of chunk index. `grain` is the maximum chunk length (0 = automatic).
/// The body owns any per-chunk scratch; chunk boundaries are independent of
/// the thread count.
template <typename Body>
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 Body&& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t g = parallel_internal::EffectiveGrain(n, grain);
  const std::size_t num_chunks = (n + g - 1) / g;
  parallel_internal::RunChunks(num_chunks, [&](std::size_t chunk) {
    const std::size_t b = begin + chunk * g;
    const std::size_t e = std::min(end, b + g);
    body(b, e);
  });
}

/// Deterministic map-reduce over [begin, end): `chunk_fn(chunk_begin,
/// chunk_end)` produces one private accumulator per chunk and
/// `merge(into, from)` folds them in ascending chunk order, so the result is
/// byte-identical regardless of how many threads executed the chunks.
/// Returns a default-constructed Acc for an empty range.
template <typename Acc, typename ChunkFn, typename MergeFn>
Acc ParallelMapReduce(std::size_t begin, std::size_t end, std::size_t grain,
                      ChunkFn&& chunk_fn, MergeFn&& merge) {
  if (end <= begin) return Acc{};
  const std::size_t n = end - begin;
  const std::size_t g = parallel_internal::EffectiveGrain(n, grain);
  const std::size_t num_chunks = (n + g - 1) / g;
  std::vector<Acc> results(num_chunks);
  parallel_internal::RunChunks(num_chunks, [&](std::size_t chunk) {
    const std::size_t b = begin + chunk * g;
    const std::size_t e = std::min(end, b + g);
    results[chunk] = chunk_fn(b, e);
  });
  Acc out = std::move(results[0]);
  for (std::size_t chunk = 1; chunk < num_chunks; ++chunk) {
    merge(out, std::move(results[chunk]));
  }
  return out;
}

}  // namespace erb
