// Chunking policy shared by the parallel two-pass index builders
// (ScanCountIndex, PrefixScanCountIndex, EntityBlockIndex, BuildBlocks,
// BuildSideTokenSets' rank counting): the input range is cut into at most
// kBuildChunks equal chunks, each chunk accumulates private partial counts
// (or a private dictionary), and the partials are merged in ascending chunk
// order. The chunk count is fixed — never derived from the thread count —
// so the decomposition, the merge order, and therefore the built index are
// byte-identical at any ERB_THREADS; it is also deliberately small, so the
// transient per-chunk count arrays cost a few multiples of the final CSR
// rather than the runtime's default 64-chunk fan-out.
//
// When the pool is effectively single-threaded the chunk decomposition only
// costs (private dictionaries, merge pass) and never pays, so the builders
// dispatch on UseChunkedBuild(): at one thread they run a direct sequential
// build instead. The dispatch cannot change any index — the ascending-chunk
// merge reproduces the sequential scan's first-appearance numbering exactly,
// so both strategies yield byte-identical structures (the 1-vs-8-thread
// differential tests compare precisely these two code paths).
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/parallel.hpp"

namespace erb {

/// Maximum chunks a two-pass builder fans out to.
inline constexpr std::size_t kBuildChunks = 8;

/// True when the chunked two-pass decomposition should run: more than one
/// pool thread is effective. At one thread the builders take their
/// byte-identical sequential fast path.
inline bool UseChunkedBuild() { return NumThreads() > 1; }

/// Grain that cuts [0, n) into at most kBuildChunks equal chunks.
inline std::size_t BuildGrain(std::size_t n) {
  return std::max<std::size_t>(1, (n + kBuildChunks - 1) / kBuildChunks);
}

/// Number of chunks BuildGrain(n) yields over [0, n).
inline std::size_t NumBuildChunks(std::size_t n) {
  if (n == 0) return 0;
  const std::size_t g = BuildGrain(n);
  return (n + g - 1) / g;
}

}  // namespace erb
