#include "common/strings.hpp"

#include <cctype>

namespace erb {

void ToLowerInPlace(std::string* s) {
  for (char& c : *s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  ToLowerInPlace(&out);
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> SplitChar(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool IsAlnum(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

void NormalizeTextInto(std::string_view s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (char c : s) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      out->push_back(uc >= 'A' && uc <= 'Z' ? static_cast<char>(uc - 'A' + 'a')
                                            : c);
    } else {
      out->push_back(' ');
    }
  }
}

std::string NormalizeText(std::string_view s) {
  std::string out;
  NormalizeTextInto(s, &out);
  return out;
}

}  // namespace erb
