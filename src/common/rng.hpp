// Deterministic pseudo-random number generation.
//
// All stochastic components (dataset generators, LSH rotations, autoencoder
// initialization) draw from Xoshiro256** seeded explicitly, so experiments
// are reproducible bit-for-bit and the "average of 10 repetitions" protocol
// of the paper can be driven by seed = repetition index.
#pragma once

#include <cstdint>
#include <cmath>
#include <numbers>

#include "common/hash.hpp"

namespace erb {

/// Xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6a09e667f3bcc908ULL) {
    // Expand the single seed through splitmix64, the recommended procedure.
    for (auto& word : state_) {
      seed = SplitMix64(seed);
      word = seed;
    }
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses rejection-free Lemire reduction; the bias of
  /// the multiply-shift trick is < 2^-64, irrelevant for benchmarking.
  std::uint64_t NextBounded(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Standard normal via Box-Muller (cached second value omitted for
  /// simplicity; generation cost is negligible against index build cost).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Bernoulli draw.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

  /// Zipf-like rank draw in [0, n): rank r with probability ~ 1/(r+1)^s.
  /// Used by the dataset generators to produce realistic token frequency
  /// skew (stop-word-like heads, long tails).
  std::uint64_t NextZipf(std::uint64_t n, double s = 1.0) {
    // Inverse-CDF on the continuous approximation; exact enough for text
    // synthesis and O(1) per draw.
    const double u = NextDouble();
    if (s == 1.0) {
      const double h = std::log(static_cast<double>(n) + 1.0);
      auto r = static_cast<std::uint64_t>(std::exp(u * h) - 1.0);
      return r >= n ? n - 1 : r;
    }
    const double one_minus_s = 1.0 - s;
    const double h = (std::pow(static_cast<double>(n) + 1.0, one_minus_s) - 1.0);
    auto r = static_cast<std::uint64_t>(
        std::pow(u * h + 1.0, 1.0 / one_minus_s) - 1.0);
    return r >= n ? n - 1 : r;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace erb
