// Shared parsing for environment knobs, mirroring ParseThreadCount
// (common/parallel.hpp): strict recognition of the documented value set, a
// stderr warning naming the variable on anything malformed, and a
// caller-supplied fallback instead of a silent guess. Before these helpers,
// each getenv site hand-rolled its own rules — ERB_PREFIX_FILTER accepted
// only the exact strings "0"/"off" (so "OFF", "false" or junk silently
// *enabled* prefix filtering) and ERBENCH_REPS went through atoi (junk
// silently became "keep the default"). A long-running serve process turns
// such quirks into real defects, because nobody is watching the first run's
// output for a typo.
//
// Header-only on purpose: erb_common links erb_obs (timer.hpp builds on
// obs/phase.hpp), so obs/trace.cpp cannot call into a function compiled into
// erb_common without a static-library cycle. Inline definitions keep the
// dependency arrow one-way.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace erb {

namespace env_internal {

/// Lower-cased copy of `text` with ASCII whitespace removed — the
/// normalization both helpers share (ERB_SIMD's ParseSimdKind applies the
/// same one).
inline std::string NormalizeEnvValue(const char* text) {
  std::string value;
  for (const char* p = text; *p != '\0'; ++p) {
    if (!std::isspace(static_cast<unsigned char>(*p))) {
      value.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
    }
  }
  return value;
}

}  // namespace env_internal

/// Parses an on/off environment knob. Recognized after trimming and
/// lower-casing: "1"/"on"/"true"/"yes" -> true, "0"/"off"/"false"/"no" ->
/// false. Null or empty input (the knob is unset) returns `fallback`
/// silently; any other value returns `fallback` with a stderr warning naming
/// the variable, so a typo is reported instead of silently picking a side.
inline bool ParseOnOff(const char* name, const char* text, bool fallback) {
  if (text == nullptr) return fallback;
  const std::string value = env_internal::NormalizeEnvValue(text);
  if (value.empty()) return fallback;
  if (value == "1" || value == "on" || value == "true" || value == "yes") {
    return true;
  }
  if (value == "0" || value == "off" || value == "false" || value == "no") {
    return false;
  }
  std::fprintf(stderr,
               "erbench: ignoring invalid %s value '%s' (expected 1/on/true/"
               "yes or 0/off/false/no); keeping %s\n",
               name, text, fallback ? "on" : "off");
  return fallback;
}

/// Parses a positive-count knob (the ERBENCH_REPS shape): a decimal integer
/// in [min_value, max_value], optionally surrounded by ASCII whitespace.
/// Null or empty input returns `fallback` silently; non-numeric,
/// trailing-junk ("3abc") and out-of-range input all return `fallback` with
/// a stderr warning naming the variable.
inline std::size_t ParseEnvCount(const char* name, const char* text,
                                 std::size_t min_value, std::size_t max_value,
                                 std::size_t fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  bool valid = end != text;  // at least one digit consumed
  if (valid) {
    while (*end != '\0' &&
           std::isspace(static_cast<unsigned char>(*end))) {
      ++end;
    }
    valid = *end == '\0';  // nothing but whitespace left
  }
  if (valid &&
      (errno == ERANGE || parsed < 0 ||
       static_cast<unsigned long>(parsed) < min_value ||
       static_cast<unsigned long>(parsed) > max_value)) {
    valid = false;
  }
  if (!valid) {
    std::fprintf(stderr,
                 "erbench: ignoring invalid %s value '%s' (expected an "
                 "integer in [%zu, %zu]); using %zu\n",
                 name, text, min_value, max_value, fallback);
    return fallback;
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace erb
