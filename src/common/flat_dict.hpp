// Flat open-addressing dictionaries for the build paths: a 64-bit-key
// TokenDict and an interning StringDict, both robin-hood tables over one
// contiguous slot array (power-of-two capacity, load <= 1/2 — the same
// convention the probe-side token tables follow). Replacing the node-based
// std::unordered_map occurrence/frequency/key maps with these is what keeps
// index construction allocation-free per insert: a slot is 16 bytes in one
// flat array, string keys live in one append-only char arena, and growth is
// a single rehash instead of a bucket-list rebuild.
//
// Robin-hood displacement keeps every probe sequence short and, more
// importantly here, *bounded-variance*: an insert steals the slot of any
// richer entry (one closer to its home slot), so worst-case probe lengths
// stay near the mean even for adversarial key sets. Lookups exploit the
// invariant for early termination: once the resident entry is richer than
// the probing key would be, the key is provably absent.
//
// Neither table supports deletion (build paths only ever insert), and
// neither exposes iteration: deterministic consumers must track their own
// first-appearance order, never the hash order (see the two-pass builders in
// src/sparsenn/scancount.cpp and src/blocking/builders.cpp).
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hash.hpp"

namespace erb {

/// Flat robin-hood map from 64-bit token hashes to 32-bit values.
class TokenDict {
 public:
  TokenDict() { slots_.assign(16, Slot{}); }

  /// Pre-sizes the table for `expected` distinct keys (no rehash below it).
  void Reserve(std::size_t expected) {
    const std::size_t needed = std::bit_ceil(
        std::max<std::size_t>(16, expected * 2));
    if (needed > slots_.size()) Rehash(needed);
  }

  /// Pointer to the value of `key`, inserting it with value `init` if
  /// absent. Valid until the next FindOrInsert/Reserve (a rehash moves
  /// slots).
  std::uint32_t* FindOrInsert(std::uint64_t key, std::uint32_t init) {
    if ((size_ + 1) * 2 > slots_.size()) Rehash(slots_.size() * 2);
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = SplitMix64(key) & mask;
    std::uint32_t dist = 1;
    for (;; pos = (pos + 1) & mask, ++dist) {
      Slot& slot = slots_[pos];
      if (slot.dist == 0) {
        slot = Slot{key, init, dist};
        ++size_;
        return &slot.value;
      }
      if (slot.key == key) return &slot.value;
      if (slot.dist < dist) {
        // Rich resident: the probing key settles here and the displaced
        // entry continues the walk (its pointer identity is not needed).
        Slot carry = slot;
        slot = Slot{key, init, dist};
        Displace(carry, pos, mask);
        ++size_;
        return &slots_[pos].value;
      }
    }
  }

  /// Pointer to the value of `key`, or nullptr when absent.
  const std::uint32_t* Find(std::uint64_t key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = SplitMix64(key) & mask;
    std::uint32_t dist = 1;
    for (;; pos = (pos + 1) & mask, ++dist) {
      const Slot& slot = slots_[pos];
      if (slot.dist < dist) return nullptr;  // empty or richer: absent
      if (slot.key == key) return &slot.value;
    }
  }

  /// The value of a key the caller guarantees is present. The robin-hood
  /// invariant (every slot between a key's home and its resting position is
  /// occupied) makes a bare key-compare walk sufficient — no distance
  /// bookkeeping, the same two-instruction probe loop as a classic linear
  /// table. Calling this with an absent key is undefined (the walk would
  /// only stop at a matching slot).
  std::uint32_t FindPresent(std::uint64_t key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = SplitMix64(key) & mask;
    while (slots_[pos].key != key) pos = (pos + 1) & mask;
    return slots_[pos].value;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  /// Table growths performed so far (the build.dict_rehashes counter feed).
  std::uint64_t rehashes() const { return rehashes_; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t value = 0;
    std::uint32_t dist = 0;  // probe distance + 1; 0 marks an empty slot
  };

  // Continues a robin-hood walk for an already-displaced entry from the slot
  // after `pos`.
  void Displace(Slot carry, std::size_t pos, std::size_t mask) {
    for (;;) {
      pos = (pos + 1) & mask;
      ++carry.dist;
      Slot& slot = slots_[pos];
      if (slot.dist == 0) {
        slot = carry;
        return;
      }
      if (slot.dist < carry.dist) std::swap(slot, carry);
    }
  }

  void Rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    const std::size_t mask = capacity - 1;
    for (const Slot& slot : old) {
      if (slot.dist == 0) continue;
      Slot carry{slot.key, slot.value, 1};
      std::size_t pos = SplitMix64(carry.key) & mask;
      for (;; pos = (pos + 1) & mask, ++carry.dist) {
        Slot& dest = slots_[pos];
        if (dest.dist == 0) {
          dest = carry;
          break;
        }
        if (dest.dist < carry.dist) std::swap(dest, carry);
      }
    }
    ++rehashes_;
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::uint64_t rehashes_ = 0;
};

/// Flat robin-hood dictionary interning string keys: each distinct key gets
/// a dense 32-bit id in first-appearance order, and the key bytes live in
/// one shared arena (one allocation amortized over all keys, instead of an
/// std::string node per unordered_map entry). Two distinct keys never alias:
/// slots compare the full key bytes behind the 64-bit hash.
class StringDict {
 public:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;

  StringDict() { slots_.assign(16, Slot{}); }

  /// Pre-sizes for `expected` distinct keys of `bytes` total length.
  void Reserve(std::size_t expected, std::size_t bytes = 0) {
    const std::size_t needed = std::bit_ceil(
        std::max<std::size_t>(16, expected * 2));
    if (needed > slots_.size()) Rehash(needed);
    key_offsets_.reserve(expected + 1);
    if (bytes > 0) arena_.reserve(bytes);
  }

  /// The dense id of `key`, interning it as the next id when absent.
  /// Strongly exception-safe: every fallible step (table growth, offset
  /// capacity, arena append — char copies cannot throw mid-append) happens
  /// before the first visible mutation, so a throw leaves the dict exactly
  /// as it was.
  std::uint32_t FindOrAssign(std::string_view key) {
    if ((NumKeys() + 1) * 2 > slots_.size()) Rehash(slots_.size() * 2);
    if (key_offsets_.size() == key_offsets_.capacity()) {
      key_offsets_.reserve(std::max<std::size_t>(16, key_offsets_.size() * 2));
    }
    const std::uint64_t hash = FnvHash64(key);
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = SplitMix64(hash) & mask;
    std::uint32_t dist = 1;
    for (;; pos = (pos + 1) & mask, ++dist) {
      Slot& slot = slots_[pos];
      if (slot.dist == 0 || slot.dist < dist) break;
      if (slot.hash == hash && Key(slot.id) == key) return slot.id;
    }
    const std::uint32_t id = static_cast<std::uint32_t>(NumKeys());
    arena_.insert(arena_.end(), key.begin(), key.end());
    key_offsets_.push_back(arena_.size());  // nothrow: capacity ensured above
    Slot carry{hash, id, dist};
    for (;; pos = (pos + 1) & mask, ++carry.dist) {
      Slot& slot = slots_[pos];
      if (slot.dist == 0) {
        slot = carry;
        break;
      }
      if (slot.dist < carry.dist) std::swap(slot, carry);
    }
    return id;
  }

  /// The id of `key`, or kAbsent.
  std::uint32_t Find(std::string_view key) const {
    const std::uint64_t hash = FnvHash64(key);
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = SplitMix64(hash) & mask;
    std::uint32_t dist = 1;
    for (;; pos = (pos + 1) & mask, ++dist) {
      const Slot& slot = slots_[pos];
      if (slot.dist < dist) return kAbsent;
      if (slot.hash == hash && Key(slot.id) == key) return slot.id;
    }
  }

  /// The interned key bytes of id `i` (ids are dense, first-appearance
  /// ordered). Views stay valid across inserts only until the arena grows;
  /// treat them as transient.
  std::string_view Key(std::uint32_t i) const {
    const std::size_t begin = key_offsets_[i];
    return std::string_view(arena_.data() + begin, key_offsets_[i + 1] - begin);
  }

  std::size_t NumKeys() const { return key_offsets_.size() - 1; }
  std::size_t ArenaBytes() const { return arena_.size(); }
  std::uint64_t rehashes() const { return rehashes_; }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t id = 0;
    std::uint32_t dist = 0;  // probe distance + 1; 0 marks an empty slot
  };

  void Rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    const std::size_t mask = capacity - 1;
    for (const Slot& slot : old) {
      if (slot.dist == 0) continue;
      Slot carry{slot.hash, slot.id, 1};
      std::size_t pos = SplitMix64(carry.hash) & mask;
      for (;; pos = (pos + 1) & mask, ++carry.dist) {
        Slot& dest = slots_[pos];
        if (dest.dist == 0) {
          dest = carry;
          break;
        }
        if (dest.dist < carry.dist) std::swap(dest, carry);
      }
    }
    ++rehashes_;
  }

  std::vector<Slot> slots_;
  std::vector<char> arena_;
  std::vector<std::size_t> key_offsets_{0};
  std::uint64_t rehashes_ = 0;
};

}  // namespace erb
