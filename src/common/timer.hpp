// Wall-clock timing utilities used by the run-time (RT) measurements and the
// per-phase breakdown of Figures 7-9.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "obs/phase.hpp"

namespace erb {

/// Simple monotonic stopwatch. RT in the paper is wall-clock time between
/// receiving profiles and emitting candidates, excluding data loading.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction or the last Restart().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations, e.g. block building vs comparison
/// cleaning, or preprocess/index/query for NN methods (Figures 7-9).
///
/// Compatibility shim over obs::PhaseAccumulator: measurements land in the
/// obs collector's per-thread buffers, so Measure/Add are safe to call from
/// inside ParallelFor bodies, recording survives exceptions thrown by `fn`
/// (the RAII guard fires during unwinding), and every Measure call site
/// doubles as a trace span when ERB_TRACE=1.
class PhaseTimer {
 public:
  /// Measures `fn` and adds its duration to phase `name`. Returns fn().
  /// The duration is recorded even if `fn` throws.
  template <typename Fn>
  auto Measure(const std::string& name, Fn&& fn) {
    obs::ScopedPhase phase(&acc_, name);
    return fn();
  }

  void Add(const std::string& name, double ms) { acc_.Add(name, ms); }

  double Get(const std::string& name) const { return acc_.Get(name); }

  double TotalMs() const { return acc_.TotalMs(); }

  const std::map<std::string, double>& phases() const { return acc_.phases(); }

  void Clear() { acc_.Clear(); }

 private:
  obs::PhaseAccumulator acc_;
};

}  // namespace erb
