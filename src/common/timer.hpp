// Wall-clock timing utilities used by the run-time (RT) measurements and the
// per-phase breakdown of Figures 7-9.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace erb {

/// Simple monotonic stopwatch. RT in the paper is wall-clock time between
/// receiving profiles and emitting candidates, excluding data loading.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction or the last Restart().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations, e.g. block building vs comparison
/// cleaning, or preprocess/index/query for NN methods (Figures 7-9).
class PhaseTimer {
 public:
  /// Measures `fn` and adds its duration to phase `name`. Returns fn().
  template <typename Fn>
  auto Measure(const std::string& name, Fn&& fn) {
    Timer t;
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      phases_[name] += t.ElapsedMs();
    } else {
      auto result = fn();
      phases_[name] += t.ElapsedMs();
      return result;
    }
  }

  void Add(const std::string& name, double ms) { phases_[name] += ms; }

  double Get(const std::string& name) const {
    auto it = phases_.find(name);
    return it == phases_.end() ? 0.0 : it->second;
  }

  double TotalMs() const {
    double total = 0.0;
    for (const auto& [_, ms] : phases_) total += ms;
    return total;
  }

  const std::map<std::string, double>& phases() const { return phases_; }

  void Clear() { phases_.clear(); }

 private:
  std::map<std::string, double> phases_;
};

}  // namespace erb
