// Effectiveness measures of Section III: Pair Completeness (recall) and
// Pairs Quality (precision), plus the derived statistics the evaluation
// tables report.
#pragma once

#include "core/candidates.hpp"
#include "core/entity.hpp"

namespace erb::core {

/// PC, PQ and the raw counts they derive from, for one candidate set against
/// one dataset's ground truth.
struct Effectiveness {
  double pc = 0.0;               ///< |D(C)| / |D(E1 x E2)|   (recall; 1 when GT is empty)
  double pq = 0.0;               ///< |D(C)| / |C|            (precision; 0 when C is empty)
  std::size_t candidates = 0;    ///< |C|
  std::size_t detected = 0;      ///< |D(C)|, duplicates covered by C
};

/// Evaluates a finalized candidate set. The candidate set must be finalized
/// (deduplicated) so |C| counts distinct pairs as the paper does.
Effectiveness Evaluate(const CandidateSet& candidates, const Dataset& dataset);

/// The recall target tau of Problem 1 used throughout the paper.
inline constexpr double kTargetRecall = 0.9;

}  // namespace erb::core
