#include "core/metrics.hpp"

#include <cassert>

namespace erb::core {

Effectiveness Evaluate(const CandidateSet& candidates, const Dataset& dataset) {
  assert(candidates.finalized());
  Effectiveness result;
  result.candidates = candidates.size();
  for (PairKey key : candidates) {
    if (dataset.IsDuplicate(key)) ++result.detected;
  }
  const std::size_t total_duplicates = dataset.NumDuplicates();
  result.pc = total_duplicates == 0
                  ? 0.0
                  : static_cast<double>(result.detected) / total_duplicates;
  result.pq = result.candidates == 0
                  ? 0.0
                  : static_cast<double>(result.detected) / result.candidates;
  return result;
}

}  // namespace erb::core
