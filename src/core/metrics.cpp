#include "core/metrics.hpp"

#include <cassert>

namespace erb::core {

Effectiveness Evaluate(const CandidateSet& candidates, const Dataset& dataset) {
  assert(candidates.finalized());
  Effectiveness result;
  result.candidates = candidates.size();
  for (PairKey key : candidates) {
    if (dataset.IsDuplicate(key)) ++result.detected;
  }
  // An empty ground truth is vacuously complete: there is nothing to miss,
  // so PC is 1 (0 would wrongly report a perfect candidate set as missing
  // everything). PQ stays 0 when there are no candidates. Neither is NaN.
  const std::size_t total_duplicates = dataset.NumDuplicates();
  result.pc = total_duplicates == 0
                  ? 1.0
                  : static_cast<double>(result.detected) / total_duplicates;
  result.pq = result.candidates == 0
                  ? 0.0
                  : static_cast<double>(result.detected) / result.candidates;
  return result;
}

}  // namespace erb::core
