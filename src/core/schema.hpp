// Schema statistics of Section VI / Figure 3: attribute coverage,
// ground-truth coverage, distinctiveness, vocabulary size and character
// length under both schema settings, with and without cleaning.
#pragma once

#include <string>
#include <vector>

#include "core/entity.hpp"

namespace erb::core {

/// Per-attribute statistics over both sides of a dataset.
struct AttributeStats {
  std::string name;
  double coverage = 0.0;              ///< entities with a non-empty value
  double groundtruth_coverage = 0.0;  ///< duplicates where both sides covered
  double distinctiveness = 0.0;       ///< distinct values / covered entities
};

/// Computes coverage/distinctiveness for every attribute name appearing in
/// the dataset. Coverage counts entities of E1 u E2 having a non-empty value;
/// ground-truth coverage counts duplicate pairs whose *both* members have a
/// non-empty value (a candidate can only be formed from covered entities).
std::vector<AttributeStats> ComputeAttributeStats(const Dataset& dataset);

/// Selects the attribute maximizing coverage * distinctiveness — the paper's
/// "most suitable attribute in terms of coverage and distinctiveness".
std::string SelectBestAttribute(const Dataset& dataset);

/// Corpus-level cost statistics of Figure 3(b,c).
struct CorpusStats {
  std::size_t vocabulary_size = 0;  ///< distinct whitespace tokens
  std::size_t char_length = 0;      ///< total characters of all texts
};

/// Vocabulary size and character length over both sides under the given
/// schema mode; `clean` applies stop-word removal + stemming first.
CorpusStats ComputeCorpusStats(const Dataset& dataset, SchemaMode mode,
                               bool clean);

}  // namespace erb::core
