#include "core/candidates.hpp"

#include <algorithm>

namespace erb::core {

void CandidateSet::Finalize() {
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
  finalized_ = true;
}

bool CandidateSet::Contains(EntityId id1, EntityId id2) const {
  return std::binary_search(pairs_.begin(), pairs_.end(), MakePair(id1, id2));
}

}  // namespace erb::core
