// Columnar text store over entity profiles: the textual representation of
// every entity under one schema mode, materialized exactly once into a
// contiguous char arena with an offsets column. Build loops that used to
// call Dataset::EntityText per entity (allocating and destroying one
// std::string each) instead walk string_views into the arena — one big
// allocation per side instead of one per entity, sequential access order,
// and the text bytes stay resident for every later pass over the same side
// (tokenization, key extraction, probes).
//
// The produced text is byte-identical to EntityText/AllValues/ValueOf for
// every entity, which is what keeps the candidates emitted by the converted
// build paths byte-identical to the pre-columnar ones.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/entity.hpp"

namespace erb::core {

/// Columnar (arena + offsets) store of per-entity text under one SchemaMode.
class ProfileStore {
 public:
  ProfileStore() = default;

  /// Builds the text column over `profiles` (parallel over entities; the
  /// chunk decomposition never affects the bytes — every entity's segment is
  /// written independently at a precomputed offset).
  ProfileStore(const std::vector<EntityProfile>& profiles, SchemaMode mode,
               std::string_view best_attribute);

  /// The text column of one dataset side (0 = E1, 1 = E2).
  static ProfileStore ForSide(const Dataset& dataset, int side,
                              SchemaMode mode) {
    return ProfileStore(side == 0 ? dataset.e1() : dataset.e2(), mode,
                        dataset.best_attribute());
  }

  /// Number of entities in the column.
  std::size_t size() const { return offsets_.size() - 1; }

  /// The text of entity `id`; valid as long as the store lives.
  std::string_view Text(EntityId id) const {
    const std::uint64_t begin = offsets_[id];
    return std::string_view(arena_.data() + begin, offsets_[id + 1] - begin);
  }

  /// Total text bytes held by the arena.
  std::size_t ArenaBytes() const { return arena_.size(); }

 private:
  std::vector<std::uint64_t> offsets_{0};
  std::vector<char> arena_;
};

}  // namespace erb::core
