#include "core/schema.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/hash.hpp"
#include "text/clean.hpp"

namespace erb::core {

std::vector<AttributeStats> ComputeAttributeStats(const Dataset& dataset) {
  struct Counts {
    std::size_t covered = 0;
    std::unordered_set<std::uint64_t> distinct_values;
    std::size_t gt_covered = 0;
  };
  std::map<std::string, Counts> per_attr;

  auto scan = [&per_attr](const std::vector<EntityProfile>& side) {
    for (const auto& profile : side) {
      // An entity counts once per attribute even with repeated names.
      std::unordered_set<std::uint64_t> seen;
      for (const auto& attr : profile.attributes) {
        if (attr.value.empty()) continue;
        auto& counts = per_attr[attr.name];
        if (seen.insert(FnvHash64(attr.name)).second) ++counts.covered;
        counts.distinct_values.insert(FnvHash64(attr.value));
      }
    }
  };
  scan(dataset.e1());
  scan(dataset.e2());

  for (auto& [name, counts] : per_attr) {
    for (const auto& [id1, id2] : dataset.duplicates()) {
      if (dataset.e1()[id1].Covers(name) && dataset.e2()[id2].Covers(name)) {
        ++counts.gt_covered;
      }
    }
  }

  const double total_entities =
      static_cast<double>(dataset.e1().size() + dataset.e2().size());
  const double total_duplicates =
      static_cast<double>(std::max<std::size_t>(dataset.NumDuplicates(), 1));

  std::vector<AttributeStats> stats;
  stats.reserve(per_attr.size());
  for (const auto& [name, counts] : per_attr) {
    AttributeStats s;
    s.name = name;
    s.coverage = counts.covered / total_entities;
    s.groundtruth_coverage = counts.gt_covered / total_duplicates;
    s.distinctiveness =
        counts.covered == 0
            ? 0.0
            : static_cast<double>(counts.distinct_values.size()) / counts.covered;
    stats.push_back(std::move(s));
  }
  return stats;
}

std::string SelectBestAttribute(const Dataset& dataset) {
  std::string best;
  double best_score = -1.0;
  for (const auto& s : ComputeAttributeStats(dataset)) {
    const double score = s.coverage * s.distinctiveness;
    if (score > best_score) {
      best_score = score;
      best = s.name;
    }
  }
  return best;
}

CorpusStats ComputeCorpusStats(const Dataset& dataset, SchemaMode mode,
                               bool clean) {
  CorpusStats stats;
  std::unordered_set<std::uint64_t> vocabulary;
  auto scan = [&](int side, std::size_t count) {
    for (EntityId id = 0; id < count; ++id) {
      const std::string text = dataset.EntityText(side, id, mode);
      for (const auto& token : text::CleanTokens(text, clean)) {
        vocabulary.insert(FnvHash64(token));
        stats.char_length += token.size();
      }
    }
  };
  scan(0, dataset.e1().size());
  scan(1, dataset.e2().size());
  stats.vocabulary_size = vocabulary.size();
  return stats;
}

}  // namespace erb::core
