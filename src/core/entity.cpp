#include "core/entity.hpp"

#include <stdexcept>

namespace erb::core {

std::string EntityProfile::ValueOf(std::string_view name) const {
  std::string out;
  for (const auto& attr : attributes) {
    if (attr.name == name && !attr.value.empty()) {
      if (!out.empty()) out += ' ';
      out += attr.value;
    }
  }
  return out;
}

std::string EntityProfile::AllValues() const {
  std::string out;
  for (const auto& attr : attributes) {
    if (attr.value.empty()) continue;
    if (!out.empty()) out += ' ';
    out += attr.value;
  }
  return out;
}

bool EntityProfile::Covers(std::string_view name) const {
  for (const auto& attr : attributes) {
    if (attr.name == name && !attr.value.empty()) return true;
  }
  return false;
}

Dataset::Dataset(std::string name, std::vector<EntityProfile> e1,
                 std::vector<EntityProfile> e2,
                 std::vector<std::pair<EntityId, EntityId>> duplicates,
                 std::string best_attribute)
    : name_(std::move(name)),
      e1_(std::move(e1)),
      e2_(std::move(e2)),
      duplicates_(std::move(duplicates)),
      best_attribute_(std::move(best_attribute)) {
  // Collapse repeated ground-truth rows (first occurrence kept): a pair
  // listed twice would inflate NumDuplicates() and cap PC below 1 even for
  // the full Cartesian product.
  duplicate_keys_.reserve(duplicates_.size() * 2);
  std::size_t kept = 0;
  for (const auto& [id1, id2] : duplicates_) {
    if (id1 >= e1_.size() || id2 >= e2_.size()) {
      throw std::out_of_range("ground-truth pair references missing entity");
    }
    if (duplicate_keys_.insert(MakePair(id1, id2)).second) {
      duplicates_[kept++] = {id1, id2};
    }
  }
  duplicates_.resize(kept);
}

std::string Dataset::EntityText(int side, EntityId id, SchemaMode mode) const {
  const EntityProfile& profile = side == 0 ? e1_.at(id) : e2_.at(id);
  return mode == SchemaMode::kAgnostic ? profile.AllValues()
                                       : profile.ValueOf(best_attribute_);
}

}  // namespace erb::core
