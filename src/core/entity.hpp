// The entity model of the paper (Section III): an entity profile is a set of
// textual name-value pairs; a dataset for Clean-Clean ER is a pair of
// individually duplicate-free profile collections plus a ground truth of
// matching pairs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

namespace erb::core {

/// Index of an entity within one side of a dataset.
using EntityId = std::uint32_t;

/// Encodes a candidate pair (id1 from E1, id2 from E2) as a single key.
using PairKey = std::uint64_t;

constexpr PairKey MakePair(EntityId id1, EntityId id2) {
  return (static_cast<PairKey>(id1) << 32) | id2;
}
constexpr EntityId PairFirst(PairKey key) { return static_cast<EntityId>(key >> 32); }
constexpr EntityId PairSecond(PairKey key) {
  return static_cast<EntityId>(key & 0xffffffffULL);
}

/// A single name-value pair of an entity profile.
struct Attribute {
  std::string name;
  std::string value;
};

/// An entity profile e_i = {<n_j, v_j>}: covers relational records and RDF
/// instance descriptions alike.
struct EntityProfile {
  std::vector<Attribute> attributes;

  /// Concatenation of the values whose attribute name equals `name`,
  /// space-separated. Empty string when the attribute is absent — the
  /// schema-based settings treat such entities as having no signature.
  std::string ValueOf(std::string_view name) const;

  /// Concatenation of all attribute values (the schema-agnostic view,
  /// treating the profile as one long textual value).
  std::string AllValues() const;

  /// True if the profile has a non-empty value for `name`. Used by the
  /// coverage statistics of Figure 3.
  bool Covers(std::string_view name) const;
};

/// Which part of a profile a filtering method looks at (Section VI).
enum class SchemaMode {
  kAgnostic,  ///< all attribute values, concatenated
  kBased,     ///< only the best attribute's value
};

/// A Clean-Clean ER dataset: two duplicate-free but overlapping collections
/// plus ground truth and the most informative attribute for the schema-based
/// settings (Table VI).
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, std::vector<EntityProfile> e1,
          std::vector<EntityProfile> e2,
          std::vector<std::pair<EntityId, EntityId>> duplicates,
          std::string best_attribute);

  const std::string& name() const { return name_; }
  const std::vector<EntityProfile>& e1() const { return e1_; }
  const std::vector<EntityProfile>& e2() const { return e2_; }
  /// Ground truth with repeated input rows collapsed (first occurrence
  /// kept), so NumDuplicates() counts distinct matching pairs.
  const std::vector<std::pair<EntityId, EntityId>>& duplicates() const {
    return duplicates_;
  }
  const std::string& best_attribute() const { return best_attribute_; }

  std::size_t NumDuplicates() const { return duplicates_.size(); }

  /// |E1| * |E2|, the brute-force comparison count.
  std::uint64_t CartesianSize() const {
    return static_cast<std::uint64_t>(e1_.size()) * e2_.size();
  }

  /// O(1) membership test for candidate evaluation.
  bool IsDuplicate(PairKey key) const { return duplicate_keys_.contains(key); }

  /// The textual representation of entity `id` on side `side` (0 = E1,
  /// 1 = E2) under the given schema mode.
  std::string EntityText(int side, EntityId id, SchemaMode mode) const;

 private:
  std::string name_;
  std::vector<EntityProfile> e1_;
  std::vector<EntityProfile> e2_;
  std::vector<std::pair<EntityId, EntityId>> duplicates_;
  std::unordered_set<PairKey> duplicate_keys_;
  std::string best_attribute_;
};

}  // namespace erb::core
