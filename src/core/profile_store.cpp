#include "core/profile_store.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace erb::core {
namespace {

// Length of the text EntityText would produce for `profile`: the sum of the
// contributing values plus one separator between each adjacent pair. A value
// contributes exactly when AllValues/ValueOf would include it.
std::size_t TextLength(const EntityProfile& profile, SchemaMode mode,
                       std::string_view best_attribute) {
  std::size_t total = 0;
  std::size_t parts = 0;
  for (const auto& attr : profile.attributes) {
    if (attr.value.empty()) continue;
    if (mode == SchemaMode::kBased && attr.name != best_attribute) continue;
    total += attr.value.size();
    ++parts;
  }
  return parts == 0 ? 0 : total + parts - 1;
}

void WriteText(const EntityProfile& profile, SchemaMode mode,
               std::string_view best_attribute, char* out) {
  bool first = true;
  for (const auto& attr : profile.attributes) {
    if (attr.value.empty()) continue;
    if (mode == SchemaMode::kBased && attr.name != best_attribute) continue;
    if (!first) *out++ = ' ';
    out = std::copy(attr.value.begin(), attr.value.end(), out);
    first = false;
  }
}

}  // namespace

ProfileStore::ProfileStore(const std::vector<EntityProfile>& profiles,
                           SchemaMode mode, std::string_view best_attribute) {
  const std::size_t n = profiles.size();
  offsets_.assign(n + 1, 0);
  // Pass 1: per-entity lengths (independent slots), then one prefix sum.
  ParallelFor(0, n, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      offsets_[i + 1] = TextLength(profiles[i], mode, best_attribute);
    }
  });
  for (std::size_t i = 0; i < n; ++i) offsets_[i + 1] += offsets_[i];

  // Pass 2: write every entity's bytes into its precomputed segment.
  arena_.resize(offsets_[n]);
  ParallelFor(0, n, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      WriteText(profiles[i], mode, best_attribute, arena_.data() + offsets_[i]);
    }
  });
}

}  // namespace erb::core
