// Candidate set: the common output format of every filtering method.
//
// Blocking workflows and NN methods alike reduce the Cartesian product
// E1 x E2 to a set C of candidate pairs; this container deduplicates and
// stores them compactly so PC/PQ evaluation is uniform across methods.
#pragma once

#include <cstddef>
#include <vector>

#include "core/entity.hpp"

namespace erb::core {

/// A deduplicated set of candidate pairs. Building is append-oriented
/// (methods emit pairs in arbitrary order, possibly with repeats); Finalize()
/// sorts and deduplicates once, which is far cheaper than hashing every
/// insertion for the candidate volumes LSH methods produce.
class CandidateSet {
 public:
  CandidateSet() = default;

  void Reserve(std::size_t n) { pairs_.reserve(n); }

  void Add(EntityId id1, EntityId id2) { pairs_.push_back(MakePair(id1, id2)); }
  void AddKey(PairKey key) { pairs_.push_back(key); }

  /// Appends every pair of `other` (the ordered per-chunk merge of the
  /// parallel kernels; the final Finalize() sorts and deduplicates, so the
  /// finalized set is independent of merge order).
  void Merge(CandidateSet&& other) {
    pairs_.insert(pairs_.end(), other.pairs_.begin(), other.pairs_.end());
  }

  /// Sorts and removes duplicate pairs. Must be called before size() or
  /// iteration is meaningful; idempotent.
  void Finalize();

  bool finalized() const { return finalized_; }

  /// Number of distinct candidate pairs |C|.
  std::size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  std::vector<PairKey>::const_iterator begin() const { return pairs_.begin(); }
  std::vector<PairKey>::const_iterator end() const { return pairs_.end(); }

  const std::vector<PairKey>& pairs() const { return pairs_; }

  /// True if the (finalized) set contains the pair.
  bool Contains(EntityId id1, EntityId id2) const;

 private:
  std::vector<PairKey> pairs_;
  bool finalized_ = false;
};

}  // namespace erb::core
