// Subword-hash embeddings: the repository's substitute for the pre-trained
// 300-dimensional fastText vectors the paper uses (DESIGN.md §3).
//
// fastText represents a word as the sum of its character n-gram vectors;
// dense filtering methods only rely on the induced property that
// syntactically close strings map to nearby vectors. We reproduce exactly
// that property by assigning every character n-gram a deterministic
// pseudo-random Gaussian basis vector (seeded by the n-gram's hash) and
// pooling: word vector = mean of its n-gram vectors, entity vector = mean of
// its word vectors, L2-normalized.
#pragma once

#include <string_view>
#include <vector>

#include "core/entity.hpp"

namespace erb::densenn {

/// Dense vector type used across the module.
using Vector = std::vector<float>;

/// Embedding dimensionality matching the paper's fastText setting.
inline constexpr int kEmbeddingDim = 300;

/// Embeds one text. Deterministic. `dim` is exposed for the ablation bench.
Vector EmbedText(std::string_view text, int dim = kEmbeddingDim);

/// Embeds a dataset side under a schema mode; `clean` applies stop-word
/// removal and stemming first (the CL parameter of Table V).
std::vector<Vector> EmbedSide(const core::Dataset& dataset, int side,
                              core::SchemaMode mode, bool clean,
                              int dim = kEmbeddingDim);

/// Dot product (vectors are produced L2-normalized, so this is also the
/// cosine similarity).
float Dot(const Vector& a, const Vector& b);

/// Squared Euclidean distance.
float SquaredL2(const Vector& a, const Vector& b);

/// L2-normalizes in place (no-op for the zero vector).
void Normalize(Vector* v);

}  // namespace erb::densenn
