// Exhaustive (flat) kNN index over dense vectors — the FAISS-Flat substitute
// (the paper reports that FAISS's approximate indexes never beat Flat for
// Problem 1, so Flat is the configuration under test).
#pragma once

#include <cstdint>
#include <vector>

#include "densenn/embedding.hpp"
#include "densenn/vector_matrix.hpp"

namespace erb::densenn {

/// Distance/similarity used by a kNN search.
enum class DenseMetric {
  kSquaredL2,   ///< Euclidean on (normalized) vectors, FAISS's default here
  kDotProduct,  ///< maximum inner product
};

/// A brute-force kNN index: exact by construction. Vectors live in a
/// contiguous row-major VectorMatrix and are scanned with the dispatched
/// SIMD kernels; the metric is hoisted out of the scan loop (the loop is
/// instantiated per metric), so the per-pair work is one kernel call and one
/// heap compare.
class FlatIndex {
 public:
  FlatIndex(const std::vector<Vector>& vectors, DenseMetric metric);

  /// The ids of the k nearest vectors to `query`, best first. Ties broken by
  /// id for determinism.
  std::vector<std::uint32_t> Search(const Vector& query, int k) const;

  /// Search() for every query, fanned across the thread pool in blocks of
  /// kQueryBlock queries scanned tile-by-tile: a cache-resident tile of
  /// indexed rows is reused by every query of the block before moving on.
  /// results[q] is exactly Search(queries[q], k) — each query still visits
  /// ids in ascending order, so heap decisions are identical (queries are
  /// independent, so the batch is deterministic at any thread count).
  std::vector<std::vector<std::uint32_t>> SearchBatch(
      const std::vector<Vector>& queries, int k) const;

  /// Range (similarity) search: all ids within squared-L2 `radius` of the
  /// query (kSquaredL2) or with dot product >= `radius` (kDotProduct). The
  /// paper reports that FAISS's range search consistently underperforms kNN
  /// search for Problem 1; bench_ablation reproduces that comparison.
  std::vector<std::uint32_t> RangeSearch(const Vector& query, float radius) const;

  /// RangeSearch() for every query, tiled and fanned like SearchBatch.
  std::vector<std::vector<std::uint32_t>> RangeSearchBatch(
      const std::vector<Vector>& queries, float radius) const;

  std::size_t size() const { return vectors_.rows(); }
  Vector vector(std::uint32_t id) const { return vectors_.ToVector(id); }
  DenseMetric metric() const { return metric_; }

  /// Queries per parallel work item in the batch entry points.
  static constexpr std::size_t kQueryBlock = 8;

  /// Indexed rows per tile: sized so one tile of 300-dim rows (stride 304,
  /// ~1.2 KB) stays in L2 alongside the query block (~256 KB per tile).
  static constexpr std::size_t kTileRows = 208;

 private:
  VectorMatrix vectors_;
  DenseMetric metric_;
};

}  // namespace erb::densenn
