// Exhaustive (flat) kNN index over dense vectors — the FAISS-Flat substitute
// (the paper reports that FAISS's approximate indexes never beat Flat for
// Problem 1, so Flat is the configuration under test).
#pragma once

#include <cstdint>
#include <vector>

#include "densenn/embedding.hpp"

namespace erb::densenn {

/// Distance/similarity used by a kNN search.
enum class DenseMetric {
  kSquaredL2,   ///< Euclidean on (normalized) vectors, FAISS's default here
  kDotProduct,  ///< maximum inner product
};

/// A brute-force kNN index: exact by construction.
class FlatIndex {
 public:
  FlatIndex(std::vector<Vector> vectors, DenseMetric metric);

  /// The ids of the k nearest vectors to `query`, best first. Ties broken by
  /// id for determinism.
  std::vector<std::uint32_t> Search(const Vector& query, int k) const;

  /// Search() for every query, fanned across the thread pool; results[q] is
  /// exactly Search(queries[q], k) (queries are independent, so the batch is
  /// deterministic at any thread count).
  std::vector<std::vector<std::uint32_t>> SearchBatch(
      const std::vector<Vector>& queries, int k) const;

  /// Range (similarity) search: all ids within squared-L2 `radius` of the
  /// query (kSquaredL2) or with dot product >= `radius` (kDotProduct). The
  /// paper reports that FAISS's range search consistently underperforms kNN
  /// search for Problem 1; bench_ablation reproduces that comparison.
  std::vector<std::uint32_t> RangeSearch(const Vector& query, float radius) const;

  std::size_t size() const { return vectors_.size(); }
  const Vector& vector(std::uint32_t id) const { return vectors_[id]; }
  DenseMetric metric() const { return metric_; }

 private:
  std::vector<Vector> vectors_;
  DenseMetric metric_;
};

}  // namespace erb::densenn
