#include "densenn/methods.hpp"

#include "densenn/flat_index.hpp"
#include "obs/trace.hpp"

namespace erb::densenn {
namespace {

using core::EntityId;

// Adds one (indexed, query) result in canonical (E1, E2) pair order.
void EmitPair(core::CandidateSet* candidates, bool reverse, EntityId query,
              EntityId indexed) {
  if (reverse) {
    candidates->Add(query, indexed);
  } else {
    candidates->Add(indexed, query);
  }
}

// Shared driver: embeds both sides (preprocess), optionally transforms the
// vectors (train), builds an index over the indexed side (index) and runs the
// kNN queries (query).
template <typename MakeIndex, typename Transform>
DenseResult RunKnnMethod(const core::Dataset& dataset, core::SchemaMode mode,
                         const KnnSearchConfig& config, Transform&& transform,
                         MakeIndex&& make_index) {
  DenseResult result;
  const int indexed_side = config.reverse ? 1 : 0;
  const int query_side = config.reverse ? 0 : 1;

  std::vector<Vector> indexed_vectors, query_vectors;
  result.timing.Measure(kPhasePreprocess, [&] {
    indexed_vectors = EmbedSide(dataset, indexed_side, mode, config.clean);
    query_vectors = EmbedSide(dataset, query_side, mode, config.clean);
  });

  result.timing.Measure(kPhaseTrain,
                        [&] { transform(&indexed_vectors, &query_vectors); });

  const std::size_t indexed_count = indexed_vectors.size();
  auto index = result.timing.Measure(
      kPhaseIndex, [&] { return make_index(std::move(indexed_vectors)); });
  obs::GaugeSet("dense.index_vectors", indexed_count);

  result.timing.Measure(kPhaseQuery, [&] {
    // The batch fans the searches across the thread pool; emission stays
    // sequential in query order (Finalize() makes the final order canonical
    // regardless, but this keeps the pre-Finalize state deterministic too).
    const auto neighbors = index.SearchBatch(query_vectors, config.k);
    for (std::size_t q = 0; q < neighbors.size(); ++q) {
      for (std::uint32_t id : neighbors[q]) {
        EmitPair(&result.candidates, config.reverse, static_cast<EntityId>(q),
                 id);
      }
    }
    // Sort + dedup is part of emitting candidates: keep it inside timed RT.
    result.candidates.Finalize();
  });
  obs::CounterAdd("dense.candidates", result.candidates.size());
  return result;
}

void NoTransform(std::vector<Vector>*, std::vector<Vector>*) {}

}  // namespace

DenseResult FaissKnn(const core::Dataset& dataset, core::SchemaMode mode,
                     const KnnSearchConfig& config) {
  return RunKnnMethod(dataset, mode, config, NoTransform,
                      [](std::vector<Vector> vectors) {
                        return FlatIndex(std::move(vectors),
                                         DenseMetric::kSquaredL2);
                      });
}

DenseResult ScannKnn(const core::Dataset& dataset, core::SchemaMode mode,
                     const KnnSearchConfig& config,
                     const PartitionedConfig& scann) {
  return RunKnnMethod(dataset, mode, config, NoTransform,
                      [&scann](std::vector<Vector> vectors) {
                        return PartitionedIndex(std::move(vectors), scann);
                      });
}

DenseResult DeepBlockerKnn(const core::Dataset& dataset, core::SchemaMode mode,
                           const KnnSearchConfig& config,
                           const AutoencoderConfig& autoencoder) {
  auto transform = [&autoencoder](std::vector<Vector>* indexed,
                                  std::vector<Vector>* query) {
    // Self-supervised training on the union of both sides, as DeepBlocker
    // trains its tuple-embedding module on the input tables themselves.
    std::vector<Vector> training = *indexed;
    training.insert(training.end(), query->begin(), query->end());
    Autoencoder model(training, autoencoder);
    *indexed = EncodeAll(model, *indexed);
    *query = EncodeAll(model, *query);
  };
  return RunKnnMethod(dataset, mode, config, transform,
                      [](std::vector<Vector> vectors) {
                        return FlatIndex(std::move(vectors),
                                         DenseMetric::kSquaredL2);
                      });
}

DenseResult DefaultDeepBlocker(const core::Dataset& dataset,
                               core::SchemaMode mode, std::uint64_t seed) {
  KnnSearchConfig config;
  config.clean = true;
  config.k = 5;
  config.reverse = dataset.e1().size() < dataset.e2().size();
  AutoencoderConfig autoencoder;
  autoencoder.seed = seed;
  return DeepBlockerKnn(dataset, mode, config, autoencoder);
}

}  // namespace erb::densenn
