// Common result type of the dense NN methods: candidates plus the
// preprocess / train / index / query timing breakdown of Figures 7-9.
#pragma once

#include "common/timer.hpp"
#include "core/candidates.hpp"

namespace erb::densenn {

struct DenseResult {
  core::CandidateSet candidates;
  PhaseTimer timing;
};

inline constexpr const char* kPhasePreprocess = "preprocess";
inline constexpr const char* kPhaseTrain = "train";
inline constexpr const char* kPhaseIndex = "index";
inline constexpr const char* kPhaseQuery = "query";

}  // namespace erb::densenn
