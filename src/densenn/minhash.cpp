#include "densenn/minhash.hpp"

#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "obs/trace.hpp"
#include "text/clean.hpp"

namespace erb::densenn {
namespace {

// Shingle hashes (character k-grams) of the cleaned text.
std::vector<std::uint64_t> Shingles(const std::string& text, int k) {
  std::vector<std::uint64_t> out;
  if (static_cast<int>(text.size()) < k) {
    if (!text.empty()) out.push_back(FnvHash64(text));
    return out;
  }
  out.reserve(text.size());
  for (std::size_t i = 0; i + k <= text.size(); ++i) {
    out.push_back(FnvHash64(std::string_view(text).substr(i, k)));
  }
  return out;
}

// The minhash signature: one minimum per hash function. The f-th permutation
// is simulated Carter-Wegman style, h_f(x) = a + f * b over two well-mixed
// base hashes of the shingle — one SplitMix per shingle instead of one per
// (shingle, function), which dominates signature cost at 128-512 functions.
std::vector<std::uint64_t> Signature(const std::vector<std::uint64_t>& shingles,
                                     int functions, std::uint64_t seed) {
  std::vector<std::uint64_t> sig(static_cast<std::size_t>(functions),
                                 ~0ULL);
  for (std::uint64_t shingle : shingles) {
    const std::uint64_t a = SplitMix64(shingle ^ SplitMix64(seed));
    const std::uint64_t b = SplitMix64(shingle + 0x9e3779b97f4a7c15ULL * seed) | 1;
    std::uint64_t value = a;
    for (int f = 0; f < functions; ++f) {
      if (value < sig[static_cast<std::size_t>(f)]) {
        sig[static_cast<std::size_t>(f)] = value;
      }
      value += b;
    }
  }
  return sig;
}

}  // namespace

DenseResult MinHashLsh(const core::Dataset& dataset, core::SchemaMode mode,
                       const MinHashConfig& config) {
  DenseResult result;
  const int functions = config.bands * config.rows;

  // Preprocess: clean + shingle both sides.
  std::vector<std::vector<std::uint64_t>> shingles1, shingles2;
  result.timing.Measure(kPhasePreprocess, [&] {
    auto build = [&](int side, std::size_t count,
                     std::vector<std::vector<std::uint64_t>>* out) {
      out->resize(count);
      ParallelFor(0, count, /*grain=*/0,
                  [&](std::size_t begin, std::size_t end) {
                    for (std::size_t id = begin; id < end; ++id) {
                      const std::string text = text::CleanText(
                          dataset.EntityText(side, static_cast<core::EntityId>(id),
                                             mode),
                          config.clean);
                      (*out)[id] = Shingles(text, config.shingle_k);
                    }
                  });
    };
    build(0, dataset.e1().size(), &shingles1);
    build(1, dataset.e2().size(), &shingles2);
  });

  // Index: band buckets of E1.
  std::vector<std::unordered_map<std::uint64_t, std::vector<core::EntityId>>>
      band_buckets(static_cast<std::size_t>(config.bands));
  result.timing.Measure(kPhaseIndex, [&] {
    // Signatures (the expensive part) are computed in parallel; the bucket
    // inserts stay sequential in ascending id so every bucket's id list is
    // identical at any thread count. Each band holds at most one bucket per
    // indexed entity: pre-sizing makes the insert loop rehash-free.
    for (auto& buckets : band_buckets) buckets.reserve(shingles1.size());
    std::vector<std::vector<std::uint64_t>> band_keys(shingles1.size());
    ParallelFor(0, shingles1.size(), /*grain=*/0,
                [&](std::size_t begin, std::size_t end) {
                  for (std::size_t id = begin; id < end; ++id) {
                    const auto sig =
                        Signature(shingles1[id], functions, config.seed);
                    auto& keys = band_keys[id];
                    keys.resize(static_cast<std::size_t>(config.bands));
                    for (int band = 0; band < config.bands; ++band) {
                      std::uint64_t key = 0x9d2c;
                      for (int r = 0; r < config.rows; ++r) {
                        key = HashCombine(
                            key, sig[static_cast<std::size_t>(
                                     band * config.rows + r)]);
                      }
                      keys[static_cast<std::size_t>(band)] = key;
                    }
                  }
                });
    for (std::size_t id = 0; id < band_keys.size(); ++id) {
      for (int band = 0; band < config.bands; ++band) {
        band_buckets[static_cast<std::size_t>(band)]
                    [band_keys[id][static_cast<std::size_t>(band)]]
                        .push_back(static_cast<core::EntityId>(id));
      }
    }
  });

  // Query: E2 probes every band's bucket.
  result.timing.Measure(kPhaseQuery, [&] {
    result.candidates = ParallelMapReduce<core::CandidateSet>(
        0, shingles2.size(), /*grain=*/0,
        [&](std::size_t begin, std::size_t end) {
          core::CandidateSet chunk;
          for (std::size_t id = begin; id < end; ++id) {
            const auto sig = Signature(shingles2[id], functions, config.seed);
            for (int band = 0; band < config.bands; ++band) {
              std::uint64_t key = 0x9d2c;
              for (int r = 0; r < config.rows; ++r) {
                key = HashCombine(
                    key, sig[static_cast<std::size_t>(band * config.rows + r)]);
              }
              const auto& buckets = band_buckets[static_cast<std::size_t>(band)];
              auto it = buckets.find(key);
              if (it == buckets.end()) continue;
              for (core::EntityId indexed : it->second) {
                chunk.Add(indexed, static_cast<core::EntityId>(id));
              }
            }
          }
          return chunk;
        },
        [](core::CandidateSet& into, core::CandidateSet&& from) {
          into.Merge(std::move(from));
        });
    // Sort + dedup is part of emitting candidates: keep it inside timed RT.
    result.candidates.Finalize();
  });
  obs::GaugeSet("dense.index_vectors", shingles1.size());
  obs::CounterAdd("dense.candidates", result.candidates.size());
  return result;
}

}  // namespace erb::densenn
