#include "densenn/autoencoder.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/simd.hpp"

namespace erb::densenn {

Autoencoder::Autoencoder(const std::vector<Vector>& samples,
                         const AutoencoderConfig& config)
    : config_(config),
      input_dim_(samples.empty() ? kEmbeddingDim
                                 : static_cast<int>(samples[0].size())) {
  const std::size_t h = static_cast<std::size_t>(config_.hidden_dim);
  const std::size_t d = static_cast<std::size_t>(input_dim_);
  simd::RecordDispatch();
  Rng rng(config_.seed);

  // Xavier-style initialization.
  auto init = [&rng](std::vector<float>* w, std::size_t rows, std::size_t cols) {
    w->resize(rows * cols);
    const float scale = std::sqrt(6.0f / static_cast<float>(rows + cols));
    for (float& x : *w) {
      x = static_cast<float>(rng.NextDouble(-1.0, 1.0)) * scale;
    }
  };
  init(&w_enc_, h, d);
  init(&w_dec_, d, h);
  b_enc_.assign(h, 0.0f);
  b_dec_.assign(d, 0.0f);

  if (samples.empty()) return;

  // Training set: a deterministic sample of the inputs.
  std::vector<std::uint32_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  const std::size_t train_n = std::min(order.size(), config_.max_training_samples);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const float lr = config_.learning_rate /
                     (1.0f + 0.3f * static_cast<float>(epoch));
    for (std::size_t i = 0; i < train_n; ++i) {
      TrainStep(samples[order[i]], lr);
    }
  }
}

Vector Autoencoder::Forward(const Vector& input, Vector* hidden) const {
  const std::size_t h = static_cast<std::size_t>(config_.hidden_dim);
  const std::size_t d = static_cast<std::size_t>(input_dim_);
  hidden->assign(h, 0.0f);
  for (std::size_t r = 0; r < h; ++r) {
    const float sum = b_enc_[r] + simd::Dot(&w_enc_[r * d], input.data(), d);
    (*hidden)[r] = std::tanh(sum);
  }
  Vector output(d, 0.0f);
  for (std::size_t r = 0; r < d; ++r) {
    // linear decoder
    output[r] = b_dec_[r] + simd::Dot(&w_dec_[r * h], hidden->data(), h);
  }
  return output;
}

void Autoencoder::TrainStep(const Vector& input, float lr) {
  const std::size_t h = static_cast<std::size_t>(config_.hidden_dim);
  const std::size_t d = static_cast<std::size_t>(input_dim_);

  Vector hidden;
  const Vector output = Forward(input, &hidden);

  // Backprop of 0.5 * ||output - input||^2.
  Vector delta_out(d);
  for (std::size_t r = 0; r < d; ++r) delta_out[r] = output[r] - input[r];

  // Hidden deltas through the decoder and tanh'. Axpy is element-wise, so
  // these match the hand-written loops bit for bit.
  Vector delta_hidden(h, 0.0f);
  for (std::size_t r = 0; r < d; ++r) {
    simd::Axpy(delta_out[r], &w_dec_[r * h], delta_hidden.data(), h);
  }
  for (std::size_t c = 0; c < h; ++c) {
    delta_hidden[c] *= 1.0f - hidden[c] * hidden[c];
  }

  // Decoder update.
  for (std::size_t r = 0; r < d; ++r) {
    const float g = lr * delta_out[r];
    simd::Axpy(-g, hidden.data(), &w_dec_[r * h], h);
    b_dec_[r] -= g;
  }
  // Encoder update.
  for (std::size_t r = 0; r < h; ++r) {
    const float g = lr * delta_hidden[r];
    simd::Axpy(-g, input.data(), &w_enc_[r * d], d);
    b_enc_[r] -= g;
  }
}

Vector Autoencoder::Encode(const Vector& input) const {
  Vector hidden;
  Forward(input, &hidden);
  Normalize(&hidden);
  return hidden;
}

double Autoencoder::ReconstructionError(const std::vector<Vector>& samples) const {
  if (samples.empty()) return 0.0;
  double total = 0.0;
  Vector hidden;
  for (const auto& sample : samples) {
    const Vector output = Forward(sample, &hidden);
    total += SquaredL2(output, sample);
  }
  return total / static_cast<double>(samples.size());
}

std::vector<Vector> EncodeAll(const Autoencoder& model,
                              const std::vector<Vector>& inputs) {
  std::vector<Vector> encoded;
  encoded.reserve(inputs.size());
  for (const auto& input : inputs) encoded.push_back(model.Encode(input));
  return encoded;
}

}  // namespace erb::densenn
