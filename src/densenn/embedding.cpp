#include "densenn/embedding.hpp"

#include <cmath>

#include "common/hash.hpp"
#include "common/simd.hpp"
#include "text/clean.hpp"

namespace erb::densenn {
namespace {

// Adds the deterministic Gaussian-ish basis vector of `hash` to `acc`.
// Coordinates are derived by mixing (hash, dim) and mapping to a symmetric
// triangular distribution — cheap, zero-mean, unit-ish variance, and fully
// reproducible. The sum of many such vectors concentrates like a Gaussian.
void AccumulateBasis(std::uint64_t hash, std::vector<double>* acc) {
  std::uint64_t state = SplitMix64(hash);
  for (std::size_t d = 0; d < acc->size(); ++d) {
    state = SplitMix64(state + d);
    // Two uniform halves of the word -> triangular distribution in (-1, 1).
    const double u1 = static_cast<double>(state & 0xffffffffu) / 4294967296.0;
    const double u2 = static_cast<double>(state >> 32) / 4294967296.0;
    (*acc)[d] += u1 - u2;
  }
}

}  // namespace

Vector EmbedText(std::string_view text, int dim) {
  std::vector<double> acc(static_cast<std::size_t>(dim), 0.0);
  const std::vector<std::string> words =
      text::CleanTokens(text, /*clean=*/false);
  std::size_t pieces = 0;
  for (const auto& word : words) {
    // fastText-style subword units: the word itself plus its 3..6-grams of
    // the padded word. Short words contribute the word hash only.
    const std::string padded = "<" + word + ">";
    AccumulateBasis(FnvHash64(padded), &acc);
    ++pieces;
    for (int n = 3; n <= 6; ++n) {
      if (static_cast<int>(padded.size()) < n) break;
      for (std::size_t i = 0; i + n <= padded.size(); ++i) {
        AccumulateBasis(FnvHash64(std::string_view(padded).substr(i, n)), &acc);
        ++pieces;
      }
    }
  }
  Vector out(static_cast<std::size_t>(dim), 0.0f);
  if (pieces > 0) {
    for (std::size_t d = 0; d < out.size(); ++d) {
      out[d] = static_cast<float>(acc[d] / static_cast<double>(pieces));
    }
  }
  Normalize(&out);
  return out;
}

std::vector<Vector> EmbedSide(const core::Dataset& dataset, int side,
                              core::SchemaMode mode, bool clean, int dim) {
  const std::size_t count =
      side == 0 ? dataset.e1().size() : dataset.e2().size();
  std::vector<Vector> vectors;
  vectors.reserve(count);
  for (core::EntityId id = 0; id < count; ++id) {
    const std::string text = dataset.EntityText(side, id, mode);
    vectors.push_back(EmbedText(text::CleanText(text, clean), dim));
  }
  return vectors;
}

float Dot(const Vector& a, const Vector& b) {
  return simd::Dot(a.data(), b.data(), a.size());
}

float SquaredL2(const Vector& a, const Vector& b) {
  return simd::SquaredL2(a.data(), b.data(), a.size());
}

void Normalize(Vector* v) {
  double norm = 0.0;
  for (float x : *v) norm += static_cast<double>(x) * x;
  if (norm <= 0.0) return;
  const float inv = static_cast<float>(1.0 / std::sqrt(norm));
  for (float& x : *v) x *= inv;
}

}  // namespace erb::densenn
