// Partitioned approximate kNN index — the SCANN substitute (DESIGN.md §3).
//
// Mirrors SCANN's architecture: the indexed set is split into disjoint
// partitions by k-means; a query scores only the most relevant partitions,
// using either exact (brute-force) scoring or asymmetric hashing, where the
// indexed vectors are stored 8-bit-quantized and scored against the
// full-precision query, followed by exact re-scoring of the short list.
#pragma once

#include <cstdint>
#include <vector>

#include "densenn/flat_index.hpp"
#include "densenn/vector_matrix.hpp"

namespace erb::densenn {

/// SCANN-style configuration (Table V(b)): scoring mode and similarity.
struct PartitionedConfig {
  bool asymmetric_hashing = true;  ///< AH (approximate) vs BF (exact) scoring
  DenseMetric metric = DenseMetric::kSquaredL2;
  int kmeans_iterations = 8;
  std::uint64_t seed = 7;
};

class PartitionedIndex {
 public:
  PartitionedIndex(std::vector<Vector> vectors, const PartitionedConfig& config);

  /// The ids of the (approximately) k nearest vectors, best first.
  std::vector<std::uint32_t> Search(const Vector& query, int k) const;

  /// Search() for every query, fanned across the thread pool; results[q] is
  /// exactly Search(queries[q], k).
  std::vector<std::vector<std::uint32_t>> SearchBatch(
      const std::vector<Vector>& queries, int k) const;

  std::size_t size() const { return vectors_.rows(); }
  std::size_t NumPartitions() const { return centroids_.rows(); }

 private:
  void Train(std::uint64_t seed, int iterations);
  void Quantize();

  VectorMatrix vectors_;
  PartitionedConfig config_;
  VectorMatrix centroids_;
  std::vector<std::vector<std::uint32_t>> partitions_;
  // Asymmetric hashing codebook: per-vector int8 codes + scale/offset.
  std::vector<std::int8_t> codes_;
  std::vector<float> scales_;
  std::vector<float> offsets_;
};

}  // namespace erb::densenn
