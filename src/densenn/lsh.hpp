// Hyperplane LSH (Charikar 2002) and Cross-Polytope LSH (Andoni et al. 2015)
// over embedding vectors, with multiprobing (Section IV-D).
#pragma once

#include <cstdint>
#include <vector>

#include "core/entity.hpp"
#include "core/metrics.hpp"
#include "densenn/embedding.hpp"
#include "densenn/result.hpp"

namespace erb::densenn {

/// Parameters shared by the two angular LSH families (Table V).
struct AngularLshConfig {
  bool clean = false;
  int tables = 16;    ///< number of independent hash tables
  int hashes = 8;     ///< hash functions concatenated per table
  int probes = 32;    ///< total buckets probed across all tables (>= tables)
  int last_cp_dim = 128;  ///< CP-LSH only: dimensions of the last cross-polytope
  std::uint64_t seed = 1; ///< repetition seed (the methods are stochastic)
};

/// Hyperplane LSH: h(v) = sgn(r . v) per random hyperplane; multiprobe flips
/// the lowest-margin bits first.
DenseResult HyperplaneLsh(const core::Dataset& dataset, core::SchemaMode mode,
                          const AngularLshConfig& config);

/// Cross-Polytope LSH: pseudo-random rotations (sign flips + fast Hadamard
/// transform) followed by the closest cross-polytope vertex; multiprobe
/// substitutes the runner-up vertex of the weakest hash.
DenseResult CrossPolytopeLsh(const core::Dataset& dataset, core::SchemaMode mode,
                             const AngularLshConfig& config);

/// One point of a probe-budget sweep: the effectiveness the method reaches
/// with `probes` total probed buckets.
struct ProbeSweepPoint {
  int probes = 0;
  core::Effectiveness eff;
};

/// Evaluates every probe budget {tables, 2*tables, 4*tables, ...} up to
/// `max_probes` in a single indexing + querying pass over pre-computed
/// embeddings (E1 indexed, E2 querying, as the LSH methods always do).
/// Equivalent to running the method once per budget — this is what makes the
/// auto-probing protocol of the paper's LSH tuning tractable.
std::vector<ProbeSweepPoint> SweepAngularProbes(
    const std::vector<Vector>& indexed, const std::vector<Vector>& queries,
    const core::Dataset& dataset, const AngularLshConfig& config,
    bool cross_polytope, int max_probes);

}  // namespace erb::densenn
