#include "densenn/flat_index.hpp"

#include <algorithm>
#include <utility>

#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace erb::densenn {
namespace {

using Entry = std::pair<float, std::uint32_t>;  // (score, id)

// Scoring policies: higher is better for both, so the scan loop below can be
// instantiated once per metric and carry no per-pair branch.
struct DotScore {
  static float Score(const float* q, const float* v, std::size_t n) {
    return simd::Dot(q, v, n);
  }
};
struct L2Score {
  static float Score(const float* q, const float* v, std::size_t n) {
    return -simd::SquaredL2(q, v, n);
  }
};

bool HeapCmp(const Entry& a, const Entry& b) {
  return a.first != b.first ? a.first > b.first : a.second < b.second;
}

// Offers (score, id) to a bounded min-heap of the best k entries. Ids must be
// offered in ascending order; ties keep the earlier id.
void OfferTopK(std::vector<Entry>* heap, int k, float score, std::uint32_t id) {
  if (static_cast<int>(heap->size()) < k) {
    heap->emplace_back(score, id);
    std::push_heap(heap->begin(), heap->end(), HeapCmp);
  } else if (!heap->empty() && score > heap->front().first) {
    std::pop_heap(heap->begin(), heap->end(), HeapCmp);
    heap->back() = {score, id};
    std::push_heap(heap->begin(), heap->end(), HeapCmp);
  }
}

// Best first: descending score, ascending id on ties.
std::vector<std::uint32_t> FinishTopK(std::vector<Entry>* heap) {
  std::sort(heap->begin(), heap->end(), HeapCmp);
  std::vector<std::uint32_t> ids;
  ids.reserve(heap->size());
  for (const auto& [score, id] : *heap) ids.push_back(id);
  return ids;
}

// Scans the tile [row_begin, row_end) for every query in [query_begin,
// query_end), updating each query's heap. The tile of indexed rows stays
// cache-resident across the whole query block.
template <typename Policy>
void ScanTile(const VectorMatrix& matrix, std::size_t row_begin,
              std::size_t row_end, const std::vector<Vector>& queries,
              std::size_t query_begin, std::size_t query_end, int k,
              std::vector<std::vector<Entry>>* heaps) {
  const std::size_t dim = matrix.dim();
  for (std::size_t q = query_begin; q < query_end; ++q) {
    const float* query = queries[q].data();
    std::vector<Entry>& heap = (*heaps)[q - query_begin];
    for (std::size_t id = row_begin; id < row_end; ++id) {
      OfferTopK(&heap, k, Policy::Score(query, matrix.row(id), dim),
                static_cast<std::uint32_t>(id));
    }
  }
}

// Tiled kNN for one block of queries. Each query visits ids in ascending
// order (tiles ascend, rows within a tile ascend), so per-query results are
// exactly those of the single-query scan.
template <typename Policy>
void SearchBlock(const VectorMatrix& matrix, const std::vector<Vector>& queries,
                 std::size_t query_begin, std::size_t query_end, int k,
                 std::vector<std::vector<std::uint32_t>>* results) {
  std::vector<std::vector<Entry>> heaps(query_end - query_begin);
  for (auto& heap : heaps) heap.reserve(static_cast<std::size_t>(k) + 1);
  for (std::size_t row = 0; row < matrix.rows(); row += FlatIndex::kTileRows) {
    const std::size_t row_end =
        std::min(matrix.rows(), row + FlatIndex::kTileRows);
    ScanTile<Policy>(matrix, row, row_end, queries, query_begin, query_end, k,
                     &heaps);
  }
  for (std::size_t q = query_begin; q < query_end; ++q) {
    (*results)[q] = FinishTopK(&heaps[q - query_begin]);
  }
}

// Tiled range search for one block of queries: every id whose score reaches
// `min_score` (ids ascend per query, matching the single-query scan).
template <typename Policy>
void RangeBlock(const VectorMatrix& matrix, const std::vector<Vector>& queries,
                std::size_t query_begin, std::size_t query_end, float min_score,
                std::vector<std::vector<std::uint32_t>>* results) {
  const std::size_t dim = matrix.dim();
  for (std::size_t row = 0; row < matrix.rows(); row += FlatIndex::kTileRows) {
    const std::size_t row_end =
        std::min(matrix.rows(), row + FlatIndex::kTileRows);
    for (std::size_t q = query_begin; q < query_end; ++q) {
      const float* query = queries[q].data();
      std::vector<std::uint32_t>& out = (*results)[q];
      for (std::size_t id = row; id < row_end; ++id) {
        if (Policy::Score(query, matrix.row(id), dim) >= min_score) {
          out.push_back(static_cast<std::uint32_t>(id));
        }
      }
    }
  }
}

}  // namespace

FlatIndex::FlatIndex(const std::vector<Vector>& vectors, DenseMetric metric)
    : vectors_(vectors), metric_(metric) {
  simd::RecordDispatch();
}

std::vector<std::uint32_t> FlatIndex::Search(const Vector& query, int k) const {
  std::vector<Entry> heap;
  heap.reserve(static_cast<std::size_t>(k) + 1);
  const std::size_t dim = vectors_.dim();
  if (metric_ == DenseMetric::kDotProduct) {
    for (std::uint32_t id = 0; id < vectors_.rows(); ++id) {
      OfferTopK(&heap, k, DotScore::Score(query.data(), vectors_.row(id), dim),
                id);
    }
  } else {
    for (std::uint32_t id = 0; id < vectors_.rows(); ++id) {
      OfferTopK(&heap, k, L2Score::Score(query.data(), vectors_.row(id), dim),
                id);
    }
  }
  return FinishTopK(&heap);
}

std::vector<std::vector<std::uint32_t>> FlatIndex::SearchBatch(
    const std::vector<Vector>& queries, int k) const {
  std::vector<std::vector<std::uint32_t>> results(queries.size());
  ParallelFor(0, queries.size(), /*grain=*/kQueryBlock,
              [&](std::size_t begin, std::size_t end) {
                if (metric_ == DenseMetric::kDotProduct) {
                  SearchBlock<DotScore>(vectors_, queries, begin, end, k,
                                        &results);
                } else {
                  SearchBlock<L2Score>(vectors_, queries, begin, end, k,
                                       &results);
                }
              });
  return results;
}

std::vector<std::uint32_t> FlatIndex::RangeSearch(const Vector& query,
                                                  float radius) const {
  // Both metrics reduce to "score >= min_score": dot scores directly, and
  // SquaredL2 <= radius is -SquaredL2 >= -radius (float negation is exact).
  std::vector<std::uint32_t> ids;
  const std::size_t dim = vectors_.dim();
  if (metric_ == DenseMetric::kDotProduct) {
    for (std::uint32_t id = 0; id < vectors_.rows(); ++id) {
      if (DotScore::Score(query.data(), vectors_.row(id), dim) >= radius) {
        ids.push_back(id);
      }
    }
  } else {
    for (std::uint32_t id = 0; id < vectors_.rows(); ++id) {
      if (L2Score::Score(query.data(), vectors_.row(id), dim) >= -radius) {
        ids.push_back(id);
      }
    }
  }
  return ids;
}

std::vector<std::vector<std::uint32_t>> FlatIndex::RangeSearchBatch(
    const std::vector<Vector>& queries, float radius) const {
  std::vector<std::vector<std::uint32_t>> results(queries.size());
  ParallelFor(0, queries.size(), /*grain=*/kQueryBlock,
              [&](std::size_t begin, std::size_t end) {
                if (metric_ == DenseMetric::kDotProduct) {
                  RangeBlock<DotScore>(vectors_, queries, begin, end, radius,
                                       &results);
                } else {
                  RangeBlock<L2Score>(vectors_, queries, begin, end, -radius,
                                      &results);
                }
              });
  return results;
}

}  // namespace erb::densenn
