#include "densenn/flat_index.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace erb::densenn {
namespace {

// Score where higher is better, regardless of metric.
float Score(DenseMetric metric, const Vector& a, const Vector& b) {
  return metric == DenseMetric::kDotProduct ? Dot(a, b) : -SquaredL2(a, b);
}

}  // namespace

FlatIndex::FlatIndex(std::vector<Vector> vectors, DenseMetric metric)
    : vectors_(std::move(vectors)), metric_(metric) {}

std::vector<std::uint32_t> FlatIndex::Search(const Vector& query, int k) const {
  using Entry = std::pair<float, std::uint32_t>;  // (score, id)
  // Bounded min-heap of the best k scores.
  std::vector<Entry> heap;
  heap.reserve(static_cast<std::size_t>(k) + 1);
  auto cmp = [](const Entry& a, const Entry& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  };
  for (std::uint32_t id = 0; id < vectors_.size(); ++id) {
    const float score = Score(metric_, query, vectors_[id]);
    if (static_cast<int>(heap.size()) < k) {
      heap.emplace_back(score, id);
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (!heap.empty() && score > heap.front().first) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = {score, id};
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  // Best first: descending score, ascending id on ties.
  std::sort(heap.begin(), heap.end(), [](const Entry& a, const Entry& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<std::uint32_t> ids;
  ids.reserve(heap.size());
  for (const auto& [score, id] : heap) ids.push_back(id);
  return ids;
}

std::vector<std::vector<std::uint32_t>> FlatIndex::SearchBatch(
    const std::vector<Vector>& queries, int k) const {
  std::vector<std::vector<std::uint32_t>> results(queries.size());
  ParallelFor(0, queries.size(), /*grain=*/0,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t q = begin; q < end; ++q) {
                  results[q] = Search(queries[q], k);
                }
              });
  return results;
}

std::vector<std::uint32_t> FlatIndex::RangeSearch(const Vector& query,
                                                  float radius) const {
  std::vector<std::uint32_t> ids;
  for (std::uint32_t id = 0; id < vectors_.size(); ++id) {
    const bool within = metric_ == DenseMetric::kDotProduct
                            ? Dot(query, vectors_[id]) >= radius
                            : SquaredL2(query, vectors_[id]) <= radius;
    if (within) ids.push_back(id);
  }
  return ids;
}

}  // namespace erb::densenn
