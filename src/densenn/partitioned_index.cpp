#include "densenn/partitioned_index.hpp"

#include <algorithm>
#include <cmath>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"

namespace erb::densenn {
namespace {

using Entry = std::pair<float, std::uint32_t>;  // (score, id)

// Scoring policies over raw rows (higher is better). The partition scan is
// instantiated per (metric, scoring mode) combination below, so neither
// branch is evaluated per id.
struct DotScore {
  static float Score(const float* q, const float* v, std::size_t n) {
    return simd::Dot(q, v, n);
  }
};
struct L2Score {
  static float Score(const float* q, const float* v, std::size_t n) {
    return -simd::SquaredL2(q, v, n);
  }
};

bool EntryCmp(const Entry& a, const Entry& b) {
  return a.first != b.first ? a.first > b.first : a.second < b.second;
}

}  // namespace

PartitionedIndex::PartitionedIndex(std::vector<Vector> vectors,
                                   const PartitionedConfig& config)
    : vectors_(vectors), config_(config) {
  simd::RecordDispatch();
  Train(config.seed, config.kmeans_iterations);
  if (config_.asymmetric_hashing) Quantize();
}

void PartitionedIndex::Train(std::uint64_t seed, int iterations) {
  const std::size_t n = vectors_.rows();
  const std::size_t dim = vectors_.dim();
  // SCANN sizes partitions around sqrt(n); at least one.
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::sqrt(static_cast<double>(n))));
  Rng rng(seed);

  // Initialize centroids from random distinct vectors.
  centroids_ = VectorMatrix(k, dim);
  for (std::size_t c = 0; c < k; ++c) {
    const float* src =
        vectors_.row(rng.NextBounded(std::max<std::size_t>(1, n)));
    float* dst = centroids_.mutable_row(c);
    for (std::size_t d = 0; d < dim; ++d) dst[d] = src[d];
  }

  std::vector<std::uint32_t> assignment(n, 0);
  for (int iter = 0; iter < iterations; ++iter) {
    // Assign. Each vector's nearest centroid is independent; the centroid
    // update below stays sequential so its float accumulation order is fixed.
    ParallelFor(0, n, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const float* v = vectors_.row(i);
        float best = -1e30f;
        std::uint32_t best_c = 0;
        for (std::uint32_t c = 0; c < centroids_.rows(); ++c) {
          const float score = -simd::SquaredL2(v, centroids_.row(c), dim);
          if (score > best) {
            best = score;
            best_c = c;
          }
        }
        assignment[i] = best_c;
      }
    });
    // Update.
    std::vector<std::vector<float>> sums(centroids_.rows(),
                                         std::vector<float>(dim, 0.0f));
    std::vector<std::size_t> counts(centroids_.rows(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      auto& sum = sums[assignment[i]];
      const float* v = vectors_.row(i);
      for (std::size_t d = 0; d < dim; ++d) sum[d] += v[d];
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < centroids_.rows(); ++c) {
      float* centroid = centroids_.mutable_row(c);
      if (counts[c] == 0) {
        // Re-seed an empty partition with a random vector.
        if (n > 0) {
          const float* src = vectors_.row(rng.NextBounded(n));
          for (std::size_t d = 0; d < dim; ++d) centroid[d] = src[d];
        }
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        centroid[d] = sums[c][d] / static_cast<float>(counts[c]);
      }
    }
  }

  partitions_.assign(centroids_.rows(), {});
  for (std::size_t i = 0; i < n; ++i) {
    partitions_[assignment[i]].push_back(static_cast<std::uint32_t>(i));
  }
}

void PartitionedIndex::Quantize() {
  const std::size_t n = vectors_.rows();
  const std::size_t dim = vectors_.dim();
  codes_.resize(n * dim);
  scales_.resize(n);
  offsets_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* v = vectors_.row(i);
    float lo = 0.0f, hi = 0.0f;
    for (std::size_t d = 0; d < dim; ++d) {
      lo = std::min(lo, v[d]);
      hi = std::max(hi, v[d]);
    }
    const float scale = (hi - lo) > 1e-12f ? (hi - lo) / 254.0f : 1.0f;
    scales_[i] = scale;
    offsets_[i] = lo;
    for (std::size_t d = 0; d < dim; ++d) {
      const float q = (v[d] - lo) / scale - 127.0f;
      codes_[i * dim + d] = static_cast<std::int8_t>(
          std::clamp(std::lround(q), -127L, 127L));
    }
  }
}

std::vector<std::vector<std::uint32_t>> PartitionedIndex::SearchBatch(
    const std::vector<Vector>& queries, int k) const {
  std::vector<std::vector<std::uint32_t>> results(queries.size());
  ParallelFor(0, queries.size(), /*grain=*/0,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t q = begin; q < end; ++q) {
                  results[q] = Search(queries[q], k);
                }
              });
  return results;
}

namespace {

// Scores one partition, appending (score, id) entries. kAsymmetric selects
// quantized-against-full-precision scoring: the int8 code is dequantized into
// `scratch` and scored with the same SIMD kernel as the exact path, so both
// paths share one reduction order and the dequantize loop is the only extra
// per-id work.
template <typename Policy, bool kAsymmetric>
void ScorePartition(const VectorMatrix& vectors,
                    const std::vector<std::uint32_t>& partition,
                    const std::int8_t* codes, const float* scales,
                    const float* offsets, const float* query, std::size_t dim,
                    std::vector<float>* scratch, std::vector<Entry>* scored) {
  for (std::uint32_t id : partition) {
    float score;
    if constexpr (kAsymmetric) {
      const std::int8_t* code = codes + static_cast<std::size_t>(id) * dim;
      const float scale = scales[id];
      const float offset = offsets[id];
      float* deq = scratch->data();
      for (std::size_t d = 0; d < dim; ++d) {
        deq[d] = (code[d] + 127.0f) * scale + offset;
      }
      score = Policy::Score(query, deq, dim);
    } else {
      score = Policy::Score(query, vectors.row(id), dim);
    }
    scored->emplace_back(score, id);
  }
}

}  // namespace

std::vector<std::uint32_t> PartitionedIndex::Search(const Vector& query,
                                                    int k) const {
  // Rank partitions by centroid proximity and probe a fixed budget of the
  // top ~sqrt(#partitions). The budget is deliberately independent of k so
  // result prefixes are consistent across k (Search(q, k) equals the first k
  // entries of Search(q, k') for k' > k under brute-force scoring).
  const std::size_t dim = vectors_.dim();
  const bool dot = config_.metric == DenseMetric::kDotProduct;
  std::vector<Entry> centroid_scores;
  centroid_scores.reserve(centroids_.rows());
  for (std::uint32_t c = 0; c < centroids_.rows(); ++c) {
    const float score = dot ? DotScore::Score(query.data(), centroids_.row(c), dim)
                            : L2Score::Score(query.data(), centroids_.row(c), dim);
    centroid_scores.emplace_back(score, c);
  }
  std::sort(centroid_scores.begin(), centroid_scores.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t probes = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::sqrt(static_cast<double>(centroids_.rows()))) + 1);
  probes = std::min(probes, centroid_scores.size());

  std::vector<Entry> scored;
  std::vector<float> scratch(config_.asymmetric_hashing ? dim : 0);
  for (std::size_t p = 0; p < probes; ++p) {
    const auto& partition = partitions_[centroid_scores[p].second];
    if (config_.asymmetric_hashing) {
      if (dot) {
        ScorePartition<DotScore, true>(vectors_, partition, codes_.data(),
                                       scales_.data(), offsets_.data(),
                                       query.data(), dim, &scratch, &scored);
      } else {
        ScorePartition<L2Score, true>(vectors_, partition, codes_.data(),
                                      scales_.data(), offsets_.data(),
                                      query.data(), dim, &scratch, &scored);
      }
    } else {
      if (dot) {
        ScorePartition<DotScore, false>(vectors_, partition, nullptr, nullptr,
                                        nullptr, query.data(), dim, &scratch,
                                        &scored);
      } else {
        ScorePartition<L2Score, false>(vectors_, partition, nullptr, nullptr,
                                       nullptr, query.data(), dim, &scratch,
                                       &scored);
      }
    }
  }

  // Short-list selection; with asymmetric hashing, exact re-scoring of the
  // top max(4k, 100) mirrors SCANN's reordering stage (the floor keeps the
  // re-scoring effective when quantization error is large relative to the
  // vector scale, e.g. sparse near-zero embeddings).
  const std::size_t shortlist =
      config_.asymmetric_hashing
          ? std::min<std::size_t>(scored.size(),
                                  std::max<std::size_t>(
                                      4 * static_cast<std::size_t>(k), 100))
          : std::min<std::size_t>(scored.size(), static_cast<std::size_t>(k));
  std::partial_sort(scored.begin(), scored.begin() + shortlist, scored.end(),
                    EntryCmp);
  scored.resize(shortlist);
  if (config_.asymmetric_hashing) {
    for (auto& [score, id] : scored) {
      score = dot ? DotScore::Score(query.data(), vectors_.row(id), dim)
                  : L2Score::Score(query.data(), vectors_.row(id), dim);
    }
    std::sort(scored.begin(), scored.end(), EntryCmp);
  }

  std::vector<std::uint32_t> ids;
  ids.reserve(std::min<std::size_t>(scored.size(), static_cast<std::size_t>(k)));
  for (std::size_t i = 0; i < scored.size() && i < static_cast<std::size_t>(k);
       ++i) {
    ids.push_back(scored[i].second);
  }
  return ids;
}

}  // namespace erb::densenn
