#include "densenn/partitioned_index.hpp"

#include <algorithm>
#include <cmath>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace erb::densenn {
namespace {

float Score(DenseMetric metric, const Vector& a, const Vector& b) {
  return metric == DenseMetric::kDotProduct ? Dot(a, b) : -SquaredL2(a, b);
}

}  // namespace

PartitionedIndex::PartitionedIndex(std::vector<Vector> vectors,
                                   const PartitionedConfig& config)
    : vectors_(std::move(vectors)), config_(config) {
  Train(config.seed, config.kmeans_iterations);
  if (config_.asymmetric_hashing) Quantize();
}

void PartitionedIndex::Train(std::uint64_t seed, int iterations) {
  const std::size_t n = vectors_.size();
  // SCANN sizes partitions around sqrt(n); at least one.
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::sqrt(static_cast<double>(n))));
  Rng rng(seed);

  // Initialize centroids from random distinct vectors.
  centroids_.clear();
  centroids_.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    centroids_.push_back(vectors_[rng.NextBounded(std::max<std::size_t>(1, n))]);
  }

  std::vector<std::uint32_t> assignment(n, 0);
  for (int iter = 0; iter < iterations; ++iter) {
    // Assign. Each vector's nearest centroid is independent; the centroid
    // update below stays sequential so its float accumulation order is fixed.
    ParallelFor(0, n, /*grain=*/0, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        float best = -1e30f;
        std::uint32_t best_c = 0;
        for (std::uint32_t c = 0; c < centroids_.size(); ++c) {
          const float score = -SquaredL2(vectors_[i], centroids_[c]);
          if (score > best) {
            best = score;
            best_c = c;
          }
        }
        assignment[i] = best_c;
      }
    });
    // Update.
    std::vector<Vector> sums(centroids_.size(),
                             Vector(vectors_.empty() ? 0 : vectors_[0].size(), 0.0f));
    std::vector<std::size_t> counts(centroids_.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      auto& sum = sums[assignment[i]];
      for (std::size_t d = 0; d < sum.size(); ++d) sum[d] += vectors_[i][d];
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < centroids_.size(); ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty partition with a random vector.
        if (n > 0) centroids_[c] = vectors_[rng.NextBounded(n)];
        continue;
      }
      for (std::size_t d = 0; d < sums[c].size(); ++d) {
        centroids_[c][d] = sums[c][d] / static_cast<float>(counts[c]);
      }
    }
  }

  partitions_.assign(centroids_.size(), {});
  for (std::size_t i = 0; i < n; ++i) {
    partitions_[assignment[i]].push_back(static_cast<std::uint32_t>(i));
  }
}

void PartitionedIndex::Quantize() {
  const std::size_t n = vectors_.size();
  const std::size_t dim = n == 0 ? 0 : vectors_[0].size();
  codes_.resize(n * dim);
  scales_.resize(n);
  offsets_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    float lo = 0.0f, hi = 0.0f;
    for (float x : vectors_[i]) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    const float scale = (hi - lo) > 1e-12f ? (hi - lo) / 254.0f : 1.0f;
    scales_[i] = scale;
    offsets_[i] = lo;
    for (std::size_t d = 0; d < dim; ++d) {
      const float q = (vectors_[i][d] - lo) / scale - 127.0f;
      codes_[i * dim + d] = static_cast<std::int8_t>(
          std::clamp(std::lround(q), -127L, 127L));
    }
  }
}

std::vector<std::vector<std::uint32_t>> PartitionedIndex::SearchBatch(
    const std::vector<Vector>& queries, int k) const {
  std::vector<std::vector<std::uint32_t>> results(queries.size());
  ParallelFor(0, queries.size(), /*grain=*/0,
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t q = begin; q < end; ++q) {
                  results[q] = Search(queries[q], k);
                }
              });
  return results;
}

std::vector<std::uint32_t> PartitionedIndex::Search(const Vector& query,
                                                    int k) const {
  // Rank partitions by centroid proximity and probe a fixed budget of the
  // top ~sqrt(#partitions). The budget is deliberately independent of k so
  // result prefixes are consistent across k (Search(q, k) equals the first k
  // entries of Search(q, k') for k' > k under brute-force scoring).
  std::vector<std::pair<float, std::uint32_t>> centroid_scores;
  centroid_scores.reserve(centroids_.size());
  for (std::uint32_t c = 0; c < centroids_.size(); ++c) {
    centroid_scores.emplace_back(Score(config_.metric, query, centroids_[c]), c);
  }
  std::sort(centroid_scores.begin(), centroid_scores.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t probes = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::sqrt(static_cast<double>(centroids_.size()))) + 1);
  probes = std::min(probes, centroid_scores.size());

  const std::size_t dim = vectors_.empty() ? 0 : vectors_[0].size();
  using Entry = std::pair<float, std::uint32_t>;
  std::vector<Entry> scored;

  std::size_t probed = 0;
  for (std::size_t p = 0; p < centroid_scores.size(); ++p) {
    if (probed >= probes) break;
    const auto& partition = partitions_[centroid_scores[p].second];
    for (std::uint32_t id : partition) {
      float score;
      if (config_.asymmetric_hashing) {
        // Asymmetric scoring: full-precision query against quantized vector.
        const std::int8_t* code = &codes_[id * dim];
        const float scale = scales_[id];
        const float offset = offsets_[id];
        if (config_.metric == DenseMetric::kDotProduct) {
          float dot = 0.0f;
          for (std::size_t d = 0; d < dim; ++d) {
            dot += query[d] * ((code[d] + 127.0f) * scale + offset);
          }
          score = dot;
        } else {
          float dist = 0.0f;
          for (std::size_t d = 0; d < dim; ++d) {
            const float diff = query[d] - ((code[d] + 127.0f) * scale + offset);
            dist += diff * diff;
          }
          score = -dist;
        }
      } else {
        score = Score(config_.metric, query, vectors_[id]);
      }
      scored.emplace_back(score, id);
    }
    ++probed;
  }

  // Short-list selection; with asymmetric hashing, exact re-scoring of the
  // top max(4k, 100) mirrors SCANN's reordering stage (the floor keeps the
  // re-scoring effective when quantization error is large relative to the
  // vector scale, e.g. sparse near-zero embeddings).
  const std::size_t shortlist =
      config_.asymmetric_hashing
          ? std::min<std::size_t>(scored.size(),
                                  std::max<std::size_t>(
                                      4 * static_cast<std::size_t>(k), 100))
          : std::min<std::size_t>(scored.size(), static_cast<std::size_t>(k));
  std::partial_sort(scored.begin(), scored.begin() + shortlist, scored.end(),
                    [](const Entry& a, const Entry& b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                    });
  scored.resize(shortlist);
  if (config_.asymmetric_hashing) {
    for (auto& [score, id] : scored) {
      score = Score(config_.metric, query, vectors_[id]);
    }
    std::sort(scored.begin(), scored.end(), [](const Entry& a, const Entry& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
  }

  std::vector<std::uint32_t> ids;
  ids.reserve(std::min<std::size_t>(scored.size(), static_cast<std::size_t>(k)));
  for (std::size_t i = 0; i < scored.size() && i < static_cast<std::size_t>(k);
       ++i) {
    ids.push_back(scored[i].second);
  }
  return ids;
}

}  // namespace erb::densenn
