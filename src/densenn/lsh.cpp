#include "densenn/lsh.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "densenn/embedding.hpp"
#include "densenn/vector_matrix.hpp"
#include "obs/trace.hpp"

namespace erb::densenn {
namespace {

using BucketMap = std::unordered_map<std::uint64_t, std::vector<core::EntityId>>;

// ---------------------------------------------------------------------------
// Hyperplane LSH
// ---------------------------------------------------------------------------

struct HyperplaneTables {
  // hyperplanes[t] is a (hashes x dim) matrix; row h is one normal vector.
  // Contiguous rows keep the per-vector projection loop streaming.
  std::vector<VectorMatrix> hyperplanes;

  HyperplaneTables(int tables, int hashes, int dim, std::uint64_t seed) {
    simd::RecordDispatch();
    Rng rng(SplitMix64(seed ^ 0x4b1d));
    hyperplanes.reserve(static_cast<std::size_t>(tables));
    for (int t = 0; t < tables; ++t) {
      VectorMatrix table(static_cast<std::size_t>(hashes),
                         static_cast<std::size_t>(dim));
      for (int h = 0; h < hashes; ++h) {
        float* normal = table.mutable_row(static_cast<std::size_t>(h));
        for (int d = 0; d < dim; ++d) {
          normal[d] = static_cast<float>(rng.NextGaussian());
        }
      }
      hyperplanes.push_back(std::move(table));
    }
  }

  // Returns the bucket key of `v` in table `t` and fills `margins` with the
  // absolute dot products per bit (the flip order for multiprobing).
  std::uint64_t Key(const Vector& v, int t, std::vector<float>* margins) const {
    const VectorMatrix& table = hyperplanes[static_cast<std::size_t>(t)];
    std::uint64_t key = 0;
    margins->clear();
    for (std::size_t h = 0; h < table.rows(); ++h) {
      const float dot = simd::Dot(table.row(h), v.data(), table.dim());
      if (dot >= 0.0f) key |= (1ULL << h);
      margins->push_back(std::abs(dot));
    }
    return key;
  }
};

// ---------------------------------------------------------------------------
// Cross-Polytope LSH
// ---------------------------------------------------------------------------

// In-place fast Hadamard transform; size must be a power of two.
void FastHadamard(std::vector<float>* v) {
  const std::size_t n = v->size();
  for (std::size_t len = 1; len < n; len <<= 1) {
    for (std::size_t i = 0; i < n; i += len << 1) {
      for (std::size_t j = i; j < i + len; ++j) {
        const float a = (*v)[j];
        const float b = (*v)[j + len];
        (*v)[j] = a + b;
        (*v)[j + len] = a - b;
      }
    }
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(n));
  for (float& x : *v) x *= scale;
}

struct CrossPolytopeTables {
  int tables;
  int hashes;
  int padded_dim;
  int last_cp_dim;
  // signs[t][h][round] is a padded_dim vector of +-1 sign flips.
  std::vector<std::vector<std::vector<std::vector<float>>>> signs;

  CrossPolytopeTables(int tables_in, int hashes_in, int dim, int last_dim,
                      std::uint64_t seed)
      : tables(tables_in), hashes(hashes_in) {
    padded_dim = static_cast<int>(std::bit_ceil(static_cast<unsigned>(dim)));
    last_cp_dim = std::clamp(last_dim, 1, padded_dim);
    Rng rng(SplitMix64(seed ^ 0xc9055));
    signs.resize(static_cast<std::size_t>(tables));
    for (auto& table : signs) {
      table.resize(static_cast<std::size_t>(hashes));
      for (auto& hash : table) {
        hash.resize(3);
        for (auto& round : hash) {
          round.resize(static_cast<std::size_t>(padded_dim));
          for (float& s : round) s = rng.NextBool(0.5) ? 1.0f : -1.0f;
        }
      }
    }
  }

  // The rotated vector of `v` under hash (t, h).
  std::vector<float> Rotate(const Vector& v, int t, int h) const {
    std::vector<float> x(static_cast<std::size_t>(padded_dim), 0.0f);
    std::copy(v.begin(), v.end(), x.begin());
    for (const auto& round : signs[static_cast<std::size_t>(t)]
                                  [static_cast<std::size_t>(h)]) {
      for (std::size_t d = 0; d < x.size(); ++d) x[d] *= round[d];
      FastHadamard(&x);
    }
    return x;
  }

  // Vertex id of the closest cross-polytope vertex among the first `dims`
  // coordinates: 2 * argmax + (sign bit). `runner_up` (optional) receives the
  // second-closest vertex for multiprobing.
  static std::uint32_t Vertex(const std::vector<float>& x, int dims,
                              std::uint32_t* runner_up) {
    int best = 0, second = 0;
    float best_abs = -1.0f, second_abs = -1.0f;
    for (int d = 0; d < dims; ++d) {
      const float a = std::abs(x[static_cast<std::size_t>(d)]);
      if (a > best_abs) {
        second = best;
        second_abs = best_abs;
        best = d;
        best_abs = a;
      } else if (a > second_abs) {
        second = d;
        second_abs = a;
      }
    }
    auto encode = [&x](int d) {
      return static_cast<std::uint32_t>(2 * d) +
             (x[static_cast<std::size_t>(d)] < 0.0f ? 1u : 0u);
    };
    if (runner_up != nullptr) *runner_up = dims > 1 ? encode(second) : encode(best);
    return encode(best);
  }

  // Bucket key in table `t`; `alternates` receives per-hash runner-up keys
  // (key with hash h's vertex replaced by its runner-up), cheapest first is
  // approximated by order.
  std::uint64_t Key(const Vector& v, int t,
                    std::vector<std::uint64_t>* alternates) const {
    std::vector<std::uint32_t> vertices(static_cast<std::size_t>(hashes));
    std::vector<std::uint32_t> runners(static_cast<std::size_t>(hashes));
    for (int h = 0; h < hashes; ++h) {
      const auto rotated = Rotate(v, t, h);
      const int dims = h == hashes - 1 ? last_cp_dim : padded_dim;
      vertices[static_cast<std::size_t>(h)] =
          Vertex(rotated, dims, &runners[static_cast<std::size_t>(h)]);
    }
    auto combine = [&vertices](int replaced, std::uint32_t replacement) {
      std::uint64_t key = 0xc90;
      for (std::size_t h = 0; h < vertices.size(); ++h) {
        const std::uint32_t vertex =
            static_cast<int>(h) == replaced ? replacement : vertices[h];
        key = HashCombine(key, vertex + 1);
      }
      return key;
    };
    if (alternates != nullptr) {
      alternates->clear();
      for (int h = hashes - 1; h >= 0; --h) {
        alternates->push_back(combine(h, runners[static_cast<std::size_t>(h)]));
      }
    }
    return combine(-1, 0);
  }
};

// Emits candidates for every query against per-table bucket maps.
template <typename IndexKeys, typename ProbeKeys>
DenseResult RunAngularLsh(const core::Dataset& dataset, core::SchemaMode mode,
                          const AngularLshConfig& config, IndexKeys&& index_keys,
                          ProbeKeys&& probe_keys) {
  DenseResult result;

  std::vector<Vector> vectors1, vectors2;
  result.timing.Measure(kPhasePreprocess, [&] {
    vectors1 = EmbedSide(dataset, 0, mode, config.clean);
    vectors2 = EmbedSide(dataset, 1, mode, config.clean);
  });

  std::vector<BucketMap> buckets(static_cast<std::size_t>(config.tables));
  result.timing.Measure(kPhaseIndex, [&] {
    // Each table holds at most one bucket per indexed vector: pre-sizing to
    // that cardinality makes the build insert-only (no mid-build rehash).
    for (auto& table : buckets) table.reserve(vectors1.size());
    for (core::EntityId id = 0; id < vectors1.size(); ++id) {
      for (int t = 0; t < config.tables; ++t) {
        buckets[static_cast<std::size_t>(t)][index_keys(vectors1[id], t)]
            .push_back(id);
      }
    }
  });

  result.timing.Measure(kPhaseQuery, [&] {
    // Queries only read the bucket maps; each chunk collects into a private
    // CandidateSet, merged in ascending chunk order.
    result.candidates = ParallelMapReduce<core::CandidateSet>(
        0, vectors2.size(), /*grain=*/0,
        [&](std::size_t begin, std::size_t end) {
          core::CandidateSet chunk;
          std::vector<std::uint64_t> keys;
          for (std::size_t id = begin; id < end; ++id) {
            for (int t = 0; t < config.tables; ++t) {
              keys.clear();
              probe_keys(vectors2[id], t, &keys);
              const auto& table = buckets[static_cast<std::size_t>(t)];
              for (std::uint64_t key : keys) {
                auto it = table.find(key);
                if (it == table.end()) continue;
                for (core::EntityId indexed : it->second) {
                  chunk.Add(indexed, static_cast<core::EntityId>(id));
                }
              }
            }
          }
          return chunk;
        },
        [](core::CandidateSet& into, core::CandidateSet&& from) {
          into.Merge(std::move(from));
        });
    // Sort + dedup is part of emitting candidates: keep it inside timed RT.
    result.candidates.Finalize();
  });
  obs::GaugeSet("dense.index_vectors", vectors1.size());
  obs::CounterAdd("dense.candidates", result.candidates.size());
  return result;
}

// Fills `keys` with the probe sequence of vector `v` in table `t`: the base
// bucket followed by the multiprobe alternates, best first, capped at
// `max_keys` entries.
void HpProbeSequence(const HyperplaneTables& tables, const Vector& v, int t,
                     int max_keys, std::vector<std::uint64_t>* keys) {
  std::vector<float> margins;
  const std::uint64_t base = tables.Key(v, t, &margins);
  keys->push_back(base);
  std::vector<int> order(margins.size());
  for (std::size_t i = 0; i < margins.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&margins](int a, int b) {
    return margins[static_cast<std::size_t>(a)] <
           margins[static_cast<std::size_t>(b)];
  });
  for (int p = 1; p < max_keys && p <= static_cast<int>(order.size()); ++p) {
    keys->push_back(base ^ (1ULL << order[static_cast<std::size_t>(p - 1)]));
  }
}

void CpProbeSequence(const CrossPolytopeTables& tables, const Vector& v, int t,
                     int max_keys, std::vector<std::uint64_t>* keys) {
  std::vector<std::uint64_t> alternates;
  keys->push_back(tables.Key(v, t, &alternates));
  for (int p = 1; p < max_keys && p <= static_cast<int>(alternates.size()); ++p) {
    keys->push_back(alternates[static_cast<std::size_t>(p - 1)]);
  }
}

}  // namespace

std::vector<ProbeSweepPoint> SweepAngularProbes(
    const std::vector<Vector>& indexed, const std::vector<Vector>& queries,
    const core::Dataset& dataset, const AngularLshConfig& config,
    bool cross_polytope, int max_probes) {
  // Budget levels: probes_per_table in {1, 2, 4, ..., per_table_cap}.
  const int per_table_cap = std::max(1, max_probes / std::max(1, config.tables));
  int num_levels = 1;
  while ((1 << num_levels) <= per_table_cap) ++num_levels;

  std::optional<HyperplaneTables> hp;
  std::optional<CrossPolytopeTables> cp;
  if (cross_polytope) {
    cp.emplace(config.tables, config.hashes, kEmbeddingDim, config.last_cp_dim,
               config.seed);
  } else {
    hp.emplace(config.tables, config.hashes, kEmbeddingDim, config.seed);
  }
  std::vector<float> margins;
  auto index_key = [&](const Vector& v, int t) {
    return cross_polytope ? cp->Key(v, t, nullptr) : hp->Key(v, t, &margins);
  };

  std::vector<BucketMap> buckets(static_cast<std::size_t>(config.tables));
  // At most one bucket per indexed vector per table (see RunAngularLsh).
  for (auto& table : buckets) table.reserve(indexed.size());
  for (core::EntityId id = 0; id < indexed.size(); ++id) {
    for (int t = 0; t < config.tables; ++t) {
      buckets[static_cast<std::size_t>(t)][index_key(indexed[id], t)].push_back(id);
    }
  }

  // min_level[pair] = cheapest budget level that surfaces the pair. Each
  // chunk of queries builds a private map; the merge takes the minimum per
  // pair, which is commutative, so the map's contents (and the histogram
  // below) are independent of the thread count.
  using LevelMap = std::unordered_map<core::PairKey, std::uint8_t>;
  const LevelMap min_level = ParallelMapReduce<LevelMap>(
      0, queries.size(), /*grain=*/0,
      [&](std::size_t q_begin, std::size_t q_end) {
        LevelMap chunk;
        std::vector<std::uint64_t> keys;
        for (std::size_t q = q_begin; q < q_end; ++q) {
          for (int t = 0; t < config.tables; ++t) {
            keys.clear();
            if (cross_polytope) {
              CpProbeSequence(*cp, queries[q], t, per_table_cap, &keys);
            } else {
              HpProbeSequence(*hp, queries[q], t, per_table_cap, &keys);
            }
            const auto& table = buckets[static_cast<std::size_t>(t)];
            for (std::size_t i = 0; i < keys.size(); ++i) {
              auto it = table.find(keys[i]);
              if (it == table.end()) continue;
              // Probe i (0-based) needs a per-table budget of at least i+1,
              // i.e. level ceil(log2(i+1)).
              std::uint8_t level = 0;
              while ((1u << level) < i + 1) ++level;
              for (core::EntityId id : it->second) {
                const core::PairKey pair =
                    core::MakePair(id, static_cast<core::EntityId>(q));
                auto [entry, inserted] = chunk.try_emplace(pair, level);
                if (!inserted && level < entry->second) entry->second = level;
              }
            }
          }
        }
        return chunk;
      },
      [](LevelMap& into, LevelMap&& from) {
        for (const auto& [pair, level] : from) {
          auto [entry, inserted] = into.try_emplace(pair, level);
          if (!inserted && level < entry->second) entry->second = level;
        }
      });

  // Histogram per level, then cumulative effectiveness per budget.
  std::vector<std::uint64_t> pairs_at(static_cast<std::size_t>(num_levels), 0);
  std::vector<std::uint64_t> dups_at(static_cast<std::size_t>(num_levels), 0);
  for (const auto& [pair, level] : min_level) {
    const auto l = std::min<std::size_t>(level, num_levels - 1);
    ++pairs_at[l];
    if (dataset.IsDuplicate(pair)) ++dups_at[l];
  }
  const double total_duplicates =
      static_cast<double>(std::max<std::size_t>(1, dataset.NumDuplicates()));

  std::vector<ProbeSweepPoint> points;
  std::uint64_t pairs = 0, detected = 0;
  for (int level = 0; level < num_levels; ++level) {
    pairs += pairs_at[static_cast<std::size_t>(level)];
    detected += dups_at[static_cast<std::size_t>(level)];
    ProbeSweepPoint point;
    point.probes = config.tables * (1 << level);
    point.eff.candidates = pairs;
    point.eff.detected = detected;
    point.eff.pc = static_cast<double>(detected) / total_duplicates;
    point.eff.pq = pairs == 0 ? 0.0 : static_cast<double>(detected) / pairs;
    points.push_back(point);
  }
  return points;
}

DenseResult HyperplaneLsh(const core::Dataset& dataset, core::SchemaMode mode,
                          const AngularLshConfig& config) {
  HyperplaneTables tables(config.tables, config.hashes, kEmbeddingDim,
                          config.seed);
  const int probes_per_table =
      std::max(1, config.probes / std::max(1, config.tables));

  std::vector<float> margins;
  auto index_keys = [&tables, &margins](const Vector& v, int t) {
    return tables.Key(v, t, &margins);
  };
  auto probe_keys = [&tables, probes_per_table](
                        const Vector& v, int t, std::vector<std::uint64_t>* keys) {
    std::vector<float> m;
    const std::uint64_t base = tables.Key(v, t, &m);
    keys->push_back(base);
    // Flip bits in ascending margin order: the most uncertain bits first.
    std::vector<int> order(m.size());
    for (std::size_t i = 0; i < m.size(); ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(),
              [&m](int a, int b) { return m[static_cast<std::size_t>(a)] <
                                          m[static_cast<std::size_t>(b)]; });
    for (int p = 1; p < probes_per_table && p <= static_cast<int>(order.size());
         ++p) {
      keys->push_back(base ^ (1ULL << order[static_cast<std::size_t>(p - 1)]));
    }
  };
  return RunAngularLsh(dataset, mode, config, index_keys, probe_keys);
}

DenseResult CrossPolytopeLsh(const core::Dataset& dataset, core::SchemaMode mode,
                             const AngularLshConfig& config) {
  CrossPolytopeTables tables(config.tables, config.hashes, kEmbeddingDim,
                             config.last_cp_dim, config.seed);
  const int probes_per_table =
      std::max(1, config.probes / std::max(1, config.tables));

  auto index_keys = [&tables](const Vector& v, int t) {
    return tables.Key(v, t, nullptr);
  };
  auto probe_keys = [&tables, probes_per_table](
                        const Vector& v, int t, std::vector<std::uint64_t>* keys) {
    std::vector<std::uint64_t> alternates;
    keys->push_back(tables.Key(v, t, &alternates));
    for (int p = 1; p < probes_per_table &&
                    p <= static_cast<int>(alternates.size());
         ++p) {
      keys->push_back(alternates[static_cast<std::size_t>(p - 1)]);
    }
  };
  return RunAngularLsh(dataset, mode, config, index_keys, probe_keys);
}

}  // namespace erb::densenn
