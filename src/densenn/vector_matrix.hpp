// Contiguous row-major float storage for dense vector collections.
//
// The pointer-chasing std::vector<Vector> layout costs the scan kernels one
// indirection plus an unpredictable heap address per row; VectorMatrix keeps
// every row in one allocation with the row stride padded to kRowAlign bytes,
// so a full scan walks memory strictly sequentially and every row start is
// 32-byte-aligned for the vector loads in common/simd.hpp. Padding floats
// are zero and sit outside the logical dimension — kernels run over
// [0, dim), so padding never enters any reduction.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "densenn/embedding.hpp"

namespace erb::densenn {

/// Minimal aligned allocator so matrix storage can live in a std::vector.
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  using value_type = T;

  // Required explicitly: allocator_traits cannot synthesize rebind across a
  // non-type template parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Alignment));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const { return true; }
};

/// Row alignment in bytes (one AVX2 register).
inline constexpr std::size_t kRowAlign = 32;

/// A dense (rows x dim) float matrix with aligned, padded rows.
class VectorMatrix {
 public:
  VectorMatrix() = default;

  /// Copies `rows` into contiguous storage. Every row must have the same
  /// dimensionality as the first; shorter storage is a caller bug.
  explicit VectorMatrix(const std::vector<Vector>& rows)
      : VectorMatrix(rows.size(),
                     rows.empty() ? 0 : rows.front().size()) {
    for (std::size_t r = 0; r < rows.size(); ++r) {
      float* out = mutable_row(r);
      for (std::size_t d = 0; d < dim_; ++d) out[d] = rows[r][d];
    }
  }

  /// An all-zero (rows x dim) matrix.
  VectorMatrix(std::size_t rows, std::size_t dim)
      : rows_(rows),
        dim_(dim),
        stride_((dim + kFloatsPerAlign - 1) / kFloatsPerAlign *
                kFloatsPerAlign),
        data_(rows * stride_, 0.0f) {}

  std::size_t rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  /// Logical dimensionality (kernels reduce over exactly this many floats).
  std::size_t dim() const { return dim_; }
  /// Floats between consecutive row starts (dim rounded up to the alignment).
  std::size_t stride() const { return stride_; }

  const float* row(std::size_t r) const { return data_.data() + r * stride_; }
  float* mutable_row(std::size_t r) { return data_.data() + r * stride_; }

  /// Materializes row `r` as a Vector (for callers that still want one).
  Vector ToVector(std::size_t r) const {
    const float* p = row(r);
    return Vector(p, p + dim_);
  }

 private:
  static constexpr std::size_t kFloatsPerAlign = kRowAlign / sizeof(float);

  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::size_t stride_ = 0;
  std::vector<float, AlignedAllocator<float, kRowAlign>> data_;
};

}  // namespace erb::densenn
