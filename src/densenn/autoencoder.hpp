// Autoencoder tuple embedding — the DeepBlocker substitute (DESIGN.md §3).
//
// DeepBlocker's best-performing module converts each entity's fastText
// vector through an autoencoder trained self-supervised on the dataset
// itself, then searches the learned space with FAISS. We reproduce the
// architecture with a single-hidden-layer autoencoder (300 -> h -> 300,
// tanh activation) trained by minibatch SGD on the union of both sides'
// embeddings; the tuple embedding is the normalized hidden representation.
// Random initialization + sampled minibatches make the method stochastic,
// matching its Table II classification.
#pragma once

#include <cstdint>
#include <vector>

#include "densenn/embedding.hpp"

namespace erb::densenn {

/// Autoencoder hyperparameters. Defaults mirror DeepBlocker's scale: a
/// bottleneck of half the input dimensionality and a short training run.
struct AutoencoderConfig {
  int hidden_dim = 150;
  int epochs = 8;
  float learning_rate = 0.05f;
  std::size_t max_training_samples = 2048;
  std::uint64_t seed = 1;
};

/// A trained autoencoder: Encode() maps input vectors to the learned space.
class Autoencoder {
 public:
  /// Trains on `samples` (reconstruction loss, minibatch SGD).
  Autoencoder(const std::vector<Vector>& samples, const AutoencoderConfig& config);

  /// The normalized hidden representation of `input`.
  Vector Encode(const Vector& input) const;

  /// Mean squared reconstruction error over `samples` (for tests: training
  /// must reduce it versus the untrained network).
  double ReconstructionError(const std::vector<Vector>& samples) const;

  int hidden_dim() const { return config_.hidden_dim; }

 private:
  Vector Forward(const Vector& input, Vector* hidden) const;
  void TrainStep(const Vector& input, float lr);

  AutoencoderConfig config_;
  int input_dim_;
  // Row-major weight matrices and biases: encoder (h x d), decoder (d x h).
  std::vector<float> w_enc_, b_enc_, w_dec_, b_dec_;
};

/// Encodes every vector of `inputs` through a trained autoencoder.
std::vector<Vector> EncodeAll(const Autoencoder& model,
                              const std::vector<Vector>& inputs);

}  // namespace erb::densenn
