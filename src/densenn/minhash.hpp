// MinHash LSH (Broder 1997; Leskovec et al. 2020): approximates the Jaccard
// similarity of k-shingle sets and uses the bands/rows decomposition as a
// high-pass filter over similarity (Section IV-D).
#pragma once

#include <cstdint>

#include "core/entity.hpp"
#include "densenn/result.hpp"

namespace erb::densenn {

/// Parameters of MinHash LSH (Table V): signature length = bands * rows is a
/// power of two in {128, 256, 512}; k is the shingle length.
struct MinHashConfig {
  bool clean = false;
  int bands = 16;
  int rows = 16;
  int shingle_k = 3;
  std::uint64_t seed = 1;  ///< repetition seed (the method is stochastic)
};

/// Runs MinHash LSH: indexes E1's band buckets and probes them with E2.
/// Candidates are all pairs colliding in at least one band.
DenseResult MinHashLsh(const core::Dataset& dataset, core::SchemaMode mode,
                       const MinHashConfig& config);

}  // namespace erb::densenn
