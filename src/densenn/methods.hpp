// The cardinality-based dense NN filtering methods (Section IV-D): FAISS-style
// flat kNN search, SCANN-style partitioned search and the DeepBlocker-style
// learned tuple embedding, all sharing the RVS/K/CL parameters of Table V(b).
#pragma once

#include "core/entity.hpp"
#include "densenn/autoencoder.hpp"
#include "densenn/partitioned_index.hpp"
#include "densenn/result.hpp"

namespace erb::densenn {

/// Common parameters of the cardinality-based dense methods.
struct KnnSearchConfig {
  bool clean = false;   ///< CL
  bool reverse = false; ///< RVS: index E2, query with E1
  int k = 10;           ///< candidates per query entity
};

/// FAISS substitute: exact kNN over normalized embeddings with Euclidean
/// distance (the configuration the paper found optimal for the Flat index).
DenseResult FaissKnn(const core::Dataset& dataset, core::SchemaMode mode,
                     const KnnSearchConfig& config);

/// SCANN substitute: partitioned search with brute-force or asymmetric-hash
/// scoring, dot product or squared Euclidean similarity.
DenseResult ScannKnn(const core::Dataset& dataset, core::SchemaMode mode,
                     const KnnSearchConfig& config,
                     const PartitionedConfig& scann);

/// DeepBlocker substitute: autoencoder tuple embeddings searched exactly.
DenseResult DeepBlockerKnn(const core::Dataset& dataset, core::SchemaMode mode,
                           const KnnSearchConfig& config,
                           const AutoencoderConfig& autoencoder);

/// The Default DeepBlocker baseline (DDB): cleaning on, K = 5, smaller side
/// as the query set.
DenseResult DefaultDeepBlocker(const core::Dataset& dataset,
                               core::SchemaMode mode, std::uint64_t seed = 1);

}  // namespace erb::densenn
