#include "text/clean.hpp"

#include "common/strings.hpp"
#include "text/porter.hpp"
#include "text/stopwords.hpp"

namespace erb::text {

std::vector<std::string> CleanTokens(std::string_view text, bool clean) {
  std::vector<std::string> tokens = SplitWhitespace(NormalizeText(text));
  if (!clean) return tokens;
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (auto& token : tokens) {
    if (IsStopWord(token)) continue;
    out.push_back(PorterStem(token));
  }
  return out;
}

std::string CleanText(std::string_view text, bool clean) {
  return Join(CleanTokens(text, clean), " ");
}

}  // namespace erb::text
