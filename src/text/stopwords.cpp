#include "text/stopwords.hpp"

#include <array>
#include <string_view>
#include <unordered_set>

namespace erb::text {
namespace {

// nltk's English stop-word list (contractions excluded: the text normalizer
// strips apostrophes before tokenization, so they can never appear here).
constexpr std::array<std::string_view, 127> kStopWords = {
    "i",       "me",      "my",      "myself",  "we",       "our",
    "ours",    "ourselves", "you",   "your",    "yours",    "yourself",
    "yourselves", "he",   "him",     "his",     "himself",  "she",
    "her",     "hers",    "herself", "it",      "its",      "itself",
    "they",    "them",    "their",   "theirs",  "themselves", "what",
    "which",   "who",     "whom",    "this",    "that",     "these",
    "those",   "am",      "is",      "are",     "was",      "were",
    "be",      "been",    "being",   "have",    "has",      "had",
    "having",  "do",      "does",    "did",     "doing",    "a",
    "an",      "the",     "and",     "but",     "if",       "or",
    "because", "as",      "until",   "while",   "of",       "at",
    "by",      "for",     "with",    "about",   "against",  "between",
    "into",    "through", "during",  "before",  "after",    "above",
    "below",   "to",      "from",    "up",      "down",     "in",
    "out",     "on",      "off",     "over",    "under",    "again",
    "further", "then",    "once",    "here",    "there",    "when",
    "where",   "why",     "how",     "all",     "any",      "both",
    "each",    "few",     "more",    "most",    "other",    "some",
    "such",    "no",      "nor",     "not",     "only",     "own",
    "same",    "so",      "than",    "too",     "very",     "s",
    "t",       "can",     "will",    "just",    "don",      "should",
    "now"};

const std::unordered_set<std::string_view>& StopWordSet() {
  static const std::unordered_set<std::string_view> set(kStopWords.begin(),
                                                        kStopWords.end());
  return set;
}

}  // namespace

bool IsStopWord(std::string_view word) { return StopWordSet().contains(word); }

std::size_t StopWordCount() { return StopWordSet().size(); }

}  // namespace erb::text
