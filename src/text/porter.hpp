// Porter stemming algorithm (Porter, 1980), implemented from scratch.
//
// The paper's NN workflow (Figure 2) optionally cleans attribute values by
// removing stop-words and stemming every token; the reference implementation
// used nltk's PorterStemmer. This is a faithful C++ port of the original
// algorithm's five steps.
#pragma once

#include <string>
#include <string_view>

namespace erb::text {

/// Returns the Porter stem of a lower-case ASCII word. Words shorter than
/// 3 characters are returned unchanged, per the original algorithm.
std::string PorterStem(std::string_view word);

}  // namespace erb::text
