#include "text/porter.hpp"

namespace erb::text {
namespace {

// The implementation follows the step structure of Porter's original paper
// and reference C implementation. `b` holds the word being stemmed; `k` is
// the index of its last character; `j` marks the end of the stem a suffix
// rule applies to. Indices are signed because `j` legitimately becomes -1
// when a suffix spans the whole word.
class Stemmer {
 public:
  explicit Stemmer(std::string_view word)
      : b_(word), k_(static_cast<int>(b_.size()) - 1), j_(0) {}

  std::string Run() {
    if (k_ <= 1) return b_;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    return b_.substr(0, static_cast<std::size_t>(k_) + 1);
  }

 private:
  bool IsConsonant(int i) const {
    switch (b_[static_cast<std::size_t>(i)]) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b[0..j_]: the number of VC sequences.
  int Measure() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int i) const {
    if (i < 1) return false;
    if (b_[static_cast<std::size_t>(i)] != b_[static_cast<std::size_t>(i) - 1]) {
      return false;
    }
    return IsConsonant(i);
  }

  // cvc(i) is true when i-2,i-1,i is consonant-vowel-consonant and the final
  // consonant is not w, x or y; restores an e at the end of short words, e.g.
  // cav(e), lov(e), hop(e).
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    char ch = b_[static_cast<std::size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool Ends(std::string_view s) {
    const int len = static_cast<int>(s.size());
    if (len > k_ + 1) return false;
    if (b_.compare(static_cast<std::size_t>(k_ + 1 - len), s.size(), s) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  void SetTo(std::string_view s) {
    b_.replace(static_cast<std::size_t>(j_ + 1),
               static_cast<std::size_t>(k_ - j_), s);
    k_ = j_ + static_cast<int>(s.size());
  }

  void ReplaceIfM(std::string_view s) {
    if (Measure() > 0) SetTo(s);
  }

  char At(int i) const { return b_[static_cast<std::size_t>(i)]; }

  // Step 1ab: plurals and -ed / -ing, e.g. caresses -> caress, ponies -> poni,
  // agreed -> agree, plastered -> plaster, motoring -> motor.
  void Step1ab() {
    if (At(k_) == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (At(k_ - 1) != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (Measure() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        char ch = At(k_);
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else if (Measure() == 1 && Cvc(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  // Step 1c: terminal y -> i when there is another vowel in the stem.
  void Step1c() {
    if (Ends("y") && VowelInStem()) b_[static_cast<std::size_t>(k_)] = 'i';
  }

  // Step 2: double suffixes to single ones, e.g. -ization -> -ize.
  void Step2() {
    if (k_ < 2) return;
    switch (At(k_ - 1)) {
      case 'a':
        if (Ends("ational")) { ReplaceIfM("ate"); break; }
        if (Ends("tional")) { ReplaceIfM("tion"); }
        break;
      case 'c':
        if (Ends("enci")) { ReplaceIfM("ence"); break; }
        if (Ends("anci")) { ReplaceIfM("ance"); }
        break;
      case 'e':
        if (Ends("izer")) { ReplaceIfM("ize"); }
        break;
      case 'l':
        if (Ends("bli")) { ReplaceIfM("ble"); break; }
        if (Ends("alli")) { ReplaceIfM("al"); break; }
        if (Ends("entli")) { ReplaceIfM("ent"); break; }
        if (Ends("eli")) { ReplaceIfM("e"); break; }
        if (Ends("ousli")) { ReplaceIfM("ous"); }
        break;
      case 'o':
        if (Ends("ization")) { ReplaceIfM("ize"); break; }
        if (Ends("ation")) { ReplaceIfM("ate"); break; }
        if (Ends("ator")) { ReplaceIfM("ate"); }
        break;
      case 's':
        if (Ends("alism")) { ReplaceIfM("al"); break; }
        if (Ends("iveness")) { ReplaceIfM("ive"); break; }
        if (Ends("fulness")) { ReplaceIfM("ful"); break; }
        if (Ends("ousness")) { ReplaceIfM("ous"); }
        break;
      case 't':
        if (Ends("aliti")) { ReplaceIfM("al"); break; }
        if (Ends("iviti")) { ReplaceIfM("ive"); break; }
        if (Ends("biliti")) { ReplaceIfM("ble"); }
        break;
      case 'g':
        if (Ends("logi")) { ReplaceIfM("log"); }
        break;
      default:
        break;
    }
  }

  // Step 3: -icate, -ative, etc.
  void Step3() {
    switch (At(k_)) {
      case 'e':
        if (Ends("icate")) { ReplaceIfM("ic"); break; }
        if (Ends("ative")) { ReplaceIfM(""); break; }
        if (Ends("alize")) { ReplaceIfM("al"); }
        break;
      case 'i':
        if (Ends("iciti")) { ReplaceIfM("ic"); }
        break;
      case 'l':
        if (Ends("ical")) { ReplaceIfM("ic"); break; }
        if (Ends("ful")) { ReplaceIfM(""); }
        break;
      case 's':
        if (Ends("ness")) { ReplaceIfM(""); }
        break;
      default:
        break;
    }
  }

  // Step 4: drop -ant, -ence, etc. when the measure is > 1.
  void Step4() {
    if (k_ < 1) return;
    switch (At(k_ - 1)) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance") || Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able") || Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant") || Ends("ement") || Ends("ment") || Ends("ent")) break;
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 && (At(j_) == 's' || At(j_) == 't')) break;
        if (Ends("ou")) break;
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate") || Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (Measure() > 1) k_ = j_;
  }

  // Step 5: remove a final -e if m > 1, and reduce a terminal double l.
  void Step5() {
    j_ = k_;
    if (At(k_) == 'e') {
      int m = Measure();
      if (m > 1 || (m == 1 && !Cvc(k_ - 1))) --k_;
    }
    if (At(k_) == 'l' && DoubleConsonant(k_) && Measure() > 1) --k_;
  }

  std::string b_;
  int k_;
  int j_;
};

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  return Stemmer(word).Run();
}

}  // namespace erb::text
